// Model zoo selection — MSBO vs MSBI side by side (paper §5.3 trade-off).
//
// Given a zoo of provisioned models (Day / Night / Rain), both selectors
// are handed post-drift windows from every known condition plus one the
// zoo has never seen (Snow). MSBO needs oracle labels but is cheap per
// frame; MSBI is fully unsupervised. Both must pick the matching model for
// known conditions and call for a new model on Snow.
//
// Build & run:  ./build/examples/model_zoo_selection

#include <cstdio>
#include <vector>

#include "core/msbi.h"
#include "core/msbo.h"
#include "detect/annotator.h"
#include "pipeline/provision.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  stats::Rng rng(31);
  video::SyntheticDataset bdd = video::MakeBddSynthetic(0.01);

  pipeline::ProvisionOptions provision =
      pipeline::DefaultProvisionOptions();
  provision.classifier_train.epochs = 14;
  provision.classifier_filters = 12;
  select::ModelRegistry registry;
  std::vector<std::vector<select::LabeledFrame>> samples;
  std::printf("provisioning the model zoo (Day, Night, Rain)...\n");
  uint64_t seed = 900;
  for (const char* name : {"Day", "Night", "Rain"}) {
    std::vector<video::Frame> frames =
        video::GenerateFrames(bdd.SpecOf(name), 260, bdd.image_size, seed++);
    registry.Add(
        pipeline::ProvisionModel(name, frames, provision, &rng).ValueOrDie());
    samples.push_back(pipeline::MakeLabeledSample(
        frames, provision.count_classes, 24, &rng));
  }
  select::MsboCalibration calibration =
      select::CalibrateMsbo(registry, samples).ValueOrDie();
  std::printf("MSBO calibrated: global h = %.4f\n", calibration.global_h);

  select::Msbo msbo(&registry, calibration, select::MsboConfig{});
  select::Msbi msbi(&registry, select::MsbiConfig{});

  std::printf("\n%-8s %-22s %-22s\n", "window", "MSBO decision",
              "MSBI decision");
  uint64_t window_seed = 1500;
  for (const char* condition : {"Day", "Night", "Rain", "Snow"}) {
    std::vector<video::Frame> window = video::GenerateFrames(
        bdd.SpecOf(condition), 10, bdd.image_size, window_seed++);
    std::vector<select::LabeledFrame> labeled;
    std::vector<tensor::Tensor> pixels;
    for (const video::Frame& f : window) {
      labeled.push_back(
          {f.pixels, detect::CountLabel(f.truth, provision.count_classes)});
      pixels.push_back(f.pixels);
    }
    select::Selection by_output = msbo.Select(labeled).ValueOrDie();
    select::Selection by_input = msbi.Select(pixels).ValueOrDie();
    auto describe = [&](const select::Selection& s) {
      if (s.train_new_model) return std::string("train new model");
      return "deploy " + registry.at(s.model_index).name;
    };
    std::printf("%-8s %-22s %-22s\n", condition,
                describe(by_output).c_str(), describe(by_input).c_str());
  }
  std::printf(
      "\nTrade-off (paper 5.3): MSBO needs oracle annotations for the\n"
      "window; MSBI is fully unsupervised but runs DI against every\n"
      "profile. Both should agree everywhere above, including 'train new\n"
      "model' on Snow.\n");
  return 0;
}
