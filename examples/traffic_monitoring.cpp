// Traffic monitoring — the paper's motivating scenario end to end.
//
// A fixed traffic camera (Detrac-style) is periodically re-aimed; each
// viewpoint has a provisioned model. The drift-aware pipeline (Drift
// Inspector + MSBO) monitors the stream, answers a continuous count query
// ("how many cars per frame"), detects each angle change, selects the
// matching model, and redeploys — all while reporting per-sequence query
// accuracy.
//
// Build & run:  ./build/examples/traffic_monitoring

#include <cstdio>

#include "pipeline/pipeline.h"
#include "pipeline/provision.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  stats::Rng rng(11);
  video::SyntheticDataset detrac = video::MakeDetracSynthetic(0.01);

  // Provision one model per camera angle (VAE + ensemble + query models).
  std::printf("provisioning %zu per-angle models...\n",
              detrac.segments.size());
  pipeline::ProvisionOptions provision =
      pipeline::DefaultProvisionOptions();
  provision.classifier_train.epochs = 12;
  provision.classifier_filters = 12;
  select::ModelRegistry registry;
  std::vector<std::vector<select::LabeledFrame>> samples;
  uint64_t seed = 300;
  for (const video::Segment& segment : detrac.segments) {
    std::vector<video::Frame> frames = video::GenerateFrames(
        segment.spec, 240, detrac.image_size, seed++);
    registry.Add(pipeline::ProvisionModel(segment.spec.name, frames,
                                          provision, &rng)
                     .ValueOrDie());
    samples.push_back(
        pipeline::MakeLabeledSample(frames, provision.count_classes, 24,
                                    &rng));
    std::printf("  %s ready\n", segment.spec.name.c_str());
  }

  // Run the drift-aware pipeline over the full multi-angle stream.
  pipeline::PipelineConfig config;
  config.selector = pipeline::PipelineConfig::Selector::kMsbo;
  config.provision = provision;
  config.allow_training_new = false;
  video::StreamGenerator stream = detrac.MakeStream();
  pipeline::DriftAwarePipeline pipeline(&registry, samples, config);
  pipeline::PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();

  std::printf("\nstream: %lld frames, %d drifts detected\n",
              static_cast<long long>(metrics.frames),
              metrics.drifts_detected);
  for (size_t i = 0; i < metrics.selections.size(); ++i) {
    std::printf("  drift %zu at frame %lld -> deployed %s\n", i + 1,
                static_cast<long long>(metrics.drift_frames[i]),
                metrics.selections[i].c_str());
  }
  std::printf("\ncount-query accuracy per sequence:\n");
  for (const auto& [seq, acc] : metrics.per_sequence) {
    std::printf("  %-8s A_q = %.3f  (%lld frames, %.2f invocations/frame)\n",
                registry.at(seq).name.c_str(), acc.CountAq(),
                static_cast<long long>(acc.count_total),
                acc.InvocationsPerFrame());
  }
  std::printf("overall A_q = %.3f in %.1f s\n", metrics.Totals().CountAq(),
              metrics.total_seconds);
  return 0;
}
