// Quickstart — the smallest end-to-end use of the library:
//
//   1. render training frames for a "daytime highway" distribution,
//   2. build a DistributionProfile (VAE + Sigma_Ti + precomputed scores),
//   3. arm a Drift Inspector on it,
//   4. stream day frames (no drift), then night frames (drift),
//   5. observe the detection and the exact frame it fires on,
//   6. export the metrics + drift-episode telemetry the run produced.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/drift_inspector.h"
#include "core/profile.h"
#include "obs/episode_trace.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  stats::Rng rng(7);

  // 1. Training data: 200 frames of the BDD-style Day distribution.
  video::SyntheticDataset bdd = video::MakeBddSynthetic(/*scale=*/0.01);
  std::vector<video::Frame> training =
      video::GenerateFrames(bdd.SpecOf("Day"), 200, bdd.image_size, 1);
  std::printf("rendered %zu training frames (%d objects in frame 0)\n",
              training.size(),
              static_cast<int>(training[0].truth.objects.size()));

  // 2. Profile: trains the VAE on T_Day, samples Sigma_T, precomputes A.
  conformal::DistributionProfile::Options options;
  options.trainer.epochs = 15;
  auto profile = conformal::DistributionProfile::Build(
                     "Day", video::PixelsOf(training), options, &rng)
                     .ValueOrDie();
  std::printf("profile ready: |Sigma|=%d, scoring dim=%d\n",
              profile->sigma().size(), profile->sigma().dim());

  // 3. Drift Inspector with the paper's defaults (W=3, r=0.5, K=5). The
  //    episode recorder keeps a ring of the martingale/p-value/bet values
  //    around each detection.
  conformal::DriftInspector inspector(profile.get(),
                                      conformal::DriftInspectorConfig{});
  obs::EpisodeRecorder episodes;
  inspector.set_recorder(&episodes);
  std::printf("drift threshold tau(W=3, r=0.5) = %.3f\n",
              inspector.threshold());

  // 4. Stream: 300 Day frames, then the distribution flips to Night.
  video::StreamGenerator stream(
      {{bdd.SpecOf("Day"), 300}, {bdd.SpecOf("Night"), 100}},
      bdd.image_size, /*seed=*/99);
  std::printf("ground-truth drift at frame %lld\n",
              static_cast<long long>(stream.drift_points()[0]));

  // 5. Monitor.
  bool detected = false;
  video::Frame frame;
  while (stream.Next(&frame)) {
    conformal::DriftInspector::Observation observation =
        inspector.Observe(frame.pixels);
    if (observation.drift) {
      std::printf(
          "DRIFT detected at frame %lld (martingale %.2f, p-value %.3f) — "
          "%lld frames after the change point\n",
          static_cast<long long>(frame.truth.frame_index),
          observation.martingale, observation.p_value,
          static_cast<long long>(frame.truth.frame_index -
                                 stream.drift_points()[0] + 1));
      episodes.AnnotateDecision("quickstart:night-drift");
      detected = true;
      break;
    }
  }
  if (!detected) std::printf("no drift detected (unexpected)\n");

  // 6. Telemetry: DI recorded its per-frame latency into the process-wide
  //    registry; the recorder holds the episode around the detection.
  obs::Histogram::Snapshot di = obs::Global()
                                    .GetHistogram("vdrift.di.observe_seconds")
                                    .snapshot();
  std::printf("DI observe latency over %lld frames: p50=%.6fs p99=%.6fs\n",
              static_cast<long long>(di.count), di.Quantile(0.5),
              di.Quantile(0.99));
  Status written = obs::WriteMetricsJson(obs::Global(), &episodes,
                                         "metrics_quickstart.json");
  if (written.ok()) {
    std::printf("metrics report written to metrics_quickstart.json "
                "(%zu episodes)\n",
                episodes.episodes().size());
  }
  return detected ? 0 : 1;
}
