// Day/night surveillance — the slow-drift scenario of the paper's §6.1.3.
//
// A fixed surveillance camera watches an intersection as day fades
// gradually into night (no hard cut). The Drift Inspector, armed on the
// day profile, must notice the transition near its midpoint; MSBI (the
// unsupervised selector — no labels are available from a live camera at
// night) then checks whether the provisioned night model fits the new
// frames and promotes it.
//
// Build & run:  ./build/examples/day_night_surveillance

#include <cstdio>
#include <vector>

#include "core/drift_inspector.h"
#include "core/msbi.h"
#include "core/profile.h"
#include "core/registry.h"
#include "pipeline/provision.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  stats::Rng rng(21);
  video::SceneSpec day = video::TokyoDaySpec();
  video::SceneSpec night = video::TokyoNightSpec();

  // Provision both anticipated conditions.
  std::printf("training day and night models...\n");
  pipeline::ProvisionOptions provision =
      pipeline::DefaultProvisionOptions();
  provision.classifier_train.epochs = 10;
  select::ModelRegistry registry;
  std::vector<video::Frame> day_frames =
      video::GenerateFrames(day, 240, 32, 41);
  std::vector<video::Frame> night_frames =
      video::GenerateFrames(night, 240, 32, 42);
  registry.Add(pipeline::ProvisionModel("day", day_frames, provision, &rng)
                   .ValueOrDie());
  registry.Add(pipeline::ProvisionModel("night", night_frames, provision,
                                        &rng)
                   .ValueOrDie());

  // Watch the gradually darkening stream with DI on the day profile.
  const int64_t kLength = 2000;
  video::SlowDriftStream stream(day, night, kLength,
                                /*transition_fraction=*/0.5, 32, 77);
  conformal::DriftInspector inspector(registry.at(0).profile.get(),
                                      conformal::DriftInspectorConfig{});
  std::printf("sunset (nominal drift) at frame %lld of %lld\n",
              static_cast<long long>(stream.nominal_drift_point()),
              static_cast<long long>(kLength));

  video::Frame frame;
  int64_t detected_at = -1;
  while (stream.Next(&frame)) {
    if (inspector.Observe(frame.pixels).drift) {
      detected_at = frame.truth.frame_index;
      break;
    }
  }
  if (detected_at < 0) {
    std::printf("no drift detected (unexpected)\n");
    return 1;
  }
  std::printf("DI declared drift at frame %lld (mix = %.2f)\n",
              static_cast<long long>(detected_at),
              stream.MixAt(detected_at));

  // Collect the post-drift window and let MSBI choose unsupervised.
  std::vector<tensor::Tensor> window;
  while (static_cast<int>(window.size()) < 10 && stream.Next(&frame)) {
    window.push_back(frame.pixels);
  }
  select::Msbi msbi(&registry, select::MsbiConfig{});
  select::Selection selection = msbi.Select(window).ValueOrDie();
  if (selection.train_new_model) {
    std::printf("MSBI: no provisioned model fits — train a new one\n");
  } else {
    std::printf("MSBI selected '%s' (%d DI invocations over %d frames)\n",
                registry.at(selection.model_index).name.c_str(),
                selection.invocations, selection.frames_examined);
  }
  return 0;
}
