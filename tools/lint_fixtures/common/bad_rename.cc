// Fixture: raw rename instead of common::AtomicWriteFile.
#include <cstdio>
#include <string>

namespace vdrift {

void BadPublish(const std::string& tmp, const std::string& path) {
  std::rename(tmp.c_str(), path.c_str());  // lint-expect: no-unchecked-rename
}

void BadPosixPublish(const std::string& tmp, const std::string& path) {
  rename(tmp.c_str(), path.c_str());  // lint-expect: no-unchecked-rename
}

int AllowedPublish(const std::string& tmp, const std::string& path) {
  // vdrift-lint: allow(no-unchecked-rename): fixture stand-in for the one
  // checked call site inside AtomicWriteFile
  return std::rename(tmp.c_str(), path.c_str());
}

struct FileApi {
  // vdrift-lint: allow(no-unchecked-rename): member declaration, not the
  // POSIX call
  void rename(const char* to);
};

void NotAFinding(FileApi* api, const std::string& to) {
  // Member calls are someone else's API, not the POSIX rename.
  api->rename(to.c_str());
}

}  // namespace vdrift
