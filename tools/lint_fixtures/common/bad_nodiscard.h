// Fixture: Status/Result types and functions missing [[nodiscard]].
// The scanned set (this directory) has no `class [[nodiscard]] Status`,
// so plain declarations returning Status/Result must fire.
#ifndef VDRIFT_LINT_FIXTURE_BAD_NODISCARD_H_
#define VDRIFT_LINT_FIXTURE_BAD_NODISCARD_H_

namespace vdrift {

class Status {  // lint-expect: nodiscard-status
 public:
  bool ok() const { return true; }
};

template <typename T>
class Result {  // lint-expect: nodiscard-status
 public:
  bool ok() const { return true; }
};

Status BadWrite(int fd);  // lint-expect: nodiscard-status
Result<int> BadParse(const char* text);  // lint-expect: nodiscard-status
static Status BadFlush();  // lint-expect: nodiscard-status

// Explicit attribute on the declaration is compliant:
[[nodiscard]] Status GoodWrite(int fd);

// Suppressed instance (e.g. a legacy signature kept for ABI):
Status LegacySignature(int fd);  // vdrift-lint: allow(nodiscard-status): legacy

// Not findings: StatusCode is a different type; `status()` here returns
// by reference-like alias named differently.
enum class StatusCode : int { kOk = 0 };
StatusCode BadCode();
int StatusCount();

}  // namespace vdrift

#endif  // VDRIFT_LINT_FIXTURE_BAD_NODISCARD_H_
