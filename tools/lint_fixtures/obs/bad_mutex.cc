// Fixture: raw mutex primitives invisible to thread-safety analysis.
#include <condition_variable>  // lint-expect: no-raw-mutex
#include <mutex>  // lint-expect: no-raw-mutex

namespace vdrift::obs {

class BadQueue {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mutex_);  // lint-expect: no-raw-mutex
    ++touches_;
  }
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mutex_);  // lint-expect: no-raw-mutex
    cv_.wait(lock);
  }

 private:
  std::mutex mutex_;  // lint-expect: no-raw-mutex
  std::condition_variable cv_;  // lint-expect: no-raw-mutex
  int touches_ = 0;
};

// Suppressed instance (say, interop with a C library handing us one):
// vdrift-lint: allow(no-raw-mutex): fixture-local justified raw mutex
extern std::mutex g_legacy_interop_mutex;

}  // namespace vdrift::obs
