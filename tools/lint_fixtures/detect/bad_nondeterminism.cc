// Fixture: ambient nondeterminism — unseeded RNG, wall clock, env reads.
#include <cstdlib>
#include <ctime>
#include <random>

namespace vdrift::detect {

int BadEntropy() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // lint-expect: no-ambient-nondeterminism
  int a = std::rand();  // lint-expect: no-ambient-nondeterminism
  std::random_device device;  // lint-expect: no-ambient-nondeterminism
  const char* knob = std::getenv("SOME_KNOB");  // lint-expect: no-ambient-nondeterminism
  // Names containing these tokens must NOT fire: runtime(), lifetime(,
  // mygetenv( are different identifiers.
  int b = runtime() + lifetime(1) + mygetenv(knob);
  // Suppressed instance with a rationale:
  // vdrift-lint: allow(no-ambient-nondeterminism): documented env knob
  const char* allowed = std::getenv("VDRIFT_FIXTURE_KNOB");
  return a + b + static_cast<int>(device()) + (allowed != nullptr);
}

}  // namespace vdrift::detect
