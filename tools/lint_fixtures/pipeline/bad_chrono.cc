// Fixture: raw std::chrono timing instead of obs::MonotonicSeconds.
#include <chrono>  // lint-expect: no-raw-chrono

namespace vdrift::pipeline {

double BadNow() {
  return std::chrono::duration<double>(  // lint-expect: no-raw-chrono
             std::chrono::steady_clock::now().time_since_epoch())  // lint-expect: no-raw-chrono
      .count();
}

double AllowedNow() {
  // vdrift-lint: allow(no-raw-chrono): fixture-local sanctioned use
  return std::chrono::duration<double>(0).count();
}

struct timespec;
// vdrift-lint: allow(no-raw-chrono): fixture-local declaration, not a call
int clock_gettime(int, struct timespec*);

double BadPosixNow() {
  struct timespec* ts = nullptr;
  clock_gettime(0, ts);  // lint-expect: no-raw-chrono
  return 0.0;
}

double AllowedPosixNow() {
  struct timespec* ts = nullptr;
  // vdrift-lint: allow(no-raw-chrono): async-signal-safe clock fixture
  clock_gettime(0, ts);
  return 0.0;
}

}  // namespace vdrift::pipeline
