// Fixture: raw std::chrono timing instead of obs::MonotonicSeconds.
#include <chrono>  // lint-expect: no-raw-chrono

namespace vdrift::pipeline {

double BadNow() {
  return std::chrono::duration<double>(  // lint-expect: no-raw-chrono
             std::chrono::steady_clock::now().time_since_epoch())  // lint-expect: no-raw-chrono
      .count();
}

double AllowedNow() {
  // vdrift-lint: allow(no-raw-chrono): fixture-local sanctioned use
  return std::chrono::duration<double>(0).count();
}

}  // namespace vdrift::pipeline
