// Fixture: VDRIFT_CHECK on the drift path (core/) without a rationale.
#include "common/logging.h"

namespace vdrift::conformal {

double BadUpdate(double p) {
  VDRIFT_CHECK(p > 0.0) << "p from the stream";  // lint-expect: no-data-dependent-check
  VDRIFT_CHECK_OK(SomeStatus());  // lint-expect: no-data-dependent-check
  // A suppressed instance: the allow() below must silence the check.
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(p < 1.0);
  // Trailing-comment suppression form must also silence it.
  VDRIFT_CHECK(p != 0.5);  // vdrift-lint: allow(no-data-dependent-check): contract
  // VDRIFT_DCHECK is debug-only and exempt.
  VDRIFT_DCHECK(p >= 0.0);
  return p;
}

}  // namespace vdrift::conformal
