// Negative control: idiomatic vdrift code that must produce ZERO findings.
#include "common/logging.h"
#include "common/sync.h"
#include "obs/timer.h"

namespace vdrift::clean {

class GoodQueue {
 public:
  void Touch() {
    MutexLock lock(&mutex_);
    ++touches_;
  }

  // Mentions of std::mutex, std::chrono, getenv, VDRIFT_CHECK inside
  // comments must not fire (patterns run on comment-stripped code).
  double Elapsed() const { return obs::MonotonicSeconds() - start_; }

 private:
  mutable Mutex mutex_;
  int touches_ VDRIFT_GUARDED_BY(mutex_) = 0;
  double start_ = 0.0;
};

/* Block comment spanning lines also masks std::rand() and
   std::lock_guard<std::mutex> mentions from the checks. */
int Runtime(int lifetime) { return lifetime + 1; }

}  // namespace vdrift::clean
