#!/usr/bin/env python3
"""vdrift-lint: repo-specific static checks for invariants the compiler
cannot see.

The codebase has written rules (DESIGN.md 5d/5e) that reviewers used to
enforce by memory; this tool makes them machine-checked:

  no-data-dependent-check   VDRIFT_CHECK aborts the process, so on the drift
                            path (detect/, core/, pipeline/, nn/) every
                            CHECK must be justified: either it guards a
                            programmer-error invariant (suppress with a
                            rationale) or it belongs on the Status path.
  no-raw-chrono             All timing flows through obs::MonotonicSeconds /
                            ScopedTimer / TraceSpan so traces, histograms
                            and bench numbers share one clock. Direct
                            std::chrono or POSIX clock use (clock_gettime,
                            gettimeofday) needs a rationale (e.g. a fault
                            injector's intrinsic wall-clock stall, or the
                            sampling profiler's signal handler, where only
                            async-signal-safe clocks are legal).
  no-ambient-nondeterminism std::rand / std::random_device / time() / getenv
                            make runs irreproducible. RNG must be seeded
                            PCG32 (stats::Rng); env reads are allowed only
                            at documented config chokepoints (suppressed
                            with a rationale naming the variable's purpose).
  nodiscard-status          Status / Result<T> and every function returning
                            them must be [[nodiscard]] (class-level
                            attribute on the canonical types covers their
                            call sites) so errors cannot be dropped.
  no-raw-mutex              All locking goes through common/sync.h wrappers
                            so Clang Thread Safety Analysis sees every
                            critical section. Raw std::mutex/<mutex> use is
                            invisible to -Werror=thread-safety.
  no-unchecked-rename       All file publication goes through
                            common::AtomicWriteFile (staging write + fsync +
                            checked rename + parent-dir fsync). A raw
                            std::rename drops the error, skips durability,
                            and can publish a torn file; the one legitimate
                            call site lives inside AtomicWriteFile itself.

Suppressions (every one needs a rationale after the colon):
  ... code ...  // vdrift-lint: allow(check-name): why this is fine
  // vdrift-lint: allow(check-name): why the NEXT line is fine
  // vdrift-lint: allow-file(check-name): why the whole file is exempt

Usage:
  tools/vdrift_lint.py                 # scan <repo>/src, human output
  tools/vdrift_lint.py --json          # machine-readable findings
  tools/vdrift_lint.py --self-test     # run the fixture suite
  tools/vdrift_lint.py --list-checks   # print check names + one-liners
  tools/vdrift_lint.py path/to/file.cc # scan specific files/dirs

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Path segments that form the drift path for no-data-dependent-check.
DRIFT_PATH_DIRS = {"detect", "core", "pipeline", "nn"}

SOURCE_EXTENSIONS = (".h", ".cc")

ALLOW_RE = re.compile(r"vdrift-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"vdrift-lint:\s*allow-file\(([^)]*)\)")

CHECKS = {
    "no-data-dependent-check":
        "VDRIFT_CHECK on the drift path (detect/core/pipeline/nn) must "
        "carry a programmer-error rationale or become a Status",
    "no-raw-chrono":
        "timing must flow through obs::MonotonicSeconds / ScopedTimer / "
        "TraceSpan, not raw std::chrono or POSIX clocks "
        "(clock_gettime/gettimeofday)",
    "no-ambient-nondeterminism":
        "no std::rand / std::random_device / time() / getenv outside "
        "justified config chokepoints",
    "nodiscard-status":
        "Status / Result<T> types and the functions returning them must "
        "be [[nodiscard]]",
    "no-raw-mutex":
        "locking must use common/sync.h (TSA-annotated); raw std::mutex "
        "is invisible to thread-safety analysis",
    "no-unchecked-rename":
        "file publication must go through common::AtomicWriteFile "
        "(fsync + checked rename + parent fsync); raw std::rename loses "
        "the error and the durability guarantee",
}

CHECK_PATTERNS = {
    "no-data-dependent-check":
        re.compile(r"\bVDRIFT_CHECK(?:_OK)?\s*\("),
    "no-raw-chrono":
        re.compile(r"std::chrono\b|#\s*include\s*<chrono>"
                   r"|(?<![\w:.])clock_gettime\s*\("
                   r"|(?<![\w:.])gettimeofday\s*\("),
    "no-ambient-nondeterminism":
        re.compile(
            r"std::rand\b|std::srand\b|(?<![\w:])srand\s*\("
            r"|random_device\b"
            r"|(?<![\w.:])time\s*\("
            r"|std::getenv\b|(?<![\w:])getenv\s*\("),
    "no-raw-mutex":
        re.compile(
            r"std::(?:recursive_|shared_|timed_)?mutex\b"
            r"|std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b"
            r"|std::condition_variable\b"
            r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"),
    # std::rename or a bare rename( call; member calls (x.rename / ->rename)
    # and qualified non-std uses (fs::rename) are someone else's API.
    "no-unchecked-rename":
        re.compile(r"std::rename\s*\(|(?<![\w:.>])rename\s*\("),
}

# Function declarations returning Status / Result<...> (header files).
STATUS_DECL_RE = re.compile(
    r"^\s*(?:(?:virtual|static|inline|constexpr|explicit|friend)\s+)*"
    r"(?:::)?(?:vdrift::)?(?:Status\b|Result\s*<[^;{}]*>)\s+"
    r"(?:\w+)\s*\(")
# Canonical type definitions, with and without the class attribute.
CLASS_DECL_RE = re.compile(r"^\s*class\s+(Status|Result)\b")
CLASS_NODISCARD_RE = re.compile(
    r"^\s*class\s+\[\[nodiscard\]\]\s+(Status|Result)\b")


class Finding:
    def __init__(self, check, path, line, text, message):
        self.check = check
        self.path = path
        self.line = line
        self.text = text
        self.message = message

    def as_dict(self):
        return {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "text": self.text,
            "message": self.message,
        }

    def render(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}\n" \
               f"    {self.text.strip()}"


def split_code_comment(line, in_block_comment):
    """Returns (code, comment, in_block_comment_after).

    Line-based C++ comment stripping: handles // and /* */ spanning lines.
    String literals containing comment markers are rare enough in this
    codebase that we accept the approximation (this is a lint, not a
    compiler).
    """
    code = []
    comment = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                comment.append(line[i:])
                i = n
            else:
                comment.append(line[i:end])
                i = end + 2
                in_block_comment = False
        else:
            block = line.find("/*", i)
            linec = line.find("//", i)
            if linec >= 0 and (block < 0 or linec < block):
                code.append(line[i:linec])
                comment.append(line[linec + 2:])
                i = n
            elif block >= 0:
                code.append(line[i:block])
                i = block + 2
                in_block_comment = True
            else:
                code.append(line[i:])
                i = n
    return "".join(code), "".join(comment), in_block_comment


def parse_allows(comment):
    """Check names allowed by vdrift-lint markers in one comment string."""
    line_allows = set()
    file_allows = set()
    for match in ALLOW_FILE_RE.finditer(comment):
        file_allows.update(c.strip() for c in match.group(1).split(","))
    # Strip allow-file matches so allow() does not re-match their tail.
    stripped = ALLOW_FILE_RE.sub("", comment)
    for match in ALLOW_RE.finditer(stripped):
        line_allows.update(c.strip() for c in match.group(1).split(","))
    return line_allows, file_allows


def on_drift_path(relpath):
    parts = relpath.replace("\\", "/").split("/")
    return any(part in DRIFT_PATH_DIRS for part in parts[:-1])


def scan_file(path, relpath, class_nodiscard):
    """Returns the findings for one file.

    `class_nodiscard` is the set of type names ("Status", "Result") whose
    canonical definitions in the scanned set carry a class-level
    [[nodiscard]]; functions returning those types are then compliant.
    """
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        raise RuntimeError(f"cannot read {path}: {e}")

    findings = []
    in_block = False
    file_allows = set()
    pending_allows = set()  # from a standalone comment line, for next line
    is_header = relpath.endswith(".h")
    drift_path = on_drift_path(relpath)
    prev_code = ""

    # First pass: collect file-level allows (position-independent).
    block = False
    for line in lines:
        _, comment, block = split_code_comment(line, block)
        _, fa = parse_allows(comment)
        file_allows.update(fa)

    for lineno, line in enumerate(lines, start=1):
        code, comment, in_block = split_code_comment(line, in_block)
        line_allows, _ = parse_allows(comment)
        if not code.strip():
            # Pure comment/blank line: its allow() applies to the next
            # code line.
            if line_allows:
                pending_allows |= line_allows
            continue
        active_allows = line_allows | pending_allows | file_allows
        pending_allows = set()

        def report(check, message):
            if check in active_allows:
                return
            findings.append(Finding(check, relpath, lineno, line, message))

        if drift_path and CHECK_PATTERNS["no-data-dependent-check"].search(
                code):
            report(
                "no-data-dependent-check",
                "VDRIFT_CHECK on the drift path: justify as a "
                "programmer-error invariant or return a Status "
                "(DESIGN.md 5d)")
        if CHECK_PATTERNS["no-raw-chrono"].search(code):
            report(
                "no-raw-chrono",
                "raw std::chrono: use obs::MonotonicSeconds / ScopedTimer "
                "/ TraceSpan (one clock for traces and histograms)")
        if CHECK_PATTERNS["no-ambient-nondeterminism"].search(code):
            report(
                "no-ambient-nondeterminism",
                "ambient nondeterminism: seed a stats::Rng, or justify "
                "the env/config read")
        if CHECK_PATTERNS["no-raw-mutex"].search(code):
            report(
                "no-raw-mutex",
                "raw mutex primitive: use vdrift::Mutex / MutexLock / "
                "CondVar from common/sync.h (TSA-annotated)")
        if CHECK_PATTERNS["no-unchecked-rename"].search(code):
            report(
                "no-unchecked-rename",
                "raw rename: publish files through "
                "common::AtomicWriteFile (fsync + checked rename + "
                "parent-dir fsync)")
        if is_header:
            if CLASS_DECL_RE.match(code) and not CLASS_NODISCARD_RE.match(
                    code):
                report(
                    "nodiscard-status",
                    "canonical Status/Result definition must be "
                    "`class [[nodiscard]] ...`")
            elif STATUS_DECL_RE.match(code):
                has_attr = ("[[nodiscard]]" in code
                            or "[[nodiscard]]" in prev_code)
                returns_result = "Result" in code.split("(")[0]
                covered = ("Result" if returns_result else
                           "Status") in class_nodiscard
                if not has_attr and not covered:
                    report(
                        "nodiscard-status",
                        "function returning Status/Result must be "
                        "[[nodiscard]] (or the type class-level "
                        "[[nodiscard]])")
        prev_code = code
    return findings


def collect_class_nodiscard(paths):
    """Type names whose canonical `class [[nodiscard]] X` definition
    appears anywhere in the scanned file set."""
    found = set()
    for path, _ in paths:
        if not path.endswith(".h"):
            continue
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
        except OSError:
            continue
        in_block = False
        for line in lines:
            code, _, in_block = split_code_comment(line, in_block)
            for match in re.finditer(
                    r"class\s+\[\[nodiscard\]\]\s+(Status|Result)\b", code):
                found.add(match.group(1))
    return found


def gather_files(root, arguments):
    """Yields (abspath, relpath) pairs for the scan."""
    paths = []
    if arguments:
        for arg in arguments:
            abspath = os.path.abspath(arg)
            if os.path.isdir(abspath):
                for dirpath, _, filenames in os.walk(abspath):
                    for name in sorted(filenames):
                        if name.endswith(SOURCE_EXTENSIONS):
                            full = os.path.join(dirpath, name)
                            paths.append(
                                (full, os.path.relpath(full, root)))
            elif os.path.isfile(abspath):
                paths.append((abspath, os.path.relpath(abspath, root)))
            else:
                raise RuntimeError(f"no such file or directory: {arg}")
    else:
        src = os.path.join(root, "src")
        if not os.path.isdir(src):
            raise RuntimeError(f"no src/ under scan root {root}")
        for dirpath, _, filenames in os.walk(src):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    paths.append((full, os.path.relpath(full, root)))
    return sorted(paths)


def run_scan(root, arguments):
    files = gather_files(root, arguments)
    class_nodiscard = collect_class_nodiscard(files)
    findings = []
    for path, relpath in files:
        findings.extend(scan_file(path, relpath, class_nodiscard))
    return findings, len(files)


def self_test():
    """Runs the checks against tools/lint_fixtures/.

    Every fixture line that must fire carries a `lint-expect: <check>`
    marker in its comment; every suppressed line carries an allow() and no
    marker. The test fails if actual findings differ from the expected set
    in any way — so it proves both that each check fires and that each
    suppression silences.
    """
    fixtures = os.path.join(REPO_ROOT, "tools", "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"SELF-TEST FAIL: fixtures dir missing: {fixtures}")
        return 1

    expected = set()
    expect_re = re.compile(r"lint-expect:\s*([\w,\- ]+)")
    files = gather_files(fixtures, [fixtures])
    for path, relpath in files:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f.read().splitlines(), start=1):
                for match in expect_re.finditer(line):
                    for check in match.group(1).split(","):
                        check = check.strip()
                        if check not in CHECKS:
                            print(f"SELF-TEST FAIL: {relpath}:{lineno} "
                                  f"expects unknown check '{check}'")
                            return 1
                        expected.add((relpath, lineno, check))

    findings, _ = run_scan(fixtures, [fixtures])
    actual = {(f.path, f.line, f.check) for f in findings}

    problems = []
    for item in sorted(expected - actual):
        problems.append(f"expected finding did not fire: "
                        f"{item[0]}:{item[1]} [{item[2]}]")
    for item in sorted(actual - expected):
        problems.append(f"unexpected finding (suppression broken?): "
                        f"{item[0]}:{item[1]} [{item[2]}]")

    fired_checks = {check for (_, _, check) in expected}
    for check in sorted(CHECKS):
        if check not in fired_checks:
            problems.append(f"check '{check}' has no firing fixture")

    if problems:
        print("SELF-TEST FAIL:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"self-test OK: {len(expected)} expected findings fired across "
          f"{len(files)} fixtures, all suppressions honored, "
          f"{len(CHECKS)} checks covered")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="vdrift_lint.py",
        description="repo-specific static checks (see DESIGN.md 5e)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root for relative paths (default: "
                             "the tool's parent repo)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--self-test", action="store_true",
                        help="validate every check against "
                             "tools/lint_fixtures/")
    parser.add_argument("--list-checks", action="store_true",
                        help="print check names and one-line rules")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: <root>/src)")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECKS):
            print(f"{name}: {CHECKS[name]}")
        return 0
    if args.self_test:
        return self_test()

    try:
        findings, files_scanned = run_scan(os.path.abspath(args.root),
                                           args.paths)
    except RuntimeError as e:
        print(f"vdrift-lint: error: {e}", file=sys.stderr)
        return 2

    if args.json:
        counts = {}
        for f in findings:
            counts[f.check] = counts.get(f.check, 0) + 1
        print(json.dumps({
            "findings": [f.as_dict() for f in findings],
            "counts": counts,
            "files_scanned": files_scanned,
        }, indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f.render())
        print(f"vdrift-lint: {len(findings)} finding(s) in "
              f"{files_scanned} files")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
