#!/usr/bin/env bash
# Re-captures the committed perf baseline (bench/baselines/threads1/) in
# the multi-repeat ledger format the statistical gate needs.
#
# A baseline is a distribution, not a number: this runs the full bench
# suite RUNS times, appending every run's LedgerRecord — repeat-level
# samples, per-kernel FLOPs/bytes/time, machine fingerprint, env knobs —
# to <name>.jsonl in the baseline directory. compare_bench.py then
# estimates the machine's noise floor from the spread instead of trusting
# any single run (and warns when a candidate's fingerprint differs from
# the one recorded here).
#
# Usage: tools/rebaseline.sh [options] [bench ...]
#   --runs N        full suite passes to record (default: 3; more runs =
#                   tighter noise estimate)
#   --out DIR       baseline dir (default: bench/baselines/threads1)
#   --threads N     VDRIFT_THREADS for every run (default: 1)
#   --keep          keep existing ledger/report files in the baseline dir
#                   (default: start fresh — a baseline mixes revisions
#                   only when you explicitly ask it to)
#   bench ...       subset to re-baseline (default: all migrated benches)
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"

RUNS=3
OUT_DIR="bench/baselines/threads1"
THREADS=1
KEEP=0
BENCHES=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --runs) RUNS="$2"; shift 2 ;;
    --out) OUT_DIR="$2"; shift 2 ;;
    --threads) THREADS="$2"; shift 2 ;;
    --keep) KEEP=1; shift ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    -*) echo "unknown option: $1" >&2; exit 2 ;;
    *) BENCHES+=("$1"); shift ;;
  esac
done

if ! git diff --quiet HEAD -- src bench 2>/dev/null; then
  echo "warning: src/ or bench/ has uncommitted changes; the recorded" >&2
  echo "         git_rev will not describe what actually ran" >&2
fi

mkdir -p "$OUT_DIR"
if [[ "$KEEP" -eq 0 ]]; then
  rm -f "$OUT_DIR"/*.jsonl "$OUT_DIR"/BENCH_*.json
fi

# Reports go to a scratch dir: the committed baseline is the ledger
# history, not any single run's report.
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

for run in $(seq 1 "$RUNS"); do
  echo
  echo "==== baseline run $run/$RUNS ===="
  tools/run_bench_suite.sh --threads "$THREADS" --out-dir "$SCRATCH" \
    --ledger "$OUT_DIR" "${BENCHES[@]+"${BENCHES[@]}"}"
done

echo
echo "==== baseline sanity: the new baseline must accept its own runs ===="
# Identical binary, same machine, same env: a verdict other than PASS here
# means the gate (or the machine) is broken — fail loudly now, not in CI.
python3 tools/compare_bench.py --baseline "$OUT_DIR" --candidate "$OUT_DIR"

echo
ls -l "$OUT_DIR"
echo "rebaseline OK: $RUNS run(s) per bench recorded in $OUT_DIR"
