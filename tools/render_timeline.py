#!/usr/bin/env python3
"""Renders a per-run drift timeline from the sampler's JSONL time series.

Input is the file VDRIFT_METRICS_JSONL produces (one MetricsWindow JSON
object per line). The timeline shows, per window: the stream-time frame
range, the DI p-value and martingale gauges, drifts and dropped frames in
the window, the per-window run-latency p99, and a bar for the martingale
(log-scaled, since the detection statistic grows multiplicatively). With
--report pointing at the metrics JSON report, SLO alerts are merged in on
the windows where they fired.

Usage:
  tools/render_timeline.py metrics.jsonl [--report metrics.json]
  tools/render_timeline.py metrics.jsonl --csv   # machine-readable rows

Exits non-zero on unreadable or structurally invalid input, so CI can use
it as a JSONL validator as well as a viewer.
"""

import argparse
import json
import math
import sys

BAR_WIDTH = 24


def load_windows(path):
    windows = []
    with open(path) as f:
        for line_number, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                window = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(
                    f"FAIL: {path}:{line_number}: not valid JSON: {err}")
            for key in ("window", "start", "end", "counters", "gauges",
                        "histograms"):
                if key not in window:
                    raise SystemExit(
                        f"FAIL: {path}:{line_number}: missing key {key!r}")
            windows.append(window)
    if not windows:
        raise SystemExit(f"FAIL: {path}: no windows")
    return windows


def load_alerts(path):
    """window index -> list of rule names, from the report's alerts array."""
    if path is None:
        return {}
    with open(path) as f:
        report = json.load(f)
    alerts = {}
    for alert in report.get("alerts", []):
        alerts.setdefault(alert.get("window", -1), []).append(
            alert.get("rule", "?"))
    return alerts


def counter(window, name, field="delta"):
    entry = window["counters"].get(name)
    return entry[field] if entry else 0


def find_counter(window, suffix, field="delta"):
    """Counter whose name matches exactly or up to a label block (the
    pipeline may emit `name{stream="..."}`)."""
    for name in window["counters"]:
        base = name.split("{", 1)[0]
        if base == suffix:
            return counter(window, name, field)
    return 0


def find_gauge(window, base_name):
    for name, value in window["gauges"].items():
        if name.split("{", 1)[0] == base_name:
            return value
    return None


def find_histogram_p99(window, base_name):
    for name, hist in window["histograms"].items():
        if name.split("{", 1)[0] == base_name:
            return hist.get("p99")
    return None


def martingale_bar(value, max_value):
    if value is None or value <= 0 or max_value <= 0:
        return ""
    # Log scale: the martingale is a product of bets and spans decades.
    top = math.log10(max(max_value, 10.0))
    filled = int(round(BAR_WIDTH * max(0.0, math.log10(max(value, 1e-3)) + 3)
                       / (top + 3)))
    return "#" * max(0, min(BAR_WIDTH, filled))


def fmt(value, spec="{:.4g}"):
    return "-" if value is None else spec.format(value)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="sampler JSONL time series")
    parser.add_argument("--report", default=None,
                        help="metrics JSON report (merges SLO alerts)")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV rows instead of the table")
    args = parser.parse_args()

    windows = load_windows(args.jsonl)
    alerts = load_alerts(args.report)

    rows = []
    for w in windows:
        drift_ob = find_gauge(w, "vdrift.pipeline.drift_oblivious")
        rows.append({
            "window": w["window"],
            "frames": f"{int(w['start'])}..{int(w['end'])}",
            "p_value": find_gauge(w, "vdrift.di.p_value"),
            "martingale": find_gauge(w, "vdrift.di.martingale"),
            "drifts": find_counter(w, "vdrift.pipeline.drifts"),
            "dropped": find_counter(w, "vdrift.pipeline.frames_dropped"),
            "lat_p99": find_histogram_p99(w, "vdrift.pipeline.detect_seconds"),
            "degraded": "yes" if drift_ob else "",
            "alerts": ",".join(alerts.get(w["window"], [])),
        })

    if args.csv:
        cols = ["window", "frames", "p_value", "martingale", "drifts",
                "dropped", "lat_p99", "degraded", "alerts"]
        print(",".join(cols))
        for r in rows:
            print(",".join(str("" if r[c] is None else r[c]) for c in cols))
        return

    peak = max((r["martingale"] or 0) for r in rows)
    header = (f"{'win':>4} {'frames':>13} {'p':>8} {'martingale':>11} "
              f"{'drifts':>6} {'drop':>5} {'det p99':>9} {'deg':>3} "
              f"{'M (log)':<{BAR_WIDTH}} alerts")
    print(header)
    print("-" * len(header))
    for r in rows:
        print(f"{r['window']:>4} {r['frames']:>13} "
              f"{fmt(r['p_value']):>8} {fmt(r['martingale']):>11} "
              f"{r['drifts']:>6} {r['dropped']:>5} "
              f"{fmt(r['lat_p99'], '{:.3g}'):>9} {r['degraded']:>3} "
              f"{martingale_bar(r['martingale'], peak):<{BAR_WIDTH}} "
              f"{r['alerts']}")
    total_drifts = sum(r["drifts"] for r in rows)
    total_dropped = sum(r["dropped"] for r in rows)
    n_alerts = sum(len(v) for v in alerts.values())
    print(f"{len(rows)} window(s), {total_drifts} drift(s), "
          f"{total_dropped} dropped frame(s), {n_alerts} alert(s)")


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # output piped into head/less and closed early
