#!/usr/bin/env bash
# Runs every harness-migrated bench and collects their canonical
# BENCH_<name>.json reports (throughput, per-stage p50/p90/p99, FLOP
# totals, git revision) into one directory — the artifact set
# tools/compare_bench.py gates regressions on.
#
# Usage: tools/run_bench_suite.sh [options] [bench ...]
#   --build-dir DIR   build tree to run from (default: build)
#   --out-dir DIR     where BENCH_*.json land (default: repo root)
#   --threads N       run with VDRIFT_THREADS=N (default: 1, so reports
#                     are comparable to the committed serial baseline)
#   --smoke           1 repeat / no warmup / tiny Tokyo-only workbench
#   --ledger DIR      append each run's record to DIR/<name>.jsonl
#                     (VDRIFT_BENCH_LEDGER) — the run history the
#                     statistical gate estimates noise from
#   --no-kernel-profile  skip per-kernel op timing (on by default so the
#                     reports carry the kernel table compare_bench.py
#                     attributes regressions with)
#   --asan            configure+build build-asan with
#                     -DVDRIFT_ENABLE_SANITIZERS=ON and run from there
#   bench ...         subset to run (default: all migrated benches)
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT="$(pwd)"

BUILD_DIR="build"
OUT_DIR="$REPO_ROOT"
THREADS=1
SMOKE=0
ASAN=0
LEDGER_DIR=""
KERNEL_PROFILE=1
BENCHES=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    --threads) THREADS="$2"; shift 2 ;;
    --smoke) SMOKE=1; shift ;;
    --ledger) LEDGER_DIR="$2"; shift 2 ;;
    --no-kernel-profile) KERNEL_PROFILE=0; shift ;;
    --asan) ASAN=1; shift ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    -*) echo "unknown option: $1" >&2; exit 2 ;;
    *) BENCHES+=("$1"); shift ;;
  esac
done
if [[ ${#BENCHES[@]} -eq 0 ]]; then
  BENCHES=(bench_micro_components bench_table6_detection_time
           bench_table8_selection_time bench_table9_end_to_end)
fi

if [[ "$ASAN" -eq 1 ]]; then
  BUILD_DIR="build-asan"
  echo "== configuring $BUILD_DIR with sanitizers =="
  cmake -B "$BUILD_DIR" -S . -DVDRIFT_ENABLE_SANITIZERS=ON
fi
echo "== building ${BENCHES[*]} in $BUILD_DIR =="
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${BENCHES[@]}"

mkdir -p "$OUT_DIR"
export VDRIFT_GIT_REV="${VDRIFT_GIT_REV:-$(git rev-parse --short=12 HEAD \
                                           2>/dev/null || echo unknown)}"
export VDRIFT_THREADS="$THREADS"
if [[ "$SMOKE" -eq 1 ]]; then
  export VDRIFT_BENCH_SMOKE=1
fi
if [[ -n "$LEDGER_DIR" ]]; then
  mkdir -p "$LEDGER_DIR"
  export VDRIFT_BENCH_LEDGER="$LEDGER_DIR"
fi
if [[ "$KERNEL_PROFILE" -eq 1 ]]; then
  export VDRIFT_KERNEL_PROFILE=1
fi

FAILED=0
for bench in "${BENCHES[@]}"; do
  binary="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$binary" ]]; then
    echo "FAIL: $binary not built" >&2
    FAILED=1
    continue
  fi
  name="${bench#bench_}"
  report="$OUT_DIR/BENCH_${name}.json"
  echo
  echo "== $bench (rev $VDRIFT_GIT_REV, threads $VDRIFT_THREADS) =="
  if ! VDRIFT_BENCH_JSON="$report" "$binary"; then
    echo "FAIL: $bench exited non-zero" >&2
    FAILED=1
    continue
  fi
  if [[ ! -s "$report" ]]; then
    echo "FAIL: $bench wrote no report at $report" >&2
    FAILED=1
  fi
done

echo
if [[ "$FAILED" -ne 0 ]]; then
  echo "bench suite FAILED (see above)" >&2
  exit 1
fi
ls -l "$OUT_DIR"/BENCH_*.json
echo "bench suite OK: reports in $OUT_DIR"
echo "compare against a baseline with:"
echo "  tools/compare_bench.py --baseline <dir> --candidate $OUT_DIR"
