#!/usr/bin/env bash
# Runs one bench harness with the full observability surface armed and
# validates everything it emits:
#   - the metrics JSON report (counters, DI latency histogram, episodes,
#     SLO alerts array — empty on this clean run),
#   - the flight-recorder Chrome trace (well-formed event array, ph in
#     {B,E,X}, monotonic timestamps per tid, nested pipeline stage spans,
#     tensor-op events carrying FLOP args),
#   - the BENCH_*.json harness report (schema + quantile ordering;
#     empty stages legitimately omit quantile keys),
#   - the OpenMetrics text exposition (family grammar, counter _total
#     suffix, cumulative histogram buckets ending in +Inf == _count,
#     terminating # EOF),
#   - the sampler's JSONL time series (per-window counter deltas sum
#     exactly to the final cumulative totals; render_timeline.py parses it),
#   - the sampling profiler's folded-stack output (flamegraph.pl grammar:
#     "frame(;frame)* count" per line, samples attributed to spans/kernels),
#   - the run-ledger JSONL record (schema, machine fingerprint, per-stage
#     quantiles + samples, per-kernel op-probe table; parses back through
#     compare_bench.py's loader).
# A second, smoke-sized run with VDRIFT_FAULT_SPEC set then asserts the
# SLO watchdog actually fires: injected faults must surface as alerts
# attributable to the fault kind, and the clean run above must have none.
#
# Usage: tools/check_metrics.sh [build_dir]
# Env:   VDRIFT_BENCH_DATASET (default Tokyo — the cheapest workbench).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_table6_detection_time"
if [[ ! -x "$BENCH" ]]; then
  echo "FAIL: $BENCH not built (cmake --build $BUILD_DIR first)" >&2
  exit 1
fi

# Static checks first: cheap, and a lint-dirty tree fails fast before the
# bench run (see DESIGN.md 5e).
echo "running vdrift-lint over src/..."
python3 tools/vdrift_lint.py

export VDRIFT_BENCH_DATASET="${VDRIFT_BENCH_DATASET:-Tokyo}"
REPORT="$(mktemp /tmp/vdrift_metrics.XXXXXX.json)"
TRACE="$(mktemp /tmp/vdrift_trace.XXXXXX.json)"
BENCH_JSON="$(mktemp /tmp/vdrift_bench.XXXXXX.json)"
OPENMETRICS="$(mktemp /tmp/vdrift_om.XXXXXX.txt)"
JSONL="$(mktemp /tmp/vdrift_windows.XXXXXX.jsonl)"
FOLDED="$(mktemp /tmp/vdrift_profile.XXXXXX.folded)"
LEDGER="$(mktemp /tmp/vdrift_ledger.XXXXXX.jsonl)"
FAULT_REPORT="$(mktemp /tmp/vdrift_metrics_fault.XXXXXX.json)"
FAULT_BENCH_JSON="$(mktemp /tmp/vdrift_bench_fault.XXXXXX.json)"
trap 'rm -f "$REPORT" "$TRACE" "$BENCH_JSON" "$OPENMETRICS" "$JSONL" \
  "$FOLDED" "$LEDGER" "$FAULT_REPORT" "$FAULT_BENCH_JSON"' EXIT
export VDRIFT_METRICS_JSON="$REPORT"
export VDRIFT_TRACE_JSON="$TRACE"
export VDRIFT_BENCH_JSON="$BENCH_JSON"
export VDRIFT_METRICS_OPENMETRICS="$OPENMETRICS"
export VDRIFT_METRICS_JSONL="$JSONL"
export VDRIFT_PROFILE_FOLDED="$FOLDED"
export VDRIFT_BENCH_LEDGER="$LEDGER"
export VDRIFT_SAMPLE_INTERVAL="${VDRIFT_SAMPLE_INTERVAL:-32}"
export VDRIFT_SLO_SPEC="${VDRIFT_SLO_SPEC:-default}"

echo "running $BENCH (dataset=$VDRIFT_BENCH_DATASET, trace+bench+sampler+slo+profiler+ledger armed)..."
"$BENCH"

for f in "$REPORT" "$TRACE" "$BENCH_JSON" "$OPENMETRICS" "$JSONL" \
         "$FOLDED" "$LEDGER"; do
  if [[ ! -s "$f" ]]; then
    echo "FAIL: bench did not write $f" >&2
    exit 1
  fi
done

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)

if not report.get("counters"):
    fail("no counters in report")
if not any(name.startswith('vdrift.di.detections{')
           for name in report["counters"]):
    fail("no labeled vdrift.di.detections{dataset=...} counter")
hist = report.get("histograms", {}).get("vdrift.di.observe_seconds")
if hist is None:
    fail("missing vdrift.di.observe_seconds histogram")
if hist.get("count", 0) <= 0:
    fail("DI latency histogram is empty")
for q in ("p50", "p99"):
    if q not in hist:
        fail(f"DI latency histogram missing {q}")
    if not (0 <= hist[q] <= hist.get("max", float("inf")) + 1e-12):
        fail(f"DI latency {q}={hist[q]} outside [0, max]")
for name, h in report.get("histograms", {}).items():
    if h.get("count", 0) == 0 and "p50" in h:
        fail(f"empty histogram {name} still exports quantile keys")
episodes = report.get("episodes")
if not episodes:
    fail("no drift episodes captured")
for episode in episodes:
    if not episode.get("frames"):
        fail("episode with empty frame trace")
    if not episode["frames"][-1].get("drift"):
        fail("episode trace does not end on the drift frame")
alerts = report.get("alerts")
if alerts is None:
    fail("report has no alerts key")
if alerts:
    fail(f"clean run raised SLO alerts: {alerts}")

print(f"OK: {len(report['counters'])} counters, "
      f"{len(report.get('histograms', {}))} histograms, "
      f"DI p50={hist['p50']:.6f}s p99={hist['p99']:.6f}s, "
      f"{len(episodes)} drift episode(s), 0 alerts (clean)")
EOF

python3 - "$TRACE" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

def fail(msg):
    print(f"FAIL: trace: {msg}", file=sys.stderr)
    sys.exit(1)

events = trace.get("traceEvents")
if not isinstance(events, list) or not events:
    fail("traceEvents missing or empty")
last_ts = {}
names = set()
op_events = 0
flop_events = 0
for e in events:
    ph = e.get("ph")
    if ph not in ("B", "E", "X"):
        fail(f"bad phase {ph!r} in event {e}")
    for key in ("name", "ts", "pid", "tid"):
        if key not in e:
            fail(f"event missing {key}: {e}")
    tid = e["tid"]
    if e["ts"] < last_ts.get(tid, float("-inf")):
        fail(f"timestamps not monotonic on tid {tid} at {e['name']}")
    last_ts[tid] = e["ts"]
    names.add(e["name"])
    if e.get("cat") == "op":
        op_events += 1
        if ph != "X":
            fail("op event without complete (X) phase")
        if "dur" not in e:
            fail("op event missing dur")
        if e.get("args", {}).get("flops", 0) > 0:
            flop_events += 1
for stage in ("vdrift.pipeline.run_seconds",
              "vdrift.pipeline.detect_seconds",
              "vdrift.pipeline.select_seconds",
              "vdrift.pipeline.query_seconds"):
    if stage not in names:
        fail(f"missing pipeline stage span {stage}")
if op_events == 0:
    fail("no tensor/nn op events recorded")
if flop_events == 0:
    fail("no op event carries a positive FLOP count")

print(f"OK: trace has {len(events)} events on {len(last_ts)} thread(s), "
      f"{op_events} op event(s) ({flop_events} with FLOPs), "
      f"nested pipeline stage spans present")
EOF

python3 - "$BENCH_JSON" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

def fail(msg):
    print(f"FAIL: bench report: {msg}", file=sys.stderr)
    sys.exit(1)

for key in ("name", "git_rev", "config", "counters", "stages",
            "throughput_fps", "flops_total", "bytes_total", "machine",
            "kernels"):
    if key not in report:
        fail(f"missing top-level key {key}")
for key in ("cpu_model", "cores", "governor", "id", "page_size"):
    if key not in report["machine"]:
        fail(f"machine fingerprint missing {key}")
if not report["kernels"]:
    fail("no kernels in report (op probes inactive?)")
for name, kernel in report["kernels"].items():
    for key in ("calls", "flops", "bytes", "seconds"):
        if key not in kernel:
            fail(f"kernel {name} missing {key}")
for key in ("repeats", "warmup", "seed", "smoke", "dataset_filter"):
    if key not in report["config"]:
        fail(f"config missing {key}")
if not report["stages"]:
    fail("no stages recorded")
populated = 0
for name, stage in report["stages"].items():
    for key in ("count", "fps", "sum_seconds"):
        if key not in stage:
            fail(f"stage {name} missing {key}")
    if stage["count"] > 0:
        # Shape keys are mandatory exactly when the stage has samples.
        for key in ("min", "max", "mean", "p50", "p90", "p99"):
            if key not in stage:
                fail(f"populated stage {name} missing {key}")
        populated += 1
        if not (stage["p50"] <= stage["p90"] + 1e-12
                and stage["p90"] <= stage["p99"] + 1e-12):
            fail(f"stage {name} quantiles not ordered: "
                 f"{stage['p50']} / {stage['p90']} / {stage['p99']}")
    elif "p50" in stage:
        fail(f"empty stage {name} still exports quantile keys")
if populated == 0:
    fail("every stage is empty")
if report["throughput_fps"] <= 0:
    fail(f"non-positive throughput_fps {report['throughput_fps']}")
if report["flops_total"] <= 0:
    fail("flops_total not positive (kernel probes inactive?)")

print(f"OK: bench report {report['name']} @ {report['git_rev']}: "
      f"{populated} populated stage(s), "
      f"throughput {report['throughput_fps']:.2f} fps, "
      f"{report['flops_total']:,} FLOPs")
EOF

python3 - "$OPENMETRICS" <<'EOF'
import re
import sys

with open(sys.argv[1]) as f:
    lines = f.read().splitlines()

def fail(msg):
    print(f"FAIL: openmetrics: {msg}", file=sys.stderr)
    sys.exit(1)

if not lines or lines[-1] != "# EOF":
    fail("document does not end with # EOF")
NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABELS = r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\"" \
         r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\}"
SAMPLE = re.compile(rf"^({NAME})({LABELS})? (\S+)$")
TYPE = re.compile(rf"^# TYPE ({NAME}) (counter|gauge|histogram)$")
families = {}
current = None
samples = 0
labeled = 0
hist_state = {}
for i, line in enumerate(lines[:-1], 1):
    m = TYPE.match(line)
    if m:
        family, kind = m.groups()
        if family in families:
            fail(f"line {i}: duplicate family {family}")
        families[family] = kind
        current = (family, kind)
        continue
    m = SAMPLE.match(line)
    if m is None:
        fail(f"line {i}: unparsable line {line!r}")
    name, labels, value = m.group(1), m.group(2), m.group(3)
    if current is None:
        fail(f"line {i}: sample before any # TYPE")
    family, kind = current
    samples += 1
    if labels:
        labeled += 1
    try:
        number = float(value.replace("+Inf", "inf"))
    except ValueError:
        fail(f"line {i}: bad sample value {value!r}")
    if kind == "counter":
        if name != family + "_total":
            fail(f"line {i}: counter sample {name} lacks _total suffix")
        if number < 0:
            fail(f"line {i}: negative counter {name}")
    elif kind == "gauge":
        if name != family:
            fail(f"line {i}: gauge sample {name} != family {family}")
    else:
        # The le label distinguishes buckets *within* one series — group
        # histogram state by the labels with le stripped out.
        pairs = re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                           labels or "")
        kept = [f'{k}="{v}"' for k, v in pairs if k != "le"]
        series = "{" + ",".join(kept) + "}" if kept else ""
        state = hist_state.setdefault((family, series),
                                      {"last": -1.0, "inf": None, "count": None})
        if name == family + "_bucket":
            le = re.search(r'le="([^"]*)"', labels or "")
            if le is None:
                fail(f"line {i}: histogram bucket without le label")
            if le.group(1) == "+Inf":
                state["inf"] = number
            else:
                if number < state["last"]:
                    fail(f"line {i}: non-cumulative buckets in {family}")
                state["last"] = number
        elif name == family + "_count":
            state["count"] = number
        elif name != family + "_sum":
            fail(f"line {i}: unexpected histogram sample {name}")
for (family, labels), state in hist_state.items():
    if state["inf"] is None:
        fail(f"histogram {family}{labels} has no +Inf bucket")
    if state["count"] is None:
        fail(f"histogram {family}{labels} has no _count")
    if state["inf"] != state["count"]:
        fail(f"histogram {family}{labels}: +Inf bucket {state['inf']} "
             f"!= _count {state['count']}")
    if state["last"] > state["inf"]:
        fail(f"histogram {family}{labels}: finite bucket exceeds +Inf")
if labeled == 0:
    fail("no labeled series (expected vdrift_di_detections{dataset=...})")

print(f"OK: openmetrics: {len(families)} families, {samples} samples "
      f"({labeled} labeled), histograms cumulative and +Inf == _count")
EOF

python3 - "$JSONL" <<'EOF'
import json
import sys

def fail(msg):
    print(f"FAIL: jsonl: {msg}", file=sys.stderr)
    sys.exit(1)

windows = []
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        try:
            windows.append(json.loads(line))
        except json.JSONDecodeError as err:
            fail(f"line {n}: invalid JSON: {err}")
if not windows:
    fail("no windows sampled")
deltas = {}
finals = {}
prev_index = -1
prev_end = float("-inf")
for w in windows:
    if w["window"] != prev_index + 1:
        fail(f"window indices not consecutive at {w['window']}")
    prev_index = w["window"]
    if w["end"] < prev_end:
        fail(f"window end times not monotonic at {w['window']}")
    prev_end = w["end"]
    for name, c in w["counters"].items():
        deltas[name] = deltas.get(name, 0) + c["delta"]
        finals[name] = c["total"]
    for name, h in w.get("histograms", {}).items():
        if h.get("count", 0) <= 0:
            fail(f"window {w['window']}: empty histogram {name} exported")
if deltas != finals:
    bad = {k: (deltas.get(k), finals.get(k))
           for k in set(deltas) | set(finals)
           if deltas.get(k) != finals.get(k)}
    fail(f"window deltas do not sum to final totals: {bad}")

print(f"OK: jsonl: {len(windows)} window(s), "
      f"{len(finals)} counter(s) — deltas sum exactly to cumulative totals")
EOF

echo "rendering timeline from the JSONL series..."
python3 tools/render_timeline.py "$JSONL" --report "$REPORT" | tail -n 3

python3 - "$FOLDED" <<'EOF'
import re
import sys

def fail(msg):
    print(f"FAIL: folded: {msg}", file=sys.stderr)
    sys.exit(1)

# flamegraph.pl input: "frame(;frame)* count", frames non-empty, count a
# positive integer.
# flamegraph.pl grammar: the count is whatever follows the LAST space —
# frames themselves may contain spaces (e.g. the "(no span)" sentinel).
LINE = re.compile(r"^([^;]+(?:;[^;]+)*) (\d+)$")
with open(sys.argv[1]) as f:
    lines = f.read().splitlines()
if not lines:
    fail("profiler armed but wrote no samples (CPU-bound run expected)")
total = 0
stacks = set()
attributed = 0
for n, line in enumerate(lines, 1):
    m = LINE.match(line)
    if m is None:
        fail(f"line {n}: not folded-stack grammar: {line!r}")
    stack, count = m.group(1), int(m.group(2))
    if count <= 0:
        fail(f"line {n}: non-positive count")
    if stack in stacks:
        fail(f"line {n}: duplicate stack {stack!r} (aggregation broken)")
    stacks.add(stack)
    total += count
    if stack != "(no span)":
        attributed += 1
if attributed == 0:
    fail("no sample attributed to any span/kernel context")

print(f"OK: folded: {len(lines)} unique stack(s), {total} sample(s), "
      f"{attributed} attributed to span/kernel contexts")
EOF

python3 - "$LEDGER" <<'EOF'
import json
import sys

def fail(msg):
    print(f"FAIL: ledger: {msg}", file=sys.stderr)
    sys.exit(1)

with open(sys.argv[1]) as f:
    lines = [l for l in f.read().splitlines() if l.strip()]
if len(lines) != 1:
    fail(f"expected exactly 1 record from 1 run, found {len(lines)}")
rec = json.loads(lines[0])
for key in ("schema", "bench", "git_rev", "unix_time", "machine", "env",
            "stages", "kernels", "throughput_fps"):
    if key not in rec:
        fail(f"record missing {key}")
if not rec["machine"].get("id"):
    fail("machine fingerprint has no id")
for key in ("repeats", "warmup", "seed", "smoke", "threads",
            "kernel_profile"):
    if key not in rec["env"]:
        fail(f"env knobs missing {key}")
if not rec["stages"]:
    fail("no stages in ledger record")
sampled = 0
for name, stage in rec["stages"].items():
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99"):
        if key not in stage:
            fail(f"stage {name} missing {key}")
    # Raw repeat-level samples are per-stage optional (stages imported
    # from a pipeline's own metrics registry only have histograms), but
    # at least one harness-recorded stage must carry them.
    if stage.get("samples"):
        sampled += 1
if sampled == 0:
    fail("no stage carries repeat-level samples")
if not rec["kernels"]:
    fail("no kernels in ledger record")
timed = sum(1 for k in rec["kernels"].values() if k.get("seconds", 0) > 0)
if timed == 0:
    fail("no kernel carries timing (kernel profiling was armed)")

print(f"OK: ledger: 1 record, {len(rec['stages'])} stage(s) "
      f"({sampled} with raw samples), {len(rec['kernels'])} kernel(s) "
      f"({timed} timed), machine id {rec['machine']['id']}")
EOF

echo "round-tripping the ledger through the statistical gate (--smoke)..."
python3 tools/compare_bench.py --baseline "$LEDGER" --candidate "$LEDGER" \
  --smoke

# --- Fault pass: injected faults must surface as SLO alerts. ---
echo "running fault pass (smoke, nan_frame + selector_fail injected)..."
VDRIFT_BENCH_SMOKE=1 \
  VDRIFT_FAULT_SPEC="nan_frame:p=0.1;selector_fail:p=0.8" \
  VDRIFT_METRICS_JSON="$FAULT_REPORT" \
  VDRIFT_TRACE_JSON="" VDRIFT_METRICS_OPENMETRICS="" \
  VDRIFT_METRICS_JSONL="" VDRIFT_BENCH_JSON="$FAULT_BENCH_JSON" \
  VDRIFT_PROFILE_FOLDED="" VDRIFT_BENCH_LEDGER="" \
  "$BENCH" > /dev/null

python3 - "$FAULT_REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

def fail(msg):
    print(f"FAIL: fault pass: {msg}", file=sys.stderr)
    sys.exit(1)

alerts = report.get("alerts")
if not alerts:
    fail("injected faults raised no SLO alerts")
# nan_frame poisons pixels -> dropped frames; selector_fail ->
# selection failures (and possibly drift-oblivious degradation).
attributable = {"frame_drop_ratio", "selector_failures", "drift_oblivious"}
rules = {a["rule"] for a in alerts}
if not rules & attributable:
    fail(f"alerts {rules} not attributable to the injected fault kinds")
for a in alerts:
    for key in ("rule", "window", "time", "value", "op", "threshold",
                "message"):
        if key not in a:
            fail(f"alert missing key {key}: {a}")

print(f"OK: fault pass: {len(alerts)} alert(s) on rules {sorted(rules)}")
EOF

# --- Fleet pass: per-stream series must sum to the fleet aggregates. ---
FLEET_BENCH="$BUILD_DIR/bench/bench_fleet"
if [[ ! -x "$FLEET_BENCH" ]]; then
  echo "FAIL: $FLEET_BENCH not built (cmake --build $BUILD_DIR first)" >&2
  exit 1
fi
FLEET_REPORT="$(mktemp /tmp/vdrift_metrics_fleet.XXXXXX.json)"
FLEET_BENCH_JSON="$(mktemp /tmp/vdrift_bench_fleet.XXXXXX.json)"
trap 'rm -f "$REPORT" "$TRACE" "$BENCH_JSON" "$OPENMETRICS" "$JSONL" \
  "$FOLDED" "$LEDGER" "$FAULT_REPORT" "$FAULT_BENCH_JSON" \
  "$FLEET_REPORT" "$FLEET_BENCH_JSON"' EXIT
echo "running fleet pass (smoke, 2 streams, per-stream metrics)..."
VDRIFT_BENCH_SMOKE=1 \
  VDRIFT_METRICS_JSON="$FLEET_REPORT" \
  VDRIFT_TRACE_JSON="" VDRIFT_METRICS_OPENMETRICS="" \
  VDRIFT_METRICS_JSONL="" VDRIFT_BENCH_JSON="$FLEET_BENCH_JSON" \
  VDRIFT_PROFILE_FOLDED="" VDRIFT_BENCH_LEDGER="" \
  "$FLEET_BENCH" > /dev/null

python3 - "$FLEET_REPORT" <<'EOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

def fail(msg):
    print(f"FAIL: fleet pass: {msg}", file=sys.stderr)
    sys.exit(1)

counters = report.get("counters") or {}
LABELED = re.compile(r'^(?P<family>[^{]+)\{stream="(?P<stream>[^"]+)"\}$')
sums = {}
streams = set()
for name, value in counters.items():
    m = LABELED.match(name)
    if m is None:
        continue
    sums.setdefault(m.group("family"), 0)
    sums[m.group("family")] += value
    streams.add(m.group("stream"))
if len(streams) < 2:
    fail(f"expected >= 2 per-stream series, saw streams {sorted(streams)}")
# Every labeled pipeline counter family must sum exactly to its unlabeled
# fleet aggregate (the barrier's delta-folding invariant).
checked = 0
for family, labeled_sum in sorted(sums.items()):
    aggregate = counters.get(family)
    if aggregate is None:
        fail(f"labeled family {family} has no unlabeled aggregate")
    if labeled_sum != aggregate:
        fail(f"{family}: sum of per-stream series {labeled_sum} "
             f"!= aggregate {aggregate}")
    checked += 1
if checked == 0:
    fail("no labeled counter families found")
frames = counters.get("vdrift.pipeline.frames", 0)
if frames <= 0:
    fail("fleet processed no frames")
if counters.get("vdrift.fleet.rounds", 0) <= 0:
    fail("fleet recorded no scheduling rounds")

# Supervision: every stream must expose a health gauge whose value is a
# legal HealthState (0=healthy .. 4=retired).
gauges = report.get("gauges") or {}
HEALTH = re.compile(r'^vdrift\.serve\.health\{stream="(?P<stream>[^"]+)"\}$')
health = {}
for name, value in gauges.items():
    m = HEALTH.match(name)
    if m is not None:
        health[m.group("stream")] = value
missing = streams - set(health)
if missing:
    fail(f"streams {sorted(missing)} have no vdrift.serve.health gauge")
for stream, value in sorted(health.items()):
    if value != int(value) or not 0 <= value <= 4:
        fail(f'vdrift.serve.health{{stream="{stream}"}} = {value} is not a '
             "HealthState in [0, 4]")

# Publication gate: the {reason=...} rejection series must sum exactly to
# the unlabeled aggregate (both zero when nothing was rejected).
REASON = re.compile(r'^vdrift\.serve\.publish_rejected\{reason="[^"]+"\}$')
reason_sum = sum(v for n, v in counters.items() if REASON.match(n))
rejected = counters.get("vdrift.serve.publish_rejected")
if rejected is None:
    fail("vdrift.serve.publish_rejected aggregate counter is missing")
if reason_sum != rejected:
    fail(f"publish_rejected {{reason=...}} series sum {reason_sum} "
         f"!= aggregate {rejected}")

print(f"OK: fleet pass: {checked} counter families over "
      f"{len(streams)} streams sum exactly to the fleet aggregates "
      f"({frames} frames); {len(health)} health gauges in range; "
      f"publish_rejected reasons sum to {rejected}")
EOF

echo "ALL CHECKS PASSED"
