#!/usr/bin/env bash
# Runs one bench harness with the full observability surface armed and
# validates everything it emits:
#   - the metrics JSON report (counters, DI latency histogram, episodes),
#   - the flight-recorder Chrome trace (well-formed event array, ph in
#     {B,E,X}, monotonic timestamps per tid, nested pipeline stage spans,
#     tensor-op events carrying FLOP args),
#   - the BENCH_*.json harness report (schema + quantile ordering).
#
# Usage: tools/check_metrics.sh [build_dir]
# Env:   VDRIFT_BENCH_DATASET (default Tokyo — the cheapest workbench).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_table6_detection_time"
if [[ ! -x "$BENCH" ]]; then
  echo "FAIL: $BENCH not built (cmake --build $BUILD_DIR first)" >&2
  exit 1
fi

export VDRIFT_BENCH_DATASET="${VDRIFT_BENCH_DATASET:-Tokyo}"
REPORT="$(mktemp /tmp/vdrift_metrics.XXXXXX.json)"
TRACE="$(mktemp /tmp/vdrift_trace.XXXXXX.json)"
BENCH_JSON="$(mktemp /tmp/vdrift_bench.XXXXXX.json)"
trap 'rm -f "$REPORT" "$TRACE" "$BENCH_JSON"' EXIT
export VDRIFT_METRICS_JSON="$REPORT"
export VDRIFT_TRACE_JSON="$TRACE"
export VDRIFT_BENCH_JSON="$BENCH_JSON"

echo "running $BENCH (dataset=$VDRIFT_BENCH_DATASET, trace+bench armed)..."
"$BENCH"

for f in "$REPORT" "$TRACE" "$BENCH_JSON"; do
  if [[ ! -s "$f" ]]; then
    echo "FAIL: bench did not write $f" >&2
    exit 1
  fi
done

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)

if not report.get("counters"):
    fail("no counters in report")
hist = report.get("histograms", {}).get("vdrift.di.observe_seconds")
if hist is None:
    fail("missing vdrift.di.observe_seconds histogram")
if hist.get("count", 0) <= 0:
    fail("DI latency histogram is empty")
for q in ("p50", "p99"):
    if q not in hist:
        fail(f"DI latency histogram missing {q}")
    if not (0 <= hist[q] <= hist.get("max", float("inf")) + 1e-12):
        fail(f"DI latency {q}={hist[q]} outside [0, max]")
episodes = report.get("episodes")
if not episodes:
    fail("no drift episodes captured")
for episode in episodes:
    if not episode.get("frames"):
        fail("episode with empty frame trace")
    if not episode["frames"][-1].get("drift"):
        fail("episode trace does not end on the drift frame")

print(f"OK: {len(report['counters'])} counters, "
      f"{len(report.get('histograms', {}))} histograms, "
      f"DI p50={hist['p50']:.6f}s p99={hist['p99']:.6f}s, "
      f"{len(episodes)} drift episode(s)")
EOF

python3 - "$TRACE" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

def fail(msg):
    print(f"FAIL: trace: {msg}", file=sys.stderr)
    sys.exit(1)

events = trace.get("traceEvents")
if not isinstance(events, list) or not events:
    fail("traceEvents missing or empty")
last_ts = {}
names = set()
op_events = 0
flop_events = 0
for e in events:
    ph = e.get("ph")
    if ph not in ("B", "E", "X"):
        fail(f"bad phase {ph!r} in event {e}")
    for key in ("name", "ts", "pid", "tid"):
        if key not in e:
            fail(f"event missing {key}: {e}")
    tid = e["tid"]
    if e["ts"] < last_ts.get(tid, float("-inf")):
        fail(f"timestamps not monotonic on tid {tid} at {e['name']}")
    last_ts[tid] = e["ts"]
    names.add(e["name"])
    if e.get("cat") == "op":
        op_events += 1
        if ph != "X":
            fail("op event without complete (X) phase")
        if "dur" not in e:
            fail("op event missing dur")
        if e.get("args", {}).get("flops", 0) > 0:
            flop_events += 1
for stage in ("vdrift.pipeline.run_seconds",
              "vdrift.pipeline.detect_seconds",
              "vdrift.pipeline.select_seconds",
              "vdrift.pipeline.query_seconds"):
    if stage not in names:
        fail(f"missing pipeline stage span {stage}")
if op_events == 0:
    fail("no tensor/nn op events recorded")
if flop_events == 0:
    fail("no op event carries a positive FLOP count")

print(f"OK: trace has {len(events)} events on {len(last_ts)} thread(s), "
      f"{op_events} op event(s) ({flop_events} with FLOPs), "
      f"nested pipeline stage spans present")
EOF

python3 - "$BENCH_JSON" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

def fail(msg):
    print(f"FAIL: bench report: {msg}", file=sys.stderr)
    sys.exit(1)

for key in ("name", "git_rev", "config", "counters", "stages",
            "throughput_fps", "flops_total", "bytes_total"):
    if key not in report:
        fail(f"missing top-level key {key}")
for key in ("repeats", "warmup", "seed", "smoke", "dataset_filter"):
    if key not in report["config"]:
        fail(f"config missing {key}")
if not report["stages"]:
    fail("no stages recorded")
populated = 0
for name, stage in report["stages"].items():
    for key in ("count", "fps", "min", "max", "mean", "p50", "p90", "p99",
                "sum_seconds"):
        if key not in stage:
            fail(f"stage {name} missing {key}")
    if stage["count"] > 0:
        populated += 1
        if not (stage["p50"] <= stage["p90"] + 1e-12
                and stage["p90"] <= stage["p99"] + 1e-12):
            fail(f"stage {name} quantiles not ordered: "
                 f"{stage['p50']} / {stage['p90']} / {stage['p99']}")
if populated == 0:
    fail("every stage is empty")
if report["throughput_fps"] <= 0:
    fail(f"non-positive throughput_fps {report['throughput_fps']}")
if report["flops_total"] <= 0:
    fail("flops_total not positive (kernel probes inactive?)")

print(f"OK: bench report {report['name']} @ {report['git_rev']}: "
      f"{populated} populated stage(s), "
      f"throughput {report['throughput_fps']:.2f} fps, "
      f"{report['flops_total']:,} FLOPs")
EOF
