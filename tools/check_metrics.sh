#!/usr/bin/env bash
# Runs one bench harness and validates the metrics JSON report it emits:
# the report must parse, carry a per-frame DI latency histogram with
# p50/p99, non-empty counters, and at least one drift episode.
#
# Usage: tools/check_metrics.sh [build_dir]
# Env:   VDRIFT_BENCH_DATASET (default Tokyo — the cheapest workbench).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_table6_detection_time"
if [[ ! -x "$BENCH" ]]; then
  echo "FAIL: $BENCH not built (cmake --build $BUILD_DIR first)" >&2
  exit 1
fi

export VDRIFT_BENCH_DATASET="${VDRIFT_BENCH_DATASET:-Tokyo}"
REPORT="$(mktemp /tmp/vdrift_metrics.XXXXXX.json)"
trap 'rm -f "$REPORT"' EXIT
export VDRIFT_METRICS_JSON="$REPORT"

echo "running $BENCH (dataset=$VDRIFT_BENCH_DATASET)..."
"$BENCH"

if [[ ! -s "$REPORT" ]]; then
  echo "FAIL: bench did not write $REPORT" >&2
  exit 1
fi

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)

if not report.get("counters"):
    fail("no counters in report")
hist = report.get("histograms", {}).get("vdrift.di.observe_seconds")
if hist is None:
    fail("missing vdrift.di.observe_seconds histogram")
if hist.get("count", 0) <= 0:
    fail("DI latency histogram is empty")
for q in ("p50", "p99"):
    if q not in hist:
        fail(f"DI latency histogram missing {q}")
    if not (0 <= hist[q] <= hist.get("max", float("inf")) + 1e-12):
        fail(f"DI latency {q}={hist[q]} outside [0, max]")
episodes = report.get("episodes")
if not episodes:
    fail("no drift episodes captured")
for episode in episodes:
    if not episode.get("frames"):
        fail("episode with empty frame trace")
    if not episode["frames"][-1].get("drift"):
        fail("episode trace does not end on the drift frame")

print(f"OK: {len(report['counters'])} counters, "
      f"{len(report.get('histograms', {}))} histograms, "
      f"DI p50={hist['p50']:.6f}s p99={hist['p99']:.6f}s, "
      f"{len(episodes)} drift episode(s)")
EOF
