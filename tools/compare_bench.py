#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json harness reports.

Compares a candidate report (or a directory of them) against a baseline
and exits non-zero when any shared stage's p50 latency slowed down by more
than the threshold, or the headline throughput dropped by more than the
threshold. Stages whose baseline p50 is below --min-seconds are ignored
(timer noise dominates down there).

Usage:
  tools/compare_bench.py --baseline BENCH_x.json --candidate BENCH_y.json
  tools/compare_bench.py --baseline baseline_dir/ --candidate out_dir/
  tools/compare_bench.py --baseline base/ --candidate out/ --threshold 0.1
  tools/compare_bench.py --baseline base/ --candidate out/ --json

Directory mode pairs files by filename; candidates without a baseline
counterpart are reported as "new" and skipped. With --json the human table
is replaced by one machine-readable verdict object on stdout (the exit
code is unchanged, so scripts can use either).
"""

import argparse
import json
import math
import os
import sys


def finite_or_none(value):
    """JSON has no Infinity; a missing ratio is explicit null instead."""
    return value if math.isfinite(value) else None


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    for key in ("name", "stages", "throughput_fps"):
        if key not in report:
            raise ValueError(f"{path}: not a bench report (missing {key!r})")
    return report


def pair_reports(baseline, candidate, quiet=False):
    """Yields (label, baseline_path, candidate_path) for file or dir mode."""
    if os.path.isdir(candidate) != os.path.isdir(baseline):
        raise ValueError("--baseline and --candidate must both be files or "
                         "both be directories")
    if not os.path.isdir(candidate):
        yield os.path.basename(candidate), baseline, candidate
        return
    names = sorted(n for n in os.listdir(candidate)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        raise ValueError(f"no BENCH_*.json in {candidate}")
    for name in names:
        base = os.path.join(baseline, name)
        if not os.path.exists(base):
            if not quiet:
                print(f"  new (no baseline): {name}")
            continue
        yield name, base, os.path.join(candidate, name)


def compare_one(label, base, cand, threshold, min_seconds, quiet=False):
    """Prints the comparison (unless quiet); returns the regression
    descriptions and a machine-readable record of every comparison made."""
    regressions = []
    record = {
        "report": label,
        "baseline_rev": base.get("git_rev", "?"),
        "candidate_rev": cand.get("git_rev", "?"),
        "stages": [],
    }
    if not quiet:
        print(f"{label}: {record['baseline_rev']} -> "
              f"{record['candidate_rev']}")
    shared = sorted(set(base["stages"]) & set(cand["stages"]))
    if not shared:
        regressions.append(f"{label}: no shared stages with baseline")
    for stage in shared:
        b = base["stages"][stage]
        c = cand["stages"][stage]
        if b.get("count", 0) <= 0 or c.get("count", 0) <= 0:
            continue
        if b["p50"] < min_seconds:
            continue
        ratio = c["p50"] / b["p50"] if b["p50"] > 0 else float("inf")
        regressed = ratio > 1.0 + threshold
        record["stages"].append({
            "stage": stage,
            "baseline_p50": b["p50"],
            "candidate_p50": c["p50"],
            "ratio": finite_or_none(ratio),
            "regressed": regressed,
        })
        if regressed:
            regressions.append(
                f"{label}: stage {stage} p50 {b['p50']:.6f}s -> "
                f"{c['p50']:.6f}s ({ratio:.2f}x, limit "
                f"{1.0 + threshold:.2f}x)")
        if not quiet:
            print(f"  [{'R' if regressed else ' '}] {stage}: "
                  f"p50 {b['p50']:.6f}s -> {c['p50']:.6f}s ({ratio:.2f}x)")
    b_fps = base["throughput_fps"]
    c_fps = cand["throughput_fps"]
    fps_regressed = b_fps > 0 and c_fps < b_fps * (1.0 - threshold)
    record["throughput"] = {
        "baseline_fps": b_fps,
        "candidate_fps": c_fps,
        "ratio": finite_or_none(c_fps / b_fps) if b_fps > 0 else None,
        "regressed": fps_regressed,
    }
    if fps_regressed:
        regressions.append(
            f"{label}: throughput {b_fps:.2f} -> {c_fps:.2f} fps "
            f"({c_fps / b_fps:.2f}x, limit {1.0 - threshold:.2f}x)")
    if not quiet:
        print(f"  [{'R' if fps_regressed else ' '}] throughput: "
              f"{b_fps:.2f} -> {c_fps:.2f} fps")
    return regressions, record


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="baseline BENCH_*.json or a directory of them")
    parser.add_argument("--candidate", required=True,
                        help="candidate BENCH_*.json or a directory of them")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional p50/throughput regression "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--min-seconds", type=float, default=1e-5,
                        help="ignore stages whose baseline p50 is below "
                             "this (default 1e-5 s)")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable verdict object on "
                             "stdout instead of the table")
    args = parser.parse_args()

    regressions = []
    records = []
    try:
        for label, base_path, cand_path in pair_reports(args.baseline,
                                                        args.candidate,
                                                        quiet=args.json):
            regs, record = compare_one(label, load_report(base_path),
                                       load_report(cand_path),
                                       args.threshold, args.min_seconds,
                                       quiet=args.json)
            regressions += regs
            records.append(record)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        if args.json:
            print(json.dumps({"ok": False, "error": str(err)}))
        else:
            print(f"FAIL: {err}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps({
            "ok": not regressions,
            "threshold": args.threshold,
            "min_seconds": args.min_seconds,
            "reports": records,
            "regressions": regressions,
        }, indent=2, sort_keys=True))
        return 1 if regressions else 0

    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nOK: no stage regressed beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
