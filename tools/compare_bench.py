#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json harness reports.

Compares a candidate report (or a directory of them) against a baseline
and exits non-zero when any shared stage's p50 latency slowed down by more
than the threshold, or the headline throughput dropped by more than the
threshold. Stages whose baseline p50 is below --min-seconds are ignored
(timer noise dominates down there).

Usage:
  tools/compare_bench.py --baseline BENCH_x.json --candidate BENCH_y.json
  tools/compare_bench.py --baseline baseline_dir/ --candidate out_dir/
  tools/compare_bench.py --baseline base/ --candidate out/ --threshold 0.1

Directory mode pairs files by filename; candidates without a baseline
counterpart are reported as "new" and skipped.
"""

import argparse
import json
import os
import sys


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    for key in ("name", "stages", "throughput_fps"):
        if key not in report:
            raise ValueError(f"{path}: not a bench report (missing {key!r})")
    return report


def pair_reports(baseline, candidate):
    """Yields (label, baseline_path, candidate_path) for file or dir mode."""
    if os.path.isdir(candidate) != os.path.isdir(baseline):
        raise ValueError("--baseline and --candidate must both be files or "
                         "both be directories")
    if not os.path.isdir(candidate):
        yield os.path.basename(candidate), baseline, candidate
        return
    names = sorted(n for n in os.listdir(candidate)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        raise ValueError(f"no BENCH_*.json in {candidate}")
    for name in names:
        base = os.path.join(baseline, name)
        if not os.path.exists(base):
            print(f"  new (no baseline): {name}")
            continue
        yield name, base, os.path.join(candidate, name)


def compare_one(label, base, cand, threshold, min_seconds):
    """Prints the comparison; returns the list of regression descriptions."""
    regressions = []
    print(f"{label}: {base.get('git_rev', '?')} -> "
          f"{cand.get('git_rev', '?')}")
    shared = sorted(set(base["stages"]) & set(cand["stages"]))
    if not shared:
        regressions.append(f"{label}: no shared stages with baseline")
    for stage in shared:
        b = base["stages"][stage]
        c = cand["stages"][stage]
        if b.get("count", 0) <= 0 or c.get("count", 0) <= 0:
            continue
        if b["p50"] < min_seconds:
            continue
        ratio = c["p50"] / b["p50"] if b["p50"] > 0 else float("inf")
        marker = " "
        if ratio > 1.0 + threshold:
            marker = "R"
            regressions.append(
                f"{label}: stage {stage} p50 {b['p50']:.6f}s -> "
                f"{c['p50']:.6f}s ({ratio:.2f}x, limit "
                f"{1.0 + threshold:.2f}x)")
        print(f"  [{marker}] {stage}: p50 {b['p50']:.6f}s -> "
              f"{c['p50']:.6f}s ({ratio:.2f}x)")
    b_fps = base["throughput_fps"]
    c_fps = cand["throughput_fps"]
    if b_fps > 0 and c_fps < b_fps * (1.0 - threshold):
        regressions.append(
            f"{label}: throughput {b_fps:.2f} -> {c_fps:.2f} fps "
            f"({c_fps / b_fps:.2f}x, limit {1.0 - threshold:.2f}x)")
        print(f"  [R] throughput: {b_fps:.2f} -> {c_fps:.2f} fps")
    else:
        print(f"  [ ] throughput: {b_fps:.2f} -> {c_fps:.2f} fps")
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="baseline BENCH_*.json or a directory of them")
    parser.add_argument("--candidate", required=True,
                        help="candidate BENCH_*.json or a directory of them")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional p50/throughput regression "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--min-seconds", type=float, default=1e-5,
                        help="ignore stages whose baseline p50 is below "
                             "this (default 1e-5 s)")
    args = parser.parse_args()

    regressions = []
    try:
        for label, base_path, cand_path in pair_reports(args.baseline,
                                                        args.candidate):
            regressions += compare_one(label, load_report(base_path),
                                       load_report(cand_path),
                                       args.threshold, args.min_seconds)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return 2

    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nOK: no stage regressed beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
