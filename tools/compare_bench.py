#!/usr/bin/env python3
"""Variance-aware perf-regression gate over BENCH reports and run ledgers.

The old gate compared two single runs against a fixed threshold; that is
how a 28% code-layout swing (PR 5, msbo_select) and a 1.3x one-off
(PR 7, classifier_predict) both produced false alarms. This gate is
statistical instead:

  * Evidence is repeat-level: each side contributes every raw sample it
    has — per-repeat wall times from BENCH "samples" arrays, plus every
    record of a run ledger (.jsonl appended by VDRIFT_BENCH_LEDGER).
  * The noise floor is estimated from the data (median absolute
    deviation, scaled to sigma), never assumed.
  * The verdict comes from a seeded bootstrap confidence interval on the
    ratio of medians: "regressed" only when the whole CI clears the
    noise margin, "improved" when it clears it downward, "pass"
    otherwise. One loud run cannot fail the gate by itself.
  * On "regressed", the per-kernel op-probe tables are diffed and the
    kernels whose time moved are named, separating count changes (the
    workload changed) from per-call latency changes (the code got
    slower), and flagging the layout-luck signature — per-call latency
    moved while FLOPs and calls stayed bit-identical — which is exactly
    what PR 5 diagnosed by hand.

Inputs may be BENCH_*.json reports (one run each) or ledger .jsonl files
(many runs each), or directories holding either; sides are paired by
bench name. Machine fingerprints are checked: comparing across different
fingerprint ids downgrades the verdict to a warning, because such
numbers are not comparable evidence.

Usage:
  tools/compare_bench.py --baseline bench/baselines/threads1 --candidate out/
  tools/compare_bench.py --baseline base.jsonl --candidate BENCH_x.json
  tools/compare_bench.py --baseline base/ --candidate out/ --json
  tools/compare_bench.py --baseline base/ --candidate out/ --smoke
  tools/compare_bench.py --self-test

Exit codes: 0 = pass/improved, 1 = regression, 2 = usage/schema error.
--smoke only checks structure (reports parse, stages shared), never perf:
smoke runs are 1-repeat liveness probes, not measurements.
"""

import argparse
import json
import math
import os
import random
import sys

# MAD -> sigma for a normal distribution.
MAD_SCALE = 1.4826
# Relative tolerance below which two call counts are "the same workload".
CALLS_SAME_TOL = 0.01
# Per-call latency must move at least this much to be named a mover.
KERNEL_MOVE_TOL = 0.10


# ---------------------------------------------------------------------------
# Small robust-statistics helpers (no numpy in the container).

def median(values):
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values):
    """Median absolute deviation (unscaled)."""
    if len(values) < 2:
        return 0.0
    center = median(values)
    return median([abs(v - center) for v in values])


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def bootstrap_ratio_ci(base, cand, rng, iterations, confidence=0.95):
    """CI for median(cand)/median(base) by resampling both sides."""
    ratios = []
    for _ in range(iterations):
        b = median([rng.choice(base) for _ in base])
        c = median([rng.choice(cand) for _ in cand])
        if b > 0:
            ratios.append(c / b)
    ratios.sort()
    alpha = (1.0 - confidence) / 2.0
    return percentile(ratios, alpha), percentile(ratios, 1.0 - alpha)


# ---------------------------------------------------------------------------
# Loading: every input becomes a list of uniform "run" dicts.

def run_from_stages(bench, git_rev, machine, stages_doc, kernels_doc,
                    throughput):
    stages = {}
    for name, st in (stages_doc or {}).items():
        if st.get("count", 0) <= 0 or "p50" not in st:
            continue
        stages[name] = {
            "p50": float(st["p50"]),
            "count": int(st.get("count", 0)),
            "samples": [float(s) for s in st.get("samples", [])],
        }
    kernels = {}
    for name, k in (kernels_doc or {}).items():
        kernels[name] = {
            "calls": int(k.get("calls", 0)),
            "flops": int(k.get("flops", 0)),
            "bytes": int(k.get("bytes", 0)),
            "seconds": float(k.get("seconds", 0.0)),
        }
    machine = machine or {}
    return {
        "bench": bench,
        "git_rev": git_rev or "unknown",
        "machine_id": machine.get("id", "unknown"),
        "machine": machine,
        "stages": stages,
        "kernels": kernels,
        "throughput": float(throughput or 0.0),
    }


def run_from_report(doc, path):
    for key in ("name", "stages", "throughput_fps"):
        if key not in doc:
            raise ValueError(f"{path}: not a bench report (missing {key!r})")
    return run_from_stages(doc["name"], doc.get("git_rev"),
                           doc.get("machine"), doc["stages"],
                           doc.get("kernels"), doc["throughput_fps"])


def run_from_ledger_record(rec, path):
    for key in ("bench", "stages"):
        if key not in rec:
            raise ValueError(f"{path}: not a ledger record (missing {key!r})")
    return run_from_stages(rec["bench"], rec.get("git_rev"),
                           rec.get("machine"), rec["stages"],
                           rec.get("kernels"), rec.get("throughput_fps"))


def load_runs_file(path, sink, corrupt):
    """Appends the run(s) in `path` into sink[bench_name]."""
    if path.endswith(".jsonl"):
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                    run = run_from_ledger_record(rec, path)
                except (json.JSONDecodeError, ValueError, TypeError):
                    # Torn append / truncation: skip and count, the rest
                    # of the history is still evidence.
                    corrupt.append(path)
                    continue
                sink.setdefault(run["bench"], []).append(run)
        return
    with open(path) as f:
        doc = json.load(f)
    run = run_from_report(doc, path)
    sink.setdefault(run["bench"], []).append(run)


def load_side(path):
    """Loads a file or directory into {bench_name: [run, ...]}."""
    sink = {}
    corrupt = []
    if os.path.isdir(path):
        names = sorted(os.listdir(path))
        files = [os.path.join(path, n) for n in names
                 if (n.startswith("BENCH_") and n.endswith(".json"))
                 or n.endswith(".jsonl")]
        if not files:
            raise ValueError(f"no BENCH_*.json or *.jsonl in {path}")
        for f in files:
            load_runs_file(f, sink, corrupt)
    else:
        load_runs_file(path, sink, corrupt)
    if corrupt:
        print(f"  note: skipped {len(corrupt)} corrupt ledger line(s)",
              file=sys.stderr)
    if not sink:
        raise ValueError(f"no parsable runs in {path}")
    return sink


# ---------------------------------------------------------------------------
# The verdict machinery.

def gather_stage_evidence(runs, stage):
    """Evidence for `stage`: (pooled samples, per-run medians).

    The pooled repeat-level samples feed the bootstrap CI on the ratio of
    medians. The per-run medians are the repeat dimension for the noise
    margin: spread *within* a run measures workload heterogeneity (some
    frames are simply slower than others), spread *between* runs measures
    the machine noise a verdict must clear. Stages with no raw samples
    fall back to each run's recorded p50 for both."""
    pooled = []
    run_medians = []
    for run in runs:
        stats = run["stages"].get(stage)
        if stats is None:
            continue
        raw = stats.get("samples") or []
        if raw:
            pooled.extend(raw)
            run_medians.append(median(raw))
        else:
            run_medians.append(stats["p50"])
    if not pooled:
        pooled = list(run_medians)
    return pooled, run_medians


def decide(base_vals, cand_vals, opts, rng,
           base_run_meds=None, cand_run_meds=None):
    """Returns (verdict, detail) for one metric, where verdict is one of
    "pass" / "regressed" / "improved" and detail is JSON-serialisable."""
    base_med = median(base_vals)
    cand_med = median(cand_vals)
    detail = {
        "baseline_median": base_med,
        "candidate_median": cand_med,
        "baseline_n": len(base_vals),
        "candidate_n": len(cand_vals),
    }
    if base_med <= 0:
        detail["method"] = "skipped-zero-baseline"
        return "pass", detail
    ratio = cand_med / base_med
    detail["ratio"] = ratio
    if len(base_vals) < 2 and len(cand_vals) < 2:
        # One sample per side: no variance evidence at all. Fall back to
        # the blunt threshold, but say so — this is the legacy mode the
        # statistical gate exists to replace.
        detail["method"] = "single-run-threshold"
        detail["threshold"] = opts.threshold
        if ratio > 1.0 + opts.threshold:
            return "regressed", detail
        if ratio < 1.0 - opts.threshold:
            return "improved", detail
        return "pass", detail
    # The margin must be run-to-run noise. Per-frame sample spread within
    # a run is workload heterogeneity, not measurement noise — a margin
    # built from it swallows real regressions (a uniform 1.2x shift sits
    # well inside the frame-to-frame spread of a detection stage).
    rel_noises = []
    for meds in (base_run_meds or [], cand_run_meds or []):
        if len(meds) >= 2:
            grand = median(meds)
            if grand > 0:
                rel_noises.append(mad(meds) * MAD_SCALE / grand)
    if rel_noises:
        noise_rel = max(rel_noises)
        noise_sigma = noise_rel * base_med
        margin = max(opts.margin_floor, opts.noise_k * noise_rel)
        margin_basis = "between-run"
    else:
        # Single run per side: the sample spread is the only variance
        # evidence there is. Conservative (inflated) by construction.
        noise_sigma = max(mad(base_vals), mad(cand_vals)) * MAD_SCALE
        margin = max(opts.margin_floor,
                     opts.noise_k * noise_sigma / base_med)
        margin_basis = "within-run"
    lo, hi = bootstrap_ratio_ci(base_vals, cand_vals, rng, opts.bootstrap)
    detail.update({
        "method": "mad-bootstrap",
        "noise_sigma": noise_sigma,
        "margin": margin,
        "margin_basis": margin_basis,
        "ci_low": lo,
        "ci_high": hi,
        "bootstrap": opts.bootstrap,
    })
    # Regressed/improved only when the whole CI clears the noise margin:
    # a verdict is a statement about the distribution, not about one run.
    if lo > 1.0 + margin:
        return "regressed", detail
    if hi < 1.0 - margin:
        return "improved", detail
    return "pass", detail


def kernel_medians(runs):
    """Median per-kernel calls/flops/seconds across `runs`."""
    union = {}
    for run in runs:
        for name, k in run["kernels"].items():
            union.setdefault(name, []).append(k)
    out = {}
    for name, ks in union.items():
        out[name] = {
            "calls": median([k["calls"] for k in ks]),
            "flops": median([k["flops"] for k in ks]),
            "seconds": median([k["seconds"] for k in ks]),
        }
    return out


def attribute_kernels(base_runs, cand_runs):
    """Differential kernel attribution for a regressed bench: which
    kernels' time moved, and did the work move with it?"""
    base = kernel_medians(base_runs)
    cand = kernel_medians(cand_runs)
    movers = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name)
        c = cand.get(name)
        if b is None or c is None:
            movers.append({
                "kernel": name,
                "kind": "appeared" if b is None else "disappeared",
                "delta_seconds": (c or b)["seconds"] * (1 if b is None else -1),
            })
            continue
        if b["seconds"] <= 0 and c["seconds"] <= 0:
            continue  # counters only, no timing for this kernel
        delta = c["seconds"] - b["seconds"]
        calls_same = (b["calls"] > 0 and
                      abs(c["calls"] - b["calls"]) / b["calls"]
                      <= CALLS_SAME_TOL)
        b_percall = b["seconds"] / b["calls"] if b["calls"] > 0 else 0.0
        c_percall = c["seconds"] / c["calls"] if c["calls"] > 0 else 0.0
        percall_ratio = c_percall / b_percall if b_percall > 0 else 0.0
        percall_moved = (percall_ratio > 0 and
                         abs(percall_ratio - 1.0) > KERNEL_MOVE_TOL)
        if not calls_same:
            kind = "count-change"
        elif percall_moved:
            kind = "per-call-latency"
        else:
            continue  # neither work nor latency moved: not a mover
        entry = {
            "kernel": name,
            "kind": kind,
            "delta_seconds": delta,
            "calls": [b["calls"], c["calls"]],
            "per_call_ratio": percall_ratio,
        }
        # The PR 5 signature: latency moved while the work (FLOPs and
        # calls) stayed bit-identical. That is what code-layout luck
        # looks like in the counters — worth a human eyeball before
        # anyone "fixes" it.
        entry["layout_luck_signature"] = (
            kind == "per-call-latency"
            and b["calls"] == c["calls"] and b["flops"] == c["flops"])
        movers.append(entry)
    movers.sort(key=lambda m: abs(m["delta_seconds"]), reverse=True)
    return movers


def machine_ids(runs):
    return sorted({run["machine_id"] for run in runs})


def compare_bench_runs(bench, base_runs, cand_runs, opts, rng, quiet):
    """Compares one bench's evidence; returns a verdict record."""
    record = {
        "bench": bench,
        "baseline_revs": sorted({r["git_rev"] for r in base_runs}),
        "candidate_revs": sorted({r["git_rev"] for r in cand_runs}),
        "baseline_runs": len(base_runs),
        "candidate_runs": len(cand_runs),
        "stages": [],
        "warnings": [],
        "verdict": "pass",
    }
    base_ids = machine_ids(base_runs)
    cand_ids = machine_ids(cand_runs)
    if set(base_ids) != set(cand_ids) or len(base_ids) > 1:
        record["warnings"].append(
            f"machine fingerprints differ (baseline {base_ids}, candidate "
            f"{cand_ids}): latencies are not comparable across machines, "
            "treat any verdict here as advisory")
    if not quiet:
        print(f"{bench}: {'+'.join(record['baseline_revs'])} "
              f"[{len(base_runs)} run(s)] -> "
              f"{'+'.join(record['candidate_revs'])} "
              f"[{len(cand_runs)} run(s)]")
        for w in record["warnings"]:
            print(f"  warning: {w}")

    base_stages = set()
    cand_stages = set()
    for run in base_runs:
        base_stages.update(run["stages"])
    for run in cand_runs:
        cand_stages.update(run["stages"])
    shared = sorted(base_stages & cand_stages)
    if not shared:
        record["warnings"].append("no shared stages with baseline")
        record["verdict"] = "error"
        return record

    worst = "pass"
    for stage in shared:
        base_vals, base_meds = gather_stage_evidence(base_runs, stage)
        cand_vals, cand_meds = gather_stage_evidence(cand_runs, stage)
        if median(base_vals) < opts.min_seconds:
            continue  # timer noise dominates down there
        verdict, detail = decide(base_vals, cand_vals, opts, rng,
                                 base_run_meds=base_meds,
                                 cand_run_meds=cand_meds)
        detail["stage"] = stage
        detail["verdict"] = verdict
        record["stages"].append(detail)
        if verdict == "regressed":
            worst = "regressed"
        elif verdict == "improved" and worst == "pass":
            worst = "improved"
        if not quiet:
            mark = {"pass": " ", "regressed": "R", "improved": "+"}[verdict]
            span = ""
            if "ci_low" in detail:
                span = (f" CI[{detail['ci_low']:.2f},"
                        f"{detail['ci_high']:.2f}]"
                        f" margin {detail['margin']:.2f}")
            print(f"  [{mark}] {stage}: p50 {detail['baseline_median']:.6f}s"
                  f" -> {detail['candidate_median']:.6f}s"
                  f" ({detail.get('ratio', 0.0):.2f}x,"
                  f" n={detail['baseline_n']}/{detail['candidate_n']},"
                  f" {detail['method']}{span})")

    base_fps = [r["throughput"] for r in base_runs if r["throughput"] > 0]
    cand_fps = [r["throughput"] for r in cand_runs if r["throughput"] > 0]
    if base_fps and cand_fps:
        # Throughput is frames per second: invert so "regressed" keeps
        # meaning "slower" in decide()'s ratio arithmetic.
        base_inv = [1.0 / v for v in base_fps]
        cand_inv = [1.0 / v for v in cand_fps]
        # One throughput number per run: the values are their own
        # run-level medians.
        verdict, detail = decide(base_inv, cand_inv, opts, rng,
                                 base_run_meds=base_inv,
                                 cand_run_meds=cand_inv)
        detail["metric"] = "throughput_fps"
        detail["verdict"] = verdict
        record["throughput"] = detail
        if verdict == "regressed":
            worst = "regressed"
        elif verdict == "improved" and worst == "pass":
            worst = "improved"
        if not quiet:
            mark = {"pass": " ", "regressed": "R", "improved": "+"}[verdict]
            print(f"  [{mark}] throughput: {median(base_fps):.2f} -> "
                  f"{median(cand_fps):.2f} fps")

    record["verdict"] = worst
    if worst == "regressed":
        movers = attribute_kernels(base_runs, cand_runs)
        record["kernel_attribution"] = movers
        if not quiet:
            if movers:
                print("  kernel attribution (largest time movers first):")
                for m in movers[:8]:
                    extra = ""
                    if m.get("layout_luck_signature"):
                        extra = ("  ** layout-luck signature: FLOPs/calls "
                                 "identical, latency moved — suspect code "
                                 "layout, not the algorithm **")
                    if m["kind"] == "count-change":
                        extra = (f"  calls {m['calls'][0]:.0f} -> "
                                 f"{m['calls'][1]:.0f} (workload changed)")
                    print(f"    {m['kernel']}: {m['kind']}, "
                          f"{m['delta_seconds']:+.6f}s{extra}")
            else:
                print("  kernel attribution: no per-kernel timing in the "
                      "evidence (run with VDRIFT_KERNEL_PROFILE=1)")
    return record


# ---------------------------------------------------------------------------
# Smoke mode: structural liveness only.

def smoke_check(base_side, cand_side, quiet):
    """Validates that both sides parse and overlap; never judges perf."""
    problems = []
    shared_benches = sorted(set(base_side) & set(cand_side))
    for bench in sorted(set(cand_side) - set(base_side)):
        if not quiet:
            print(f"  new (no baseline): {bench}")
    if not shared_benches:
        problems.append("no bench appears on both sides")
    for bench in shared_benches:
        base_stages = set()
        cand_stages = set()
        for run in base_side[bench]:
            base_stages.update(run["stages"])
        for run in cand_side[bench]:
            cand_stages.update(run["stages"])
        if not base_stages & cand_stages:
            problems.append(f"{bench}: no shared stages")
        elif not quiet:
            print(f"  {bench}: {len(base_stages & cand_stages)} shared "
                  f"stage(s), schemas OK")
    return problems


# ---------------------------------------------------------------------------
# Self-test: synthetic histories with known ground truth.

def synth_run(rng, bench, stage_means, kernels, machine_id="m-self",
              rev="base", nsamples=8, noise=0.02):
    stages = {}
    for stage, mean in stage_means.items():
        samples = [max(1e-9, rng.gauss(mean, mean * noise))
                   for _ in range(nsamples)]
        stages[stage] = {"p50": median(samples), "count": len(samples),
                         "samples": samples}
    return {
        "bench": bench, "git_rev": rev, "machine_id": machine_id,
        "machine": {"id": machine_id},
        "stages": stages,
        "kernels": {name: dict(k) for name, k in kernels.items()},
        "throughput": 1.0 / stage_means[next(iter(stage_means))],
    }


def self_test(opts):
    rng = random.Random(opts.seed)
    failures = []

    def check(name, cond, context=""):
        status = "ok" if cond else "FAIL"
        print(f"  [{status}] {name}{(' — ' + context) if context else ''}")
        if not cond:
            failures.append(name)

    base_kernels = {
        "nn.conv2d_forward": {"calls": 1000, "flops": 500000000,
                              "bytes": 1 << 20, "seconds": 0.060},
        "tensor.im2col": {"calls": 500, "flops": 0, "bytes": 1 << 19,
                          "seconds": 0.020},
    }
    def runs(n, scale=1.0, kernels=None, rev="base", noise=0.02):
        return [synth_run(rng, "synthetic",
                          {"detect": 0.100 * scale, "track": 0.020 * scale},
                          kernels or base_kernels, rev=rev, noise=noise)
                for _ in range(n)]

    print("self-test: injected 20% regression must be flagged and "
          "attributed")
    slow_kernels = {
        "nn.conv2d_forward": {"calls": 1000, "flops": 500000000,
                              "bytes": 1 << 20, "seconds": 0.080},
        "tensor.im2col": {"calls": 800, "flops": 0, "bytes": 1 << 19,
                          "seconds": 0.032},
    }
    rec = compare_bench_runs("synthetic", runs(6),
                             runs(4, scale=1.20, kernels=slow_kernels,
                                  rev="cand"),
                             opts, random.Random(opts.seed + 1), quiet=True)
    check("regression flagged", rec["verdict"] == "regressed",
          f"verdict={rec['verdict']}")
    movers = rec.get("kernel_attribution", [])
    names = [m["kernel"] for m in movers]
    check("slowed kernel named", "nn.conv2d_forward" in names, str(names))
    conv = next((m for m in movers if m["kernel"] == "nn.conv2d_forward"),
                {})
    check("per-call latency vs count-change separated",
          conv.get("kind") == "per-call-latency"
          and any(m["kernel"] == "tensor.im2col"
                  and m["kind"] == "count-change" for m in movers))
    check("layout-luck signature on work-identical slowdown",
          conv.get("layout_luck_signature") is True)

    print("self-test: pure noise must pass")
    rec = compare_bench_runs("synthetic", runs(6), runs(4, rev="cand"),
                             opts, random.Random(opts.seed + 2), quiet=True)
    check("noise passes", rec["verdict"] == "pass",
          f"verdict={rec['verdict']}")

    print("self-test: two identical runs on the same machine must pass")
    identical = runs(1)
    rec = compare_bench_runs("synthetic", identical,
                             [dict(identical[0], git_rev="cand")],
                             opts, random.Random(opts.seed + 3), quiet=True)
    check("identical runs pass", rec["verdict"] == "pass",
          f"verdict={rec['verdict']}")

    print("self-test: a 25% improvement must be reported as improvement")
    rec = compare_bench_runs("synthetic", runs(6),
                             runs(4, scale=0.75, rev="cand"),
                             opts, random.Random(opts.seed + 4), quiet=True)
    check("improvement reported", rec["verdict"] == "improved",
          f"verdict={rec['verdict']}")

    print("self-test: cross-machine comparison must warn")
    other = runs(3)
    for run in other:
        run["machine_id"] = "m-other"
    rec = compare_bench_runs("synthetic", runs(3), other, opts,
                             random.Random(opts.seed + 5), quiet=True)
    check("fingerprint mismatch warned",
          any("fingerprints differ" in w for w in rec["warnings"]))

    if failures:
        print(f"self-test: {len(failures)} FAILURE(S): {failures}",
              file=sys.stderr)
        return 1
    print("self-test: all checks passed")
    return 0


# ---------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline",
                        help="baseline: BENCH_*.json, ledger .jsonl, or a "
                             "directory of either")
    parser.add_argument("--candidate",
                        help="candidate: same forms as --baseline")
    parser.add_argument("--history", action="append", default=[],
                        help="extra ledger .jsonl (or directory) merged "
                             "into the baseline evidence; repeatable")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fallback fractional threshold when only one "
                             "run exists per side (default 0.25)")
    parser.add_argument("--margin-floor", type=float, default=0.05,
                        dest="margin_floor",
                        help="minimum fractional noise margin the CI must "
                             "clear (default 0.05)")
    parser.add_argument("--noise-k", type=float, default=3.0, dest="noise_k",
                        help="noise margin = noise_k * MAD-sigma / median "
                             "(default 3.0)")
    parser.add_argument("--min-seconds", type=float, default=1e-5,
                        help="ignore stages whose baseline median is below "
                             "this (default 1e-5 s)")
    parser.add_argument("--bootstrap", type=int, default=2000,
                        help="bootstrap resamples per CI (default 2000)")
    parser.add_argument("--seed", type=int, default=20260808,
                        help="RNG seed for the bootstrap (deterministic "
                             "verdicts)")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable verdict object on "
                             "stdout instead of the table")
    parser.add_argument("--smoke", action="store_true",
                        help="structural liveness only: schemas parse and "
                             "stages overlap; perf is never judged")
    parser.add_argument("--self-test", action="store_true",
                        help="run the synthetic-history self-test and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args)
    if not args.baseline or not args.candidate:
        parser.error("--baseline and --candidate are required "
                     "(or use --self-test)")

    try:
        base_side = load_side(args.baseline)
        cand_side = load_side(args.candidate)
        for extra in args.history:
            for bench, runs in load_side(extra).items():
                base_side.setdefault(bench, []).extend(runs)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        if args.json:
            print(json.dumps({"ok": False, "error": str(err)}))
        else:
            print(f"FAIL: {err}", file=sys.stderr)
        return 2

    if args.smoke:
        problems = smoke_check(base_side, cand_side, quiet=args.json)
        if args.json:
            print(json.dumps({"ok": not problems, "mode": "smoke",
                              "problems": problems}, indent=2,
                             sort_keys=True))
        elif problems:
            for p in problems:
                print(f"FAIL: {p}", file=sys.stderr)
        else:
            print("OK: smoke structure checks passed (perf not judged)")
        return 2 if problems else 0

    rng = random.Random(args.seed)
    records = []
    regressed = []
    for bench in sorted(set(cand_side)):
        if bench not in base_side:
            if not args.json:
                print(f"  new (no baseline): {bench}")
            continue
        record = compare_bench_runs(bench, base_side[bench],
                                    cand_side[bench], args, rng,
                                    quiet=args.json)
        records.append(record)
        if record["verdict"] in ("regressed", "error"):
            regressed.append(bench)

    if not records:
        msg = "no bench appears in both baseline and candidate"
        if args.json:
            print(json.dumps({"ok": False, "error": msg}))
        else:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps({
            "ok": not regressed,
            "margin_floor": args.margin_floor,
            "noise_k": args.noise_k,
            "bootstrap": args.bootstrap,
            "seed": args.seed,
            "reports": records,
            "regressed": regressed,
        }, indent=2, sort_keys=True))
        return 1 if regressed else 0

    if regressed:
        print(f"\nFAIL: statistically significant regression in: "
              f"{', '.join(regressed)}", file=sys.stderr)
        return 1
    improved = [r["bench"] for r in records if r["verdict"] == "improved"]
    if improved:
        print(f"\nOK: no regression; improvement in: {', '.join(improved)}")
    else:
        print("\nOK: no statistically significant regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
