// Fleet serving integration tests: N-stream determinism across thread
// counts, per-stream fault isolation, cross-stream model adoption through
// the shared copy-on-write registry, crash-drill recovery, and the
// frame-accounting books every stream must balance.

#include <sys/stat.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchutil/workbench.h"
#include "core/registry_cow.h"
#include "fault/fault.h"
#include "fault/faulty_stream.h"
#include "pipeline/pipeline.h"
#include "pipeline/provision.h"
#include "runtime/parallel.h"
#include "serve/fleet.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace vdrift::serve {
namespace {

// The six counter families the fleet folds from {stream=...} series into
// unlabeled aggregates; kept in sync with fleet.cc by the sum test below.
constexpr const char* kCounterFamilies[] = {
    "vdrift.pipeline.frames",
    "vdrift.pipeline.drifts",
    "vdrift.pipeline.frames_dropped",
    "vdrift.pipeline.selection_failures",
    "vdrift.pipeline.redeployments",
    "vdrift.pipeline.checkpoint_failures",
};

// One shared workbench (same shape as the pipeline suite's fixture): a
// Tokyo-like 3-model registry, ~360 frames per stream replica.
class FleetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    benchutil::WorkbenchOptions options =
        benchutil::DefaultWorkbenchOptions();
    options.dataset_scale = 0.008;
    options.cache_dir = "";
    options.train_frames = 220;
    bench_ = benchutil::BuildWorkbench("Tokyo", options).ValueOrDie()
                 .release();
  }

  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }

  static FleetOptions BaseOptions() {
    FleetOptions options;
    options.pipeline.selector =
        pipeline::PipelineConfig::Selector::kMsbo;
    options.pipeline.provision =
        benchutil::DefaultWorkbenchOptions().provision;
    options.pipeline.allow_training_new = false;
    options.slice_frames = 48;
    options.max_concurrent = 4;
    return options;
  }

  struct FleetRun {
    FleetReport report;
    std::shared_ptr<obs::MetricsRegistry> registry;
    int64_t sampler_windows = 0;
  };

  // Runs a fleet of n Tokyo replica streams (distinct render seeds, same
  // drift truth). `fault_spec` is the ParsePerStreamFaultSpec grammar;
  // labeled streams get their own injector and FaultyStream wrapper.
  static FleetRun RunTokyoFleet(const FleetOptions& options, int n,
                                const std::string& fault_spec = "") {
    std::vector<fault::StreamFaultPlan> plans =
        fault::ParsePerStreamFaultSpec(fault_spec).ValueOrDie();
    std::vector<std::unique_ptr<video::StreamGenerator>> streams;
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    std::vector<std::unique_ptr<fault::FaultyStream>> wrapped;
    DriftFleet fleet(options);
    EXPECT_TRUE(fleet.AddBaseModels(bench_->registry,
                                    bench_->calibration_samples)
                    .ok());
    for (int i = 0; i < n; ++i) {
      std::string label = "s" + std::to_string(i);
      streams.push_back(std::make_unique<video::StreamGenerator>(
          bench_->dataset.segments, bench_->dataset.image_size,
          bench_->dataset.seed + 100 + static_cast<uint64_t>(i)));
      StreamSpec spec;
      spec.label = label;
      spec.stream = streams.back().get();
      for (const fault::StreamFaultPlan& plan : plans) {
        if (plan.stream != label) continue;
        injectors.push_back(
            std::make_unique<fault::FaultInjector>(plan.plan, 4242));
        spec.injector = injectors.back().get();
        wrapped.push_back(std::make_unique<fault::FaultyStream>(
            streams.back().get(), spec.injector));
        spec.stream = wrapped.back().get();
      }
      EXPECT_TRUE(fleet.AddStream(spec).ok());
    }
    FleetRun run;
    run.report = fleet.Run().ValueOrDie();
    run.registry = fleet.registry();
    if (fleet.sampler() != nullptr) {
      run.sampler_windows = fleet.sampler()->windows_sampled();
    }
    return run;
  }

  static void ExpectStreamIdentical(const StreamReport& x,
                                    const StreamReport& y) {
    EXPECT_EQ(x.label, y.label);
    EXPECT_EQ(x.frames, y.frames) << x.label;
    EXPECT_EQ(x.slices, y.slices) << x.label;
    EXPECT_EQ(x.restarts, y.restarts) << x.label;
    EXPECT_EQ(x.metrics.frames, y.metrics.frames) << x.label;
    EXPECT_EQ(x.metrics.drifts_detected, y.metrics.drifts_detected)
        << x.label;
    EXPECT_EQ(x.metrics.new_models_trained, y.metrics.new_models_trained)
        << x.label;
    EXPECT_EQ(x.metrics.drift_frames, y.metrics.drift_frames) << x.label;
    EXPECT_EQ(x.metrics.detect_lags, y.metrics.detect_lags) << x.label;
    EXPECT_EQ(x.metrics.selections, y.metrics.selections) << x.label;
    EXPECT_EQ(x.metrics.selection_invocations,
              y.metrics.selection_invocations)
        << x.label;
    EXPECT_EQ(x.metrics.degradation.frames_dropped,
              y.metrics.degradation.frames_dropped)
        << x.label;
    EXPECT_EQ(x.metrics.degradation.total_events(),
              y.metrics.degradation.total_events())
        << x.label;
    ASSERT_EQ(x.metrics.per_sequence.size(), y.metrics.per_sequence.size())
        << x.label;
    for (const auto& [seq, acc] : x.metrics.per_sequence) {
      const auto it = y.metrics.per_sequence.find(seq);
      ASSERT_NE(it, y.metrics.per_sequence.end()) << x.label;
      EXPECT_EQ(acc.count_correct, it->second.count_correct) << x.label;
      EXPECT_EQ(acc.count_total, it->second.count_total) << x.label;
      EXPECT_EQ(acc.invocations, it->second.invocations) << x.label;
    }
  }

  // Zero silent frame loss: every admitted frame either answered the
  // count query or was dropped (and counted as dropped).
  static void ExpectBooksBalance(const StreamReport& stream) {
    EXPECT_EQ(stream.metrics.Totals().count_total +
                  stream.metrics.degradation.frames_dropped,
              stream.metrics.frames)
        << stream.label;
  }

  static benchutil::Workbench* bench_;
};

benchutil::Workbench* FleetFixture::bench_ = nullptr;

TEST_F(FleetFixture, EightStreamFleetIsDeterministicAcrossThreadCounts) {
  FleetOptions options = BaseOptions();
  options.sample_interval_rounds = 2;
  options.slo_spec = "default";
  FleetRun serial;
  {
    runtime::ScopedThreads scoped(1);
    serial = RunTokyoFleet(options, 8);
  }
  FleetRun parallel;
  {
    runtime::ScopedThreads scoped(4);
    parallel = RunTokyoFleet(options, 8);
  }
  ASSERT_EQ(serial.report.streams.size(), 8u);
  ASSERT_EQ(parallel.report.streams.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    ExpectStreamIdentical(serial.report.streams[i],
                          parallel.report.streams[i]);
  }
  // Every stream ran to exhaustion, drift-aware, without restarts.
  const int64_t total = bench_->dataset.total_frames();
  for (const StreamReport& stream : parallel.report.streams) {
    EXPECT_TRUE(stream.status.ok()) << stream.label;
    EXPECT_EQ(stream.frames, total) << stream.label;
    EXPECT_GE(stream.metrics.drifts_detected, 2) << stream.label;
    EXPECT_EQ(stream.restarts, 0) << stream.label;
    ExpectBooksBalance(stream);
  }
  // Fleet-level tallies agree too.
  EXPECT_EQ(serial.report.rounds, parallel.report.rounds);
  EXPECT_EQ(serial.report.backpressure_waits,
            parallel.report.backpressure_waits);
  // 8 streams over 4 slots: admission control had to queue someone.
  EXPECT_GT(parallel.report.backpressure_waits, 0);
  EXPECT_GT(parallel.report.rounds, 0);
  EXPECT_GT(parallel.sampler_windows, 0);
  // The {stream=...} series sum exactly to the unlabeled aggregates.
  for (const char* family : kCounterFamilies) {
    int64_t labeled_sum = 0;
    for (const StreamReport& stream : parallel.report.streams) {
      labeled_sum += parallel.registry
                         ->GetCounter(family, {{"stream", stream.label}})
                         .value();
    }
    EXPECT_EQ(labeled_sum, parallel.registry->GetCounter(family).value())
        << family;
  }
  // The aggregate frame counter covers every admitted frame of the fleet.
  EXPECT_EQ(
      parallel.registry->GetCounter("vdrift.pipeline.frames").value(),
      total * 8);
}

TEST_F(FleetFixture, SingleStreamFaultsDoNotPerturbTheRestOfTheFleet) {
  FleetOptions options = BaseOptions();
  FleetRun clean = RunTokyoFleet(options, 8);
  FleetRun faulted = RunTokyoFleet(
      options, 8, "s3@nan_frame:p=0.05;selector_fail:p=1.0");
  ASSERT_EQ(faulted.report.streams.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    const StreamReport& stream = faulted.report.streams[i];
    if (stream.label == "s3") {
      // The faulted stream degraded but kept its books: dropped frames
      // are counted, failed selections resolved by incumbent fallback.
      EXPECT_GT(stream.metrics.degradation.frames_dropped, 0);
      EXPECT_GT(stream.metrics.degradation.selector_failures, 0);
      EXPECT_TRUE(stream.status.ok());
      continue;
    }
    // Bit-identical to the fault-free fleet: one stream's faults never
    // leak into another stream's draw sequence or schedule.
    ExpectStreamIdentical(clean.report.streams[i], stream);
  }
  // Zero silent frame loss fleet-wide, faulted stream included.
  for (const StreamReport& stream : faulted.report.streams) {
    ExpectBooksBalance(stream);
  }
}

TEST_F(FleetFixture, CrashDrillRestoresAShardBitIdentically) {
  std::string dir = ::testing::TempDir() + "/vdrift_fleet_ckpt";
  ::mkdir(dir.c_str(), 0755);
  FleetOptions options = BaseOptions();
  options.max_concurrent = 3;
  options.checkpoint_dir = dir;
  FleetRun baseline = RunTokyoFleet(options, 3);
  options.crash_drills.push_back({"s1", 2});
  FleetRun drilled = RunTokyoFleet(options, 3);
  ASSERT_EQ(drilled.report.streams.size(), 3u);
  EXPECT_EQ(drilled.report.shard_restarts, 1);
  EXPECT_EQ(drilled.report.streams[1].restarts, 1);
  for (size_t i = 0; i < 3; ++i) {
    const StreamReport& x = baseline.report.streams[i];
    const StreamReport& y = drilled.report.streams[i];
    // The killed shard resumed from its round-1 checkpoint and finished
    // with the same frames, detections, lag histogram, and accuracy books
    // as the run that never crashed (restart/slice tallies aside).
    EXPECT_EQ(x.frames, y.frames) << x.label;
    EXPECT_EQ(x.metrics.frames, y.metrics.frames) << x.label;
    EXPECT_EQ(x.metrics.drift_frames, y.metrics.drift_frames) << x.label;
    EXPECT_EQ(x.metrics.detect_lags, y.metrics.detect_lags) << x.label;
    EXPECT_EQ(x.metrics.selections, y.metrics.selections) << x.label;
    ASSERT_EQ(x.metrics.per_sequence.size(), y.metrics.per_sequence.size());
    for (const auto& [seq, acc] : x.metrics.per_sequence) {
      EXPECT_EQ(acc.count_correct,
                y.metrics.per_sequence.at(seq).count_correct)
          << x.label;
      EXPECT_EQ(acc.count_total, y.metrics.per_sequence.at(seq).count_total)
          << x.label;
    }
    ExpectBooksBalance(y);
  }
}

// --- Cross-stream adoption through the copy-on-write registry. ---

TEST(FleetCowTest, ModelTrainedForOneStreamServesAnother) {
  // Both streams start with only a model for a sparse scene and drift into
  // a dense one (disjoint count regimes, so the base model is decisively
  // wrong after the drift). Stream "a" drifts first, fails selection, and
  // trains a model; stream "b" drifts later - after the barrier published
  // a's model - and must adopt and select it instead of training its own.
  stats::Rng rng(77);
  video::SyntheticDataset ds = video::MakeTokyoSynthetic(0.004);
  video::SceneSpec sparse = ds.SpecOf("Angle 1");
  sparse.name = "Sparse";
  sparse.object_rate_mean = 1.5;
  sparse.object_rate_std = 1.0;
  video::SceneSpec dense = sparse;
  dense.name = "Dense";
  dense.object_rate_mean = 14.0;
  dense.object_rate_std = 2.0;
  pipeline::ProvisionOptions provision =
      benchutil::DefaultWorkbenchOptions().provision;
  provision.classifier_train.epochs = 8;
  std::vector<video::Frame> sparse_frames =
      video::GenerateFrames(sparse, 200, 32, 500);
  select::ModelEntry base =
      pipeline::ProvisionModel("Sparse", sparse_frames, provision, &rng)
          .ValueOrDie();
  std::vector<select::LabeledFrame> sparse_sample =
      pipeline::MakeLabeledSample(sparse_frames, 8, 24, &rng);

  FleetOptions options;
  options.pipeline.selector = pipeline::PipelineConfig::Selector::kMsbo;
  options.pipeline.provision = provision;
  options.pipeline.allow_training_new = true;
  options.pipeline.new_model_window = 80;
  options.slice_frames = 64;
  options.max_concurrent = 2;
  DriftFleet fleet(options);
  ASSERT_TRUE(fleet.AddBaseModel(base, sparse_sample).ok());
  video::StreamGenerator stream_a({{sparse, 120}, {dense, 260}}, 32, 321);
  video::StreamGenerator stream_b({{sparse, 320}, {dense, 200}}, 32, 654);
  ASSERT_TRUE(fleet.AddStream({"a", &stream_a, nullptr}).ok());
  ASSERT_TRUE(fleet.AddStream({"b", &stream_b, nullptr}).ok());
  FleetReport report = fleet.Run().ValueOrDie();

  ASSERT_EQ(report.streams.size(), 2u);
  const StreamReport& a = report.streams[0];
  const StreamReport& b = report.streams[1];
  // Exactly one model was trained fleet-wide - by a, for a's drift.
  EXPECT_EQ(a.metrics.new_models_trained, 1);
  EXPECT_EQ(b.metrics.new_models_trained, 0);
  EXPECT_EQ(report.models_published, 1);
  ASSERT_FALSE(a.metrics.selections.empty());
  EXPECT_EQ(a.metrics.selections[0], "a.learned-0");
  // b resolved its later drift by selecting the adopted model.
  EXPECT_GE(report.models_adopted, 1);
  ASSERT_FALSE(b.metrics.selections.empty());
  EXPECT_EQ(b.metrics.selections[0], "a.learned-0");
  // The shared registry holds the base plus the one learned model.
  EXPECT_EQ(fleet.published().size(), 2);
  EXPECT_GE(fleet.published().FindByName("a.learned-0"), 0);
}

// --- Wiring, publication semantics, and clone invariants. ---

class FleetWiringTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    stats::Rng rng(99);
    video::SyntheticDataset ds = video::MakeBddSynthetic(0.004);
    pipeline::ProvisionOptions provision =
        benchutil::DefaultWorkbenchOptions().provision;
    provision.classifier_train.epochs = 2;
    std::vector<video::Frame> frames =
        video::GenerateFrames(ds.SpecOf("Day"), 80, 32, 500);
    day_ = new select::ModelEntry(
        pipeline::ProvisionModel("Day", frames, provision, &rng)
            .ValueOrDie());
    sample_ = new std::vector<select::LabeledFrame>(
        pipeline::MakeLabeledSample(frames, 8, 24, &rng));
  }

  static void TearDownTestSuite() {
    delete day_;
    delete sample_;
    day_ = nullptr;
    sample_ = nullptr;
  }

  static select::ModelEntry* day_;
  static std::vector<select::LabeledFrame>* sample_;
};

select::ModelEntry* FleetWiringTest::day_ = nullptr;
std::vector<select::LabeledFrame>* FleetWiringTest::sample_ = nullptr;

TEST_F(FleetWiringTest, RejectsBadWiring) {
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.002);
  video::StreamGenerator stream = ds.MakeStream();
  FleetOptions options;
  options.pipeline.provision = benchutil::DefaultWorkbenchOptions().provision;
  DriftFleet fleet(options);
  // No streams yet: Run refuses; streams before base models refuse.
  EXPECT_EQ(fleet.Run().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet.AddStream({"s0", &stream, nullptr}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fleet.AddBaseModel(*day_, *sample_).ok());
  // Duplicate base model names are first-writer-wins — and an error.
  EXPECT_EQ(fleet.AddBaseModel(*day_, *sample_).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(fleet.AddStream({"s0", &stream, nullptr}).ok());
  // Base models are frozen once streams exist.
  EXPECT_EQ(fleet.AddBaseModel(*day_, *sample_).code(),
            StatusCode::kFailedPrecondition);
  video::StreamGenerator other = ds.MakeStream();
  EXPECT_EQ(fleet.AddStream({"s0", &other, nullptr}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.AddStream({"", &other, nullptr}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.AddStream({"s1", nullptr, nullptr}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FleetWiringTest, CrashDrillAgainstUnknownStreamIsAnError) {
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.002);
  video::StreamGenerator stream = ds.MakeStream();
  FleetOptions options;
  options.pipeline.provision = benchutil::DefaultWorkbenchOptions().provision;
  options.crash_drills.push_back({"ghost", 1});
  DriftFleet fleet(options);
  ASSERT_TRUE(fleet.AddBaseModel(*day_, *sample_).ok());
  ASSERT_TRUE(fleet.AddStream({"s0", &stream, nullptr}).ok());
  EXPECT_EQ(fleet.Run().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FleetWiringTest, CowRegistryPublishesAtomicSnapshots) {
  select::CowModelRegistry cow;
  EXPECT_EQ(cow.size(), 0);
  select::CowModelRegistry::Snapshot before = cow.TakeSnapshot();
  ASSERT_TRUE(cow.Publish(*day_, *sample_).ValueOrDie());
  // The old snapshot is immutable; a fresh one sees the publication.
  EXPECT_TRUE(before->empty());
  select::CowModelRegistry::Snapshot after = cow.TakeSnapshot();
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ((*after)[0].entry.name, "Day");
  EXPECT_EQ(cow.FindByName("Day"), 0);
  EXPECT_EQ(cow.FindByName("Night"), -1);
  // First writer wins: a second "Day" publishes nothing.
  EXPECT_FALSE(cow.Publish(*day_, *sample_).ValueOrDie());
  EXPECT_EQ(cow.size(), 1);
}

TEST_F(FleetWiringTest, CloneModelEntrySharesNothingButPreservesAliasing) {
  select::ModelEntry clone =
      select::CloneModelEntry(*day_).ValueOrDie();
  EXPECT_EQ(clone.name, day_->name);
  // Deep copies throughout: no mutable state shared with the source.
  EXPECT_NE(clone.profile.get(), day_->profile.get());
  EXPECT_NE(clone.ensemble.get(), day_->ensemble.get());
  EXPECT_NE(clone.count_model.get(), day_->count_model.get());
  // Provisioning deploys ensemble member 0 as the count model; the clone
  // must alias its *own* member the same way, not the source's.
  ASSERT_EQ(day_->count_model.get(), day_->ensemble->member(0).get());
  EXPECT_EQ(clone.count_model.get(), clone.ensemble->member(0).get());
}

}  // namespace
}  // namespace vdrift::serve
