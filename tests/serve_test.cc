// Fleet serving integration tests: N-stream determinism across thread
// counts, per-stream fault isolation, cross-stream model adoption through
// the shared copy-on-write registry, crash-drill recovery, and the
// frame-accounting books every stream must balance.

#include <sys/stat.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchutil/workbench.h"
#include "core/registry_cow.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "fault/faulty_stream.h"
#include "nn/classifier.h"
#include "pipeline/pipeline.h"
#include "pipeline/provision.h"
#include "runtime/parallel.h"
#include "serve/fleet.h"
#include "serve/supervisor.h"
#include "stats/rng.h"
#include "tensor/tensor.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace vdrift::serve {
namespace {

// The six counter families the fleet folds from {stream=...} series into
// unlabeled aggregates; kept in sync with fleet.cc by the sum test below.
constexpr const char* kCounterFamilies[] = {
    "vdrift.pipeline.frames",
    "vdrift.pipeline.drifts",
    "vdrift.pipeline.frames_dropped",
    "vdrift.pipeline.selection_failures",
    "vdrift.pipeline.redeployments",
    "vdrift.pipeline.checkpoint_failures",
};

// One shared workbench (same shape as the pipeline suite's fixture): a
// Tokyo-like 3-model registry, ~360 frames per stream replica.
class FleetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    benchutil::WorkbenchOptions options =
        benchutil::DefaultWorkbenchOptions();
    options.dataset_scale = 0.008;
    options.cache_dir = "";
    options.train_frames = 220;
    bench_ = benchutil::BuildWorkbench("Tokyo", options).ValueOrDie()
                 .release();
  }

  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }

  static FleetOptions BaseOptions() {
    FleetOptions options;
    options.pipeline.selector =
        pipeline::PipelineConfig::Selector::kMsbo;
    options.pipeline.provision =
        benchutil::DefaultWorkbenchOptions().provision;
    options.pipeline.allow_training_new = false;
    options.slice_frames = 48;
    options.max_concurrent = 4;
    return options;
  }

  struct FleetRun {
    FleetReport report;
    std::shared_ptr<obs::MetricsRegistry> registry;
    int64_t sampler_windows = 0;
  };

  // Runs a fleet of n Tokyo replica streams (distinct render seeds, same
  // drift truth). `fault_spec` is the ParsePerStreamFaultSpec grammar;
  // labeled streams get their own injector and FaultyStream wrapper.
  static FleetRun RunTokyoFleet(const FleetOptions& options, int n,
                                const std::string& fault_spec = "") {
    std::vector<fault::StreamFaultPlan> plans =
        fault::ParsePerStreamFaultSpec(fault_spec).ValueOrDie();
    std::vector<std::unique_ptr<video::StreamGenerator>> streams;
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    std::vector<std::unique_ptr<fault::FaultyStream>> wrapped;
    DriftFleet fleet(options);
    EXPECT_TRUE(fleet.AddBaseModels(bench_->registry,
                                    bench_->calibration_samples)
                    .ok());
    for (int i = 0; i < n; ++i) {
      std::string label = "s" + std::to_string(i);
      streams.push_back(std::make_unique<video::StreamGenerator>(
          bench_->dataset.segments, bench_->dataset.image_size,
          bench_->dataset.seed + 100 + static_cast<uint64_t>(i)));
      StreamSpec spec;
      spec.label = label;
      spec.stream = streams.back().get();
      for (const fault::StreamFaultPlan& plan : plans) {
        if (plan.stream != label) continue;
        injectors.push_back(
            std::make_unique<fault::FaultInjector>(plan.plan, 4242));
        spec.injector = injectors.back().get();
        wrapped.push_back(std::make_unique<fault::FaultyStream>(
            streams.back().get(), spec.injector));
        spec.stream = wrapped.back().get();
      }
      EXPECT_TRUE(fleet.AddStream(spec).ok());
    }
    FleetRun run;
    run.report = fleet.Run().ValueOrDie();
    run.registry = fleet.registry();
    if (fleet.sampler() != nullptr) {
      run.sampler_windows = fleet.sampler()->windows_sampled();
    }
    return run;
  }

  static void ExpectStreamIdentical(const StreamReport& x,
                                    const StreamReport& y) {
    EXPECT_EQ(x.label, y.label);
    EXPECT_EQ(x.frames, y.frames) << x.label;
    EXPECT_EQ(x.slices, y.slices) << x.label;
    EXPECT_EQ(x.restarts, y.restarts) << x.label;
    EXPECT_EQ(x.metrics.frames, y.metrics.frames) << x.label;
    EXPECT_EQ(x.metrics.drifts_detected, y.metrics.drifts_detected)
        << x.label;
    EXPECT_EQ(x.metrics.new_models_trained, y.metrics.new_models_trained)
        << x.label;
    EXPECT_EQ(x.metrics.drift_frames, y.metrics.drift_frames) << x.label;
    EXPECT_EQ(x.metrics.detect_lags, y.metrics.detect_lags) << x.label;
    EXPECT_EQ(x.metrics.selections, y.metrics.selections) << x.label;
    EXPECT_EQ(x.metrics.selection_invocations,
              y.metrics.selection_invocations)
        << x.label;
    EXPECT_EQ(x.metrics.degradation.frames_dropped,
              y.metrics.degradation.frames_dropped)
        << x.label;
    EXPECT_EQ(x.metrics.degradation.total_events(),
              y.metrics.degradation.total_events())
        << x.label;
    ASSERT_EQ(x.metrics.per_sequence.size(), y.metrics.per_sequence.size())
        << x.label;
    for (const auto& [seq, acc] : x.metrics.per_sequence) {
      const auto it = y.metrics.per_sequence.find(seq);
      ASSERT_NE(it, y.metrics.per_sequence.end()) << x.label;
      EXPECT_EQ(acc.count_correct, it->second.count_correct) << x.label;
      EXPECT_EQ(acc.count_total, it->second.count_total) << x.label;
      EXPECT_EQ(acc.invocations, it->second.invocations) << x.label;
    }
  }

  // Zero silent frame loss: every admitted frame either answered the
  // count query or was dropped (and counted as dropped).
  static void ExpectBooksBalance(const StreamReport& stream) {
    EXPECT_EQ(stream.metrics.Totals().count_total +
                  stream.metrics.degradation.frames_dropped,
              stream.metrics.frames)
        << stream.label;
  }

  static benchutil::Workbench* bench_;
};

benchutil::Workbench* FleetFixture::bench_ = nullptr;

TEST_F(FleetFixture, EightStreamFleetIsDeterministicAcrossThreadCounts) {
  FleetOptions options = BaseOptions();
  options.sample_interval_rounds = 2;
  options.slo_spec = "default";
  FleetRun serial;
  {
    runtime::ScopedThreads scoped(1);
    serial = RunTokyoFleet(options, 8);
  }
  FleetRun parallel;
  {
    runtime::ScopedThreads scoped(4);
    parallel = RunTokyoFleet(options, 8);
  }
  ASSERT_EQ(serial.report.streams.size(), 8u);
  ASSERT_EQ(parallel.report.streams.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    ExpectStreamIdentical(serial.report.streams[i],
                          parallel.report.streams[i]);
  }
  // Every stream ran to exhaustion, drift-aware, without restarts.
  const int64_t total = bench_->dataset.total_frames();
  for (const StreamReport& stream : parallel.report.streams) {
    EXPECT_TRUE(stream.status.ok()) << stream.label;
    EXPECT_EQ(stream.frames, total) << stream.label;
    EXPECT_GE(stream.metrics.drifts_detected, 2) << stream.label;
    EXPECT_EQ(stream.restarts, 0) << stream.label;
    ExpectBooksBalance(stream);
  }
  // Fleet-level tallies agree too.
  EXPECT_EQ(serial.report.rounds, parallel.report.rounds);
  EXPECT_EQ(serial.report.backpressure_waits,
            parallel.report.backpressure_waits);
  // 8 streams over 4 slots: admission control had to queue someone.
  EXPECT_GT(parallel.report.backpressure_waits, 0);
  EXPECT_GT(parallel.report.rounds, 0);
  EXPECT_GT(parallel.sampler_windows, 0);
  // The {stream=...} series sum exactly to the unlabeled aggregates.
  for (const char* family : kCounterFamilies) {
    int64_t labeled_sum = 0;
    for (const StreamReport& stream : parallel.report.streams) {
      labeled_sum += parallel.registry
                         ->GetCounter(family, {{"stream", stream.label}})
                         .value();
    }
    EXPECT_EQ(labeled_sum, parallel.registry->GetCounter(family).value())
        << family;
  }
  // The aggregate frame counter covers every admitted frame of the fleet.
  EXPECT_EQ(
      parallel.registry->GetCounter("vdrift.pipeline.frames").value(),
      total * 8);
}

TEST_F(FleetFixture, SingleStreamFaultsDoNotPerturbTheRestOfTheFleet) {
  FleetOptions options = BaseOptions();
  FleetRun clean = RunTokyoFleet(options, 8);
  FleetRun faulted = RunTokyoFleet(
      options, 8, "s3@nan_frame:p=0.05;selector_fail:p=1.0");
  ASSERT_EQ(faulted.report.streams.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    const StreamReport& stream = faulted.report.streams[i];
    if (stream.label == "s3") {
      // The faulted stream degraded but kept its books: dropped frames
      // are counted, failed selections resolved by incumbent fallback.
      EXPECT_GT(stream.metrics.degradation.frames_dropped, 0);
      EXPECT_GT(stream.metrics.degradation.selector_failures, 0);
      EXPECT_TRUE(stream.status.ok());
      continue;
    }
    // Bit-identical to the fault-free fleet: one stream's faults never
    // leak into another stream's draw sequence or schedule.
    ExpectStreamIdentical(clean.report.streams[i], stream);
  }
  // Zero silent frame loss fleet-wide, faulted stream included.
  for (const StreamReport& stream : faulted.report.streams) {
    ExpectBooksBalance(stream);
  }
}

TEST_F(FleetFixture, CrashDrillRestoresAShardBitIdentically) {
  std::string dir = ::testing::TempDir() + "/vdrift_fleet_ckpt";
  ::mkdir(dir.c_str(), 0755);
  FleetOptions options = BaseOptions();
  options.max_concurrent = 3;
  options.checkpoint_dir = dir;
  FleetRun baseline = RunTokyoFleet(options, 3);
  options.crash_drills.push_back({"s1", 2});
  FleetRun drilled = RunTokyoFleet(options, 3);
  ASSERT_EQ(drilled.report.streams.size(), 3u);
  EXPECT_EQ(drilled.report.shard_restarts, 1);
  EXPECT_EQ(drilled.report.streams[1].restarts, 1);
  for (size_t i = 0; i < 3; ++i) {
    const StreamReport& x = baseline.report.streams[i];
    const StreamReport& y = drilled.report.streams[i];
    // The killed shard resumed from its round-1 checkpoint and finished
    // with the same frames, detections, lag histogram, and accuracy books
    // as the run that never crashed (restart/slice tallies aside).
    EXPECT_EQ(x.frames, y.frames) << x.label;
    EXPECT_EQ(x.metrics.frames, y.metrics.frames) << x.label;
    EXPECT_EQ(x.metrics.drift_frames, y.metrics.drift_frames) << x.label;
    EXPECT_EQ(x.metrics.detect_lags, y.metrics.detect_lags) << x.label;
    EXPECT_EQ(x.metrics.selections, y.metrics.selections) << x.label;
    ASSERT_EQ(x.metrics.per_sequence.size(), y.metrics.per_sequence.size());
    for (const auto& [seq, acc] : x.metrics.per_sequence) {
      EXPECT_EQ(acc.count_correct,
                y.metrics.per_sequence.at(seq).count_correct)
          << x.label;
      EXPECT_EQ(acc.count_total, y.metrics.per_sequence.at(seq).count_total)
          << x.label;
    }
    ExpectBooksBalance(y);
  }
}

// --- Cross-stream adoption through the copy-on-write registry. ---

TEST(FleetCowTest, ModelTrainedForOneStreamServesAnother) {
  // Both streams start with only a model for a sparse scene and drift into
  // a dense one (disjoint count regimes, so the base model is decisively
  // wrong after the drift). Stream "a" drifts first, fails selection, and
  // trains a model; stream "b" drifts later - after the barrier published
  // a's model - and must adopt and select it instead of training its own.
  stats::Rng rng(77);
  video::SyntheticDataset ds = video::MakeTokyoSynthetic(0.004);
  video::SceneSpec sparse = ds.SpecOf("Angle 1");
  sparse.name = "Sparse";
  sparse.object_rate_mean = 1.5;
  sparse.object_rate_std = 1.0;
  video::SceneSpec dense = sparse;
  dense.name = "Dense";
  dense.object_rate_mean = 14.0;
  dense.object_rate_std = 2.0;
  pipeline::ProvisionOptions provision =
      benchutil::DefaultWorkbenchOptions().provision;
  provision.classifier_train.epochs = 8;
  std::vector<video::Frame> sparse_frames =
      video::GenerateFrames(sparse, 200, 32, 500);
  select::ModelEntry base =
      pipeline::ProvisionModel("Sparse", sparse_frames, provision, &rng)
          .ValueOrDie();
  std::vector<select::LabeledFrame> sparse_sample =
      pipeline::MakeLabeledSample(sparse_frames, 8, 24, &rng);

  FleetOptions options;
  options.pipeline.selector = pipeline::PipelineConfig::Selector::kMsbo;
  options.pipeline.provision = provision;
  options.pipeline.allow_training_new = true;
  options.pipeline.new_model_window = 80;
  options.slice_frames = 64;
  options.max_concurrent = 2;
  DriftFleet fleet(options);
  ASSERT_TRUE(fleet.AddBaseModel(base, sparse_sample).ok());
  video::StreamGenerator stream_a({{sparse, 120}, {dense, 260}}, 32, 321);
  video::StreamGenerator stream_b({{sparse, 320}, {dense, 200}}, 32, 654);
  ASSERT_TRUE(fleet.AddStream({"a", &stream_a, nullptr}).ok());
  ASSERT_TRUE(fleet.AddStream({"b", &stream_b, nullptr}).ok());
  FleetReport report = fleet.Run().ValueOrDie();

  ASSERT_EQ(report.streams.size(), 2u);
  const StreamReport& a = report.streams[0];
  const StreamReport& b = report.streams[1];
  // Exactly one model was trained fleet-wide - by a, for a's drift.
  EXPECT_EQ(a.metrics.new_models_trained, 1);
  EXPECT_EQ(b.metrics.new_models_trained, 0);
  EXPECT_EQ(report.models_published, 1);
  ASSERT_FALSE(a.metrics.selections.empty());
  EXPECT_EQ(a.metrics.selections[0], "a.learned-0");
  // b resolved its later drift by selecting the adopted model.
  EXPECT_GE(report.models_adopted, 1);
  ASSERT_FALSE(b.metrics.selections.empty());
  EXPECT_EQ(b.metrics.selections[0], "a.learned-0");
  // The shared registry holds the base plus the one learned model.
  EXPECT_EQ(fleet.published().size(), 2);
  EXPECT_GE(fleet.published().FindByName("a.learned-0"), 0);
}

// --- Wiring, publication semantics, and clone invariants. ---

class FleetWiringTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    stats::Rng rng(99);
    video::SyntheticDataset ds = video::MakeBddSynthetic(0.004);
    pipeline::ProvisionOptions provision =
        benchutil::DefaultWorkbenchOptions().provision;
    provision.classifier_train.epochs = 2;
    std::vector<video::Frame> frames =
        video::GenerateFrames(ds.SpecOf("Day"), 80, 32, 500);
    day_ = new select::ModelEntry(
        pipeline::ProvisionModel("Day", frames, provision, &rng)
            .ValueOrDie());
    sample_ = new std::vector<select::LabeledFrame>(
        pipeline::MakeLabeledSample(frames, 8, 24, &rng));
  }

  static void TearDownTestSuite() {
    delete day_;
    delete sample_;
    day_ = nullptr;
    sample_ = nullptr;
  }

  static select::ModelEntry* day_;
  static std::vector<select::LabeledFrame>* sample_;
};

select::ModelEntry* FleetWiringTest::day_ = nullptr;
std::vector<select::LabeledFrame>* FleetWiringTest::sample_ = nullptr;

TEST_F(FleetWiringTest, RejectsBadWiring) {
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.002);
  video::StreamGenerator stream = ds.MakeStream();
  FleetOptions options;
  options.pipeline.provision = benchutil::DefaultWorkbenchOptions().provision;
  DriftFleet fleet(options);
  // No streams yet: Run refuses; streams before base models refuse.
  EXPECT_EQ(fleet.Run().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fleet.AddStream({"s0", &stream, nullptr}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fleet.AddBaseModel(*day_, *sample_).ok());
  // Duplicate base model names are first-writer-wins — and an error.
  EXPECT_EQ(fleet.AddBaseModel(*day_, *sample_).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(fleet.AddStream({"s0", &stream, nullptr}).ok());
  // Base models are frozen once streams exist.
  EXPECT_EQ(fleet.AddBaseModel(*day_, *sample_).code(),
            StatusCode::kFailedPrecondition);
  video::StreamGenerator other = ds.MakeStream();
  EXPECT_EQ(fleet.AddStream({"s0", &other, nullptr}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.AddStream({"", &other, nullptr}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.AddStream({"s1", nullptr, nullptr}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FleetWiringTest, CrashDrillAgainstUnknownStreamIsAnError) {
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.002);
  video::StreamGenerator stream = ds.MakeStream();
  FleetOptions options;
  options.pipeline.provision = benchutil::DefaultWorkbenchOptions().provision;
  options.crash_drills.push_back({"ghost", 1});
  DriftFleet fleet(options);
  ASSERT_TRUE(fleet.AddBaseModel(*day_, *sample_).ok());
  ASSERT_TRUE(fleet.AddStream({"s0", &stream, nullptr}).ok());
  EXPECT_EQ(fleet.Run().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FleetWiringTest, CowRegistryPublishesAtomicSnapshots) {
  select::CowModelRegistry cow;
  EXPECT_EQ(cow.size(), 0);
  select::CowModelRegistry::Snapshot before = cow.TakeSnapshot();
  ASSERT_TRUE(cow.Publish(*day_, *sample_).ValueOrDie());
  // The old snapshot is immutable; a fresh one sees the publication.
  EXPECT_TRUE(before->empty());
  select::CowModelRegistry::Snapshot after = cow.TakeSnapshot();
  ASSERT_EQ(after->size(), 1u);
  EXPECT_EQ((*after)[0].entry.name, "Day");
  EXPECT_EQ(cow.FindByName("Day"), 0);
  EXPECT_EQ(cow.FindByName("Night"), -1);
  // First writer wins: a second "Day" publishes nothing.
  EXPECT_FALSE(cow.Publish(*day_, *sample_).ValueOrDie());
  EXPECT_EQ(cow.size(), 1);
}

// --- Supervision: health state machine, quarantine, publication gate,
// --- and coordinator crash recovery.

TEST(SupervisorHealthTest, StateMachineWalksTheDocumentedTransitions) {
  HealthPolicy policy;  // max_restarts = 2, backoff_base = 1.
  ShardHealth h;
  EXPECT_EQ(h.state, HealthState::kHealthy);
  EXPECT_TRUE(h.Serving());
  EXPECT_FALSE(h.Terminal());
  // Degradation marks the shard degraded; one clean round heals it.
  h.ObserveRound(true);
  EXPECT_EQ(h.state, HealthState::kDegraded);
  EXPECT_TRUE(h.Serving());
  h.ObserveRound(false);
  EXPECT_EQ(h.state, HealthState::kHealthy);
  // First restart: one unit of budget, backoff_base << 0 = 1 parked round.
  EXPECT_TRUE(h.GrantRestart(policy));
  EXPECT_EQ(h.state, HealthState::kRestarting);
  EXPECT_FALSE(h.Serving());
  EXPECT_EQ(h.restarts, 1);
  EXPECT_EQ(h.backoff_remaining, 1);
  // Observations are ignored while parked.
  h.ObserveRound(false);
  EXPECT_EQ(h.state, HealthState::kRestarting);
  // Backoff expiry readmits as degraded — healthy must be earned back.
  EXPECT_TRUE(h.TickBackoff());
  EXPECT_EQ(h.state, HealthState::kDegraded);
  // Second restart: the backoff doubles.
  EXPECT_TRUE(h.GrantRestart(policy));
  EXPECT_EQ(h.backoff_remaining, 2);
  EXPECT_FALSE(h.TickBackoff());
  EXPECT_TRUE(h.TickBackoff());
  EXPECT_EQ(h.state, HealthState::kDegraded);
  // Budget exhausted: the next crash quarantines instead of restarting.
  EXPECT_FALSE(h.GrantRestart(policy));
  EXPECT_EQ(h.state, HealthState::kQuarantined);
  EXPECT_TRUE(h.Terminal());
  EXPECT_EQ(h.restarts, 2);
  // Terminal states are sticky.
  h.Retire();
  EXPECT_EQ(h.state, HealthState::kQuarantined);
  h.ObserveRound(false);
  EXPECT_EQ(h.state, HealthState::kQuarantined);
}

TEST(SupervisorHealthTest, RetirementAndNames) {
  ShardHealth h;
  h.ObserveRound(true);
  h.Retire();
  EXPECT_EQ(h.state, HealthState::kRetired);
  EXPECT_TRUE(h.Terminal());
  EXPECT_STREQ(HealthStateName(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(HealthStateName(HealthState::kRestarting), "restarting");
  EXPECT_STREQ(HealthStateName(HealthState::kQuarantined), "quarantined");
  EXPECT_STREQ(HealthStateName(HealthState::kRetired), "retired");
}

TEST(SupervisorHealthTest, ZeroBackoffBaseSkipsParking) {
  HealthPolicy policy;
  policy.max_restarts = 1;
  policy.backoff_base = 0;
  ShardHealth h;
  EXPECT_TRUE(h.GrantRestart(policy));
  EXPECT_EQ(h.backoff_remaining, 0);
  // The first tick readmits immediately.
  EXPECT_TRUE(h.TickBackoff());
  EXPECT_EQ(h.state, HealthState::kDegraded);
}

/// Fixed-output classifier for gate tests: the gate is behavioral, so a
/// stub that always emits the same probability vector is a full test
/// double for it.
class StubClassifier : public nn::ProbabilisticClassifier {
 public:
  explicit StubClassifier(std::vector<float> probs)
      : probs_(std::move(probs)) {}
  std::vector<float> PredictProba(const tensor::Tensor&) override {
    return probs_;
  }
  int Predict(const tensor::Tensor&) override {
    int best = 0;
    for (int c = 1; c < static_cast<int>(probs_.size()); ++c) {
      if (probs_[static_cast<size_t>(c)] > probs_[static_cast<size_t>(best)]) {
        best = c;
      }
    }
    return best;
  }
  int num_classes() const override {
    return static_cast<int>(probs_.size());
  }

 private:
  std::vector<float> probs_;
};

select::ModelEntry StubEntry(const std::string& name,
                             std::vector<float> probs) {
  select::ModelEntry entry;
  entry.name = name;
  entry.count_model = std::make_shared<StubClassifier>(std::move(probs));
  return entry;
}

std::vector<select::LabeledFrame> StubHoldout(int n, int label) {
  std::vector<select::LabeledFrame> holdout;
  for (int i = 0; i < n; ++i) {
    holdout.push_back({tensor::Tensor({1, 2, 2}, 0.0f), label});
  }
  return holdout;
}

TEST(PublicationGateTest, VerdictsCoverEveryRejectionReason) {
  PublicationGateOptions options;  // margin 0.1, enabled.
  std::vector<select::LabeledFrame> holdout = StubHoldout(8, 1);
  select::ModelEntry right = StubEntry("right", {0.1f, 0.9f});
  select::ModelEntry wrong = StubEntry("wrong", {0.9f, 0.1f});

  // A lone accurate candidate passes.
  GateVerdict verdict = EvaluatePublication(right, holdout, {}, options);
  EXPECT_TRUE(verdict.accepted);
  EXPECT_TRUE(verdict.reason.empty());
  EXPECT_DOUBLE_EQ(verdict.candidate_accuracy, 1.0);

  // Missing query model.
  select::ModelEntry empty;
  empty.name = "empty";
  verdict = EvaluatePublication(empty, holdout, {}, options);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.reason, "no_query_model");

  // Empty calibration table.
  verdict = EvaluatePublication(right, {}, {}, options);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.reason, "empty_calibration");

  // Non-finite probabilities.
  select::ModelEntry nan_model =
      StubEntry("nan", {std::nanf(""), 0.5f});
  verdict = EvaluatePublication(nan_model, holdout, {}, options);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.reason, "nonfinite");

  // Below the incumbent by more than the margin.
  std::vector<const select::ModelEntry*> incumbents = {&right};
  verdict = EvaluatePublication(wrong, holdout, incumbents, options);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.reason, "below_margin");
  EXPECT_DOUBLE_EQ(verdict.candidate_accuracy, 0.0);
  EXPECT_DOUBLE_EQ(verdict.incumbent_accuracy, 1.0);

  // A generous margin forgives the same gap.
  PublicationGateOptions generous = options;
  generous.accuracy_margin = 2.0;
  EXPECT_TRUE(EvaluatePublication(wrong, holdout, incumbents, generous)
                  .accepted);

  // Disabling the gate accepts anything, even NaN output.
  PublicationGateOptions off = options;
  off.enabled = false;
  EXPECT_TRUE(EvaluatePublication(nan_model, holdout, {}, off).accepted);
}

FleetManifest MakeManifest() {
  FleetManifest manifest;
  manifest.next_round = 7;
  manifest.backpressure_waits = 3;
  manifest.models_published = 2;
  manifest.models_adopted = 4;
  manifest.shard_restarts = 1;
  manifest.publish_rejected = 5;
  manifest.quarantined_frames = 216;
  manifest.slice_frames = 48;
  ShardManifest s0;
  s0.label = "s0";
  s0.checkpoint_path = "/tmp/s0.ckpt";
  s0.health = static_cast<uint8_t>(HealthState::kDegraded);
  s0.restarts = 1;
  s0.backoff_remaining = 2;
  s0.slices = 9;
  ShardManifest s1;
  s1.label = "s1";
  s1.checkpoint_path = "/tmp/s1.ckpt";
  s1.health = static_cast<uint8_t>(HealthState::kQuarantined);
  s1.restarts = 2;
  s1.slices = 4;
  s1.fail_code = static_cast<int32_t>(StatusCode::kInternal);
  s1.fail_message = "chaos kill at round 5";
  manifest.shards = {s0, s1};
  manifest.ready = {1, 0};
  manifest.lineage = {{"Day", "", -1}, {"s0.learned-0", "s0", 3}};
  return manifest;
}

TEST(FleetManifestTest, CodecRoundTripsEveryField) {
  FleetManifest manifest = MakeManifest();
  std::string bytes = EncodeFleetManifest(manifest);
  Result<FleetManifest> decoded = DecodeFleetManifest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const FleetManifest& out = decoded.value();
  EXPECT_EQ(out.next_round, manifest.next_round);
  EXPECT_EQ(out.backpressure_waits, manifest.backpressure_waits);
  EXPECT_EQ(out.models_published, manifest.models_published);
  EXPECT_EQ(out.models_adopted, manifest.models_adopted);
  EXPECT_EQ(out.shard_restarts, manifest.shard_restarts);
  EXPECT_EQ(out.publish_rejected, manifest.publish_rejected);
  EXPECT_EQ(out.quarantined_frames, manifest.quarantined_frames);
  EXPECT_EQ(out.slice_frames, manifest.slice_frames);
  EXPECT_EQ(out.ready, manifest.ready);
  ASSERT_EQ(out.shards.size(), 2u);
  EXPECT_EQ(out.shards[0].label, "s0");
  EXPECT_EQ(out.shards[0].checkpoint_path, "/tmp/s0.ckpt");
  EXPECT_EQ(out.shards[0].health,
            static_cast<uint8_t>(HealthState::kDegraded));
  EXPECT_EQ(out.shards[0].restarts, 1);
  EXPECT_EQ(out.shards[0].backoff_remaining, 2);
  EXPECT_EQ(out.shards[0].slices, 9);
  EXPECT_EQ(out.shards[1].fail_code,
            static_cast<int32_t>(StatusCode::kInternal));
  EXPECT_EQ(out.shards[1].fail_message, "chaos kill at round 5");
  ASSERT_EQ(out.lineage.size(), 2u);
  EXPECT_EQ(out.lineage[0].name, "Day");
  EXPECT_EQ(out.lineage[0].round, -1);
  EXPECT_EQ(out.lineage[1].publisher, "s0");
  EXPECT_EQ(out.lineage[1].round, 3);
}

TEST(FleetManifestTest, EverySingleByteFlipIsDetected) {
  std::string bytes = EncodeFleetManifest(MakeManifest());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x01);
    Result<FleetManifest> decoded = DecodeFleetManifest(damaged);
    ASSERT_FALSE(decoded.ok()) << "byte " << i << " flip went undetected";
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "byte " << i;
  }
}

TEST(FleetManifestTest, TruncationPaddingAndBadStatesAreDataLoss) {
  std::string bytes = EncodeFleetManifest(MakeManifest());
  EXPECT_EQ(DecodeFleetManifest("").status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(DecodeFleetManifest(bytes.substr(0, bytes.size() / 2))
                .status()
                .code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(DecodeFleetManifest(bytes + "x").status().code(),
            StatusCode::kDataLoss);
  // An undefined health-state byte is diagnosed, not cast blindly.
  FleetManifest bad_health = MakeManifest();
  bad_health.shards[0].health = 9;
  EXPECT_EQ(DecodeFleetManifest(EncodeFleetManifest(bad_health))
                .status()
                .code(),
            StatusCode::kDataLoss);
  // A ready-queue index beyond the shard list is diagnosed too.
  FleetManifest bad_ready = MakeManifest();
  bad_ready.ready = {5};
  EXPECT_EQ(DecodeFleetManifest(EncodeFleetManifest(bad_ready))
                .status()
                .code(),
            StatusCode::kDataLoss);
}

TEST_F(FleetFixture, ExhaustedRestartBudgetQuarantinesWithExactBooks) {
  std::string dir = ::testing::TempDir() + "/vdrift_fleet_quarantine";
  ::mkdir(dir.c_str(), 0755);
  FleetOptions options = BaseOptions();
  options.max_concurrent = 3;
  options.checkpoint_dir = dir;
  options.max_restarts = 1;
  FleetRun baseline = RunTokyoFleet(options, 3);
  // Two kills against s1: the first consumes the whole restart budget,
  // the second quarantines the shard.
  options.crash_drills.push_back({"s1", 2});
  options.crash_drills.push_back({"s1", 4});
  FleetRun drilled = RunTokyoFleet(options, 3);
  ASSERT_EQ(drilled.report.streams.size(), 3u);
  const StreamReport& q = drilled.report.streams[1];
  EXPECT_EQ(q.health, HealthState::kQuarantined);
  EXPECT_FALSE(q.status.ok());
  EXPECT_EQ(q.restarts, 1);
  EXPECT_GT(q.quarantined_frames, 0);
  // Exact loss accounting: every frame of the stream either answered the
  // count query, was dropped (and counted), or was refused by the
  // quarantine (and counted). Nothing is silently lost.
  const int64_t total = bench_->dataset.total_frames();
  EXPECT_EQ(q.metrics.Totals().count_total +
                q.metrics.degradation.frames_dropped + q.quarantined_frames,
            total);
  EXPECT_LT(q.frames, total);
  EXPECT_EQ(drilled.report.quarantined_frames, q.quarantined_frames);
  // The other streams never notice: byte-identical to the drill-free run.
  ExpectStreamIdentical(baseline.report.streams[0],
                        drilled.report.streams[0]);
  ExpectStreamIdentical(baseline.report.streams[2],
                        drilled.report.streams[2]);
  EXPECT_EQ(drilled.report.streams[0].health, HealthState::kRetired);
  EXPECT_EQ(drilled.report.streams[2].health, HealthState::kRetired);
  // The health gauges mirror the final states, numerically.
  EXPECT_EQ(drilled.registry
                ->GetGauge("vdrift.serve.health", {{"stream", "s1"}})
                .value(),
            static_cast<double>(HealthState::kQuarantined));
  EXPECT_EQ(drilled.registry
                ->GetGauge("vdrift.serve.health", {{"stream", "s0"}})
                .value(),
            static_cast<double>(HealthState::kRetired));
  // And the quarantine counters book the same loss.
  EXPECT_EQ(
      drilled.registry->GetCounter("vdrift.serve.quarantined").value(), 1);
  EXPECT_EQ(drilled.registry
                ->GetCounter("vdrift.serve.quarantine_dropped_frames")
                .value(),
            q.quarantined_frames);
}

TEST(FleetGateTest, BelowMarginModelNeverReachesTheSharedRegistry) {
  // The FleetCowTest scenario with the gate margin forced impossible:
  // accuracy <= 1 can never reach incumbent + 2, so every trained model is
  // rejected at the barrier. "b" then cannot adopt a's model and must
  // train its own — and the shared registry never grows.
  stats::Rng rng(77);
  video::SyntheticDataset ds = video::MakeTokyoSynthetic(0.004);
  video::SceneSpec sparse = ds.SpecOf("Angle 1");
  sparse.name = "Sparse";
  sparse.object_rate_mean = 1.5;
  sparse.object_rate_std = 1.0;
  video::SceneSpec dense = sparse;
  dense.name = "Dense";
  dense.object_rate_mean = 14.0;
  dense.object_rate_std = 2.0;
  pipeline::ProvisionOptions provision =
      benchutil::DefaultWorkbenchOptions().provision;
  provision.classifier_train.epochs = 8;
  std::vector<video::Frame> sparse_frames =
      video::GenerateFrames(sparse, 200, 32, 500);
  select::ModelEntry base =
      pipeline::ProvisionModel("Sparse", sparse_frames, provision, &rng)
          .ValueOrDie();
  std::vector<select::LabeledFrame> sparse_sample =
      pipeline::MakeLabeledSample(sparse_frames, 8, 24, &rng);

  FleetOptions options;
  options.pipeline.selector = pipeline::PipelineConfig::Selector::kMsbo;
  options.pipeline.provision = provision;
  options.pipeline.allow_training_new = true;
  options.pipeline.new_model_window = 80;
  options.slice_frames = 64;
  options.max_concurrent = 2;
  options.publication_gate.accuracy_margin = -2.0;
  DriftFleet fleet(options);
  ASSERT_TRUE(fleet.AddBaseModel(base, sparse_sample).ok());
  video::StreamGenerator stream_a({{sparse, 120}, {dense, 260}}, 32, 321);
  video::StreamGenerator stream_b({{sparse, 320}, {dense, 200}}, 32, 654);
  ASSERT_TRUE(fleet.AddStream({"a", &stream_a, nullptr}).ok());
  ASSERT_TRUE(fleet.AddStream({"b", &stream_b, nullptr}).ok());
  FleetReport report = fleet.Run().ValueOrDie();

  ASSERT_EQ(report.streams.size(), 2u);
  const StreamReport& a = report.streams[0];
  const StreamReport& b = report.streams[1];
  // Both trained privately; nothing was published or adopted.
  EXPECT_EQ(a.metrics.new_models_trained, 1);
  EXPECT_EQ(b.metrics.new_models_trained, 1);
  EXPECT_EQ(report.models_published, 0);
  EXPECT_EQ(report.models_adopted, 0);
  EXPECT_GE(report.publish_rejected, 2);
  EXPECT_EQ(fleet.published().size(), 1);
  EXPECT_LT(fleet.published().FindByName("a.learned-0"), 0);
  EXPECT_LT(fleet.published().FindByName("b.learned-0"), 0);
  // The rejected model stays private to its shard: a still serves with it.
  ASSERT_FALSE(a.metrics.selections.empty());
  EXPECT_EQ(a.metrics.selections[0], "a.learned-0");
  ASSERT_FALSE(b.metrics.selections.empty());
  EXPECT_EQ(b.metrics.selections[0], "b.learned-0");
  // Rejection counters: the {reason=...} series sum to the aggregate.
  obs::MetricsRegistry& reg = *fleet.registry();
  const int64_t unlabeled =
      reg.GetCounter("vdrift.serve.publish_rejected").value();
  EXPECT_EQ(unlabeled, report.publish_rejected);
  int64_t by_reason = 0;
  for (const char* reason :
       {"no_query_model", "empty_calibration", "nonfinite", "below_margin"}) {
    by_reason +=
        reg.GetCounter("vdrift.serve.publish_rejected", {{"reason", reason}})
            .value();
  }
  EXPECT_EQ(by_reason, unlabeled);
  EXPECT_GE(reg.GetCounter("vdrift.serve.publish_rejected",
                           {{"reason", "below_margin"}})
                .value(),
            2);
}

TEST_F(FleetFixture, ChaosCampaignResumesBitIdenticallyAcrossThreads) {
  // Seed-driven chaos: shard kills and checkpoint corruption throughout,
  // plus one coordinator kill. The fleet halted by the coordinator kill
  // and resumed from its manifest must finish byte-identical to a fleet
  // that ran the same shard-level chaos uninterrupted — at 1 and 4
  // threads. VDRIFT_CHAOS_SEED varies the campaign (CI runs a matrix).
  uint64_t seed = 1234;
  if (const char* env = std::getenv("VDRIFT_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  fault::ChaosPlan::Options chaos_options;
  chaos_options.kill_shard_p = 0.08;
  chaos_options.corrupt_checkpoint_p = 0.04;
  chaos_options.kill_coordinator = true;
  fault::ChaosPlan plan = fault::ChaosPlan::FromSeed(
      seed, {"s0", "s1", "s2"}, /*horizon_rounds=*/6, chaos_options);
  ASSERT_GE(plan.coordinator_kill_round(), 1) << plan.ToString();

  FleetOptions options = BaseOptions();
  options.max_concurrent = 3;

  // The uninterrupted reference run: same chaos minus the coordinator
  // kill, its own checkpoint dir (kill_shard restores must never read
  // another run's files).
  // Chaos can kill a shard at round 0, before this run wrote any
  // checkpoint — scrub stale files from earlier invocations so a
  // round-0 restore is a cold start in every run.
  auto scrub = [](const std::string& dir) {
    for (const char* label : {"s0", "s1", "s2"}) {
      std::remove((dir + "/" + label + ".ckpt").c_str());
    }
  };
  std::string ref_dir = ::testing::TempDir() + "/vdrift_chaos_ref";
  ::mkdir(ref_dir.c_str(), 0755);
  scrub(ref_dir);
  FleetOptions reference = options;
  reference.checkpoint_dir = ref_dir;
  reference.chaos = plan.WithoutCoordinatorKill();
  FleetRun uninterrupted;
  {
    runtime::ScopedThreads scoped(1);
    uninterrupted = RunTokyoFleet(reference, 3);
  }
  EXPECT_FALSE(uninterrupted.report.halted);
  const int64_t total = bench_->dataset.total_frames();

  for (int threads : {1, 4}) {
    runtime::ScopedThreads scoped(threads);
    std::string dir =
        ::testing::TempDir() + "/vdrift_chaos_t" + std::to_string(threads);
    ::mkdir(dir.c_str(), 0755);
    scrub(dir);
    FleetOptions killed = options;
    killed.checkpoint_dir = dir;
    killed.manifest_path = dir + "/fleet.manifest";
    std::remove(killed.manifest_path.c_str());
    killed.chaos = plan;
    FleetRun halted = RunTokyoFleet(killed, 3);
    ASSERT_TRUE(halted.report.halted) << "threads " << threads;
    EXPECT_EQ(halted.report.halted_round, plan.coordinator_kill_round());

    // Resume: a fresh fleet over fresh stream objects, with the kill
    // stripped (it already happened).
    FleetOptions resume = killed;
    resume.chaos = plan.WithoutCoordinatorKill();
    FleetRun resumed = RunTokyoFleet(resume, 3);
    ASSERT_TRUE(resumed.report.resumed) << "threads " << threads;
    EXPECT_FALSE(resumed.report.halted);
    ASSERT_EQ(resumed.report.streams.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      const StreamReport& stream = resumed.report.streams[i];
      ExpectStreamIdentical(uninterrupted.report.streams[i], stream);
      EXPECT_EQ(stream.health, uninterrupted.report.streams[i].health)
          << stream.label;
      // Zero silent loss even through kills, corruption, and the resume.
      EXPECT_EQ(stream.metrics.Totals().count_total +
                    stream.metrics.degradation.frames_dropped +
                    stream.quarantined_frames,
                total)
          << stream.label << " threads " << threads;
    }
    EXPECT_EQ(resumed.report.rounds, uninterrupted.report.rounds)
        << "threads " << threads;
    EXPECT_EQ(resumed.report.backpressure_waits,
              uninterrupted.report.backpressure_waits);
    EXPECT_EQ(resumed.report.shard_restarts,
              uninterrupted.report.shard_restarts);
    EXPECT_EQ(resumed.report.quarantined_frames,
              uninterrupted.report.quarantined_frames);
    EXPECT_EQ(resumed.report.models_published,
              uninterrupted.report.models_published);
  }
}

TEST_F(FleetFixture, CorruptManifestFallsBackToAFreshRunLoudly) {
  std::string dir = ::testing::TempDir() + "/vdrift_fleet_manifest";
  ::mkdir(dir.c_str(), 0755);
  FleetOptions options = BaseOptions();
  options.max_concurrent = 3;
  options.checkpoint_dir = dir;
  options.manifest_path = dir + "/fleet.manifest";
  std::remove(options.manifest_path.c_str());
  FleetRun first = RunTokyoFleet(options, 3);
  EXPECT_FALSE(first.report.resumed);
  EXPECT_GT(first.registry->GetCounter("vdrift.serve.manifest_writes")
                .value(),
            0);
  // Damage the manifest the completed run left behind. The next fleet must
  // refuse to resume from it, say so, and run fresh to the same result.
  ASSERT_TRUE(
      fault::CorruptFileForChaos(options.manifest_path, /*seed=*/7).ok());
  FleetRun second = RunTokyoFleet(options, 3);
  EXPECT_FALSE(second.report.resumed);
  EXPECT_EQ(second.registry
                ->GetCounter("vdrift.serve.manifest_resume_failures")
                .value(),
            1);
  ASSERT_EQ(second.report.streams.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ExpectStreamIdentical(first.report.streams[i],
                          second.report.streams[i]);
  }
}

TEST_F(FleetWiringTest, ManifestWithoutCheckpointDirIsRejected) {
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.002);
  video::StreamGenerator stream = ds.MakeStream();
  FleetOptions options;
  options.pipeline.provision = benchutil::DefaultWorkbenchOptions().provision;
  options.manifest_path = ::testing::TempDir() + "/orphan.manifest";
  DriftFleet fleet(options);
  ASSERT_TRUE(fleet.AddBaseModel(*day_, *sample_).ok());
  ASSERT_TRUE(fleet.AddStream({"s0", &stream, nullptr}).ok());
  EXPECT_EQ(fleet.Run().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FleetWiringTest, ChaosAgainstUnknownStreamIsAnError) {
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.002);
  video::StreamGenerator stream = ds.MakeStream();
  FleetOptions options;
  options.pipeline.provision = benchutil::DefaultWorkbenchOptions().provision;
  options.chaos.events.push_back(
      {fault::ChaosKind::kKillShard, /*round=*/1, "ghost"});
  DriftFleet fleet(options);
  ASSERT_TRUE(fleet.AddBaseModel(*day_, *sample_).ok());
  ASSERT_TRUE(fleet.AddStream({"s0", &stream, nullptr}).ok());
  EXPECT_EQ(fleet.Run().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FleetWiringTest, CloneModelEntrySharesNothingButPreservesAliasing) {
  select::ModelEntry clone =
      select::CloneModelEntry(*day_).ValueOrDie();
  EXPECT_EQ(clone.name, day_->name);
  // Deep copies throughout: no mutable state shared with the source.
  EXPECT_NE(clone.profile.get(), day_->profile.get());
  EXPECT_NE(clone.ensemble.get(), day_->ensemble.get());
  EXPECT_NE(clone.count_model.get(), day_->count_model.get());
  // Provisioning deploys ensemble member 0 as the count model; the clone
  // must alias its *own* member the same way, not the source's.
  ASSERT_EQ(day_->count_model.get(), day_->ensemble->member(0).get());
  EXPECT_EQ(clone.count_model.get(), clone.ensemble->member(0).get());
}

}  // namespace
}  // namespace vdrift::serve
