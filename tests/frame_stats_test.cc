// Tests for the global frame statistics that augment the scoring
// embedding (see DistributionProfile).

#include <gtest/gtest.h>

#include "stats/rng.h"
#include "tensor/tensor.h"
#include "video/datasets.h"
#include "video/frame_stats.h"
#include "video/stream.h"

namespace vdrift::video {
namespace {

TEST(FrameStatsTest, ConstantImage) {
  tensor::Tensor img(tensor::Shape{1, 8, 8}, 0.5f);
  std::vector<float> s = GlobalFrameStats(img);
  ASSERT_EQ(s.size(), static_cast<size_t>(kNumFrameStats));
  EXPECT_FLOAT_EQ(s[0], 0.5f);   // mean
  EXPECT_NEAR(s[1], 0.0f, 1e-4); // std
  EXPECT_FLOAT_EQ(s[2], 0.0f);   // |dx|
  EXPECT_FLOAT_EQ(s[3], 0.0f);   // |dy|
  EXPECT_FLOAT_EQ(s[4], 0.0f);   // bright fraction
  EXPECT_FLOAT_EQ(s[5], 0.0f);   // dark fraction
}

TEST(FrameStatsTest, BrightAndDarkFractions) {
  tensor::Tensor img(tensor::Shape{1, 2, 2},
                     std::vector<float>{0.9f, 0.9f, 0.1f, 0.5f});
  std::vector<float> s = GlobalFrameStats(img);
  EXPECT_FLOAT_EQ(s[4], 0.5f);   // two of four > 0.8
  EXPECT_FLOAT_EQ(s[5], 0.25f);  // one of four < 0.2
}

TEST(FrameStatsTest, GradientsDetectTexture) {
  // Vertical stripes: high |dx|, zero |dy|.
  tensor::Tensor stripes(tensor::Shape{1, 4, 4});
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      stripes.At3(0, y, x) = (x % 2 == 0) ? 0.0f : 1.0f;
    }
  }
  std::vector<float> s = GlobalFrameStats(stripes);
  EXPECT_GT(s[2], 0.9f);
  EXPECT_FLOAT_EQ(s[3], 0.0f);
}

TEST(FrameStatsTest, SeparatesDayFromNight) {
  SyntheticDataset ds = MakeBddSynthetic(0.01);
  Frame day = GenerateFrames(ds.SpecOf("Day"), 1, 32, 1)[0];
  Frame night = GenerateFrames(ds.SpecOf("Night"), 1, 32, 2)[0];
  std::vector<float> s_day = GlobalFrameStats(day.pixels);
  std::vector<float> s_night = GlobalFrameStats(night.pixels);
  EXPECT_GT(s_day[0], s_night[0] + 0.2f) << "mean brightness should differ";
  EXPECT_GT(s_night[5], s_day[5] + 0.3f) << "night should be mostly dark";
}

TEST(FrameStatsTest, StableWithinASequence) {
  SyntheticDataset ds = MakeBddSynthetic(0.01);
  std::vector<Frame> frames = GenerateFrames(ds.SpecOf("Rain"), 30, 32, 3);
  float min_mean = 1.0f;
  float max_mean = 0.0f;
  for (const Frame& f : frames) {
    float m = GlobalFrameStats(f.pixels)[0];
    min_mean = std::min(min_mean, m);
    max_mean = std::max(max_mean, m);
  }
  EXPECT_LT(max_mean - min_mean, 0.1f)
      << "within-sequence brightness should be stable";
}

}  // namespace
}  // namespace vdrift::video
