// Tests for the conformal drift-detection core: point sets, p-values
// (including the Theorem 4.1 uniformity property), betting functions
// (integral constraints, martingale property), thresholds, the conformal
// martingale, and the Drift Inspector end to end on synthetic streams.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/betting.h"
#include "core/drift_inspector.h"
#include "core/martingale.h"
#include "core/point_set.h"
#include "core/profile.h"
#include "core/pvalue.h"
#include "core/threshold.h"
#include "stats/ks_test.h"
#include "video/frame_stats.h"
#include "stats/moments.h"
#include "stats/rng.h"
#include "vae/trainer.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace vdrift::conformal {
namespace {

using stats::Rng;

std::vector<std::vector<float>> GaussianCloud(int n, int dim, double mean,
                                              double std, Rng* rng) {
  std::vector<std::vector<float>> points;
  points.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<float> p(static_cast<size_t>(dim));
    for (float& v : p) {
      v = static_cast<float>(rng->NextGaussian(mean, std));
    }
    points.push_back(std::move(p));
  }
  return points;
}

TEST(PointSetTest, RejectsBadInput) {
  EXPECT_FALSE(PointSet::Build({}, 3).ok());
  EXPECT_FALSE(PointSet::Build({{1.0f, 2.0f}}, 0).ok());
  EXPECT_FALSE(PointSet::Build({{1.0f, 2.0f}, {1.0f}}, 1).ok());
  EXPECT_FALSE(PointSet::Build({{}}, 1).ok());
}

TEST(PointSetTest, BuildsWithScores) {
  Rng rng(1);
  PointSet set =
      PointSet::Build(GaussianCloud(50, 3, 0.0, 1.0, &rng), 5).ValueOrDie();
  EXPECT_EQ(set.size(), 50);
  EXPECT_EQ(set.dim(), 3);
  EXPECT_EQ(set.k(), 5);
  ASSERT_EQ(set.scores().size(), 50u);
  for (double s : set.scores()) EXPECT_GT(s, 0.0);
  // Sorted copy is ascending.
  for (size_t i = 1; i < set.sorted_scores().size(); ++i) {
    EXPECT_LE(set.sorted_scores()[i - 1], set.sorted_scores()[i]);
  }
}

TEST(PointSetTest, OutlierScoresHigherThanInlier) {
  Rng rng(2);
  PointSet set =
      PointSet::Build(GaussianCloud(100, 2, 0.0, 1.0, &rng), 5).ValueOrDie();
  std::vector<float> inlier{0.1f, -0.1f};
  std::vector<float> outlier{8.0f, 8.0f};
  EXPECT_GT(set.KnnScore(outlier), set.KnnScore(inlier) * 3.0);
}

TEST(PointSetTest, KnnScoreUsesOnlyKNearest) {
  // Points on a line; query at 0. With k=1 the score is the distance to
  // the closest point only.
  std::vector<std::vector<float>> points{{1.0f}, {2.0f}, {10.0f}};
  PointSet set = PointSet::Build(points, 1).ValueOrDie();
  std::vector<float> q{0.0f};
  EXPECT_DOUBLE_EQ(set.KnnScore(q), 1.0);
  PointSet set2 = PointSet::Build(points, 2).ValueOrDie();
  EXPECT_DOUBLE_EQ(set2.KnnScore(q), 1.5);
}

TEST(PointSetTest, KLargerThanSetIsClamped) {
  std::vector<std::vector<float>> points{{0.0f}, {2.0f}};
  PointSet set = PointSet::Build(points, 10).ValueOrDie();
  std::vector<float> q{1.0f};
  EXPECT_DOUBLE_EQ(set.KnnScore(q), 1.0);  // average of {1, 1}
}

TEST(PValueTest, StrangeObservationGetsSmallP) {
  Rng rng(3);
  std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
  // a_f far above every reference score: only the self-tie term remains,
  // so p = u/(n+1) in (0, 1/6].
  double p_high = ComputePValue(100.0, sorted, &rng);
  EXPECT_GT(p_high, 0.0);
  EXPECT_LE(p_high, 1.0 / 6.0);
  // a_f below every reference score -> p = (5 + u)/6 in (5/6, 1].
  double p_low = ComputePValue(0.5, sorted, &rng);
  EXPECT_GT(p_low, 5.0 / 6.0);
  EXPECT_LE(p_low, 1.0);
  // a_f in the middle: 2 of 5 greater, one tie (+ the self tie) ->
  // p = (2 + u*2)/6 in (1/3, 2/3].
  double p = ComputePValue(3.0, sorted, &rng);
  EXPECT_GT(p, 1.0 / 3.0);
  EXPECT_LE(p, 2.0 / 3.0);
}

// Regression for the p-value degeneracy: a test score exceeding every
// calibration score must still get a strictly positive p-value, and the
// (unclamped) power betting increment and martingale update driven by it
// must stay finite. With the old `p = #greater / n` convention this
// produced p = 0 and an unbounded b(p) = eps * p^(eps-1) bet.
TEST(PValueTest, ExceedsAllCalibrationScoresStaysFinite) {
  Rng rng(17);
  std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
  // Essentially-zero floor: finiteness must come from p > 0 itself, not
  // from the betting function's defensive clamp.
  PowerLogBetting betting(0.55, 1e-300);
  ConformalMartingale martingale(&betting, 3, 0.5);
  for (int i = 0; i < 200; ++i) {
    double p = ComputePValue(1e12, sorted, &rng);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
    double increment = betting.Increment(p);
    EXPECT_TRUE(std::isfinite(increment)) << "p=" << p;
    martingale.Update(p);
    EXPECT_TRUE(std::isfinite(martingale.value()));
  }
}

// Theorem 4.1: when observations are i.i.d. from the reference
// distribution, conformal p-values are (marginally) uniform on [0,1].
// Against a single finite reference draw the p-value law fluctuates with
// the draw, so we pool p-values across many independent reference sets —
// testing the marginal law the theorem speaks about — and KS-compare
// against a uniform sample.
TEST(PValueTest, UniformUnderExchangeability) {
  Rng rng(4);
  std::vector<double> pvalues;
  for (int rep = 0; rep < 20; ++rep) {
    PointSet set =
        PointSet::Build(GaussianCloud(150, 4, 0.0, 1.0, &rng), 5)
            .ValueOrDie();
    for (int i = 0; i < 60; ++i) {
      std::vector<float> x(4);
      for (float& v : x) v = static_cast<float>(rng.NextGaussian());
      pvalues.push_back(
          ComputePValue(set.KnnScore(x), set.sorted_scores(), &rng));
    }
  }
  std::vector<double> uniform;
  for (size_t i = 0; i < pvalues.size(); ++i) {
    uniform.push_back(rng.NextDouble());
  }
  stats::KsResult ks = stats::TwoSampleKs(pvalues, uniform);
  EXPECT_GT(ks.p_value, 0.005)
      << "conformal p-values not uniform under the null, KS=" << ks.statistic;
}

TEST(PValueTest, SmallUnderDrift) {
  Rng rng(5);
  PointSet set =
      PointSet::Build(GaussianCloud(200, 4, 0.0, 1.0, &rng), 5).ValueOrDie();
  stats::RunningMoments m;
  for (int i = 0; i < 100; ++i) {
    std::vector<float> x(4);
    for (float& v : x) v = static_cast<float>(rng.NextGaussian(5.0, 1.0));
    m.Add(ComputePValue(set.KnnScore(x), set.sorted_scores(), &rng));
  }
  EXPECT_LT(m.mean(), 0.05);
}

// Betting-function properties. For the multiplicative family the bet
// g(p) = exp(Increment(p)) must integrate to ~1 over [0,1]; for the
// additive family Increment itself must integrate to ~0 (Eq. 10).
TEST(BettingTest, PowerBetIntegratesToOne) {
  PowerLogBetting betting(0.5, 1e-6);
  double integral = 0.0;
  const int kSteps = 200000;
  for (int i = 0; i < kSteps; ++i) {
    double p = (i + 0.5) / kSteps;
    integral += std::exp(betting.Increment(p)) / kSteps;
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(BettingTest, ShiftedOddIntegratesToZero) {
  ShiftedOddBetting betting(4.0);
  double integral = 0.0;
  const int kSteps = 100000;
  for (int i = 0; i < kSteps; ++i) {
    double p = (i + 0.5) / kSteps;
    integral += betting.Increment(p) / kSteps;
  }
  EXPECT_NEAR(integral, 0.0, 1e-6);
}

TEST(BettingTest, SmallPYieldsPositiveIncrement) {
  PowerLogBetting power(0.5, 1e-3);
  ShiftedOddBetting odd(4.0);
  MixtureLogBetting mixture(1e-3);
  for (const BettingFunction* b :
       {static_cast<const BettingFunction*>(&power),
        static_cast<const BettingFunction*>(&odd),
        static_cast<const BettingFunction*>(&mixture)}) {
    EXPECT_GT(b->Increment(0.0), 0.5) << b->name();
    EXPECT_LT(b->Increment(0.9), 0.0) << b->name();
    EXPECT_GE(b->MaxIncrement(), b->Increment(0.0)) << b->name();
  }
}

TEST(BettingTest, NegativeDriftUnderUniformP) {
  // E[Increment] under uniform p must be <= 0 for every family, so the
  // max(0,.)-reflected statistic stays near zero on exchangeable data.
  Rng rng(6);
  PowerLogBetting power(0.5, 1e-3);
  ShiftedOddBetting odd(4.0);
  MixtureLogBetting mixture(1e-3);
  for (const BettingFunction* b :
       {static_cast<const BettingFunction*>(&power),
        static_cast<const BettingFunction*>(&odd),
        static_cast<const BettingFunction*>(&mixture)}) {
    stats::RunningMoments m;
    for (int i = 0; i < 50000; ++i) m.Add(b->Increment(rng.NextDouble()));
    EXPECT_LE(m.mean(), 0.01) << b->name();
  }
}

TEST(BettingDeathTest, PowerRejectsBadEpsilon) {
  EXPECT_DEATH(PowerLogBetting(0.0), "epsilon");
  EXPECT_DEATH(PowerLogBetting(1.0), "epsilon");
}

TEST(ThresholdTest, PaperFormulaMatchesWorkedExample) {
  // Paper §4.3.1: W=2, r=0.5 gives "the right part of the inequality
  // becomes 4".
  EXPECT_DOUBLE_EQ(Threshold(ThresholdPolicy::kPaper, 2, 0.5), 4.0);
}

TEST(ThresholdTest, HoeffdingTighterThanPaper) {
  for (int w : {1, 2, 3, 8}) {
    for (double r : {0.1, 0.5, 0.9}) {
      EXPECT_LT(Threshold(ThresholdPolicy::kHoeffding, w, r),
                Threshold(ThresholdPolicy::kPaper, w, r));
    }
  }
}

TEST(ThresholdTest, MonotoneInWindowAndSignificance) {
  EXPECT_LT(Threshold(ThresholdPolicy::kPaper, 2, 0.5),
            Threshold(ThresholdPolicy::kPaper, 4, 0.5));
  EXPECT_LT(Threshold(ThresholdPolicy::kPaper, 3, 0.9),
            Threshold(ThresholdPolicy::kPaper, 3, 0.1));
}

TEST(MartingaleTest, StaysNearZeroUnderUniformP) {
  Rng rng(7);
  auto betting = MakeDefaultBetting();
  ConformalMartingale martingale(betting.get(), 3, 0.5);
  int false_alarms = 0;
  for (int i = 0; i < 20000; ++i) {
    if (martingale.Update(rng.NextDouble())) ++false_alarms;
  }
  // Expected false alarms with the default bet are ~1e-2 over this stream.
  EXPECT_LE(false_alarms, 1)
      << "martingale fired on exchangeable data " << false_alarms
      << " times";
  EXPECT_LT(martingale.value(), 10.0);
}

TEST(MartingaleTest, FiresQuicklyUnderSmallP) {
  auto betting = MakeDefaultBetting();
  ConformalMartingale martingale(betting.get(), 3, 0.5);
  int frames = 0;
  bool fired = false;
  for (int i = 0; i < 50 && !fired; ++i) {
    fired = martingale.Update(0.0);
    ++frames;
  }
  EXPECT_TRUE(fired);
  EXPECT_LE(frames, 10);
}

TEST(MartingaleTest, ResetClearsState) {
  auto betting = MakeDefaultBetting();
  ConformalMartingale martingale(betting.get(), 3, 0.5);
  for (int i = 0; i < 3; ++i) martingale.Update(0.0);
  EXPECT_GT(martingale.value(), 0.0);
  martingale.Reset();
  EXPECT_DOUBLE_EQ(martingale.value(), 0.0);
  EXPECT_EQ(martingale.count(), 0);
}

TEST(MartingaleTest, NeverNegative) {
  auto betting = MakeDefaultBetting();
  ConformalMartingale martingale(betting.get(), 3, 0.5);
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    martingale.Update(0.5 + 0.5 * rng.NextDouble());  // benign p-values
    EXPECT_GE(martingale.value(), 0.0);
  }
}

// Empirical martingale property: under uniform p-values the *unclipped*
// multiplicative martingale M_n = prod g(p_i) has E[M_n] = M_0 = 1 for
// every n (Eq. 6). Checked by Monte-Carlo over many short paths.
TEST(MartingaleTest, ExpectationPreservedUnderNull) {
  Rng rng(9);
  PowerLogBetting betting(0.5, 1e-12);
  const int kPaths = 20000;
  const int kSteps = 5;
  stats::RunningMoments endpoint;
  for (int path = 0; path < kPaths; ++path) {
    double log_m = 0.0;
    for (int i = 0; i < kSteps; ++i) {
      log_m += betting.Increment(rng.NextDouble());
    }
    endpoint.Add(std::exp(log_m));
  }
  EXPECT_NEAR(endpoint.mean(), 1.0, 0.05);
}

// Parameterized sweep over betting functions and threshold policies: on a
// point-cloud drift the inspector must stay silent before the change and
// fire within a bounded number of frames after it.
struct DriftParam {
  int betting_kind;  // 0=power, 1=odd, 2=mixture
  ThresholdPolicy policy;
  int window;
};

class MartingaleDriftSweep : public ::testing::TestWithParam<DriftParam> {};

TEST_P(MartingaleDriftSweep, DetectsCloudShift) {
  DriftParam param = GetParam();
  std::shared_ptr<const BettingFunction> betting;
  switch (param.betting_kind) {
    case 0:
      betting = std::make_shared<PowerLogBetting>(0.7, 1e-3);
      break;
    case 1:
      // Bounded additive bet: needs a wider window so W * max-increment
      // can clear the threshold (see DESIGN.md on the additive family).
      betting = std::make_shared<ShiftedOddBetting>(2.0);
      break;
    default:
      betting = std::make_shared<MixtureLogBetting>(1e-3);
      break;
  }
  Rng rng(100 + param.betting_kind);
  PointSet set =
      PointSet::Build(GaussianCloud(200, 4, 0.0, 1.0, &rng), 5).ValueOrDie();
  ConformalMartingale martingale(betting.get(), param.window, 0.5,
                                 param.policy);
  // Pre-drift: 500 in-distribution points, no alarm.
  int pre_alarms = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<float> x(4);
    for (float& v : x) v = static_cast<float>(rng.NextGaussian());
    double p = ComputePValue(set.KnnScore(x), set.sorted_scores(), &rng);
    if (martingale.Update(p)) ++pre_alarms;
  }
  EXPECT_LE(pre_alarms, 1) << "false alarms before drift";
  // Post-drift: shifted cloud, must fire fast.
  int frames_to_detect = -1;
  for (int i = 0; i < 100; ++i) {
    std::vector<float> x(4);
    for (float& v : x) v = static_cast<float>(rng.NextGaussian(4.0, 1.0));
    double p = ComputePValue(set.KnnScore(x), set.sorted_scores(), &rng);
    if (martingale.Update(p)) {
      frames_to_detect = i + 1;
      break;
    }
  }
  ASSERT_GT(frames_to_detect, 0) << "drift never detected";
  EXPECT_LE(frames_to_detect, 40);
}

INSTANTIATE_TEST_SUITE_P(
    BettingAndThreshold, MartingaleDriftSweep,
    ::testing::Values(DriftParam{0, ThresholdPolicy::kPaper, 3},
                      DriftParam{0, ThresholdPolicy::kHoeffding, 3},
                      DriftParam{1, ThresholdPolicy::kPaper, 12},
                      DriftParam{2, ThresholdPolicy::kPaper, 3},
                      DriftParam{2, ThresholdPolicy::kHoeffding, 4}));

// --- DistributionProfile + DriftInspector on real rendered frames. ---

DistributionProfile::Options SmallProfileOptions() {
  DistributionProfile::Options options;
  options.vae.image_size = 32;
  options.vae.latent_dim = 8;
  options.vae.base_filters = 4;
  options.trainer.epochs = 30;
  options.sigma_size = 120;
  options.k = 5;
  return options;
}

TEST(ProfileTest, BuildValidatesInput) {
  Rng rng(10);
  EXPECT_FALSE(
      DistributionProfile::Build("x", {}, SmallProfileOptions(), &rng).ok());
  DistributionProfile::Options bad = SmallProfileOptions();
  bad.sigma_size = 3;
  video::SceneSpec spec;
  std::vector<tensor::Tensor> frames =
      video::PixelsOf(video::GenerateFrames(spec, 8, 32, 1));
  EXPECT_FALSE(DistributionProfile::Build("x", frames, bad, &rng).ok());
}

TEST(ProfileTest, EncodeDimIsLatentPlusStats) {
  Rng rng(11);
  video::SceneSpec spec;
  std::vector<tensor::Tensor> frames =
      video::PixelsOf(video::GenerateFrames(spec, 32, 32, 2));
  auto profile = DistributionProfile::Build("day", frames,
                                            SmallProfileOptions(), &rng)
                     .ValueOrDie();
  EXPECT_EQ(profile->name(), "day");
  EXPECT_EQ(profile->sigma().size(), 120);
  // Scoring embedding = latent (8) + standardized global stats (6).
  EXPECT_EQ(profile->Encode(frames[0]).size(),
            8u + static_cast<size_t>(video::kNumFrameStats));
  EXPECT_EQ(profile->sigma().dim(), 8 + video::kNumFrameStats);
}

TEST(ProfileTest, StatsWeightZeroKeepsRawLatent) {
  Rng rng(15);
  video::SceneSpec spec;
  std::vector<tensor::Tensor> frames =
      video::PixelsOf(video::GenerateFrames(spec, 32, 32, 8));
  DistributionProfile::Options options = SmallProfileOptions();
  options.stats_weight = 0.0;
  auto profile =
      DistributionProfile::Build("raw", frames, options, &rng).ValueOrDie();
  EXPECT_EQ(profile->Encode(frames[0]).size(), 8u);
  EXPECT_EQ(profile->sigma().dim(), 8);
}

TEST(DriftInspectorTest, SilentOnOwnDistributionFiresOnOther) {
  Rng rng(12);
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.01);
  // Enough training frames that the scoring-embedding standardisation is
  // estimated reliably (with ~64 frames the per-stat std estimates are
  // noisy and fresh frames look mildly non-exchangeable).
  std::vector<tensor::Tensor> day_frames =
      video::PixelsOf(video::GenerateFrames(ds.SpecOf("Day"), 220, 32, 3));
  auto profile =
      DistributionProfile::Build("Day", day_frames, SmallProfileOptions(),
                                 &rng)
          .ValueOrDie();
  DriftInspectorConfig config;  // W=3, r=0.5, paper defaults
  DriftInspector inspector(profile.get(), config);

  // Fresh Day frames: no drift should be declared over a long stretch.
  std::vector<video::Frame> more_day =
      video::GenerateFrames(ds.SpecOf("Day"), 300, 32, 4);
  int false_alarms = 0;
  for (const video::Frame& f : more_day) {
    if (inspector.Observe(f.pixels).drift) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 2) << "DI fires on its own distribution";

  // Night frames: drift must be detected within a small number of frames.
  inspector.Reset();
  std::vector<video::Frame> night =
      video::GenerateFrames(ds.SpecOf("Night"), 100, 32, 5);
  int frames_to_detect = -1;
  for (size_t i = 0; i < night.size(); ++i) {
    if (inspector.Observe(night[i].pixels).drift) {
      frames_to_detect = static_cast<int>(i) + 1;
      break;
    }
  }
  ASSERT_GT(frames_to_detect, 0) << "DI missed the Day->Night drift";
  EXPECT_LE(frames_to_detect, 50);
}

TEST(DriftInspectorTest, ObservationFieldsPopulated) {
  Rng rng(13);
  video::SceneSpec spec;
  std::vector<tensor::Tensor> frames =
      video::PixelsOf(video::GenerateFrames(spec, 48, 32, 6));
  auto profile = DistributionProfile::Build("x", frames,
                                            SmallProfileOptions(), &rng)
                     .ValueOrDie();
  DriftInspector inspector(profile.get(), DriftInspectorConfig{});
  DriftInspector::Observation obs = inspector.Observe(frames[0]);
  EXPECT_GT(obs.nonconformity, 0.0);
  EXPECT_GE(obs.p_value, 0.0);
  EXPECT_LE(obs.p_value, 1.0);
  EXPECT_GE(obs.martingale, 0.0);
  EXPECT_EQ(inspector.frames_seen(), 1);
  inspector.Reset();
  EXPECT_EQ(inspector.frames_seen(), 0);
  EXPECT_DOUBLE_EQ(inspector.martingale_value(), 0.0);
}

TEST(DriftInspectorTest, DeterministicForSameSeed) {
  // Observe uses the inspector's RNG for both the sampled encoding and the
  // p-value tie-break, so two inspectors with the same seed must agree
  // frame for frame.
  Rng rng(14);
  video::SceneSpec spec;
  std::vector<tensor::Tensor> frames =
      video::PixelsOf(video::GenerateFrames(spec, 48, 32, 7));
  auto profile = DistributionProfile::Build("x", frames,
                                            SmallProfileOptions(), &rng)
                     .ValueOrDie();
  DriftInspector a(profile.get(), DriftInspectorConfig{}, 555);
  DriftInspector b(profile.get(), DriftInspectorConfig{}, 555);
  for (int i = 0; i < 5; ++i) {
    auto obs_a = a.Observe(frames[static_cast<size_t>(i)]);
    auto obs_b = b.Observe(frames[static_cast<size_t>(i)]);
    EXPECT_DOUBLE_EQ(obs_a.nonconformity, obs_b.nonconformity);
    EXPECT_DOUBLE_EQ(obs_a.p_value, obs_b.p_value);
    EXPECT_DOUBLE_EQ(obs_a.martingale, obs_b.martingale);
  }
}

TEST(DriftInspectorTest, ObserveLatentAcceptsExternalEmbedding) {
  Rng rng(16);
  video::SceneSpec spec;
  std::vector<tensor::Tensor> frames =
      video::PixelsOf(video::GenerateFrames(spec, 48, 32, 9));
  auto profile = DistributionProfile::Build("x", frames,
                                            SmallProfileOptions(), &rng)
                     .ValueOrDie();
  DriftInspector inspector(profile.get(), DriftInspectorConfig{}, 556);
  std::vector<float> z = profile->Encode(frames[0]);
  auto obs = inspector.ObserveLatent(z);
  EXPECT_GE(obs.p_value, 0.0);
  EXPECT_LE(obs.p_value, 1.0);
  EXPECT_GT(obs.nonconformity, 0.0);
  EXPECT_EQ(inspector.frames_seen(), 1);
}

}  // namespace
}  // namespace vdrift::conformal
