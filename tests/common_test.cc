// Tests for the Status / Result error model.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/binio.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"

namespace vdrift {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusCodeTest, RecoveryCodesRenderDistinctly) {
  EXPECT_EQ(Status::DataLoss("torn file").ToString(), "Data loss: torn file");
  EXPECT_EQ(Status::DeadlineExceeded("slow").ToString(),
            "Deadline exceeded: slow");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOnlyValueCanBeMovedOut) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ValueOrDieReturnsValue) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(std::move(r).ValueOrDie(), "hello");
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> Doubled(int x) {
  VDRIFT_RETURN_NOT_OK(FailIfNegative(x));
  return 2 * x;
}

Result<int> DoubledTwice(int x) {
  VDRIFT_ASSIGN_OR_RETURN(int once, Doubled(x));
  VDRIFT_ASSIGN_OR_RETURN(int twice, Doubled(once));
  return twice;
}

}  // namespace macros

TEST(ResultMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(macros::Doubled(3).ok());
  EXPECT_EQ(macros::Doubled(3).value(), 6);
  EXPECT_EQ(macros::Doubled(-1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResultMacrosTest, AssignOrReturnChains) {
  ASSERT_TRUE(macros::DoubledTwice(5).ok());
  EXPECT_EQ(macros::DoubledTwice(5).value(), 20);
  EXPECT_FALSE(macros::DoubledTwice(-2).ok());
}

TEST(LoggingTest, NonFatalLevelsDoNotAbort) {
  VDRIFT_LOG_DEBUG << "debug line";
  VDRIFT_LOG_INFO << "info line";
  VDRIFT_LOG_WARNING << "warning line";
  SUCCEED();
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARNING", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kFatal);
  // Unknown names leave the level untouched.
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kFatal);
}

TEST(LoggingTest, SetLogLevelRoundTrips) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(internal::GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(internal::GetLogLevel(), LogLevel::kInfo);
}

TEST(AtomicWriteFileTest, RoundTripsBinaryPayloadsAndOverwrites) {
  std::string path = ::testing::TempDir() + "/vdrift_atomic_write.bin";
  // Embedded NULs and high bytes must survive byte-for-byte.
  std::string payload("hello\0\xff\x01world", 13);
  ASSERT_TRUE(AtomicWriteFile(path, payload).ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), payload);
  // A rewrite replaces the whole file — no stale tail from the longer
  // previous contents.
  ASSERT_TRUE(AtomicWriteFile(path, "x").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "x");
  // An empty payload yields an empty file, not an error.
  ASSERT_TRUE(AtomicWriteFile(path, "").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "");
  // The staging file is renamed away, never left behind.
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, FailsCleanlyOnAnUnwritableDirectory) {
  std::string path =
      ::testing::TempDir() + "/vdrift_no_such_dir/never_written.bin";
  Status status = AtomicWriteFile(path, "data");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // Nothing was created: neither the target nor a staging file.
  EXPECT_FALSE(ReadFileToString(path).ok());
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
}

TEST(AtomicWriteFileTest, PathWithoutDirectoryUsesTheWorkingDirectory) {
  // The parent-directory fsync path must handle a bare filename ("." is
  // the parent) without erroring.
  std::string name = "vdrift_atomic_cwd_test.bin";
  ASSERT_TRUE(AtomicWriteFile(name, "cwd").ok());
  EXPECT_EQ(ReadFileToString(name).ValueOrDie(), "cwd");
  std::remove(name.c_str());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ VDRIFT_CHECK(1 == 2) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH({ VDRIFT_CHECK_OK(Status::Internal("broken")); }, "broken");
}

}  // namespace
}  // namespace vdrift
