// Tests for the variational autoencoder: shape plumbing, training-loss
// descent, latent-space behaviour (same-distribution frames embed close,
// different-distribution frames embed far), and the Sigma_Ti sampler.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "stats/distance.h"
#include "stats/moments.h"
#include "stats/rng.h"
#include "tensor/tensor.h"
#include "vae/trainer.h"
#include "vae/vae.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace vdrift::vae {
namespace {

using stats::Rng;
using tensor::Shape;
using tensor::Tensor;

// Small config so the tests stay fast on one core.
VaeConfig SmallConfig() {
  VaeConfig config;
  config.image_size = 16;
  config.latent_dim = 4;
  config.base_filters = 4;
  return config;
}

std::vector<Tensor> NoisyBlobs(int count, float center, Rng* rng) {
  std::vector<Tensor> frames;
  for (int i = 0; i < count; ++i) {
    Tensor f(Shape{1, 16, 16});
    for (int64_t j = 0; j < f.size(); ++j) {
      f[j] = std::clamp(
          center + 0.1f * static_cast<float>(rng->NextGaussian()), 0.0f, 1.0f);
    }
    frames.push_back(std::move(f));
  }
  return frames;
}

TEST(VaeTest, ForwardShapes) {
  Rng rng(1);
  Vae vae(SmallConfig(), &rng);
  Tensor batch(Shape{3, 1, 16, 16}, 0.5f);
  Vae::ForwardResult fwd = vae.Forward(batch, &rng);
  EXPECT_EQ(fwd.recon.shape(), batch.shape());
  EXPECT_EQ(fwd.mu.shape(), (Shape{3, 4}));
  EXPECT_EQ(fwd.logvar.shape(), (Shape{3, 4}));
  EXPECT_EQ(fwd.z.shape(), (Shape{3, 4}));
}

TEST(VaeTest, ReconstructionInUnitInterval) {
  Rng rng(2);
  Vae vae(SmallConfig(), &rng);
  Tensor batch(Shape{2, 1, 16, 16}, 0.3f);
  Vae::ForwardResult fwd = vae.Forward(batch, &rng);
  for (int64_t i = 0; i < fwd.recon.size(); ++i) {
    EXPECT_GT(fwd.recon[i], 0.0f);
    EXPECT_LT(fwd.recon[i], 1.0f);
  }
}

TEST(VaeTest, TrainingReducesLoss) {
  Rng rng(3);
  Vae vae(SmallConfig(), &rng);
  std::vector<Tensor> frames = NoisyBlobs(64, 0.7f, &rng);
  TrainerConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  VaeTrainer trainer(tc);
  std::vector<double> losses =
      VaeTrainer(tc).Train(&vae, frames, &rng).ValueOrDie();
  ASSERT_EQ(losses.size(), 8u);
  // Targets are noisy continuous pixels, so the BCE floor is high; require
  // a clear descent rather than a large ratio.
  EXPECT_LT(losses.back(), losses.front() * 0.98)
      << "VAE loss did not descend: " << losses.front() << " -> "
      << losses.back();
}

TEST(VaeTest, TrainRejectsEmptyInput) {
  Rng rng(4);
  Vae vae(SmallConfig(), &rng);
  TrainerConfig tc;
  VaeTrainer trainer(tc);
  EXPECT_FALSE(trainer.Train(&vae, {}, &rng).ok());
}

TEST(VaeTest, TrainRejectsBadHyperparameters) {
  Rng rng(5);
  Vae vae(SmallConfig(), &rng);
  std::vector<Tensor> frames = NoisyBlobs(4, 0.5f, &rng);
  TrainerConfig tc;
  tc.epochs = 0;
  EXPECT_FALSE(VaeTrainer(tc).Train(&vae, frames, &rng).ok());
}

TEST(VaeTest, EncodeMeanIsDeterministic) {
  Rng rng(6);
  Vae vae(SmallConfig(), &rng);
  Tensor frame(Shape{1, 16, 16}, 0.4f);
  std::vector<float> a = vae.EncodeMean(frame);
  std::vector<float> b = vae.EncodeMean(frame);
  ASSERT_EQ(a.size(), 4u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(VaeTest, EncodeSampleVaries) {
  Rng rng(7);
  Vae vae(SmallConfig(), &rng);
  Tensor frame(Shape{1, 16, 16}, 0.4f);
  std::vector<float> a = vae.EncodeSample(frame, &rng);
  std::vector<float> b = vae.EncodeSample(frame, &rng);
  double dist = stats::Euclidean(a, b);
  EXPECT_GT(dist, 0.0);
}

TEST(VaeTest, DecodeShape) {
  Rng rng(8);
  Vae vae(SmallConfig(), &rng);
  Tensor img = vae.Decode({0.1f, -0.2f, 0.3f, 0.0f});
  EXPECT_EQ(img.shape(), (Shape{1, 16, 16}));
}

TEST(VaeTest, LatentSeparatesDistributions) {
  // After training on two visually distinct distributions, the encoder
  // should map frames of the same distribution closer together than frames
  // of different distributions. This is the property DI's non-conformity
  // scoring relies on.
  Rng rng(9);
  Vae vae(SmallConfig(), &rng);
  std::vector<Tensor> bright = NoisyBlobs(48, 0.8f, &rng);
  std::vector<Tensor> dark = NoisyBlobs(48, 0.2f, &rng);
  std::vector<Tensor> all = bright;
  all.insert(all.end(), dark.begin(), dark.end());
  TrainerConfig tc;
  tc.epochs = 6;
  VaeTrainer(tc).Train(&vae, all, &rng).ValueOrDie();

  auto centroid = [&](const std::vector<Tensor>& frames) {
    std::vector<double> c(4, 0.0);
    for (const Tensor& f : frames) {
      std::vector<float> z = vae.EncodeMean(f);
      for (size_t i = 0; i < z.size(); ++i) c[i] += z[i];
    }
    for (double& v : c) v /= static_cast<double>(frames.size());
    return c;
  };
  std::vector<double> cb = centroid(bright);
  std::vector<double> cd = centroid(dark);
  double between = 0.0;
  for (size_t i = 0; i < cb.size(); ++i) {
    between += (cb[i] - cd[i]) * (cb[i] - cd[i]);
  }
  between = std::sqrt(between);

  // Average within-distribution distance to own centroid.
  auto spread = [&](const std::vector<Tensor>& frames,
                    const std::vector<double>& c) {
    double total = 0.0;
    for (const Tensor& f : frames) {
      std::vector<float> z = vae.EncodeMean(f);
      double d = 0.0;
      for (size_t i = 0; i < z.size(); ++i) {
        d += (z[i] - c[i]) * (z[i] - c[i]);
      }
      total += std::sqrt(d);
    }
    return total / static_cast<double>(frames.size());
  };
  double within = 0.5 * (spread(bright, cb) + spread(dark, cd));
  EXPECT_GT(between, 2.0 * within)
      << "latent space does not separate the two distributions: between="
      << between << " within=" << within;
}

TEST(VaeTest, GenerateLatentSamplesCountAndDim) {
  Rng rng(10);
  Vae vae(SmallConfig(), &rng);
  std::vector<Tensor> frames = NoisyBlobs(8, 0.5f, &rng);
  std::vector<std::vector<float>> samples =
      GenerateLatentSamples(&vae, frames, 37, &rng);
  ASSERT_EQ(samples.size(), 37u);
  for (const auto& z : samples) EXPECT_EQ(z.size(), 4u);
}

TEST(VaeTest, LatentSamplesAreDispersed) {
  // Sigma_Ti must not collapse to one point; the conformal p-values need a
  // non-degenerate reference sample.
  Rng rng(11);
  Vae vae(SmallConfig(), &rng);
  std::vector<Tensor> frames = NoisyBlobs(32, 0.5f, &rng);
  TrainerConfig tc;
  tc.epochs = 3;
  VaeTrainer(tc).Train(&vae, frames, &rng).ValueOrDie();
  std::vector<std::vector<float>> samples =
      GenerateLatentSamples(&vae, frames, 64, &rng);
  stats::RunningMoments m;
  for (size_t i = 1; i < samples.size(); ++i) {
    m.Add(stats::Euclidean(samples[i - 1], samples[i]));
  }
  EXPECT_GT(m.mean(), 1e-4);
}

TEST(StackFramesTest, LayoutAndShape) {
  Tensor a(Shape{1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b(Shape{1, 2, 2}, std::vector<float>{5, 6, 7, 8});
  Tensor batch = StackFrames({a, b});
  EXPECT_EQ(batch.shape(), (Shape{2, 1, 2, 2}));
  EXPECT_EQ(batch.At4(0, 0, 0, 0), 1.0f);
  EXPECT_EQ(batch.At4(1, 0, 1, 1), 8.0f);
}

TEST(VaeOnSyntheticFramesTest, TrainsOnRenderedFrames) {
  // End-to-end smoke: the VAE trains on renderer output without numerical
  // trouble and the loss decreases.
  Rng rng(12);
  VaeConfig config;
  config.image_size = 32;
  config.latent_dim = 8;
  config.base_filters = 4;
  Vae vae(config, &rng);
  video::SceneSpec day = video::MakeBddSynthetic(0.01).SpecOf("Day");
  std::vector<video::Frame> frames = video::GenerateFrames(day, 48, 32, 99);
  TrainerConfig tc;
  tc.epochs = 3;
  std::vector<double> losses =
      VaeTrainer(tc).Train(&vae, video::PixelsOf(frames), &rng).ValueOrDie();
  EXPECT_LT(losses.back(), losses.front());
  for (double l : losses) EXPECT_TRUE(std::isfinite(l));
}

}  // namespace
}  // namespace vdrift::vae
