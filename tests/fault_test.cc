// Tests for the fault-injection harness: plan parsing, injector
// determinism, corruption helpers, the faulty stream decorator, the binary
// codec underneath checkpoints, and the checkpoint envelope's integrity
// checking. The harness itself must be trustworthy before any fault sweep
// result means anything.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/binio.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "fault/faulty_stream.h"
#include "gtest/gtest.h"
#include "pipeline/checkpoint.h"
#include "video/stream.h"

namespace vdrift::fault {
namespace {

using ::vdrift::video::SceneSpec;
using ::vdrift::video::Segment;
using ::vdrift::video::StreamGenerator;

FaultPlan MustParse(const std::string& spec) {
  Result<FaultPlan> plan = FaultPlan::Parse(spec);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

TEST(FaultPlanTest, ParsesMultiClauseSpec) {
  FaultPlan plan = MustParse(
      "corrupt_frame:p=0.01;stall:p=0.005,ms=50;selector_fail:p=0.02;"
      "io_fail:p=0.1");
  EXPECT_DOUBLE_EQ(plan.rate(FaultKind::kCorruptFrame).p, 0.01);
  EXPECT_DOUBLE_EQ(plan.rate(FaultKind::kStall).p, 0.005);
  EXPECT_EQ(plan.rate(FaultKind::kStall).ms, 50);
  EXPECT_DOUBLE_EQ(plan.rate(FaultKind::kSelectorFail).p, 0.02);
  EXPECT_DOUBLE_EQ(plan.rate(FaultKind::kIoFail).p, 0.1);
  EXPECT_DOUBLE_EQ(plan.rate(FaultKind::kNanFrame).p, 0.0);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(MustParse("").empty());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("bogus_kind:p=0.1").ok());
  EXPECT_FALSE(FaultPlan::Parse("stall=0.1").ok());
  EXPECT_FALSE(FaultPlan::Parse("stall:p").ok());
  EXPECT_FALSE(FaultPlan::Parse("stall:p=1.5").ok());
  EXPECT_FALSE(FaultPlan::Parse("stall:p=nope").ok());
  EXPECT_FALSE(FaultPlan::Parse("stall:ms=50").ok());  // p is mandatory
}

TEST(PerStreamFaultSpecTest, ParsesLabeledPlans) {
  std::vector<StreamFaultPlan> plans =
      ParsePerStreamFaultSpec(
          "s3@nan_frame:p=0.02;selector_fail:p=1|s5@stall:p=0.1,ms=2")
          .ValueOrDie();
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].stream, "s3");
  EXPECT_DOUBLE_EQ(plans[0].plan.rate(FaultKind::kNanFrame).p, 0.02);
  EXPECT_DOUBLE_EQ(plans[0].plan.rate(FaultKind::kSelectorFail).p, 1.0);
  EXPECT_EQ(plans[1].stream, "s5");
  EXPECT_DOUBLE_EQ(plans[1].plan.rate(FaultKind::kStall).p, 0.1);
  EXPECT_EQ(plans[1].plan.rate(FaultKind::kStall).ms, 2);
}

TEST(PerStreamFaultSpecTest, EmptySpecIsNoPlans) {
  EXPECT_TRUE(ParsePerStreamFaultSpec("").ValueOrDie().empty());
}

TEST(PerStreamFaultSpecTest, RejectsMalformedSpecs) {
  // No '@' separator.
  EXPECT_FALSE(ParsePerStreamFaultSpec("nan_frame:p=0.1").ok());
  // Empty label.
  EXPECT_FALSE(ParsePerStreamFaultSpec("@nan_frame:p=0.1").ok());
  // Duplicate label: one injector per stream, no silent merging.
  EXPECT_FALSE(
      ParsePerStreamFaultSpec("s1@stall:p=0.1,ms=1|s1@io_fail:p=0.2").ok());
  // Malformed inner plan propagates FaultPlan::Parse's error.
  EXPECT_FALSE(ParsePerStreamFaultSpec("s1@bogus_kind:p=0.1").ok());
}

TEST(PerStreamFaultSpecTest, RejectsWhitespaceInLabels) {
  // A label with whitespace can never match a fleet stream label; the
  // spec typo'd a separator, so the parse says so instead of arming a
  // plan no stream will ever receive.
  EXPECT_FALSE(ParsePerStreamFaultSpec("s 1@stall:p=0.1,ms=1").ok());
  EXPECT_FALSE(ParsePerStreamFaultSpec("s\t1@stall:p=0.1,ms=1").ok());
  EXPECT_FALSE(ParsePerStreamFaultSpec(" s1@stall:p=0.1,ms=1").ok());
}

TEST(PerStreamFaultSpecTest, RejectsEmptyPlanClauses) {
  // "s1@" used to parse into a plan that armed zero faults — a fault
  // sweep silently testing nothing.
  EXPECT_FALSE(ParsePerStreamFaultSpec("s1@").ok());
  EXPECT_FALSE(
      ParsePerStreamFaultSpec("s0@stall:p=0.1,ms=1|s1@").ok());
}

TEST(PerStreamFaultSpecTest, ErrorsNameTheOffendingStream) {
  Status status = ParsePerStreamFaultSpec("s7@").status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("s7"), std::string::npos)
      << status.ToString();
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  FaultPlan plan = MustParse("nan_frame:p=0.25;stall:p=0.5,ms=10");
  FaultPlan reparsed = MustParse(plan.ToString());
  EXPECT_DOUBLE_EQ(reparsed.rate(FaultKind::kNanFrame).p, 0.25);
  EXPECT_DOUBLE_EQ(reparsed.rate(FaultKind::kStall).p, 0.5);
  EXPECT_EQ(reparsed.rate(FaultKind::kStall).ms, 10);
}

TEST(FaultKindTest, EveryKindHasAParseableName) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    std::string spec =
        std::string(FaultKindName(static_cast<FaultKind>(k))) + ":p=0.5";
    FaultPlan plan = MustParse(spec);
    EXPECT_DOUBLE_EQ(plan.rates[static_cast<size_t>(k)].p, 0.5) << spec;
  }
}

TEST(FaultInjectorTest, SameSeedSameSequence) {
  FaultPlan plan = MustParse("corrupt_frame:p=0.3;drop_frame:p=0.2");
  FaultInjector a(plan, 99);
  FaultInjector b(plan, 99);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.ShouldInject(FaultKind::kCorruptFrame),
              b.ShouldInject(FaultKind::kCorruptFrame));
    EXPECT_EQ(a.ShouldInject(FaultKind::kDropFrame),
              b.ShouldInject(FaultKind::kDropFrame));
  }
  EXPECT_EQ(a.count(FaultKind::kCorruptFrame),
            b.count(FaultKind::kCorruptFrame));
  EXPECT_GT(a.total_injected(), 0);
}

TEST(FaultInjectorTest, DisabledKindConsumesNoRandomness) {
  // The corrupt_frame decision sequence must be identical whether or not
  // an *unused* kind is configured off explicitly — off kinds never draw.
  FaultInjector with(MustParse("corrupt_frame:p=0.3"), 7);
  FaultInjector without(MustParse("corrupt_frame:p=0.3;drop_frame:p=0"), 7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(without.ShouldInject(FaultKind::kDropFrame));
    EXPECT_EQ(with.ShouldInject(FaultKind::kCorruptFrame),
              without.ShouldInject(FaultKind::kCorruptFrame));
  }
}

TEST(FaultInjectorTest, ApproximatesConfiguredRate) {
  FaultInjector injector(MustParse("io_fail:p=0.1"), 1234);
  int fired = 0;
  for (int i = 0; i < 10000; ++i) {
    if (injector.ShouldInject(FaultKind::kIoFail)) ++fired;
  }
  EXPECT_NEAR(fired / 10000.0, 0.1, 0.02);
  EXPECT_EQ(injector.count(FaultKind::kIoFail), fired);
}

TEST(FaultInjectorTest, ResetReplaysExactly) {
  FaultPlan plan = MustParse("selector_fail:p=0.4");
  FaultInjector injector(plan, 5);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) {
    first.push_back(injector.ShouldInject(FaultKind::kSelectorFail));
  }
  injector.Reset();
  EXPECT_EQ(injector.total_injected(), 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.ShouldInject(FaultKind::kSelectorFail),
              first[static_cast<size_t>(i)]);
  }
}

TEST(FaultInjectorTest, CorruptTensorStaysFinite) {
  FaultInjector injector(MustParse("corrupt_frame:p=1"), 3);
  tensor::Tensor t(tensor::Shape{1, 8, 8}, 0.5f);
  injector.CorruptTensor(&t);
  int changed = 0;
  for (int64_t i = 0; i < t.size(); ++i) {
    ASSERT_TRUE(std::isfinite(t[i])) << "corruption must stay finite";
    if (t[i] != 0.5f) ++changed;
  }
  EXPECT_GT(changed, 0);
}

TEST(FaultInjectorTest, PoisonTensorInjectsNan) {
  FaultInjector injector(MustParse("nan_frame:p=1"), 3);
  tensor::Tensor t(tensor::Shape{1, 8, 8}, 0.5f);
  injector.PoisonTensor(&t);
  int nans = 0;
  for (int64_t i = 0; i < t.size(); ++i) {
    if (std::isnan(t[i])) ++nans;
  }
  EXPECT_GT(nans, 0);
}

TEST(FaultInjectorTest, CorruptBytesFlipsExactlyOneBit) {
  FaultInjector injector(MustParse("checkpoint_corrupt:p=1"), 11);
  std::string original(64, '\x5a');
  std::string damaged = original;
  injector.CorruptBytes(&damaged);
  ASSERT_EQ(damaged.size(), original.size());
  int bits_changed = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(original[i]) ^
                         static_cast<unsigned char>(damaged[i]);
    while (diff != 0) {
      bits_changed += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_changed, 1);
}

TEST(FaultInjectorTest, TearBytesShortens) {
  FaultInjector injector(MustParse("checkpoint_corrupt:p=1"), 11);
  std::string bytes(64, 'x');
  injector.TearBytes(&bytes);
  EXPECT_LT(bytes.size(), 64u);
  EXPECT_GE(bytes.size(), 1u);
}

StreamGenerator MakeStream(int64_t frames, uint64_t seed) {
  SceneSpec spec;
  spec.name = "plain";
  return StreamGenerator({Segment{spec, frames}}, 16, seed);
}

TEST(FaultyStreamTest, ConservesEveryFrame) {
  StreamGenerator inner = MakeStream(300, 42);
  FaultInjector injector(MustParse("drop_frame:p=0.1;dup_frame:p=0.1"), 9);
  FaultyStream stream(&inner, &injector);
  int64_t delivered = 0;
  video::Frame frame;
  while (stream.Next(&frame)) ++delivered;
  // The books must balance: inner frames = delivered - duplicates + drops.
  EXPECT_EQ(inner.total_frames(),
            delivered - stream.duplicated() + stream.dropped());
  EXPECT_GT(stream.dropped(), 0);
  EXPECT_GT(stream.duplicated(), 0);
  EXPECT_EQ(stream.position(), delivered);
}

TEST(FaultyStreamTest, ResetReplaysBitIdentically) {
  StreamGenerator inner = MakeStream(120, 77);
  FaultInjector injector(
      MustParse("drop_frame:p=0.05;corrupt_frame:p=0.1;nan_frame:p=0.05"), 21);
  FaultyStream stream(&inner, &injector);
  auto fingerprint = [&] {
    std::vector<uint32_t> crcs;
    video::Frame frame;
    while (stream.Next(&frame)) {
      // NaN bit patterns CRC deterministically even though NaN != NaN.
      crcs.push_back(Crc32(&frame.pixels[0],
                           static_cast<size_t>(frame.pixels.size()) *
                               sizeof(float)));
    }
    return crcs;
  };
  std::vector<uint32_t> first = fingerprint();
  stream.Reset();
  std::vector<uint32_t> second = fingerprint();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(BinIoTest, RoundTripsAllTypes) {
  BinaryWriter writer;
  writer.WriteU8(7);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteI64(-12345678901234LL);
  writer.WriteDouble(3.25);
  writer.WriteString("hello");
  writer.WriteDoubleVec({1.0, -2.5});
  writer.WriteI64Vec({42, -42});
  BinaryReader reader(writer.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  int64_t i64 = 0;
  double d = 0.0;
  std::string s;
  std::vector<double> dv;
  std::vector<int64_t> iv;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadDoubleVec(&dv).ok());
  ASSERT_TRUE(reader.ReadI64Vec(&iv).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(i64, -12345678901234LL);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(dv, (std::vector<double>{1.0, -2.5}));
  EXPECT_EQ(iv, (std::vector<int64_t>{42, -42}));
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BinIoTest, TruncationIsDataLossNotUb) {
  BinaryWriter writer;
  writer.WriteString("a long enough payload");
  std::string torn = writer.bytes().substr(0, 6);
  BinaryReader reader(torn);
  std::string s;
  Status status = reader.ReadString(&s);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(BinIoTest, Crc32DetectsSingleBitFlips) {
  std::string data(256, '\x11');
  uint32_t clean = Crc32(data.data(), data.size());
  data[100] = static_cast<char>(data[100] ^ 0x04);
  EXPECT_NE(clean, Crc32(data.data(), data.size()));
}

pipeline::PipelineCheckpoint MakeCheckpoint() {
  pipeline::PipelineCheckpoint cp;
  cp.registry_fingerprint = {"Angle 1", "Angle 2"};
  cp.deployed = 1;
  cp.drift_oblivious = false;
  cp.consecutive_selection_failures = 2;
  cp.pipeline_rng = {0x123456789abcdef0ULL, 0x42ULL, true, 0.5};
  cp.inspector.frames_seen = 321;
  cp.inspector.rng = {7, 9, false, 0.0};
  cp.inspector.martingale = {1.5, 321, 0.25, 0.01, {0.0, 0.5, 1.5}};
  cp.calibration.pc_avg = {0.1, 0.2};
  cp.calibration.sigma = {0.01, 0.02};
  cp.calibration.global_h = 0.15;
  cp.calibrated = true;
  cp.stream_cursor = 456;
  cp.frames = 456;
  cp.drifts_detected = 3;
  cp.new_models_trained = 1;
  cp.drift_frames = {100, 200, 300};
  cp.selections = {"Angle 2", "<incumbent>", "learned-0"};
  cp.selection_invocations = 77;
  cp.per_sequence[0] = {10, 12, 5, 6, 12};
  cp.per_sequence[3] = {1, 2, 0, 0, 2};
  cp.degradation.frames_dropped = 4;
  cp.degradation.selector_retries = 1;
  return cp;
}

TEST(CheckpointCodecTest, RoundTripsEveryField) {
  pipeline::PipelineCheckpoint cp = MakeCheckpoint();
  Result<pipeline::PipelineCheckpoint> decoded =
      pipeline::DecodeCheckpoint(pipeline::EncodeCheckpoint(cp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const pipeline::PipelineCheckpoint& out = decoded.value();
  EXPECT_EQ(out.registry_fingerprint, cp.registry_fingerprint);
  EXPECT_EQ(out.deployed, cp.deployed);
  EXPECT_EQ(out.consecutive_selection_failures,
            cp.consecutive_selection_failures);
  EXPECT_EQ(out.pipeline_rng.state, cp.pipeline_rng.state);
  EXPECT_EQ(out.pipeline_rng.has_spare, cp.pipeline_rng.has_spare);
  EXPECT_DOUBLE_EQ(out.pipeline_rng.spare, cp.pipeline_rng.spare);
  EXPECT_EQ(out.inspector.frames_seen, cp.inspector.frames_seen);
  EXPECT_EQ(out.inspector.martingale.history, cp.inspector.martingale.history);
  EXPECT_DOUBLE_EQ(out.inspector.martingale.current,
                   cp.inspector.martingale.current);
  EXPECT_EQ(out.calibration.pc_avg, cp.calibration.pc_avg);
  EXPECT_DOUBLE_EQ(out.calibration.global_h, cp.calibration.global_h);
  EXPECT_EQ(out.calibrated, cp.calibrated);
  EXPECT_EQ(out.stream_cursor, cp.stream_cursor);
  EXPECT_EQ(out.frames, cp.frames);
  EXPECT_EQ(out.drift_frames, cp.drift_frames);
  EXPECT_EQ(out.selections, cp.selections);
  ASSERT_EQ(out.per_sequence.size(), cp.per_sequence.size());
  EXPECT_EQ(out.per_sequence.at(3).count_total, 2);
  EXPECT_EQ(out.degradation.frames_dropped, 4);
  EXPECT_EQ(out.degradation.selector_retries, 1);
}

TEST(CheckpointCodecTest, EveryCorruptionIsDataLoss) {
  std::string bytes = pipeline::EncodeCheckpoint(MakeCheckpoint());
  // Bit flip anywhere in the payload: CRC catches it.
  {
    std::string damaged = bytes;
    damaged[damaged.size() / 2] =
        static_cast<char>(damaged[damaged.size() / 2] ^ 0x10);
    Result<pipeline::PipelineCheckpoint> r =
        pipeline::DecodeCheckpoint(damaged);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
  // Torn write: length check catches it.
  {
    Result<pipeline::PipelineCheckpoint> r =
        pipeline::DecodeCheckpoint(bytes.substr(0, bytes.size() / 2));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
  // Wrong magic.
  {
    std::string damaged = bytes;
    damaged[0] = 'X';
    EXPECT_EQ(pipeline::DecodeCheckpoint(damaged).status().code(),
              StatusCode::kDataLoss);
  }
  // Empty file.
  EXPECT_EQ(pipeline::DecodeCheckpoint("").status().code(),
            StatusCode::kDataLoss);
}

TEST(CheckpointCodecTest, InjectedCorruptionIsAlwaysDetected) {
  // The exact damage WriteCheckpointFile injects (alternating bit flips
  // and tears) must always be caught on the read side: fault seeds 0..7.
  pipeline::PipelineCheckpoint cp = MakeCheckpoint();
  std::string path = ::testing::TempDir() + "/vdrift_ckpt_fault_test.bin";
  for (uint64_t seed = 0; seed < 8; ++seed) {
    FaultInjector injector(MustParse("checkpoint_corrupt:p=1"), seed);
    ASSERT_TRUE(pipeline::WriteCheckpointFile(cp, path, &injector).ok());
    Result<pipeline::PipelineCheckpoint> r =
        pipeline::ReadCheckpointFile(path, nullptr);
    ASSERT_FALSE(r.ok()) << "seed " << seed << " corruption went undetected";
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "seed " << seed;
  }
  std::remove(path.c_str());
}

// --- Fleet-level chaos plans. ---

TEST(ChaosPlanTest, SameSeedYieldsTheSameSchedule) {
  std::vector<std::string> streams = {"s0", "s1", "s2"};
  ChaosPlan::Options options;
  options.kill_shard_p = 0.2;
  options.corrupt_checkpoint_p = 0.1;
  options.corrupt_manifest_p = 0.05;
  options.kill_coordinator = true;
  ChaosPlan a = ChaosPlan::FromSeed(7, streams, 40, options);
  ChaosPlan b = ChaosPlan::FromSeed(7, streams, 40, options);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].round, b.events[i].round) << i;
    EXPECT_EQ(a.events[i].stream, b.events[i].stream) << i;
  }
  // Events are sorted by round and stay inside the horizon.
  int64_t last_round = 0;
  for (const ChaosEvent& event : a.events) {
    EXPECT_GE(event.round, last_round);
    EXPECT_LT(event.round, 40);
    last_round = event.round;
  }
  // A different seed reshuffles the campaign.
  ChaosPlan c = ChaosPlan::FromSeed(8, streams, 40, options);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(ChaosPlanTest, WithoutCoordinatorKillStripsExactlyTheKill) {
  ChaosPlan::Options options;
  options.kill_shard_p = 0.3;
  options.kill_coordinator = true;
  ChaosPlan plan = ChaosPlan::FromSeed(3, {"s0", "s1"}, 20, options);
  ASSERT_GE(plan.coordinator_kill_round(), 1);
  ASSERT_LT(plan.coordinator_kill_round(), 20);
  ChaosPlan stripped = plan.WithoutCoordinatorKill();
  EXPECT_EQ(stripped.coordinator_kill_round(), -1);
  EXPECT_EQ(stripped.events.size(), plan.events.size() - 1);
  // Every shard-level event survives, in order.
  size_t j = 0;
  for (const ChaosEvent& event : plan.events) {
    if (event.kind == ChaosKind::kKillCoordinator) continue;
    EXPECT_EQ(stripped.events[j].kind, event.kind);
    EXPECT_EQ(stripped.events[j].round, event.round);
    EXPECT_EQ(stripped.events[j].stream, event.stream);
    ++j;
  }
}

TEST(ChaosPlanTest, EventsAtFiltersByRoundInDrawOrder) {
  ChaosPlan plan;
  plan.events = {
      {ChaosKind::kKillShard, 2, "s0"},
      {ChaosKind::kCorruptCheckpoint, 2, "s1"},
      {ChaosKind::kKillShard, 5, "s1"},
  };
  std::vector<ChaosEvent> at2 = plan.EventsAt(2);
  ASSERT_EQ(at2.size(), 2u);
  EXPECT_EQ(at2[0].stream, "s0");
  EXPECT_EQ(at2[1].kind, ChaosKind::kCorruptCheckpoint);
  EXPECT_TRUE(plan.EventsAt(3).empty());
  EXPECT_EQ(plan.EventsAt(5).size(), 1u);
}

TEST(ChaosPlanTest, EveryKindHasAName) {
  for (int k = 0; k < static_cast<int>(ChaosKind::kNumChaosKinds); ++k) {
    EXPECT_STRNE(ChaosKindName(static_cast<ChaosKind>(k)), "");
  }
}

TEST(ChaosFileCorruptionTest, FlipsExactlyOneBitDeterministically) {
  std::string path = ::testing::TempDir() + "/vdrift_chaos_corrupt.bin";
  const std::string original(256, '\x5a');
  ASSERT_TRUE(AtomicWriteFile(path, original).ok());
  ASSERT_TRUE(CorruptFileForChaos(path, /*seed=*/5).ok());
  std::string damaged = ReadFileToString(path).ValueOrDie();
  ASSERT_EQ(damaged.size(), original.size());
  int differing_bits = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(original[i]) ^
                         static_cast<unsigned char>(damaged[i]);
    while (diff != 0) {
      differing_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);
  // Same seed, same bit: corrupting again restores the original.
  ASSERT_TRUE(CorruptFileForChaos(path, /*seed=*/5).ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), original);
  std::remove(path.c_str());
  // A missing file is an IO error, not a crash.
  EXPECT_EQ(CorruptFileForChaos(path, 5).code(), StatusCode::kIoError);
}

TEST(CheckpointCodecTest, AtomicWriteSurvivesCleanRewrite) {
  pipeline::PipelineCheckpoint cp = MakeCheckpoint();
  std::string path = ::testing::TempDir() + "/vdrift_ckpt_clean_test.bin";
  ASSERT_TRUE(pipeline::WriteCheckpointFile(cp, path, nullptr).ok());
  cp.frames += 1;
  ASSERT_TRUE(pipeline::WriteCheckpointFile(cp, path, nullptr).ok());
  Result<pipeline::PipelineCheckpoint> r =
      pipeline::ReadCheckpointFile(path, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().frames, cp.frames);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vdrift::fault
