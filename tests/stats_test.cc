// Tests for the statistics substrate: RNG, distances, moments, histograms,
// KL divergence, and the two-sample KS test.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/distance.h"
#include "stats/histogram.h"
#include "stats/ks_test.h"
#include "stats/moments.h"
#include "stats/rng.h"

namespace vdrift::stats {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123, 7);
  Rng b(123, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUInt32(), b.NextUInt32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(123, 7);
  Rng b(124, 7);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUInt32() == b.NextUInt32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(2);
  RunningMoments m;
  for (int i = 0; i < 20000; ++i) m.Add(rng.NextDouble());
  EXPECT_NEAR(m.mean(), 0.5, 0.01);
  EXPECT_NEAR(m.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, IntRespectsBounds) {
  Rng rng(3);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) {
    int v = rng.NextInt(2, 8);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 8);
    ++seen[v - 2];
  }
  for (int c : seen) EXPECT_GT(c, 700);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  RunningMoments m;
  for (int i = 0; i < 50000; ++i) m.Add(rng.NextGaussian(3.0, 2.0));
  EXPECT_NEAR(m.mean(), 3.0, 0.05);
  EXPECT_NEAR(m.stddev(), 2.0, 0.05);
}

TEST(RngTest, PoissonMeanMatchesLambda) {
  Rng rng(5);
  for (double lambda : {0.5, 3.0, 9.2, 40.0}) {
    RunningMoments m;
    for (int i = 0; i < 20000; ++i) m.Add(rng.NextPoisson(lambda));
    EXPECT_NEAR(m.mean(), lambda, 0.15 * lambda + 0.05) << "lambda=" << lambda;
  }
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextPoisson(0.0), 0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(8);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUInt32() == b.NextUInt32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(DistanceTest, EuclideanKnownValues) {
  std::vector<float> a{0.0f, 0.0f};
  std::vector<float> b{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(Euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Manhattan(a, b), 7.0);
}

TEST(DistanceTest, IdenticalVectorsAreZeroDistance) {
  std::vector<float> a{1.5f, -2.0f, 0.25f};
  EXPECT_DOUBLE_EQ(Euclidean(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Manhattan(a, a), 0.0);
  EXPECT_NEAR(CosineDistance(a, a), 0.0, 1e-12);
}

TEST(DistanceTest, CosineOrthogonalIsOne) {
  std::vector<float> a{1.0f, 0.0f};
  std::vector<float> b{0.0f, 2.0f};
  EXPECT_NEAR(CosineDistance(a, b), 1.0, 1e-12);
}

TEST(DistanceTest, CosineZeroVectorIsOne) {
  std::vector<float> a{0.0f, 0.0f};
  std::vector<float> b{1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(CosineDistance(a, b), 1.0);
}

TEST(MomentsTest, EmptyMomentsAreZero) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(MomentsTest, KnownSample) {
  RunningMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
}

TEST(MomentsTest, MergeMatchesSequential) {
  Rng rng(10);
  RunningMoments all;
  RunningMoments a;
  RunningMoments b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextGaussian();
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(HistogramTest, RejectsBadArguments) {
  EXPECT_FALSE(Histogram::Make(1.0, 1.0, 4).ok());
  EXPECT_FALSE(Histogram::Make(2.0, 1.0, 4).ok());
  EXPECT_FALSE(Histogram::Make(0.0, 1.0, 0).ok());
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h = Histogram::Make(0.0, 1.0, 4).ValueOrDie();
  h.Add(0.1);   // bin 0
  h.Add(0.3);   // bin 1
  h.Add(0.6);   // bin 2
  h.Add(0.9);   // bin 3
  h.Add(-5.0);  // clamped to bin 0
  h.Add(5.0);   // clamped to bin 3
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(2), 1);
  EXPECT_EQ(h.bin_count(3), 2);
}

TEST(HistogramTest, PmfSumsToOne) {
  Histogram h = Histogram::Make(0.0, 10.0, 8).ValueOrDie();
  Rng rng(11);
  for (int i = 0; i < 500; ++i) h.Add(rng.NextDouble() * 10.0);
  std::vector<double> pmf = h.Pmf();
  double sum = 0.0;
  for (double p : pmf) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(KlTest, IdenticalDistributionsHaveZeroKl) {
  std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(KlTest, KlIsNonNegativeAndAsymmetric) {
  std::vector<double> p{0.7, 0.2, 0.1};
  std::vector<double> q{0.1, 0.2, 0.7};
  EXPECT_GT(KlDivergence(p, q), 0.0);
  EXPECT_GT(KlDivergence(q, p), 0.0);
}

TEST(KlTest, HistogramKlDropsAsClusterStabilizes) {
  // Mirrors the ODIN promotion rule: as a cluster accumulates samples from a
  // stationary distribution, the before/after-add KL divergence shrinks.
  Rng rng(12);
  Histogram h = Histogram::Make(0.0, 1.0, 16).ValueOrDie();
  for (int i = 0; i < 10; ++i) h.Add(rng.NextDouble());
  std::vector<double> before_small = h.Pmf();
  h.Add(rng.NextDouble());
  double kl_small = KlDivergence(h.Pmf(), before_small);
  for (int i = 0; i < 2000; ++i) h.Add(rng.NextDouble());
  std::vector<double> before_big = h.Pmf();
  h.Add(rng.NextDouble());
  double kl_big = KlDivergence(h.Pmf(), before_big);
  EXPECT_LT(kl_big, kl_small);
  EXPECT_LT(kl_big, 0.007);
}

TEST(KsTest, SameDistributionHighPValue) {
  Rng rng(13);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.NextGaussian());
    b.push_back(rng.NextGaussian());
  }
  KsResult r = TwoSampleKs(a, b);
  EXPECT_LT(r.statistic, 0.15);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(KsTest, ShiftedDistributionLowPValue) {
  Rng rng(14);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.NextGaussian(0.0, 1.0));
    b.push_back(rng.NextGaussian(1.0, 1.0));
  }
  KsResult r = TwoSampleKs(a, b);
  EXPECT_GT(r.statistic, 0.3);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, EmptyInputIsNeutral) {
  KsResult r = TwoSampleKs({}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(KsTest, KolmogorovSurvivalMonotone) {
  double prev = 1.0;
  for (double lam = 0.1; lam < 3.0; lam += 0.1) {
    double q = KolmogorovSurvival(lam);
    EXPECT_LE(q, prev + 1e-12);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
    prev = q;
  }
}

// Property sweep: the KS test should reject at rate ~alpha under the null.
class KsCalibration : public ::testing::TestWithParam<int> {};

TEST_P(KsCalibration, FalsePositiveRateNearAlpha) {
  int n = GetParam();
  Rng rng(100 + n);
  int rejects = 0;
  const int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < n; ++i) {
      a.push_back(rng.NextDouble());
      b.push_back(rng.NextDouble());
    }
    if (TwoSampleKs(a, b).p_value < 0.05) ++rejects;
  }
  double rate = static_cast<double>(rejects) / kTrials;
  EXPECT_LT(rate, 0.12);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, KsCalibration,
                         ::testing::Values(50, 100, 200, 400));

}  // namespace
}  // namespace vdrift::stats
