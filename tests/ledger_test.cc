// Tests for the BENCH run ledger (benchutil/ledger.h): record JSON
// round-trip, append/read over a real file, corrupt-line tolerance,
// machine-fingerprint stability, and kernel-stat harvesting from the
// op-probe instruments.

#include "benchutil/ledger.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace vdrift::benchutil {
namespace {

LedgerRecord MakeRecord(const std::string& bench, double p50) {
  LedgerRecord record;
  record.bench = bench;
  record.git_rev = "abc123def456";
  record.unix_time = 1754600000;
  record.machine = MachineFingerprint::Detect();
  record.env["threads"] = "1";
  record.env["smoke"] = "0";
  LedgerStage& stage = record.stages["detect"];
  stage.count = 3;
  stage.sum = 3 * p50;
  stage.min = p50 * 0.9;
  stage.max = p50 * 1.1;
  stage.p50 = p50;
  stage.p90 = p50 * 1.05;
  stage.p99 = p50 * 1.08;
  stage.samples = {p50 * 0.9, p50, p50 * 1.1};
  LedgerKernel& kernel = record.kernels["tensor.matmul"];
  kernel.calls = 42;
  kernel.flops = 1 << 20;
  kernel.bytes = 1 << 16;
  kernel.seconds = 0.125;
  record.throughput_fps = 1.0 / p50;
  return record;
}

TEST(LedgerRecordTest, JsonLineRoundTrips) {
  LedgerRecord record = MakeRecord("table6_detection_time", 0.025);
  std::string line = record.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);

  Result<LedgerRecord> parsed = LedgerRecord::FromJsonLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const LedgerRecord& back = parsed.value();
  EXPECT_EQ(back.schema, record.schema);
  EXPECT_EQ(back.bench, record.bench);
  EXPECT_EQ(back.git_rev, record.git_rev);
  EXPECT_EQ(back.unix_time, record.unix_time);
  EXPECT_TRUE(back.machine == record.machine);
  EXPECT_EQ(back.env.at("threads"), "1");
  ASSERT_EQ(back.stages.count("detect"), 1u);
  const LedgerStage& stage = back.stages.at("detect");
  EXPECT_EQ(stage.count, 3);
  EXPECT_DOUBLE_EQ(stage.p50, 0.025);
  ASSERT_EQ(stage.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(stage.samples[1], 0.025);
  ASSERT_EQ(back.kernels.count("tensor.matmul"), 1u);
  EXPECT_EQ(back.kernels.at("tensor.matmul").calls, 42);
  EXPECT_DOUBLE_EQ(back.kernels.at("tensor.matmul").seconds, 0.125);
  EXPECT_DOUBLE_EQ(back.throughput_fps, record.throughput_fps);
}

TEST(LedgerRecordTest, RejectsNonRecords) {
  EXPECT_FALSE(LedgerRecord::FromJsonLine("not json").ok());
  EXPECT_FALSE(LedgerRecord::FromJsonLine("{}").ok());
  EXPECT_FALSE(LedgerRecord::FromJsonLine("{\"bench\":\"x\"}").ok());
  EXPECT_FALSE(
      LedgerRecord::FromJsonLine("{\"stages\":{}}").ok());
}

TEST(LedgerFileTest, AppendReadRoundTripsAndAccumulates) {
  std::string path = ::testing::TempDir() + "/vdrift_ledger_rt.jsonl";
  std::remove(path.c_str());

  ASSERT_TRUE(AppendLedgerRecord(path, MakeRecord("bench_a", 0.010)).ok());
  ASSERT_TRUE(AppendLedgerRecord(path, MakeRecord("bench_a", 0.011)).ok());
  ASSERT_TRUE(AppendLedgerRecord(path, MakeRecord("bench_b", 0.500)).ok());

  Result<LedgerHistory> history = ReadLedger(path);
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ(history.value().corrupt_lines, 0);
  ASSERT_EQ(history.value().records.size(), 3u);
  EXPECT_EQ(history.value().records[0].bench, "bench_a");
  EXPECT_DOUBLE_EQ(history.value().records[1].stages.at("detect").p50,
                   0.011);
  EXPECT_EQ(history.value().records[2].bench, "bench_b");
}

TEST(LedgerFileTest, CreatesParentDirectories) {
  std::string path = ::testing::TempDir() + "/vdrift_ledger_dirs/a/b.jsonl";
  std::remove(path.c_str());  // Appends accumulate across test invocations.
  ASSERT_TRUE(AppendLedgerRecord(path, MakeRecord("nested", 0.010)).ok());
  Result<LedgerHistory> history = ReadLedger(path);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history.value().records.size(), 1u);
}

TEST(LedgerFileTest, ToleratesCorruptLines) {
  std::string path = ::testing::TempDir() + "/vdrift_ledger_corrupt.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(AppendLedgerRecord(path, MakeRecord("bench_a", 0.010)).ok());
  {
    // A torn append (crash mid-write) and stray garbage.
    std::ofstream out(path, std::ios::app);
    out << "{\"bench\":\"bench_a\",\"stages\":{\"detect\":{\"cou\n";
    out << "garbage line\n";
  }
  ASSERT_TRUE(AppendLedgerRecord(path, MakeRecord("bench_a", 0.012)).ok());

  Result<LedgerHistory> history = ReadLedger(path);
  ASSERT_TRUE(history.ok()) << history.status().ToString();
  EXPECT_EQ(history.value().corrupt_lines, 2);
  ASSERT_EQ(history.value().records.size(), 2u);
  EXPECT_DOUBLE_EQ(history.value().records[1].stages.at("detect").p50,
                   0.012);
}

TEST(LedgerFileTest, MissingFileIsAnError) {
  EXPECT_FALSE(
      ReadLedger(::testing::TempDir() + "/vdrift_no_such.jsonl").ok());
}

TEST(MachineFingerprintTest, StableWithinProcessAndRoundTrips) {
  MachineFingerprint a = MachineFingerprint::Detect();
  MachineFingerprint b = MachineFingerprint::Detect();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Id(), b.Id());
  EXPECT_FALSE(a.Id().empty());
  EXPECT_GT(a.cores, 0);
  EXPECT_GT(a.page_size, 0);

  Result<obs::json::Value> doc = obs::json::Parse(a.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  MachineFingerprint back = MachineFingerprint::FromJson(doc.value());
  EXPECT_TRUE(a == back);

  // The id is a content hash: a different machine has a different id.
  MachineFingerprint other = a;
  other.cpu_model = "Different CPU";
  EXPECT_NE(other.Id(), a.Id());
}

TEST(CollectKernelStatsTest, HarvestsOpProbeInstruments) {
  obs::MetricsRegistry registry;
  registry.GetCounter("vdrift.ops.test.collect_op.calls").Increment(7);
  registry.GetCounter("vdrift.ops.test.collect_op.flops").Increment(1234);
  registry.GetCounter("vdrift.ops.test.collect_op.bytes").Increment(99);
  registry.GetHistogram("vdrift.ops.test.collect_op.seconds").Record(0.5);
  registry.GetCounter("vdrift.unrelated.counter").Increment(1);

  auto kernels = CollectKernelStats(registry);
  ASSERT_EQ(kernels.count("test.collect_op"), 1u);
  EXPECT_EQ(kernels.at("test.collect_op").calls, 7);
  EXPECT_EQ(kernels.at("test.collect_op").flops, 1234);
  EXPECT_EQ(kernels.at("test.collect_op").bytes, 99);
  EXPECT_DOUBLE_EQ(kernels.at("test.collect_op").seconds, 0.5);
  EXPECT_EQ(kernels.count("unrelated.counter"), 0u);
}

}  // namespace
}  // namespace vdrift::benchutil
