// Tests for the flight recorder (obs/trace_log.h): ring bounds and
// wraparound, multi-thread draining, Chrome trace-event serialisation
// (round-tripped through obs::json), TraceSpan integration including the
// defensive out-of-order Stop, and the kernel-op probes.

#include "obs/trace_log.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace vdrift::obs {
namespace {

// Every test runs against the process-wide recorder, so each one starts
// from a clean enabled state and leaves the recorder disabled and empty.
class TraceLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceLog::Options options;
    options.per_thread_capacity = 64;
    TraceLog::Instance().Enable(options);
  }
  void TearDown() override {
    TraceLog::Instance().Disable();
    TraceLog::Instance().Drain();
    SetKernelProfiling(false);
  }
};

TEST_F(TraceLogTest, RecordsAndDrainsCompleteEvents) {
  TraceLog& log = TraceLog::Instance();
  log.RecordComplete("op", "tensor.matmul", 1.0, 2.0, 128, 256);
  log.RecordComplete("op", "tensor.im2col", 3.0, 3.5, 0, 64);
  std::vector<TraceEvent> events = log.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "tensor.matmul");
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kComplete);
  EXPECT_EQ(events[0].flops, 128);
  EXPECT_EQ(events[0].bytes, 256);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 1e6);
  EXPECT_LT(events[0].ts_us, events[1].ts_us);
  // Drain empties the rings.
  EXPECT_TRUE(log.Drain().empty());
}

TEST_F(TraceLogTest, DisabledRecorderDropsEverythingSilently) {
  TraceLog& log = TraceLog::Instance();
  log.Disable();
  log.RecordBegin("ignored", 1.0);
  log.RecordComplete("op", "ignored", 1.0, 2.0, 1, 1);
  EXPECT_TRUE(log.Drain().empty());
}

TEST_F(TraceLogTest, RingWrapsKeepingTheMostRecentEvents) {
  TraceLog& log = TraceLog::Instance();
  TraceLog::Options tiny;
  tiny.per_thread_capacity = 4;
  log.Enable(tiny);
  for (int i = 0; i < 10; ++i) {
    log.RecordComplete("op", "op" + std::to_string(i),
                       static_cast<double>(i), static_cast<double>(i) + 0.5,
                       i, 0);
  }
  EXPECT_EQ(log.dropped_events(), 6);
  std::vector<TraceEvent> events = log.Drain();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first within the survivors, which are the last four recorded.
  EXPECT_EQ(events[0].name, "op6");
  EXPECT_EQ(events[3].name, "op9");
  // Re-enabling resets the drop counter along with the rings.
  log.Enable(tiny);
  EXPECT_EQ(log.dropped_events(), 0);
}

TEST_F(TraceLogTest, DrainMergesThreadsSortedByTidAndTime) {
  TraceLog& log = TraceLog::Instance();
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        double start = t * 100.0 + i;
        log.RecordComplete("op", "thread_op", start, start + 0.25, 1, 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<TraceEvent> events = log.Drain();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads * kEventsPerThread));
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i - 1].tid == events[i].tid) {
      EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
    } else {
      EXPECT_LT(events[i - 1].tid, events[i].tid);
    }
  }
}

TEST_F(TraceLogTest, ChromeJsonRoundTripsThroughObsJson) {
  TraceLog& log = TraceLog::Instance();
  {
    MetricsRegistry registry;
    TraceSpan outer(&registry, "outer_span");
    log.RecordComplete("op", "nn.conv2d", 10.0, 11.0, 4096, 512);
  }
  std::string doc = log.DrainChromeJson();
  auto parsed = json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  json::Value root = std::move(parsed).ValueOrDie();
  ASSERT_TRUE(root.is_object());
  const json::Value* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // outer_span B + E, plus the complete op event.
  ASSERT_EQ(events->array_value.size(), 3u);
  int complete = 0;
  for (const json::Value& event : events->array_value) {
    const json::Value* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_TRUE(ph->string_value == "B" || ph->string_value == "E" ||
                ph->string_value == "X");
    EXPECT_TRUE(event.Has("name"));
    EXPECT_TRUE(event.Has("ts"));
    EXPECT_TRUE(event.Has("pid"));
    EXPECT_TRUE(event.Has("tid"));
    if (ph->string_value == "X") {
      ++complete;
      EXPECT_EQ(event.Find("name")->string_value, "nn.conv2d");
      EXPECT_EQ(event.Find("cat")->string_value, "op");
      ASSERT_TRUE(event.Has("dur"));
      const json::Value* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->Find("flops")->number_value, 4096.0);
      EXPECT_DOUBLE_EQ(args->Find("bytes")->number_value, 512.0);
    }
  }
  EXPECT_EQ(complete, 1);
  const json::Value* unit = root.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string_value, "ms");
}

TEST_F(TraceLogTest, TraceSpansEmitNestedBeginEndPairs) {
  MetricsRegistry registry;
  {
    TraceSpan outer(&registry, "outer");
    TraceSpan inner(&registry, "inner");
  }
  std::vector<TraceEvent> events = TraceLog::Instance().Drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::kEnd);
}

TEST_F(TraceLogTest, ExplicitParentStopUnwindsLiveChildren) {
  MetricsRegistry registry;
  TraceSpan parent(&registry, "parent");
  TraceSpan child(&registry, "child");
  // Out-of-order explicit stop: the child must be closed first (with a
  // warning) and the stack restored, not corrupted.
  parent.Stop();
  EXPECT_EQ(TraceSpan::Current(), nullptr);
  // The child's own Stop is now a no-op.
  child.Stop();
  EXPECT_EQ(registry.GetHistogram("parent").count(), 1);
  EXPECT_EQ(registry.GetHistogram("child").count(), 1);
  std::vector<TraceEvent> events = TraceLog::Instance().Drain();
  ASSERT_EQ(events.size(), 4u);
  // LIFO on the trace too: the child end precedes the parent end.
  EXPECT_EQ(events[2].name, "child");
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);
  EXPECT_EQ(events[3].name, "parent");
  EXPECT_EQ(events[3].phase, TraceEvent::Phase::kEnd);
}

TEST_F(TraceLogTest, OpProbeAttributesWorkAndEmitsCompleteEvents) {
  int64_t calls_before;
  int64_t flops_before;
  {
    // Counters are process-wide; measure deltas.
    MetricsRegistry& global = Global();
    calls_before =
        global.GetCounter("vdrift.ops.test.probe_op.calls").value();
    flops_before =
        global.GetCounter("vdrift.ops.test.probe_op.flops").value();
  }
  auto run_op = [] { VDRIFT_OP_PROBE("test", "probe_op", 42, 7); };
  run_op();
  run_op();
  MetricsRegistry& global = Global();
  EXPECT_EQ(global.GetCounter("vdrift.ops.test.probe_op.calls").value(),
            calls_before + 2);
  EXPECT_EQ(global.GetCounter("vdrift.ops.test.probe_op.flops").value(),
            flops_before + 84);
  std::vector<TraceEvent> events = TraceLog::Instance().Drain();
  ASSERT_EQ(events.size(), 2u);  // Enable() turned kernel profiling on.
  EXPECT_EQ(events[0].name, "test.probe_op");
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kComplete);
  EXPECT_STREQ(events[0].category, "op");
  EXPECT_EQ(events[0].flops, 42);
  EXPECT_EQ(events[0].bytes, 7);
}

TEST_F(TraceLogTest, KernelProfilingGateSkipsTimingButKeepsCounters) {
  SetKernelProfiling(false);
  int64_t calls_before =
      Global().GetCounter("vdrift.ops.test.gated_op.calls").value();
  { VDRIFT_OP_PROBE("test", "gated_op", 5, 5); }
  EXPECT_EQ(Global().GetCounter("vdrift.ops.test.gated_op.calls").value(),
            calls_before + 1);
  // No trace event without the profiling gate, even with the log enabled.
  EXPECT_TRUE(TraceLog::Instance().Drain().empty());
}

TEST(MetricsJsonOrderTest, RegistryExportsKeysInSortedOrder) {
  MetricsRegistry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha");
  registry.GetCounter("mid");
  registry.GetHistogram("z.hist").Record(1.0);
  registry.GetHistogram("a.hist").Record(2.0);
  std::string doc = registry.ToJson();
  // Serialized byte order, not just parsed-map order: stable reports are
  // the contract that makes BENCH/metrics diffs reviewable.
  EXPECT_LT(doc.find("\"alpha\""), doc.find("\"mid\""));
  EXPECT_LT(doc.find("\"mid\""), doc.find("\"zeta\""));
  EXPECT_LT(doc.find("\"a.hist\""), doc.find("\"z.hist\""));
  auto parsed = json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

}  // namespace
}  // namespace vdrift::obs
