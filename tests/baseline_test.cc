// Tests for the ODIN baseline: cluster mechanics (centroid, density band,
// KL promotion), assignment semantics, drift declaration, and ensemble
// formation on overlapping clusters.

#include <vector>

#include <gtest/gtest.h>

#include "baseline/classic.h"
#include "baseline/odin.h"
#include "stats/rng.h"

namespace vdrift::baseline {
namespace {

using stats::Rng;

std::vector<std::vector<float>> Cloud(int n, float cx, float cy, float spread,
                                      Rng* rng) {
  std::vector<std::vector<float>> points;
  for (int i = 0; i < n; ++i) {
    points.push_back({static_cast<float>(rng->NextGaussian(cx, spread)),
                      static_cast<float>(rng->NextGaussian(cy, spread))});
  }
  return points;
}

TEST(OdinClusterTest, CentroidIsRunningMean) {
  OdinCluster cluster(2, OdinConfig{});
  cluster.Add(std::vector<float>{0.0f, 0.0f});
  cluster.Add(std::vector<float>{2.0f, 4.0f});
  EXPECT_FLOAT_EQ(cluster.centroid()[0], 1.0f);
  EXPECT_FLOAT_EQ(cluster.centroid()[1], 2.0f);
  EXPECT_EQ(cluster.size(), 2);
}

TEST(OdinClusterTest, BandEnclosesCentralDelta) {
  Rng rng(1);
  OdinConfig config;
  config.delta = 0.5;
  OdinCluster cluster(2, config);
  for (const auto& p : Cloud(200, 0.0f, 0.0f, 1.0f, &rng)) cluster.Add(p);
  EXPECT_GT(cluster.band_upper(), cluster.band_lower());
  EXPECT_GT(cluster.band_lower(), 0.0);
  // Roughly half the member distances should fall inside the band; we
  // check the quantile ordering rather than exact mass.
  EXPECT_LT(cluster.band_upper(), 3.0);
}

TEST(OdinClusterTest, AcceptsInsideRejectsFarAway) {
  Rng rng(2);
  OdinCluster cluster(2, OdinConfig{});
  for (const auto& p : Cloud(200, 0.0f, 0.0f, 1.0f, &rng)) cluster.Add(p);
  std::vector<float> near{0.3f, -0.2f};
  std::vector<float> far{15.0f, 15.0f};
  EXPECT_TRUE(cluster.Accepts(cluster.DistanceTo(near)));
  EXPECT_FALSE(cluster.Accepts(cluster.DistanceTo(far)));
}

TEST(OdinClusterTest, EmptyClusterAcceptsNothing) {
  OdinCluster cluster(2, OdinConfig{});
  EXPECT_FALSE(cluster.Accepts(0.0));
}

TEST(OdinClusterTest, KlShrinksAsClusterStabilizes) {
  Rng rng(3);
  OdinCluster cluster(2, OdinConfig{});
  std::vector<std::vector<float>> points = Cloud(400, 0.0f, 0.0f, 1.0f, &rng);
  for (int i = 0; i < 20; ++i) cluster.Add(points[static_cast<size_t>(i)]);
  double kl_small =
      cluster.KlAfterAdding(cluster.DistanceTo(points[20]));
  for (int i = 20; i < 400; ++i) cluster.Add(points[static_cast<size_t>(i)]);
  double kl_big = cluster.KlAfterAdding(cluster.DistanceTo(points[0]));
  EXPECT_LT(kl_big, kl_small);
  EXPECT_LT(kl_big, 0.007);
}

TEST(OdinDetectTest, AssignsToSeededCluster) {
  Rng rng(4);
  OdinDetect odin(OdinConfig{}, 2);
  int c0 = odin.AddPermanentCluster(Cloud(150, 0.0f, 0.0f, 1.0f, &rng), 7);
  EXPECT_EQ(c0, 0);
  EXPECT_EQ(odin.num_clusters(), 1);
  std::vector<float> inlier{0.2f, 0.1f};
  OdinObservation obs = odin.Observe(inlier);
  ASSERT_EQ(obs.assigned_clusters.size(), 1u);
  EXPECT_EQ(obs.assigned_clusters[0], 0);
  ASSERT_EQ(obs.models.size(), 1u);
  EXPECT_EQ(obs.models[0], 7);
  EXPECT_FALSE(obs.drift);
  EXPECT_FALSE(obs.in_temporary);
}

TEST(OdinDetectTest, OutlierGoesToTemporary) {
  Rng rng(5);
  OdinDetect odin(OdinConfig{}, 2);
  odin.AddPermanentCluster(Cloud(150, 0.0f, 0.0f, 1.0f, &rng), 0);
  std::vector<float> outlier{20.0f, 20.0f};
  OdinObservation obs = odin.Observe(outlier);
  EXPECT_TRUE(obs.assigned_clusters.empty());
  EXPECT_TRUE(obs.in_temporary);
  EXPECT_FALSE(obs.drift);
}

TEST(OdinDetectTest, TemporaryPromotesToDriftOnStableStream) {
  Rng rng(6);
  OdinConfig config;
  config.min_temporary_size = 8;
  OdinDetect odin(config, 2);
  odin.AddPermanentCluster(Cloud(150, 0.0f, 0.0f, 1.0f, &rng), 0);
  odin.set_next_model_index(3);
  // Feed a stable far-away cloud; the temporary cluster must eventually
  // stabilize and be promoted (= drift declared).
  int frames_to_drift = -1;
  for (int i = 0; i < 400; ++i) {
    std::vector<float> p{static_cast<float>(rng.NextGaussian(20.0, 0.5)),
                         static_cast<float>(rng.NextGaussian(20.0, 0.5))};
    OdinObservation obs = odin.Observe(p);
    if (obs.drift) {
      frames_to_drift = i + 1;
      EXPECT_EQ(obs.promoted_cluster, 1);
      break;
    }
  }
  ASSERT_GT(frames_to_drift, 0) << "ODIN never promoted the temp cluster";
  EXPECT_GT(frames_to_drift, config.min_temporary_size);
  EXPECT_EQ(odin.num_clusters(), 2);
  EXPECT_EQ(odin.cluster(1).model_index(), 3);
  // After promotion, new frames from the same cloud assign to cluster 1.
  std::vector<float> p{20.0f, 20.0f};
  OdinObservation obs = odin.Observe(p);
  ASSERT_FALSE(obs.assigned_clusters.empty());
  EXPECT_EQ(obs.assigned_clusters[0], 1);
}

TEST(OdinDetectTest, OverlappingClustersFormEnsemble) {
  Rng rng(7);
  OdinDetect odin(OdinConfig{}, 2);
  odin.AddPermanentCluster(Cloud(150, 0.0f, 0.0f, 1.5f, &rng), 0);
  odin.AddPermanentCluster(Cloud(150, 1.0f, 0.0f, 1.5f, &rng), 1);
  // A frame between the two centroids should often be claimed by both.
  int ensembles = 0;
  for (int i = 0; i < 50; ++i) {
    std::vector<float> p{0.5f + 0.05f * static_cast<float>(rng.NextGaussian()),
                         0.05f * static_cast<float>(rng.NextGaussian())};
    OdinObservation obs = odin.Observe(p);
    if (obs.models.size() > 1) ++ensembles;
  }
  EXPECT_GT(ensembles, 25)
      << "overlapping clusters rarely produced ensembles";
}

TEST(OdinDetectTest, ModelsDeduplicated) {
  Rng rng(8);
  OdinDetect odin(OdinConfig{}, 2);
  // Two clusters backed by the same model.
  odin.AddPermanentCluster(Cloud(150, 0.0f, 0.0f, 1.5f, &rng), 4);
  odin.AddPermanentCluster(Cloud(150, 0.5f, 0.0f, 1.5f, &rng), 4);
  std::vector<float> p{0.25f, 0.0f};
  OdinObservation obs = odin.Observe(p);
  if (obs.assigned_clusters.size() > 1) {
    EXPECT_EQ(obs.models.size(), 1u);
  }
}

// Property sweep over delta: wider bands accept more, so the fraction of
// frames falling to the temporary path must shrink as delta grows.
class OdinDeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(OdinDeltaSweep, AcceptanceGrowsWithDelta) {
  double delta = GetParam();
  Rng rng(9);
  OdinConfig config;
  config.delta = delta;
  OdinDetect odin(config, 2);
  odin.AddPermanentCluster(Cloud(200, 0.0f, 0.0f, 1.0f, &rng), 0);
  int accepted = 0;
  const int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    std::vector<float> p{static_cast<float>(rng.NextGaussian()),
                         static_cast<float>(rng.NextGaussian())};
    OdinObservation obs = odin.Observe(p);
    if (!obs.assigned_clusters.empty()) ++accepted;
  }
  // With delta = 0.9 nearly everything in-distribution is accepted; with
  // delta = 0.3 a sizable fraction overflows to the temporary cluster.
  if (delta >= 0.9) {
    EXPECT_GT(accepted, kFrames * 0.75);
  } else if (delta <= 0.3) {
    EXPECT_LT(accepted, kFrames * 0.95);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Deltas, OdinDeltaSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

TEST(KsWindowDetectorTest, RejectsBadConfig) {
  KsWindowDetector::Config config;
  EXPECT_FALSE(KsWindowDetector::Make({1.0, 2.0}, config).ok());
  std::vector<double> ref(64, 0.5);
  config.alpha = 0.0;
  EXPECT_FALSE(KsWindowDetector::Make(ref, config).ok());
  config.alpha = 1e-3;
  config.window = 4;
  config.min_window = 16;
  EXPECT_FALSE(KsWindowDetector::Make(ref, config).ok());
}

TEST(KsWindowDetectorTest, SilentOnMatchingFiresOnShift) {
  Rng rng(20);
  std::vector<double> reference;
  for (int i = 0; i < 300; ++i) reference.push_back(rng.NextGaussian());
  KsWindowDetector detector =
      KsWindowDetector::Make(reference, KsWindowDetector::Config{})
          .ValueOrDie();
  int false_alarms = 0;
  for (int i = 0; i < 500; ++i) {
    if (detector.Observe(rng.NextGaussian())) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 2);
  detector.Reset();
  int frames = -1;
  for (int i = 0; i < 200; ++i) {
    if (detector.Observe(rng.NextGaussian(2.0, 1.0))) {
      frames = i + 1;
      break;
    }
  }
  ASSERT_GT(frames, 0) << "KS detector missed a 2-sigma mean shift";
  EXPECT_LE(frames, 80);
}

TEST(KsWindowDetectorTest, ResetClearsWindow) {
  Rng rng(21);
  std::vector<double> reference;
  for (int i = 0; i < 100; ++i) reference.push_back(rng.NextDouble());
  KsWindowDetector detector =
      KsWindowDetector::Make(reference, KsWindowDetector::Config{})
          .ValueOrDie();
  for (int i = 0; i < 40; ++i) detector.Observe(rng.NextDouble());
  detector.Reset();
  EXPECT_DOUBLE_EQ(detector.last_p_value(), 1.0);
}

TEST(PageHinkleyTest, SilentOnStationaryFiresOnShift) {
  Rng rng(22);
  PageHinkleyDetector::Config config;
  config.lambda = 5.0;
  PageHinkleyDetector detector(config);
  int false_alarms = 0;
  for (int i = 0; i < 2000; ++i) {
    if (detector.Observe(0.5 + 0.05 * rng.NextGaussian())) ++false_alarms;
  }
  EXPECT_EQ(false_alarms, 0);
  int frames = -1;
  for (int i = 0; i < 400; ++i) {
    if (detector.Observe(0.9 + 0.05 * rng.NextGaussian())) {
      frames = i + 1;
      break;
    }
  }
  ASSERT_GT(frames, 0) << "Page-Hinkley missed a mean shift";
  EXPECT_LE(frames, 60);
}

TEST(PageHinkleyTest, DetectsDownwardShiftToo) {
  Rng rng(23);
  PageHinkleyDetector::Config config;
  config.lambda = 5.0;
  PageHinkleyDetector detector(config);
  for (int i = 0; i < 500; ++i) {
    detector.Observe(0.5 + 0.05 * rng.NextGaussian());
  }
  int frames = -1;
  for (int i = 0; i < 400; ++i) {
    if (detector.Observe(0.1 + 0.05 * rng.NextGaussian())) {
      frames = i + 1;
      break;
    }
  }
  ASSERT_GT(frames, 0);
}

TEST(PageHinkleyTest, ResetClearsState) {
  PageHinkleyDetector detector(PageHinkleyDetector::Config{});
  for (int i = 0; i < 50; ++i) detector.Observe(1.0);
  detector.Reset();
  EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
}


}  // namespace
}  // namespace vdrift::baseline
