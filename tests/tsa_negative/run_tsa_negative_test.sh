#!/bin/sh
# Proves the thread-safety annotations in src/common/sync.h actually bite:
#   1. good_locked_access.cc compiles clean under -Werror=thread-safety;
#   2. bad_unlocked_access.cc (guarded write, no lock) FAILS to compile.
# Requires clang (TSA is a clang extension; the macros are no-ops on GCC).
# When no clang++ is available the test SKIPS (exit 77, wired to ctest's
# SKIP_RETURN_CODE) — the static-analysis CI job always has clang.
#
# Usage: run_tsa_negative_test.sh <repo-root>
set -u

repo_root="${1:?usage: run_tsa_negative_test.sh <repo-root>}"
here="${repo_root}/tests/tsa_negative"
cxx="${CLANG_CXX:-clang++}"

if ! command -v "${cxx}" >/dev/null 2>&1; then
  echo "SKIP: ${cxx} not found (thread-safety analysis needs clang)"
  exit 77
fi

flags="-std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety"

if ! "${cxx}" ${flags} -I"${repo_root}/src" \
    "${here}/good_locked_access.cc"; then
  echo "FAIL: good_locked_access.cc should compile clean under" \
       "-Werror=thread-safety (annotation setup broken?)"
  exit 1
fi

if "${cxx}" ${flags} -I"${repo_root}/src" \
    "${here}/bad_unlocked_access.cc" 2>/dev/null; then
  echo "FAIL: bad_unlocked_access.cc compiled, but its unlocked guarded" \
       "write must be rejected by thread-safety analysis"
  exit 1
fi

echo "OK: annotations accept locked access and reject unlocked access"
exit 0
