// Positive-compilation fixture: the same guarded write done correctly.
// Must compile CLEAN under `clang++ -Werror=thread-safety` — this guards
// the harness against a broken macro setup where every file fails and the
// negative test "passes" vacuously.
#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    vdrift::MutexLock lock(&mutex_);
    ++value_;
  }

 private:
  vdrift::Mutex mutex_;
  int value_ VDRIFT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
