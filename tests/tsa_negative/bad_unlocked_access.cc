// Negative-compilation fixture: writes a guarded field WITHOUT holding its
// mutex. Under `clang++ -Werror=thread-safety` this file MUST fail to
// compile; run_tsa_negative_test.sh asserts exactly that. Never built by
// the normal CMake targets.
#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BAD: no lock held; TSA must reject this line.
  }

 private:
  vdrift::Mutex mutex_;
  int value_ VDRIFT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
