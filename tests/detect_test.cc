// Tests for the detection substrate: label extraction, the image
// classifier (training, prediction, accuracy, drift-induced degradation),
// the annotation oracle, and the drift-oblivious detector.

#include <vector>

#include <gtest/gtest.h>

#include "detect/annotator.h"
#include "detect/detector.h"
#include "detect/image_classifier.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace vdrift::detect {
namespace {

using stats::Rng;

video::ObjectTruth Obj(video::ObjectClass cls, float cx) {
  video::ObjectTruth o;
  o.cls = cls;
  o.cx = cx;
  o.cy = 0.5f;
  o.w = 0.1f;
  o.h = 0.05f;
  return o;
}

TEST(LabelTest, CountLabelBinsAndClamps) {
  video::FrameTruth truth;
  for (int i = 0; i < 15; ++i) {
    truth.objects.push_back(Obj(video::ObjectClass::kCar, 0.5f));
  }
  EXPECT_EQ(CountLabel(truth, 10), 15 / kCountBinWidth);
  truth.objects.resize(4);
  EXPECT_EQ(CountLabel(truth, 10), 4 / kCountBinWidth);
  truth.objects.clear();
  EXPECT_EQ(CountLabel(truth, 10), 0);
  // Far beyond the top bucket: clamped into the last class.
  for (int i = 0; i < 60; ++i) {
    truth.objects.push_back(Obj(video::ObjectClass::kCar, 0.5f));
  }
  EXPECT_EQ(CountLabel(truth, 10), 9);
}

TEST(LabelTest, PredicateLabel) {
  video::FrameTruth truth;
  truth.objects = {Obj(video::ObjectClass::kBus, 0.2f),
                   Obj(video::ObjectClass::kCar, 0.8f)};
  EXPECT_EQ(PredicateLabel(truth), 1);
  truth.objects = {Obj(video::ObjectClass::kCar, 0.2f)};
  EXPECT_EQ(PredicateLabel(truth), 0);
}

ClassifierConfig SmallClassifier(int classes = 6) {
  ClassifierConfig config;
  config.image_size = 32;
  config.num_classes = classes;
  config.base_filters = 6;
  return config;
}

TEST(ImageClassifierTest, RejectsBadTrainingInput) {
  Rng rng(1);
  ImageClassifier clf(SmallClassifier(), &rng);
  ClassifierTrainConfig tc;
  EXPECT_FALSE(clf.Train({}, {}, tc, &rng).ok());
  tensor::Tensor frame(tensor::Shape{1, 32, 32}, 0.5f);
  EXPECT_FALSE(clf.Train({frame}, {0, 1}, tc, &rng).ok());
  EXPECT_FALSE(clf.Train({frame}, {99}, tc, &rng).ok());
  EXPECT_FALSE(clf.Train({frame}, {-1}, tc, &rng).ok());
}

TEST(ImageClassifierTest, ProbabilitiesSumToOne) {
  Rng rng(2);
  ImageClassifier clf(SmallClassifier(), &rng);
  tensor::Tensor frame(tensor::Shape{1, 32, 32}, 0.5f);
  std::vector<float> p = clf.PredictProba(frame);
  ASSERT_EQ(p.size(), 6u);
  double sum = 0.0;
  for (float v : p) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

// End-to-end on real rendered frames: a classifier trained on Day frames
// must learn the (coarse) count signal on Day and lose accuracy on Night —
// the covariate-shift failure mode that motivates the whole paper.
TEST(ImageClassifierTest, LearnsOnDistributionDegradesOffDistribution) {
  Rng rng(3);
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.01);
  const int kClasses = 8;
  auto make_data = [&](const std::string& seq, int n, uint64_t seed,
                       std::vector<tensor::Tensor>* frames,
                       std::vector<int>* labels) {
    std::vector<video::Frame> raw =
        video::GenerateFrames(ds.SpecOf(seq), n, 32, seed);
    for (const video::Frame& f : raw) {
      frames->push_back(f.pixels);
      labels->push_back(CountLabel(f.truth, kClasses));
    }
  };
  std::vector<tensor::Tensor> train_frames;
  std::vector<int> train_labels;
  make_data("Day", 300, 10, &train_frames, &train_labels);
  ImageClassifier clf(SmallClassifier(kClasses), &rng);
  ClassifierTrainConfig tc;
  tc.epochs = 10;
  std::vector<double> losses =
      clf.Train(train_frames, train_labels, tc, &rng).ValueOrDie();
  EXPECT_LT(losses.back(), losses.front());

  std::vector<tensor::Tensor> day_frames;
  std::vector<int> day_labels;
  make_data("Day", 150, 11, &day_frames, &day_labels);
  double day_acc = clf.Accuracy(day_frames, day_labels);

  std::vector<tensor::Tensor> night_frames;
  std::vector<int> night_labels;
  make_data("Night", 150, 12, &night_frames, &night_labels);
  double night_acc = clf.Accuracy(night_frames, night_labels);

  // Counting cars in 32x32 synthetic frames is hard; what matters is the
  // model does far better than chance on-distribution and degrades
  // markedly off-distribution.
  EXPECT_GT(day_acc, 0.3) << "day accuracy too low to be meaningful";
  EXPECT_GT(day_acc, night_acc + 0.1)
      << "no covariate-shift degradation: day=" << day_acc
      << " night=" << night_acc;
}

TEST(OracleAnnotatorTest, ReturnsExactTruth) {
  OracleAnnotator oracle(0);
  video::SceneSpec spec;
  std::vector<video::Frame> frames = video::GenerateFrames(spec, 5, 32, 7);
  for (const video::Frame& f : frames) {
    video::FrameTruth truth = oracle.Annotate(f);
    EXPECT_EQ(truth.objects.size(), f.truth.objects.size());
    EXPECT_EQ(truth.CarCount(), f.truth.CarCount());
  }
}

TEST(OracleAnnotatorTest, WorkloadDoesNotChangeLabels) {
  OracleAnnotator heavy(64);
  EXPECT_EQ(heavy.work_dim(), 64);
  video::SceneSpec spec;
  std::vector<video::Frame> frames = video::GenerateFrames(spec, 3, 32, 8);
  for (const video::Frame& f : frames) {
    EXPECT_EQ(heavy.Annotate(f).CarCount(), f.truth.CarCount());
  }
}

TEST(SimulatedDetectorTest, TrainsAndPredictsBothHeads) {
  Rng rng(4);
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.01);
  std::vector<video::Frame> frames =
      video::GenerateFrames(ds.SpecOf("Day"), 200, 32, 9);
  SimulatedDetector::Config config;
  config.base_filters = 8;  // keep the test fast
  SimulatedDetector detector(config, &rng);
  ClassifierTrainConfig tc;
  tc.epochs = 6;
  ASSERT_TRUE(detector.Train(frames, tc, &rng).ok());
  int correct_count = 0;
  int correct_pred = 0;
  std::vector<video::Frame> test =
      video::GenerateFrames(ds.SpecOf("Day"), 100, 32, 10);
  for (const video::Frame& f : test) {
    if (detector.PredictCount(f.pixels) ==
        CountLabel(f.truth, config.count_classes)) {
      ++correct_count;
    }
    if (detector.PredictPredicate(f.pixels) == f.truth.BusLeftOfCar()) {
      ++correct_pred;
    }
  }
  EXPECT_GT(correct_count, 25) << "count head at or below chance";
  EXPECT_GT(correct_pred, 55) << "predicate head at or below chance";
}

TEST(SimulatedDetectorTest, RejectsEmptyTraining) {
  Rng rng(5);
  SimulatedDetector detector(SimulatedDetector::Config{}, &rng);
  EXPECT_FALSE(detector.Train({}, ClassifierTrainConfig{}, &rng).ok());
}

}  // namespace
}  // namespace vdrift::detect
