// Tests for the bench harness utilities: the table printer, experiment
// helpers, and the workbench model cache (train -> save -> load must give
// bit-identical model behaviour).

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "benchutil/experiments.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "video/stream.h"

namespace vdrift::benchutil {
namespace {

TEST(TableTest, FormatsAlignedColumns) {
  Table table({"Name", "Value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, ShortRowsPadded) {
  Table table({"A", "B", "C"});
  table.AddRow({"x"});
  std::string out = table.ToString();
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(FmtTest, Precision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
  EXPECT_EQ(Fmt(-0.5, 1), "-0.5");
}

TEST(MakeDatasetTest, KnownNames) {
  EXPECT_EQ(MakeDataset("BDD", 0.01).segments.size(), 4u);
  EXPECT_EQ(MakeDataset("Detrac", 0.01).segments.size(), 5u);
  EXPECT_EQ(MakeDataset("Tokyo", 0.01).segments.size(), 3u);
}

TEST(WorkbenchTest, CacheRoundTripPreservesModels) {
  // Tiny configuration so the test trains in seconds.
  WorkbenchOptions options;
  options.dataset_scale = 0.002;
  options.train_frames = 60;
  options.calibration_sample = 8;
  options.provision = pipeline::DefaultProvisionOptions();
  options.provision.profile.trainer.epochs = 3;
  options.provision.profile.sigma_size = 40;
  options.provision.classifier_train.epochs = 2;
  options.provision.ensemble_size = 2;
  std::string cache =
      (std::filesystem::temp_directory_path() / "vdrift_test_cache")
          .string();
  std::filesystem::remove_all(cache);
  options.cache_dir = cache;

  auto first = BuildWorkbench("Tokyo", options).ValueOrDie();
  EXPECT_FALSE(first->loaded_from_cache);
  auto second = BuildWorkbench("Tokyo", options).ValueOrDie();
  EXPECT_TRUE(second->loaded_from_cache);

  ASSERT_EQ(first->registry.size(), second->registry.size());
  // Identical model behaviour on fresh frames.
  std::vector<video::Frame> probe = video::GenerateFrames(
      first->dataset.segments[0].spec, 5, first->dataset.image_size, 777);
  for (int m = 0; m < first->registry.size(); ++m) {
    for (const video::Frame& f : probe) {
      EXPECT_EQ(first->registry.at(m).count_model->Predict(f.pixels),
                second->registry.at(m).count_model->Predict(f.pixels));
      std::vector<float> za = first->registry.at(m).profile->Encode(f.pixels);
      std::vector<float> zb =
          second->registry.at(m).profile->Encode(f.pixels);
      ASSERT_EQ(za.size(), zb.size());
      for (size_t i = 0; i < za.size(); ++i) {
        EXPECT_NEAR(za[i], zb[i], 1e-5f);
      }
    }
    // Same reference sample.
    EXPECT_EQ(first->registry.at(m).profile->sigma().size(),
              second->registry.at(m).profile->sigma().size());
  }
  // Calibration recomputed identically.
  ASSERT_EQ(first->calibration.pc_avg.size(),
            second->calibration.pc_avg.size());
  for (size_t i = 0; i < first->calibration.pc_avg.size(); ++i) {
    EXPECT_NEAR(first->calibration.pc_avg[i], second->calibration.pc_avg[i],
                1e-9);
  }
  EXPECT_NEAR(first->calibration.global_h, second->calibration.global_h,
              1e-9);
  std::filesystem::remove_all(cache);
}

TEST(WorkbenchTest, CorruptCacheFallsBackToTraining) {
  WorkbenchOptions options;
  options.dataset_scale = 0.002;
  options.train_frames = 40;
  options.provision = pipeline::DefaultProvisionOptions();
  options.provision.profile.trainer.epochs = 2;
  options.provision.profile.sigma_size = 30;
  options.provision.classifier_train.epochs = 1;
  options.provision.ensemble_size = 1;
  std::string cache =
      (std::filesystem::temp_directory_path() / "vdrift_bad_cache").string();
  std::filesystem::remove_all(cache);
  std::filesystem::create_directories(cache);
  options.cache_dir = cache;
  // Populate the cache once so a file with the right name exists.
  auto bench_once = BuildWorkbench("Tokyo", options);
  ASSERT_TRUE(bench_once.ok());
  // Overwrite every cache file with garbage.
  for (const auto& entry : std::filesystem::directory_iterator(cache)) {
    std::FILE* f = std::fopen(entry.path().c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  auto bench = BuildWorkbench("Tokyo", options);
  ASSERT_TRUE(bench.ok());
  EXPECT_FALSE(bench.value()->loaded_from_cache);
  EXPECT_EQ(bench.value()->registry.size(), 3);
  std::filesystem::remove_all(cache);
}

TEST(ExperimentsTest, LatencyHelpersAgreeWithGroundTruth) {
  // Build a tiny profile and verify the helper detects an obvious drift
  // and stays silent on matching frames.
  WorkbenchOptions options;
  options.dataset_scale = 0.002;
  options.train_frames = 120;
  options.cache_dir = "";
  options.provision = pipeline::DefaultProvisionOptions();
  options.provision.profile.trainer.epochs = 10;
  options.provision.classifier_train.epochs = 1;
  options.provision.ensemble_size = 1;
  auto bench = BuildWorkbench("BDD", options).ValueOrDie();
  const conformal::DistributionProfile& day = *bench->registry.at(0).profile;
  std::vector<video::Frame> night = video::GenerateFrames(
      bench->dataset.segments[1].spec, 200, bench->dataset.image_size, 42);
  conformal::DriftInspectorConfig config;
  LatencyResult latency = MeasureDiLatency(day, night, config, 1);
  EXPECT_GT(latency.frames_to_detect, 0);
  EXPECT_LE(latency.frames_to_detect, 60);
  std::vector<video::Frame> more_day = video::GenerateFrames(
      bench->dataset.segments[0].spec, 400, bench->dataset.image_size, 43);
  EXPECT_LE(CountFalseAlarms(day, more_day, config, 2), 1);
}

}  // namespace
}  // namespace vdrift::benchutil
