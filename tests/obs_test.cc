// Tests for the observability subsystem: metrics instruments, the
// registry, timers/spans, the drift-episode recorder, and the JSON
// export/parse round trip.

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/episode_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timer.h"

namespace vdrift::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, TracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  h.Record(0.5);
  h.Record(2.0);
  h.Record(0.125);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 2.625);
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.min, 0.125);
  EXPECT_DOUBLE_EQ(snap.max, 2.0);
  EXPECT_NEAR(snap.Mean(), 2.625 / 3.0, 1e-12);
}

TEST(HistogramTest, EmptySnapshotQuantileIsZero) {
  Histogram h;
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, LinearQuantilesOnUniformDistribution) {
  HistogramOptions options;
  options.scale = HistogramOptions::Scale::kLinear;
  options.min_value = 0.0;
  options.max_value = 1000.0;
  options.bucket_count = 1000;
  Histogram h(options);
  // 1..1000: exact quantiles are known; bucket resolution is 1.
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_NEAR(snap.Quantile(0.5), 500.0, 2.0);
  EXPECT_NEAR(snap.Quantile(0.9), 900.0, 2.0);
  EXPECT_NEAR(snap.Quantile(0.99), 990.0, 2.0);
  // Extremes are exact (tracked min/max).
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, LogQuantilesWithinRelativeError) {
  // Log-scale buckets guarantee constant *relative* error. 128 buckets
  // over [1e-7, 1e3) is 10 decades -> ~1.2x per bucket.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(1e-4 * static_cast<double>(i));
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_NEAR(snap.Quantile(0.5), 0.05, 0.05 * 0.25);
  EXPECT_NEAR(snap.Quantile(0.99), 0.099, 0.099 * 0.25);
}

TEST(HistogramTest, OutOfRangeValuesClampIntoEdgeBuckets) {
  HistogramOptions options;
  options.min_value = 1.0;
  options.max_value = 10.0;
  options.bucket_count = 8;
  Histogram h(options);
  h.Record(0.001);   // below range
  h.Record(5000.0);  // above range
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2);
  // Exact extremes survive clamping via tracked min/max.
  EXPECT_DOUBLE_EQ(snap.min, 0.001);
  EXPECT_DOUBLE_EQ(snap.max, 5000.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 5000.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x");
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1);
  EXPECT_EQ(&reg.GetGauge("g"), &reg.GetGauge("g"));
  EXPECT_EQ(&reg.GetHistogram("h"), &reg.GetHistogram("h"));
}

TEST(MetricsRegistryTest, ExportsSortedSnapshots) {
  MetricsRegistry reg;
  reg.GetCounter("b").Increment(2);
  reg.GetCounter("a").Increment(1);
  reg.GetGauge("g").Set(0.5);
  reg.GetHistogram("h").Record(1.0);
  auto counters = reg.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters["a"], 1);
  EXPECT_EQ(counters["b"], 2);
  EXPECT_EQ(reg.Gauges()["g"], 0.5);
  EXPECT_EQ(reg.Histograms()["h"].count, 1);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.GetCounter("shared.counter").Increment();
        reg.GetHistogram("shared.hist").Record(0.001);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared.counter").value(), kThreads * kPerThread);
  EXPECT_EQ(reg.GetHistogram("shared.hist").count(), kThreads * kPerThread);
}

TEST(ScopedTimerTest, RecordsPositiveElapsedOnce) {
  Histogram h;
  {
    ScopedTimer timer(&h);
    double first = timer.Stop();
    EXPECT_GE(first, 0.0);
    EXPECT_EQ(timer.Stop(), first);  // idempotent
  }
  EXPECT_EQ(h.count(), 1);  // destructor did not double-record
}

TEST(TraceSpanTest, NestingTracksDepthAndParent) {
  MetricsRegistry reg;
  EXPECT_EQ(TraceSpan::Current(), nullptr);
  {
    TraceSpan outer(&reg, "outer");
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(outer.parent(), nullptr);
    EXPECT_EQ(TraceSpan::Current(), &outer);
    {
      TraceSpan inner(&reg, "inner");
      EXPECT_EQ(inner.depth(), 1);
      EXPECT_EQ(inner.parent(), &outer);
      EXPECT_EQ(TraceSpan::Current(), &inner);
    }
    EXPECT_EQ(TraceSpan::Current(), &outer);
  }
  EXPECT_EQ(TraceSpan::Current(), nullptr);
  EXPECT_EQ(reg.GetHistogram("outer").count(), 1);
  EXPECT_EQ(reg.GetHistogram("inner").count(), 1);
}

EpisodeFrame MakeFrame(int64_t index, bool drift = false) {
  EpisodeFrame f;
  f.frame_index = index;
  f.martingale = static_cast<double>(index) * 0.5;
  f.p_value = 0.25;
  f.bet = 0.1;
  f.window_delta = 0.05;
  f.drift = drift;
  return f;
}

TEST(EpisodeRecorderTest, RingWrapsAroundAtCapacity) {
  EpisodeRecorderOptions options;
  options.ring_capacity = 8;
  EpisodeRecorder recorder(options);
  for (int64_t i = 0; i < 20; ++i) recorder.RecordFrame(MakeFrame(i));
  EXPECT_EQ(recorder.frames_recorded(), 20);
  std::vector<EpisodeFrame> ring = recorder.RingContents();
  ASSERT_EQ(ring.size(), 8u);
  // Oldest-first: frames 12..19 survive.
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].frame_index, 12 + static_cast<int64_t>(i));
  }
}

TEST(EpisodeRecorderTest, DriftFrameSnapshotsEpisodeWithContext) {
  EpisodeRecorderOptions options;
  options.ring_capacity = 16;
  EpisodeRecorder recorder(options);
  for (int64_t i = 0; i < 5; ++i) recorder.RecordFrame(MakeFrame(i));
  recorder.RecordFrame(MakeFrame(5, /*drift=*/true));
  std::vector<Episode> episodes = recorder.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].detect_frame, 5);
  ASSERT_EQ(episodes[0].frames.size(), 6u);
  EXPECT_EQ(episodes[0].frames.front().frame_index, 0);
  EXPECT_TRUE(episodes[0].frames.back().drift);
  EXPECT_TRUE(episodes[0].decision.empty());
  recorder.AnnotateDecision("switch:night");
  EXPECT_EQ(recorder.episodes()[0].decision, "switch:night");
}

TEST(EpisodeRecorderTest, MaxEpisodesDropsOldest) {
  EpisodeRecorderOptions options;
  options.ring_capacity = 4;
  options.max_episodes = 2;
  EpisodeRecorder recorder(options);
  for (int64_t i = 0; i < 3; ++i) {
    recorder.RecordFrame(MakeFrame(10 * i + 9, /*drift=*/true));
  }
  std::vector<Episode> episodes = recorder.episodes();
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].detect_frame, 19);
  EXPECT_EQ(episodes[1].detect_frame, 29);
}

TEST(EpisodeRecorderTest, JsonlHasOneParsableLinePerFrame) {
  EpisodeRecorder recorder;
  recorder.RecordFrame(MakeFrame(0));
  recorder.RecordFrame(MakeFrame(1, /*drift=*/true));
  recorder.AnnotateDecision("rearm");
  std::string jsonl = recorder.ToJsonl();
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    if (end > start) lines.push_back(jsonl.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const json::Value& v = parsed.value();
    EXPECT_TRUE(v.is_object());
    EXPECT_TRUE(v.Has("martingale"));
    EXPECT_TRUE(v.Has("p"));
    EXPECT_TRUE(v.Has("bet"));
    EXPECT_EQ(v.Find("decision")->string_value, "rearm");
    EXPECT_EQ(v.Find("detect_frame")->number_value, 1.0);
  }
}

TEST(JsonTest, EscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(json::Escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(JsonTest, FormatDoubleSanitisesNonFinite) {
  EXPECT_EQ(json::FormatDouble(std::nan("")), "0");
  EXPECT_EQ(json::FormatDouble(1e308 * 10), "0");
  EXPECT_EQ(json::FormatDouble(0.5), "0.5");
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("{}extra").ok());
  EXPECT_FALSE(json::Parse("").ok());
}

TEST(JsonTest, RegistryExportRoundTrips) {
  MetricsRegistry reg;
  reg.GetCounter("vdrift.test.frames").Increment(7);
  reg.GetGauge("vdrift.test.loss").Set(0.125);
  Histogram& h = reg.GetHistogram("vdrift.test.latency");
  for (int i = 1; i <= 100; ++i) h.Record(0.001 * static_cast<double>(i));
  auto parsed = json::Parse(reg.ToJson());
  ASSERT_TRUE(parsed.ok());
  const json::Value& v = parsed.value();
  EXPECT_EQ(v.Find("counters")->Find("vdrift.test.frames")->number_value,
            7.0);
  EXPECT_EQ(v.Find("gauges")->Find("vdrift.test.loss")->number_value, 0.125);
  const json::Value* hist =
      v.Find("histograms")->Find("vdrift.test.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number_value, 100.0);
  EXPECT_NEAR(hist->Find("p50")->number_value, 0.05, 0.015);
  EXPECT_TRUE(hist->Has("p99"));
  EXPECT_NEAR(hist->Find("sum")->number_value, 5.05, 1e-9);
}

TEST(ReportTest, MetricsReportEmbedsEpisodes) {
  MetricsRegistry reg;
  reg.GetCounter("c").Increment();
  EpisodeRecorder recorder;
  recorder.RecordFrame(MakeFrame(3, /*drift=*/true));
  recorder.AnnotateDecision("model-2");
  auto parsed = json::Parse(MetricsReportJson(reg, &recorder));
  ASSERT_TRUE(parsed.ok());
  const json::Value& v = parsed.value();
  const json::Value* episodes = v.Find("episodes");
  ASSERT_NE(episodes, nullptr);
  ASSERT_TRUE(episodes->is_array());
  ASSERT_EQ(episodes->array_value.size(), 1u);
  const json::Value& episode = episodes->array_value[0];
  EXPECT_EQ(episode.Find("detect_frame")->number_value, 3.0);
  EXPECT_EQ(episode.Find("decision")->string_value, "model-2");
  EXPECT_EQ(episode.Find("frames")->array_value.size(), 1u);

  // Without a recorder the key still exists (empty array).
  auto bare = json::Parse(MetricsReportJson(reg, nullptr));
  ASSERT_TRUE(bare.ok());
  const json::Value* none = bare.value().Find("episodes");
  ASSERT_NE(none, nullptr);
  EXPECT_TRUE(none->is_array());
  EXPECT_TRUE(none->array_value.empty());
}

}  // namespace
}  // namespace vdrift::obs
