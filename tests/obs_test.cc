// Tests for the observability subsystem: metrics instruments, the
// registry (including labeled series and Reset), timers/spans, the
// drift-episode recorder, the windowed sampler, the SLO watchdog, the
// OpenMetrics exposition, and the JSON export/parse round trip.

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/episode_trace.h"
#include "obs/json.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/timer.h"
#include "obs/watchdog.h"

namespace vdrift::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, TracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  h.Record(0.5);
  h.Record(2.0);
  h.Record(0.125);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 2.625);
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.min, 0.125);
  EXPECT_DOUBLE_EQ(snap.max, 2.0);
  EXPECT_NEAR(snap.Mean(), 2.625 / 3.0, 1e-12);
}

TEST(HistogramTest, EmptySnapshotQuantileIsZero) {
  Histogram h;
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, LinearQuantilesOnUniformDistribution) {
  HistogramOptions options;
  options.scale = HistogramOptions::Scale::kLinear;
  options.min_value = 0.0;
  options.max_value = 1000.0;
  options.bucket_count = 1000;
  Histogram h(options);
  // 1..1000: exact quantiles are known; bucket resolution is 1.
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_NEAR(snap.Quantile(0.5), 500.0, 2.0);
  EXPECT_NEAR(snap.Quantile(0.9), 900.0, 2.0);
  EXPECT_NEAR(snap.Quantile(0.99), 990.0, 2.0);
  // Extremes are exact (tracked min/max).
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, LogQuantilesWithinRelativeError) {
  // Log-scale buckets guarantee constant *relative* error. 128 buckets
  // over [1e-7, 1e3) is 10 decades -> ~1.2x per bucket.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(1e-4 * static_cast<double>(i));
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_NEAR(snap.Quantile(0.5), 0.05, 0.05 * 0.25);
  EXPECT_NEAR(snap.Quantile(0.99), 0.099, 0.099 * 0.25);
}

TEST(HistogramTest, OutOfRangeValuesClampIntoEdgeBuckets) {
  HistogramOptions options;
  options.min_value = 1.0;
  options.max_value = 10.0;
  options.bucket_count = 8;
  Histogram h(options);
  h.Record(0.001);   // below range
  h.Record(5000.0);  // above range
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2);
  // Exact extremes survive clamping via tracked min/max.
  EXPECT_DOUBLE_EQ(snap.min, 0.001);
  EXPECT_DOUBLE_EQ(snap.max, 5000.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 5000.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x");
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1);
  EXPECT_EQ(&reg.GetGauge("g"), &reg.GetGauge("g"));
  EXPECT_EQ(&reg.GetHistogram("h"), &reg.GetHistogram("h"));
}

TEST(MetricsRegistryTest, ExportsSortedSnapshots) {
  MetricsRegistry reg;
  reg.GetCounter("b").Increment(2);
  reg.GetCounter("a").Increment(1);
  reg.GetGauge("g").Set(0.5);
  reg.GetHistogram("h").Record(1.0);
  auto counters = reg.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters["a"], 1);
  EXPECT_EQ(counters["b"], 2);
  EXPECT_EQ(reg.Gauges()["g"], 0.5);
  EXPECT_EQ(reg.Histograms()["h"].count, 1);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.GetCounter("shared.counter").Increment();
        reg.GetHistogram("shared.hist").Record(0.001);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared.counter").value(), kThreads * kPerThread);
  EXPECT_EQ(reg.GetHistogram("shared.hist").count(), kThreads * kPerThread);
}

TEST(ScopedTimerTest, RecordsPositiveElapsedOnce) {
  Histogram h;
  {
    ScopedTimer timer(&h);
    double first = timer.Stop();
    EXPECT_GE(first, 0.0);
    EXPECT_EQ(timer.Stop(), first);  // idempotent
  }
  EXPECT_EQ(h.count(), 1);  // destructor did not double-record
}

TEST(TraceSpanTest, NestingTracksDepthAndParent) {
  MetricsRegistry reg;
  EXPECT_EQ(TraceSpan::Current(), nullptr);
  {
    TraceSpan outer(&reg, "outer");
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(outer.parent(), nullptr);
    EXPECT_EQ(TraceSpan::Current(), &outer);
    {
      TraceSpan inner(&reg, "inner");
      EXPECT_EQ(inner.depth(), 1);
      EXPECT_EQ(inner.parent(), &outer);
      EXPECT_EQ(TraceSpan::Current(), &inner);
    }
    EXPECT_EQ(TraceSpan::Current(), &outer);
  }
  EXPECT_EQ(TraceSpan::Current(), nullptr);
  EXPECT_EQ(reg.GetHistogram("outer").count(), 1);
  EXPECT_EQ(reg.GetHistogram("inner").count(), 1);
}

EpisodeFrame MakeFrame(int64_t index, bool drift = false) {
  EpisodeFrame f;
  f.frame_index = index;
  f.martingale = static_cast<double>(index) * 0.5;
  f.p_value = 0.25;
  f.bet = 0.1;
  f.window_delta = 0.05;
  f.drift = drift;
  return f;
}

TEST(EpisodeRecorderTest, RingWrapsAroundAtCapacity) {
  EpisodeRecorderOptions options;
  options.ring_capacity = 8;
  EpisodeRecorder recorder(options);
  for (int64_t i = 0; i < 20; ++i) recorder.RecordFrame(MakeFrame(i));
  EXPECT_EQ(recorder.frames_recorded(), 20);
  std::vector<EpisodeFrame> ring = recorder.RingContents();
  ASSERT_EQ(ring.size(), 8u);
  // Oldest-first: frames 12..19 survive.
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].frame_index, 12 + static_cast<int64_t>(i));
  }
}

TEST(EpisodeRecorderTest, DriftFrameSnapshotsEpisodeWithContext) {
  EpisodeRecorderOptions options;
  options.ring_capacity = 16;
  EpisodeRecorder recorder(options);
  for (int64_t i = 0; i < 5; ++i) recorder.RecordFrame(MakeFrame(i));
  recorder.RecordFrame(MakeFrame(5, /*drift=*/true));
  std::vector<Episode> episodes = recorder.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_EQ(episodes[0].detect_frame, 5);
  ASSERT_EQ(episodes[0].frames.size(), 6u);
  EXPECT_EQ(episodes[0].frames.front().frame_index, 0);
  EXPECT_TRUE(episodes[0].frames.back().drift);
  EXPECT_TRUE(episodes[0].decision.empty());
  recorder.AnnotateDecision("switch:night");
  EXPECT_EQ(recorder.episodes()[0].decision, "switch:night");
}

TEST(EpisodeRecorderTest, MaxEpisodesDropsOldest) {
  EpisodeRecorderOptions options;
  options.ring_capacity = 4;
  options.max_episodes = 2;
  EpisodeRecorder recorder(options);
  for (int64_t i = 0; i < 3; ++i) {
    recorder.RecordFrame(MakeFrame(10 * i + 9, /*drift=*/true));
  }
  std::vector<Episode> episodes = recorder.episodes();
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].detect_frame, 19);
  EXPECT_EQ(episodes[1].detect_frame, 29);
}

TEST(EpisodeRecorderTest, JsonlHasOneParsableLinePerFrame) {
  EpisodeRecorder recorder;
  recorder.RecordFrame(MakeFrame(0));
  recorder.RecordFrame(MakeFrame(1, /*drift=*/true));
  recorder.AnnotateDecision("rearm");
  std::string jsonl = recorder.ToJsonl();
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    if (end > start) lines.push_back(jsonl.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const json::Value& v = parsed.value();
    EXPECT_TRUE(v.is_object());
    EXPECT_TRUE(v.Has("martingale"));
    EXPECT_TRUE(v.Has("p"));
    EXPECT_TRUE(v.Has("bet"));
    EXPECT_EQ(v.Find("decision")->string_value, "rearm");
    EXPECT_EQ(v.Find("detect_frame")->number_value, 1.0);
  }
}

TEST(LabelsTest, FormatSortsKeysAndEscapesValues) {
  EXPECT_EQ(FormatMetricKey("m", {}), "m");
  EXPECT_EQ(FormatMetricKey("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=\"1\",b=\"2\"}");
  // Identical series regardless of caller's label order.
  EXPECT_EQ(FormatMetricKey("m", {{"a", "1"}, {"b", "2"}}),
            FormatMetricKey("m", {{"b", "2"}, {"a", "1"}}));
  EXPECT_EQ(FormatMetricKey("m", {{"k", "a\\b\"c\nd"}}),
            "m{k=\"a\\\\b\\\"c\\nd\"}");
}

TEST(LabelsTest, ParseRoundTripsFormattedKeys) {
  LabelSet labels = {{"dataset", "Tokyo"}, {"stream", "cam\"12\\x\n"}};
  std::string key = FormatMetricKey("vdrift.di.detections", labels);
  auto parsed = ParseMetricKey(key);
  ASSERT_TRUE(parsed.ok()) << key;
  EXPECT_EQ(parsed.value().name, "vdrift.di.detections");
  ASSERT_EQ(parsed.value().labels.size(), 2u);
  EXPECT_EQ(parsed.value().labels[0], labels[0]);
  EXPECT_EQ(parsed.value().labels[1], labels[1]);

  auto plain = ParseMetricKey("vdrift.pipeline.frames");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().name, "vdrift.pipeline.frames");
  EXPECT_TRUE(plain.value().labels.empty());
}

TEST(LabelsTest, ParseRejectsMalformedKeys) {
  EXPECT_FALSE(ParseMetricKey("m{}").ok());             // empty label block
  EXPECT_FALSE(ParseMetricKey("m{a=\"1\"").ok());       // unterminated
  EXPECT_FALSE(ParseMetricKey("m{a}").ok());            // missing =
  EXPECT_FALSE(ParseMetricKey("m{a=1}").ok());          // unquoted value
  EXPECT_FALSE(ParseMetricKey("m{a=\"\\x\"}").ok());    // bad escape
  EXPECT_FALSE(ParseMetricKey("m{a=\"1\",}").ok());     // trailing comma
  EXPECT_FALSE(ParseMetricKey("m{a=\"1\"}x").ok());     // trailing junk
}

TEST(MetricsRegistryTest, LabeledSeriesAreDistinctInstruments) {
  MetricsRegistry reg;
  Counter& plain = reg.GetCounter("vdrift.di.detections");
  Counter& tokyo =
      reg.GetCounter("vdrift.di.detections", {{"dataset", "Tokyo"}});
  Counter& bdd =
      reg.GetCounter("vdrift.di.detections", {{"dataset", "BDD"}});
  EXPECT_NE(&plain, &tokyo);
  EXPECT_NE(&tokyo, &bdd);
  // Label order does not create a new series.
  Counter& ab = reg.GetCounter("c", {{"a", "1"}, {"b", "2"}});
  Counter& ba = reg.GetCounter("c", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
  tokyo.Increment(3);
  auto counters = reg.Counters();
  EXPECT_EQ(counters["vdrift.di.detections{dataset=\"Tokyo\"}"], 3);
  EXPECT_EQ(counters["vdrift.di.detections{dataset=\"BDD\"}"], 0);
  // Gauges and histograms get the same treatment.
  EXPECT_NE(&reg.GetGauge("g"), &reg.GetGauge("g", {{"s", "x"}}));
  EXPECT_NE(&reg.GetHistogram("h"), &reg.GetHistogram("h", {{"s", "x"}}));
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c");
  Gauge& g = reg.GetGauge("g");
  Histogram& h = reg.GetHistogram("h");
  c.Increment(5);
  g.Set(2.5);
  h.Record(0.5);
  reg.Reset();
  // Same instruments, zeroed state.
  EXPECT_EQ(&reg.GetCounter("c"), &c);
  EXPECT_EQ(&reg.GetGauge("g"), &g);
  EXPECT_EQ(&reg.GetHistogram("h"), &h);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.snapshot().sum, 0.0);
  c.Increment();
  EXPECT_EQ(reg.Counters()["c"], 1);
}

TEST(MetricsRegistryTest, ToJsonOmitsQuantileKeysForEmptyHistograms) {
  MetricsRegistry reg;
  reg.GetHistogram("empty");
  reg.GetHistogram("full").Record(1.0);
  auto parsed = json::Parse(reg.ToJson());
  ASSERT_TRUE(parsed.ok());
  const json::Value* empty =
      parsed.value().Find("histograms")->Find("empty");
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->Find("count")->number_value, 0.0);
  // A 0-count "p99 = 0" would be indistinguishable from a real 0 p99.
  EXPECT_FALSE(empty->Has("p50"));
  EXPECT_FALSE(empty->Has("p99"));
  EXPECT_FALSE(empty->Has("min"));
  const json::Value* full = parsed.value().Find("histograms")->Find("full");
  EXPECT_TRUE(full->Has("p50"));
  EXPECT_TRUE(full->Has("p99"));
}

TEST(SamplerTest, WindowsCarryExactCounterDeltas) {
  MetricsRegistry reg;
  Counter& frames = reg.GetCounter("frames");
  MetricsSampler sampler(&reg);
  frames.Increment(10);
  MetricsWindow w0 = sampler.Sample(10.0);
  EXPECT_EQ(w0.index, 0);
  EXPECT_EQ(w0.start_time, 0.0);
  EXPECT_EQ(w0.end_time, 10.0);
  EXPECT_EQ(w0.counter_deltas["frames"], 10);
  EXPECT_EQ(w0.counter_totals["frames"], 10);
  frames.Increment(7);
  MetricsWindow w1 = sampler.Sample(20.0);
  EXPECT_EQ(w1.index, 1);
  EXPECT_EQ(w1.start_time, 10.0);
  EXPECT_EQ(w1.counter_deltas["frames"], 7);
  EXPECT_EQ(w1.counter_totals["frames"], 17);
  // A counter born mid-run deltas from zero.
  reg.GetCounter("late").Increment(2);
  MetricsWindow w2 = sampler.Sample(30.0);
  EXPECT_EQ(w2.counter_deltas["late"], 2);
  EXPECT_EQ(w2.counter_deltas["frames"], 0);
}

TEST(SamplerTest, HistogramWindowsAreDeltasNotCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("lat");
  MetricsSampler sampler(&reg);
  for (int i = 0; i < 100; ++i) h.Record(0.001);
  sampler.Sample(1.0);
  for (int i = 0; i < 50; ++i) h.Record(0.1);
  MetricsWindow w1 = sampler.Sample(2.0);
  const Histogram::Snapshot& snap = w1.histograms.at("lat");
  EXPECT_EQ(snap.count, 50);                  // only this window's records
  EXPECT_NEAR(snap.sum, 5.0, 1e-9);
  EXPECT_NEAR(snap.Quantile(0.5), 0.1, 0.03);  // window p50, not run p50
  // A histogram untouched during the window is omitted entirely.
  MetricsWindow w2 = sampler.Sample(3.0);
  EXPECT_EQ(w2.histograms.count("lat"), 0u);
}

TEST(SamplerTest, DeltasSumToFinalTotalsAcrossManyWindows) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c");
  MetricsSampler sampler(&reg);
  int64_t expected = 0;
  for (int w = 1; w <= 20; ++w) {
    c.Increment(w);  // varying increments per window
    expected += w;
    sampler.Sample(static_cast<double>(w));
  }
  int64_t delta_sum = 0;
  for (const MetricsWindow& w : sampler.windows()) {
    delta_sum += w.counter_deltas.at("c");
  }
  EXPECT_EQ(delta_sum, expected);
  EXPECT_EQ(sampler.windows().back().counter_totals.at("c"), expected);
}

TEST(SamplerTest, RingIsBoundedButCountIsTotal) {
  MetricsRegistry reg;
  MetricsSampler::Options options;
  options.max_windows = 4;
  MetricsSampler sampler(&reg, options);
  for (int i = 1; i <= 10; ++i) sampler.Sample(static_cast<double>(i));
  EXPECT_EQ(sampler.windows_sampled(), 10);
  std::vector<MetricsWindow> kept = sampler.windows();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().index, 6);  // oldest dropped first
  EXPECT_EQ(kept.back().index, 9);
  EXPECT_EQ(sampler.last_sample_time(), 10.0);
}

TEST(SamplerTest, ToJsonlRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.GetCounter("c").Increment(3);
  reg.GetGauge("g").Set(0.5);
  reg.GetHistogram("h").Record(1.0);
  MetricsSampler sampler(&reg);
  sampler.Sample(1.0);
  reg.GetCounter("c").Increment(4);
  sampler.Sample(2.0);
  std::string jsonl = sampler.ToJsonl();
  int lines = 0;
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    std::string line = jsonl.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++lines;
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const json::Value& v = parsed.value();
    EXPECT_TRUE(v.Has("window"));
    EXPECT_TRUE(v.Has("start"));
    EXPECT_TRUE(v.Has("end"));
    EXPECT_TRUE(v.Has("counters"));
    EXPECT_TRUE(v.Has("gauges"));
    EXPECT_TRUE(v.Has("histograms"));
    const json::Value* c = v.Find("counters")->Find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->Has("delta"));
    EXPECT_TRUE(c->Has("total"));
  }
  EXPECT_EQ(lines, 2);
}

TEST(WatchdogTest, ParsesRuleGrammar) {
  auto rules = ParseSloSpec(
      "drop=vdrift.pipeline.frames_dropped:total/"
      "vdrift.pipeline.frames:total<0.02;"
      "lag=vdrift.pipeline.detect_lag_frames:p99<2000,for=3;"
      "ok=vdrift.pipeline.drift_oblivious==0");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules.value().size(), 3u);
  const SloRule& drop = rules.value()[0];
  EXPECT_EQ(drop.name, "drop");
  EXPECT_EQ(drop.numerator.metric, "vdrift.pipeline.frames_dropped");
  EXPECT_EQ(drop.numerator.agg, "total");
  EXPECT_EQ(drop.denominator.metric, "vdrift.pipeline.frames");
  EXPECT_EQ(drop.op, "<");
  EXPECT_DOUBLE_EQ(drop.threshold, 0.02);
  EXPECT_EQ(drop.for_windows, 1);
  EXPECT_EQ(rules.value()[1].for_windows, 3);
  const SloRule& ok = rules.value()[2];
  EXPECT_TRUE(ok.denominator.metric.empty());
  EXPECT_TRUE(ok.numerator.agg.empty());  // inferred at evaluation
  EXPECT_EQ(ok.op, "==");
}

TEST(WatchdogTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(ParseSloSpec("no_operator=metric").ok());
  EXPECT_FALSE(ParseSloSpec("missing_name<1").ok());
  EXPECT_FALSE(ParseSloSpec("r=m<notanumber").ok());
  EXPECT_FALSE(ParseSloSpec("r=m:badagg<1").ok());
  EXPECT_FALSE(ParseSloSpec("r=m<1,for=0").ok());
  EXPECT_FALSE(ParseSloSpec("r=m<1,for=x").ok());
  EXPECT_FALSE(ParseSloSpec("r=a/b/c<1").ok());
  // The default spec must always parse.
  EXPECT_TRUE(ParseSloSpec(DefaultSloSpec()).ok());
}

MetricsWindow WindowWith(int64_t index, int64_t dropped, int64_t frames) {
  MetricsWindow w;
  w.index = index;
  w.start_time = static_cast<double>(index) * 10.0;
  w.end_time = w.start_time + 10.0;
  w.counter_deltas["dropped"] = dropped;
  w.counter_totals["dropped"] = dropped;
  w.counter_deltas["frames"] = frames;
  w.counter_totals["frames"] = frames;
  return w;
}

TEST(WatchdogTest, FiresOnceOnSustainedBreachAndRearmsAfterRecovery) {
  auto rules = ParseSloSpec("drop=dropped:delta/frames:delta<0.1");
  ASSERT_TRUE(rules.ok());
  HealthWatchdog dog(rules.value());
  EXPECT_TRUE(dog.Evaluate(WindowWith(0, 0, 100)).empty());
  // Breach: fires exactly once even though it persists.
  auto fired = dog.Evaluate(WindowWith(1, 50, 100));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "drop");
  EXPECT_EQ(fired[0].window, 1);
  EXPECT_DOUBLE_EQ(fired[0].value, 0.5);
  EXPECT_DOUBLE_EQ(fired[0].threshold, 0.1);
  EXPECT_TRUE(dog.Evaluate(WindowWith(2, 50, 100)).empty());
  ASSERT_EQ(dog.active_rules().size(), 1u);
  // Recovery clears the alert; the next breach fires again.
  EXPECT_TRUE(dog.Evaluate(WindowWith(3, 0, 100)).empty());
  EXPECT_TRUE(dog.active_rules().empty());
  EXPECT_EQ(dog.Evaluate(WindowWith(4, 90, 100)).size(), 1u);
  EXPECT_EQ(dog.total_alerts(), 2);
}

TEST(WatchdogTest, ForWindowsRequiresConsecutiveBreaches) {
  auto rules = ParseSloSpec("drop=dropped:delta/frames:delta<0.1,for=3");
  ASSERT_TRUE(rules.ok());
  HealthWatchdog dog(rules.value());
  // Two breaches, one recovery: streak resets, nothing fires.
  EXPECT_TRUE(dog.Evaluate(WindowWith(0, 50, 100)).empty());
  EXPECT_TRUE(dog.Evaluate(WindowWith(1, 50, 100)).empty());
  EXPECT_TRUE(dog.Evaluate(WindowWith(2, 0, 100)).empty());
  EXPECT_TRUE(dog.Evaluate(WindowWith(3, 50, 100)).empty());
  EXPECT_TRUE(dog.Evaluate(WindowWith(4, 50, 100)).empty());
  // Third consecutive breach activates.
  auto fired = dog.Evaluate(WindowWith(5, 50, 100));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].window, 5);
  EXPECT_NE(fired[0].message.find("for 3 windows"), std::string::npos);
}

TEST(WatchdogTest, MissingMetricOrZeroDenominatorSkipsWindow) {
  auto rules = ParseSloSpec("drop=dropped:delta/frames:delta<0.1,for=2");
  ASSERT_TRUE(rules.ok());
  HealthWatchdog dog(rules.value());
  EXPECT_TRUE(dog.Evaluate(WindowWith(0, 50, 100)).empty());  // streak 1
  // No frames this window: skipped, streak holds (not reset, not grown).
  EXPECT_TRUE(dog.Evaluate(WindowWith(1, 0, 0)).empty());
  MetricsWindow empty;
  empty.index = 2;
  EXPECT_TRUE(dog.Evaluate(empty).empty());  // metrics absent: skipped
  // Next real breach completes the streak.
  EXPECT_EQ(dog.Evaluate(WindowWith(3, 50, 100)).size(), 1u);
}

TEST(WatchdogTest, InfersAggregationFromInstrumentKind) {
  MetricsRegistry reg;
  reg.GetCounter("c").Increment(5);
  reg.GetGauge("g").Set(3.0);
  Histogram& h = reg.GetHistogram("h");
  for (int i = 0; i < 100; ++i) h.Record(10.0);
  MetricsSampler sampler(&reg);
  MetricsWindow w = sampler.Sample(1.0);
  // counter -> delta, gauge -> value, histogram -> p99 (all breach).
  auto rules = ParseSloSpec("rc=c==0;rg=g<1;rh=h<5");
  ASSERT_TRUE(rules.ok());
  HealthWatchdog dog(rules.value());
  std::vector<AlertEvent> fired = dog.Evaluate(w);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(fired[0].value, 5.0);   // counter delta
  EXPECT_DOUBLE_EQ(fired[1].value, 3.0);   // gauge value
  EXPECT_GT(fired[2].value, 5.0);          // histogram p99 ~ 10
}

TEST(WatchdogTest, AlertJsonIsParsableAndEmbedsIntoReport) {
  auto rules = ParseSloSpec("drop=dropped:delta/frames:delta<0.1");
  ASSERT_TRUE(rules.ok());
  HealthWatchdog dog(rules.value());
  dog.Evaluate(WindowWith(0, 50, 100));
  auto alerts = json::Parse(dog.AlertsJson());
  ASSERT_TRUE(alerts.ok()) << dog.AlertsJson();
  ASSERT_EQ(alerts.value().array_value.size(), 1u);
  const json::Value& a = alerts.value().array_value[0];
  EXPECT_EQ(a.Find("rule")->string_value, "drop");
  EXPECT_EQ(a.Find("window")->number_value, 0.0);
  EXPECT_EQ(a.Find("op")->string_value, "<");
  EXPECT_TRUE(a.Has("message"));

  // The report splices the same array under "alerts".
  MetricsRegistry reg;
  auto report = json::Parse(MetricsReportJson(reg, nullptr, &dog));
  ASSERT_TRUE(report.ok());
  const json::Value* embedded = report.value().Find("alerts");
  ASSERT_NE(embedded, nullptr);
  ASSERT_EQ(embedded->array_value.size(), 1u);
  // Without a watchdog the key still exists (empty array).
  auto bare = json::Parse(MetricsReportJson(reg, nullptr, nullptr));
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare.value().Find("alerts")->array_value.empty());
}

TEST(EpisodeRecorderTest, RecordsBoundedAlertMarks) {
  EpisodeRecorderOptions options;
  options.max_alerts = 2;
  EpisodeRecorder recorder(options);
  recorder.RecordAlert({10, "a", "{}"});
  recorder.RecordAlert({20, "b", "{}"});
  recorder.RecordAlert({30, "c", "{}"});
  std::vector<AlertMark> marks = recorder.alerts();
  ASSERT_EQ(marks.size(), 2u);  // oldest dropped
  EXPECT_EQ(marks[0].rule, "b");
  EXPECT_EQ(marks[1].frame, 30);
}

TEST(OpenMetricsTest, ExposesRegistryInOpenMetricsGrammar) {
  MetricsRegistry reg;
  reg.GetCounter("vdrift.di.detections", {{"dataset", "Tokyo"}})
      .Increment(4);
  reg.GetCounter("vdrift.di.detections", {{"dataset", "BDD"}}).Increment(2);
  reg.GetGauge("vdrift.di.p_value").Set(0.25);
  Histogram& h = reg.GetHistogram("vdrift.di.observe_seconds");
  for (int i = 1; i <= 100; ++i) h.Record(0.001 * static_cast<double>(i));
  std::string text = OpenMetricsText(reg);

  // Terminator, sanitised family names, counter _total suffix.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  EXPECT_NE(text.find("# TYPE vdrift_di_detections counter"),
            std::string::npos);
  EXPECT_NE(
      text.find("vdrift_di_detections_total{dataset=\"Tokyo\"} 4"),
      std::string::npos);
  EXPECT_NE(text.find("vdrift_di_detections_total{dataset=\"BDD\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vdrift_di_p_value gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vdrift_di_observe_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("vdrift_di_observe_seconds_count 100"),
            std::string::npos);

  // Buckets are cumulative and end in +Inf == _count.
  double last = -1.0;
  bool saw_inf = false;
  size_t pos = 0;
  const std::string bucket = "vdrift_di_observe_seconds_bucket{le=\"";
  while ((pos = text.find(bucket, pos)) != std::string::npos) {
    size_t le_start = pos + bucket.size();
    size_t le_end = text.find('"', le_start);
    std::string le = text.substr(le_start, le_end - le_start);
    size_t value_start = text.find(' ', le_end) + 1;
    size_t line_end = text.find('\n', value_start);
    double count =
        std::stod(text.substr(value_start, line_end - value_start));
    EXPECT_GE(count, last) << "buckets must be cumulative";
    last = count;
    if (le == "+Inf") {
      saw_inf = true;
      EXPECT_EQ(count, 100.0);
    }
    pos = line_end;
  }
  EXPECT_TRUE(saw_inf);
}

TEST(OpenMetricsTest, EveryTypeLineIsUniquePerFamily) {
  MetricsRegistry reg;
  reg.GetCounter("m", {{"a", "1"}}).Increment();
  reg.GetCounter("m", {{"a", "2"}}).Increment();
  std::string text = OpenMetricsText(reg);
  // Two series, one family declaration.
  size_t first = text.find("# TYPE m counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE m counter", first + 1), std::string::npos);
}

TEST(JsonTest, EscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(json::Escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(JsonTest, FormatDoubleSanitisesNonFinite) {
  EXPECT_EQ(json::FormatDouble(std::nan("")), "0");
  EXPECT_EQ(json::FormatDouble(1e308 * 10), "0");
  EXPECT_EQ(json::FormatDouble(0.5), "0.5");
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("{}extra").ok());
  EXPECT_FALSE(json::Parse("").ok());
}

TEST(JsonTest, RegistryExportRoundTrips) {
  MetricsRegistry reg;
  reg.GetCounter("vdrift.test.frames").Increment(7);
  reg.GetGauge("vdrift.test.loss").Set(0.125);
  Histogram& h = reg.GetHistogram("vdrift.test.latency");
  for (int i = 1; i <= 100; ++i) h.Record(0.001 * static_cast<double>(i));
  auto parsed = json::Parse(reg.ToJson());
  ASSERT_TRUE(parsed.ok());
  const json::Value& v = parsed.value();
  EXPECT_EQ(v.Find("counters")->Find("vdrift.test.frames")->number_value,
            7.0);
  EXPECT_EQ(v.Find("gauges")->Find("vdrift.test.loss")->number_value, 0.125);
  const json::Value* hist =
      v.Find("histograms")->Find("vdrift.test.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number_value, 100.0);
  EXPECT_NEAR(hist->Find("p50")->number_value, 0.05, 0.015);
  EXPECT_TRUE(hist->Has("p99"));
  EXPECT_NEAR(hist->Find("sum")->number_value, 5.05, 1e-9);
}

TEST(ReportTest, MetricsReportEmbedsEpisodes) {
  MetricsRegistry reg;
  reg.GetCounter("c").Increment();
  EpisodeRecorder recorder;
  recorder.RecordFrame(MakeFrame(3, /*drift=*/true));
  recorder.AnnotateDecision("model-2");
  auto parsed = json::Parse(MetricsReportJson(reg, &recorder));
  ASSERT_TRUE(parsed.ok());
  const json::Value& v = parsed.value();
  const json::Value* episodes = v.Find("episodes");
  ASSERT_NE(episodes, nullptr);
  ASSERT_TRUE(episodes->is_array());
  ASSERT_EQ(episodes->array_value.size(), 1u);
  const json::Value& episode = episodes->array_value[0];
  EXPECT_EQ(episode.Find("detect_frame")->number_value, 3.0);
  EXPECT_EQ(episode.Find("decision")->string_value, "model-2");
  EXPECT_EQ(episode.Find("frames")->array_value.size(), 1u);

  // Without a recorder the key still exists (empty array).
  auto bare = json::Parse(MetricsReportJson(reg, nullptr));
  ASSERT_TRUE(bare.ok());
  const json::Value* none = bare.value().Find("episodes");
  ASSERT_NE(none, nullptr);
  EXPECT_TRUE(none->is_array());
  EXPECT_TRUE(none->array_value.empty());
}

}  // namespace
}  // namespace vdrift::obs
