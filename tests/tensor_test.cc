// Tests for the tensor library: shape handling, elementwise ops, matrix
// products (checked against a naive reference), and im2col/col2im.

#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "stats/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace vdrift::tensor {
namespace {

using stats::Rng;

Tensor RandomTensor(Shape shape, Rng* rng) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->NextGaussian());
  }
  return t;
}

Tensor NaiveMatmul(const Tensor& a, const Tensor& b) {
  int64_t m = a.shape().dim(0);
  int64_t k = a.shape().dim(1);
  int64_t n = b.shape().dim(1);
  Tensor out(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.At2(i, kk) * b.At2(kk, j);
      }
      out.At2(i, j) = acc;
    }
  }
  return out;
}

void ExpectTensorsNear(const Tensor& a, const Tensor& b, float tol) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

TEST(ShapeTest, NumElementsAndToString) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
  EXPECT_EQ(Shape{}.NumElements(), 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 2});
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillAndIndexing) {
  Tensor t(Shape{2, 3});
  t.Fill(1.5f);
  EXPECT_EQ(t.At2(1, 2), 1.5f);
  t.At2(0, 1) = 7.0f;
  EXPECT_EQ(t[1], 7.0f);
}

TEST(TensorTest, At3RowMajorLayout) {
  Tensor t(Shape{2, 3, 4});
  t.At3(1, 2, 3) = 9.0f;
  EXPECT_EQ(t[(1 * 3 + 2) * 4 + 3], 9.0f);
}

TEST(TensorTest, At4RowMajorLayout) {
  Tensor t(Shape{2, 3, 4, 5});
  t.At4(1, 2, 3, 4) = 8.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 8.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(Shape{2, 6});
  for (int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.Reshaped(Shape{3, 4});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  for (int64_t i = 0; i < 12; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
}

TEST(TensorDeathTest, ReshapeSizeMismatchAborts) {
  Tensor t(Shape{2, 2});
  EXPECT_DEATH(t.Reshaped(Shape{3, 2}), "reshape");
}

TEST(TensorDeathTest, DataSizeMismatchAborts) {
  EXPECT_DEATH(Tensor(Shape{2, 2}, std::vector<float>{1.0f}), "data size");
}

TEST(OpsTest, AddSubMul) {
  Tensor a(Shape{3}, std::vector<float>{1.0f, 2.0f, 3.0f});
  Tensor b(Shape{3}, std::vector<float>{4.0f, 5.0f, 6.0f});
  Tensor sum = Add(a, b);
  Tensor diff = Sub(b, a);
  Tensor prod = Mul(a, b);
  EXPECT_EQ(sum[0], 5.0f);
  EXPECT_EQ(sum[2], 9.0f);
  EXPECT_EQ(diff[1], 3.0f);
  EXPECT_EQ(prod[2], 18.0f);
}

TEST(OpsTest, ScaleAndAxpy) {
  Tensor a(Shape{2}, std::vector<float>{1.0f, -2.0f});
  Tensor s = Scale(a, 3.0f);
  EXPECT_EQ(s[0], 3.0f);
  EXPECT_EQ(s[1], -6.0f);
  Tensor b(Shape{2}, std::vector<float>{10.0f, 10.0f});
  AxpyInPlace(&b, a, 2.0f);
  EXPECT_EQ(b[0], 12.0f);
  EXPECT_EQ(b[1], 6.0f);
}

TEST(OpsTest, SumAndMean) {
  Tensor a(Shape{4}, std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(Sum(a), 10.0);
  EXPECT_DOUBLE_EQ(Mean(a), 2.5);
  EXPECT_DOUBLE_EQ(Mean(Tensor()), 0.0);
}

TEST(OpsTest, MatmulKnownValues) {
  Tensor a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = Matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.At2(0, 0), 58.0f);
  EXPECT_EQ(c.At2(0, 1), 64.0f);
  EXPECT_EQ(c.At2(1, 0), 139.0f);
  EXPECT_EQ(c.At2(1, 1), 154.0f);
}

TEST(OpsTest, Transpose2D) {
  Tensor a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.At2(0, 1), 4.0f);
  EXPECT_EQ(t.At2(2, 0), 3.0f);
}

// Property sweep: all matmul variants agree with the naive reference over
// random shapes.
class MatmulProperty : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulProperty, MatchesNaiveReference) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 10007 + k * 101 + n);
  Tensor a = RandomTensor(Shape{m, k}, &rng);
  Tensor b = RandomTensor(Shape{k, n}, &rng);
  Tensor expect = NaiveMatmul(a, b);
  ExpectTensorsNear(Matmul(a, b), expect, 1e-4f);
  ExpectTensorsNear(MatmulTransposedB(a, Transpose2D(b)), expect, 1e-4f);
  ExpectTensorsNear(MatmulTransposedA(Transpose2D(a), b), expect, 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulProperty,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{5, 1, 7}, std::tuple{8, 8, 8},
                      std::tuple{3, 17, 5}, std::tuple{16, 9, 16}));

TEST(Im2ColTest, OutDimFormula) {
  EXPECT_EQ(ConvOutDim(32, 3, 2, 1), 16);
  EXPECT_EQ(ConvOutDim(32, 3, 1, 1), 32);
  EXPECT_EQ(ConvOutDim(5, 3, 1, 0), 3);
}

TEST(Im2ColTest, IdentityKernelReproducesInput) {
  // 1x1 kernel, stride 1, no padding: im2col is the flattened image.
  Rng rng(42);
  Tensor img = RandomTensor(Shape{2, 4, 4}, &rng);
  Tensor cols = Im2Col(img, 1, 1, 1, 0, 4, 4);
  EXPECT_EQ(cols.shape(), (Shape{2, 16}));
  for (int64_t i = 0; i < img.size(); ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Im2ColTest, PatchContents) {
  // 3x3 image, 2x2 kernel, stride 1, no padding -> 4 patches.
  Tensor img(Shape{1, 3, 3}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor cols = Im2Col(img, 2, 2, 1, 0, 2, 2);
  EXPECT_EQ(cols.shape(), (Shape{4, 4}));
  // First patch (top-left) down the first column: 1, 2, 4, 5.
  EXPECT_EQ(cols.At2(0, 0), 1.0f);
  EXPECT_EQ(cols.At2(1, 0), 2.0f);
  EXPECT_EQ(cols.At2(2, 0), 4.0f);
  EXPECT_EQ(cols.At2(3, 0), 5.0f);
  // Last patch (bottom-right): 5, 6, 8, 9.
  EXPECT_EQ(cols.At2(0, 3), 5.0f);
  EXPECT_EQ(cols.At2(3, 3), 9.0f);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  Tensor img(Shape{1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor cols = Im2Col(img, 3, 3, 1, 1, 2, 2);
  // Top-left patch's first row is entirely padding.
  EXPECT_EQ(cols.At2(0, 0), 0.0f);
  EXPECT_EQ(cols.At2(1, 0), 0.0f);
  EXPECT_EQ(cols.At2(2, 0), 0.0f);
  // Center of top-left patch is the (0,0) pixel.
  EXPECT_EQ(cols.At2(4, 0), 1.0f);
}

// Property: col2im(im2col(x)) multiplies each pixel by the number of patches
// covering it. With stride == kernel (non-overlapping), that count is 1.
TEST(Im2ColTest, Col2ImRoundTripNonOverlapping) {
  Rng rng(43);
  Tensor img = RandomTensor(Shape{3, 8, 8}, &rng);
  int out = ConvOutDim(8, 2, 2, 0);
  Tensor cols = Im2Col(img, 2, 2, 2, 0, out, out);
  Tensor back = Col2Im(cols, 3, 8, 8, 2, 2, 2, 0, out, out);
  ExpectTensorsNear(back, img, 1e-6f);
}

// The kernel probes attribute work even with profiling off: counters are
// process-wide, so these assert deltas against hand-computed formulas.
TEST(OpsTest, MatmulAttributesFlopsAndBytes) {
  obs::MetricsRegistry& global = obs::Global();
  int64_t calls = global.GetCounter("vdrift.ops.tensor.matmul.calls").value();
  int64_t flops = global.GetCounter("vdrift.ops.tensor.matmul.flops").value();
  int64_t bytes = global.GetCounter("vdrift.ops.tensor.matmul.bytes").value();
  Rng rng(77);
  Tensor a = RandomTensor(Shape{3, 4}, &rng);
  Tensor b = RandomTensor(Shape{4, 5}, &rng);
  Tensor c = Matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 5}));
  EXPECT_EQ(global.GetCounter("vdrift.ops.tensor.matmul.calls").value(),
            calls + 1);
  // 2mkn multiply-adds: 2 * 3 * 4 * 5.
  EXPECT_EQ(global.GetCounter("vdrift.ops.tensor.matmul.flops").value(),
            flops + 120);
  // Three operand matrices once through memory: 4 * (12 + 20 + 15).
  EXPECT_EQ(global.GetCounter("vdrift.ops.tensor.matmul.bytes").value(),
            bytes + 188);
}

// The GEMM kernels must do (and attribute) the full 2mkn FLOPs whatever
// the data holds: a zero-padded A used to take a data-dependent skip
// while VDRIFT_OP_PROBE still charged the full product, making FLOP
// attribution wrong and benchmark numbers input-dependent.
TEST(OpsTest, ZeroPaddedInputAttributesFullFlops) {
  obs::MetricsRegistry& global = obs::Global();
  Rng rng(79);
  // A is all zeros except one row; B is dense.
  Tensor a(Shape{6, 8});
  for (int64_t j = 0; j < 8; ++j) a.At2(2, j) = 1.0f;
  Tensor b = RandomTensor(Shape{8, 5}, &rng);
  int64_t flops =
      global.GetCounter("vdrift.ops.tensor.matmul.flops").value();
  Tensor c = Matmul(a, b);
  EXPECT_EQ(global.GetCounter("vdrift.ops.tensor.matmul.flops").value(),
            flops + 2 * 6 * 8 * 5);
  // Zero rows of A produce exactly-zero rows of C (no skip needed for
  // numerical equivalence: 0 + 0 * x == 0 for finite x).
  for (int64_t j = 0; j < 5; ++j) {
    EXPECT_EQ(c.At2(0, j), 0.0f);
    EXPECT_NE(c.At2(2, j), 0.0f);
  }
  int64_t ta_flops =
      global.GetCounter("vdrift.ops.tensor.matmul_transposed_a.flops")
          .value();
  Tensor at(Shape{8, 6});  // A^T, same zero pattern
  for (int64_t k = 0; k < 8; ++k) at.At2(k, 2) = 1.0f;
  Tensor c2 = MatmulTransposedA(at, b);
  EXPECT_EQ(
      global.GetCounter("vdrift.ops.tensor.matmul_transposed_a.flops")
          .value(),
      ta_flops + 2 * 6 * 8 * 5);
  ExpectTensorsNear(c2, c, 0.0f);
}

TEST(Im2ColTest, Im2ColAttributesZeroFlops) {
  obs::MetricsRegistry& global = obs::Global();
  int64_t calls = global.GetCounter("vdrift.ops.tensor.im2col.calls").value();
  int64_t flops = global.GetCounter("vdrift.ops.tensor.im2col.flops").value();
  Rng rng(78);
  Tensor img = RandomTensor(Shape{2, 4, 4}, &rng);
  int out = ConvOutDim(4, 2, 2, 0);
  Tensor cols = Im2Col(img, 2, 2, 2, 0, out, out);
  EXPECT_GT(cols.size(), 0);
  EXPECT_EQ(global.GetCounter("vdrift.ops.tensor.im2col.calls").value(),
            calls + 1);
  // Pure data movement carries no arithmetic attribution.
  EXPECT_EQ(global.GetCounter("vdrift.ops.tensor.im2col.flops").value(),
            flops);
}

TEST(Im2ColTest, Col2ImAccumulatesOverlaps) {
  Tensor img(Shape{1, 3, 3}, 1.0f);
  // 2x2 kernel, stride 1: center pixel is covered by 4 patches.
  int out = ConvOutDim(3, 2, 1, 0);
  Tensor cols = Im2Col(img, 2, 2, 1, 0, out, out);
  Tensor back = Col2Im(cols, 1, 3, 3, 2, 2, 1, 0, out, out);
  EXPECT_EQ(back.At3(0, 1, 1), 4.0f);
  EXPECT_EQ(back.At3(0, 0, 0), 1.0f);
  EXPECT_EQ(back.At3(0, 0, 1), 2.0f);
}

}  // namespace
}  // namespace vdrift::tensor
