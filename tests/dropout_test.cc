// Tests for the Dropout layer and Monte-Carlo-dropout inference.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "detect/annotator.h"
#include "detect/image_classifier.h"
#include "nn/dropout.h"
#include "stats/moments.h"
#include "stats/rng.h"
#include "tensor/tensor.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace vdrift::nn {
namespace {

using stats::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(1);
  Dropout dropout(0.5, &rng);
  dropout.set_training(false);
  Tensor x(Shape{2, 8}, 1.5f);
  Tensor y = dropout.Forward(x);
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 1.5f);
  Tensor g(Shape{2, 8}, 2.0f);
  Tensor gx = dropout.Backward(g);
  for (int64_t i = 0; i < gx.size(); ++i) EXPECT_FLOAT_EQ(gx[i], 2.0f);
}

TEST(DropoutTest, RateZeroIsIdentityInTraining) {
  Rng rng(2);
  Dropout dropout(0.0, &rng);
  Tensor x(Shape{1, 16}, 0.7f);
  Tensor y = dropout.Forward(x);
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 0.7f);
}

TEST(DropoutTest, ZeroesApproximatelyRateFraction) {
  Rng rng(3);
  Dropout dropout(0.3, &rng);
  Tensor x(Shape{1, 20000}, 1.0f);
  Tensor y = dropout.Forward(x);
  int zeros = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) ++zeros;
  }
  double fraction = static_cast<double>(zeros) / static_cast<double>(y.size());
  EXPECT_NEAR(fraction, 0.3, 0.02);
}

TEST(DropoutTest, InvertedScalingPreservesExpectation) {
  Rng rng(4);
  Dropout dropout(0.4, &rng);
  Tensor x(Shape{1, 50000}, 1.0f);
  Tensor y = dropout.Forward(x);
  double sum = 0.0;
  for (int64_t i = 0; i < y.size(); ++i) sum += y[i];
  EXPECT_NEAR(sum / static_cast<double>(y.size()), 1.0, 0.02);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(5);
  Dropout dropout(0.5, &rng);
  Tensor x(Shape{1, 64}, 1.0f);
  Tensor y = dropout.Forward(x);
  Tensor g(Shape{1, 64}, 1.0f);
  Tensor gx = dropout.Backward(g);
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      EXPECT_FLOAT_EQ(gx[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(gx[i], 2.0f);  // 1/(1-0.5)
    }
  }
}

TEST(DropoutDeathTest, RejectsBadRate) {
  Rng rng(6);
  EXPECT_DEATH(Dropout(1.0, &rng), "rate");
  EXPECT_DEATH(Dropout(-0.1, &rng), "rate");
}

TEST(McDropoutTest, WithoutDropoutEqualsPredictProba) {
  Rng rng(7);
  detect::ClassifierConfig config;
  config.num_classes = 4;
  config.base_filters = 4;
  detect::ImageClassifier model(config, &rng);
  Tensor frame(Shape{1, 32, 32}, 0.5f);
  std::vector<float> a = model.PredictProba(frame);
  std::vector<float> b = model.PredictProbaMcDropout(frame, 5);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(McDropoutTest, StochasticPassesVaryAndAverageNormalises) {
  Rng rng(8);
  detect::ClassifierConfig config;
  config.num_classes = 4;
  config.base_filters = 4;
  config.dropout_rate = 0.4;
  detect::ImageClassifier model(config, &rng);
  Tensor frame(Shape{1, 32, 32}, 0.5f);
  std::vector<float> p1 = model.PredictProbaMcDropout(frame, 1);
  std::vector<float> p2 = model.PredictProbaMcDropout(frame, 1);
  double diff = 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < p1.size(); ++i) {
    diff += std::abs(p1[i] - p2[i]);
    sum += p1[i];
  }
  EXPECT_GT(diff, 1e-6) << "MC passes should be stochastic";
  EXPECT_NEAR(sum, 1.0, 1e-4);
  std::vector<float> avg = model.PredictProbaMcDropout(frame, 16);
  double avg_sum = 0.0;
  for (float v : avg) avg_sum += v;
  EXPECT_NEAR(avg_sum, 1.0, 1e-4);
}

TEST(McDropoutTest, DeterministicEvalAfterMcPasses) {
  // PredictProba must stay deterministic even after MC passes toggled
  // training mode on and off.
  Rng rng(9);
  detect::ClassifierConfig config;
  config.num_classes = 3;
  config.base_filters = 4;
  config.dropout_rate = 0.3;
  detect::ImageClassifier model(config, &rng);
  Tensor frame(Shape{1, 32, 32}, 0.4f);
  std::vector<float> before = model.PredictProba(frame);
  (void)model.PredictProbaMcDropout(frame, 4);
  std::vector<float> after = model.PredictProba(frame);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
}

TEST(McDropoutTest, DropoutClassifierStillTrains) {
  Rng rng(10);
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.004);
  std::vector<video::Frame> frames =
      video::GenerateFrames(ds.SpecOf("Day"), 120, 32, 11);
  std::vector<tensor::Tensor> pixels = video::PixelsOf(frames);
  std::vector<int> labels;
  for (const video::Frame& f : frames) {
    labels.push_back(detect::CountLabel(f.truth, 8));
  }
  detect::ClassifierConfig config;
  config.num_classes = 8;
  config.base_filters = 6;
  config.dropout_rate = 0.2;
  detect::ImageClassifier model(config, &rng);
  detect::ClassifierTrainConfig tc;
  tc.epochs = 8;
  std::vector<double> losses =
      model.Train(pixels, labels, tc, &rng).ValueOrDie();
  EXPECT_LT(losses.back(), losses.front());
}

}  // namespace
}  // namespace vdrift::nn
