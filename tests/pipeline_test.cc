// End-to-end integration tests: the drift-aware pipeline (DI + MSBO/MSBI)
// on multi-sequence streams, the trainNewModel path, the ODIN baseline
// pipeline, and the static-detector pipelines.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "benchutil/workbench.h"
#include "pipeline/pipeline.h"
#include "pipeline/provision.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace vdrift::pipeline {
namespace {

// One shared workbench: a Tokyo-like 3-model registry (cheapest to train).
class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    benchutil::WorkbenchOptions options =
        benchutil::DefaultWorkbenchOptions();
    options.dataset_scale = 0.008;  // ~120 frames per sequence
    options.cache_dir = "";         // tests never touch the bench cache
    options.train_frames = 220;
    bench_ = benchutil::BuildWorkbench("Tokyo", options).ValueOrDie()
                 .release();
  }

  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }

  static PipelineConfig BaseConfig(PipelineConfig::Selector selector) {
    PipelineConfig config;
    config.selector = selector;
    config.provision = benchutil::DefaultWorkbenchOptions().provision;
    config.allow_training_new = false;
    return config;
  }

  static benchutil::Workbench* bench_;
};

benchutil::Workbench* PipelineFixture::bench_ = nullptr;

TEST_F(PipelineFixture, MsboPipelineTracksSequences) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  EXPECT_EQ(metrics.frames, bench_->dataset.total_frames());
  // Two real drifts (3 sequences); a handful of re-detections are
  // tolerable, silence is not.
  EXPECT_GE(metrics.drifts_detected, 2);
  EXPECT_LE(metrics.drifts_detected, 6);
  // The count query must be clearly better than chance overall.
  SequenceAccuracy totals = metrics.Totals();
  EXPECT_GT(totals.CountAq(), 0.3);
  // Exactly one model invocation per frame (the §6.2 claim for MS).
  EXPECT_EQ(totals.invocations, metrics.frames);
  EXPECT_GT(metrics.total_seconds, 0.0);
  // Timing fields are derived from the run's obs spans.
  ASSERT_NE(metrics.registry, nullptr);
  EXPECT_EQ(metrics.registry->GetHistogram("vdrift.pipeline.run_seconds")
                .count(),
            1);
  EXPECT_GT(metrics.detect_seconds, 0.0);
  EXPECT_GT(metrics.select_seconds, 0.0);
  EXPECT_GE(metrics.total_seconds,
            metrics.detect_seconds + metrics.select_seconds);
  // Every detection left an annotated drift episode behind.
  ASSERT_NE(metrics.episodes, nullptr);
  std::vector<obs::Episode> episodes = metrics.episodes->episodes();
  ASSERT_EQ(static_cast<int>(episodes.size()), metrics.drifts_detected);
  EXPECT_EQ(episodes[0].decision, metrics.selections[0]);
  EXPECT_TRUE(episodes[0].frames.back().drift);
}

TEST(SequenceAccuracyTest, InvocationsPerFrameCoversAllQueryMixes) {
  SequenceAccuracy acc;
  EXPECT_EQ(acc.InvocationsPerFrame(), 0.0);  // no queries, no crash
  // Predicate-only runs must still denominate the ratio.
  acc.predicate_total = 10;
  acc.invocations = 20;
  EXPECT_DOUBLE_EQ(acc.InvocationsPerFrame(), 2.0);
  // Mixed runs denominate over the frames that ran any query.
  acc.count_total = 40;
  acc.invocations = 40;
  EXPECT_DOUBLE_EQ(acc.InvocationsPerFrame(), 1.0);
}

TEST_F(PipelineFixture, MsboSelectsTheMatchingModelAtEachDrift) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  ASSERT_GE(metrics.selections.size(), 2u);
  // The first selection (drift into sequence 1) must be "Angle 2", the
  // second "Angle 3".
  EXPECT_EQ(metrics.selections[0], "Angle 2");
  EXPECT_EQ(metrics.selections[1], "Angle 3");
}

TEST_F(PipelineFixture, MsbiPipelineRunsAndSelects) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbi);
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  EXPECT_GE(metrics.drifts_detected, 2);
  ASSERT_GE(metrics.selections.size(), 1u);
  EXPECT_EQ(metrics.selections[0], "Angle 2");
}

TEST_F(PipelineFixture, DetectionLatencyIsSmall) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  const std::vector<int64_t>& truth = stream.drift_points();
  ASSERT_GE(metrics.drift_frames.size(), 2u);
  // First detection after the first true drift point, within 60 frames.
  EXPECT_GE(metrics.drift_frames[0], truth[0]);
  EXPECT_LE(metrics.drift_frames[0], truth[0] + 60);
}

TEST_F(PipelineFixture, OdinPipelineRunsWithEnsembles) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  OdinPipeline::Config config;
  OdinPipeline odin(&bench_->registry, bench_->training_frames, config);
  PipelineMetrics metrics = odin.Run(&stream).ValueOrDie();
  EXPECT_EQ(metrics.frames, bench_->dataset.total_frames());
  SequenceAccuracy totals = metrics.Totals();
  // ODIN may invoke more than one model per frame (ensembles).
  EXPECT_GE(totals.invocations, metrics.frames);
  EXPECT_GT(totals.CountAq(), 0.1);
}

TEST_F(PipelineFixture, OdinUsesMoreInvocationsThanMs) {
  video::StreamGenerator s1 = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline ms(&bench_->registry, bench_->calibration_samples,
                        config);
  PipelineMetrics ms_metrics = ms.Run(&s1).ValueOrDie();
  video::StreamGenerator s2 = bench_->dataset.MakeStream();
  OdinPipeline odin(&bench_->registry, bench_->training_frames,
                    OdinPipeline::Config{});
  PipelineMetrics odin_metrics = odin.Run(&s2).ValueOrDie();
  EXPECT_GE(odin_metrics.Totals().invocations,
            ms_metrics.Totals().invocations);
}

TEST_F(PipelineFixture, MsBeatsDriftObliviousDetectorOnAccuracy) {
  // The YOLO substitute is trained on sequence 0 only; after the drifts
  // its accuracy must fall below the drift-aware pipeline's.
  stats::Rng rng(55);
  detect::SimulatedDetector::Config det_config;
  det_config.base_filters = 12;
  detect::SimulatedDetector detector(det_config, &rng);
  detect::ClassifierTrainConfig tc;
  tc.epochs = 10;
  ASSERT_TRUE(detector.Train(bench_->training_frames[0], tc, &rng).ok());
  video::StreamGenerator s1 = bench_->dataset.MakeStream();
  PipelineMetrics yolo =
      StaticDetectorPipeline::RunDetector(&detector, &s1, false)
          .ValueOrDie();
  video::StreamGenerator s2 = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline ms(&bench_->registry, bench_->calibration_samples,
                        config);
  PipelineMetrics ours = ms.Run(&s2).ValueOrDie();
  EXPECT_GT(ours.Totals().CountAq(), yolo.Totals().CountAq());
}

TEST_F(PipelineFixture, OraclePipelineIsPerfect) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineMetrics metrics =
      StaticDetectorPipeline::RunOracle(16, &stream).ValueOrDie();
  EXPECT_EQ(metrics.frames, bench_->dataset.total_frames());
  EXPECT_DOUBLE_EQ(metrics.Totals().CountAq(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.Totals().PredicateAq(), 1.0);
}

TEST_F(PipelineFixture, StaticDetectorRejectsNull) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  EXPECT_FALSE(
      StaticDetectorPipeline::RunDetector(nullptr, &stream, false).ok());
}

TEST(TrainNewModelTest, PipelineProvisionsOnUnseenDistribution) {
  // Registry knows only Day; the stream drifts into Night. With training
  // enabled the pipeline must detect, fail selection, and train a new
  // model, after which the stream continues under the learned model.
  stats::Rng rng(77);
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.004);
  ProvisionOptions provision = benchutil::DefaultWorkbenchOptions().provision;
  provision.classifier_train.epochs = 8;
  std::vector<video::Frame> day_frames =
      video::GenerateFrames(ds.SpecOf("Day"), 200, 32, 500);
  select::ModelRegistry registry;
  registry.Add(
      ProvisionModel("Day", day_frames, provision, &rng).ValueOrDie());
  std::vector<std::vector<select::LabeledFrame>> samples;
  samples.push_back(MakeLabeledSample(day_frames, 8, 24, &rng));

  PipelineConfig config;
  config.selector = PipelineConfig::Selector::kMsbo;
  config.provision = provision;
  config.allow_training_new = true;
  config.new_model_window = 80;
  video::StreamGenerator stream(
      {{ds.SpecOf("Day"), 120}, {ds.SpecOf("Night"), 260}}, 32, 321);
  DriftAwarePipeline pipeline(&registry, samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  EXPECT_GE(metrics.drifts_detected, 1);
  EXPECT_GE(metrics.new_models_trained, 1);
  EXPECT_EQ(registry.size(), 1 + metrics.new_models_trained);
  ASSERT_FALSE(metrics.selections.empty());
  EXPECT_EQ(metrics.selections[0].rfind("learned-", 0), 0u)
      << "first selection should be a freshly trained model, got "
      << metrics.selections[0];
}

TEST(ProvisionTest, RejectsBadInput) {
  stats::Rng rng(1);
  ProvisionOptions options = DefaultProvisionOptions();
  EXPECT_FALSE(ProvisionModel("x", {}, options, &rng).ok());
  options.ensemble_size = 0;
  video::SceneSpec spec;
  std::vector<video::Frame> frames = video::GenerateFrames(spec, 4, 32, 2);
  EXPECT_FALSE(ProvisionModel("x", frames, options, &rng).ok());
}

TEST(ProvisionTest, MakeLabeledSampleSizesAndRange) {
  stats::Rng rng(2);
  video::SceneSpec spec;
  std::vector<video::Frame> frames = video::GenerateFrames(spec, 10, 32, 3);
  std::vector<select::LabeledFrame> sample =
      MakeLabeledSample(frames, 8, 25, &rng);
  ASSERT_EQ(sample.size(), 25u);
  for (const auto& lf : sample) {
    EXPECT_GE(lf.label, 0);
    EXPECT_LT(lf.label, 8);
  }
  EXPECT_TRUE(MakeLabeledSample({}, 8, 5, &rng).empty());
}

}  // namespace
}  // namespace vdrift::pipeline
