// End-to-end integration tests: the drift-aware pipeline (DI + MSBO/MSBI)
// on multi-sequence streams, the trainNewModel path, the ODIN baseline
// pipeline, and the static-detector pipelines.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchutil/workbench.h"
#include "fault/fault.h"
#include "fault/faulty_stream.h"
#include "pipeline/checkpoint.h"
#include "pipeline/pipeline.h"
#include "pipeline/provision.h"
#include "runtime/parallel.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace vdrift::pipeline {
namespace {

// One shared workbench: a Tokyo-like 3-model registry (cheapest to train).
class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    benchutil::WorkbenchOptions options =
        benchutil::DefaultWorkbenchOptions();
    options.dataset_scale = 0.008;  // ~120 frames per sequence
    options.cache_dir = "";         // tests never touch the bench cache
    options.train_frames = 220;
    bench_ = benchutil::BuildWorkbench("Tokyo", options).ValueOrDie()
                 .release();
  }

  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }

  static PipelineConfig BaseConfig(PipelineConfig::Selector selector) {
    PipelineConfig config;
    config.selector = selector;
    config.provision = benchutil::DefaultWorkbenchOptions().provision;
    config.allow_training_new = false;
    return config;
  }

  static benchutil::Workbench* bench_;
};

benchutil::Workbench* PipelineFixture::bench_ = nullptr;

TEST_F(PipelineFixture, MsboPipelineTracksSequences) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  EXPECT_EQ(metrics.frames, bench_->dataset.total_frames());
  // Two real drifts (3 sequences); a handful of re-detections are
  // tolerable, silence is not.
  EXPECT_GE(metrics.drifts_detected, 2);
  EXPECT_LE(metrics.drifts_detected, 6);
  // The count query must be clearly better than chance overall.
  SequenceAccuracy totals = metrics.Totals();
  EXPECT_GT(totals.CountAq(), 0.3);
  // Exactly one model invocation per frame (the §6.2 claim for MS).
  EXPECT_EQ(totals.invocations, metrics.frames);
  EXPECT_GT(metrics.total_seconds, 0.0);
  // Timing fields are derived from the run's obs spans.
  ASSERT_NE(metrics.registry, nullptr);
  EXPECT_EQ(metrics.registry->GetHistogram("vdrift.pipeline.run_seconds")
                .count(),
            1);
  EXPECT_GT(metrics.detect_seconds, 0.0);
  EXPECT_GT(metrics.select_seconds, 0.0);
  EXPECT_GE(metrics.total_seconds,
            metrics.detect_seconds + metrics.select_seconds);
  // Every detection left an annotated drift episode behind.
  ASSERT_NE(metrics.episodes, nullptr);
  std::vector<obs::Episode> episodes = metrics.episodes->episodes();
  ASSERT_EQ(static_cast<int>(episodes.size()), metrics.drifts_detected);
  EXPECT_EQ(episodes[0].decision, metrics.selections[0]);
  EXPECT_TRUE(episodes[0].frames.back().drift);
}

TEST(SequenceAccuracyTest, InvocationsPerFrameCoversAllQueryMixes) {
  SequenceAccuracy acc;
  EXPECT_EQ(acc.InvocationsPerFrame(), 0.0);  // no queries, no crash
  // Predicate-only runs must still denominate the ratio.
  acc.predicate_total = 10;
  acc.invocations = 20;
  EXPECT_DOUBLE_EQ(acc.InvocationsPerFrame(), 2.0);
  // Mixed runs denominate over the frames that ran any query.
  acc.count_total = 40;
  acc.invocations = 40;
  EXPECT_DOUBLE_EQ(acc.InvocationsPerFrame(), 1.0);
}

TEST_F(PipelineFixture, MsboSelectsTheMatchingModelAtEachDrift) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  ASSERT_GE(metrics.selections.size(), 2u);
  // The first selection (drift into sequence 1) must be "Angle 2", the
  // second "Angle 3".
  EXPECT_EQ(metrics.selections[0], "Angle 2");
  EXPECT_EQ(metrics.selections[1], "Angle 3");
}

TEST_F(PipelineFixture, MsbiPipelineRunsAndSelects) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbi);
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  EXPECT_GE(metrics.drifts_detected, 2);
  ASSERT_GE(metrics.selections.size(), 1u);
  EXPECT_EQ(metrics.selections[0], "Angle 2");
}

TEST_F(PipelineFixture, DetectionLatencyIsSmall) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  const std::vector<int64_t>& truth = stream.drift_points();
  ASSERT_GE(metrics.drift_frames.size(), 2u);
  // First detection after the first true drift point, within 60 frames.
  EXPECT_GE(metrics.drift_frames[0], truth[0]);
  EXPECT_LE(metrics.drift_frames[0], truth[0] + 60);
}

TEST_F(PipelineFixture, OdinPipelineRunsWithEnsembles) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  OdinPipeline::Config config;
  OdinPipeline odin(&bench_->registry, bench_->training_frames, config);
  PipelineMetrics metrics = odin.Run(&stream).ValueOrDie();
  EXPECT_EQ(metrics.frames, bench_->dataset.total_frames());
  SequenceAccuracy totals = metrics.Totals();
  // ODIN may invoke more than one model per frame (ensembles).
  EXPECT_GE(totals.invocations, metrics.frames);
  EXPECT_GT(totals.CountAq(), 0.1);
}

TEST_F(PipelineFixture, OdinUsesMoreInvocationsThanMs) {
  video::StreamGenerator s1 = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline ms(&bench_->registry, bench_->calibration_samples,
                        config);
  PipelineMetrics ms_metrics = ms.Run(&s1).ValueOrDie();
  video::StreamGenerator s2 = bench_->dataset.MakeStream();
  OdinPipeline odin(&bench_->registry, bench_->training_frames,
                    OdinPipeline::Config{});
  PipelineMetrics odin_metrics = odin.Run(&s2).ValueOrDie();
  EXPECT_GE(odin_metrics.Totals().invocations,
            ms_metrics.Totals().invocations);
}

TEST_F(PipelineFixture, MsBeatsDriftObliviousDetectorOnAccuracy) {
  // The YOLO substitute is trained on sequence 0 only; after the drifts
  // its accuracy must fall below the drift-aware pipeline's.
  stats::Rng rng(55);
  detect::SimulatedDetector::Config det_config;
  det_config.base_filters = 12;
  detect::SimulatedDetector detector(det_config, &rng);
  detect::ClassifierTrainConfig tc;
  tc.epochs = 10;
  ASSERT_TRUE(detector.Train(bench_->training_frames[0], tc, &rng).ok());
  video::StreamGenerator s1 = bench_->dataset.MakeStream();
  PipelineMetrics yolo =
      StaticDetectorPipeline::RunDetector(&detector, &s1, false)
          .ValueOrDie();
  video::StreamGenerator s2 = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline ms(&bench_->registry, bench_->calibration_samples,
                        config);
  PipelineMetrics ours = ms.Run(&s2).ValueOrDie();
  EXPECT_GT(ours.Totals().CountAq(), yolo.Totals().CountAq());
}

TEST_F(PipelineFixture, OraclePipelineIsPerfect) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineMetrics metrics =
      StaticDetectorPipeline::RunOracle(16, &stream).ValueOrDie();
  EXPECT_EQ(metrics.frames, bench_->dataset.total_frames());
  EXPECT_DOUBLE_EQ(metrics.Totals().CountAq(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.Totals().PredicateAq(), 1.0);
}

TEST_F(PipelineFixture, StaticDetectorRejectsNull) {
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  EXPECT_FALSE(
      StaticDetectorPipeline::RunDetector(nullptr, &stream, false).ok());
}

TEST(TrainNewModelTest, PipelineProvisionsOnUnseenDistribution) {
  // Registry knows only Day; the stream drifts into Night. With training
  // enabled the pipeline must detect, fail selection, and train a new
  // model, after which the stream continues under the learned model.
  stats::Rng rng(77);
  video::SyntheticDataset ds = video::MakeBddSynthetic(0.004);
  ProvisionOptions provision = benchutil::DefaultWorkbenchOptions().provision;
  provision.classifier_train.epochs = 8;
  std::vector<video::Frame> day_frames =
      video::GenerateFrames(ds.SpecOf("Day"), 200, 32, 500);
  select::ModelRegistry registry;
  registry.Add(
      ProvisionModel("Day", day_frames, provision, &rng).ValueOrDie());
  std::vector<std::vector<select::LabeledFrame>> samples;
  samples.push_back(MakeLabeledSample(day_frames, 8, 24, &rng));

  PipelineConfig config;
  config.selector = PipelineConfig::Selector::kMsbo;
  config.provision = provision;
  config.allow_training_new = true;
  config.new_model_window = 80;
  video::StreamGenerator stream(
      {{ds.SpecOf("Day"), 120}, {ds.SpecOf("Night"), 260}}, 32, 321);
  DriftAwarePipeline pipeline(&registry, samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  EXPECT_GE(metrics.drifts_detected, 1);
  EXPECT_GE(metrics.new_models_trained, 1);
  EXPECT_EQ(registry.size(), 1 + metrics.new_models_trained);
  ASSERT_FALSE(metrics.selections.empty());
  EXPECT_EQ(metrics.selections[0].rfind("learned-", 0), 0u)
      << "first selection should be a freshly trained model, got "
      << metrics.selections[0];
}

TEST_F(PipelineFixture, NanFramesAreDroppedNotFatal) {
  // End-to-end NaN regression: poisoned frames must be skipped and
  // counted, never crash the run or stick the martingale at NaN.
  video::StreamGenerator inner = bench_->dataset.MakeStream();
  fault::FaultPlan plan =
      fault::FaultPlan::Parse("nan_frame:p=0.05").ValueOrDie();
  fault::FaultInjector injector(plan, 2024);
  fault::FaultyStream stream(&inner, &injector);
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  Result<PipelineMetrics> run = pipeline.Run(&stream);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const PipelineMetrics& metrics = run.value();
  EXPECT_GT(injector.count(fault::FaultKind::kNanFrame), 0);
  EXPECT_GT(metrics.degradation.frames_dropped, 0);
  // Zero silent losses: every delivered frame was either queried or
  // explicitly dropped.
  EXPECT_EQ(metrics.frames, stream.position());
  EXPECT_EQ(metrics.Totals().count_total + metrics.degradation.frames_dropped,
            metrics.frames);
  // The surviving trajectory is still a working detector.
  EXPECT_GE(metrics.drifts_detected, 1);
}

TEST_F(PipelineFixture, SelectorFailuresDegradeToIncumbentThenOblivious) {
  // A selector that always fails must never kill the run: bounded retries,
  // then incumbent fallback, then (after repeated failures) the pipeline
  // trips into drift-oblivious operation.
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  fault::FaultPlan plan =
      fault::FaultPlan::Parse("selector_fail:p=1").ValueOrDie();
  fault::FaultInjector injector(plan, 7);
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  config.injector = &injector;
  config.degrade.max_selection_retries = 1;
  config.degrade.max_consecutive_failures = 2;
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  Result<PipelineMetrics> run = pipeline.Run(&stream);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const PipelineMetrics& metrics = run.value();
  EXPECT_EQ(metrics.frames, bench_->dataset.total_frames());
  ASSERT_GE(metrics.degradation.incumbent_fallbacks, 1);
  EXPECT_EQ(metrics.degradation.selector_retries,
            metrics.degradation.incumbent_fallbacks);
  EXPECT_EQ(metrics.degradation.selector_failures,
            2 * metrics.degradation.incumbent_fallbacks);
  // Every drift is accounted for: a selection entry ("<incumbent>") per
  // detection, and the queries kept running throughout.
  EXPECT_EQ(static_cast<int>(metrics.selections.size()),
            metrics.drifts_detected);
  for (const std::string& selection : metrics.selections) {
    EXPECT_EQ(selection, "<incumbent>");
  }
  if (metrics.degradation.incumbent_fallbacks >= 2) {
    EXPECT_TRUE(metrics.degradation.drift_oblivious);
    EXPECT_TRUE(pipeline.drift_oblivious());
  }
  EXPECT_EQ(metrics.Totals().count_total, metrics.frames);
}

TEST_F(PipelineFixture, AnnotatorFaultsAreDeferredNotFatal) {
  // Annotator deadline overruns and spurious errors shrink the labeled
  // recovery window but must not fail MSBO selection outright.
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  fault::FaultPlan plan =
      fault::FaultPlan::Parse("annotator_deadline:p=0.3;annotator_error:p=0.1")
          .ValueOrDie();
  fault::FaultInjector injector(plan, 13);
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  config.injector = &injector;
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  Result<PipelineMetrics> run = pipeline.Run(&stream);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const PipelineMetrics& metrics = run.value();
  EXPECT_GE(metrics.drifts_detected, 2);
  EXPECT_GT(metrics.degradation.annotator_deferrals, 0);
  // Selection still succeeded from the frames that were labeled in time.
  EXPECT_EQ(metrics.degradation.incumbent_fallbacks, 0);
}

TEST_F(PipelineFixture, CheckpointResumeIsBitIdentical) {
  // Crash-recovery drill, run at 1 and 4 worker threads: pause a run
  // mid-stream, checkpoint, resume into a FRESH pipeline + stream, and
  // require the final counters to be bit-identical to an uninterrupted
  // run — accuracy counters, detection indices, selections, and the
  // martingale trajectory all included.
  for (int threads : {1, 4}) {
    runtime::ScopedThreads scoped(threads);
    PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);

    video::StreamGenerator baseline_stream = bench_->dataset.MakeStream();
    DriftAwarePipeline baseline(&bench_->registry,
                                bench_->calibration_samples, config);
    PipelineMetrics uninterrupted =
        baseline.Run(&baseline_stream).ValueOrDie();

    std::string path = ::testing::TempDir() + "/vdrift_resume_drill_" +
                       std::to_string(threads) + ".ckpt";
    video::StreamGenerator first_stream = bench_->dataset.MakeStream();
    DriftAwarePipeline first(&bench_->registry, bench_->calibration_samples,
                             config);
    RunOptions half;
    half.max_frames = bench_->dataset.total_frames() / 2;
    ASSERT_TRUE(first.Run(&first_stream, half).ok());
    ASSERT_TRUE(first.Checkpoint(path, first_stream).ok());

    // "Crash": everything below uses fresh objects only.
    video::StreamGenerator second_stream = bench_->dataset.MakeStream();
    DriftAwarePipeline second(&bench_->registry, bench_->calibration_samples,
                              config);
    Status resumed = second.Resume(path, &second_stream);
    ASSERT_TRUE(resumed.ok()) << resumed.ToString();
    PipelineMetrics recovered = second.Run(&second_stream).ValueOrDie();

    EXPECT_EQ(recovered.frames, uninterrupted.frames);
    EXPECT_EQ(recovered.drifts_detected, uninterrupted.drifts_detected);
    EXPECT_EQ(recovered.drift_frames, uninterrupted.drift_frames);
    EXPECT_EQ(recovered.selections, uninterrupted.selections);
    EXPECT_EQ(recovered.selection_invocations,
              uninterrupted.selection_invocations);
    ASSERT_EQ(recovered.per_sequence.size(),
              uninterrupted.per_sequence.size());
    for (const auto& [id, acc] : uninterrupted.per_sequence) {
      const SequenceAccuracy& other = recovered.per_sequence.at(id);
      EXPECT_EQ(other.count_correct, acc.count_correct) << "seq " << id;
      EXPECT_EQ(other.count_total, acc.count_total) << "seq " << id;
      EXPECT_EQ(other.invocations, acc.invocations) << "seq " << id;
    }
    // Martingale trajectory converged to the same bit pattern.
    EXPECT_EQ(second.inspector().martingale_value(),
              baseline.inspector().martingale_value());
    EXPECT_EQ(second.inspector().frames_seen(),
              baseline.inspector().frames_seen());
    std::remove(path.c_str());
  }
}

TEST_F(PipelineFixture, SlicedRunsNeverOvershootAndMatchUninterrupted) {
  // Frame-accounting regression: RunOptions.max_frames budgets EVERY frame
  // pulled from the stream — recovery/training frames consumed inside
  // drift handling included — so a slice never overshoots even when a
  // drift lands mid-slice, and a fully sliced run is bit-identical to an
  // uninterrupted one.
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  video::StreamGenerator baseline_stream = bench_->dataset.MakeStream();
  DriftAwarePipeline baseline(&bench_->registry, bench_->calibration_samples,
                              config);
  PipelineMetrics uninterrupted = baseline.Run(&baseline_stream).ValueOrDie();
  ASSERT_GE(uninterrupted.drifts_detected, 2);

  // Slices shorter than the drift-handling span, so recovery windows
  // straddle slice boundaries.
  constexpr int64_t kSlice = 25;
  const int64_t total = bench_->dataset.total_frames();
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  DriftAwarePipeline sliced(&bench_->registry, bench_->calibration_samples,
                            config);
  RunOptions slice;
  slice.max_frames = kSlice;
  bool recovery_straddled_a_slice = false;
  int64_t slices = 0;
  while (stream.position() < total || sliced.recovery_pending()) {
    int64_t before = stream.position();
    ASSERT_TRUE(sliced.Run(&stream, slice).ok());
    // The invariant the serve layer schedules by: position advances by
    // exactly min(max_frames, remaining) per call.
    EXPECT_EQ(stream.position() - before,
              std::min<int64_t>(kSlice, total - before))
        << "slice " << slices << " overshot its frame budget";
    recovery_straddled_a_slice |= sliced.recovery_pending();
    ++slices;
    ASSERT_LE(slices, total) << "sliced run failed to make progress";
  }
  EXPECT_TRUE(recovery_straddled_a_slice)
      << "no drift was handled across a slice boundary; shrink kSlice";
  const PipelineMetrics& resumed = sliced.metrics();
  EXPECT_EQ(resumed.frames, uninterrupted.frames);
  EXPECT_EQ(resumed.drifts_detected, uninterrupted.drifts_detected);
  EXPECT_EQ(resumed.drift_frames, uninterrupted.drift_frames);
  EXPECT_EQ(resumed.detect_lags, uninterrupted.detect_lags);
  EXPECT_EQ(resumed.selections, uninterrupted.selections);
  EXPECT_EQ(resumed.degradation.frames_dropped,
            uninterrupted.degradation.frames_dropped);
  ASSERT_EQ(resumed.per_sequence.size(), uninterrupted.per_sequence.size());
  for (const auto& [id, acc] : uninterrupted.per_sequence) {
    const SequenceAccuracy& other = resumed.per_sequence.at(id);
    EXPECT_EQ(other.count_correct, acc.count_correct) << "seq " << id;
    EXPECT_EQ(other.count_total, acc.count_total) << "seq " << id;
    EXPECT_EQ(other.invocations, acc.invocations) << "seq " << id;
  }
}

TEST_F(PipelineFixture, ResumeMidRecoveryRebuildsLagClockAndHistogram) {
  // Detection-lag clock regression: the clock advances for frames consumed
  // inside drift handling and is serialized in checkpoints, so a
  // checkpoint cut mid-recovery resumes to a bit-identical
  // detect_lag_frames histogram — not a diverged one.
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  video::StreamGenerator baseline_stream = bench_->dataset.MakeStream();
  DriftAwarePipeline baseline(&bench_->registry, bench_->calibration_samples,
                              config);
  PipelineMetrics uninterrupted = baseline.Run(&baseline_stream).ValueOrDie();
  ASSERT_GE(uninterrupted.drifts_detected, 1);
  ASSERT_EQ(uninterrupted.detect_lags.size(),
            static_cast<size_t>(uninterrupted.drifts_detected));

  // Drive short slices until drift handling parks across a boundary, so
  // the checkpoint lands mid-recovery with buffered frames.
  const int64_t total = bench_->dataset.total_frames();
  video::StreamGenerator first_stream = bench_->dataset.MakeStream();
  DriftAwarePipeline first(&bench_->registry, bench_->calibration_samples,
                           config);
  RunOptions slice;
  slice.max_frames = 7;
  while (!first.recovery_pending()) {
    ASSERT_LT(first_stream.position(), total)
        << "stream ended before any drift parked across a slice";
    ASSERT_TRUE(first.Run(&first_stream, slice).ok());
  }
  std::string path = ::testing::TempDir() + "/vdrift_midrecovery.ckpt";
  ASSERT_TRUE(first.Checkpoint(path, first_stream).ok());

  // "Crash" mid-recovery: fresh pipeline + stream, resume, finish.
  video::StreamGenerator second_stream = bench_->dataset.MakeStream();
  DriftAwarePipeline second(&bench_->registry, bench_->calibration_samples,
                            config);
  Status resumed = second.Resume(path, &second_stream);
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();
  EXPECT_TRUE(second.recovery_pending())
      << "parked drift handling was not restored";
  PipelineMetrics recovered = second.Run(&second_stream).ValueOrDie();

  EXPECT_EQ(recovered.frames, uninterrupted.frames);
  EXPECT_EQ(recovered.drift_frames, uninterrupted.drift_frames);
  EXPECT_EQ(recovered.selections, uninterrupted.selections);
  EXPECT_EQ(recovered.detect_lags, uninterrupted.detect_lags);
  obs::Histogram::Snapshot expected =
      uninterrupted.registry->GetHistogram("vdrift.pipeline.detect_lag_frames")
          .snapshot();
  obs::Histogram::Snapshot actual =
      recovered.registry->GetHistogram("vdrift.pipeline.detect_lag_frames")
          .snapshot();
  EXPECT_EQ(actual.count, expected.count);
  EXPECT_EQ(actual.sum, expected.sum);
  EXPECT_EQ(actual.buckets, expected.buckets);
  std::remove(path.c_str());
}

TEST_F(PipelineFixture, StaticDetectorPredicateScoresSharedEncoding) {
  // RunDetector must score the spatial predicate against
  // detect::PredicateLabel — the same ground-truth encoding every other
  // pipeline uses — so Fig. 8 accuracies compare across pipelines. Pinned
  // by replaying the stream by hand.
  stats::Rng rng(66);
  detect::SimulatedDetector::Config det_config;
  det_config.base_filters = 12;
  detect::SimulatedDetector detector(det_config, &rng);
  detect::ClassifierTrainConfig tc;
  tc.epochs = 6;
  ASSERT_TRUE(detector.Train(bench_->training_frames[0], tc, &rng).ok());
  video::StreamGenerator s1 = bench_->dataset.MakeStream();
  PipelineMetrics metrics =
      StaticDetectorPipeline::RunDetector(&detector, &s1, true).ValueOrDie();
  video::StreamGenerator s2 = bench_->dataset.MakeStream();
  video::Frame frame;
  int64_t expected_total = 0;
  int64_t expected_correct = 0;
  while (s2.Next(&frame)) {
    int p = detector.PredictPredicate(frame.pixels) ? 1 : 0;
    expected_total += 1;
    if (p == detect::PredicateLabel(frame.truth)) expected_correct += 1;
  }
  SequenceAccuracy totals = metrics.Totals();
  EXPECT_EQ(totals.predicate_total, expected_total);
  EXPECT_EQ(totals.predicate_correct, expected_correct);
}

TEST_F(PipelineFixture, ResumeFromCorruptCheckpointIsDataLossNotCrash) {
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  RunOptions some;
  some.max_frames = 40;
  ASSERT_TRUE(pipeline.Run(&stream, some).ok());
  std::string path = ::testing::TempDir() + "/vdrift_corrupt_resume.ckpt";
  ASSERT_TRUE(pipeline.Checkpoint(path, stream).ok());

  // Corrupt the file on disk; a fresh pipeline must report kDataLoss and
  // stay usable for the cold-start fallback.
  fault::FaultPlan plan =
      fault::FaultPlan::Parse("checkpoint_corrupt:p=1").ValueOrDie();
  fault::FaultInjector injector(plan, 3);
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    int byte = std::fgetc(f);
    std::fseek(f, 100, SEEK_SET);
    std::fputc(byte ^ 0x20, f);
    std::fclose(f);
  }
  video::StreamGenerator fresh_stream = bench_->dataset.MakeStream();
  DriftAwarePipeline fresh(&bench_->registry, bench_->calibration_samples,
                           config);
  Status resumed = fresh.Resume(path, &fresh_stream);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.code(), StatusCode::kDataLoss);
  // Cold start still works after the failed resume.
  fresh_stream.Reset();
  RunOptions a_bit;
  a_bit.max_frames = 30;
  EXPECT_TRUE(fresh.Run(&fresh_stream, a_bit).ok());
  std::remove(path.c_str());
}

TEST_F(PipelineFixture, CheckpointFromAFutureVersionIsDataLossNotUb) {
  // A checkpoint written by a future build must be diagnosed before any
  // payload field is trusted — forward compatibility means refusing
  // loudly, not decoding garbage.
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  RunOptions some;
  some.max_frames = 40;
  ASSERT_TRUE(pipeline.Run(&stream, some).ok());
  std::string path = ::testing::TempDir() + "/vdrift_future_version.ckpt";
  ASSERT_TRUE(pipeline.Checkpoint(path, stream).ok());

  // Hand-build the "future" fixture: the little-endian u32 version field
  // sits at bytes 8..11, right after the 8-byte "VDCKPT01" magic. Stamp
  // version 99 and leave everything else (CRC included) intact.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 8, SEEK_SET);
    std::fputc(99, f);
    std::fputc(0, f);
    std::fputc(0, f);
    std::fputc(0, f);
    std::fclose(f);
  }
  video::StreamGenerator fresh_stream = bench_->dataset.MakeStream();
  DriftAwarePipeline fresh(&bench_->registry, bench_->calibration_samples,
                           config);
  Status resumed = fresh.Resume(path, &fresh_stream);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.code(), StatusCode::kDataLoss);
  EXPECT_NE(resumed.message().find("version"), std::string::npos)
      << resumed.ToString();
  std::remove(path.c_str());
}

TEST_F(PipelineFixture, FaultSweepNeverCrashesAndLosesNothing) {
  // The acceptance sweep in miniature: 8 seeds of a broad fault mix over
  // the full pipeline. Every run must finish with OK status and balanced
  // books — frames delivered == frames queried + frames dropped. CI shards
  // extra seed ranges by exporting VDRIFT_FAULT_SEED as the base.
  fault::FaultPlan plan =
      fault::FaultPlan::Parse(
          "corrupt_frame:p=0.02;nan_frame:p=0.02;drop_frame:p=0.02;"
          "dup_frame:p=0.02;stall:p=0.005,ms=1;selector_fail:p=0.3;"
          "io_fail:p=0.1;annotator_deadline:p=0.2;annotator_error:p=0.1")
          .ValueOrDie();
  uint64_t base_seed = 0;
  if (const char* env = std::getenv("VDRIFT_FAULT_SEED")) {
    base_seed = std::strtoull(env, nullptr, 10);
  }
  for (uint64_t seed = base_seed; seed < base_seed + 8; ++seed) {
    fault::FaultInjector injector(plan, seed);
    video::StreamGenerator inner = bench_->dataset.MakeStream();
    fault::FaultyStream stream(&inner, &injector);
    PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
    config.injector = &injector;
    DriftAwarePipeline pipeline(&bench_->registry,
                                bench_->calibration_samples, config);
    Result<PipelineMetrics> run = pipeline.Run(&stream);
    ASSERT_TRUE(run.ok()) << "seed " << seed << ": "
                          << run.status().ToString();
    const PipelineMetrics& metrics = run.value();
    EXPECT_EQ(metrics.frames, stream.position()) << "seed " << seed;
    EXPECT_EQ(
        metrics.Totals().count_total + metrics.degradation.frames_dropped,
        metrics.frames)
        << "seed " << seed << ": a frame fell through the books";
    EXPECT_EQ(static_cast<int64_t>(metrics.selections.size()),
              static_cast<int64_t>(metrics.drifts_detected))
        << "seed " << seed << ": a drift was handled without a decision";
  }
}

TEST_F(PipelineFixture, SamplerWindowsAreDeterministicAndCleanRunIsQuiet) {
  // A clean run with the sampler + default SLO watchdog armed: windows are
  // taken on the admitted-frame clock, their counter deltas sum exactly to
  // the final totals, and no alert fires.
  video::StreamGenerator stream = bench_->dataset.MakeStream();
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  config.obs.sample_interval_frames = 32;
  config.obs.slo_spec = "default";
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  PipelineMetrics metrics = pipeline.Run(&stream).ValueOrDie();
  ASSERT_NE(metrics.sampler, nullptr);
  ASSERT_NE(metrics.watchdog, nullptr);
  ASSERT_GE(metrics.sampler->windows_sampled(), metrics.frames / 32);
  std::vector<obs::MetricsWindow> windows = metrics.sampler->windows();
  ASSERT_FALSE(windows.empty());
  // Stream-time clock: window boundaries are admitted-frame counts.
  EXPECT_EQ(windows[0].end_time, 32.0);
  std::map<std::string, int64_t> delta_sums;
  std::map<std::string, int64_t> finals;
  for (const obs::MetricsWindow& w : windows) {
    for (const auto& [name, delta] : w.counter_deltas) {
      delta_sums[name] += delta;
    }
    for (const auto& [name, total] : w.counter_totals) {
      finals[name] = total;
    }
  }
  EXPECT_EQ(delta_sums, finals);
  EXPECT_EQ(finals.at("vdrift.pipeline.frames"), metrics.frames);
  EXPECT_EQ(metrics.watchdog->total_alerts(), 0)
      << metrics.watchdog->AlertsJson();
  EXPECT_TRUE(metrics.episodes->alerts().empty());

  // Same stream, same config: bit-identical window series.
  video::StreamGenerator again = bench_->dataset.MakeStream();
  DriftAwarePipeline rerun(&bench_->registry, bench_->calibration_samples,
                           config);
  PipelineMetrics second = rerun.Run(&again).ValueOrDie();
  std::vector<obs::MetricsWindow> rewindows = second.sampler->windows();
  ASSERT_EQ(rewindows.size(), windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(rewindows[i].end_time, windows[i].end_time);
    EXPECT_EQ(rewindows[i].counter_deltas, windows[i].counter_deltas);
    EXPECT_EQ(rewindows[i].gauges, windows[i].gauges);
  }
}

TEST_F(PipelineFixture, InjectedFaultsRaiseSloAlerts) {
  // The watchdog's reason to exist: a fault injection run must surface as
  // structured alerts — in the watchdog log, as labeled alert counters,
  // and as AlertMarks on the episode recorder.
  video::StreamGenerator inner = bench_->dataset.MakeStream();
  fault::FaultPlan plan =
      fault::FaultPlan::Parse("nan_frame:p=0.1;selector_fail:p=0.8")
          .ValueOrDie();
  fault::FaultInjector injector(plan, 2024);
  fault::FaultyStream stream(&inner, &injector);
  PipelineConfig config = BaseConfig(PipelineConfig::Selector::kMsbo);
  config.injector = &injector;
  config.obs.sample_interval_frames = 32;
  config.obs.slo_spec = "default";
  DriftAwarePipeline pipeline(&bench_->registry,
                              bench_->calibration_samples, config);
  Result<PipelineMetrics> run = pipeline.Run(&stream);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const PipelineMetrics& metrics = run.value();
  ASSERT_NE(metrics.watchdog, nullptr);
  ASSERT_GE(metrics.watchdog->total_alerts(), 1)
      << "injected faults raised no alerts";
  // Every alert is attributable to one of the injected fault kinds.
  std::vector<obs::AlertEvent> alerts = metrics.watchdog->alerts();
  for (const obs::AlertEvent& alert : alerts) {
    EXPECT_TRUE(alert.rule == "frame_drop_ratio" ||
                alert.rule == "selector_failures" ||
                alert.rule == "drift_oblivious")
        << "unexpected rule " << alert.rule << ": " << alert.message;
    // The labeled per-rule alert counter was bumped.
    EXPECT_GE(metrics.registry
                  ->GetCounter("vdrift.slo.alerts", {{"rule", alert.rule}})
                  .value(),
              1);
  }
  // The episode recorder holds matching marks at the firing frames.
  std::vector<obs::AlertMark> marks = metrics.episodes->alerts();
  ASSERT_EQ(marks.size(), alerts.size());
  for (size_t i = 0; i < marks.size(); ++i) {
    EXPECT_EQ(marks[i].rule, alerts[i].rule);
    EXPECT_EQ(marks[i].frame, static_cast<int64_t>(alerts[i].time));
  }
}

TEST(ProvisionTest, RejectsBadInput) {
  stats::Rng rng(1);
  ProvisionOptions options = DefaultProvisionOptions();
  EXPECT_FALSE(ProvisionModel("x", {}, options, &rng).ok());
  options.ensemble_size = 0;
  video::SceneSpec spec;
  std::vector<video::Frame> frames = video::GenerateFrames(spec, 4, 32, 2);
  EXPECT_FALSE(ProvisionModel("x", frames, options, &rng).ok());
}

TEST(ProvisionTest, MakeLabeledSampleSizesAndRange) {
  stats::Rng rng(2);
  video::SceneSpec spec;
  std::vector<video::Frame> frames = video::GenerateFrames(spec, 10, 32, 3);
  std::vector<select::LabeledFrame> sample =
      MakeLabeledSample(frames, 8, 25, &rng);
  ASSERT_EQ(sample.size(), 25u);
  for (const auto& lf : sample) {
    EXPECT_GE(lf.label, 0);
    EXPECT_LT(lf.label, 8);
  }
  EXPECT_TRUE(MakeLabeledSample({}, 8, 5, &rng).empty());
}

}  // namespace
}  // namespace vdrift::pipeline
