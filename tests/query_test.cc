// Tests for the query layer: count query, spatial query, accuracy tracker.

#include <memory>

#include <gtest/gtest.h>

#include "detect/annotator.h"
#include "query/query.h"
#include "video/frame.h"

namespace vdrift::query {
namespace {

// A classifier that always predicts a fixed class.
class ConstantClassifier : public nn::ProbabilisticClassifier {
 public:
  ConstantClassifier(int num_classes, int prediction)
      : num_classes_(num_classes), prediction_(prediction) {}
  std::vector<float> PredictProba(const tensor::Tensor&) override {
    std::vector<float> p(static_cast<size_t>(num_classes_), 0.0f);
    p[static_cast<size_t>(prediction_)] = 1.0f;
    return p;
  }
  int Predict(const tensor::Tensor&) override { return prediction_; }
  int num_classes() const override { return num_classes_; }

 private:
  int num_classes_;
  int prediction_;
};

video::Frame MakeFrame(int cars, bool bus_left) {
  video::Frame frame;
  frame.pixels = tensor::Tensor(tensor::Shape{1, 8, 8});
  for (int i = 0; i < cars; ++i) {
    video::ObjectTruth car;
    car.cls = video::ObjectClass::kCar;
    car.cx = 0.8f;
    frame.truth.objects.push_back(car);
  }
  if (bus_left) {
    video::ObjectTruth bus;
    bus.cls = video::ObjectClass::kBus;
    bus.cx = 0.1f;
    frame.truth.objects.push_back(bus);
  }
  return frame;
}

TEST(CountQueryTest, MatchesBucketedTruth) {
  // 7 cars -> bucket 7/3 = 2.
  CountQuery query(std::make_shared<ConstantClassifier>(8, 2));
  QueryResult result = query.Evaluate(MakeFrame(7, false));
  EXPECT_EQ(result.truth, 7 / detect::kCountBinWidth);
  EXPECT_EQ(result.predicted, 2);
  EXPECT_TRUE(result.correct);
}

TEST(CountQueryTest, MismatchDetected) {
  CountQuery query(std::make_shared<ConstantClassifier>(8, 5));
  QueryResult result = query.Evaluate(MakeFrame(2, false));
  EXPECT_FALSE(result.correct);
}

TEST(CountQueryTest, DeploySwapsModel) {
  CountQuery query(std::make_shared<ConstantClassifier>(8, 0));
  EXPECT_TRUE(query.Evaluate(MakeFrame(1, false)).correct);
  query.Deploy(std::make_shared<ConstantClassifier>(8, 7));
  EXPECT_FALSE(query.Evaluate(MakeFrame(1, false)).correct);
}

TEST(SpatialQueryTest, PredicateEvaluation) {
  SpatialQuery yes(std::make_shared<ConstantClassifier>(2, 1));
  EXPECT_TRUE(yes.Evaluate(MakeFrame(1, true)).correct);
  EXPECT_FALSE(yes.Evaluate(MakeFrame(1, false)).correct);
  SpatialQuery no(std::make_shared<ConstantClassifier>(2, 0));
  EXPECT_TRUE(no.Evaluate(MakeFrame(1, false)).correct);
}

TEST(SpatialQueryDeathTest, RejectsNonBinaryModel) {
  EXPECT_DEATH(SpatialQuery(std::make_shared<ConstantClassifier>(5, 0)),
               "binary");
}

TEST(AccuracyTrackerTest, ComputesAq) {
  AccuracyTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.Aq(), 0.0);
  tracker.Add(true);
  tracker.Add(true);
  tracker.Add(false);
  tracker.Add(true);
  EXPECT_EQ(tracker.total(), 4);
  EXPECT_EQ(tracker.correct(), 3);
  EXPECT_DOUBLE_EQ(tracker.Aq(), 0.75);
  QueryResult r;
  r.correct = false;
  tracker.Add(r);
  EXPECT_DOUBLE_EQ(tracker.Aq(), 0.6);
}

}  // namespace
}  // namespace vdrift::query
