// Tests for the sampling profiler (obs/profiler.h): samples are collected
// under CPU load and attributed to the live span/kernel context, folded
// output parses as flamegraph input, aggregation merges identical stacks,
// and — the dispatch-cost contract — a never-started profiler takes
// exactly zero samples.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/timer.h"
#include "obs/trace_log.h"

namespace vdrift::obs {
namespace {

// Spins real CPU work (ITIMER_PROF counts CPU time, not wall time) inside
// a span/kernel context until the profiler has at least `want` samples or
// the time budget runs out.
double BurnCpuUntilSampled(SamplingProfiler& profiler, int want,
                           double budget_seconds) {
  volatile double sink = 0.0;
  double start = MonotonicSeconds();
  while (MonotonicSeconds() - start < budget_seconds &&
         profiler.total_samples() < want) {
    TraceSpan span(&obs::Global(), "profiler_test_span");
    VDRIFT_OP_PROBE("test", "spin", 1000, 0);
    for (int i = 0; i < 200000; ++i) {
      sink = sink + static_cast<double>(i) * 1e-9;
    }
  }
  return sink;
}

// Folded lines are "frame(;frame)* count": non-empty stack, positive
// integer count, exactly one separating space from the right.
void ExpectFoldedParses(const std::string& folded) {
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string stack = line.substr(0, space);
    std::string count = line.substr(space + 1);
    EXPECT_FALSE(stack.empty()) << line;
    EXPECT_FALSE(stack.front() == ';' || stack.back() == ';') << line;
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_GT(std::stoll(count), 0) << line;
  }
}

TEST(SamplingProfilerTest, NeverStartedTakesZeroSamples) {
  SamplingProfiler& profiler = SamplingProfiler::Instance();
  ASSERT_FALSE(profiler.running());
  // Heavy CPU with live spans/ops: still nothing may be sampled, because
  // no timer is armed (the "exactly zero when disabled" contract).
  volatile double sink = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    TraceSpan span(&obs::Global(), "unprofiled_span");
    for (int i = 0; i < 100000; ++i) sink = sink + 1e-9;
  }
  EXPECT_EQ(profiler.total_samples(), 0);
  EXPECT_TRUE(profiler.Drain().empty());
  // Unarmed push is refused, so callers never pop unbalanced.
  EXPECT_FALSE(ProfilerArmed());
  EXPECT_FALSE(ProfilePushFrame("nope"));
}

TEST(SamplingProfilerTest, CollectsAndAttributesSamplesUnderLoad) {
  SamplingProfiler& profiler = SamplingProfiler::Instance();
  SamplingProfiler::Options options;
  options.sample_hz = 997;  // fast sampling keeps the test short
  ASSERT_TRUE(profiler.Start(options).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_TRUE(ProfilerArmed());
  BurnCpuUntilSampled(profiler, /*want=*/5, /*budget_seconds=*/10.0);
  std::vector<SamplingProfiler::Sample> samples = profiler.Drain();
  EXPECT_FALSE(profiler.running()) << "Drain must stop a live profiler";
  ASSERT_FALSE(samples.empty());
  // Every sample carries a context; at least one landed inside the span
  // (and, nested deeper, the kernel op).
  bool saw_span = false;
  bool saw_kernel = false;
  for (const SamplingProfiler::Sample& sample : samples) {
    EXPECT_FALSE(sample.stack.empty());
    EXPECT_GE(sample.tid, 1);
    if (sample.stack.find("profiler_test_span") != std::string::npos) {
      saw_span = true;
    }
    if (sample.stack == "profiler_test_span;test.spin") saw_kernel = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_kernel);
}

TEST(SamplingProfilerTest, DrainedFoldedOutputParses) {
  SamplingProfiler& profiler = SamplingProfiler::Instance();
  ASSERT_TRUE(profiler.Start().ok());
  BurnCpuUntilSampled(profiler, /*want=*/3, /*budget_seconds=*/10.0);
  std::string folded = profiler.DrainFolded();
  ASSERT_FALSE(folded.empty());
  ExpectFoldedParses(folded);
}

TEST(SamplingProfilerTest, FoldedAggregatesAndSortsStacks) {
  std::vector<SamplingProfiler::Sample> samples;
  samples.push_back({"main;detect", 1, 30});
  samples.push_back({"main;track", 1, 10});
  samples.push_back({"main;detect", 2, 20});
  samples.push_back({"main;detect", 1, 40});
  EXPECT_EQ(SamplingProfiler::Folded(samples),
            "main;detect 3\nmain;track 1\n");
  EXPECT_EQ(SamplingProfiler::Folded({}), "");
}

TEST(SamplingProfilerTest, WriteFoldedWritesEvenWhenEmpty) {
  SamplingProfiler& profiler = SamplingProfiler::Instance();
  profiler.Stop();
  profiler.Drain();  // discard anything a previous test buffered
  std::string path = ::testing::TempDir() + "/vdrift_profile_empty.folded";
  ASSERT_TRUE(profiler.WriteFolded(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_TRUE(contents.empty());
}

TEST(SamplingProfilerTest, RejectsNonsenseOptions) {
  SamplingProfiler& profiler = SamplingProfiler::Instance();
  SamplingProfiler::Options options;
  options.sample_hz = 0;
  EXPECT_FALSE(profiler.Start(options).ok());
  options.sample_hz = 199;
  options.per_thread_capacity = 0;
  EXPECT_FALSE(profiler.Start(options).ok());
  EXPECT_FALSE(profiler.running());
}

TEST(SamplingProfilerTest, RestartResetsBuffers) {
  SamplingProfiler& profiler = SamplingProfiler::Instance();
  ASSERT_TRUE(profiler.Start().ok());
  BurnCpuUntilSampled(profiler, /*want=*/2, /*budget_seconds=*/10.0);
  profiler.Stop();
  ASSERT_TRUE(profiler.Start().ok());  // restart: buffers reset
  profiler.Stop();
  EXPECT_EQ(profiler.total_samples(), 0);
  EXPECT_TRUE(profiler.Drain().empty());
}

}  // namespace
}  // namespace vdrift::obs
