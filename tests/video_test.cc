// Tests for the synthetic video substrate: frame truth predicates, the
// renderer's response to scene parameters, stream generation and drift
// points, the slow-drift stream, and the dataset factories (including the
// Table 5 object-count statistics).

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "stats/ks_test.h"
#include "stats/moments.h"
#include "stats/rng.h"
#include "tensor/ops.h"
#include "video/datasets.h"
#include "video/frame.h"
#include "video/frame_stats.h"
#include "video/renderer.h"
#include "video/scene.h"
#include "video/stream.h"

namespace vdrift::video {
namespace {

using stats::Rng;

ObjectTruth MakeObject(ObjectClass cls, float cx) {
  ObjectTruth o;
  o.cls = cls;
  o.cx = cx;
  o.cy = 0.5f;
  o.w = 0.1f;
  o.h = 0.05f;
  return o;
}

TEST(FrameTruthTest, Counts) {
  FrameTruth truth;
  truth.objects = {MakeObject(ObjectClass::kCar, 0.2f),
                   MakeObject(ObjectClass::kBus, 0.5f),
                   MakeObject(ObjectClass::kCar, 0.8f)};
  EXPECT_EQ(truth.CarCount(), 2);
  EXPECT_EQ(truth.BusCount(), 1);
}

TEST(FrameTruthTest, BusLeftOfCarPredicate) {
  FrameTruth truth;
  truth.objects = {MakeObject(ObjectClass::kBus, 0.3f),
                   MakeObject(ObjectClass::kCar, 0.7f)};
  EXPECT_TRUE(truth.BusLeftOfCar());
  truth.objects = {MakeObject(ObjectClass::kBus, 0.9f),
                   MakeObject(ObjectClass::kCar, 0.1f)};
  EXPECT_FALSE(truth.BusLeftOfCar());
  truth.objects = {MakeObject(ObjectClass::kCar, 0.1f)};
  EXPECT_FALSE(truth.BusLeftOfCar());
  truth.objects.clear();
  EXPECT_TRUE(truth.objects.empty());
  EXPECT_FALSE(truth.BusLeftOfCar());
}

TEST(RendererTest, PixelRangeAndShape) {
  Renderer renderer(32);
  Rng rng(1);
  SceneSpec spec;
  Frame f = renderer.Render(spec, &rng);
  EXPECT_EQ(f.pixels.shape(), (tensor::Shape{1, 32, 32}));
  for (int64_t i = 0; i < f.pixels.size(); ++i) {
    EXPECT_GE(f.pixels[i], 0.0f);
    EXPECT_LE(f.pixels[i], 1.0f);
  }
}

TEST(RendererTest, LuminanceControlsBrightness) {
  Renderer renderer(32);
  Rng rng1(2);
  Rng rng2(2);
  SceneSpec day;
  day.base_luminance = 0.7;
  SceneSpec night;
  night.base_luminance = 0.12;
  double day_mean = 0.0;
  double night_mean = 0.0;
  for (int i = 0; i < 20; ++i) {
    day_mean += tensor::Mean(renderer.Render(day, &rng1).pixels);
    night_mean += tensor::Mean(renderer.Render(night, &rng2).pixels);
  }
  EXPECT_GT(day_mean, night_mean + 2.0);
}

TEST(RendererTest, ObjectsAreVisible) {
  // A frame with many objects should differ from an empty-road frame.
  Renderer renderer(32);
  Rng rng(3);
  SceneSpec busy;
  busy.object_rate_mean = 20.0;
  busy.object_rate_std = 0.1;
  SceneSpec empty;
  empty.object_rate_mean = 0.0;
  empty.object_rate_std = 0.0;
  Frame f_busy = renderer.Render(busy, &rng);
  Frame f_empty = renderer.Render(empty, &rng);
  EXPECT_GT(f_busy.truth.objects.size(), 10u);
  EXPECT_TRUE(f_empty.truth.objects.empty());
  double diff = 0.0;
  for (int64_t i = 0; i < f_busy.pixels.size(); ++i) {
    diff += std::abs(f_busy.pixels[i] - f_empty.pixels[i]);
  }
  EXPECT_GT(diff / static_cast<double>(f_busy.pixels.size()), 0.01);
}

TEST(RendererTest, TruthGeometryInBounds) {
  Renderer renderer(32);
  Rng rng(4);
  SceneSpec spec;
  spec.object_rate_mean = 15.0;
  for (int i = 0; i < 20; ++i) {
    Frame f = renderer.Render(spec, &rng);
    for (const ObjectTruth& o : f.truth.objects) {
      EXPECT_GE(o.cx, 0.0f);
      EXPECT_LE(o.cx, 1.0f);
      EXPECT_GE(o.cy, 0.0f);
      EXPECT_LE(o.cy, 1.0f);
      EXPECT_GT(o.w, 0.0f);
      EXPECT_GT(o.h, 0.0f);
    }
  }
}

TEST(RendererTest, ViewpointShiftMovesObjects) {
  // The same generation seed with a shifted viewpoint should displace mean
  // object position by roughly the shift.
  Renderer renderer(32);
  SceneSpec base;
  base.object_rate_mean = 12.0;
  SceneSpec shifted = base;
  shifted.angle_shift_x = 0.2;
  stats::RunningMoments mx_base;
  stats::RunningMoments mx_shift;
  Rng rng1(5);
  Rng rng2(5);
  for (int i = 0; i < 50; ++i) {
    for (const ObjectTruth& o : renderer.Render(base, &rng1).truth.objects) {
      mx_base.Add(o.cx);
    }
    for (const ObjectTruth& o :
         renderer.Render(shifted, &rng2).truth.objects) {
      mx_shift.Add(o.cx);
    }
  }
  EXPECT_GT(mx_shift.mean(), mx_base.mean() + 0.08);
}

TEST(RendererTest, WeatherOverlaysChangePixels) {
  Renderer renderer(32);
  SceneSpec clear;
  clear.noise_sigma = 0.0;
  clear.object_rate_mean = 0.0;
  clear.object_rate_std = 0.0;
  SceneSpec foggy = clear;
  foggy.weather = Weather::kFog;
  foggy.weather_intensity = 0.8;
  Rng rng1(6);
  Rng rng2(6);
  Frame a = renderer.Render(clear, &rng1);
  Frame b = renderer.Render(foggy, &rng2);
  // Fog washes pixels toward 0.75.
  double mean_clear = tensor::Mean(a.pixels);
  double mean_fog = tensor::Mean(b.pixels);
  EXPECT_GT(mean_fog, mean_clear);
}

TEST(LerpSpecTest, EndpointsAndMidpoint) {
  SceneSpec a;
  a.base_luminance = 0.6;
  SceneSpec b;
  b.base_luminance = 0.2;
  EXPECT_DOUBLE_EQ(LerpSpec(a, b, 0.0).base_luminance, 0.6);
  EXPECT_DOUBLE_EQ(LerpSpec(a, b, 1.0).base_luminance, 0.2);
  EXPECT_NEAR(LerpSpec(a, b, 0.5).base_luminance, 0.4, 1e-12);
  // Out-of-range t is clamped.
  EXPECT_DOUBLE_EQ(LerpSpec(a, b, -3.0).base_luminance, 0.6);
  EXPECT_DOUBLE_EQ(LerpSpec(a, b, 7.0).base_luminance, 0.2);
}

TEST(StreamGeneratorTest, LengthsAndDriftPoints) {
  SceneSpec a;
  a.name = "A";
  SceneSpec b;
  b.name = "B";
  StreamGenerator stream({{a, 10}, {b, 5}}, 16, 7);
  EXPECT_EQ(stream.total_frames(), 15);
  ASSERT_EQ(stream.drift_points().size(), 1u);
  EXPECT_EQ(stream.drift_points()[0], 10);
  Frame f;
  int count = 0;
  std::vector<int> seq_ids;
  while (stream.Next(&f)) {
    EXPECT_EQ(f.truth.frame_index, count);
    seq_ids.push_back(f.truth.sequence_id);
    ++count;
  }
  EXPECT_EQ(count, 15);
  EXPECT_EQ(seq_ids[9], 0);
  EXPECT_EQ(seq_ids[10], 1);
}

TEST(StreamGeneratorTest, ResetReplaysIdentically) {
  SceneSpec a;
  StreamGenerator stream({{a, 6}}, 16, 8);
  Frame f1;
  std::vector<float> first;
  while (stream.Next(&f1)) first.push_back(f1.pixels[0]);
  stream.Reset();
  Frame f2;
  size_t i = 0;
  while (stream.Next(&f2)) {
    EXPECT_FLOAT_EQ(f2.pixels[0], first[i]);
    ++i;
  }
  EXPECT_EQ(i, first.size());
}

TEST(SlowDriftStreamTest, MixRampsAcrossTransition) {
  SlowDriftStream stream(TokyoDaySpec(), TokyoNightSpec(), 100, 0.5, 16, 9);
  EXPECT_DOUBLE_EQ(stream.MixAt(0), 0.0);
  EXPECT_DOUBLE_EQ(stream.MixAt(99), 1.0);
  EXPECT_NEAR(stream.MixAt(49), 0.5, 0.02);
  EXPECT_EQ(stream.nominal_drift_point(), 50);
}

TEST(SlowDriftStreamTest, BrightnessDecreasesOverStream) {
  SlowDriftStream stream(TokyoDaySpec(), TokyoNightSpec(), 60, 0.8, 32, 10);
  Frame f;
  double first10 = 0.0;
  double last10 = 0.0;
  int idx = 0;
  while (stream.Next(&f)) {
    double m = tensor::Mean(f.pixels);
    if (idx < 10) first10 += m;
    if (idx >= 50) last10 += m;
    ++idx;
  }
  EXPECT_GT(first10, last10 + 0.5);
}

TEST(SlowDriftStreamTest, SequenceIdFlipsAtMidpoint) {
  SlowDriftStream stream(TokyoDaySpec(), TokyoNightSpec(), 40, 0.5, 16, 11);
  Frame f;
  while (stream.Next(&f)) {
    if (f.truth.frame_index < 19) EXPECT_EQ(f.truth.sequence_id, 0);
    if (f.truth.frame_index > 21) EXPECT_EQ(f.truth.sequence_id, 1);
  }
}

TEST(DatasetTest, BddStructure) {
  SyntheticDataset ds = MakeBddSynthetic(0.05);
  EXPECT_EQ(ds.name, "BDD");
  ASSERT_EQ(ds.segments.size(), 4u);
  std::vector<std::string> names = ds.SequenceNames();
  EXPECT_EQ(names[0], "Day");
  EXPECT_EQ(names[1], "Night");
  EXPECT_EQ(names[2], "Rain");
  EXPECT_EQ(names[3], "Snow");
  EXPECT_EQ(ds.total_frames(), 4 * 1000);
}

TEST(DatasetTest, DetracAndTokyoStructure) {
  EXPECT_EQ(MakeDetracSynthetic(0.1).segments.size(), 5u);
  EXPECT_EQ(MakeTokyoSynthetic(0.1).segments.size(), 3u);
  EXPECT_EQ(MakeDetracSynthetic(0.1).total_frames(), 5 * 600);
  EXPECT_EQ(MakeTokyoSynthetic(0.1).total_frames(), 3 * 1500);
}

TEST(DatasetTest, SpecOfFindsSequences) {
  SyntheticDataset ds = MakeBddSynthetic(0.05);
  EXPECT_EQ(ds.SpecOf("Night").name, "Night");
  EXPECT_LT(ds.SpecOf("Night").base_luminance,
            ds.SpecOf("Day").base_luminance);
}

TEST(DatasetTest, ScaleNeverDropsBelowMinimum) {
  SyntheticDataset tiny = MakeBddSynthetic(1e-9);
  for (const Segment& s : tiny.segments) EXPECT_GE(s.length, 64);
}

// Table 5 fidelity: the generated object-per-frame statistics should land
// near the paper's reported mean/std for each dataset.
struct DatasetStatCase {
  const char* name;
  double mean;
  double std;
};

class DatasetStats : public ::testing::TestWithParam<DatasetStatCase> {};

TEST_P(DatasetStats, ObjectCountsMatchTable5) {
  DatasetStatCase c = GetParam();
  SyntheticDataset ds;
  if (std::string(c.name) == "BDD") {
    ds = MakeBddSynthetic(0.01);
  } else if (std::string(c.name) == "Detrac") {
    ds = MakeDetracSynthetic(0.05);
  } else {
    ds = MakeTokyoSynthetic(0.02);
  }
  StreamGenerator stream = ds.MakeStream();
  Frame f;
  stats::RunningMoments m;
  while (stream.Next(&f)) {
    m.Add(static_cast<double>(f.truth.objects.size()));
  }
  // Rendering clips off-screen objects, so realized counts sit slightly
  // below the nominal rate; allow a generous band.
  EXPECT_NEAR(m.mean(), c.mean, 0.30 * c.mean) << ds.name;
  EXPECT_NEAR(m.stddev(), c.std, 0.45 * c.std) << ds.name;
}

INSTANTIATE_TEST_SUITE_P(Table5, DatasetStats,
                         ::testing::Values(DatasetStatCase{"BDD", 9.2, 6.4},
                                           DatasetStatCase{"Detrac", 17.2,
                                                           7.1},
                                           DatasetStatCase{"Tokyo", 19.2,
                                                           4.7}));

// Distribution-shift property: per-frame mean brightness distributions of
// different BDD sequences must be statistically distinguishable (KS), and
// frames within one sequence must not be.
TEST(DatasetDriftTest, SequencesAreDistinguishableWithinBdd) {
  SyntheticDataset ds = MakeBddSynthetic(0.01);
  auto brightness = [&](const std::string& seq, uint64_t seed) {
    std::vector<Frame> frames =
        GenerateFrames(ds.SpecOf(seq), 80, ds.image_size, seed);
    std::vector<double> values;
    for (const Frame& f : frames) values.push_back(tensor::Mean(f.pixels));
    return values;
  };
  std::vector<double> day1 = brightness("Day", 1);
  std::vector<double> day2 = brightness("Day", 2);
  std::vector<double> night = brightness("Night", 3);
  EXPECT_GT(stats::TwoSampleKs(day1, day2).p_value, 0.01)
      << "same-sequence frames flagged as different";
  EXPECT_LT(stats::TwoSampleKs(day1, night).p_value, 1e-6)
      << "Day and Night frames not distinguishable";
}

TEST(DatasetDriftTest, TokyoAngle1And3AreClose) {
  // The Tokyo dataset is configured so angles 1 and 3 overlap: their
  // visual statistics (the full photometric stats vector, not just mean
  // brightness) must be much closer to each other than to angle 2.
  SyntheticDataset ds = MakeTokyoSynthetic(0.01);
  auto stats_of = [&](const std::string& seq, uint64_t seed) {
    std::vector<Frame> frames =
        GenerateFrames(ds.SpecOf(seq), 60, ds.image_size, seed);
    std::vector<double> mean(static_cast<size_t>(kNumFrameStats), 0.0);
    for (const Frame& f : frames) {
      std::vector<float> s = GlobalFrameStats(f.pixels);
      for (size_t i = 0; i < mean.size(); ++i) {
        mean[i] += s[i] / static_cast<double>(frames.size());
      }
    }
    return mean;
  };
  std::vector<double> a1 = stats_of("Angle 1", 1);
  std::vector<double> a2 = stats_of("Angle 2", 2);
  std::vector<double> a3 = stats_of("Angle 3", 3);
  auto dist = [](const std::vector<double>& x, const std::vector<double>& y) {
    double d = 0.0;
    for (size_t i = 0; i < x.size(); ++i) d += (x[i] - y[i]) * (x[i] - y[i]);
    return std::sqrt(d);
  };
  EXPECT_LT(dist(a1, a3), dist(a1, a2));
}

TEST(GenerateFramesTest, CountAndDeterminism) {
  SceneSpec spec;
  std::vector<Frame> a = GenerateFrames(spec, 5, 16, 42);
  std::vector<Frame> b = GenerateFrames(spec, 5, 16, 42);
  ASSERT_EQ(a.size(), 5u);
  for (size_t i = 0; i < a.size(); ++i) {
    for (int64_t j = 0; j < a[i].pixels.size(); ++j) {
      ASSERT_FLOAT_EQ(a[i].pixels[j], b[i].pixels[j]);
    }
  }
}

TEST(PixelsOfTest, ExtractsTensors) {
  SceneSpec spec;
  std::vector<Frame> frames = GenerateFrames(spec, 3, 16, 1);
  std::vector<tensor::Tensor> pixels = PixelsOf(frames);
  ASSERT_EQ(pixels.size(), 3u);
  EXPECT_EQ(pixels[0].shape(), (tensor::Shape{1, 16, 16}));
}

}  // namespace
}  // namespace vdrift::video
