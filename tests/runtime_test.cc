// Tests for the parallel runtime: pool lifecycle, work-sharing loops,
// nested-region safety, exception propagation out of workers, and the
// determinism contract — parallel kernel/VAE results are bit-identical
// to VDRIFT_THREADS=1.

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "stats/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "vae/trainer.h"
#include "vae/vae.h"

namespace vdrift::runtime {
namespace {

using stats::Rng;
using tensor::Shape;
using tensor::Tensor;

Tensor RandomTensor(Shape shape, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->NextGaussian());
  }
  return t;
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

TEST(ThreadPoolTest, StartsLazilyAndShutsDown) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  EXPECT_FALSE(pool.started());
  std::atomic<int> chunks{0};
  pool.Run(8, [&](int64_t) { chunks.fetch_add(1); });
  EXPECT_EQ(chunks.load(), 8);
  EXPECT_TRUE(pool.started());
  pool.Shutdown();
  EXPECT_FALSE(pool.started());
  // A shut-down pool restarts on the next Run.
  chunks.store(0);
  pool.Run(3, [&](int64_t) { chunks.fetch_add(1); });
  EXPECT_EQ(chunks.load(), 3);
  EXPECT_TRUE(pool.started());
  pool.Shutdown();
  EXPECT_FALSE(pool.started());
}

TEST(ThreadPoolTest, SerialPoolNeverSpawns) {
  ThreadPool pool(1);
  std::atomic<int> chunks{0};
  pool.Run(5, [&](int64_t) { chunks.fetch_add(1); });
  EXPECT_EQ(chunks.load(), 5);
  EXPECT_FALSE(pool.started());
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.threads(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedThreads threads(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, 7, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  ScopedThreads threads(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Single chunk runs inline on the caller.
  ParallelFor(0, 3, 8, [&](int64_t begin, int64_t end) {
    ++calls;
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 3);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, NestedRegionsRunInlineWithoutDeadlock) {
  ScopedThreads threads(4);
  constexpr int64_t kRows = 16;
  constexpr int64_t kCols = 64;
  std::vector<int> cells(kRows * kCols, 0);
  ParallelFor(0, kRows, 1, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t r = row_begin; r < row_end; ++r) {
      EXPECT_TRUE(ThreadPool::InTask());
      // Nested loop must execute inline on this thread, not re-enter
      // the pool (which would deadlock a fully-busy pool).
      ParallelFor(0, kCols, 4, [&](int64_t col_begin, int64_t col_end) {
        for (int64_t c = col_begin; c < col_end; ++c) {
          ++cells[static_cast<size_t>(r * kCols + c)];
        }
      });
    }
  });
  for (int v : cells) EXPECT_EQ(v, 1);
}

TEST(ParallelForTest, PropagatesExceptionsFromWorkers) {
  ScopedThreads threads(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](int64_t begin, int64_t) {
                    if (begin == 42) {
                      throw std::runtime_error("chunk 42 failed");
                    }
                  }),
      std::runtime_error);
  // The pool survives a failed task and keeps executing.
  std::atomic<int> ok{0};
  ParallelFor(0, 10, 1, [&](int64_t, int64_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ParallelReduceTest, MatchesSerialFoldBitForBit) {
  Rng rng(21);
  std::vector<double> values(100000);
  for (double& v : values) v = rng.NextGaussian();
  auto sum_with = [&](int threads) {
    ScopedThreads scope(threads);
    return ParallelReduce<double>(
        0, static_cast<int64_t>(values.size()), 1 << 10, 0.0,
        [&](int64_t begin, int64_t end) {
          double s = 0.0;
          for (int64_t i = begin; i < end; ++i) {
            s += values[static_cast<size_t>(i)];
          }
          return s;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  double serial = sum_with(1);
  for (int threads : {2, 4, 8}) {
    double parallel = sum_with(threads);
    EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
        << "threads=" << threads;
  }
}

TEST(DeterminismTest, MatmulBitIdenticalAcrossThreadCounts) {
  Rng rng(22);
  Tensor a = RandomTensor(Shape{37, 29}, &rng);
  Tensor b = RandomTensor(Shape{29, 41}, &rng);
  Tensor at = tensor::Transpose2D(a);
  Tensor bt = tensor::Transpose2D(b);
  ScopedThreads serial_scope(1);
  Tensor serial = tensor::Matmul(a, b);
  Tensor serial_ta = tensor::MatmulTransposedA(at, b);
  Tensor serial_tb = tensor::MatmulTransposedB(a, bt);
  Tensor serial_sum_src = RandomTensor(Shape{100000}, &rng);
  double serial_sum = tensor::Sum(serial_sum_src);
  for (int threads : {2, 4, 8}) {
    ScopedThreads scope(threads);
    EXPECT_TRUE(BitIdentical(tensor::Matmul(a, b), serial))
        << "threads=" << threads;
    EXPECT_TRUE(BitIdentical(tensor::MatmulTransposedA(at, b), serial_ta))
        << "threads=" << threads;
    EXPECT_TRUE(BitIdentical(tensor::MatmulTransposedB(a, bt), serial_tb))
        << "threads=" << threads;
    double parallel_sum = tensor::Sum(serial_sum_src);
    EXPECT_EQ(std::memcmp(&serial_sum, &parallel_sum, sizeof(double)), 0)
        << "threads=" << threads;
  }
}

struct ConvRun {
  Tensor forward;
  Tensor grad_input;
  Tensor weight_grad;
  Tensor bias_grad;
};

ConvRun RunConv(int threads) {
  ScopedThreads scope(threads);
  Rng rng(23);
  nn::Conv2d conv(3, 8, 3, 2, 1, &rng);
  Tensor input = RandomTensor(Shape{4, 3, 16, 16}, &rng);
  ConvRun run;
  run.forward = conv.Forward(input);
  Tensor grad_out(run.forward.shape(), 0.5f);
  run.grad_input = conv.Backward(grad_out);
  run.weight_grad = conv.Params()[0]->grad;
  run.bias_grad = conv.Params()[1]->grad;
  return run;
}

TEST(DeterminismTest, Conv2dForwardBackwardBitIdentical) {
  ConvRun serial = RunConv(1);
  for (int threads : {2, 4}) {
    ConvRun parallel = RunConv(threads);
    EXPECT_TRUE(BitIdentical(parallel.forward, serial.forward))
        << "threads=" << threads;
    EXPECT_TRUE(BitIdentical(parallel.grad_input, serial.grad_input))
        << "threads=" << threads;
    EXPECT_TRUE(BitIdentical(parallel.weight_grad, serial.weight_grad))
        << "threads=" << threads;
    EXPECT_TRUE(BitIdentical(parallel.bias_grad, serial.bias_grad))
        << "threads=" << threads;
  }
}

struct VaeRun {
  std::vector<double> losses;
  std::vector<Tensor> params;
};

VaeRun RunVaeEpochs(int threads) {
  ScopedThreads scope(threads);
  Rng init_rng(24);
  vae::VaeConfig config;
  config.image_size = 16;
  config.latent_dim = 4;
  config.base_filters = 2;
  vae::Vae vae(config, &init_rng);
  Rng frame_rng(25);
  std::vector<Tensor> frames;
  for (int i = 0; i < 12; ++i) {
    Tensor f(Shape{1, 16, 16});
    for (int64_t j = 0; j < f.size(); ++j) {
      f[j] = 0.5f + 0.4f * static_cast<float>(frame_rng.NextGaussian());
    }
    frames.push_back(std::move(f));
  }
  vae::TrainerConfig trainer_config;
  trainer_config.epochs = 2;
  trainer_config.batch_size = 4;
  Rng train_rng(26);
  VaeRun run;
  run.losses = vae::VaeTrainer(trainer_config)
                   .Train(&vae, frames, &train_rng)
                   .ValueOrDie();
  for (nn::Parameter* p : vae.Params()) run.params.push_back(p->value);
  return run;
}

TEST(DeterminismTest, VaeEpochBitIdenticalAcrossThreadCounts) {
  VaeRun serial = RunVaeEpochs(1);
  VaeRun parallel = RunVaeEpochs(4);
  ASSERT_EQ(serial.losses.size(), parallel.losses.size());
  for (size_t i = 0; i < serial.losses.size(); ++i) {
    EXPECT_EQ(std::memcmp(&serial.losses[i], &parallel.losses[i],
                          sizeof(double)),
              0)
        << "epoch " << i;
  }
  ASSERT_EQ(serial.params.size(), parallel.params.size());
  for (size_t i = 0; i < serial.params.size(); ++i) {
    EXPECT_TRUE(BitIdentical(serial.params[i], parallel.params[i]))
        << "param " << i;
  }
}

}  // namespace
}  // namespace vdrift::runtime
