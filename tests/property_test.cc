// Cross-cutting property tests: parameterized sweeps over the invariants
// the paper's machinery rests on — betting-function validity for whole
// families of parameters, renderer monotonicity, martingale behaviour
// under null vs alternative, and metric accounting.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/betting.h"
#include "core/martingale.h"
#include "core/threshold.h"
#include "pipeline/pipeline.h"
#include "stats/moments.h"
#include "stats/rng.h"
#include "tensor/ops.h"
#include "video/renderer.h"
#include "video/scene.h"

namespace vdrift {
namespace {

using stats::Rng;

// --- Betting validity across the whole epsilon family. ---
// For every multiplicative bet, exp(Increment(p)) must integrate to ~1:
// this is what makes prod g(p_i) a martingale (paper Eq. 5-6).

class PowerBetValidity : public ::testing::TestWithParam<double> {};

TEST_P(PowerBetValidity, IntegratesToOne) {
  conformal::PowerLogBetting betting(GetParam(), 1e-7);
  double integral = 0.0;
  const int kSteps = 400000;
  for (int i = 0; i < kSteps; ++i) {
    double p = (i + 0.5) / kSteps;
    integral += std::exp(betting.Increment(p)) / kSteps;
  }
  EXPECT_NEAR(integral, 1.0, 0.02) << "epsilon=" << GetParam();
}

// epsilon below ~0.3 concentrates integrand mass under the numeric grid's
// resolution, so the sweep starts at 0.3.
INSTANTIATE_TEST_SUITE_P(Epsilons, PowerBetValidity,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

class SymmetricBetValidity : public ::testing::TestWithParam<double> {};

TEST_P(SymmetricBetValidity, IntegratesToOne) {
  conformal::SymmetricPowerLogBetting betting(GetParam(), 1e-7);
  double integral = 0.0;
  const int kSteps = 400000;
  for (int i = 0; i < kSteps; ++i) {
    double p = (i + 0.5) / kSteps;
    integral += std::exp(betting.Increment(p)) / kSteps;
  }
  EXPECT_NEAR(integral, 1.0, 0.02) << "epsilon=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Epsilons, SymmetricBetValidity,
                         ::testing::Values(0.4, 0.55, 0.7, 0.85));

TEST(SymmetricBetTest, SymmetricAroundHalf) {
  conformal::SymmetricPowerLogBetting betting;
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(betting.Increment(p), betting.Increment(1.0 - p), 1e-9);
  }
}

TEST(SymmetricBetTest, GrowsAtBothExtremes) {
  conformal::SymmetricPowerLogBetting betting;
  EXPECT_GT(betting.Increment(0.001), 1.0);
  EXPECT_GT(betting.Increment(0.999), 1.0);
  EXPECT_LT(betting.Increment(0.5), 0.0);
}

// --- Martingale power: detection latency shrinks as the drift gets
// stronger (p-values get smaller). ---

// A weak drift (moderate p-values) is *undetectable* at small W: the
// windowed rate test needs W * Increment(p) > tau. Each case pairs an
// effect size with a window large enough to make detection feasible, and
// the latency bound tightens as the drift strengthens.
struct PowerCase {
  double drifted_p;
  int window;
  int max_frames;
};

class MartingalePower : public ::testing::TestWithParam<PowerCase> {};

TEST_P(MartingalePower, LatencyScalesWithEffectSize) {
  PowerCase c = GetParam();
  auto betting = conformal::MakeDefaultBetting();
  conformal::ConformalMartingale martingale(betting.get(), c.window, 0.5);
  Rng rng(17);
  int frames = -1;
  for (int i = 0; i < 5000; ++i) {
    // p-values concentrated near `drifted_p` with small jitter.
    double p = std::clamp(c.drifted_p * (0.5 + rng.NextDouble()), 0.0, 1.0);
    if (martingale.Update(p)) {
      frames = i + 1;
      break;
    }
  }
  ASSERT_GT(frames, 0) << "martingale never fired at p~" << c.drifted_p
                       << " with W=" << c.window;
  EXPECT_LE(frames, c.max_frames);
}

TEST(MartingaleBlindSpotTest, ModeratePUndetectableAtSmallWindow) {
  // Documented limitation of the windowed test: at W=3, p ~ 0.05 can never
  // cross tau because 3 * Increment(0.05) < tau(3, 0.5).
  auto betting = conformal::MakeDefaultBetting();
  EXPECT_LT(3.0 * betting->Increment(0.05),
            conformal::Threshold(conformal::ThresholdPolicy::kPaper, 3, 0.5));
  conformal::ConformalMartingale martingale(betting.get(), 3, 0.5);
  Rng rng(18);
  for (int i = 0; i < 3000; ++i) {
    double p = std::clamp(0.05 * (0.5 + rng.NextDouble()), 0.0, 1.0);
    ASSERT_FALSE(martingale.Update(p)) << "fired at frame " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(EffectSizes, MartingalePower,
                         ::testing::Values(PowerCase{0.002, 3, 10},
                                           PowerCase{0.01, 12, 60},
                                           PowerCase{0.05, 200, 1500}));

// --- Threshold table sanity across a grid. ---

TEST(ThresholdGridTest, AllPositiveAndOrdered) {
  for (int w : {1, 2, 3, 5, 10, 50}) {
    for (double r : {0.05, 0.1, 0.25, 0.5, 0.75, 0.99}) {
      double paper = conformal::Threshold(
          conformal::ThresholdPolicy::kPaper, w, r);
      double hoeffding = conformal::Threshold(
          conformal::ThresholdPolicy::kHoeffding, w, r);
      EXPECT_GT(hoeffding, 0.0);
      EXPECT_GT(paper, hoeffding);
    }
  }
}

// --- Renderer monotonicity: mean brightness grows with base luminance.

class RendererLuminance : public ::testing::TestWithParam<double> {};

TEST_P(RendererLuminance, MeanTracksLuminance) {
  video::Renderer renderer(32);
  Rng rng(23);
  video::SceneSpec spec;
  spec.base_luminance = GetParam();
  spec.object_rate_mean = 5.0;
  stats::RunningMoments m;
  for (int i = 0; i < 20; ++i) {
    m.Add(tensor::Mean(renderer.Render(spec, &rng).pixels));
  }
  // Mean pixel value correlates with luminance: coarse monotone bounds.
  if (GetParam() <= 0.2) EXPECT_LT(m.mean(), 0.35);
  if (GetParam() >= 0.7) EXPECT_GT(m.mean(), 0.4);
}

INSTANTIATE_TEST_SUITE_P(Levels, RendererLuminance,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// Weather sweep: every overlay leaves pixels in [0,1] and preserves truth.
class RendererWeather : public ::testing::TestWithParam<video::Weather> {};

TEST_P(RendererWeather, PixelsBoundedTruthIntact) {
  video::Renderer renderer(32);
  Rng rng(29);
  video::SceneSpec spec;
  spec.weather = GetParam();
  spec.weather_intensity = 0.9;
  spec.object_rate_mean = 10.0;
  for (int i = 0; i < 10; ++i) {
    video::Frame f = renderer.Render(spec, &rng);
    for (int64_t j = 0; j < f.pixels.size(); ++j) {
      ASSERT_GE(f.pixels[j], 0.0f);
      ASSERT_LE(f.pixels[j], 1.0f);
    }
    for (const video::ObjectTruth& o : f.truth.objects) {
      ASSERT_GE(o.cx, 0.0f);
      ASSERT_LE(o.cx, 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Overlays, RendererWeather,
                         ::testing::Values(video::Weather::kClear,
                                           video::Weather::kRain,
                                           video::Weather::kSnow,
                                           video::Weather::kFog));

// --- Pipeline metric accounting. ---

TEST(PipelineMetricsTest, TotalsAggregatePerSequence) {
  pipeline::PipelineMetrics metrics;
  metrics.per_sequence[0].count_correct = 3;
  metrics.per_sequence[0].count_total = 4;
  metrics.per_sequence[0].invocations = 4;
  metrics.per_sequence[1].count_correct = 1;
  metrics.per_sequence[1].count_total = 6;
  metrics.per_sequence[1].invocations = 9;
  pipeline::SequenceAccuracy totals = metrics.Totals();
  EXPECT_EQ(totals.count_correct, 4);
  EXPECT_EQ(totals.count_total, 10);
  EXPECT_DOUBLE_EQ(totals.CountAq(), 0.4);
  EXPECT_DOUBLE_EQ(totals.InvocationsPerFrame(), 1.3);
}

TEST(PipelineMetricsTest, EmptyAccuracyIsZero) {
  pipeline::SequenceAccuracy acc;
  EXPECT_DOUBLE_EQ(acc.CountAq(), 0.0);
  EXPECT_DOUBLE_EQ(acc.PredicateAq(), 0.0);
  EXPECT_DOUBLE_EQ(acc.InvocationsPerFrame(), 0.0);
}

}  // namespace
}  // namespace vdrift
