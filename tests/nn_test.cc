// Tests for the neural-network stack. The load-bearing tests are the
// finite-difference gradient checks on every layer and loss, plus
// end-to-end convergence tests (linear regression, XOR, a small conv net).

#include <cmath>
#include <functional>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "nn/init.h"
#include "nn/layer.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "stats/moments.h"
#include "stats/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace vdrift::nn {
namespace {

using stats::Rng;
using tensor::Shape;
using tensor::Tensor;

Tensor RandomTensor(Shape shape, Rng* rng, double scale = 1.0) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->NextGaussian(0.0, scale));
  }
  return t;
}

// Scalar objective used by the gradient checks: sum of elementwise square
// of the layer output, i.e. L = sum(y^2), dL/dy = 2y.
double Objective(const Tensor& y) {
  double s = 0.0;
  for (int64_t i = 0; i < y.size(); ++i) {
    s += static_cast<double>(y[i]) * y[i];
  }
  return s;
}

Tensor ObjectiveGrad(const Tensor& y) {
  Tensor g = y;
  for (int64_t i = 0; i < g.size(); ++i) g[i] *= 2.0f;
  return g;
}

// Verifies analytic input- and parameter-gradients of `layer` against
// central finite differences on L = sum(Forward(x)^2).
void CheckLayerGradients(Layer* layer, const Tensor& input, float tol) {
  Tensor x = input;
  for (Parameter* p : layer->Params()) p->ZeroGrad();
  Tensor y = layer->Forward(x);
  Tensor grad_in = layer->Backward(ObjectiveGrad(y));
  ASSERT_EQ(grad_in.shape(), x.shape());

  const float eps = 1e-3f;
  // Input gradient.
  for (int64_t i = 0; i < x.size(); ++i) {
    Tensor xp = x;
    Tensor xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    double fp = Objective(layer->Forward(xp));
    double fm = Objective(layer->Forward(xm));
    double numeric = (fp - fm) / (2.0 * eps);
    ASSERT_NEAR(grad_in[i], numeric, tol)
        << layer->name() << " input grad at " << i;
  }
  // Parameter gradients.
  std::vector<Parameter*> params = layer->Params();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    for (int64_t i = 0; i < p->value.size(); ++i) {
      float saved = p->value[i];
      p->value[i] = saved + eps;
      double fp = Objective(layer->Forward(x));
      p->value[i] = saved - eps;
      double fm = Objective(layer->Forward(x));
      p->value[i] = saved;
      double numeric = (fp - fm) / (2.0 * eps);
      ASSERT_NEAR(p->grad[i], numeric, tol)
          << layer->name() << " param " << pi << " grad at " << i;
    }
  }
}

TEST(LinearTest, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear lin(2, 3, &rng);
  // Overwrite weights with known values: W = [[1,2],[3,4],[5,6]], b=[1,1,1].
  Parameter* w = lin.Params()[0];
  Parameter* b = lin.Params()[1];
  for (int i = 0; i < 6; ++i) w->value[i] = static_cast<float>(i + 1);
  b->value.Fill(1.0f);
  Tensor x(Shape{1, 2}, std::vector<float>{1.0f, 2.0f});
  Tensor y = lin.Forward(x);
  EXPECT_FLOAT_EQ(y.At2(0, 0), 1 * 1 + 2 * 2 + 1);
  EXPECT_FLOAT_EQ(y.At2(0, 1), 3 * 1 + 4 * 2 + 1);
  EXPECT_FLOAT_EQ(y.At2(0, 2), 5 * 1 + 6 * 2 + 1);
}

TEST(LinearTest, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Linear lin(4, 3, &rng);
  Tensor x = RandomTensor(Shape{2, 4}, &rng);
  CheckLayerGradients(&lin, x, 2e-2f);
}

TEST(Conv2dTest, KnownKernelForward) {
  Rng rng(3);
  Conv2d conv(1, 1, 2, 1, 0, &rng);
  // Kernel = all ones, bias = 0: output is the 2x2 box sum.
  conv.Params()[0]->value.Fill(1.0f);
  conv.Params()[1]->value.Fill(0.0f);
  Tensor x(Shape{1, 1, 3, 3},
           std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.At4(0, 0, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(y.At4(0, 0, 0, 1), 2 + 3 + 5 + 6);
  EXPECT_FLOAT_EQ(y.At4(0, 0, 1, 0), 4 + 5 + 7 + 8);
  EXPECT_FLOAT_EQ(y.At4(0, 0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(Conv2dTest, StrideAndPaddingShapes) {
  Rng rng(4);
  Conv2d conv(2, 5, 3, 2, 1, &rng);
  Tensor x = RandomTensor(Shape{3, 2, 8, 8}, &rng);
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 5, 4, 4}));
}

TEST(Conv2dTest, GradientsMatchFiniteDifferences) {
  Rng rng(5);
  Conv2d conv(2, 3, 3, 2, 1, &rng);
  Tensor x = RandomTensor(Shape{2, 2, 5, 5}, &rng, 0.5);
  CheckLayerGradients(&conv, x, 5e-2f);
}

// Kernel-probe attribution against the closed-form layer FLOP counts
// (deltas: the vdrift.ops.nn.* counters are process-wide).
TEST(LinearTest, ForwardAttributesFlops) {
  obs::MetricsRegistry& global = obs::Global();
  int64_t flops =
      global.GetCounter("vdrift.ops.nn.linear_forward.flops").value();
  int64_t calls =
      global.GetCounter("vdrift.ops.nn.linear_forward.calls").value();
  Rng rng(21);
  Linear lin(4, 5, &rng);
  Tensor x = RandomTensor(Shape{3, 4}, &rng);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 5}));
  EXPECT_EQ(global.GetCounter("vdrift.ops.nn.linear_forward.calls").value(),
            calls + 1);
  // GEMM (2 * 3 * 4 * 5) + bias add (3 * 5).
  EXPECT_EQ(global.GetCounter("vdrift.ops.nn.linear_forward.flops").value(),
            flops + 135);
}

TEST(Conv2dTest, ForwardAttributesFlops) {
  obs::MetricsRegistry& global = obs::Global();
  int64_t flops =
      global.GetCounter("vdrift.ops.nn.conv2d_forward.flops").value();
  Rng rng(22);
  Conv2d conv(2, 3, 3, 1, 1, &rng);
  Tensor x = RandomTensor(Shape{2, 2, 4, 4}, &rng);
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 4, 4}));
  // Per sample: GEMM 2 * out_c * (in_c * k * k) * (out_h * out_w)
  // = 2 * 3 * 18 * 16 = 1728, plus bias add 3 * 16 = 48; N = 2.
  EXPECT_EQ(global.GetCounter("vdrift.ops.nn.conv2d_forward.flops").value(),
            flops + 2 * (1728 + 48));
}

TEST(ReLUTest, ForwardAndGradient) {
  ReLU relu;
  Tensor x(Shape{1, 4}, std::vector<float>{-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  Tensor g(Shape{1, 4}, std::vector<float>{1.0f, 1.0f, 1.0f, 1.0f});
  Tensor gx = relu.Backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[2], 1.0f);
}

TEST(SigmoidTest, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  Sigmoid sig;
  Tensor x = RandomTensor(Shape{2, 5}, &rng);
  CheckLayerGradients(&sig, x, 1e-2f);
}

TEST(TanhTest, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  Tanh tanh_layer;
  Tensor x = RandomTensor(Shape{2, 5}, &rng);
  CheckLayerGradients(&tanh_layer, x, 1e-2f);
}

TEST(FlattenTest, RoundTrip) {
  Flatten flatten;
  Rng rng(8);
  Tensor x = RandomTensor(Shape{2, 3, 4, 4}, &rng);
  Tensor y = flatten.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  Tensor back = flatten.Backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  for (int64_t i = 0; i < x.size(); ++i) EXPECT_EQ(back[i], x[i]);
}

TEST(Upsample2xTest, ForwardValuesAndBackwardSums) {
  Upsample2x up;
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor y = up.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(y.At4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.At4(0, 0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.At4(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.At4(0, 0, 3, 3), 4.0f);
  Tensor g(Shape{1, 1, 4, 4}, 1.0f);
  Tensor gx = up.Backward(g);
  EXPECT_FLOAT_EQ(gx.At4(0, 0, 0, 0), 4.0f);
}

TEST(Upsample2xTest, GradientsMatchFiniteDifferences) {
  Rng rng(9);
  Upsample2x up;
  Tensor x = RandomTensor(Shape{1, 2, 3, 3}, &rng);
  CheckLayerGradients(&up, x, 1e-2f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(10);
  Tensor logits = RandomTensor(Shape{4, 6}, &rng, 3.0);
  Tensor p = Softmax(logits);
  for (int64_t i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_GT(p.At2(i, j), 0.0f);
      sum += p.At2(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  Tensor logits(Shape{1, 3}, std::vector<float>{1000.0f, 1001.0f, 999.0f});
  Tensor p = Softmax(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p.At2(0, 1), p.At2(0, 0));
}

TEST(CrossEntropyTest, PerfectPredictionHasLowLoss) {
  Tensor logits(Shape{2, 3},
                std::vector<float>{20.0f, 0.0f, 0.0f, 0.0f, 20.0f, 0.0f});
  LossResult r = SoftmaxCrossEntropy(logits, {0, 1});
  EXPECT_LT(r.loss, 1e-6);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifferences) {
  Rng rng(11);
  Tensor logits = RandomTensor(Shape{3, 4}, &rng);
  std::vector<int> labels{1, 3, 0};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits;
    Tensor lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    double numeric = (SoftmaxCrossEntropy(lp, labels).loss -
                      SoftmaxCrossEntropy(lm, labels).loss) /
                     (2.0 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-3);
  }
}

TEST(BceTest, MatchedDistributionsHaveMinimalLoss) {
  Tensor p(Shape{1, 4}, std::vector<float>{0.999f, 0.001f, 0.999f, 0.001f});
  Tensor t(Shape{1, 4}, std::vector<float>{1.0f, 0.0f, 1.0f, 0.0f});
  LossResult good = BinaryCrossEntropy(p, t);
  Tensor bad_p(Shape{1, 4}, std::vector<float>{0.5f, 0.5f, 0.5f, 0.5f});
  LossResult bad = BinaryCrossEntropy(bad_p, t);
  EXPECT_LT(good.loss, bad.loss);
}

TEST(BceTest, GradientMatchesFiniteDifferences) {
  Rng rng(12);
  Tensor p(Shape{2, 3});
  Tensor t(Shape{2, 3});
  for (int64_t i = 0; i < p.size(); ++i) {
    p[i] = 0.2f + 0.6f * rng.NextFloat();
    t[i] = rng.NextFloat() < 0.5f ? 0.0f : 1.0f;
  }
  LossResult r = BinaryCrossEntropy(p, t);
  const float eps = 1e-4f;
  for (int64_t i = 0; i < p.size(); ++i) {
    Tensor pp = p;
    Tensor pm = p;
    pp[i] += eps;
    pm[i] -= eps;
    double numeric = (BinaryCrossEntropy(pp, t).loss -
                      BinaryCrossEntropy(pm, t).loss) /
                     (2.0 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-2);
  }
}

TEST(MseTest, ValueAndGradient) {
  Tensor pred(Shape{1, 2}, std::vector<float>{1.0f, 3.0f});
  Tensor target(Shape{1, 2}, std::vector<float>{0.0f, 1.0f});
  LossResult r = MeanSquaredError(pred, target);
  EXPECT_NEAR(r.loss, (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(r.grad[0], 2.0f * 1.0f / 2.0f, 1e-6);
  EXPECT_NEAR(r.grad[1], 2.0f * 2.0f / 2.0f, 1e-6);
}

TEST(SgdTest, ConvergesOnLinearRegression) {
  Rng rng(13);
  Sequential net;
  net.Add<Linear>(1, 1, &rng);
  Sgd opt(net.Params(), 0.05f);
  // Fit y = 3x - 1.
  for (int step = 0; step < 500; ++step) {
    Tensor x(Shape{8, 1});
    Tensor y(Shape{8, 1});
    for (int i = 0; i < 8; ++i) {
      float xv = rng.NextFloat() * 2.0f - 1.0f;
      x[i] = xv;
      y[i] = 3.0f * xv - 1.0f;
    }
    opt.ZeroGrad();
    Tensor pred = net.Forward(x);
    LossResult r = MeanSquaredError(pred, y);
    net.Backward(r.grad);
    opt.Step();
  }
  Parameter* w = net.Params()[0];
  Parameter* b = net.Params()[1];
  EXPECT_NEAR(w->value[0], 3.0f, 0.05f);
  EXPECT_NEAR(b->value[0], -1.0f, 0.05f);
}

TEST(AdamTest, SolvesXor) {
  Rng rng(14);
  Sequential net;
  net.Add<Linear>(2, 8, &rng);
  net.Add<Tanh>();
  net.Add<Linear>(8, 2, &rng);
  Adam opt(net.Params(), 0.02f);
  const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<int> labels{0, 1, 1, 0};
  for (int step = 0; step < 400; ++step) {
    Tensor x(Shape{4, 2});
    for (int i = 0; i < 4; ++i) {
      x.At2(i, 0) = xs[i][0];
      x.At2(i, 1) = xs[i][1];
    }
    opt.ZeroGrad();
    Tensor logits = net.Forward(x);
    LossResult r = SoftmaxCrossEntropy(logits, labels);
    net.Backward(r.grad);
    opt.Step();
  }
  Tensor x(Shape{4, 2});
  for (int i = 0; i < 4; ++i) {
    x.At2(i, 0) = xs[i][0];
    x.At2(i, 1) = xs[i][1];
  }
  Tensor logits = net.Forward(x);
  for (int i = 0; i < 4; ++i) {
    int pred = logits.At2(i, 0) > logits.At2(i, 1) ? 0 : 1;
    EXPECT_EQ(pred, labels[static_cast<size_t>(i)]) << "sample " << i;
  }
}

TEST(AdamTest, ConvNetLearnsBrightVsDark) {
  // A 2-class toy image problem: bright-center vs dark-center 8x8 images.
  Rng rng(15);
  Sequential net;
  net.Add<Conv2d>(1, 4, 3, 2, 1, &rng);
  net.Add<ReLU>();
  net.Add<Flatten>();
  net.Add<Linear>(4 * 4 * 4, 2, &rng);
  Adam opt(net.Params(), 0.01f);
  auto make_batch = [&](int n, Tensor* x, std::vector<int>* labels) {
    *x = Tensor(Shape{n, 1, 8, 8});
    labels->clear();
    for (int i = 0; i < n; ++i) {
      int label = rng.NextBernoulli(0.5) ? 1 : 0;
      labels->push_back(label);
      for (int64_t h = 0; h < 8; ++h) {
        for (int64_t w = 0; w < 8; ++w) {
          float base = label == 1 && h >= 2 && h < 6 && w >= 2 && w < 6
                           ? 0.9f
                           : 0.1f;
          x->At4(i, 0, h, w) =
              std::clamp(base + 0.05f * static_cast<float>(rng.NextGaussian()),
                         0.0f, 1.0f);
        }
      }
    }
  };
  for (int step = 0; step < 120; ++step) {
    Tensor x;
    std::vector<int> labels;
    make_batch(16, &x, &labels);
    opt.ZeroGrad();
    Tensor logits = net.Forward(x);
    LossResult r = SoftmaxCrossEntropy(logits, labels);
    net.Backward(r.grad);
    opt.Step();
  }
  Tensor x;
  std::vector<int> labels;
  make_batch(64, &x, &labels);
  Tensor logits = net.Forward(x);
  int correct = 0;
  for (int i = 0; i < 64; ++i) {
    int pred = logits.At2(i, 0) > logits.At2(i, 1) ? 0 : 1;
    if (pred == labels[static_cast<size_t>(i)]) ++correct;
  }
  EXPECT_GE(correct, 58) << "conv net failed to learn a separable problem";
}

TEST(SequentialTest, ParamsAggregatesAllLayers) {
  Rng rng(16);
  Sequential net;
  net.Add<Linear>(3, 4, &rng);
  net.Add<ReLU>();
  net.Add<Linear>(4, 2, &rng);
  EXPECT_EQ(net.Params().size(), 4u);  // 2 weights + 2 biases
  EXPECT_EQ(net.NumParameters(), 3 * 4 + 4 + 4 * 2 + 2);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(17);
  Sequential a;
  a.Add<Linear>(3, 4, &rng);
  a.Add<ReLU>();
  a.Add<Linear>(4, 2, &rng);
  Sequential b;
  b.Add<Linear>(3, 4, &rng);
  b.Add<ReLU>();
  b.Add<Linear>(4, 2, &rng);
  std::stringstream stream;
  ASSERT_TRUE(SaveParameters(&a, &stream).ok());
  ASSERT_TRUE(LoadParameters(&b, &stream).ok());
  Tensor x = RandomTensor(Shape{2, 3}, &rng);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(SerializeTest, ConvNetRoundTrip) {
  Rng rng(170);
  auto build = [&]() {
    Sequential net;
    net.Add<Conv2d>(1, 4, 3, 2, 1, &rng);
    net.Add<ReLU>();
    net.Add<Conv2d>(4, 8, 3, 2, 1, &rng);
    net.Add<Flatten>();
    net.Add<Linear>(8 * 4 * 4, 3, &rng);
    return net;
  };
  Sequential a = build();
  Sequential b = build();
  std::stringstream stream;
  ASSERT_TRUE(SaveParameters(&a, &stream).ok());
  ASSERT_TRUE(LoadParameters(&b, &stream).ok());
  Tensor x = RandomTensor(Shape{2, 1, 16, 16}, &rng);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(SerializeTest, LoadRejectsMismatchedArchitecture) {
  Rng rng(18);
  Sequential a;
  a.Add<Linear>(3, 4, &rng);
  Sequential b;
  b.Add<Linear>(3, 5, &rng);
  std::stringstream stream;
  ASSERT_TRUE(SaveParameters(&a, &stream).ok());
  EXPECT_FALSE(LoadParameters(&b, &stream).ok());
}

TEST(SerializeTest, LoadRejectsGarbage) {
  Sequential a;
  std::stringstream stream;
  stream << "not a model";
  EXPECT_FALSE(LoadParameters(&a, &stream).ok());
}

TEST(CopyParametersTest, CopiesValues) {
  Rng rng(19);
  Sequential a;
  a.Add<Linear>(2, 2, &rng);
  Sequential b;
  b.Add<Linear>(2, 2, &rng);
  ASSERT_TRUE(CopyParameters(&a, &b).ok());
  Tensor x = RandomTensor(Shape{1, 2}, &rng);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(InitTest, HeInitVarianceScaled) {
  Rng rng(20);
  Tensor w(Shape{1000, 50});
  HeInit(&w, 50, &rng);
  stats::RunningMoments m;
  for (int64_t i = 0; i < w.size(); ++i) m.Add(w[i]);
  EXPECT_NEAR(m.mean(), 0.0, 0.01);
  EXPECT_NEAR(m.stddev(), std::sqrt(2.0 / 50.0), 0.01);
}

TEST(InitTest, XavierInitBounded) {
  Rng rng(21);
  Tensor w(Shape{100, 20});
  XavierInit(&w, 20, 100, &rng);
  double limit = std::sqrt(6.0 / 120.0);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w[i]), limit + 1e-6);
  }
}

}  // namespace
}  // namespace vdrift::nn
