// Tests for the model-selection layer: deep ensembles + Brier scoring,
// MSBO calibration and selection, MSBI elimination, and the registry.
// A three-distribution registry (Day / Night / Rain) is provisioned once
// per suite because training is the expensive part.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/ensemble.h"
#include "core/msbi.h"
#include "core/msbo.h"
#include "core/registry.h"
#include "detect/annotator.h"
#include "pipeline/provision.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace vdrift::select {
namespace {

using stats::Rng;

// --- Cheap fakes for unit-level ensemble tests. ---

class FakeClassifier : public nn::ProbabilisticClassifier {
 public:
  FakeClassifier(std::vector<float> proba) : proba_(std::move(proba)) {}
  std::vector<float> PredictProba(const tensor::Tensor&) override {
    return proba_;
  }
  int Predict(const tensor::Tensor& frame) override {
    std::vector<float> p = PredictProba(frame);
    return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
  }
  int num_classes() const override {
    return static_cast<int>(proba_.size());
  }

 private:
  std::vector<float> proba_;
};

tensor::Tensor DummyFrame() { return tensor::Tensor(tensor::Shape{1, 4, 4}); }

TEST(DeepEnsembleTest, RejectsBadMembers) {
  EXPECT_FALSE(DeepEnsemble::Make({}).ok());
  std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members;
  members.push_back(std::make_shared<FakeClassifier>(
      std::vector<float>{0.5f, 0.5f}));
  members.push_back(std::make_shared<FakeClassifier>(
      std::vector<float>{0.3f, 0.3f, 0.4f}));
  EXPECT_FALSE(DeepEnsemble::Make(std::move(members)).ok());
  std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> with_null;
  with_null.push_back(nullptr);
  EXPECT_FALSE(DeepEnsemble::Make(std::move(with_null)).ok());
}

TEST(DeepEnsembleTest, MixesUniformly) {
  std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members;
  members.push_back(std::make_shared<FakeClassifier>(
      std::vector<float>{1.0f, 0.0f}));
  members.push_back(std::make_shared<FakeClassifier>(
      std::vector<float>{0.0f, 1.0f}));
  DeepEnsemble ensemble = DeepEnsemble::Make(std::move(members)).ValueOrDie();
  std::vector<float> p = ensemble.PredictProba(DummyFrame());
  EXPECT_FLOAT_EQ(p[0], 0.5f);
  EXPECT_FLOAT_EQ(p[1], 0.5f);
  EXPECT_EQ(ensemble.size(), 2);
  EXPECT_EQ(ensemble.num_classes(), 2);
}

TEST(DeepEnsembleTest, BrierScoreKnownValues) {
  std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members;
  members.push_back(std::make_shared<FakeClassifier>(
      std::vector<float>{0.8f, 0.2f}));
  DeepEnsemble ensemble = DeepEnsemble::Make(std::move(members)).ValueOrDie();
  // label 0: ((1-0.8)^2 + (0-0.2)^2) / 2 = 0.04.
  EXPECT_NEAR(ensemble.BrierScore(DummyFrame(), 0), 0.04, 1e-6);
  // label 1: ((0-0.8)^2 + (1-0.2)^2) / 2 = 0.64.
  EXPECT_NEAR(ensemble.BrierScore(DummyFrame(), 1), 0.64, 1e-6);
}

TEST(DeepEnsembleTest, CertainCorrectPredictionScoresZero) {
  std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members;
  members.push_back(std::make_shared<FakeClassifier>(
      std::vector<float>{1.0f, 0.0f, 0.0f}));
  DeepEnsemble ensemble = DeepEnsemble::Make(std::move(members)).ValueOrDie();
  EXPECT_NEAR(ensemble.BrierScore(DummyFrame(), 0), 0.0, 1e-9);
}

TEST(DeepEnsembleTest, AverageBrierAveragesWindow) {
  std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members;
  members.push_back(std::make_shared<FakeClassifier>(
      std::vector<float>{0.8f, 0.2f}));
  DeepEnsemble ensemble = DeepEnsemble::Make(std::move(members)).ValueOrDie();
  std::vector<LabeledFrame> window{{DummyFrame(), 0}, {DummyFrame(), 1}};
  EXPECT_NEAR(ensemble.AverageBrier(window), (0.04 + 0.64) / 2.0, 1e-6);
}

TEST(RegistryTest, AddFindAccess) {
  ModelRegistry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.FindByName("x"), -1);
}

// --- Full-stack fixture: a provisioned 3-model registry. ---

class SelectionFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(2024);
    dataset_ = new video::SyntheticDataset(video::MakeBddSynthetic(0.01));
    registry_ = new ModelRegistry();
    pipeline::ProvisionOptions options =
        pipeline::DefaultProvisionOptions();
    options.profile.trainer.epochs = 18;
    options.classifier_train.epochs = 18;
    options.classifier_filters = 12;
    options.ensemble_size = 5;
    samples_ = new std::vector<std::vector<LabeledFrame>>();
    frames_ = new std::vector<std::vector<video::Frame>>();
    uint64_t seed = 100;
    for (const char* name : {"Day", "Night", "Rain"}) {
      std::vector<video::Frame> frames =
          video::GenerateFrames(dataset_->SpecOf(name), 260, 32, seed++);
      ModelEntry entry =
          pipeline::ProvisionModel(name, frames, options, rng_).ValueOrDie();
      registry_->Add(std::move(entry));
      samples_->push_back(pipeline::MakeLabeledSample(
          frames, options.count_classes, 24, rng_));
      frames_->push_back(std::move(frames));
    }
    calibration_ = new MsboCalibration(
        CalibrateMsbo(*registry_, *samples_).ValueOrDie());
  }

  static void TearDownTestSuite() {
    delete calibration_;
    delete frames_;
    delete samples_;
    delete registry_;
    delete dataset_;
    delete rng_;
  }

  static std::vector<LabeledFrame> LabeledWindow(const char* sequence,
                                                 int n, uint64_t seed) {
    std::vector<video::Frame> frames =
        video::GenerateFrames(dataset_->SpecOf(sequence), n, 32, seed);
    std::vector<LabeledFrame> window;
    for (const video::Frame& f : frames) {
      window.push_back({f.pixels, detect::CountLabel(f.truth, 8)});
    }
    return window;
  }

  static std::vector<tensor::Tensor> PixelWindow(const char* sequence, int n,
                                                 uint64_t seed) {
    return video::PixelsOf(
        video::GenerateFrames(dataset_->SpecOf(sequence), n, 32, seed));
  }

  static Rng* rng_;
  static video::SyntheticDataset* dataset_;
  static ModelRegistry* registry_;
  static std::vector<std::vector<LabeledFrame>>* samples_;
  static std::vector<std::vector<video::Frame>>* frames_;
  static MsboCalibration* calibration_;
};

Rng* SelectionFixture::rng_ = nullptr;
video::SyntheticDataset* SelectionFixture::dataset_ = nullptr;
ModelRegistry* SelectionFixture::registry_ = nullptr;
std::vector<std::vector<LabeledFrame>>* SelectionFixture::samples_ = nullptr;
std::vector<std::vector<video::Frame>>* SelectionFixture::frames_ = nullptr;
MsboCalibration* SelectionFixture::calibration_ = nullptr;

TEST_F(SelectionFixture, RegistryProvisioned) {
  ASSERT_EQ(registry_->size(), 3);
  EXPECT_EQ(registry_->FindByName("Night"), 1);
  for (const ModelEntry& entry : registry_->entries()) {
    EXPECT_NE(entry.profile, nullptr);
    EXPECT_NE(entry.ensemble, nullptr);
    EXPECT_NE(entry.count_model, nullptr);
    EXPECT_NE(entry.predicate_model, nullptr);
    EXPECT_EQ(entry.ensemble->size(), 5);
  }
}

TEST_F(SelectionFixture, CalibrationBaselinesArePositive) {
  for (int i = 0; i < registry_->size(); ++i) {
    EXPECT_GT(calibration_->pc_avg[static_cast<size_t>(i)], 0.0);
    EXPECT_GE(calibration_->sigma[static_cast<size_t>(i)], 0.0);
    // Foreign-data uncertainty should be clearly nonzero.
    EXPECT_GT(calibration_->pc_avg[static_cast<size_t>(i)], 0.02);
  }
}

TEST_F(SelectionFixture, EnsembleMoreCertainOnOwnDistribution) {
  // The core MSBO premise: ensemble i has a lower Brier on distribution i
  // than foreign ensembles do (Fig. 5's separation).
  std::vector<LabeledFrame> night = LabeledWindow("Night", 30, 500);
  double own = registry_->at(1).ensemble->AverageBrier(night);
  double day_on_night = registry_->at(0).ensemble->AverageBrier(night);
  double rain_on_night = registry_->at(2).ensemble->AverageBrier(night);
  EXPECT_LT(own, day_on_night);
  EXPECT_LT(own, rain_on_night);
}

TEST_F(SelectionFixture, MsboSelectsMatchingModel) {
  // MSBO margins on 10-frame windows carry some noise at this model
  // scale (EXPERIMENTS.md: 85/96 across all datasets), so each sequence
  // is tested over several windows and must win the clear majority.
  Msbo msbo(registry_, *calibration_, MsboConfig{});
  const int kTrials = 4;
  int total_correct = 0;
  int never_new = 0;
  for (int i = 0; i < registry_->size(); ++i) {
    for (int t = 0; t < kTrials; ++t) {
      Selection selection =
          msbo.Select(LabeledWindow(registry_->at(i).name.c_str(), 10,
                                    600 + static_cast<uint64_t>(10 * i + t)))
              .ValueOrDie();
      if (!selection.train_new_model) ++never_new;
      if (!selection.train_new_model && selection.model_index == i) {
        ++total_correct;
      }
      // Alg. 3: every frame scored by every ensemble member of every model.
      EXPECT_EQ(selection.invocations,
                10 * registry_->at(0).ensemble->size() * registry_->size());
      EXPECT_EQ(selection.frames_examined, 10);
    }
  }
  int total = kTrials * registry_->size();
  // Known distributions should rarely be flagged as novel and the
  // matching model must win the clear majority of windows overall —
  // matching the measured robustness of ~85-90% on 10-frame windows
  // (EXPERIMENTS.md, "Selection robustness").
  EXPECT_GE(never_new, total - 2);
  EXPECT_GE(total_correct, (total * 7) / 12)
      << "MSBO matched only " << total_correct << "/" << total;
}

TEST_F(SelectionFixture, MsboFlagsUnseenDistribution) {
  // Snow was never provisioned; MSBO must call for a new model.
  std::vector<video::Frame> snow =
      video::GenerateFrames(dataset_->SpecOf("Snow"), 10, 32, 700);
  std::vector<LabeledFrame> window;
  for (const video::Frame& f : snow) {
    window.push_back({f.pixels, detect::CountLabel(f.truth, 8)});
  }
  Msbo msbo(registry_, *calibration_, MsboConfig{});
  Selection selection = msbo.Select(window).ValueOrDie();
  EXPECT_TRUE(selection.train_new_model);
  EXPECT_EQ(selection.model_index, -1);
}

TEST_F(SelectionFixture, MsboRejectsEmptyWindow) {
  Msbo msbo(registry_, *calibration_, MsboConfig{});
  EXPECT_FALSE(msbo.Select({}).ok());
}

TEST_F(SelectionFixture, MsbiSelectsMatchingModel) {
  Msbi msbi(registry_, MsbiConfig{});
  for (int i = 0; i < registry_->size(); ++i) {
    const char* name = registry_->at(i).name.c_str();
    Selection selection =
        msbi.Select(PixelWindow(name, 10, 800 + static_cast<uint64_t>(i)))
            .ValueOrDie();
    EXPECT_FALSE(selection.train_new_model) << name;
    EXPECT_EQ(selection.model_index, i) << name;
  }
}

TEST_F(SelectionFixture, MsbiFlagsUnseenDistribution) {
  Msbi msbi(registry_, MsbiConfig{});
  Selection selection =
      msbi.Select(PixelWindow("Snow", 10, 900)).ValueOrDie();
  EXPECT_TRUE(selection.train_new_model);
}

TEST_F(SelectionFixture, MsbiRejectsEmptyWindow) {
  Msbi msbi(registry_, MsbiConfig{});
  EXPECT_FALSE(msbi.Select({}).ok());
}

TEST_F(SelectionFixture, MsboTradeoffFasterThanMsbi) {
  // §5.3: MSBO examines W_T frames with L ensemble members each; MSBI runs
  // a DI pass per model. Compare *invocation* bookkeeping rather than
  // wall-time (stable on any machine).
  Msbo msbo(registry_, *calibration_, MsboConfig{});
  Msbi msbi(registry_, MsbiConfig{});
  Selection so = msbo.Select(LabeledWindow("Day", 10, 1000)).ValueOrDie();
  Selection si = msbi.Select(PixelWindow("Day", 10, 1001)).ValueOrDie();
  EXPECT_GT(so.invocations, 0);
  EXPECT_GT(si.invocations, 0);
}

TEST_F(SelectionFixture, CalibrationRejectsMismatchedSamples) {
  std::vector<std::vector<LabeledFrame>> short_samples(2);
  EXPECT_FALSE(CalibrateMsbo(*registry_, short_samples).ok());
}

TEST(MsboEdgeTest, EmptyRegistrySignalsNewModel) {
  ModelRegistry registry;
  Msbo msbo(&registry, MsboCalibration{}, MsboConfig{});
  std::vector<LabeledFrame> window{{DummyFrame(), 0}};
  Selection selection = msbo.Select(window).ValueOrDie();
  EXPECT_TRUE(selection.train_new_model);
}

TEST(MsbiEdgeTest, EmptyRegistrySignalsNewModel) {
  ModelRegistry registry;
  Msbi msbi(&registry, MsbiConfig{});
  Selection selection =
      msbi.Select({tensor::Tensor(tensor::Shape{1, 4, 4})}).ValueOrDie();
  EXPECT_TRUE(selection.train_new_model);
}

}  // namespace
}  // namespace vdrift::select
