# Empty compiler generated dependencies file for model_zoo_selection.
# This may be replaced when dependencies are built.
