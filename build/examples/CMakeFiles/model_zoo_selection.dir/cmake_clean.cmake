file(REMOVE_RECURSE
  "CMakeFiles/model_zoo_selection.dir/model_zoo_selection.cpp.o"
  "CMakeFiles/model_zoo_selection.dir/model_zoo_selection.cpp.o.d"
  "model_zoo_selection"
  "model_zoo_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_zoo_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
