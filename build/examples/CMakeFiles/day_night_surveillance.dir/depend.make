# Empty dependencies file for day_night_surveillance.
# This may be replaced when dependencies are built.
