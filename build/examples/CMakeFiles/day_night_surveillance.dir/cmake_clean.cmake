file(REMOVE_RECURSE
  "CMakeFiles/day_night_surveillance.dir/day_night_surveillance.cpp.o"
  "CMakeFiles/day_night_surveillance.dir/day_night_surveillance.cpp.o.d"
  "day_night_surveillance"
  "day_night_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/day_night_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
