
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_brier_vs_accuracy.cc" "bench/CMakeFiles/bench_fig5_brier_vs_accuracy.dir/bench_fig5_brier_vs_accuracy.cc.o" "gcc" "bench/CMakeFiles/bench_fig5_brier_vs_accuracy.dir/bench_fig5_brier_vs_accuracy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchutil/CMakeFiles/vdrift_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/vdrift_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/vdrift_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vdrift_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vdrift_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/vdrift_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vdrift_video.dir/DependInfo.cmake"
  "/root/repo/build/src/vae/CMakeFiles/vdrift_vae.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/vdrift_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vdrift_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vdrift_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdrift_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
