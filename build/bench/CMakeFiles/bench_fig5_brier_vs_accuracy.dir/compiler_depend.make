# Empty compiler generated dependencies file for bench_fig5_brier_vs_accuracy.
# This may be replaced when dependencies are built.
