# Empty dependencies file for bench_table6_detection_time.
# This may be replaced when dependencies are built.
