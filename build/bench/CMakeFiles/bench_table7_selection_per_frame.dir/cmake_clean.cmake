file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_selection_per_frame.dir/bench_table7_selection_per_frame.cc.o"
  "CMakeFiles/bench_table7_selection_per_frame.dir/bench_table7_selection_per_frame.cc.o.d"
  "bench_table7_selection_per_frame"
  "bench_table7_selection_per_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_selection_per_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
