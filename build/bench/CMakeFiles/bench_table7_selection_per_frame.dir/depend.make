# Empty dependencies file for bench_table7_selection_per_frame.
# This may be replaced when dependencies are built.
