# Empty compiler generated dependencies file for bench_fig7_count_query.
# This may be replaced when dependencies are built.
