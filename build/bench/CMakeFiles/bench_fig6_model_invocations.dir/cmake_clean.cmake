file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_model_invocations.dir/bench_fig6_model_invocations.cc.o"
  "CMakeFiles/bench_fig6_model_invocations.dir/bench_fig6_model_invocations.cc.o.d"
  "bench_fig6_model_invocations"
  "bench_fig6_model_invocations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_model_invocations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
