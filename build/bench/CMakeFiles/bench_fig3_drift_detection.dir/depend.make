# Empty dependencies file for bench_fig3_drift_detection.
# This may be replaced when dependencies are built.
