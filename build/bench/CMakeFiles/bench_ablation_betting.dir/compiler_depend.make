# Empty compiler generated dependencies file for bench_ablation_betting.
# This may be replaced when dependencies are built.
