file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_betting.dir/bench_ablation_betting.cc.o"
  "CMakeFiles/bench_ablation_betting.dir/bench_ablation_betting.cc.o.d"
  "bench_ablation_betting"
  "bench_ablation_betting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_betting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
