# Empty dependencies file for bench_table8_selection_time.
# This may be replaced when dependencies are built.
