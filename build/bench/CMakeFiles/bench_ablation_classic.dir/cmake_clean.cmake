file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_classic.dir/bench_ablation_classic.cc.o"
  "CMakeFiles/bench_ablation_classic.dir/bench_ablation_classic.cc.o.d"
  "bench_ablation_classic"
  "bench_ablation_classic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_classic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
