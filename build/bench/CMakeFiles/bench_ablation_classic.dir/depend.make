# Empty dependencies file for bench_ablation_classic.
# This may be replaced when dependencies are built.
