# Empty dependencies file for bench_fig4_slow_drift.
# This may be replaced when dependencies are built.
