file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_slow_drift.dir/bench_fig4_slow_drift.cc.o"
  "CMakeFiles/bench_fig4_slow_drift.dir/bench_fig4_slow_drift.cc.o.d"
  "bench_fig4_slow_drift"
  "bench_fig4_slow_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_slow_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
