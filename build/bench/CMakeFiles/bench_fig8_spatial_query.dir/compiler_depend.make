# Empty compiler generated dependencies file for bench_fig8_spatial_query.
# This may be replaced when dependencies are built.
