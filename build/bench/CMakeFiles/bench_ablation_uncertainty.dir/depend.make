# Empty dependencies file for bench_ablation_uncertainty.
# This may be replaced when dependencies are built.
