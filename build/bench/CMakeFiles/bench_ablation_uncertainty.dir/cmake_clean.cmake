file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_uncertainty.dir/bench_ablation_uncertainty.cc.o"
  "CMakeFiles/bench_ablation_uncertainty.dir/bench_ablation_uncertainty.cc.o.d"
  "bench_ablation_uncertainty"
  "bench_ablation_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
