file(REMOVE_RECURSE
  "CMakeFiles/conformal_test.dir/conformal_test.cc.o"
  "CMakeFiles/conformal_test.dir/conformal_test.cc.o.d"
  "conformal_test"
  "conformal_test.pdb"
  "conformal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
