file(REMOVE_RECURSE
  "CMakeFiles/frame_stats_test.dir/frame_stats_test.cc.o"
  "CMakeFiles/frame_stats_test.dir/frame_stats_test.cc.o.d"
  "frame_stats_test"
  "frame_stats_test.pdb"
  "frame_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
