# Empty dependencies file for frame_stats_test.
# This may be replaced when dependencies are built.
