# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/vae_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/conformal_test[1]_include.cmake")
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/frame_stats_test[1]_include.cmake")
include("/root/repo/build/tests/benchutil_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/dropout_test[1]_include.cmake")
add_test(select_test "/root/repo/build/tests/select_test")
set_tests_properties(select_test PROPERTIES  TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;31;vdrift_add_suite_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pipeline_test "/root/repo/build/tests/pipeline_test")
set_tests_properties(pipeline_test PROPERTIES  TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;33;vdrift_add_suite_test;/root/repo/tests/CMakeLists.txt;0;")
