file(REMOVE_RECURSE
  "libvdrift_baseline.a"
)
