# Empty compiler generated dependencies file for vdrift_baseline.
# This may be replaced when dependencies are built.
