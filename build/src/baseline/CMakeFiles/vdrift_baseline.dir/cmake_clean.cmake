file(REMOVE_RECURSE
  "CMakeFiles/vdrift_baseline.dir/classic.cc.o"
  "CMakeFiles/vdrift_baseline.dir/classic.cc.o.d"
  "CMakeFiles/vdrift_baseline.dir/odin.cc.o"
  "CMakeFiles/vdrift_baseline.dir/odin.cc.o.d"
  "libvdrift_baseline.a"
  "libvdrift_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
