# Empty dependencies file for vdrift_pipeline.
# This may be replaced when dependencies are built.
