file(REMOVE_RECURSE
  "libvdrift_pipeline.a"
)
