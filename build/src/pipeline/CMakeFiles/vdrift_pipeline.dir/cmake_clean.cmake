file(REMOVE_RECURSE
  "CMakeFiles/vdrift_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/vdrift_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/vdrift_pipeline.dir/provision.cc.o"
  "CMakeFiles/vdrift_pipeline.dir/provision.cc.o.d"
  "libvdrift_pipeline.a"
  "libvdrift_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
