file(REMOVE_RECURSE
  "libvdrift_benchutil.a"
)
