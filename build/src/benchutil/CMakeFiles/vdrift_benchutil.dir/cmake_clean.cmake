file(REMOVE_RECURSE
  "CMakeFiles/vdrift_benchutil.dir/experiments.cc.o"
  "CMakeFiles/vdrift_benchutil.dir/experiments.cc.o.d"
  "CMakeFiles/vdrift_benchutil.dir/table.cc.o"
  "CMakeFiles/vdrift_benchutil.dir/table.cc.o.d"
  "CMakeFiles/vdrift_benchutil.dir/workbench.cc.o"
  "CMakeFiles/vdrift_benchutil.dir/workbench.cc.o.d"
  "libvdrift_benchutil.a"
  "libvdrift_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
