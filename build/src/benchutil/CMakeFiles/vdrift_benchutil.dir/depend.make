# Empty dependencies file for vdrift_benchutil.
# This may be replaced when dependencies are built.
