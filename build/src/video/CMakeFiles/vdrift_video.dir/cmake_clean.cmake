file(REMOVE_RECURSE
  "CMakeFiles/vdrift_video.dir/datasets.cc.o"
  "CMakeFiles/vdrift_video.dir/datasets.cc.o.d"
  "CMakeFiles/vdrift_video.dir/frame.cc.o"
  "CMakeFiles/vdrift_video.dir/frame.cc.o.d"
  "CMakeFiles/vdrift_video.dir/frame_stats.cc.o"
  "CMakeFiles/vdrift_video.dir/frame_stats.cc.o.d"
  "CMakeFiles/vdrift_video.dir/renderer.cc.o"
  "CMakeFiles/vdrift_video.dir/renderer.cc.o.d"
  "CMakeFiles/vdrift_video.dir/stream.cc.o"
  "CMakeFiles/vdrift_video.dir/stream.cc.o.d"
  "libvdrift_video.a"
  "libvdrift_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
