
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/datasets.cc" "src/video/CMakeFiles/vdrift_video.dir/datasets.cc.o" "gcc" "src/video/CMakeFiles/vdrift_video.dir/datasets.cc.o.d"
  "/root/repo/src/video/frame.cc" "src/video/CMakeFiles/vdrift_video.dir/frame.cc.o" "gcc" "src/video/CMakeFiles/vdrift_video.dir/frame.cc.o.d"
  "/root/repo/src/video/frame_stats.cc" "src/video/CMakeFiles/vdrift_video.dir/frame_stats.cc.o" "gcc" "src/video/CMakeFiles/vdrift_video.dir/frame_stats.cc.o.d"
  "/root/repo/src/video/renderer.cc" "src/video/CMakeFiles/vdrift_video.dir/renderer.cc.o" "gcc" "src/video/CMakeFiles/vdrift_video.dir/renderer.cc.o.d"
  "/root/repo/src/video/stream.cc" "src/video/CMakeFiles/vdrift_video.dir/stream.cc.o" "gcc" "src/video/CMakeFiles/vdrift_video.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/vdrift_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vdrift_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdrift_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
