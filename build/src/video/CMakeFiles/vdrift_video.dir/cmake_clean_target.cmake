file(REMOVE_RECURSE
  "libvdrift_video.a"
)
