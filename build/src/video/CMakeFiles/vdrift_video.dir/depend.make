# Empty dependencies file for vdrift_video.
# This may be replaced when dependencies are built.
