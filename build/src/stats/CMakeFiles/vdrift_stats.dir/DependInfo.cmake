
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/distance.cc" "src/stats/CMakeFiles/vdrift_stats.dir/distance.cc.o" "gcc" "src/stats/CMakeFiles/vdrift_stats.dir/distance.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/vdrift_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/vdrift_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/ks_test.cc" "src/stats/CMakeFiles/vdrift_stats.dir/ks_test.cc.o" "gcc" "src/stats/CMakeFiles/vdrift_stats.dir/ks_test.cc.o.d"
  "/root/repo/src/stats/moments.cc" "src/stats/CMakeFiles/vdrift_stats.dir/moments.cc.o" "gcc" "src/stats/CMakeFiles/vdrift_stats.dir/moments.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/stats/CMakeFiles/vdrift_stats.dir/rng.cc.o" "gcc" "src/stats/CMakeFiles/vdrift_stats.dir/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdrift_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
