# Empty compiler generated dependencies file for vdrift_stats.
# This may be replaced when dependencies are built.
