file(REMOVE_RECURSE
  "libvdrift_stats.a"
)
