file(REMOVE_RECURSE
  "CMakeFiles/vdrift_stats.dir/distance.cc.o"
  "CMakeFiles/vdrift_stats.dir/distance.cc.o.d"
  "CMakeFiles/vdrift_stats.dir/histogram.cc.o"
  "CMakeFiles/vdrift_stats.dir/histogram.cc.o.d"
  "CMakeFiles/vdrift_stats.dir/ks_test.cc.o"
  "CMakeFiles/vdrift_stats.dir/ks_test.cc.o.d"
  "CMakeFiles/vdrift_stats.dir/moments.cc.o"
  "CMakeFiles/vdrift_stats.dir/moments.cc.o.d"
  "CMakeFiles/vdrift_stats.dir/rng.cc.o"
  "CMakeFiles/vdrift_stats.dir/rng.cc.o.d"
  "libvdrift_stats.a"
  "libvdrift_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
