file(REMOVE_RECURSE
  "CMakeFiles/vdrift_detect.dir/annotator.cc.o"
  "CMakeFiles/vdrift_detect.dir/annotator.cc.o.d"
  "CMakeFiles/vdrift_detect.dir/detector.cc.o"
  "CMakeFiles/vdrift_detect.dir/detector.cc.o.d"
  "CMakeFiles/vdrift_detect.dir/image_classifier.cc.o"
  "CMakeFiles/vdrift_detect.dir/image_classifier.cc.o.d"
  "libvdrift_detect.a"
  "libvdrift_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
