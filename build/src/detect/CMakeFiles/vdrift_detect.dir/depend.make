# Empty dependencies file for vdrift_detect.
# This may be replaced when dependencies are built.
