
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/annotator.cc" "src/detect/CMakeFiles/vdrift_detect.dir/annotator.cc.o" "gcc" "src/detect/CMakeFiles/vdrift_detect.dir/annotator.cc.o.d"
  "/root/repo/src/detect/detector.cc" "src/detect/CMakeFiles/vdrift_detect.dir/detector.cc.o" "gcc" "src/detect/CMakeFiles/vdrift_detect.dir/detector.cc.o.d"
  "/root/repo/src/detect/image_classifier.cc" "src/detect/CMakeFiles/vdrift_detect.dir/image_classifier.cc.o" "gcc" "src/detect/CMakeFiles/vdrift_detect.dir/image_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/vdrift_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/vae/CMakeFiles/vdrift_vae.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vdrift_video.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vdrift_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vdrift_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdrift_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
