file(REMOVE_RECURSE
  "libvdrift_detect.a"
)
