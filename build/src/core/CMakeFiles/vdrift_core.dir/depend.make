# Empty dependencies file for vdrift_core.
# This may be replaced when dependencies are built.
