
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/betting.cc" "src/core/CMakeFiles/vdrift_core.dir/betting.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/betting.cc.o.d"
  "/root/repo/src/core/drift_inspector.cc" "src/core/CMakeFiles/vdrift_core.dir/drift_inspector.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/drift_inspector.cc.o.d"
  "/root/repo/src/core/ensemble.cc" "src/core/CMakeFiles/vdrift_core.dir/ensemble.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/ensemble.cc.o.d"
  "/root/repo/src/core/martingale.cc" "src/core/CMakeFiles/vdrift_core.dir/martingale.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/martingale.cc.o.d"
  "/root/repo/src/core/msbi.cc" "src/core/CMakeFiles/vdrift_core.dir/msbi.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/msbi.cc.o.d"
  "/root/repo/src/core/msbo.cc" "src/core/CMakeFiles/vdrift_core.dir/msbo.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/msbo.cc.o.d"
  "/root/repo/src/core/point_set.cc" "src/core/CMakeFiles/vdrift_core.dir/point_set.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/point_set.cc.o.d"
  "/root/repo/src/core/profile.cc" "src/core/CMakeFiles/vdrift_core.dir/profile.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/profile.cc.o.d"
  "/root/repo/src/core/pvalue.cc" "src/core/CMakeFiles/vdrift_core.dir/pvalue.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/pvalue.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/vdrift_core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/registry.cc.o.d"
  "/root/repo/src/core/threshold.cc" "src/core/CMakeFiles/vdrift_core.dir/threshold.cc.o" "gcc" "src/core/CMakeFiles/vdrift_core.dir/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vae/CMakeFiles/vdrift_vae.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/vdrift_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vdrift_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vdrift_video.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vdrift_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdrift_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
