file(REMOVE_RECURSE
  "libvdrift_core.a"
)
