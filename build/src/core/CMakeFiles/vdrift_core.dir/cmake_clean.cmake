file(REMOVE_RECURSE
  "CMakeFiles/vdrift_core.dir/betting.cc.o"
  "CMakeFiles/vdrift_core.dir/betting.cc.o.d"
  "CMakeFiles/vdrift_core.dir/drift_inspector.cc.o"
  "CMakeFiles/vdrift_core.dir/drift_inspector.cc.o.d"
  "CMakeFiles/vdrift_core.dir/ensemble.cc.o"
  "CMakeFiles/vdrift_core.dir/ensemble.cc.o.d"
  "CMakeFiles/vdrift_core.dir/martingale.cc.o"
  "CMakeFiles/vdrift_core.dir/martingale.cc.o.d"
  "CMakeFiles/vdrift_core.dir/msbi.cc.o"
  "CMakeFiles/vdrift_core.dir/msbi.cc.o.d"
  "CMakeFiles/vdrift_core.dir/msbo.cc.o"
  "CMakeFiles/vdrift_core.dir/msbo.cc.o.d"
  "CMakeFiles/vdrift_core.dir/point_set.cc.o"
  "CMakeFiles/vdrift_core.dir/point_set.cc.o.d"
  "CMakeFiles/vdrift_core.dir/profile.cc.o"
  "CMakeFiles/vdrift_core.dir/profile.cc.o.d"
  "CMakeFiles/vdrift_core.dir/pvalue.cc.o"
  "CMakeFiles/vdrift_core.dir/pvalue.cc.o.d"
  "CMakeFiles/vdrift_core.dir/registry.cc.o"
  "CMakeFiles/vdrift_core.dir/registry.cc.o.d"
  "CMakeFiles/vdrift_core.dir/threshold.cc.o"
  "CMakeFiles/vdrift_core.dir/threshold.cc.o.d"
  "libvdrift_core.a"
  "libvdrift_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
