file(REMOVE_RECURSE
  "CMakeFiles/vdrift_common.dir/logging.cc.o"
  "CMakeFiles/vdrift_common.dir/logging.cc.o.d"
  "CMakeFiles/vdrift_common.dir/status.cc.o"
  "CMakeFiles/vdrift_common.dir/status.cc.o.d"
  "libvdrift_common.a"
  "libvdrift_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
