# Empty dependencies file for vdrift_common.
# This may be replaced when dependencies are built.
