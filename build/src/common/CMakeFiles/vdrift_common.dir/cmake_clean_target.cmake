file(REMOVE_RECURSE
  "libvdrift_common.a"
)
