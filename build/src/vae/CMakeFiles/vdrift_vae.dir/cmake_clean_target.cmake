file(REMOVE_RECURSE
  "libvdrift_vae.a"
)
