file(REMOVE_RECURSE
  "CMakeFiles/vdrift_vae.dir/trainer.cc.o"
  "CMakeFiles/vdrift_vae.dir/trainer.cc.o.d"
  "CMakeFiles/vdrift_vae.dir/vae.cc.o"
  "CMakeFiles/vdrift_vae.dir/vae.cc.o.d"
  "libvdrift_vae.a"
  "libvdrift_vae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_vae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
