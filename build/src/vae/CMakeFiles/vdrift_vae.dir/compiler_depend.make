# Empty compiler generated dependencies file for vdrift_vae.
# This may be replaced when dependencies are built.
