file(REMOVE_RECURSE
  "CMakeFiles/vdrift_nn.dir/dropout.cc.o"
  "CMakeFiles/vdrift_nn.dir/dropout.cc.o.d"
  "CMakeFiles/vdrift_nn.dir/init.cc.o"
  "CMakeFiles/vdrift_nn.dir/init.cc.o.d"
  "CMakeFiles/vdrift_nn.dir/layers.cc.o"
  "CMakeFiles/vdrift_nn.dir/layers.cc.o.d"
  "CMakeFiles/vdrift_nn.dir/loss.cc.o"
  "CMakeFiles/vdrift_nn.dir/loss.cc.o.d"
  "CMakeFiles/vdrift_nn.dir/optimizer.cc.o"
  "CMakeFiles/vdrift_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/vdrift_nn.dir/sequential.cc.o"
  "CMakeFiles/vdrift_nn.dir/sequential.cc.o.d"
  "CMakeFiles/vdrift_nn.dir/serialize.cc.o"
  "CMakeFiles/vdrift_nn.dir/serialize.cc.o.d"
  "libvdrift_nn.a"
  "libvdrift_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
