# Empty dependencies file for vdrift_nn.
# This may be replaced when dependencies are built.
