file(REMOVE_RECURSE
  "libvdrift_nn.a"
)
