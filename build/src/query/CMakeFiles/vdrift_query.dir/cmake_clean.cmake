file(REMOVE_RECURSE
  "CMakeFiles/vdrift_query.dir/query.cc.o"
  "CMakeFiles/vdrift_query.dir/query.cc.o.d"
  "libvdrift_query.a"
  "libvdrift_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
