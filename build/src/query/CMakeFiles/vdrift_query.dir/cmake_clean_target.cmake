file(REMOVE_RECURSE
  "libvdrift_query.a"
)
