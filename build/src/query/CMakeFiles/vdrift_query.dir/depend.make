# Empty dependencies file for vdrift_query.
# This may be replaced when dependencies are built.
