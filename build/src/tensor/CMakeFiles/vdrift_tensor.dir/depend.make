# Empty dependencies file for vdrift_tensor.
# This may be replaced when dependencies are built.
