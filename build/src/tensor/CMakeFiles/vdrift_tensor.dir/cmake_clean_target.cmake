file(REMOVE_RECURSE
  "libvdrift_tensor.a"
)
