file(REMOVE_RECURSE
  "CMakeFiles/vdrift_tensor.dir/ops.cc.o"
  "CMakeFiles/vdrift_tensor.dir/ops.cc.o.d"
  "CMakeFiles/vdrift_tensor.dir/tensor.cc.o"
  "CMakeFiles/vdrift_tensor.dir/tensor.cc.o.d"
  "libvdrift_tensor.a"
  "libvdrift_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdrift_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
