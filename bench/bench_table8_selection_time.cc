// Table 8 — Model selection time performance (seconds).
//
// Total time spent choosing models over each dataset's stream: MSBO/MSBI
// run once per drift on a small window; ODIN-Select performs a per-frame
// cluster assignment for *every* frame. Paper: BDD 5.0 / 22.4 / 764.4,
// Detrac 8.3 / 19.6 / 446.8, Tokyo 4.6 / 13.4 / 656.1 — MS one order of
// magnitude faster overall. Absolute values differ at CPU scale; the
// orders-of-magnitude gap is the reproduced shape.
//
// Runs on the BenchHarness: VDRIFT_BENCH_{SMOKE,DATASET,SEED,JSON} steer
// the run and a BENCH_table8_selection_time.json report is written;
// VDRIFT_METRICS_JSON overrides the metrics report path.

#include <cstdio>
#include <string>
#include <vector>

#include "benchutil/bench_harness.h"
#include "benchutil/metrics_report.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "core/msbi.h"
#include "core/msbo.h"
#include "detect/annotator.h"
#include "baseline/odin.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "video/stream.h"

namespace {

struct PaperRow {
  const char* dataset;
  double msbo;
  double msbi;
  double odin;
};

constexpr PaperRow kPaper[] = {{"BDD", 5.015, 22.36, 764.4},
                               {"Detrac", 8.34, 19.57, 446.8},
                               {"Tokyo", 4.63, 13.44, 656.1}};

}  // namespace

int main() {
  using namespace vdrift;
  benchutil::Banner("Table 8: model selection time (s) per dataset");
  benchutil::BenchHarness harness("table8_selection_time");
  benchutil::WorkbenchOptions options = harness.MakeWorkbenchOptions();
  benchutil::Table table({"Dataset", "Models", "MSBO", "MSBI", "ODIN-Select",
                          "paper (MSBO/MSBI/ODIN)"});
  for (const PaperRow& paper : kPaper) {
    if (!harness.ShouldRunDataset(paper.dataset)) continue;
    auto bench =
        benchutil::BuildWorkbench(paper.dataset, options).ValueOrDie();
    int m = bench->registry.size();
    std::string prefix = paper.dataset;
    obs::Histogram& msbo_hist =
        harness.StageHistogram(prefix + ".msbo_select");
    obs::Histogram& msbi_hist =
        harness.StageHistogram(prefix + ".msbi_select");
    obs::Histogram& odin_hist =
        harness.StageHistogram(prefix + ".odin_frame");
    harness.SetPrimaryStage(prefix + ".odin_frame");

    // MSBO / MSBI: one selection per drift (m-1 drifts in the stream).
    select::Msbo msbo(&bench->registry, bench->calibration,
                      select::MsboConfig{});
    select::Msbi msbi(&bench->registry, select::MsbiConfig{});
    for (int target = 1; target < m; ++target) {
      std::vector<video::Frame> window = video::GenerateFrames(
          bench->dataset.segments[static_cast<size_t>(target)].spec, 10,
          bench->dataset.image_size, 8800 + static_cast<uint64_t>(target));
      std::vector<select::LabeledFrame> labeled;
      std::vector<tensor::Tensor> pixels;
      for (const video::Frame& f : window) {
        labeled.push_back({f.pixels, detect::CountLabel(f.truth, 8)});
        pixels.push_back(f.pixels);
      }
      {
        // Through the harness (not a bare ScopedTimer) so the run ledger
        // gets raw per-selection samples, not just histogram quantiles.
        const double t0 = obs::MonotonicSeconds();
        (void)msbo.Select(labeled).ValueOrDie();
        harness.RecordStageSeconds(prefix + ".msbo_select",
                                   obs::MonotonicSeconds() - t0);
      }
      {
        const double t0 = obs::MonotonicSeconds();
        (void)msbi.Select(pixels).ValueOrDie();
        harness.RecordStageSeconds(prefix + ".msbi_select",
                                   obs::MonotonicSeconds() - t0);
      }
    }
    double msbo_seconds = msbo_hist.sum();
    double msbi_seconds = msbi_hist.sum();

    // ODIN-Select: cluster assignment on every stream frame.
    const conformal::DistributionProfile& encoder =
        *bench->registry.at(0).profile;
    baseline::OdinDetect odin(
        baseline::OdinConfig{},
        static_cast<int>(
            encoder.Encode(bench->training_frames[0][0].pixels).size()));
    for (int i = 0; i < m; ++i) {
      std::vector<std::vector<float>> latents;
      for (const video::Frame& f :
           bench->training_frames[static_cast<size_t>(i)]) {
        latents.push_back(encoder.Encode(f.pixels));
      }
      odin.AddPermanentCluster(latents, i);
    }
    video::StreamGenerator stream = bench->dataset.MakeStream();
    video::Frame frame;
    while (stream.Next(&frame)) {
      const double t0 = obs::MonotonicSeconds();
      std::vector<float> z = encoder.Encode(frame.pixels);
      odin.Observe(z);
      harness.RecordStageSeconds(prefix + ".odin_frame",
                                 obs::MonotonicSeconds() - t0);
    }
    double odin_seconds = odin_hist.sum();

    char ref[96];
    std::snprintf(ref, sizeof(ref), "%.2f / %.2f / %.1f", paper.msbo,
                  paper.msbi, paper.odin);
    table.AddRow({paper.dataset, std::to_string(m),
                  benchutil::Fmt(msbo_seconds, 3),
                  benchutil::Fmt(msbi_seconds, 3),
                  benchutil::Fmt(odin_seconds, 3), ref});
  }
  table.Print();
  benchutil::PrintMetricsTable(obs::Global());
  benchutil::EmitMetricsJson(obs::Global(), nullptr, "metrics_table8.json");
  harness.WriteReport();
  return 0;
}
