// Ablation — betting functions and threshold policies (DESIGN.md §2).
//
// The paper derives both multiplicative (log) and additive (shifted-odd)
// martingales and leaves the concrete bet open. This bench compares the
// implemented families on (a) detection latency for the BDD Day->Night
// drift and (b) false alarms over a long stationary Day stream, under both
// the paper's threshold formula and the Hoeffding-Azuma one.

#include <cstdio>
#include <memory>
#include <vector>

#include "benchutil/experiments.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "core/betting.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  benchutil::Banner("Ablation: betting functions x threshold policies");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  auto bench = benchutil::BuildWorkbench("BDD", options).ValueOrDie();
  const conformal::DistributionProfile& day = *bench->registry.at(0).profile;
  std::vector<video::Frame> night = video::GenerateFrames(
      bench->dataset.segments[1].spec, 400, bench->dataset.image_size, 9100);
  std::vector<video::Frame> more_day = video::GenerateFrames(
      bench->dataset.segments[0].spec, 3000, bench->dataset.image_size, 9200);

  struct Case {
    const char* name;
    std::shared_ptr<const conformal::BettingFunction> betting;
    conformal::ThresholdPolicy policy;
    int window;
  };
  std::vector<Case> cases;
  cases.push_back({"symmetric-power eps=.55 / paper W=3",
                   std::make_shared<conformal::SymmetricPowerLogBetting>(),
                   conformal::ThresholdPolicy::kPaper, 3});
  cases.push_back({"symmetric-power eps=.55 / hoeffding W=3",
                   std::make_shared<conformal::SymmetricPowerLogBetting>(),
                   conformal::ThresholdPolicy::kHoeffding, 3});
  cases.push_back({"power eps=.7 / paper W=3",
                   std::make_shared<conformal::PowerLogBetting>(0.7, 5e-4),
                   conformal::ThresholdPolicy::kPaper, 3});
  cases.push_back({"mixture / paper W=3",
                   std::make_shared<conformal::MixtureLogBetting>(5e-4),
                   conformal::ThresholdPolicy::kPaper, 3});
  cases.push_back({"shifted-odd s=2 / paper W=12",
                   std::make_shared<conformal::ShiftedOddBetting>(2.0),
                   conformal::ThresholdPolicy::kPaper, 12});

  benchutil::Table table({"Betting / threshold", "frames to detect",
                          "false alarms / 3k frames"});
  for (const Case& c : cases) {
    conformal::DriftInspectorConfig config;
    config.betting = c.betting;
    config.threshold = c.policy;
    config.window = c.window;
    benchutil::LatencyResult latency =
        benchutil::MeasureDiLatency(day, night, config, 11);
    int alarms = benchutil::CountFalseAlarms(day, more_day, config, 12);
    table.AddRow({c.name,
                  latency.frames_to_detect < 0
                      ? std::string(">400")
                      : std::to_string(latency.frames_to_detect),
                  std::to_string(alarms)});
  }
  table.Print();
  std::printf("\nThe default (symmetric power, paper threshold, W=3) should "
              "detect within a few frames with zero false alarms.\n");
  return 0;
}
