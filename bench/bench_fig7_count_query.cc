// Figure 7 — Count-query accuracy A_q on BDD, Detrac, and Tokyo.
//
// A_q = fraction of frames where the deployed model's car-count prediction
// matches ground truth, reported per sequence for the five systems. Paper
// findings to reproduce: (DI,MSBO) and (DI,MSBI) beat ODIN by ~40% and
// YOLO by ~50%; Mask R-CNN is the annotation oracle, so its accuracy is
// 1.0 by construction.

#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "detect/detector.h"
#include "pipeline/pipeline.h"
#include "stats/rng.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  benchutil::Banner("Figure 7: count query accuracy A_q per sequence");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  for (const char* dataset : {"BDD", "Detrac", "Tokyo"}) {
    auto bench = benchutil::BuildWorkbench(dataset, options).ValueOrDie();

    pipeline::PipelineConfig msbo_config;
    msbo_config.selector = pipeline::PipelineConfig::Selector::kMsbo;
    msbo_config.allow_training_new = false;
    msbo_config.provision = options.provision;
    video::StreamGenerator s1 = bench->dataset.MakeStream();
    pipeline::DriftAwarePipeline msbo(&bench->registry,
                                      bench->calibration_samples,
                                      msbo_config);
    pipeline::PipelineMetrics m_msbo = msbo.Run(&s1).ValueOrDie();

    pipeline::PipelineConfig msbi_config = msbo_config;
    msbi_config.selector = pipeline::PipelineConfig::Selector::kMsbi;
    video::StreamGenerator s2 = bench->dataset.MakeStream();
    pipeline::DriftAwarePipeline msbi(&bench->registry,
                                      bench->calibration_samples,
                                      msbi_config);
    pipeline::PipelineMetrics m_msbi = msbi.Run(&s2).ValueOrDie();

    video::StreamGenerator s3 = bench->dataset.MakeStream();
    pipeline::OdinPipeline odin(&bench->registry, bench->training_frames,
                                pipeline::OdinPipeline::Config{});
    pipeline::PipelineMetrics m_odin = odin.Run(&s3).ValueOrDie();

    stats::Rng rng(505);
    detect::SimulatedDetector::Config det_config;
    detect::SimulatedDetector detector(det_config, &rng);
    detect::ClassifierTrainConfig tc;
    tc.epochs = 10;
    VDRIFT_CHECK_OK(detector.Train(bench->training_frames[0], tc, &rng));
    video::StreamGenerator s4 = bench->dataset.MakeStream();
    pipeline::PipelineMetrics m_yolo =
        pipeline::StaticDetectorPipeline::RunDetector(&detector, &s4, false)
            .ValueOrDie();

    video::StreamGenerator s5 = bench->dataset.MakeStream();
    pipeline::PipelineMetrics m_mask =
        pipeline::StaticDetectorPipeline::RunOracle(0, &s5).ValueOrDie();

    benchutil::Table table({"Sequence", "(DI,MSBO)", "(DI,MSBI)", "ODIN",
                            "YOLO", "MaskRCNN"});
    for (int seq = 0; seq < bench->registry.size(); ++seq) {
      table.AddRow({bench->registry.at(seq).name,
                    benchutil::Fmt(m_msbo.per_sequence[seq].CountAq(), 3),
                    benchutil::Fmt(m_msbi.per_sequence[seq].CountAq(), 3),
                    benchutil::Fmt(m_odin.per_sequence[seq].CountAq(), 3),
                    benchutil::Fmt(m_yolo.per_sequence[seq].CountAq(), 3),
                    benchutil::Fmt(m_mask.per_sequence[seq].CountAq(), 3)});
    }
    pipeline::SequenceAccuracy t_msbo = m_msbo.Totals();
    pipeline::SequenceAccuracy t_odin = m_odin.Totals();
    pipeline::SequenceAccuracy t_yolo = m_yolo.Totals();
    std::printf("\n[%s]\n", dataset);
    table.Print();
    std::printf("overall: MSBO %.3f vs ODIN %.3f vs YOLO %.3f "
                "(paper: MS ~+40%% over ODIN, ~+50%% over YOLO)\n",
                t_msbo.CountAq(), t_odin.CountAq(), t_yolo.CountAq());
  }
  return 0;
}
