// Table 6 — Drift detection time performance (seconds).
//
// Time to monitor the full stream for drifts: DI (VAE encode + K-NN score
// + p-value + martingale per frame) vs ODIN-Detect (VAE encode + per-
// cluster distance/band bookkeeping + KL check per frame). The detector is
// re-armed on the current sequence's profile after each detection, as in
// the paper's protocol where detection restarts once recovery completes —
// which also yields a drift-episode trace per detection.
// Paper: BDD 293.4 vs 636.2, Detrac 97.3 vs 235.8, Tokyo 194.8 vs 294 —
// DI at least ~2x faster. Absolute numbers differ on CPU; the ratio is
// the reproduced shape.
//
// Runs on the BenchHarness: VDRIFT_BENCH_{SMOKE,DATASET,SEED,JSON} steer
// the run and a BENCH_table6_detection_time.json report is written;
// VDRIFT_METRICS_JSON overrides the metrics report path. A drift-aware
// pipeline pass over the last dataset is appended when any of the deeper
// observability surfaces is armed:
//   - VDRIFT_TRACE_JSON: flight-recorder trace with the nested
//     detect/select/query stage spans around the tensor-op events,
//   - VDRIFT_SAMPLE_INTERVAL (+ VDRIFT_METRICS_JSONL / VDRIFT_SLO_SPEC):
//     windowed time-series sampling and the SLO health watchdog, whose
//     alerts land in the metrics report's "alerts" array,
//   - VDRIFT_FAULT_SPEC: the pass runs against a FaultyStream + injector,
//     so the watchdog can be proven to surface injected faults.
// VDRIFT_METRICS_OPENMETRICS additionally exports the global registry in
// the OpenMetrics text exposition format.

#include <cstdio>
#include <memory>
#include <string>

#include "benchutil/bench_harness.h"
#include "benchutil/metrics_report.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "core/drift_inspector.h"
#include "baseline/odin.h"
#include "fault/fault.h"
#include "fault/faulty_stream.h"
#include "obs/episode_trace.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace_log.h"
#include "pipeline/pipeline.h"
#include "video/stream.h"

namespace {

struct PaperRow {
  const char* dataset;
  double di;
  double odin;
};

constexpr PaperRow kPaper[] = {
    {"BDD", 293.4, 636.2}, {"Detrac", 97.3, 235.8}, {"Tokyo", 194.8, 294.0}};

}  // namespace

int main() {
  using namespace vdrift;
  benchutil::Banner("Table 6: drift detection time (s), DI vs ODIN-Detect");
  benchutil::BenchHarness harness("table6_detection_time");
  benchutil::WorkbenchOptions options = harness.MakeWorkbenchOptions();
  benchutil::Table table({"Dataset", "Drift Inspector", "ODIN-Detect",
                          "speedup", "paper (DI / ODIN)"});
  obs::EpisodeRecorder episodes;
  benchutil::Workbench* last_bench = nullptr;
  std::unique_ptr<benchutil::Workbench> kept_bench;
  for (const PaperRow& paper : kPaper) {
    if (!harness.ShouldRunDataset(paper.dataset)) continue;
    auto bench = benchutil::BuildWorkbench(paper.dataset, options)
                     .ValueOrDie();
    std::string prefix = paper.dataset;
    obs::Histogram& di_hist = harness.StageHistogram(prefix + ".di_frame");
    obs::Histogram& odin_hist =
        harness.StageHistogram(prefix + ".odin_frame");
    harness.SetPrimaryStage(prefix + ".di_frame");

    // --- DI over the whole stream, re-armed after each detection. ---
    video::StreamGenerator stream = bench->dataset.MakeStream();
    video::Frame frame;
    int current = 0;
    auto inspector = std::make_unique<conformal::DriftInspector>(
        bench->registry.at(0).profile.get(),
        conformal::DriftInspectorConfig{}, 7);
    inspector->set_recorder(&episodes);
    int detections = 0;
    while (stream.Next(&frame)) {
      current = frame.truth.sequence_id;
      conformal::DriftInspector::Observation observation;
      {
        // Through the harness (not a bare ScopedTimer) so the run ledger
        // gets raw per-frame samples, not just histogram quantiles.
        const double t0 = obs::MonotonicSeconds();
        observation = inspector->Observe(frame.pixels);
        harness.RecordStageSeconds(prefix + ".di_frame",
                                   obs::MonotonicSeconds() - t0);
      }
      if (observation.drift) {
        ++detections;
        // Recovery complete: restart detection against the distribution
        // the stream is now in, as the paper's protocol does.
        episodes.AnnotateDecision("table6." + prefix + ".rearm.seq" +
                                  std::to_string(current));
        inspector = std::make_unique<conformal::DriftInspector>(
            bench->registry.at(current).profile.get(),
            conformal::DriftInspectorConfig{},
            7 + static_cast<uint64_t>(detections));
        inspector->set_recorder(&episodes);
      }
    }
    double di_seconds = di_hist.sum();
    // One labeled series per dataset: same metric family, the dataset is a
    // dimension instead of being mangled into the name.
    obs::Global()
        .GetCounter("vdrift.di.detections", {{"dataset", prefix}})
        .Increment(detections);

    // --- ODIN-Detect over the whole stream (all clusters seeded). ---
    const conformal::DistributionProfile& encoder =
        *bench->registry.at(0).profile;
    baseline::OdinDetect odin(baseline::OdinConfig{},
                              static_cast<int>(
                                  encoder.Encode(bench->training_frames[0][0]
                                                     .pixels)
                                      .size()));
    for (int i = 0; i < bench->registry.size(); ++i) {
      std::vector<std::vector<float>> latents;
      for (const video::Frame& f :
           bench->training_frames[static_cast<size_t>(i)]) {
        latents.push_back(encoder.Encode(f.pixels));
      }
      odin.AddPermanentCluster(latents, i);
    }
    stream.Reset();
    while (stream.Next(&frame)) {
      const double t0 = obs::MonotonicSeconds();
      std::vector<float> z = encoder.Encode(frame.pixels);
      odin.Observe(z);
      harness.RecordStageSeconds(prefix + ".odin_frame",
                                 obs::MonotonicSeconds() - t0);
    }
    double odin_seconds = odin_hist.sum();

    char ref[64];
    std::snprintf(ref, sizeof(ref), "%.1f / %.1f", paper.di, paper.odin);
    table.AddRow({paper.dataset, benchutil::Fmt(di_seconds, 2),
                  benchutil::Fmt(odin_seconds, 2),
                  benchutil::Fmt(odin_seconds / di_seconds, 2) + "x", ref});
    kept_bench = std::move(bench);
    last_bench = kept_bench.get();
  }
  table.Print();

  // With any deeper observability surface armed, append one drift-aware
  // pipeline pass: the flight-recorder trace gets the nested pipeline
  // stage spans, the sampler gets a real windowed run to export, and the
  // SLO watchdog gets evaluated against it (with VDRIFT_FAULT_SPEC set,
  // against an injected-fault run). Last so the trace events survive any
  // ring wraparound from the long loops above.
  pipeline::PipelineObsOptions obs_options =
      pipeline::PipelineObsOptions::FromEnv();
  fault::FaultPlan fault_plan = fault::FaultPlan::FromEnv();
  std::shared_ptr<obs::HealthWatchdog> watchdog;
  bool pass_armed = obs::TraceLog::Instance().enabled() ||
                    obs_options.sample_interval_frames > 0 ||
                    !fault_plan.empty();
  if (last_bench != nullptr && pass_armed) {
    pipeline::PipelineConfig config;
    config.selector = pipeline::PipelineConfig::Selector::kMsbi;
    config.allow_training_new = false;
    config.provision = options.provision;
    config.obs = obs_options;
    fault::FaultInjector injector(fault_plan, harness.config().seed);
    if (!fault_plan.empty()) config.injector = &injector;
    video::StreamGenerator inner = last_bench->dataset.MakeStream();
    fault::FaultyStream faulty(&inner, &injector);
    video::FrameSource* stream =
        fault_plan.empty() ? static_cast<video::FrameSource*>(&inner)
                           : &faulty;
    pipeline::DriftAwarePipeline traced(&last_bench->registry,
                                        last_bench->calibration_samples,
                                        config);
    pipeline::PipelineMetrics run = traced.Run(stream).ValueOrDie();
    watchdog = run.watchdog;
    std::printf("pipeline pass: %lld frames", (long long)run.frames);
    if (run.sampler != nullptr) {
      std::printf(", %lld sampled window(s)",
                  (long long)run.sampler->windows_sampled());
    }
    if (run.watchdog != nullptr) {
      std::printf(", %lld SLO alert(s)",
                  (long long)run.watchdog->total_alerts());
    }
    std::printf("\n");
  }

  benchutil::PrintMetricsTable(obs::Global());
  benchutil::EmitMetricsJson(obs::Global(), &episodes, watchdog.get(),
                             "metrics_table6.json");
  benchutil::EmitOpenMetrics(obs::Global());
  harness.WriteReport();
  return 0;
}
