// Table 6 — Drift detection time performance (seconds).
//
// Time to monitor the full stream for drifts: DI (VAE encode + K-NN score
// + p-value + martingale per frame) vs ODIN-Detect (VAE encode + per-
// cluster distance/band bookkeeping + KL check per frame). The detector is
// re-armed on the current sequence's profile after each true drift, as in
// the paper's protocol where detection restarts once recovery completes.
// Paper: BDD 293.4 vs 636.2, Detrac 97.3 vs 235.8, Tokyo 194.8 vs 294 —
// DI at least ~2x faster. Absolute numbers differ on CPU; the ratio is
// the reproduced shape.

#include <chrono>
#include <cstdio>
#include <memory>

#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "core/drift_inspector.h"
#include "baseline/odin.h"
#include "video/stream.h"

namespace {
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct PaperRow {
  const char* dataset;
  double di;
  double odin;
};

constexpr PaperRow kPaper[] = {
    {"BDD", 293.4, 636.2}, {"Detrac", 97.3, 235.8}, {"Tokyo", 194.8, 294.0}};

}  // namespace

int main() {
  using namespace vdrift;
  benchutil::Banner("Table 6: drift detection time (s), DI vs ODIN-Detect");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  benchutil::Table table({"Dataset", "Drift Inspector", "ODIN-Detect",
                          "speedup", "paper (DI / ODIN)"});
  for (const PaperRow& paper : kPaper) {
    auto bench = benchutil::BuildWorkbench(paper.dataset, options)
                     .ValueOrDie();
    // --- DI over the whole stream, re-armed per sequence. ---
    video::StreamGenerator stream = bench->dataset.MakeStream();
    video::Frame frame;
    int current = 0;
    auto inspector = std::make_unique<conformal::DriftInspector>(
        bench->registry.at(0).profile.get(),
        conformal::DriftInspectorConfig{}, 7);
    Clock::time_point t0 = Clock::now();
    while (stream.Next(&frame)) {
      if (frame.truth.sequence_id != current) {
        current = frame.truth.sequence_id;
        inspector = std::make_unique<conformal::DriftInspector>(
            bench->registry.at(current).profile.get(),
            conformal::DriftInspectorConfig{},
            7 + static_cast<uint64_t>(current));
      }
      inspector->Observe(frame.pixels);
    }
    double di_seconds = Seconds(t0);

    // --- ODIN-Detect over the whole stream (all clusters seeded). ---
    const conformal::DistributionProfile& encoder =
        *bench->registry.at(0).profile;
    baseline::OdinDetect odin(baseline::OdinConfig{},
                              static_cast<int>(
                                  encoder.Encode(bench->training_frames[0][0]
                                                     .pixels)
                                      .size()));
    for (int i = 0; i < bench->registry.size(); ++i) {
      std::vector<std::vector<float>> latents;
      for (const video::Frame& f :
           bench->training_frames[static_cast<size_t>(i)]) {
        latents.push_back(encoder.Encode(f.pixels));
      }
      odin.AddPermanentCluster(latents, i);
    }
    stream.Reset();
    t0 = Clock::now();
    while (stream.Next(&frame)) {
      std::vector<float> z = encoder.Encode(frame.pixels);
      odin.Observe(z);
    }
    double odin_seconds = Seconds(t0);

    char ref[64];
    std::snprintf(ref, sizeof(ref), "%.1f / %.1f", paper.di, paper.odin);
    table.AddRow({paper.dataset, benchutil::Fmt(di_seconds, 2),
                  benchutil::Fmt(odin_seconds, 2),
                  benchutil::Fmt(odin_seconds / di_seconds, 2) + "x", ref});
  }
  table.Print();
  return 0;
}
