// Table 9 — End-to-end time performance (seconds).
//
// Full streams processed by five systems: (DI, MSBO), (DI, MSBI),
// (ODIN-Detect, ODIN-Select), YOLOv7 (drift-oblivious wide detector), and
// Mask R-CNN (annotation oracle with a heavy per-frame workload). Paper:
// BDD 278.4 / 295.8 / 1400.6 / 1231 / 10680 — the proposed pipelines ~3x
// faster than ODIN, ~4x faster than YOLO, an order of magnitude faster
// than Mask R-CNN; the same ordering is the reproduced shape here.

#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "detect/detector.h"
#include "pipeline/pipeline.h"
#include "stats/rng.h"
#include "video/stream.h"

namespace {

struct PaperRow {
  const char* dataset;
  double msbo;
  double msbi;
  double odin;
  double yolo;
  double mask;
};

constexpr PaperRow kPaper[] = {
    {"BDD", 278.4, 295.8, 1400.6, 1231.0, 10680.0},
    {"Detrac", 105.6, 116.8, 682.6, 462.0, 4005.0},
    {"Tokyo", 169.2, 178.0, 950.1, 692.0, 6007.5}};

/// Simulated Mask R-CNN per-frame workload (dense GEMM side): sized so the
/// oracle lands roughly an order of magnitude above the DI+MS pipelines,
/// as in the paper's GPU numbers.
constexpr int kOracleWorkDim = 220;

}  // namespace

int main() {
  using namespace vdrift;
  benchutil::Banner("Table 9: end-to-end time (s), count-query workload");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  benchutil::Table table({"Dataset", "(DI,MSBO)", "(DI,MSBI)", "ODIN", "YOLO",
                          "MaskRCNN", "paper"});
  for (const PaperRow& paper : kPaper) {
    auto bench =
        benchutil::BuildWorkbench(paper.dataset, options).ValueOrDie();

    pipeline::PipelineConfig msbo_config;
    msbo_config.selector = pipeline::PipelineConfig::Selector::kMsbo;
    msbo_config.allow_training_new = false;
    msbo_config.provision = options.provision;
    video::StreamGenerator s1 = bench->dataset.MakeStream();
    pipeline::DriftAwarePipeline msbo(&bench->registry,
                                      bench->calibration_samples,
                                      msbo_config);
    double msbo_s = msbo.Run(&s1).ValueOrDie().total_seconds;

    pipeline::PipelineConfig msbi_config = msbo_config;
    msbi_config.selector = pipeline::PipelineConfig::Selector::kMsbi;
    video::StreamGenerator s2 = bench->dataset.MakeStream();
    pipeline::DriftAwarePipeline msbi(&bench->registry,
                                      bench->calibration_samples,
                                      msbi_config);
    double msbi_s = msbi.Run(&s2).ValueOrDie().total_seconds;

    video::StreamGenerator s3 = bench->dataset.MakeStream();
    pipeline::OdinPipeline odin(&bench->registry, bench->training_frames,
                                pipeline::OdinPipeline::Config{});
    double odin_s = odin.Run(&s3).ValueOrDie().total_seconds;

    stats::Rng rng(404);
    detect::SimulatedDetector::Config det_config;
    detect::SimulatedDetector detector(det_config, &rng);
    detect::ClassifierTrainConfig tc;
    tc.epochs = 8;
    VDRIFT_CHECK_OK(detector.Train(bench->training_frames[0], tc, &rng));
    video::StreamGenerator s4 = bench->dataset.MakeStream();
    double yolo_s = pipeline::StaticDetectorPipeline::RunDetector(
                        &detector, &s4, false)
                        .ValueOrDie()
                        .total_seconds;

    video::StreamGenerator s5 = bench->dataset.MakeStream();
    double mask_s = pipeline::StaticDetectorPipeline::RunOracle(
                        kOracleWorkDim, &s5)
                        .ValueOrDie()
                        .total_seconds;

    char ref[128];
    std::snprintf(ref, sizeof(ref), "%.0f/%.0f/%.0f/%.0f/%.0f", paper.msbo,
                  paper.msbi, paper.odin, paper.yolo, paper.mask);
    table.AddRow({paper.dataset, benchutil::Fmt(msbo_s, 2),
                  benchutil::Fmt(msbi_s, 2), benchutil::Fmt(odin_s, 2),
                  benchutil::Fmt(yolo_s, 2), benchutil::Fmt(mask_s, 2), ref});
  }
  table.Print();
  std::printf("\nShape check: (DI,MSBO) <= (DI,MSBI) < ODIN ~ YOLO << "
              "MaskRCNN\n");
  return 0;
}
