// Table 9 — End-to-end time performance (seconds).
//
// Full streams processed by five systems: (DI, MSBO), (DI, MSBI),
// (ODIN-Detect, ODIN-Select), YOLOv7 (drift-oblivious wide detector), and
// Mask R-CNN (annotation oracle with a heavy per-frame workload). Paper:
// BDD 278.4 / 295.8 / 1400.6 / 1231 / 10680 — the proposed pipelines ~3x
// faster than ODIN, ~4x faster than YOLO, an order of magnitude faster
// than Mask R-CNN; the same ordering is the reproduced shape here.
//
// Runs on the BenchHarness: VDRIFT_BENCH_{SMOKE,DATASET,SEED,JSON} steer
// the run and a BENCH_table9_end_to_end.json report is written. Each
// system contributes an `<ds>.<system>.total` stage; the drift-aware
// pipelines additionally import their per-frame detect/select/query
// histograms as `<ds>.<system>.{detect,select,query}` stages.

#include <cstdio>
#include <string>

#include "benchutil/bench_harness.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "detect/detector.h"
#include "fault/fault.h"
#include "fault/faulty_stream.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"
#include "stats/rng.h"
#include "video/stream.h"

namespace {

using vdrift::benchutil::BenchHarness;
using vdrift::pipeline::PipelineMetrics;

struct PaperRow {
  const char* dataset;
  double msbo;
  double msbi;
  double odin;
  double yolo;
  double mask;
};

constexpr PaperRow kPaper[] = {
    {"BDD", 278.4, 295.8, 1400.6, 1231.0, 10680.0},
    {"Detrac", 105.6, 116.8, 682.6, 462.0, 4005.0},
    {"Tokyo", 169.2, 178.0, 950.1, 692.0, 6007.5}};

/// Simulated Mask R-CNN per-frame workload (dense GEMM side): sized so the
/// oracle lands roughly an order of magnitude above the DI+MS pipelines,
/// as in the paper's GPU numbers.
constexpr int kOracleWorkDim = 220;

// Folds one run into the report: the end-to-end total plus the pipeline's
// own per-frame stage histograms when it recorded any.
void Absorb(BenchHarness* harness, const std::string& prefix,
            const PipelineMetrics& metrics) {
  harness->RecordStageSeconds(prefix + ".total", metrics.total_seconds);
  if (metrics.registry == nullptr) return;
  const std::pair<const char*, const char*> kStages[] = {
      {"vdrift.pipeline.detect_seconds", ".detect"},
      {"vdrift.pipeline.select_seconds", ".select"},
      {"vdrift.pipeline.query_seconds", ".query"},
  };
  auto histograms = metrics.registry->Histograms();
  for (const auto& [source, suffix] : kStages) {
    auto it = histograms.find(source);
    if (it != histograms.end() && it->second.count > 0) {
      harness->ImportStage(prefix + suffix, it->second);
    }
  }
}

}  // namespace

int main() {
  using namespace vdrift;
  benchutil::Banner("Table 9: end-to-end time (s), count-query workload");
  benchutil::BenchHarness harness("table9_end_to_end");
  benchutil::WorkbenchOptions options = harness.MakeWorkbenchOptions();
  benchutil::Table table({"Dataset", "(DI,MSBO)", "(DI,MSBI)", "ODIN", "YOLO",
                          "MaskRCNN", "paper"});
  for (const PaperRow& paper : kPaper) {
    if (!harness.ShouldRunDataset(paper.dataset)) continue;
    auto bench =
        benchutil::BuildWorkbench(paper.dataset, options).ValueOrDie();
    std::string ds = paper.dataset;

    pipeline::PipelineConfig msbo_config;
    msbo_config.selector = pipeline::PipelineConfig::Selector::kMsbo;
    msbo_config.allow_training_new = false;
    msbo_config.provision = options.provision;
    video::StreamGenerator s1 = bench->dataset.MakeStream();
    // VDRIFT_FAULT_SPEC arms the fault harness on the MSBO run: the stream
    // gains the frame-level faults and the selector/annotator injection
    // points roll the same injector's dice. Unset (the default) leaves the
    // run untouched — the injector is never consulted.
    fault::FaultPlan fault_plan = fault::FaultPlan::FromEnv();
    fault::FaultInjector injector(fault_plan, options.seed);
    fault::FaultyStream faulty1(&s1, &injector);
    video::FrameSource* msbo_stream = &s1;
    if (!fault_plan.empty()) {
      msbo_config.injector = &injector;
      msbo_stream = &faulty1;
    }
    pipeline::DriftAwarePipeline msbo(&bench->registry,
                                      bench->calibration_samples,
                                      msbo_config);
    PipelineMetrics msbo_metrics = msbo.Run(msbo_stream).ValueOrDie();
    if (!fault_plan.empty()) {
      const pipeline::DegradationStats& deg = msbo_metrics.degradation;
      std::printf(
          "  [fault] %s msbo: injected=%lld dropped=%lld stream(drop=%lld "
          "dup=%lld stall=%lld) selector(fail=%lld retry=%lld "
          "incumbent=%lld) annotator(defer=%lld err=%lld) oblivious=%d\n",
          ds.c_str(), static_cast<long long>(injector.total_injected()),
          static_cast<long long>(deg.frames_dropped),
          static_cast<long long>(faulty1.dropped()),
          static_cast<long long>(faulty1.duplicated()),
          static_cast<long long>(faulty1.stalls()),
          static_cast<long long>(deg.selector_failures),
          static_cast<long long>(deg.selector_retries),
          static_cast<long long>(deg.incumbent_fallbacks),
          static_cast<long long>(deg.annotator_deferrals),
          static_cast<long long>(deg.annotator_errors),
          deg.drift_oblivious ? 1 : 0);
    }
    Absorb(&harness, ds + ".msbo", msbo_metrics);
    double msbo_s = msbo_metrics.total_seconds;

    pipeline::PipelineConfig msbi_config = msbo_config;
    msbi_config.selector = pipeline::PipelineConfig::Selector::kMsbi;
    video::StreamGenerator s2 = bench->dataset.MakeStream();
    pipeline::DriftAwarePipeline msbi(&bench->registry,
                                      bench->calibration_samples,
                                      msbi_config);
    PipelineMetrics msbi_metrics = msbi.Run(&s2).ValueOrDie();
    Absorb(&harness, ds + ".msbi", msbi_metrics);
    double msbi_s = msbi_metrics.total_seconds;

    video::StreamGenerator s3 = bench->dataset.MakeStream();
    pipeline::OdinPipeline odin(&bench->registry, bench->training_frames,
                                pipeline::OdinPipeline::Config{});
    PipelineMetrics odin_metrics = odin.Run(&s3).ValueOrDie();
    Absorb(&harness, ds + ".odin", odin_metrics);
    double odin_s = odin_metrics.total_seconds;

    stats::Rng rng(404);
    detect::SimulatedDetector::Config det_config;
    detect::SimulatedDetector detector(det_config, &rng);
    detect::ClassifierTrainConfig tc;
    tc.epochs = 8;
    VDRIFT_CHECK_OK(detector.Train(bench->training_frames[0], tc, &rng));
    video::StreamGenerator s4 = bench->dataset.MakeStream();
    PipelineMetrics yolo_metrics =
        pipeline::StaticDetectorPipeline::RunDetector(&detector, &s4, false)
            .ValueOrDie();
    Absorb(&harness, ds + ".yolo", yolo_metrics);
    double yolo_s = yolo_metrics.total_seconds;

    video::StreamGenerator s5 = bench->dataset.MakeStream();
    PipelineMetrics mask_metrics =
        pipeline::StaticDetectorPipeline::RunOracle(kOracleWorkDim, &s5)
            .ValueOrDie();
    Absorb(&harness, ds + ".mask_rcnn", mask_metrics);
    double mask_s = mask_metrics.total_seconds;

    harness.SetPrimaryStage(ds + ".msbi.detect");

    char ref[128];
    std::snprintf(ref, sizeof(ref), "%.0f/%.0f/%.0f/%.0f/%.0f", paper.msbo,
                  paper.msbi, paper.odin, paper.yolo, paper.mask);
    table.AddRow({paper.dataset, benchutil::Fmt(msbo_s, 2),
                  benchutil::Fmt(msbi_s, 2), benchutil::Fmt(odin_s, 2),
                  benchutil::Fmt(yolo_s, 2), benchutil::Fmt(mask_s, 2), ref});
  }
  table.Print();
  std::printf("\nShape check: (DI,MSBO) <= (DI,MSBI) < ODIN ~ YOLO << "
              "MaskRCNN\n");
  harness.WriteReport();
  return 0;
}
