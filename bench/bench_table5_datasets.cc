// Table 5 — Datasets and their characteristics.
//
// Streams the three synthetic datasets and reports sequence counts, stream
// sizes, and object-per-frame statistics next to the paper's values. At
// the bench's default scale the stream sizes are 1/50 of the paper's
// (Table 5 sizes are reproduced by the generators at scale 1.0).

#include <cstdio>
#include <string>

#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "stats/moments.h"
#include "video/stream.h"

namespace {

using vdrift::benchutil::Fmt;

struct PaperRow {
  const char* dataset;
  int sequences;
  int64_t stream_size;
  double obj_per_frame;
  double std;
};

constexpr PaperRow kPaper[] = {
    {"BDD", 4, 80000, 9.2, 6.4},
    {"Detrac", 5, 30000, 17.2, 7.1},
    {"Tokyo", 3, 45000, 19.2, 4.7},
};

}  // namespace

int main() {
  vdrift::benchutil::Banner(
      "Table 5: Datasets and their characteristics (synthetic substitutes)");
  const double kScale = 0.02;
  vdrift::benchutil::Table table(
      {"Dataset", "#Seq", "Stream(scaled)", "Obj/Frame", "std",
       "paper: #Seq/Size/Obj/std"});
  for (const PaperRow& paper : kPaper) {
    vdrift::video::SyntheticDataset ds =
        vdrift::benchutil::MakeDataset(paper.dataset, kScale);
    vdrift::video::StreamGenerator stream = ds.MakeStream();
    vdrift::stats::RunningMoments counts;
    vdrift::video::Frame frame;
    while (stream.Next(&frame)) {
      counts.Add(static_cast<double>(frame.truth.objects.size()));
    }
    std::string ref = std::to_string(paper.sequences) + "/" +
                      std::to_string(paper.stream_size) + "/" +
                      Fmt(paper.obj_per_frame, 1) + "/" + Fmt(paper.std, 1);
    table.AddRow({ds.name, std::to_string(ds.segments.size()),
                  std::to_string(ds.total_frames()), Fmt(counts.mean(), 1),
                  Fmt(counts.stddev(), 1), ref});
  }
  table.Print();
  std::printf(
      "\nNote: stream sizes are scaled by %.2f for the CPU bench; the\n"
      "object statistics are matched to the paper per sequence spec.\n",
      kScale);
  return 0;
}
