// Ablation — DI vs the classic detectors the paper's related work
// discusses (§2): a windowed two-sample KS test and a Page-Hinkley
// control chart, both monitoring a scalar frame statistic (mean
// brightness). The classics are competitive on photometric drifts (their
// statistic is exactly the drifting quantity) but blind to drifts that
// preserve it — the multi-dimensional coverage argument for conformal
// martingales.

#include <cstdio>
#include <vector>

#include "baseline/classic.h"
#include "benchutil/experiments.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "tensor/ops.h"
#include "video/frame_stats.h"
#include "video/stream.h"

namespace {

using namespace vdrift;

// Frames-to-detect for a scalar detector fed the frame-mean statistic.
template <typename Detector>
int ScalarLatency(Detector* detector,
                  const std::vector<video::Frame>& post_drift) {
  for (size_t i = 0; i < post_drift.size(); ++i) {
    if (detector->Observe(tensor::Mean(post_drift[i].pixels))) {
      return static_cast<int>(i) + 1;
    }
  }
  return -1;
}

template <typename Detector>
int ScalarFalseAlarms(Detector* detector,
                      const std::vector<video::Frame>& frames) {
  int alarms = 0;
  for (const video::Frame& f : frames) {
    if (detector->Observe(tensor::Mean(f.pixels))) {
      ++alarms;
      detector->Reset();
    }
  }
  return alarms;
}

std::string Show(int v) {
  return v < 0 ? std::string("miss") : std::to_string(v);
}

}  // namespace

int main() {
  benchutil::Banner("Ablation: DI vs classic detectors (KS, Page-Hinkley)");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  auto bench = benchutil::BuildWorkbench("BDD", options).ValueOrDie();
  const conformal::DistributionProfile& day = *bench->registry.at(0).profile;

  // Reference sample of the scalar statistic from the Day training set.
  std::vector<double> reference;
  for (const video::Frame& f : bench->training_frames[0]) {
    reference.push_back(tensor::Mean(f.pixels));
  }
  std::vector<video::Frame> more_day = video::GenerateFrames(
      bench->dataset.segments[0].spec, 2000, bench->dataset.image_size, 9500);

  benchutil::Table table({"Transition", "DI", "KS-window", "Page-Hinkley"});
  for (int target = 1; target < bench->registry.size(); ++target) {
    std::vector<video::Frame> post = video::GenerateFrames(
        bench->dataset.segments[static_cast<size_t>(target)].spec, 400,
        bench->dataset.image_size, 9600 + static_cast<uint64_t>(target));
    benchutil::LatencyResult di = benchutil::MeasureDiLatency(
        day, post, conformal::DriftInspectorConfig{}, 31);
    baseline::KsWindowDetector ks =
        baseline::KsWindowDetector::Make(reference,
                                         baseline::KsWindowDetector::Config{})
            .ValueOrDie();
    baseline::PageHinkleyDetector::Config ph_config;
    ph_config.lambda = 2.0;
    baseline::PageHinkleyDetector ph(ph_config);
    // Warm Page-Hinkley on in-distribution data (it needs a mean estimate).
    for (int i = 0; i < 200; ++i) {
      ph.Observe(tensor::Mean(more_day[static_cast<size_t>(i)].pixels));
    }
    table.AddRow({"Day -> " + bench->registry.at(target).name,
                  Show(di.frames_to_detect), Show(ScalarLatency(&ks, post)),
                  Show(ScalarLatency(&ph, post))});
  }
  table.Print();

  benchutil::Table fp({"Detector", "false alarms / 2k Day frames"});
  fp.AddRow({"DI", std::to_string(benchutil::CountFalseAlarms(
                      day, more_day, conformal::DriftInspectorConfig{}, 32))});
  baseline::KsWindowDetector ks =
      baseline::KsWindowDetector::Make(reference,
                                       baseline::KsWindowDetector::Config{})
          .ValueOrDie();
  fp.AddRow({"KS-window", std::to_string(ScalarFalseAlarms(&ks, more_day))});
  baseline::PageHinkleyDetector::Config ph_config;
  ph_config.lambda = 2.0;
  baseline::PageHinkleyDetector ph(ph_config);
  fp.AddRow({"Page-Hinkley",
             std::to_string(ScalarFalseAlarms(&ph, more_day))});
  std::printf("\n");
  fp.Print();
  std::printf(
      "\nNote: the scalar classics track only mean brightness; drifts that\n"
      "preserve it (e.g. pure viewpoint changes) are invisible to them,\n"
      "while DI monitors the full scoring embedding.\n");
  return 0;
}
