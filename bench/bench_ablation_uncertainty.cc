// Ablation — deep ensembles vs MC dropout for model selection.
//
// The paper adopts deep ensembles for MSBO's uncertainty (§5.2.2), noting
// that ensembles outperform the Bayesian approximations its related work
// cites (MC dropout among them). This bench quantifies the claim at
// library scale: per BDD sequence, how well does the Brier score of (a) a
// 3-member deep ensemble vs (b) a single MC-dropout classifier separate
// the matching model from the others?

#include <cstdio>
#include <memory>
#include <vector>

#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "detect/annotator.h"
#include "detect/image_classifier.h"
#include "stats/rng.h"
#include "video/stream.h"

namespace {

using namespace vdrift;

double McBrier(detect::ImageClassifier* model,
               const std::vector<select::LabeledFrame>& window, int passes) {
  double total = 0.0;
  for (const select::LabeledFrame& lf : window) {
    std::vector<float> p = model->PredictProbaMcDropout(lf.pixels, passes);
    double s = 0.0;
    for (int k = 0; k < model->num_classes(); ++k) {
      double t = (k == lf.label) ? 1.0 : 0.0;
      double d = t - p[static_cast<size_t>(k)];
      s += d * d;
    }
    total += s / model->num_classes();
  }
  return total / static_cast<double>(window.size());
}

}  // namespace

int main() {
  benchutil::Banner(
      "Ablation: deep-ensemble vs MC-dropout uncertainty for selection");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  auto bench = benchutil::BuildWorkbench("BDD", options).ValueOrDie();
  int m = bench->registry.size();

  // Train one MC-dropout classifier per sequence (the cached ensembles
  // have no dropout layers).
  stats::Rng rng(808);
  std::vector<std::unique_ptr<detect::ImageClassifier>> mc_models;
  detect::ClassifierConfig mc_config;
  mc_config.num_classes = 8;
  mc_config.base_filters = options.provision.classifier_filters;
  mc_config.dropout_rate = 0.3;
  for (int i = 0; i < m; ++i) {
    auto model = std::make_unique<detect::ImageClassifier>(mc_config, &rng);
    std::vector<tensor::Tensor> pixels =
        video::PixelsOf(bench->training_frames[static_cast<size_t>(i)]);
    std::vector<int> labels;
    for (const video::Frame& f :
         bench->training_frames[static_cast<size_t>(i)]) {
      labels.push_back(detect::CountLabel(f.truth, 8));
    }
    VDRIFT_CHECK_OK(model
                        ->Train(pixels, labels,
                                options.provision.classifier_train, &rng)
                        .status());
    mc_models.push_back(std::move(model));
  }

  // For each sequence window, rank models by both uncertainty measures.
  int ensemble_correct = 0;
  int mc_correct = 0;
  const int kTrials = 5;
  benchutil::Table table({"Window", "ensemble pick", "mc-dropout pick"});
  for (int seq = 0; seq < m; ++seq) {
    for (int t = 0; t < kTrials; ++t) {
      std::vector<video::Frame> frames = video::GenerateFrames(
          bench->dataset.segments[static_cast<size_t>(seq)].spec, 10,
          bench->dataset.image_size,
          40000 + static_cast<uint64_t>(seq * 10 + t));
      std::vector<select::LabeledFrame> window;
      for (const video::Frame& f : frames) {
        window.push_back({f.pixels, detect::CountLabel(f.truth, 8)});
      }
      int best_ens = -1;
      int best_mc = -1;
      double best_ens_score = 0.0;
      double best_mc_score = 0.0;
      for (int i = 0; i < m; ++i) {
        double ens = bench->registry.at(i).ensemble->AverageBrier(window);
        double mc = McBrier(mc_models[static_cast<size_t>(i)].get(), window,
                            /*passes=*/8);
        if (best_ens < 0 || ens < best_ens_score) {
          best_ens = i;
          best_ens_score = ens;
        }
        if (best_mc < 0 || mc < best_mc_score) {
          best_mc = i;
          best_mc_score = mc;
        }
      }
      if (best_ens == seq) ++ensemble_correct;
      if (best_mc == seq) ++mc_correct;
      if (t == 0) {
        table.AddRow({bench->registry.at(seq).name,
                      bench->registry.at(best_ens).name,
                      bench->registry.at(best_mc).name});
      }
    }
  }
  table.Print();
  std::printf("\nselection accuracy over %d windows: ensemble %d/%d, "
              "mc-dropout %d/%d\n",
              m * kTrials, ensemble_correct, m * kTrials, mc_correct,
              m * kTrials);
  std::printf("(paper: deep ensembles preferred over Bayesian "
              "approximations for predictive uncertainty)\n");
  return 0;
}
