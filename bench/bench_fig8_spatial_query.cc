// Figure 8 — Spatial-constrained query accuracy on BDD.
//
// The query predicate is "bus is on the left side of a car"; A_q is the
// fraction of frames where the deployed predicate classifier matches the
// oracle truth. Paper: (DI,MSBO) outperforms ODIN by ~20% on every BDD
// sequence while being ~3x faster end to end.

#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "detect/detector.h"
#include "pipeline/pipeline.h"
#include "stats/rng.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  benchutil::Banner(
      "Figure 8: spatial query (bus left of car) accuracy on BDD");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  auto bench = benchutil::BuildWorkbench("BDD", options).ValueOrDie();

  pipeline::PipelineConfig msbo_config;
  msbo_config.selector = pipeline::PipelineConfig::Selector::kMsbo;
  msbo_config.allow_training_new = false;
  msbo_config.provision = options.provision;
  msbo_config.run_predicate = true;
  video::StreamGenerator s1 = bench->dataset.MakeStream();
  pipeline::DriftAwarePipeline msbo(&bench->registry,
                                    bench->calibration_samples, msbo_config);
  pipeline::PipelineMetrics m_msbo = msbo.Run(&s1).ValueOrDie();

  pipeline::PipelineConfig msbi_config = msbo_config;
  msbi_config.selector = pipeline::PipelineConfig::Selector::kMsbi;
  video::StreamGenerator s2 = bench->dataset.MakeStream();
  pipeline::DriftAwarePipeline msbi(&bench->registry,
                                    bench->calibration_samples, msbi_config);
  pipeline::PipelineMetrics m_msbi = msbi.Run(&s2).ValueOrDie();

  pipeline::OdinPipeline::Config odin_config;
  odin_config.run_predicate = true;
  video::StreamGenerator s3 = bench->dataset.MakeStream();
  pipeline::OdinPipeline odin(&bench->registry, bench->training_frames,
                              odin_config);
  pipeline::PipelineMetrics m_odin = odin.Run(&s3).ValueOrDie();

  stats::Rng rng(606);
  detect::SimulatedDetector::Config det_config;
  detect::SimulatedDetector detector(det_config, &rng);
  detect::ClassifierTrainConfig tc;
  tc.epochs = 10;
  VDRIFT_CHECK_OK(detector.Train(bench->training_frames[0], tc, &rng));
  video::StreamGenerator s4 = bench->dataset.MakeStream();
  pipeline::PipelineMetrics m_yolo =
      pipeline::StaticDetectorPipeline::RunDetector(&detector, &s4, true)
          .ValueOrDie();

  video::StreamGenerator s5 = bench->dataset.MakeStream();
  pipeline::PipelineMetrics m_mask =
      pipeline::StaticDetectorPipeline::RunOracle(0, &s5).ValueOrDie();

  benchutil::Table table(
      {"Sequence", "(DI,MSBO)", "(DI,MSBI)", "ODIN", "YOLO", "MaskRCNN"});
  for (int seq = 0; seq < bench->registry.size(); ++seq) {
    table.AddRow(
        {bench->registry.at(seq).name,
         benchutil::Fmt(m_msbo.per_sequence[seq].PredicateAq(), 3),
         benchutil::Fmt(m_msbi.per_sequence[seq].PredicateAq(), 3),
         benchutil::Fmt(m_odin.per_sequence[seq].PredicateAq(), 3),
         benchutil::Fmt(m_yolo.per_sequence[seq].PredicateAq(), 3),
         benchutil::Fmt(m_mask.per_sequence[seq].PredicateAq(), 3)});
  }
  table.Print();
  std::printf("\noverall: MSBO %.3f vs ODIN %.3f (paper: MSBO ~+20%%)\n",
              m_msbo.Totals().PredicateAq(), m_odin.Totals().PredicateAq());
  return 0;
}
