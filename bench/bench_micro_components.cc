// Micro benchmarks (google-benchmark) — per-component costs behind the
// paper's §6.1.2 / §6.2.2 per-frame millisecond breakdowns: VAE encode,
// K-NN non-conformity score, conformal p-value, martingale update, one
// full DI observation, one ODIN-Detect observation, ensemble Brier
// evaluation, classifier inference, and frame rendering.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "baseline/odin.h"
#include "benchutil/workbench.h"
#include "core/betting.h"
#include "core/drift_inspector.h"
#include "core/martingale.h"
#include "core/pvalue.h"
#include "stats/rng.h"
#include "video/renderer.h"
#include "video/stream.h"

namespace {

using namespace vdrift;

// Shared fixture: one BDD workbench built (or loaded from cache) once.
benchutil::Workbench* GetBench() {
  static benchutil::Workbench* bench = [] {
    benchutil::WorkbenchOptions options =
        benchutil::DefaultWorkbenchOptions();
    return benchutil::BuildWorkbench("BDD", options).ValueOrDie().release();
  }();
  return bench;
}

video::Frame TestFrame() {
  return video::GenerateFrames(GetBench()->dataset.segments[0].spec, 1, 32,
                               424242)[0];
}

void BM_RenderFrame(benchmark::State& state) {
  video::Renderer renderer(32);
  stats::Rng rng(1);
  video::SceneSpec spec = GetBench()->dataset.segments[0].spec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.Render(spec, &rng));
  }
}
BENCHMARK(BM_RenderFrame);

void BM_VaeEncode(benchmark::State& state) {
  video::Frame frame = TestFrame();
  const conformal::DistributionProfile& profile =
      *GetBench()->registry.at(0).profile;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.Encode(frame.pixels));
  }
}
BENCHMARK(BM_VaeEncode);

void BM_KnnScore(benchmark::State& state) {
  video::Frame frame = TestFrame();
  const conformal::DistributionProfile& profile =
      *GetBench()->registry.at(0).profile;
  std::vector<float> z = profile.Encode(frame.pixels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.sigma().KnnScore(z));
  }
}
BENCHMARK(BM_KnnScore);

void BM_PValue(benchmark::State& state) {
  const conformal::DistributionProfile& profile =
      *GetBench()->registry.at(0).profile;
  stats::Rng rng(2);
  double a_f = profile.sigma().sorted_scores()[50];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conformal::ComputePValue(a_f, profile.sigma().sorted_scores(), &rng));
  }
}
BENCHMARK(BM_PValue);

void BM_MartingaleUpdate(benchmark::State& state) {
  auto betting = conformal::MakeDefaultBetting();
  conformal::ConformalMartingale martingale(betting.get(), 3, 0.5);
  stats::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(martingale.Update(rng.NextDouble()));
  }
}
BENCHMARK(BM_MartingaleUpdate);

void BM_DriftInspectorObserve(benchmark::State& state) {
  video::Frame frame = TestFrame();
  conformal::DriftInspector inspector(GetBench()->registry.at(0).profile.get(),
                                      conformal::DriftInspectorConfig{}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inspector.Observe(frame.pixels));
  }
}
BENCHMARK(BM_DriftInspectorObserve);

void BM_OdinObserve(benchmark::State& state) {
  benchutil::Workbench* bench = GetBench();
  const conformal::DistributionProfile& encoder =
      *bench->registry.at(0).profile;
  video::Frame frame = TestFrame();
  std::vector<float> z = encoder.Encode(frame.pixels);
  baseline::OdinDetect odin(baseline::OdinConfig{},
                            static_cast<int>(z.size()));
  for (int i = 0; i < bench->registry.size(); ++i) {
    std::vector<std::vector<float>> latents;
    for (const video::Frame& f :
         bench->training_frames[static_cast<size_t>(i)]) {
      latents.push_back(encoder.Encode(f.pixels));
    }
    odin.AddPermanentCluster(latents, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(odin.Observe(z));
  }
}
BENCHMARK(BM_OdinObserve);

void BM_ClassifierPredict(benchmark::State& state) {
  video::Frame frame = TestFrame();
  auto& model = GetBench()->registry.at(0).count_model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Predict(frame.pixels));
  }
}
BENCHMARK(BM_ClassifierPredict);

void BM_EnsembleBrier(benchmark::State& state) {
  video::Frame frame = TestFrame();
  auto& ensemble = GetBench()->registry.at(0).ensemble;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ensemble->BrierScore(frame.pixels, 3));
  }
}
BENCHMARK(BM_EnsembleBrier);

}  // namespace

BENCHMARK_MAIN();
