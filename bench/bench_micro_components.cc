// Micro benchmarks — per-component costs behind the paper's §6.1.2 /
// §6.2.2 per-frame millisecond breakdowns: frame rendering, VAE encode,
// K-NN non-conformity score, conformal p-value, martingale update, one
// full DI observation, one ODIN-Detect observation, classifier inference,
// and ensemble Brier evaluation.
//
// Runs on the BenchHarness: each component is a stage of per-call latency
// samples (VDRIFT_BENCH_REPEATS scales how many), reported with
// p50/p90/p99 and fps in BENCH_micro_components.json.

#include <memory>
#include <string>
#include <vector>

#include "baseline/odin.h"
#include "benchutil/bench_harness.h"
#include "benchutil/metrics_report.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "core/betting.h"
#include "core/drift_inspector.h"
#include "core/martingale.h"
#include "core/pvalue.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "stats/rng.h"
#include "video/renderer.h"
#include "video/stream.h"

namespace {

using namespace vdrift;

// Per-call samples collected per stage, per configured repeat: enough for
// stable p50/p90 at full scale, one quick burst in smoke mode.
int SamplesPerRepeat(const benchutil::BenchConfig& config) {
  return config.smoke ? 10 : 60;
}

// Runs `fn` untimed config.warmup times, then records
// config.repeats * SamplesPerRepeat per-call latencies into `stage`.
template <typename Fn>
void MicroBench(benchutil::BenchHarness* harness, const std::string& stage,
                Fn&& fn) {
  const benchutil::BenchConfig& config = harness->config();
  for (int i = 0; i < config.warmup; ++i) fn();
  int samples = config.repeats * SamplesPerRepeat(config);
  for (int i = 0; i < samples; ++i) {
    // Through RecordStageSeconds (not a ScopedTimer straight into the
    // histogram) so the raw per-call latencies reach the report's
    // "samples" arrays for the statistical gate.
    double start = obs::MonotonicSeconds();
    fn();
    harness->RecordStageSeconds(stage, obs::MonotonicSeconds() - start);
  }
}

}  // namespace

int main() {
  using namespace vdrift;
  benchutil::Banner("Micro: per-component latency (see §6.1.2 / §6.2.2)");
  benchutil::BenchHarness harness("micro_components");
  benchutil::WorkbenchOptions options = harness.MakeWorkbenchOptions();
  // One workbench serves every component; BDD matches the paper's primary
  // dataset, smoke mode swaps in the filtered (cheapest) one.
  std::string dataset = "BDD";
  if (!harness.ShouldRunDataset(dataset) &&
      !harness.config().dataset_filter.empty()) {
    dataset = harness.config().dataset_filter;
  }
  auto bench = benchutil::BuildWorkbench(dataset, options).ValueOrDie();
  harness.SetLabel("dataset", dataset);

  video::Frame frame = video::GenerateFrames(bench->dataset.segments[0].spec,
                                             1, bench->dataset.image_size,
                                             424242)[0];
  const conformal::DistributionProfile& profile =
      *bench->registry.at(0).profile;

  {
    video::Renderer renderer(bench->dataset.image_size);
    stats::Rng rng(1);
    video::SceneSpec spec = bench->dataset.segments[0].spec;
    MicroBench(&harness, "render_frame", [&] {
      benchutil::DoNotOptimize(renderer.Render(spec, &rng));
    });
  }

  MicroBench(&harness, "vae_encode", [&] {
    benchutil::DoNotOptimize(profile.Encode(frame.pixels));
  });

  {
    std::vector<float> z = profile.Encode(frame.pixels);
    MicroBench(&harness, "knn_score", [&] {
      benchutil::DoNotOptimize(profile.sigma().KnnScore(z));
    });
  }

  {
    stats::Rng rng(2);
    double a_f = profile.sigma().sorted_scores()[
        profile.sigma().sorted_scores().size() / 2];
    MicroBench(&harness, "p_value", [&] {
      benchutil::DoNotOptimize(
          conformal::ComputePValue(a_f, profile.sigma().sorted_scores(),
                                   &rng));
    });
  }

  {
    auto betting = conformal::MakeDefaultBetting();
    conformal::ConformalMartingale martingale(betting.get(), 3, 0.5);
    stats::Rng rng(3);
    MicroBench(&harness, "martingale_update", [&] {
      benchutil::DoNotOptimize(martingale.Update(rng.NextDouble()));
    });
  }

  {
    conformal::DriftInspector inspector(bench->registry.at(0).profile.get(),
                                        conformal::DriftInspectorConfig{}, 4);
    MicroBench(&harness, "di_observe", [&] {
      benchutil::DoNotOptimize(inspector.Observe(frame.pixels));
    });
  }

  {
    std::vector<float> z = profile.Encode(frame.pixels);
    baseline::OdinDetect odin(baseline::OdinConfig{},
                              static_cast<int>(z.size()));
    for (int i = 0; i < bench->registry.size(); ++i) {
      std::vector<std::vector<float>> latents;
      for (const video::Frame& f :
           bench->training_frames[static_cast<size_t>(i)]) {
        latents.push_back(profile.Encode(f.pixels));
      }
      odin.AddPermanentCluster(latents, i);
    }
    MicroBench(&harness, "odin_observe", [&] {
      benchutil::DoNotOptimize(odin.Observe(z));
    });
  }

  MicroBench(&harness, "classifier_predict", [&] {
    benchutil::DoNotOptimize(
        bench->registry.at(0).count_model->Predict(frame.pixels));
  });

  MicroBench(&harness, "ensemble_brier", [&] {
    benchutil::DoNotOptimize(
        bench->registry.at(0).ensemble->BrierScore(frame.pixels, 3));
  });

  harness.SetPrimaryStage("di_observe");
  benchutil::PrintMetricsTable(harness.registry());
  benchutil::EmitMetricsJson(obs::Global(), nullptr, "metrics_micro.json");
  harness.WriteReport();
  return 0;
}
