// Figure 5 — Brier score vs classification accuracy on BDD.
//
// For every BDD sequence we evaluate all four models (count classifiers /
// their ensembles) and report accuracy and Brier score. Paper findings to
// reproduce: accuracies of the models differ by only ~10% (noisy signal
// for selection), while the matching model's Brier score is roughly 2x
// lower than the others' (robust separation) — the reason MSBO selects on
// Brier rather than accuracy.

#include <cstdio>
#include <vector>

#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "detect/annotator.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  benchutil::Banner("Figure 5: Brier score vs accuracy per model (BDD)");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  auto bench = benchutil::BuildWorkbench("BDD", options).ValueOrDie();
  int m = bench->registry.size();

  for (int seq = 0; seq < m; ++seq) {
    const std::string& seq_name = bench->registry.at(seq).name;
    std::vector<video::Frame> eval = video::GenerateFrames(
        bench->dataset.segments[static_cast<size_t>(seq)].spec, 120,
        bench->dataset.image_size, 7000 + static_cast<uint64_t>(seq));
    std::vector<select::LabeledFrame> labeled;
    for (const video::Frame& f : eval) {
      labeled.push_back({f.pixels, detect::CountLabel(f.truth, 8)});
    }
    benchutil::Table table({"Model", "Accuracy", "Brier", "Brier ratio"});
    double own_brier = bench->registry.at(seq).ensemble->AverageBrier(labeled);
    for (int model = 0; model < m; ++model) {
      const select::ModelEntry& entry = bench->registry.at(model);
      int correct = 0;
      for (const select::LabeledFrame& lf : labeled) {
        if (entry.count_model->Predict(lf.pixels) == lf.label) ++correct;
      }
      double accuracy = static_cast<double>(correct) /
                        static_cast<double>(labeled.size());
      double brier = entry.ensemble->AverageBrier(labeled);
      table.AddRow({entry.name, benchutil::Fmt(accuracy, 3),
                    benchutil::Fmt(brier, 4),
                    benchutil::Fmt(brier / own_brier, 2) + "x"});
    }
    std::printf("\n[sequence %s]  (paper: matching model's Brier ~2x lower; "
                "accuracies within ~10%%)\n",
                seq_name.c_str());
    table.Print();
  }
  return 0;
}
