// Figure 6 — Model invocations per frame on BDD, Detrac, and Tokyo.
//
// MSBO and MSBI deploy exactly one model per frame after each drift; ODIN-
// Select assigns each frame to one or more clusters, invoking an ensemble
// when several accept. The paper reports exactly 1.0 invocations/frame for
// MSBO/MSBI everywhere and >1 for ODIN on overlapping sequences (e.g.
// 3.7% of BDD Night frames run a 2-model ensemble).

#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "pipeline/pipeline.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  benchutil::Banner("Figure 6: model invocations per frame");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  for (const char* dataset : {"BDD", "Detrac", "Tokyo"}) {
    auto bench = benchutil::BuildWorkbench(dataset, options).ValueOrDie();

    pipeline::PipelineConfig msbo_config;
    msbo_config.selector = pipeline::PipelineConfig::Selector::kMsbo;
    msbo_config.allow_training_new = false;
    msbo_config.provision = options.provision;
    video::StreamGenerator s1 = bench->dataset.MakeStream();
    pipeline::DriftAwarePipeline msbo(&bench->registry,
                                      bench->calibration_samples,
                                      msbo_config);
    pipeline::PipelineMetrics msbo_metrics = msbo.Run(&s1).ValueOrDie();

    pipeline::PipelineConfig msbi_config = msbo_config;
    msbi_config.selector = pipeline::PipelineConfig::Selector::kMsbi;
    video::StreamGenerator s2 = bench->dataset.MakeStream();
    pipeline::DriftAwarePipeline msbi(&bench->registry,
                                      bench->calibration_samples,
                                      msbi_config);
    pipeline::PipelineMetrics msbi_metrics = msbi.Run(&s2).ValueOrDie();

    video::StreamGenerator s3 = bench->dataset.MakeStream();
    pipeline::OdinPipeline odin(&bench->registry, bench->training_frames,
                                pipeline::OdinPipeline::Config{});
    pipeline::PipelineMetrics odin_metrics = odin.Run(&s3).ValueOrDie();

    benchutil::Table table(
        {"Sequence", "MSBO inv/frame", "MSBI inv/frame", "ODIN inv/frame"});
    for (int seq = 0; seq < bench->registry.size(); ++seq) {
      table.AddRow(
          {bench->registry.at(seq).name,
           benchutil::Fmt(msbo_metrics.per_sequence[seq].InvocationsPerFrame(),
                          3),
           benchutil::Fmt(msbi_metrics.per_sequence[seq].InvocationsPerFrame(),
                          3),
           benchutil::Fmt(odin_metrics.per_sequence[seq].InvocationsPerFrame(),
                          3)});
    }
    std::printf("\n[%s]  (paper: MSBO/MSBI exactly 1.0; ODIN > 1 where "
                "clusters overlap)\n",
                dataset);
    table.Print();
  }
  return 0;
}
