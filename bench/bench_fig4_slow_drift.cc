// Figure 4 — Data drift detection in the slow-drift setting.
//
// A live-camera day turns gradually into night (spec interpolation over
// the middle of the stream). The detector is trained on the day
// distribution and must notice the transition; ground truth places the
// drift at the interpolation midpoint ("sunset"). Paper: DI detects the
// drift with ~3x fewer frames than ODIN-Detect on average.

#include <cstdio>
#include <vector>

#include "benchutil/experiments.h"
#include "benchutil/table.h"
#include "core/profile.h"
#include "baseline/odin.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  benchutil::Banner(
      "Figure 4: slow drift (gradual day->night), frames past midpoint");
  stats::Rng rng(2025);
  video::SceneSpec day = video::TokyoDaySpec();
  video::SceneSpec night = video::TokyoNightSpec();
  std::vector<video::Frame> day_frames =
      video::GenerateFrames(day, 260, 32, 900);
  conformal::DistributionProfile::Options profile_options;
  profile_options.vae.base_filters = 4;
  profile_options.trainer.epochs = 18;
  auto profile = conformal::DistributionProfile::Build(
                     "Tokyo Day", video::PixelsOf(day_frames),
                     profile_options, &rng)
                     .ValueOrDie();

  benchutil::Table table({"Transition speed", "DI frames", "ODIN frames",
                          "ratio"});
  double di_total = 0.0;
  double odin_total = 0.0;
  int cases = 0;
  for (double fraction : {0.2, 0.4, 0.6, 0.8}) {
    const int64_t kLength = 1200;
    video::SlowDriftStream stream(day, night, kLength, fraction, 32,
                                  777 + static_cast<uint64_t>(fraction * 10));
    // Collect the frames from the nominal drift point onwards.
    std::vector<video::Frame> post;
    video::Frame frame;
    while (stream.Next(&frame)) {
      if (frame.truth.frame_index >= stream.nominal_drift_point()) {
        post.push_back(frame);
      }
    }
    conformal::DriftInspectorConfig di_config;
    benchutil::LatencyResult di =
        benchutil::MeasureDiLatency(*profile, post, di_config, 5);
    benchutil::LatencyResult odin = benchutil::MeasureOdinLatency(
        *profile, day_frames, post, baseline::OdinConfig{});
    auto show = [](int v) {
      return v < 0 ? std::string(">end") : std::to_string(v);
    };
    double ratio = (di.frames_to_detect > 0 && odin.frames_to_detect > 0)
                       ? static_cast<double>(odin.frames_to_detect) /
                             di.frames_to_detect
                       : 0.0;
    char label[64];
    std::snprintf(label, sizeof(label), "transition %.0f%% of stream",
                  fraction * 100);
    table.AddRow({label, show(di.frames_to_detect),
                  show(odin.frames_to_detect),
                  ratio > 0 ? benchutil::Fmt(ratio, 1) + "x" : "-"});
    if (ratio > 0) {
      di_total += di.frames_to_detect;
      odin_total += odin.frames_to_detect;
      ++cases;
    }
  }
  table.Print();
  if (cases > 0) {
    std::printf(
        "average ODIN/DI frame ratio: %.1fx   (paper: ~3x fewer frames for "
        "DI)\n",
        odin_total / di_total);
  }
  return 0;
}
