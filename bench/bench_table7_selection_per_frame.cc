// Table 7 — Per-frame model selection time.
//
// MSBO / MSBI spend real compute per examined frame (ensembles / DI runs
// across all profiles) but look at only ~10 frames per drift; ODIN-Select
// is cheap per frame but runs on *every* frame. Paper (Detrac): MSBO 830
// ms/frame, MSBI 640 ms/frame, ODIN-Select 17.8 ms/frame. The reproduced
// shape: MS per-frame cost is 1-2 orders of magnitude above ODIN's.

#include <chrono>
#include <cstdio>
#include <vector>

#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "core/msbi.h"
#include "core/msbo.h"
#include "detect/annotator.h"
#include "baseline/odin.h"
#include "video/stream.h"

namespace {
using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

int main() {
  using namespace vdrift;
  benchutil::Banner("Table 7: per-frame model selection time (ms), Detrac");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  auto bench = benchutil::BuildWorkbench("Detrac", options).ValueOrDie();

  // A 10-frame window from Angle 2 (post-drift frames).
  std::vector<video::Frame> window = video::GenerateFrames(
      bench->dataset.segments[1].spec, 10, bench->dataset.image_size, 8100);
  std::vector<select::LabeledFrame> labeled;
  std::vector<tensor::Tensor> pixels;
  for (const video::Frame& f : window) {
    labeled.push_back({f.pixels, detect::CountLabel(f.truth, 8)});
    pixels.push_back(f.pixels);
  }
  const int kRepeats = 20;

  select::Msbo msbo(&bench->registry, bench->calibration,
                    select::MsboConfig{});
  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < kRepeats; ++i) {
    (void)msbo.Select(labeled).ValueOrDie();
  }
  double msbo_ms = Seconds(t0) * 1000.0 / (kRepeats * 10);

  select::Msbi msbi(&bench->registry, select::MsbiConfig{});
  t0 = Clock::now();
  for (int i = 0; i < kRepeats; ++i) {
    (void)msbi.Select(pixels).ValueOrDie();
  }
  double msbi_ms = Seconds(t0) * 1000.0 / (kRepeats * 10);

  // ODIN-Select: per-frame cluster assignment over all 5 clusters.
  const conformal::DistributionProfile& encoder =
      *bench->registry.at(0).profile;
  baseline::OdinDetect odin(
      baseline::OdinConfig{},
      static_cast<int>(encoder.Encode(window[0].pixels).size()));
  for (int i = 0; i < bench->registry.size(); ++i) {
    std::vector<std::vector<float>> latents;
    for (const video::Frame& f :
         bench->training_frames[static_cast<size_t>(i)]) {
      latents.push_back(encoder.Encode(f.pixels));
    }
    odin.AddPermanentCluster(latents, i);
  }
  std::vector<video::Frame> odin_frames = video::GenerateFrames(
      bench->dataset.segments[1].spec, 200, bench->dataset.image_size, 8200);
  t0 = Clock::now();
  for (const video::Frame& f : odin_frames) {
    std::vector<float> z = encoder.Encode(f.pixels);
    odin.Observe(z);
  }
  double odin_ms = Seconds(t0) * 1000.0 / odin_frames.size();

  benchutil::Table table({"Algorithm", "ms/frame", "paper ms/frame"});
  table.AddRow({"MSBO", benchutil::Fmt(msbo_ms, 3), "830"});
  table.AddRow({"MSBI", benchutil::Fmt(msbi_ms, 3), "640"});
  table.AddRow({"ODIN-Select", benchutil::Fmt(odin_ms, 3), "17.8"});
  table.Print();
  std::printf("\nMS/ODIN per-frame ratio: MSBO %.0fx, MSBI %.0fx (paper: "
              "47x / 36x)\n",
              msbo_ms / odin_ms, msbi_ms / odin_ms);
  return 0;
}
