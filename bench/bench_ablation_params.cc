// Ablation — DI hyperparameter sweeps (W, r, K, |Sigma|, stats weight).
//
// The paper reports "extremely low dependency on W" and "nominal
// dependency on K" (§6.1); this bench verifies both claims on the BDD
// Day->Night transition and also sweeps the significance level r, the
// reference-sample size, and the scoring-embedding stats weight (the
// substitution-specific knob documented in DESIGN.md).

#include <cstdio>
#include <vector>

#include "benchutil/experiments.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "core/profile.h"
#include "stats/rng.h"
#include "video/datasets.h"
#include "video/stream.h"

namespace {

using namespace vdrift;

void SweepHeader(const char* what) {
  std::printf("\n-- sweep: %s --\n", what);
}

}  // namespace

int main() {
  benchutil::Banner("Ablation: DI parameter sweeps (BDD Day->Night)");
  benchutil::WorkbenchOptions options = benchutil::DefaultWorkbenchOptions();
  auto bench = benchutil::BuildWorkbench("BDD", options).ValueOrDie();
  const conformal::DistributionProfile& day = *bench->registry.at(0).profile;
  std::vector<video::Frame> night = video::GenerateFrames(
      bench->dataset.segments[1].spec, 400, bench->dataset.image_size, 9300);
  std::vector<video::Frame> more_day = video::GenerateFrames(
      bench->dataset.segments[0].spec, 1500, bench->dataset.image_size, 9400);

  // W sweep (paper: W=3 suffices; low dependency).
  SweepHeader("window W (r=0.5)");
  benchutil::Table w_table({"W", "frames to detect", "false alarms/1.5k"});
  for (int w : {2, 3, 5, 8, 12}) {
    conformal::DriftInspectorConfig config;
    config.window = w;
    benchutil::LatencyResult r =
        benchutil::MeasureDiLatency(day, night, config, 21);
    int alarms = benchutil::CountFalseAlarms(day, more_day, config, 22);
    w_table.AddRow({std::to_string(w),
                    r.frames_to_detect < 0 ? std::string(">400")
                                           : std::to_string(r.frames_to_detect),
                    std::to_string(alarms)});
  }
  w_table.Print();

  // r sweep.
  SweepHeader("significance level r (W=3)");
  benchutil::Table r_table({"r", "frames to detect", "false alarms/1.5k"});
  for (double r : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    conformal::DriftInspectorConfig config;
    config.r = r;
    benchutil::LatencyResult lat =
        benchutil::MeasureDiLatency(day, night, config, 23);
    int alarms = benchutil::CountFalseAlarms(day, more_day, config, 24);
    r_table.AddRow({benchutil::Fmt(r, 1),
                    lat.frames_to_detect < 0
                        ? std::string(">400")
                        : std::to_string(lat.frames_to_detect),
                    std::to_string(alarms)});
  }
  r_table.Print();

  // K and |Sigma| and stats-weight sweeps need fresh profiles.
  stats::Rng rng(4040);
  std::vector<tensor::Tensor> day_pixels =
      video::PixelsOf(bench->training_frames[0]);

  SweepHeader("K nearest neighbours (paper: nominal dependency)");
  benchutil::Table k_table({"K", "frames to detect", "false alarms/1.5k"});
  for (int k : {1, 3, 5, 9, 15}) {
    conformal::DistributionProfile::Options popt = options.provision.profile;
    popt.k = k;
    auto profile = conformal::DistributionProfile::Build("day-k", day_pixels,
                                                         popt, &rng)
                       .ValueOrDie();
    conformal::DriftInspectorConfig config;
    benchutil::LatencyResult lat =
        benchutil::MeasureDiLatency(*profile, night, config, 25);
    int alarms = benchutil::CountFalseAlarms(*profile, more_day, config, 26);
    k_table.AddRow({std::to_string(k),
                    lat.frames_to_detect < 0
                        ? std::string(">400")
                        : std::to_string(lat.frames_to_detect),
                    std::to_string(alarms)});
  }
  k_table.Print();

  SweepHeader("reference sample size |Sigma_Ti|");
  benchutil::Table s_table({"|Sigma|", "frames to detect",
                            "false alarms/1.5k"});
  for (int sigma : {50, 100, 200, 400}) {
    conformal::DistributionProfile::Options popt = options.provision.profile;
    popt.sigma_size = sigma;
    auto profile = conformal::DistributionProfile::Build("day-s", day_pixels,
                                                         popt, &rng)
                       .ValueOrDie();
    conformal::DriftInspectorConfig config;
    benchutil::LatencyResult lat =
        benchutil::MeasureDiLatency(*profile, night, config, 27);
    int alarms = benchutil::CountFalseAlarms(*profile, more_day, config, 28);
    s_table.AddRow({std::to_string(sigma),
                    lat.frames_to_detect < 0
                        ? std::string(">400")
                        : std::to_string(lat.frames_to_detect),
                    std::to_string(alarms)});
  }
  s_table.Print();

  SweepHeader("scoring-embedding stats weight (0 = raw VAE latent)");
  benchutil::Table t_table({"weight", "frames to detect",
                            "false alarms/1.5k"});
  for (double weight : {0.0, 0.5, 1.0, 2.0}) {
    conformal::DistributionProfile::Options popt = options.provision.profile;
    popt.stats_weight = weight;
    auto profile = conformal::DistributionProfile::Build("day-w", day_pixels,
                                                         popt, &rng)
                       .ValueOrDie();
    conformal::DriftInspectorConfig config;
    benchutil::LatencyResult lat =
        benchutil::MeasureDiLatency(*profile, night, config, 29);
    int alarms = benchutil::CountFalseAlarms(*profile, more_day, config, 30);
    t_table.AddRow({benchutil::Fmt(weight, 1),
                    lat.frames_to_detect < 0
                        ? std::string(">400")
                        : std::to_string(lat.frames_to_detect),
                    std::to_string(alarms)});
  }
  t_table.Print();
  return 0;
}
