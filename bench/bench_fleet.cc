// Fleet serving bench — the multi-stream drift service (src/serve) over
// N concurrent Tokyo replica streams on the deterministic thread pool.
//
// Reports per-fleet wall time, throughput, scheduling tallies
// (rounds/backpressure waits), and the shared-registry publication and
// adoption counts. Smoke mode (--smoke or VDRIFT_BENCH_SMOKE=1) runs the
// 2-stream fleet only on the tiny workbench — the CI liveness and TSan
// gate. VDRIFT_FLEET_FAULT_SPEC (ParsePerStreamFaultSpec grammar, e.g.
// "s1@nan_frame:p=0.02;selector_fail:p=0.5") arms per-stream fault
// injection; VDRIFT_METRICS_JSON captures the fleet's metrics registry —
// per-stream {stream=...} series plus the unlabeled aggregates that
// tools/check_metrics.sh cross-validates.
//
// Self-healing knobs: VDRIFT_FLEET_CHECKPOINT_DIR arms per-shard
// checkpointing (and with it restart/quarantine recovery);
// VDRIFT_FLEET_CHAOS_SEED arms a seed-driven chaos campaign (shard kills
// + checkpoint corruption) against the fleet; FleetOptions::ApplyEnv
// overlays VDRIFT_FLEET_MANIFEST / VDRIFT_FLEET_MAX_RESTARTS /
// VDRIFT_FLEET_BACKOFF_BASE.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/bench_harness.h"
#include "benchutil/metrics_report.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "fault/faulty_stream.h"
#include "serve/fleet.h"
#include "serve/supervisor.h"
#include "video/stream.h"

int main(int argc, char** argv) {
  using namespace vdrift;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      setenv("VDRIFT_BENCH_SMOKE", "1", 1);
    }
  }
  benchutil::Banner("Fleet serving: N concurrent drift-aware streams");
  benchutil::BenchHarness harness("fleet_serving");
  benchutil::WorkbenchOptions options = harness.MakeWorkbenchOptions();
  auto bench = benchutil::BuildWorkbench("Tokyo", options).ValueOrDie();

  std::vector<fault::StreamFaultPlan> fault_plans;
  const char* fault_env = std::getenv("VDRIFT_FLEET_FAULT_SPEC");
  if (fault_env != nullptr && fault_env[0] != '\0') {
    fault_plans = fault::ParsePerStreamFaultSpec(fault_env).ValueOrDie();
    std::printf("  [fault] per-stream spec armed: %s\n", fault_env);
  }

  std::vector<int> fleet_sizes =
      harness.config().smoke ? std::vector<int>{2} : std::vector<int>{2, 4, 8};
  benchutil::Table table({"Streams", "Frames", "Rounds", "Waits", "Published",
                          "Rejected", "Adopted", "Restarts", "Quarantined",
                          "Seconds", "fps"});
  std::shared_ptr<obs::MetricsRegistry> last_registry;
  std::shared_ptr<obs::HealthWatchdog> last_watchdog;
  for (int n : fleet_sizes) {
    serve::FleetOptions fleet_options;
    fleet_options.pipeline.selector =
        pipeline::PipelineConfig::Selector::kMsbo;
    fleet_options.pipeline.provision = options.provision;
    fleet_options.pipeline.allow_training_new = false;
    fleet_options.pipeline.seed = harness.config().seed;
    fleet_options.slice_frames = 64;
    fleet_options.max_concurrent = 4;
    fleet_options.sample_interval_rounds = 2;
    fleet_options.slo_spec = "default";
    const char* ckpt_dir = std::getenv("VDRIFT_FLEET_CHECKPOINT_DIR");
    if (ckpt_dir != nullptr && ckpt_dir[0] != '\0') {
      fleet_options.checkpoint_dir = ckpt_dir;
    }
    fleet_options.ApplyEnv();
    const char* chaos_env = std::getenv("VDRIFT_FLEET_CHAOS_SEED");
    if (chaos_env != nullptr && chaos_env[0] != '\0') {
      std::vector<std::string> labels;
      for (int i = 0; i < n; ++i) labels.push_back("s" + std::to_string(i));
      fleet_options.chaos = fault::ChaosPlan::FromSeed(
          std::strtoull(chaos_env, nullptr, 10), labels,
          /*horizon_rounds=*/16);
      std::printf("  [chaos] campaign armed: %s\n",
                  fleet_options.chaos.ToString().c_str());
    }
    serve::DriftFleet fleet(fleet_options);
    VDRIFT_CHECK_OK(fleet.AddBaseModels(bench->registry,
                                        bench->calibration_samples));
    // Tokyo replicas: same drift truth, distinct render seeds per stream.
    std::vector<std::unique_ptr<video::StreamGenerator>> streams;
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    std::vector<std::unique_ptr<fault::FaultyStream>> wrapped;
    for (int i = 0; i < n; ++i) {
      std::string label = "s" + std::to_string(i);
      streams.push_back(std::make_unique<video::StreamGenerator>(
          bench->dataset.segments, bench->dataset.image_size,
          bench->dataset.seed + 100 + static_cast<uint64_t>(i)));
      serve::StreamSpec spec;
      spec.label = label;
      spec.stream = streams.back().get();
      for (const fault::StreamFaultPlan& plan : fault_plans) {
        if (plan.stream != label) continue;
        injectors.push_back(std::make_unique<fault::FaultInjector>(
            plan.plan, harness.config().seed));
        spec.injector = injectors.back().get();
        wrapped.push_back(std::make_unique<fault::FaultyStream>(
            streams.back().get(), spec.injector));
        spec.stream = wrapped.back().get();
      }
      VDRIFT_CHECK_OK(fleet.AddStream(spec));
    }
    auto start = std::chrono::steady_clock::now();
    serve::FleetReport report = fleet.Run().ValueOrDie();
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    int64_t frames = 0;
    int quarantined = 0;
    for (const serve::StreamReport& stream : report.streams) {
      frames += stream.metrics.frames;
      if (stream.health == serve::HealthState::kQuarantined) {
        quarantined += 1;
        std::printf("  [warn] stream %s quarantined (%s): %ld frames "
                    "unserved but accounted\n",
                    stream.label.c_str(), stream.status.ToString().c_str(),
                    static_cast<long>(stream.quarantined_frames));
      } else if (!stream.status.ok()) {
        std::printf("  [warn] stream %s failed: %s\n", stream.label.c_str(),
                    stream.status.ToString().c_str());
      }
    }
    double fps = seconds > 0.0 ? static_cast<double>(frames) / seconds : 0.0;
    std::string stage = "tokyo.fleet" + std::to_string(n);
    harness.RecordStageSeconds(stage + ".total", seconds);
    table.AddRow({std::to_string(n), std::to_string(frames),
                  std::to_string(report.rounds),
                  std::to_string(report.backpressure_waits),
                  std::to_string(report.models_published),
                  std::to_string(report.publish_rejected),
                  std::to_string(report.models_adopted),
                  std::to_string(report.shard_restarts),
                  std::to_string(quarantined),
                  benchutil::Fmt(seconds, 2), benchutil::Fmt(fps, 0)});
    harness.SetThroughputFps(fps);
    last_registry = fleet.registry();
    last_watchdog = fleet.watchdog();
  }
  table.Print();
  harness.SetPrimaryStage("tokyo.fleet" +
                          std::to_string(fleet_sizes.back()) + ".total");
  harness.SetLabel("dataset", "Tokyo");
  if (last_registry != nullptr) {
    benchutil::EmitMetricsJson(*last_registry, nullptr, last_watchdog.get(),
                               "BENCH_fleet_serving_metrics.json");
    benchutil::EmitOpenMetrics(*last_registry);
  }
  harness.WriteReport();
  return 0;
}
