// Figure 3 — Data drift detection on BDD, Detrac, and Tokyo.
//
// For every cyclic sequence transition (ground-truth drift at frame 0 of
// the target sequence) we report the number of frames Drift Inspector and
// ODIN-Detect process before declaring the drift. Paper reference: DI
// averages ~28 frames on BDD (ODIN ~38) and ~29 vs ~36 on Detrac/Tokyo,
// with ODIN faster only on Tokyo's Angle 2 (whose neighbours share a field
// of view).

#include <cstdio>
#include <string>
#include <vector>

#include "benchutil/experiments.h"
#include "benchutil/table.h"
#include "benchutil/workbench.h"
#include "stats/moments.h"
#include "video/stream.h"

int main() {
  using namespace vdrift;
  benchutil::Banner("Figure 3: drift detection latency (frames), DI vs ODIN");
  benchutil::WorkbenchOptions options =
      benchutil::DefaultWorkbenchOptions();
  conformal::DriftInspectorConfig di_config;  // W=3, r=0.5, K via profile=5
  baseline::OdinConfig odin_config;

  for (const char* dataset : {"BDD", "Detrac", "Tokyo"}) {
    auto bench = benchutil::BuildWorkbench(dataset, options).ValueOrDie();
    int m = static_cast<int>(bench->dataset.segments.size());
    benchutil::Table table({"Transition", "DI frames", "ODIN-Detect frames"});
    stats::RunningMoments di_avg;
    stats::RunningMoments odin_avg;
    for (int target = 0; target < m; ++target) {
      int source = (target + m - 1) % m;
      // Fresh post-drift frames of the target sequence.
      std::vector<video::Frame> post = video::GenerateFrames(
          bench->dataset.segments[static_cast<size_t>(target)].spec, 400,
          bench->dataset.image_size, 5000 + static_cast<uint64_t>(target));
      const conformal::DistributionProfile& profile =
          *bench->registry.at(source).profile;
      benchutil::LatencyResult di = benchutil::MeasureDiLatency(
          profile, post, di_config, 42 + static_cast<uint64_t>(target));
      benchutil::LatencyResult odin = benchutil::MeasureOdinLatency(
          profile, bench->training_frames[static_cast<size_t>(source)], post,
          odin_config);
      auto show = [](int v) {
        return v < 0 ? std::string(">400") : std::to_string(v);
      };
      table.AddRow({"-> " + bench->registry.at(target).name, show(di.frames_to_detect),
                    show(odin.frames_to_detect)});
      if (di.frames_to_detect > 0) di_avg.Add(di.frames_to_detect);
      if (odin.frames_to_detect > 0) odin_avg.Add(odin.frames_to_detect);
    }
    std::printf("\n[%s]\n", dataset);
    table.Print();
    std::printf("average: DI %.1f  ODIN %.1f   (paper avg: DI ~28-29, ODIN ~36-38)\n",
                di_avg.mean(), odin_avg.mean());
  }
  return 0;
}
