#include "runtime/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/timer.h"
#include "obs/trace_log.h"

namespace vdrift::runtime {

namespace {

constexpr int kMaxThreads = 512;

// Depth of task execution on this thread; > 0 inside a chunk.
thread_local int t_task_depth = 0;

}  // namespace

int DefaultThreads() {
  // vdrift-lint: allow(no-ambient-nondeterminism): VDRIFT_THREADS is the
  // documented thread-count knob; determinism across its values is the
  // runtime's contract (bitwise-identical reduce order).
  const char* env = std::getenv("VDRIFT_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || value < 0) {
      VDRIFT_LOG_WARNING << "unparsable VDRIFT_THREADS='" << env
                         << "', running serial";
      return 1;
    }
    if (value > 0) {
      return static_cast<int>(std::min<long>(value, kMaxThreads));
    }
    // 0 falls through to "all hardware threads".
  }
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0
             ? 1
             : static_cast<int>(
                   std::min<unsigned>(hardware, kMaxThreads));
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {}

ThreadPool::~ThreadPool() { Shutdown(); }

ThreadPool& ThreadPool::Instance() {
  // Meyers singleton: the destructor joins the workers at exit, which
  // keeps TSan and the flight recorder's atexit export happy.
  static ThreadPool instance(DefaultThreads());
  return instance;
}

bool ThreadPool::InTask() { return t_task_depth > 0; }

void ThreadPool::Start() {
  if (threads_ == 1 || started()) return;
  MutexLock lifecycle(&lifecycle_mutex_);
  if (started()) return;
  stop_.store(false, std::memory_order_release);
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_.store(true, std::memory_order_release);
}

void ThreadPool::Shutdown() {
  MutexLock lifecycle(&lifecycle_mutex_);
  if (!started()) return;
  {
    MutexLock lock(&queue_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  started_.store(false, std::memory_order_release);
}

int64_t ThreadPool::DrainTask(Task* task, bool is_worker) {
  int64_t done_here = 0;
  ++t_task_depth;
  // Workers surface as their own rows in the Perfetto timeline: one span
  // per task participation, emitted only while the recorder is armed so
  // the steady-state hot path stays span-free.
  std::unique_ptr<obs::TraceSpan> span;
  while (true) {
    int64_t chunk =
        task->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= task->num_chunks) break;
    if (is_worker && span == nullptr &&
        obs::TraceLog::Instance().enabled()) {
      span = std::make_unique<obs::TraceSpan>(
          &obs::Global(), "vdrift.runtime.worker_chunks");
    }
    if (!task->cancelled.load(std::memory_order_acquire)) {
      try {
        (*task->fn)(chunk);
      } catch (...) {
        {
          MutexLock lock(&task->mutex);
          if (task->error == nullptr) {
            task->error = std::current_exception();
          }
        }
        task->cancelled.store(true, std::memory_order_release);
      }
    }
    ++done_here;
    if (task->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        task->num_chunks) {
      MutexLock lock(&task->mutex);
      task->done_cv.NotifyAll();
    }
  }
  --t_task_depth;
  return done_here;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<Task> task;
    {
      MutexLock lock(&queue_mutex_);
      while (!stop_.load(std::memory_order_acquire) && queue_.empty()) {
        queue_cv_.Wait(&queue_mutex_);
      }
      if (stop_.load(std::memory_order_acquire)) return;
      task = queue_.front();
    }
    DrainTask(task.get(), /*is_worker=*/true);
    {
      // The task is exhausted (every chunk claimed); retire it from the
      // queue if nobody else already has.
      MutexLock lock(&queue_mutex_);
      if (!queue_.empty() && queue_.front() == task) queue_.pop_front();
    }
  }
}

void ThreadPool::Run(int64_t num_chunks,
                     const std::function<void(int64_t)>& fn) {
  if (num_chunks <= 0) return;
  if (threads_ == 1 || InTask()) {
    // Serial pool or nested region: execute inline, same chunk order.
    ++t_task_depth;
    try {
      for (int64_t chunk = 0; chunk < num_chunks; ++chunk) fn(chunk);
    } catch (...) {
      --t_task_depth;
      throw;
    }
    --t_task_depth;
    return;
  }
  Start();
  auto task = std::make_shared<Task>();
  task->fn = &fn;
  task->num_chunks = num_chunks;
  {
    MutexLock lock(&queue_mutex_);
    queue_.push_back(task);
  }
  queue_cv_.NotifyAll();
  DrainTask(task.get(), /*is_worker=*/false);
  {
    MutexLock lock(&task->mutex);
    while (task->completed.load(std::memory_order_acquire) !=
           task->num_chunks) {
      task->done_cv.Wait(&task->mutex);
    }
  }
  {
    // Drop the queue's reference if the workers have not already.
    MutexLock lock(&queue_mutex_);
    auto it = std::find(queue_.begin(), queue_.end(), task);
    if (it != queue_.end()) queue_.erase(it);
  }
  // Reading `error` needs the task mutex even though every chunk is done —
  // the annotation has no "quiescent" exception, and the lock also pairs
  // with the writer's release for a clean happens-before.
  std::exception_ptr error;
  {
    MutexLock lock(&task->mutex);
    error = task->error;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace vdrift::runtime
