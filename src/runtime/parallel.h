#ifndef VDRIFT_RUNTIME_PARALLEL_H_
#define VDRIFT_RUNTIME_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/thread_pool.h"

namespace vdrift::runtime {

/// \brief Deterministic data-parallel loops over the process-wide pool.
///
/// Determinism contract: every construct here decomposes [begin, end)
/// into the SAME fixed chunk sequence regardless of how many threads
/// execute it — chunk k is [begin + k*grain, min(end, begin + (k+1)*grain)).
/// ParallelFor bodies write disjoint outputs per index, so any execution
/// order gives the serial answer; ParallelReduce computes one partial per
/// chunk and combines them in ascending chunk order on the calling
/// thread. Results are therefore bit-identical for every VDRIFT_THREADS
/// value, including 1.

/// The pool parallel constructs execute on: a ScopedThreads override if
/// one is live, else ThreadPool::Instance().
ThreadPool& CurrentPool();

/// \brief Temporarily routes ParallelFor/ParallelReduce onto a private
/// pool of the given size (tests and benchmarks sweep thread counts with
/// this without re-exec'ing under a different VDRIFT_THREADS).
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads);
  ~ScopedThreads();

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  ThreadPool* previous_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Chunk size that puts at least `min_cost` units of work (e.g. FLOPs)
/// into each chunk, given `cost_per_item` units per loop index. Depends
/// only on the workload — never on the thread count — so reductions
/// grained by it stay deterministic. The default floor keeps each chunk
/// at tens of microseconds of arithmetic: dispatching the pool for less
/// than that costs more in wakeups and chunk claiming than it saves
/// (the microsecond-scale per-frame encode GEMMs in particular must stay
/// inline or detection latency regresses under oversubscription).
inline int64_t GrainForCost(int64_t cost_per_item,
                            int64_t min_cost = 1 << 17) {
  return std::max<int64_t>(1,
                           min_cost / std::max<int64_t>(1, cost_per_item));
}

/// Runs `body(chunk_begin, chunk_end)` over [begin, end) in chunks of
/// `grain`. Chunks run concurrently (the calling thread participates);
/// a single-chunk range, a serial pool, or a nested call runs inline.
/// The first exception thrown by a body is rethrown on the caller.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

/// Deterministic-order reduction: `map(chunk_begin, chunk_end)` produces
/// one partial per chunk, then the partials fold left-to-right in chunk
/// index order via `combine(acc, partial)` on the calling thread. The
/// chunking — and therefore the result, bit for bit — is independent of
/// the executing thread count.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity,
                 MapFn map, CombineFn combine) {
  if (end <= begin) return identity;
  if (grain < 1) grain = 1;
  int64_t range = end - begin;
  int64_t num_chunks = (range + grain - 1) / grain;
  std::vector<T> partials(static_cast<size_t>(num_chunks), identity);
  auto run_chunk = [&](int64_t chunk) {
    int64_t b = begin + chunk * grain;
    int64_t e = std::min(end, b + grain);
    partials[static_cast<size_t>(chunk)] = map(b, e);
  };
  ThreadPool& pool = CurrentPool();
  if (num_chunks == 1 || pool.threads() == 1 || ThreadPool::InTask()) {
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk);
  } else {
    pool.Run(num_chunks, run_chunk);
  }
  T acc = identity;
  for (const T& partial : partials) acc = combine(acc, partial);
  return acc;
}

}  // namespace vdrift::runtime

#endif  // VDRIFT_RUNTIME_PARALLEL_H_
