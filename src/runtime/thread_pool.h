#ifndef VDRIFT_RUNTIME_THREAD_POOL_H_
#define VDRIFT_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace vdrift::runtime {

/// Worker count resolved from `VDRIFT_THREADS`: a positive value is taken
/// verbatim (clamped to 512), unset/empty/0 means "all hardware threads",
/// and anything unparsable falls back to 1 (serial).
int DefaultThreads();

/// \brief Work-sharing thread pool behind ParallelFor / ParallelReduce.
///
/// The pool owns `threads() - 1` worker threads (the caller of Run() is
/// the remaining executor, so `threads() == 1` means fully serial and no
/// thread is ever spawned). Workers start lazily on the first Run() and
/// are joined by Shutdown() or the destructor, so a binary that never
/// enters a parallel region pays nothing.
///
/// Run() executes a task of `num_chunks` independent chunks: every
/// participating thread repeatedly claims the next unclaimed chunk index
/// (an atomic increment — work sharing, not work stealing) and invokes
/// `fn(chunk)`. Chunks of one task may run on any thread in any order;
/// determinism is the caller's contract (see parallel.h).
///
/// Nesting: a Run() issued from inside a task executes inline on the
/// calling thread (no new parallelism, no deadlock). Exceptions thrown by
/// `fn` cancel the task's remaining chunks and the first one is rethrown
/// on the caller once every in-flight chunk has finished.
///
/// Locking: `queue_mutex_` guards the task queue, `lifecycle_mutex_`
/// serializes Start()/Shutdown() (and guards `workers_`), and each Task
/// carries its own mutex for the completion handshake. The annotations are
/// enforced by -Werror=thread-safety under clang (see common/sync.h).
class ThreadPool {
 public:
  /// Pool with the given total executor count (min 1, caller included).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, sized by DefaultThreads() at first use.
  static ThreadPool& Instance();

  /// Total executors (worker threads + the calling thread).
  int threads() const { return threads_; }
  /// True once worker threads are running.
  bool started() const { return started_.load(std::memory_order_acquire); }

  /// Spawns the workers now (idempotent; Run() calls it lazily).
  void Start();
  /// Joins the workers (idempotent). The pool can Start() again later;
  /// Run() on a shut-down pool restarts it.
  void Shutdown();

  /// Runs `fn(chunk)` for every chunk in [0, num_chunks). The caller
  /// participates and the call returns once all chunks completed.
  /// Rethrows the first exception thrown by any chunk.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn);

  /// True on a thread currently executing task chunks (nested parallel
  /// constructs must run inline).
  static bool InTask();

 private:
  struct Task {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t num_chunks = 0;
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> completed{0};
    std::atomic<bool> cancelled{false};
    Mutex mutex;
    CondVar done_cv;
    /// First failure across all chunks.
    std::exception_ptr error VDRIFT_GUARDED_BY(mutex);
  };

  void WorkerLoop();
  /// Claims and executes chunks of `task` until none are left. Returns
  /// the number of chunks this thread completed.
  int64_t DrainTask(Task* task, bool is_worker);

  const int threads_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<std::shared_ptr<Task>> queue_ VDRIFT_GUARDED_BY(queue_mutex_);
  Mutex lifecycle_mutex_;  ///< Serializes Start()/Shutdown().
  std::vector<std::thread> workers_ VDRIFT_GUARDED_BY(lifecycle_mutex_);
};

}  // namespace vdrift::runtime

#endif  // VDRIFT_RUNTIME_THREAD_POOL_H_
