#include "runtime/parallel.h"

namespace vdrift::runtime {

namespace {

// ScopedThreads override; only the thread that owns the scope mutates it,
// but workers never read it (they execute chunks, they don't route them),
// so a plain pointer suffices.
ThreadPool* g_pool_override = nullptr;

}  // namespace

ThreadPool& CurrentPool() {
  return g_pool_override != nullptr ? *g_pool_override
                                    : ThreadPool::Instance();
}

ScopedThreads::ScopedThreads(int threads)
    : previous_(g_pool_override),
      pool_(std::make_unique<ThreadPool>(threads)) {
  g_pool_override = pool_.get();
}

ScopedThreads::~ScopedThreads() { g_pool_override = previous_; }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  int64_t range = end - begin;
  int64_t num_chunks = (range + grain - 1) / grain;
  ThreadPool& pool = CurrentPool();
  if (num_chunks == 1 || pool.threads() == 1 || ThreadPool::InTask()) {
    body(begin, end);
    return;
  }
  pool.Run(num_chunks, [&](int64_t chunk) {
    int64_t b = begin + chunk * grain;
    int64_t e = std::min(end, b + grain);
    body(b, e);
  });
}

}  // namespace vdrift::runtime
