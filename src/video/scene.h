#ifndef VDRIFT_VIDEO_SCENE_H_
#define VDRIFT_VIDEO_SCENE_H_

#include <string>

namespace vdrift::video {

/// \brief Weather overlay applied by the renderer.
enum class Weather : int { kClear = 0, kRain = 1, kSnow = 2, kFog = 3 };

/// \brief Parameters of one frame distribution F_k.
///
/// A SceneSpec is the synthetic stand-in for the conditions that cause data
/// drift in the paper: time of day (base_luminance), weather (noise +
/// overlay), camera viewpoint (shift / tilt / zoom — Detrac and Tokyo angle
/// changes), and camera motion (jitter — BDD dashcams). Frames rendered
/// from the same spec are i.i.d. given the spec; switching specs is a
/// covariate shift, exactly the mechanism DI must detect.
struct SceneSpec {
  std::string name;

  // Lighting.
  double base_luminance = 0.55;  ///< Sky brightness; ~0.15 at night.
  double contrast = 1.0;

  // Weather.
  Weather weather = Weather::kClear;
  double weather_intensity = 0.0;  ///< Streak/speckle/fog strength in [0,1].
  double noise_sigma = 0.02;       ///< Per-pixel Gaussian sensor noise.

  // Camera viewpoint (angle changes in Detrac / Tokyo).
  double angle_shift_x = 0.0;  ///< Horizontal layout shift (normalized).
  double angle_shift_y = 0.0;  ///< Vertical layout shift (normalized).
  double angle_tilt = 0.0;     ///< Skew: x displacement proportional to y.
  double zoom = 1.0;           ///< Scale about the frame center.
  double jitter = 0.0;         ///< Per-frame random camera shake (dashcam).

  // Traffic density (matched to Table 5 object-per-frame statistics).
  double object_rate_mean = 9.2;
  double object_rate_std = 6.4;
  double bus_fraction = 0.15;  ///< Probability an object is a bus.

  // Scene layout.
  int lanes = 3;                     ///< Horizontal road bands.
  double object_brightness = 0.85;   ///< Object albedo before lighting.
};

/// Linear interpolation between two specs; used by the slow-drift stream
/// (Fig. 4's gradual day-to-night transition). `t` in [0, 1].
SceneSpec LerpSpec(const SceneSpec& a, const SceneSpec& b, double t);

}  // namespace vdrift::video

#endif  // VDRIFT_VIDEO_SCENE_H_
