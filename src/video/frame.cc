#include "video/frame.h"

namespace vdrift::video {

int FrameTruth::CarCount() const {
  int n = 0;
  for (const ObjectTruth& o : objects) {
    if (o.cls == ObjectClass::kCar) ++n;
  }
  return n;
}

int FrameTruth::BusCount() const {
  int n = 0;
  for (const ObjectTruth& o : objects) {
    if (o.cls == ObjectClass::kBus) ++n;
  }
  return n;
}

bool FrameTruth::BusLeftOfCar() const {
  for (const ObjectTruth& bus : objects) {
    if (bus.cls != ObjectClass::kBus) continue;
    for (const ObjectTruth& car : objects) {
      if (car.cls != ObjectClass::kCar) continue;
      if (bus.cx < car.cx) return true;
    }
  }
  return false;
}

}  // namespace vdrift::video
