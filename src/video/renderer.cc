#include "video/renderer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vdrift::video {

namespace {

// Clamps a normalized coordinate into the visible range.
float ClampUnit(double v) {
  return static_cast<float>(std::clamp(v, 0.0, 1.0));
}

}  // namespace

SceneSpec LerpSpec(const SceneSpec& a, const SceneSpec& b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto lerp = [t](double x, double y) { return x + (y - x) * t; };
  SceneSpec out = t < 0.5 ? a : b;  // discrete fields from the nearer spec
  out.base_luminance = lerp(a.base_luminance, b.base_luminance);
  out.contrast = lerp(a.contrast, b.contrast);
  out.weather_intensity = lerp(a.weather_intensity, b.weather_intensity);
  out.noise_sigma = lerp(a.noise_sigma, b.noise_sigma);
  out.angle_shift_x = lerp(a.angle_shift_x, b.angle_shift_x);
  out.angle_shift_y = lerp(a.angle_shift_y, b.angle_shift_y);
  out.angle_tilt = lerp(a.angle_tilt, b.angle_tilt);
  out.zoom = lerp(a.zoom, b.zoom);
  out.jitter = lerp(a.jitter, b.jitter);
  out.object_rate_mean = lerp(a.object_rate_mean, b.object_rate_mean);
  out.object_rate_std = lerp(a.object_rate_std, b.object_rate_std);
  out.bus_fraction = lerp(a.bus_fraction, b.bus_fraction);
  out.object_brightness = lerp(a.object_brightness, b.object_brightness);
  return out;
}

Frame Renderer::Render(const SceneSpec& spec, stats::Rng* rng) const {
  const int s = image_size_;
  Frame frame;
  frame.pixels = tensor::Tensor(tensor::Shape{1, s, s});
  tensor::Tensor& img = frame.pixels;

  const double lum = spec.base_luminance;
  // Per-frame camera jitter (dashcam shake).
  const double jx = spec.jitter * rng->NextGaussian();
  const double jy = spec.jitter * rng->NextGaussian();

  // Background: sky gradient over the top third, road below.
  const double horizon = 0.33 + spec.angle_shift_y + jy;
  for (int y = 0; y < s; ++y) {
    double ny = static_cast<double>(y) / s;
    double base;
    if (ny < horizon) {
      // Sky fades slightly toward the horizon.
      base = lum * (1.0 - 0.25 * ny / std::max(1e-6, horizon));
    } else {
      // Road: darker than the sky, slightly brighter with depth.
      base = lum * (0.45 + 0.15 * (ny - horizon));
    }
    base = 0.5 + (base - 0.5) * spec.contrast;
    for (int x = 0; x < s; ++x) {
      img.At3(0, y, x) = static_cast<float>(std::clamp(base, 0.0, 1.0));
    }
  }

  // Lane markings: brighter horizontal bands on the road.
  for (int lane = 1; lane < spec.lanes; ++lane) {
    double ly = horizon +
                (1.0 - horizon) * static_cast<double>(lane) / spec.lanes;
    int py = static_cast<int>(ly * s);
    if (py < 0 || py >= s) continue;
    for (int x = 0; x < s; x += 3) {
      float v = img.At3(0, py, x);
      img.At3(0, py, x) = std::clamp(v + 0.15f * static_cast<float>(lum + 0.3),
                                     0.0f, 1.0f);
    }
  }

  // Objects: sample the count from a clamped Gaussian matched to the
  // dataset's object-per-frame mean/std (Table 5), place on lanes, apply
  // the viewpoint transform, draw as filled rectangles.
  int count = static_cast<int>(
      std::round(rng->NextGaussian(spec.object_rate_mean,
                                   spec.object_rate_std)));
  // Vehicles occupy distinct lane slots (cars in a lane queue up rather
  // than overlap), keeping the object count visually recoverable — the
  // premise of the paper's count query.
  const int kSlotsPerLane = 10;
  int max_objects = spec.lanes * kSlotsPerLane;
  count = std::clamp(count, 0, max_objects);
  std::vector<int> slots(static_cast<size_t>(max_objects));
  for (int i = 0; i < max_objects; ++i) slots[static_cast<size_t>(i)] = i;
  rng->Shuffle(&slots);
  // Lighting factor: objects are dimmer at night but remain visible
  // (headlights / street lighting).
  const double obj_light = 0.35 + 0.65 * lum;
  for (int i = 0; i < count; ++i) {
    ObjectTruth obj;
    bool is_bus = rng->NextBernoulli(spec.bus_fraction);
    obj.cls = is_bus ? ObjectClass::kBus : ObjectClass::kCar;
    // Slot placement: lane band + horizontal slot with jitter inside it.
    int slot = slots[static_cast<size_t>(i)];
    int lane = slot / kSlotsPerLane;
    int pos = slot % kSlotsPerLane;
    double base_y = horizon +
                    (1.0 - horizon) * (static_cast<double>(lane) + 0.5) /
                        spec.lanes;
    double base_x = (static_cast<double>(pos) + 0.2 +
                     0.6 * rng->NextDouble()) /
                    kSlotsPerLane;
    // Viewpoint transform: zoom about the center, shift, tilt.
    double cx = 0.5 + (base_x - 0.5) * spec.zoom + spec.angle_shift_x +
                spec.angle_tilt * (base_y - 0.5) + jx;
    double cy = 0.5 + (base_y - 0.5) * spec.zoom + spec.angle_shift_y + jy;
    if (cx < -0.1 || cx > 1.1 || cy < -0.1 || cy > 1.1) continue;
    obj.cx = ClampUnit(cx);
    obj.cy = ClampUnit(cy);
    // Geometry: buses are larger; mild perspective scaling with depth
    // (cy). Size variance is kept moderate so object mass stays a usable
    // counting cue for the classifiers, as vehicle footprints are in real
    // fixed-camera traffic footage.
    double depth = 0.8 + 0.3 * obj.cy;
    double w = (is_bus ? 0.20 : 0.11) * depth * spec.zoom *
               (1.0 + 0.08 * rng->NextGaussian());
    double h = (is_bus ? 0.11 : 0.06) * depth * spec.zoom *
               (1.0 + 0.08 * rng->NextGaussian());
    obj.w = static_cast<float>(std::clamp(w, 0.02, 0.45));
    obj.h = static_cast<float>(std::clamp(h, 0.02, 0.30));
    // Draw the body.
    double albedo = spec.object_brightness *
                    (is_bus ? 1.1 : 1.0) *
                    (0.92 + 0.16 * rng->NextDouble());
    float value = static_cast<float>(std::clamp(albedo * obj_light, 0.0, 1.0));
    int x0 = static_cast<int>((obj.cx - obj.w / 2) * s);
    int x1 = static_cast<int>((obj.cx + obj.w / 2) * s);
    int y0 = static_cast<int>((obj.cy - obj.h / 2) * s);
    int y1 = static_cast<int>((obj.cy + obj.h / 2) * s);
    for (int y = std::max(0, y0); y <= std::min(s - 1, y1); ++y) {
      for (int x = std::max(0, x0); x <= std::min(s - 1, x1); ++x) {
        img.At3(0, y, x) = value;
      }
    }
    // Headlights at night: two bright pixels at the object's front.
    if (lum < 0.3 && y1 >= 0 && y1 < s) {
      if (x0 >= 0 && x0 < s) img.At3(0, y1, x0) = 0.95f;
      if (x1 >= 0 && x1 < s) img.At3(0, y1, x1) = 0.95f;
    }
    frame.truth.objects.push_back(obj);
  }

  // Weather overlay.
  const double wi = spec.weather_intensity;
  switch (spec.weather) {
    case Weather::kClear:
      break;
    case Weather::kRain: {
      // Semi-transparent vertical streaks.
      int streaks = static_cast<int>(wi * s * 0.8);
      for (int k = 0; k < streaks; ++k) {
        int x = rng->NextInt(0, s - 1);
        int y_start = rng->NextInt(0, s - 1);
        int len = rng->NextInt(3, 8);
        for (int y = y_start; y < std::min(s, y_start + len); ++y) {
          float v = img.At3(0, y, x);
          img.At3(0, y, x) = std::clamp(v * 0.8f + 0.12f, 0.0f, 1.0f);
        }
      }
      break;
    }
    case Weather::kSnow: {
      // Bright speckles.
      int flakes = static_cast<int>(wi * s * s * 0.05);
      for (int k = 0; k < flakes; ++k) {
        int x = rng->NextInt(0, s - 1);
        int y = rng->NextInt(0, s - 1);
        img.At3(0, y, x) = std::clamp(
            img.At3(0, y, x) + 0.5f + 0.3f * rng->NextFloat(), 0.0f, 1.0f);
      }
      break;
    }
    case Weather::kFog: {
      for (int64_t i = 0; i < img.size(); ++i) {
        img[i] = static_cast<float>(img[i] * (1.0 - wi) + 0.75 * wi);
      }
      break;
    }
  }

  // Sensor noise.
  if (spec.noise_sigma > 0.0) {
    for (int64_t i = 0; i < img.size(); ++i) {
      img[i] = static_cast<float>(std::clamp(
          img[i] + spec.noise_sigma * rng->NextGaussian(), 0.0, 1.0));
    }
  }
  return frame;
}

}  // namespace vdrift::video
