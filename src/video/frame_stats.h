#ifndef VDRIFT_VIDEO_FRAME_STATS_H_
#define VDRIFT_VIDEO_FRAME_STATS_H_

#include <vector>

#include "tensor/tensor.h"

namespace vdrift::video {

/// Number of statistics produced by GlobalFrameStats.
inline constexpr int kNumFrameStats = 6;

/// \brief Global photometric statistics of one frame.
///
/// Returns {mean, std, mean |dx|, mean |dy|, frac(pixels > 0.8),
/// frac(pixels < 0.2)}. These summarise lighting, contrast, texture
/// energy and tail mass — exactly the cues that shift under the paper's
/// drift conditions (day/night, rain streaks, snow speckle, fog) while
/// staying nearly constant across frames of one condition. The
/// DistributionProfile appends them (weighted) to the VAE latent to form
/// the non-conformity scoring embedding.
std::vector<float> GlobalFrameStats(const tensor::Tensor& pixels);

}  // namespace vdrift::video

#endif  // VDRIFT_VIDEO_FRAME_STATS_H_
