#ifndef VDRIFT_VIDEO_RENDERER_H_
#define VDRIFT_VIDEO_RENDERER_H_

#include "stats/rng.h"
#include "video/frame.h"
#include "video/scene.h"

namespace vdrift::video {

/// \brief Renders frames from a SceneSpec.
///
/// The rendering model: a sky/road gradient background with lane markings,
/// rectangular vehicles placed on lanes (with per-class geometry), a
/// viewpoint transform (shift / tilt / zoom), a weather overlay (rain
/// streaks, snow speckles, or fog wash), camera jitter, and Gaussian sensor
/// noise. Ground truth records the post-transform object geometry, so
/// oracle annotation is exact by construction.
class Renderer {
 public:
  /// `image_size` is the square frame side in pixels.
  explicit Renderer(int image_size = 32) : image_size_(image_size) {}

  /// Renders one frame from `spec`, drawing randomness from `rng`.
  Frame Render(const SceneSpec& spec, stats::Rng* rng) const;

  int image_size() const { return image_size_; }

 private:
  int image_size_;
};

}  // namespace vdrift::video

#endif  // VDRIFT_VIDEO_RENDERER_H_
