#ifndef VDRIFT_VIDEO_STREAM_H_
#define VDRIFT_VIDEO_STREAM_H_

#include <cstdint>
#include <vector>

#include "stats/rng.h"
#include "video/frame.h"
#include "video/renderer.h"
#include "video/scene.h"

namespace vdrift::video {

/// \brief Abstract frame producer: the minimal surface a pipeline needs.
///
/// Both synthetic generators implement it, and decorators (e.g.
/// fault::FaultyStream) wrap any FrameSource to perturb what flows
/// downstream without the pipeline knowing. Implementations must make
/// Reset() a bit-identical replay so checkpoint/resume can fast-forward
/// a fresh source to a saved cursor.
class FrameSource {
 public:
  virtual ~FrameSource() = default;

  /// Produces the next frame; returns false once the stream is exhausted.
  virtual bool Next(Frame* frame) = 0;

  /// Frames produced so far (index of the next frame).
  virtual int64_t position() const = 0;

  /// Total frames in the stream.
  virtual int64_t total_frames() const = 0;

  /// Restarts the stream for a bit-identical replay.
  virtual void Reset() = 0;
};

/// \brief One stationary stretch of the stream: a spec and its length.
struct Segment {
  SceneSpec spec;
  int64_t length = 0;
};

/// \brief An unbounded-style video stream built from segments.
///
/// Models the paper's problem statement: frames f_1..f_theta ~ F_k, then
/// f_{theta+1}.. ~ F_{k+1} and so on. The segment boundaries are the ground
/// truth drift points theta that the Drift Inspector must locate.
class StreamGenerator : public FrameSource {
 public:
  StreamGenerator(std::vector<Segment> segments, int image_size,
                  uint64_t seed);

  /// Produces the next frame; returns false once the stream is exhausted.
  bool Next(Frame* frame) override;

  /// Index of the next frame to be produced (frames produced so far).
  int64_t position() const override { return position_; }

  /// Total frames in the stream.
  int64_t total_frames() const override { return total_; }

  /// Global frame indices at which the distribution changes (the first
  /// frame of every segment after the first).
  const std::vector<int64_t>& drift_points() const { return drift_points_; }

  /// Sequence id (segment index) the next frame will belong to.
  int current_sequence() const { return segment_index_; }

  /// Restarts the stream with the same seed (bit-identical replay).
  void Reset() override;

 private:
  std::vector<Segment> segments_;
  Renderer renderer_;
  uint64_t seed_;
  stats::Rng rng_;
  int64_t position_ = 0;
  int64_t total_ = 0;
  int segment_index_ = 0;
  int64_t within_segment_ = 0;
  std::vector<int64_t> drift_points_;
};

/// \brief A gradual transition between two distributions (Fig. 4).
///
/// Renders `length` frames whose spec is LerpSpec(from, to, t) with t
/// ramping linearly from 0 to 1 across the middle `transition_fraction` of
/// the stream (plateaus at each end). The nominal drift point — the
/// "sunset" moment used as ground truth — is the frame where t crosses 0.5.
class SlowDriftStream : public FrameSource {
 public:
  SlowDriftStream(SceneSpec from, SceneSpec to, int64_t length,
                  double transition_fraction, int image_size, uint64_t seed);

  bool Next(Frame* frame) override;
  int64_t position() const override { return position_; }
  int64_t total_frames() const override { return length_; }
  /// Frame index where the interpolation parameter crosses 0.5.
  int64_t nominal_drift_point() const { return nominal_drift_; }
  /// Interpolation parameter for a given frame index.
  double MixAt(int64_t index) const;
  void Reset() override;

 private:
  SceneSpec from_;
  SceneSpec to_;
  int64_t length_;
  double transition_fraction_;
  Renderer renderer_;
  uint64_t seed_;
  stats::Rng rng_;
  int64_t position_ = 0;
  int64_t nominal_drift_ = 0;
};

/// Renders `count` i.i.d. frames from one spec — the synthetic counterpart
/// of a model's training set T_i.
std::vector<Frame> GenerateFrames(const SceneSpec& spec, int count,
                                  int image_size, uint64_t seed);

/// Extracts just the pixel tensors from frames.
std::vector<tensor::Tensor> PixelsOf(const std::vector<Frame>& frames);

}  // namespace vdrift::video

#endif  // VDRIFT_VIDEO_STREAM_H_
