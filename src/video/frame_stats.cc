#include "video/frame_stats.h"

#include <cmath>

#include "common/logging.h"

namespace vdrift::video {

std::vector<float> GlobalFrameStats(const tensor::Tensor& pixels) {
  VDRIFT_CHECK(pixels.shape().ndim() == 3);
  int64_t channels = pixels.shape().dim(0);
  int64_t height = pixels.shape().dim(1);
  int64_t width = pixels.shape().dim(2);
  int64_t n = pixels.size();
  double sum = 0.0;
  double sum_sq = 0.0;
  double bright = 0.0;
  double dark = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    double v = pixels[i];
    sum += v;
    sum_sq += v * v;
    if (v > 0.8) bright += 1.0;
    if (v < 0.2) dark += 1.0;
  }
  double mean = sum / static_cast<double>(n);
  double var = std::max(0.0, sum_sq / static_cast<double>(n) - mean * mean);
  double grad_x = 0.0;
  double grad_y = 0.0;
  int64_t gx_count = 0;
  int64_t gy_count = 0;
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t y = 0; y < height; ++y) {
      for (int64_t x = 0; x + 1 < width; ++x) {
        grad_x += std::abs(pixels.At3(c, y, x + 1) - pixels.At3(c, y, x));
        ++gx_count;
      }
    }
    for (int64_t y = 0; y + 1 < height; ++y) {
      for (int64_t x = 0; x < width; ++x) {
        grad_y += std::abs(pixels.At3(c, y + 1, x) - pixels.At3(c, y, x));
        ++gy_count;
      }
    }
  }
  return {static_cast<float>(mean),
          static_cast<float>(std::sqrt(var)),
          static_cast<float>(gx_count > 0 ? grad_x / gx_count : 0.0),
          static_cast<float>(gy_count > 0 ? grad_y / gy_count : 0.0),
          static_cast<float>(bright / static_cast<double>(n)),
          static_cast<float>(dark / static_cast<double>(n))};
}

}  // namespace vdrift::video
