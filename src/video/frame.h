#ifndef VDRIFT_VIDEO_FRAME_H_
#define VDRIFT_VIDEO_FRAME_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vdrift::video {

/// \brief Object classes appearing in the synthetic traffic scenes.
enum class ObjectClass : int { kCar = 0, kBus = 1 };

/// \brief Ground-truth record for one object in a frame.
///
/// Positions and sizes are normalized to [0, 1] relative to the frame.
struct ObjectTruth {
  ObjectClass cls = ObjectClass::kCar;
  float cx = 0.0f;  ///< Center x.
  float cy = 0.0f;  ///< Center y.
  float w = 0.0f;   ///< Width.
  float h = 0.0f;   ///< Height.
};

/// \brief Full ground truth for a frame, produced by the scene generator.
///
/// This plays the role the paper assigns to Mask R-CNN annotations: the
/// oracle labels used to train classifiers, calibrate MSBO, and score query
/// accuracy.
struct FrameTruth {
  int sequence_id = 0;      ///< Which distribution the frame came from.
  int64_t frame_index = 0;  ///< Global position in the stream.
  std::vector<ObjectTruth> objects;

  /// Number of cars in the frame.
  int CarCount() const;
  /// Number of buses in the frame.
  int BusCount() const;
  /// True iff some bus is strictly left of some car — the paper's spatial
  /// query predicate "bus is on the left side of a car" (§6.3.2).
  bool BusLeftOfCar() const;
};

/// \brief One video frame: pixels plus ground truth.
struct Frame {
  tensor::Tensor pixels;  ///< [channels, H, W] grayscale in [0, 1].
  FrameTruth truth;
};

}  // namespace vdrift::video

#endif  // VDRIFT_VIDEO_FRAME_H_
