#ifndef VDRIFT_VIDEO_DATASETS_H_
#define VDRIFT_VIDEO_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "video/scene.h"
#include "video/stream.h"

namespace vdrift::video {

/// \brief A synthetic dataset: named sequences in stream order.
///
/// Stand-ins for the paper's three datasets (BDD, Detrac, Tokyo). Each
/// sequence is one SceneSpec; concatenated they form the evaluation stream,
/// and each boundary is a ground-truth drift. Per Table 5, the sequences
/// carry dataset-specific object-per-frame statistics.
struct SyntheticDataset {
  std::string name;
  std::vector<Segment> segments;
  int image_size = 32;
  uint64_t seed = 0;

  /// Total stream length.
  int64_t total_frames() const;
  /// Sequence (segment) names in order.
  std::vector<std::string> SequenceNames() const;
  /// A generator over the whole stream.
  StreamGenerator MakeStream() const;
  /// The spec of a named sequence; dies if absent.
  const SceneSpec& SpecOf(const std::string& sequence_name) const;
};

/// BDD synthetic: dashcam stream with Day, Night, Rain, Snow sequences
/// (80k frames at scale 1.0; Table 5: 9.2 +/- 6.4 objects per frame).
SyntheticDataset MakeBddSynthetic(double scale = 0.1, uint64_t seed = 11);

/// Detrac synthetic: fixed camera, 5 viewpoint angles (30k frames at scale
/// 1.0; Table 5: 17.2 +/- 7.1 objects per frame).
SyntheticDataset MakeDetracSynthetic(double scale = 0.1, uint64_t seed = 22);

/// Tokyo synthetic: one intersection, 3 viewpoint angles; angles 1 and 3
/// share part of their field of view (the §6.1.1 nuance that lets
/// ODIN-Detect win on the Angle 2 switch). 45k frames at scale 1.0;
/// Table 5: 19.2 +/- 4.7 objects per frame.
SyntheticDataset MakeTokyoSynthetic(double scale = 0.1, uint64_t seed = 33);

/// Day and night specs for the slow-drift experiment (Fig. 4).
SceneSpec TokyoDaySpec();
SceneSpec TokyoNightSpec();

}  // namespace vdrift::video

#endif  // VDRIFT_VIDEO_DATASETS_H_
