#include "video/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vdrift::video {

int64_t SyntheticDataset::total_frames() const {
  int64_t total = 0;
  for (const Segment& s : segments) total += s.length;
  return total;
}

std::vector<std::string> SyntheticDataset::SequenceNames() const {
  std::vector<std::string> names;
  names.reserve(segments.size());
  for (const Segment& s : segments) names.push_back(s.spec.name);
  return names;
}

StreamGenerator SyntheticDataset::MakeStream() const {
  return StreamGenerator(segments, image_size, seed);
}

const SceneSpec& SyntheticDataset::SpecOf(
    const std::string& sequence_name) const {
  for (const Segment& s : segments) {
    if (s.spec.name == sequence_name) return s.spec;
  }
  VDRIFT_LOG_FATAL << "unknown sequence " << sequence_name;
  return segments.front().spec;  // unreachable
}

namespace {

int64_t Scaled(double scale, int64_t full) {
  return std::max<int64_t>(64, static_cast<int64_t>(std::llround(
                                   scale * static_cast<double>(full))));
}

SceneSpec BddBase() {
  SceneSpec spec;
  spec.object_rate_mean = 9.2;
  spec.object_rate_std = 6.4;
  spec.bus_fraction = 0.15;
  spec.jitter = 0.015;  // dashcam motion
  spec.lanes = 3;
  return spec;
}

SceneSpec DetracBase() {
  SceneSpec spec;
  spec.object_rate_mean = 17.2;
  spec.object_rate_std = 7.1;
  spec.bus_fraction = 0.12;
  spec.jitter = 0.0;  // fixed camera
  spec.lanes = 4;
  return spec;
}

SceneSpec TokyoBase() {
  SceneSpec spec;
  spec.object_rate_mean = 19.2;
  spec.object_rate_std = 4.7;
  spec.bus_fraction = 0.18;
  spec.jitter = 0.0;  // fixed camera
  spec.lanes = 4;
  return spec;
}

}  // namespace

SyntheticDataset MakeBddSynthetic(double scale, uint64_t seed) {
  SyntheticDataset ds;
  ds.name = "BDD";
  ds.seed = seed;
  int64_t per_seq = Scaled(scale, 20000);

  SceneSpec day = BddBase();
  day.name = "Day";
  day.base_luminance = 0.68;
  day.noise_sigma = 0.015;
  day.object_brightness = 1.0;  // bright vehicles in daylight

  SceneSpec night = BddBase();
  night.name = "Night";
  night.base_luminance = 0.14;
  night.noise_sigma = 0.035;

  SceneSpec rain = BddBase();
  rain.name = "Rain";
  rain.base_luminance = 0.52;
  rain.noise_sigma = 0.05;
  rain.weather = Weather::kRain;
  rain.weather_intensity = 0.9;
  rain.contrast = 0.65;
  rain.object_brightness = 0.55;  // dull, low-contrast vehicles in rain

  SceneSpec snow = BddBase();
  snow.name = "Snow";
  snow.base_luminance = 0.85;
  snow.noise_sigma = 0.045;
  snow.weather = Weather::kSnow;
  snow.weather_intensity = 0.85;
  snow.contrast = 0.6;
  snow.object_brightness = 0.22;  // dark silhouettes on bright snow

  // Stream order Day -> Night -> Rain -> Snow; each boundary is a drift
  // "switching to" the named sequence (paper §6: drifts to Night, Rain,
  // Snow, Day — Day doubles as both the opening and the wrap-around
  // sequence in their cyclic evaluation).
  ds.segments = {{day, per_seq}, {night, per_seq}, {rain, per_seq},
                 {snow, per_seq}};
  return ds;
}

SyntheticDataset MakeDetracSynthetic(double scale, uint64_t seed) {
  SyntheticDataset ds;
  ds.name = "Detrac";
  ds.seed = seed;
  int64_t per_seq = Scaled(scale, 6000);
  // Five viewpoints of the same traffic layout. Each camera also carries
  // its own photometric identity (exposure, contrast, sensor noise,
  // apparent vehicle brightness) — as distinct physical cameras do — so
  // per-angle models genuinely degrade off-angle, the paper's premise for
  // model selection.
  const double shift_x[5] = {-0.22, -0.10, 0.02, 0.14, 0.26};
  const double tilt[5] = {-0.15, 0.10, -0.05, 0.20, 0.0};
  const double zoom[5] = {0.9, 1.0, 1.15, 0.95, 1.25};
  const double lum[5] = {0.45, 0.63, 0.38, 0.70, 0.54};
  const double contrast[5] = {1.0, 0.85, 1.1, 0.72, 0.95};
  const double noise[5] = {0.02, 0.032, 0.045, 0.018, 0.036};
  const double obj[5] = {1.35, 0.70, 1.25, 0.28, 0.85};
  for (int k = 0; k < 5; ++k) {
    SceneSpec spec = DetracBase();
    spec.name = "Angle " + std::to_string(k + 1);
    spec.angle_shift_x = shift_x[k];
    spec.angle_tilt = tilt[k];
    spec.zoom = zoom[k];
    spec.base_luminance = lum[k];
    spec.contrast = contrast[k];
    spec.noise_sigma = noise[k];
    spec.object_brightness = obj[k];
    ds.segments.push_back({spec, per_seq});
  }
  return ds;
}

SyntheticDataset MakeTokyoSynthetic(double scale, uint64_t seed) {
  SyntheticDataset ds;
  ds.name = "Tokyo";
  ds.seed = seed;
  int64_t per_seq = Scaled(scale, 15000);

  // Angles 1 and 3 share part of their field of view (similar shift and
  // zoom), so their representations sit much closer to each other than to
  // Angle 2 — the §6.1.1 nuance. They remain separable through modest
  // photometric differences (distinct cameras at the same intersection).
  SceneSpec a1 = TokyoBase();
  a1.name = "Angle 1";
  a1.angle_shift_x = -0.08;
  a1.angle_tilt = 0.0;
  a1.zoom = 1.0;
  a1.base_luminance = 0.62;
  a1.object_brightness = 0.95;
  a1.noise_sigma = 0.02;

  SceneSpec a2 = TokyoBase();
  a2.name = "Angle 2";
  a2.angle_shift_x = 0.28;
  a2.angle_tilt = 0.25;
  a2.zoom = 1.2;
  a2.base_luminance = 0.42;
  a2.contrast = 0.8;
  a2.object_brightness = 1.3;
  a2.noise_sigma = 0.04;

  SceneSpec a3 = TokyoBase();
  a3.name = "Angle 3";
  a3.angle_shift_x = -0.02;
  a3.angle_tilt = 0.10;
  a3.zoom = 1.05;
  a3.base_luminance = 0.55;
  a3.contrast = 0.9;
  a3.object_brightness = 0.70;
  a3.noise_sigma = 0.028;

  ds.segments = {{a1, per_seq}, {a2, per_seq}, {a3, per_seq}};
  return ds;
}

SceneSpec TokyoDaySpec() {
  SceneSpec spec = TokyoBase();
  spec.name = "Tokyo Day";
  spec.base_luminance = 0.62;
  spec.noise_sigma = 0.02;
  return spec;
}

SceneSpec TokyoNightSpec() {
  SceneSpec spec = TokyoBase();
  spec.name = "Tokyo Night";
  spec.base_luminance = 0.15;
  spec.noise_sigma = 0.035;
  return spec;
}

}  // namespace vdrift::video
