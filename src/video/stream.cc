#include "video/stream.h"

#include <algorithm>

#include "common/logging.h"

namespace vdrift::video {

StreamGenerator::StreamGenerator(std::vector<Segment> segments, int image_size,
                                 uint64_t seed)
    : segments_(std::move(segments)),
      renderer_(image_size),
      seed_(seed),
      rng_(seed) {
  VDRIFT_CHECK(!segments_.empty());
  int64_t cum = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    VDRIFT_CHECK(segments_[i].length > 0);
    if (i > 0) drift_points_.push_back(cum);
    cum += segments_[i].length;
  }
  total_ = cum;
}

bool StreamGenerator::Next(Frame* frame) {
  if (position_ >= total_) return false;
  while (within_segment_ >=
         segments_[static_cast<size_t>(segment_index_)].length) {
    ++segment_index_;
    within_segment_ = 0;
  }
  *frame = renderer_.Render(
      segments_[static_cast<size_t>(segment_index_)].spec, &rng_);
  frame->truth.sequence_id = segment_index_;
  frame->truth.frame_index = position_;
  ++position_;
  ++within_segment_;
  return true;
}

void StreamGenerator::Reset() {
  rng_ = stats::Rng(seed_);
  position_ = 0;
  segment_index_ = 0;
  within_segment_ = 0;
}

SlowDriftStream::SlowDriftStream(SceneSpec from, SceneSpec to, int64_t length,
                                 double transition_fraction, int image_size,
                                 uint64_t seed)
    : from_(std::move(from)),
      to_(std::move(to)),
      length_(length),
      transition_fraction_(std::clamp(transition_fraction, 0.01, 1.0)),
      renderer_(image_size),
      seed_(seed),
      rng_(seed) {
  VDRIFT_CHECK(length_ > 1);
  // t crosses 0.5 exactly at the stream midpoint by construction.
  nominal_drift_ = length_ / 2;
}

double SlowDriftStream::MixAt(int64_t index) const {
  double pos = static_cast<double>(index) / static_cast<double>(length_ - 1);
  double start = 0.5 - transition_fraction_ / 2.0;
  double t = (pos - start) / transition_fraction_;
  return std::clamp(t, 0.0, 1.0);
}

bool SlowDriftStream::Next(Frame* frame) {
  if (position_ >= length_) return false;
  double t = MixAt(position_);
  SceneSpec spec = LerpSpec(from_, to_, t);
  *frame = renderer_.Render(spec, &rng_);
  frame->truth.sequence_id = t < 0.5 ? 0 : 1;
  frame->truth.frame_index = position_;
  ++position_;
  return true;
}

void SlowDriftStream::Reset() {
  rng_ = stats::Rng(seed_);
  position_ = 0;
}

std::vector<Frame> GenerateFrames(const SceneSpec& spec, int count,
                                  int image_size, uint64_t seed) {
  Renderer renderer(image_size);
  stats::Rng rng(seed);
  std::vector<Frame> frames;
  frames.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Frame f = renderer.Render(spec, &rng);
    f.truth.frame_index = i;
    frames.push_back(std::move(f));
  }
  return frames;
}

std::vector<tensor::Tensor> PixelsOf(const std::vector<Frame>& frames) {
  std::vector<tensor::Tensor> pixels;
  pixels.reserve(frames.size());
  for (const Frame& f : frames) pixels.push_back(f.pixels);
  return pixels;
}

}  // namespace vdrift::video
