#include "tensor/ops.h"

#include "obs/trace_log.h"
#include "runtime/parallel.h"

namespace vdrift::tensor {

namespace {

using runtime::GrainForCost;
using runtime::ParallelFor;
using runtime::ParallelReduce;

void CheckSameShape(const Tensor& a, const Tensor& b) {
  VDRIFT_CHECK(a.shape() == b.shape())
      << "shape mismatch: " << a.shape().ToString() << " vs "
      << b.shape().ToString();
}

// GEMM attribution: 2mkn FLOPs (one multiply + one add per inner-product
// term), bytes = the three operand matrices once through memory. The
// kernels below do exactly this much arithmetic on every input — no
// data-dependent shortcuts — so the attribution is exact and benchmark
// numbers do not depend on operand sparsity.
int64_t GemmFlops(int64_t m, int64_t k, int64_t n) { return 2 * m * k * n; }
int64_t GemmBytes(int64_t m, int64_t k, int64_t n) {
  return static_cast<int64_t>(sizeof(float)) * (m * k + k * n + m * n);
}

// Elementwise loops parallelize per index; each element's computation is
// order-independent, so any chunking is bit-identical to serial.
constexpr int64_t kElementwiseGrain = 1 << 15;

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  float* o = out.data();
  const float* pb = b.data();
  ParallelFor(0, out.size(), kElementwiseGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) o[i] += pb[i];
              });
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  float* o = out.data();
  const float* pb = b.data();
  ParallelFor(0, out.size(), kElementwiseGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) o[i] -= pb[i];
              });
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  float* o = out.data();
  const float* pb = b.data();
  ParallelFor(0, out.size(), kElementwiseGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) o[i] *= pb[i];
              });
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  float* o = out.data();
  ParallelFor(0, out.size(), kElementwiseGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) o[i] *= s;
              });
  return out;
}

void AddInPlace(Tensor* a, const Tensor& b) {
  CheckSameShape(*a, b);
  float* pa = a->data();
  const float* pb = b.data();
  ParallelFor(0, a->size(), kElementwiseGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) pa[i] += pb[i];
              });
}

void AxpyInPlace(Tensor* a, const Tensor& b, float s) {
  CheckSameShape(*a, b);
  float* pa = a->data();
  const float* pb = b.data();
  ParallelFor(0, a->size(), kElementwiseGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) pa[i] += s * pb[i];
              });
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  VDRIFT_CHECK(a.shape().ndim() == 2 && b.shape().ndim() == 2);
  int64_t m = a.shape().dim(0);
  int64_t k = a.shape().dim(1);
  VDRIFT_CHECK(b.shape().dim(0) == k)
      << "matmul inner dim mismatch " << a.shape().ToString() << " x "
      << b.shape().ToString();
  int64_t n = b.shape().dim(1);
  VDRIFT_OP_PROBE("tensor", "matmul", GemmFlops(m, k, n),
                  GemmBytes(m, k, n));
  Tensor out(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Rows of C are independent; within a row the i-k-j order streams over
  // contiguous rows of B and C, and each C element accumulates its k
  // terms in ascending order on one thread — bit-identical to serial.
  ParallelFor(0, m, GrainForCost(2 * k * n),
              [&](int64_t row_begin, int64_t row_end) {
                for (int64_t i = row_begin; i < row_end; ++i) {
                  float* crow = po + i * n;
                  for (int64_t kk = 0; kk < k; ++kk) {
                    float aik = pa[i * k + kk];
                    const float* brow = pb + kk * n;
                    for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
                  }
                }
              });
  return out;
}

Tensor MatmulTransposedB(const Tensor& a, const Tensor& b) {
  VDRIFT_CHECK(a.shape().ndim() == 2 && b.shape().ndim() == 2);
  int64_t m = a.shape().dim(0);
  int64_t k = a.shape().dim(1);
  VDRIFT_CHECK(b.shape().dim(1) == k);
  int64_t n = b.shape().dim(0);
  VDRIFT_OP_PROBE("tensor", "matmul_transposed_b", GemmFlops(m, k, n),
                  GemmBytes(m, k, n));
  Tensor out(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, m, GrainForCost(2 * k * n),
              [&](int64_t row_begin, int64_t row_end) {
                for (int64_t i = row_begin; i < row_end; ++i) {
                  const float* arow = pa + i * k;
                  for (int64_t j = 0; j < n; ++j) {
                    const float* brow = pb + j * k;
                    float acc = 0.0f;
                    for (int64_t kk = 0; kk < k; ++kk) {
                      acc += arow[kk] * brow[kk];
                    }
                    po[i * n + j] = acc;
                  }
                }
              });
  return out;
}

Tensor MatmulTransposedA(const Tensor& a, const Tensor& b) {
  VDRIFT_CHECK(a.shape().ndim() == 2 && b.shape().ndim() == 2);
  int64_t k = a.shape().dim(0);
  int64_t m = a.shape().dim(1);
  VDRIFT_CHECK(b.shape().dim(0) == k);
  int64_t n = b.shape().dim(1);
  VDRIFT_OP_PROBE("tensor", "matmul_transposed_a", GemmFlops(m, k, n),
                  GemmBytes(m, k, n));
  Tensor out(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // i outer so output rows are thread-private (A is read with stride m);
  // per element the k terms still accumulate in ascending order.
  ParallelFor(0, m, GrainForCost(2 * k * n),
              [&](int64_t row_begin, int64_t row_end) {
                for (int64_t i = row_begin; i < row_end; ++i) {
                  float* crow = po + i * n;
                  for (int64_t kk = 0; kk < k; ++kk) {
                    float aik = pa[kk * m + i];
                    const float* brow = pb + kk * n;
                    for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
                  }
                }
              });
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  VDRIFT_CHECK(a.shape().ndim() == 2);
  int64_t m = a.shape().dim(0);
  int64_t n = a.shape().dim(1);
  Tensor out(Shape{n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out[j * m + i] = a[i * n + j];
    }
  }
  return out;
}

double Sum(const Tensor& a) {
  const float* p = a.data();
  // Fixed chunking + in-order combine keeps the result bit-identical for
  // every thread count (see runtime/parallel.h).
  return ParallelReduce<double>(
      0, a.size(), kElementwiseGrain, 0.0,
      [&](int64_t begin, int64_t end) {
        double s = 0.0;
        for (int64_t i = begin; i < end; ++i) s += p[i];
        return s;
      },
      [](double acc, double partial) { return acc + partial; });
}

double Mean(const Tensor& a) {
  if (a.size() == 0) return 0.0;
  return Sum(a) / static_cast<double>(a.size());
}

Tensor Im2Col(const Tensor& input, int kh, int kw, int stride, int pad,
              int out_h, int out_w) {
  VDRIFT_CHECK(input.shape().ndim() == 3);
  int64_t channels = input.shape().dim(0);
  int64_t height = input.shape().dim(1);
  int64_t width = input.shape().dim(2);
  int64_t rows = channels * kh * kw;
  int64_t cols = static_cast<int64_t>(out_h) * out_w;
  // Pure data movement: 0 FLOPs, input read once + output written once.
  VDRIFT_OP_PROBE("tensor", "im2col", 0,
                  static_cast<int64_t>(sizeof(float)) *
                      (input.size() + rows * cols));
  Tensor out(Shape{rows, cols});
  const float* in = input.data();
  float* po = out.data();
  // Each output row belongs to one (c, ky, kx) triple — thread-private.
  ParallelFor(0, rows, GrainForCost(cols), [&](int64_t row_begin,
                                               int64_t row_end) {
    for (int64_t row = row_begin; row < row_end; ++row) {
      int64_t c = row / (kh * kw);
      int ky = static_cast<int>((row / kw) % kh);
      int kx = static_cast<int>(row % kw);
      float* orow = po + row * cols;
      for (int oy = 0; oy < out_h; ++oy) {
        int iy = oy * stride + ky - pad;
        bool y_ok = iy >= 0 && iy < height;
        for (int ox = 0; ox < out_w; ++ox) {
          int ix = ox * stride + kx - pad;
          float v = 0.0f;
          if (y_ok && ix >= 0 && ix < width) {
            v = in[(c * height + iy) * width + ix];
          }
          orow[oy * out_w + ox] = v;
        }
      }
    }
  });
  return out;
}

Tensor Col2Im(const Tensor& cols, int channels, int height, int width, int kh,
              int kw, int stride, int pad, int out_h, int out_w) {
  VDRIFT_CHECK(cols.shape().ndim() == 2);
  VDRIFT_CHECK(cols.shape().dim(0) ==
               static_cast<int64_t>(channels) * kh * kw);
  VDRIFT_CHECK(cols.shape().dim(1) == static_cast<int64_t>(out_h) * out_w);
  // One accumulate per column cell; operands once through memory.
  VDRIFT_OP_PROBE(
      "tensor", "col2im", cols.size(),
      static_cast<int64_t>(sizeof(float)) *
          (cols.size() +
           static_cast<int64_t>(channels) * height * width));
  Tensor out(Shape{channels, height, width});
  const float* pc = cols.data();
  float* po = out.data();
  int64_t ncols = static_cast<int64_t>(out_h) * out_w;
  // Channels scatter into disjoint output planes, and within a channel
  // the (ky, kx, oy, ox) accumulation order matches the serial kernel.
  ParallelFor(
      0, channels,
      GrainForCost(static_cast<int64_t>(kh) * kw * ncols),
      [&](int64_t c_begin, int64_t c_end) {
        for (int64_t c = c_begin; c < c_end; ++c) {
          for (int ky = 0; ky < kh; ++ky) {
            for (int kx = 0; kx < kw; ++kx) {
              int64_t row = (c * kh + ky) * kw + kx;
              const float* crow = pc + row * ncols;
              for (int oy = 0; oy < out_h; ++oy) {
                int iy = oy * stride + ky - pad;
                if (iy < 0 || iy >= height) continue;
                for (int ox = 0; ox < out_w; ++ox) {
                  int ix = ox * stride + kx - pad;
                  if (ix < 0 || ix >= width) continue;
                  po[(c * height + iy) * width + ix] +=
                      crow[oy * out_w + ox];
                }
              }
            }
          }
        }
      });
  return out;
}

}  // namespace vdrift::tensor
