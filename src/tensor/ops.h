#ifndef VDRIFT_TENSOR_OPS_H_
#define VDRIFT_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace vdrift::tensor {

/// c = a + b (elementwise; shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);
/// c = a - b (elementwise; shapes must match).
Tensor Sub(const Tensor& a, const Tensor& b);
/// c = a * b (elementwise; shapes must match).
Tensor Mul(const Tensor& a, const Tensor& b);
/// c = a * s (scalar).
Tensor Scale(const Tensor& a, float s);
/// a += b in place (shapes must match).
void AddInPlace(Tensor* a, const Tensor& b);
/// a += b * s in place (axpy; shapes must match).
void AxpyInPlace(Tensor* a, const Tensor& b, float s);

/// Matrix product of a [m, k] tensor with a [k, n] tensor -> [m, n].
Tensor Matmul(const Tensor& a, const Tensor& b);

/// Matrix product with B transposed: a [m, k] x b [n, k] -> [m, n].
Tensor MatmulTransposedB(const Tensor& a, const Tensor& b);

/// Matrix product with A transposed: a [k, m] x b [k, n] -> [m, n].
Tensor MatmulTransposedA(const Tensor& a, const Tensor& b);

/// Transpose of a 2-D tensor.
Tensor Transpose2D(const Tensor& a);

/// Sum of all elements.
double Sum(const Tensor& a);

/// Mean of all elements (0 for empty tensors).
double Mean(const Tensor& a);

/// im2col for 2-D convolution. Input: [C, H, W]. Output: a
/// [C*kh*kw, out_h*out_w] matrix whose columns are the receptive fields.
/// Out-of-bounds (padding) cells are zero.
Tensor Im2Col(const Tensor& input, int kh, int kw, int stride, int pad,
              int out_h, int out_w);

/// Inverse of Im2Col: scatters (accumulates) columns back into a [C, H, W]
/// tensor. Used by the convolution backward pass.
Tensor Col2Im(const Tensor& cols, int channels, int height, int width, int kh,
              int kw, int stride, int pad, int out_h, int out_w);

/// Output spatial extent of a convolution along one axis.
inline int ConvOutDim(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace vdrift::tensor

#endif  // VDRIFT_TENSOR_OPS_H_
