#ifndef VDRIFT_TENSOR_TENSOR_H_
#define VDRIFT_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"

namespace vdrift::tensor {

/// \brief Shape of a dense tensor: a list of dimension extents.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  /// Number of dimensions.
  int ndim() const { return static_cast<int>(dims_.size()); }
  /// Extent of dimension i.
  int64_t dim(int i) const { return dims_[static_cast<size_t>(i)]; }
  /// Total number of elements (1 for a scalar shape).
  int64_t NumElements() const;
  /// The raw extents.
  const std::vector<int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Renders e.g. "[16, 1, 32, 32]".
  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

/// \brief Dense row-major float32 tensor.
///
/// The numeric workhorse under the neural-network stack, the VAE, and the
/// synthetic frame renderer. Deliberately simple: owning, contiguous,
/// row-major float storage with shape metadata. Copyable and movable.
class Tensor {
 public:
  /// An empty (0-element, 0-dim) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.NumElements()), 0.0f) {}

  /// Tensor of the given shape filled with `fill`.
  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.NumElements()), fill) {}

  /// Tensor with explicit contents; `data.size()` must match the shape.
  Tensor(Shape shape, std::vector<float> data);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// The tensor's shape.
  const Shape& shape() const { return shape_; }
  /// Total number of elements.
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  /// True iff the tensor holds no elements.
  bool empty() const { return data_.empty(); }

  /// Flat element access.
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }

  /// 2-D access (row-major). Precondition: ndim() == 2.
  float At2(int64_t i, int64_t j) const {
    VDRIFT_DCHECK(shape_.ndim() == 2);
    return data_[static_cast<size_t>(i * shape_.dim(1) + j)];
  }
  float& At2(int64_t i, int64_t j) {
    VDRIFT_DCHECK(shape_.ndim() == 2);
    return data_[static_cast<size_t>(i * shape_.dim(1) + j)];
  }

  /// 3-D access (e.g. CHW images). Precondition: ndim() == 3.
  float At3(int64_t c, int64_t h, int64_t w) const {
    VDRIFT_DCHECK(shape_.ndim() == 3);
    return data_[static_cast<size_t>((c * shape_.dim(1) + h) * shape_.dim(2) +
                                     w)];
  }
  float& At3(int64_t c, int64_t h, int64_t w) {
    VDRIFT_DCHECK(shape_.ndim() == 3);
    return data_[static_cast<size_t>((c * shape_.dim(1) + h) * shape_.dim(2) +
                                     w)];
  }

  /// 4-D access (e.g. NCHW batches). Precondition: ndim() == 4.
  float At4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    VDRIFT_DCHECK(shape_.ndim() == 4);
    return data_[static_cast<size_t>(
        ((n * shape_.dim(1) + c) * shape_.dim(2) + h) * shape_.dim(3) + w)];
  }
  float& At4(int64_t n, int64_t c, int64_t h, int64_t w) {
    VDRIFT_DCHECK(shape_.ndim() == 4);
    return data_[static_cast<size_t>(
        ((n * shape_.dim(1) + c) * shape_.dim(2) + h) * shape_.dim(3) + w)];
  }

  /// Read-only flat view of the data.
  std::span<const float> flat() const { return data_; }
  /// Mutable flat view of the data.
  std::span<float> flat_mut() { return data_; }
  /// Raw pointers for kernel code.
  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }

  /// Returns a copy with a new shape holding the same number of elements.
  Tensor Reshaped(Shape new_shape) const;

  /// Sets every element to `value`.
  void Fill(float value);

  /// Sets every element to 0.
  void Zero() { Fill(0.0f); }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace vdrift::tensor

#endif  // VDRIFT_TENSOR_TENSOR_H_
