#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

namespace vdrift::tensor {

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::string Shape::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  VDRIFT_CHECK(static_cast<int64_t>(data_.size()) == shape_.NumElements())
      << "data size " << data_.size() << " != shape " << shape_.ToString();
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  VDRIFT_CHECK(new_shape.NumElements() == shape_.NumElements())
      << "reshape " << shape_.ToString() << " -> " << new_shape.ToString();
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace vdrift::tensor
