#ifndef VDRIFT_NN_DROPOUT_H_
#define VDRIFT_NN_DROPOUT_H_

#include <string>

#include "nn/layer.h"
#include "stats/rng.h"
#include "tensor/tensor.h"

namespace vdrift::nn {

/// \brief Inverted dropout.
///
/// During training each activation is zeroed with probability `rate` and
/// survivors are scaled by 1/(1-rate); in eval mode the layer is the
/// identity. Provided both as a regulariser and as the substrate for
/// Monte-Carlo-dropout uncertainty — the Bayesian-approximation
/// alternative the paper's related work cites ([18] Gal & Ghahramani)
/// before arguing for deep ensembles.
class Dropout : public Layer {
 public:
  /// `rng` must outlive the layer.
  Dropout(double rate, stats::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

  /// Training mode samples a fresh mask per Forward; eval mode is the
  /// identity. Keep training mode on at inference time for MC dropout.
  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }
  double rate() const { return rate_; }

 private:
  double rate_;
  stats::Rng* rng_;
  bool training_ = true;
  tensor::Tensor mask_;
};

}  // namespace vdrift::nn

#endif  // VDRIFT_NN_DROPOUT_H_
