#ifndef VDRIFT_NN_LAYER_H_
#define VDRIFT_NN_LAYER_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace vdrift::nn {

/// \brief A trainable parameter: value plus accumulated gradient.
struct Parameter {
  tensor::Tensor value;
  tensor::Tensor grad;

  explicit Parameter(tensor::Shape shape)
      : value(shape), grad(std::move(shape)) {}

  /// Resets the accumulated gradient to zero.
  void ZeroGrad() { grad.Zero(); }
};

/// \brief Base class for differentiable layers.
///
/// The stack uses explicit, caller-driven backpropagation rather than a
/// taped autograd: Forward caches whatever the layer needs, Backward maps
/// the gradient w.r.t. the output to the gradient w.r.t. the input and
/// *accumulates* parameter gradients. A training step is therefore:
/// ZeroGrad -> Forward -> loss -> Backward (in reverse) -> optimizer step.
///
/// Convention: 2-D activations are [batch, features]; 4-D activations are
/// [batch, channels, height, width].
class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer on a batch, caching state for Backward.
  virtual tensor::Tensor Forward(const tensor::Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after the matching Forward.
  virtual tensor::Tensor Backward(const tensor::Tensor& grad_output) = 0;

  /// The layer's trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Params() { return {}; }

  /// Human-readable layer name for diagnostics.
  virtual std::string name() const = 0;
};

}  // namespace vdrift::nn

#endif  // VDRIFT_NN_LAYER_H_
