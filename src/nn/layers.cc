#include "nn/layers.h"

#include <cmath>

#include "nn/init.h"
#include "obs/trace_log.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"

namespace vdrift::nn {

using runtime::GrainForCost;
using runtime::ParallelFor;
using tensor::ConvOutDim;
using tensor::Shape;
using tensor::Tensor;

namespace {

// Elementwise-layer attribution: ~1 FLOP per element (activations with
// transcendentals undercount deliberately — they are profiled for shape,
// not instruction mix), input + output once through memory.
int64_t ElementwiseBytes(int64_t elements) {
  return 2 * static_cast<int64_t>(sizeof(float)) * elements;
}

// Activation loops are pure per-element maps; transcendentals are costed
// a few units so small tensors stay inline (see GrainForCost).
constexpr int64_t kActivationGrain = 1 << 13;

}  // namespace

Linear::Linear(int in_features, int out_features, stats::Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{out_features, in_features}),
      bias_(Shape{out_features}) {
  HeInit(&weight_.value, in_features, rng);
}

Tensor Linear::Forward(const Tensor& input) {
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(input.shape().ndim() == 2 &&
               input.shape().dim(1) == in_features_)
      << "Linear expects [N, " << in_features_ << "], got "
      << input.shape().ToString();
  int64_t batch = input.shape().dim(0);
  // GEMM + bias add. Layer probes subsume the tensor-op probes they call
  // (vdrift.ops.nn.* totals include the vdrift.ops.tensor.* work below).
  VDRIFT_OP_PROBE(
      "nn", "linear_forward",
      2 * batch * in_features_ * out_features_ + batch * out_features_,
      static_cast<int64_t>(sizeof(float)) *
          (batch * in_features_ +
           static_cast<int64_t>(out_features_) * in_features_ +
           out_features_ + batch * out_features_));
  cached_input_ = input;
  Tensor out = tensor::MatmulTransposedB(input, weight_.value);
  int64_t n = out.shape().dim(0);
  float* po = out.data();
  const float* pbias = bias_.value.data();
  ParallelFor(0, n, GrainForCost(out_features_),
              [&](int64_t row_begin, int64_t row_end) {
                for (int64_t i = row_begin; i < row_end; ++i) {
                  float* row = po + i * out_features_;
                  for (int64_t j = 0; j < out_features_; ++j) {
                    row[j] += pbias[j];
                  }
                }
              });
  return out;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(grad_output.shape().ndim() == 2 &&
               grad_output.shape().dim(1) == out_features_);
  int64_t batch = grad_output.shape().dim(0);
  // Two GEMMs (dW, dX) plus the bias-gradient column sums.
  VDRIFT_OP_PROBE(
      "nn", "linear_backward",
      4 * batch * in_features_ * out_features_ + batch * out_features_,
      static_cast<int64_t>(sizeof(float)) *
          (2 * batch * out_features_ + 2 * batch * in_features_ +
           2 * static_cast<int64_t>(out_features_) * in_features_ +
           out_features_));
  // dW += dY^T X ; db += column sums of dY ; dX = dY W.
  Tensor dw = tensor::MatmulTransposedA(grad_output, cached_input_);
  tensor::AddInPlace(&weight_.grad, dw);
  int64_t n = grad_output.shape().dim(0);
  const float* pdy = grad_output.data();
  float* pdb = bias_.grad.data();
  // Columns of db are independent; each keeps the serial (ascending i)
  // accumulation order.
  ParallelFor(0, out_features_, GrainForCost(n),
              [&](int64_t col_begin, int64_t col_end) {
                for (int64_t j = col_begin; j < col_end; ++j) {
                  for (int64_t i = 0; i < n; ++i) {
                    pdb[j] += pdy[i * out_features_ + j];
                  }
                }
              });
  return tensor::Matmul(grad_output, weight_.value);
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, stats::Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Shape{out_channels, in_channels * kernel * kernel}),
      bias_(Shape{out_channels}) {
  HeInit(&weight_.value, in_channels * kernel * kernel, rng);
}

Tensor Conv2d::Forward(const Tensor& input) {
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(input.shape().ndim() == 4 &&
               input.shape().dim(1) == in_channels_)
      << "Conv2d expects [N, " << in_channels_ << ", H, W], got "
      << input.shape().ToString();
  int64_t n = input.shape().dim(0);
  in_h_ = static_cast<int>(input.shape().dim(2));
  in_w_ = static_cast<int>(input.shape().dim(3));
  out_h_ = ConvOutDim(in_h_, kernel_, stride_, pad_);
  out_w_ = ConvOutDim(in_w_, kernel_, stride_, pad_);
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(out_h_ > 0 && out_w_ > 0);
  int64_t out_plane = static_cast<int64_t>(out_h_) * out_w_;
  int64_t patch = static_cast<int64_t>(in_channels_) * kernel_ * kernel_;
  // Per sample: im2col GEMM (2 * out_c * patch * out_plane) + bias add.
  VDRIFT_OP_PROBE(
      "nn", "conv2d_forward",
      n * (2 * out_channels_ * patch * out_plane +
           out_channels_ * out_plane),
      static_cast<int64_t>(sizeof(float)) *
          (input.size() + out_channels_ * patch + out_channels_ +
           n * out_channels_ * out_plane));
  cached_cols_.assign(static_cast<size_t>(n), Tensor());
  Tensor out(Shape{n, out_channels_, out_h_, out_w_});
  int64_t plane = static_cast<int64_t>(out_h_) * out_w_;
  // Samples are independent: each writes its own output block and
  // cached_cols_ slot (pre-sized above, so no container mutation races).
  // Nested tensor-op parallelism runs inline inside a sample chunk.
  ParallelFor(0, n, 1, [&](int64_t s_begin, int64_t s_end) {
    for (int64_t s = s_begin; s < s_end; ++s) {
      // View of sample s as [C, H, W].
      Tensor sample(Shape{in_channels_, in_h_, in_w_});
      const float* src =
          input.data() +
          s * in_channels_ * static_cast<int64_t>(in_h_) * in_w_;
      std::copy(src, src + sample.size(), sample.data());
      Tensor cols = tensor::Im2Col(sample, kernel_, kernel_, stride_, pad_,
                                   out_h_, out_w_);
      Tensor result = tensor::Matmul(weight_.value, cols);
      float* dst = out.data() + s * out_channels_ * plane;
      for (int64_t c = 0; c < out_channels_; ++c) {
        float b = bias_.value[c];
        for (int64_t p = 0; p < plane; ++p) {
          dst[c * plane + p] = result[c * plane + p] + b;
        }
      }
      cached_cols_[static_cast<size_t>(s)] = std::move(cols);
    }
  });
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  int64_t n = grad_output.shape().dim(0);
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(grad_output.shape().ndim() == 4 &&
               grad_output.shape().dim(1) == out_channels_ &&
               grad_output.shape().dim(2) == out_h_ &&
               grad_output.shape().dim(3) == out_w_);
  // vdrift-lint: allow(no-data-dependent-check): fwd/bwd pairing contract
  VDRIFT_CHECK(static_cast<size_t>(n) == cached_cols_.size())
      << "Backward batch size mismatch";
  int64_t bw_out_plane = static_cast<int64_t>(out_h_) * out_w_;
  int64_t bw_patch = static_cast<int64_t>(in_channels_) * kernel_ * kernel_;
  // Per sample: dW GEMM + dCols GEMM (2 * out_c * patch * out_plane
  // each), bias row sums, and the col2im accumulate.
  VDRIFT_OP_PROBE(
      "nn", "conv2d_backward",
      n * (4 * out_channels_ * bw_patch * bw_out_plane +
           out_channels_ * bw_out_plane + bw_patch * bw_out_plane),
      static_cast<int64_t>(sizeof(float)) * n *
          (2 * out_channels_ * bw_out_plane + 2 * bw_patch * bw_out_plane +
           static_cast<int64_t>(in_channels_) * in_h_ * in_w_));
  Tensor grad_input(Shape{n, in_channels_, in_h_, in_w_});
  int64_t plane = static_cast<int64_t>(out_h_) * out_w_;
  int64_t in_plane = static_cast<int64_t>(in_h_) * in_w_;
  // Per-sample weight/bias contributions land in thread-private slots and
  // fold into the shared gradients in ascending sample order afterwards —
  // the exact accumulation order of the serial loop, so parallel backward
  // is bit-identical to VDRIFT_THREADS=1.
  std::vector<Tensor> sample_dw(static_cast<size_t>(n));
  std::vector<std::vector<float>> sample_db(
      static_cast<size_t>(n),
      std::vector<float>(static_cast<size_t>(out_channels_), 0.0f));
  ParallelFor(0, n, 1, [&](int64_t s_begin, int64_t s_end) {
    for (int64_t s = s_begin; s < s_end; ++s) {
      Tensor dy(Shape{out_channels_, plane});
      const float* src = grad_output.data() + s * out_channels_ * plane;
      std::copy(src, src + dy.size(), dy.data());
      // dW_s = dY cols^T ; db_s = row sums of dY.
      sample_dw[static_cast<size_t>(s)] =
          tensor::MatmulTransposedB(dy, cached_cols_[static_cast<size_t>(s)]);
      std::vector<float>& db = sample_db[static_cast<size_t>(s)];
      for (int64_t c = 0; c < out_channels_; ++c) {
        double acc = 0.0;
        for (int64_t p = 0; p < plane; ++p) acc += dy[c * plane + p];
        db[static_cast<size_t>(c)] = static_cast<float>(acc);
      }
      // dCols = W^T dY ; dX = col2im(dCols).
      Tensor dcols = tensor::MatmulTransposedA(weight_.value, dy);
      Tensor dx = tensor::Col2Im(dcols, in_channels_, in_h_, in_w_, kernel_,
                                 kernel_, stride_, pad_, out_h_, out_w_);
      float* dst = grad_input.data() + s * in_channels_ * in_plane;
      std::copy(dx.data(), dx.data() + dx.size(), dst);
    }
  });
  for (int64_t s = 0; s < n; ++s) {
    tensor::AddInPlace(&weight_.grad, sample_dw[static_cast<size_t>(s)]);
    const std::vector<float>& db = sample_db[static_cast<size_t>(s)];
    for (int64_t c = 0; c < out_channels_; ++c) {
      bias_.grad[c] += db[static_cast<size_t>(c)];
    }
  }
  return grad_input;
}

Tensor ReLU::Forward(const Tensor& input) {
  VDRIFT_OP_PROBE("nn", "relu_forward", input.size(),
                  ElementwiseBytes(input.size()));
  Tensor out = input;
  mask_ = Tensor(input.shape());
  float* po = out.data();
  float* pm = mask_.data();
  ParallelFor(0, out.size(), kActivationGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  if (po[i] > 0.0f) {
                    pm[i] = 1.0f;
                  } else {
                    po[i] = 0.0f;
                  }
                }
              });
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  return tensor::Mul(grad_output, mask_);
}

Tensor Sigmoid::Forward(const Tensor& input) {
  VDRIFT_OP_PROBE("nn", "sigmoid_forward", input.size(),
                  ElementwiseBytes(input.size()));
  Tensor out = input;
  float* po = out.data();
  ParallelFor(0, out.size(), kActivationGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  po[i] = 1.0f / (1.0f + std::exp(-po[i]));
                }
              });
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  float* pg = grad.data();
  const float* py = cached_output_.data();
  ParallelFor(0, grad.size(), kActivationGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  pg[i] *= py[i] * (1.0f - py[i]);
                }
              });
  return grad;
}

Tensor Tanh::Forward(const Tensor& input) {
  VDRIFT_OP_PROBE("nn", "tanh_forward", input.size(),
                  ElementwiseBytes(input.size()));
  Tensor out = input;
  float* po = out.data();
  ParallelFor(0, out.size(), kActivationGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  po[i] = std::tanh(po[i]);
                }
              });
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  float* pg = grad.data();
  const float* py = cached_output_.data();
  ParallelFor(0, grad.size(), kActivationGrain,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  pg[i] *= 1.0f - py[i] * py[i];
                }
              });
  return grad;
}

Tensor Flatten::Forward(const Tensor& input) {
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(input.shape().ndim() >= 2);
  cached_shape_ = input.shape();
  int64_t n = input.shape().dim(0);
  int64_t features = input.shape().NumElements() / n;
  return input.Reshaped(Shape{n, features});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshaped(cached_shape_);
}

Tensor Upsample2x::Forward(const Tensor& input) {
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(input.shape().ndim() == 4);
  // Replication only: 0 FLOPs, input read once + 4x output written.
  VDRIFT_OP_PROBE("nn", "upsample2x_forward", 0,
                  static_cast<int64_t>(sizeof(float)) * 5 * input.size());
  cached_shape_ = input.shape();
  int64_t n = input.shape().dim(0);
  int64_t c = input.shape().dim(1);
  int64_t h = input.shape().dim(2);
  int64_t w = input.shape().dim(3);
  Tensor out(Shape{n, c, 2 * h, 2 * w});
  // One (sample, channel) plane per loop index; planes are disjoint.
  ParallelFor(0, n * c, GrainForCost(4 * h * w),
              [&](int64_t plane_begin, int64_t plane_end) {
                for (int64_t plane = plane_begin; plane < plane_end;
                     ++plane) {
                  int64_t s = plane / c;
                  int64_t ch = plane % c;
                  for (int64_t y = 0; y < h; ++y) {
                    for (int64_t x = 0; x < w; ++x) {
                      float v = input.At4(s, ch, y, x);
                      out.At4(s, ch, 2 * y, 2 * x) = v;
                      out.At4(s, ch, 2 * y, 2 * x + 1) = v;
                      out.At4(s, ch, 2 * y + 1, 2 * x) = v;
                      out.At4(s, ch, 2 * y + 1, 2 * x + 1) = v;
                    }
                  }
                }
              });
  return out;
}

Tensor Upsample2x::Backward(const Tensor& grad_output) {
  int64_t n = cached_shape_.dim(0);
  int64_t c = cached_shape_.dim(1);
  int64_t h = cached_shape_.dim(2);
  int64_t w = cached_shape_.dim(3);
  Tensor grad(cached_shape_);
  ParallelFor(
      0, n * c, GrainForCost(4 * h * w),
      [&](int64_t plane_begin, int64_t plane_end) {
        for (int64_t plane = plane_begin; plane < plane_end; ++plane) {
          int64_t s = plane / c;
          int64_t ch = plane % c;
          for (int64_t y = 0; y < h; ++y) {
            for (int64_t x = 0; x < w; ++x) {
              grad.At4(s, ch, y, x) =
                  grad_output.At4(s, ch, 2 * y, 2 * x) +
                  grad_output.At4(s, ch, 2 * y, 2 * x + 1) +
                  grad_output.At4(s, ch, 2 * y + 1, 2 * x) +
                  grad_output.At4(s, ch, 2 * y + 1, 2 * x + 1);
            }
          }
        }
      });
  return grad;
}

}  // namespace vdrift::nn
