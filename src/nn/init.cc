#include "nn/init.h"

#include <cmath>

namespace vdrift::nn {

void HeInit(tensor::Tensor* weights, int fan_in, stats::Rng* rng) {
  double std = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (int64_t i = 0; i < weights->size(); ++i) {
    (*weights)[i] = static_cast<float>(rng->NextGaussian(0.0, std));
  }
}

void XavierInit(tensor::Tensor* weights, int fan_in, int fan_out,
                stats::Rng* rng) {
  double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (int64_t i = 0; i < weights->size(); ++i) {
    (*weights)[i] = static_cast<float>((rng->NextDouble() * 2.0 - 1.0) * limit);
  }
}

}  // namespace vdrift::nn
