#ifndef VDRIFT_NN_LOSS_H_
#define VDRIFT_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace vdrift::nn {

/// \brief Value and input-gradient of a loss evaluation.
struct LossResult {
  double loss = 0.0;
  tensor::Tensor grad;  ///< dLoss/dInput, same shape as the loss input.
};

/// Softmax cross-entropy over logits [N, K] against integer labels.
/// Equivalent to the negative log-likelihood the paper trains classifiers
/// with (§5.2.1: "the popular softmax cross entropy loss is equivalent to
/// the log-likelihood and is a proper scoring rule").
LossResult SoftmaxCrossEntropy(const tensor::Tensor& logits,
                               const std::vector<int>& labels);

/// Row-wise softmax of logits [N, K].
tensor::Tensor Softmax(const tensor::Tensor& logits);

/// Binary cross-entropy of probabilities (in (0,1)) against targets of the
/// same shape, averaged per sample and summed over elements within a sample
/// — the VAE's pixel-wise reconstruction loss (§4.2.2). Inputs are clamped
/// away from {0,1} for stability.
LossResult BinaryCrossEntropy(const tensor::Tensor& probs,
                              const tensor::Tensor& targets);

/// Mean squared error, averaged over all elements.
LossResult MeanSquaredError(const tensor::Tensor& pred,
                            const tensor::Tensor& target);

}  // namespace vdrift::nn

#endif  // VDRIFT_NN_LOSS_H_
