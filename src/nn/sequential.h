#ifndef VDRIFT_NN_SEQUENTIAL_H_
#define VDRIFT_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/tensor.h"

namespace vdrift::nn {

/// \brief A linear chain of layers with joint forward/backward.
///
/// Owns its layers. Also usable as a sub-network inside composite models
/// (the VAE composes three Sequentials: encoder trunk, latent heads, and
/// decoder).
class Sequential : public Layer {
 public:
  Sequential() = default;

  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer (builder style): `seq.Add<Linear>(4, 2, &rng)`.
  template <typename L, typename... Args>
  L* Add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  /// Appends an already-constructed layer.
  void AddLayer(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> Params() override;
  std::string name() const override { return "Sequential"; }

  /// Number of layers.
  size_t size() const { return layers_.size(); }

  /// Total number of trainable scalars.
  int64_t NumParameters();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace vdrift::nn

#endif  // VDRIFT_NN_SEQUENTIAL_H_
