#include "nn/dropout.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace vdrift::nn {

Dropout::Dropout(double rate, stats::Rng* rng) : rate_(rate), rng_(rng) {
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(rate >= 0.0 && rate < 1.0) << "dropout rate must be in [0,1)";
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(rng_ != nullptr);
}

tensor::Tensor Dropout::Forward(const tensor::Tensor& input) {
  if (!training_ || rate_ == 0.0) {
    mask_ = tensor::Tensor();
    return input;
  }
  tensor::Tensor out = input;
  mask_ = tensor::Tensor(input.shape());
  float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (int64_t i = 0; i < out.size(); ++i) {
    if (rng_->NextDouble() < rate_) {
      mask_[i] = 0.0f;
      out[i] = 0.0f;
    } else {
      mask_[i] = keep_scale;
      out[i] *= keep_scale;
    }
  }
  return out;
}

tensor::Tensor Dropout::Backward(const tensor::Tensor& grad_output) {
  if (mask_.empty()) return grad_output;
  return tensor::Mul(grad_output, mask_);
}

}  // namespace vdrift::nn
