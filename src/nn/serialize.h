#ifndef VDRIFT_NN_SERIALIZE_H_
#define VDRIFT_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/layer.h"

namespace vdrift::nn {

/// Writes all parameter values of `layer` (in Params() order) to a binary
/// stream: a magic tag, the parameter count, then per-parameter sizes and
/// raw float data.
Status SaveParameters(Layer* layer, std::ostream* out);

/// Restores parameter values written by SaveParameters. The receiving layer
/// must have an identical architecture (same Params() order and shapes).
Status LoadParameters(Layer* layer, std::istream* in);

/// Copies parameter values from `src` into `dst`; architectures must match.
Status CopyParameters(Layer* src, Layer* dst);

}  // namespace vdrift::nn

#endif  // VDRIFT_NN_SERIALIZE_H_
