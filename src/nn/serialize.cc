#include "nn/serialize.h"

#include <cstdint>
#include <istream>
#include <ostream>

namespace vdrift::nn {

namespace {
constexpr uint32_t kMagic = 0x56444e4e;  // "VDNN"
}  // namespace

Status SaveParameters(Layer* layer, std::ostream* out) {
  std::vector<Parameter*> params = layer->Params();
  uint32_t magic = kMagic;
  out->write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  uint64_t count = params.size();
  out->write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (Parameter* p : params) {
    uint64_t n = static_cast<uint64_t>(p->value.size());
    out->write(reinterpret_cast<const char*>(&n), sizeof(n));
    out->write(reinterpret_cast<const char*>(p->value.data()),
               static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!out->good()) return Status::IoError("failed writing parameters");
  return Status::OK();
}

Status LoadParameters(Layer* layer, std::istream* in) {
  uint32_t magic = 0;
  in->read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in->good() || magic != kMagic) {
    return Status::IoError("bad parameter stream header");
  }
  uint64_t count = 0;
  in->read(reinterpret_cast<char*>(&count), sizeof(count));
  std::vector<Parameter*> params = layer->Params();
  if (count != params.size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (Parameter* p : params) {
    uint64_t n = 0;
    in->read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in->good() || n != static_cast<uint64_t>(p->value.size())) {
      return Status::InvalidArgument("parameter size mismatch");
    }
    in->read(reinterpret_cast<char*>(p->value.data()),
             static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!in->good()) return Status::IoError("failed reading parameters");
  return Status::OK();
}

Status CopyParameters(Layer* src, Layer* dst) {
  std::vector<Parameter*> from = src->Params();
  std::vector<Parameter*> to = dst->Params();
  if (from.size() != to.size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (size_t i = 0; i < from.size(); ++i) {
    if (from[i]->value.shape() != to[i]->value.shape()) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    to[i]->value = from[i]->value;
  }
  return Status::OK();
}

}  // namespace vdrift::nn
