#ifndef VDRIFT_NN_CLASSIFIER_H_
#define VDRIFT_NN_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace vdrift::nn {

/// \brief Interface of a probabilistic image classifier.
///
/// The model-selection layer (MSBO's deep ensembles, the query models in
/// the registry) works against this interface so it stays independent of
/// the concrete network architecture.
class ProbabilisticClassifier {
 public:
  virtual ~ProbabilisticClassifier() = default;

  /// Class probabilities for one frame ([C, H, W]); sums to 1.
  virtual std::vector<float> PredictProba(const tensor::Tensor& frame) = 0;

  /// Argmax class for one frame.
  virtual int Predict(const tensor::Tensor& frame) = 0;

  /// Number of classes K.
  virtual int num_classes() const = 0;

  /// \brief A deep copy with identical parameters, sharing no mutable
  /// state with this instance.
  ///
  /// Layers cache forward activations, so two threads must never run the
  /// same classifier object concurrently — the fleet clones every model
  /// per stream instead. Returns nullptr when the concrete type does not
  /// support cloning (callers surface that as a Status, never a crash).
  virtual std::shared_ptr<ProbabilisticClassifier> Clone() const {
    return nullptr;
  }
};

}  // namespace vdrift::nn

#endif  // VDRIFT_NN_CLASSIFIER_H_
