#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vdrift::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor Softmax(const Tensor& logits) {
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(logits.shape().ndim() == 2);
  int64_t n = logits.shape().dim(0);
  int64_t k = logits.shape().dim(1);
  Tensor out(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    float max_logit = -1e30f;
    for (int64_t j = 0; j < k; ++j) {
      max_logit = std::max(max_logit, logits.At2(i, j));
    }
    double denom = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      double e = std::exp(static_cast<double>(logits.At2(i, j) - max_logit));
      out.At2(i, j) = static_cast<float>(e);
      denom += e;
    }
    for (int64_t j = 0; j < k; ++j) {
      out.At2(i, j) = static_cast<float>(out.At2(i, j) / denom);
    }
  }
  return out;
}

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(logits.shape().ndim() == 2);
  int64_t n = logits.shape().dim(0);
  int64_t k = logits.shape().dim(1);
  // vdrift-lint: allow(no-data-dependent-check): caller-size contract
  VDRIFT_CHECK(static_cast<int64_t>(labels.size()) == n);
  Tensor probs = Softmax(logits);
  LossResult result;
  result.grad = probs;
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    int label = labels[static_cast<size_t>(i)];
    VDRIFT_DCHECK(label >= 0 && label < k);
    double p = std::max(1e-12, static_cast<double>(probs.At2(i, label)));
    loss -= std::log(p);
    result.grad.At2(i, label) -= 1.0f;
  }
  float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < result.grad.size(); ++i) result.grad[i] *= inv_n;
  result.loss = loss / static_cast<double>(n);
  return result;
}

LossResult BinaryCrossEntropy(const Tensor& probs, const Tensor& targets) {
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(probs.shape() == targets.shape());
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(probs.shape().ndim() >= 1);
  int64_t n = probs.shape().ndim() >= 2 ? probs.shape().dim(0) : 1;
  LossResult result;
  result.grad = Tensor(probs.shape());
  double loss = 0.0;
  constexpr float kEps = 1e-6f;
  float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < probs.size(); ++i) {
    float p = std::clamp(probs[i], kEps, 1.0f - kEps);
    float t = targets[i];
    loss -= static_cast<double>(t) * std::log(p) +
            static_cast<double>(1.0f - t) * std::log(1.0f - p);
    result.grad[i] = (p - t) / (p * (1.0f - p)) * inv_n;
  }
  result.loss = loss / static_cast<double>(n);
  return result;
}

LossResult MeanSquaredError(const Tensor& pred, const Tensor& target) {
  // vdrift-lint: allow(no-data-dependent-check): layer shape contract
  VDRIFT_CHECK(pred.shape() == target.shape());
  LossResult result;
  result.grad = Tensor(pred.shape());
  double loss = 0.0;
  int64_t count = pred.size();
  float scale = 2.0f / static_cast<float>(count);
  for (int64_t i = 0; i < count; ++i) {
    float d = pred[i] - target[i];
    loss += static_cast<double>(d) * d;
    result.grad[i] = scale * d;
  }
  result.loss = loss / static_cast<double>(count);
  return result;
}

}  // namespace vdrift::nn
