#ifndef VDRIFT_NN_INIT_H_
#define VDRIFT_NN_INIT_H_

#include "stats/rng.h"
#include "tensor/tensor.h"

namespace vdrift::nn {

/// He (Kaiming) normal initialization: N(0, sqrt(2 / fan_in)). Suited to
/// ReLU networks; used for the conv and classifier stacks.
void HeInit(tensor::Tensor* weights, int fan_in, stats::Rng* rng);

/// Xavier (Glorot) uniform initialization over
/// [-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))]. Used for the
/// sigmoid-terminated VAE decoder.
void XavierInit(tensor::Tensor* weights, int fan_in, int fan_out,
                stats::Rng* rng);

}  // namespace vdrift::nn

#endif  // VDRIFT_NN_INIT_H_
