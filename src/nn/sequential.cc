#include "nn/sequential.h"

namespace vdrift::nn {

tensor::Tensor Sequential::Forward(const tensor::Tensor& input) {
  tensor::Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->Forward(x);
  }
  return x;
}

tensor::Tensor Sequential::Backward(const tensor::Tensor& grad_output) {
  tensor::Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Params() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) params.push_back(p);
  }
  return params;
}

int64_t Sequential::NumParameters() {
  int64_t total = 0;
  for (Parameter* p : Params()) total += p->value.size();
  return total;
}

}  // namespace vdrift::nn
