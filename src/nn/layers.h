#ifndef VDRIFT_NN_LAYERS_H_
#define VDRIFT_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "stats/rng.h"
#include "tensor/tensor.h"

namespace vdrift::nn {

/// \brief Fully connected layer: y = x W^T + b.
///
/// Input [N, in_features]; output [N, out_features]. Weight is stored
/// [out_features, in_features].
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, stats::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Parameter weight_;
  Parameter bias_;
  tensor::Tensor cached_input_;
};

/// \brief 2-D convolution over [N, C, H, W] batches (im2col + GEMM).
///
/// Weight is stored [out_channels, in_channels * kh * kw].
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         stats::Rng* rng);

  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> Params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Conv2d"; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  Parameter weight_;
  Parameter bias_;
  // Cached per-sample im2col matrices plus the input geometry.
  std::vector<tensor::Tensor> cached_cols_;
  int in_h_ = 0;
  int in_w_ = 0;
  int out_h_ = 0;
  int out_w_ = 0;
};

/// \brief Elementwise ReLU.
class ReLU : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  tensor::Tensor mask_;
};

/// \brief Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  tensor::Tensor cached_output_;
};

/// \brief Elementwise tanh.
class Tanh : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  tensor::Tensor cached_output_;
};

/// \brief Flattens [N, C, H, W] (or any >=2-D) into [N, features].
class Flatten : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape cached_shape_;
};

/// \brief Nearest-neighbour 2x spatial upsampling of [N, C, H, W].
///
/// The VAE decoder pairs Upsample2x with Conv2d to reconstruct frames
/// ("1 FC layer followed by 3 convolutional layers", paper §4.2.2) without
/// needing a transposed-convolution kernel.
class Upsample2x : public Layer {
 public:
  tensor::Tensor Forward(const tensor::Tensor& input) override;
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override;
  std::string name() const override { return "Upsample2x"; }

 private:
  tensor::Shape cached_shape_;
};

}  // namespace vdrift::nn

#endif  // VDRIFT_NN_LAYERS_H_
