#ifndef VDRIFT_NN_OPTIMIZER_H_
#define VDRIFT_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layer.h"
#include "tensor/tensor.h"

namespace vdrift::nn {

/// \brief Base class for first-order optimizers over a parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes every parameter's gradient accumulator.
  void ZeroGrad() {
    for (Parameter* p : params_) p->ZeroGrad();
  }

 protected:
  std::vector<Parameter*> params_;
};

/// \brief Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<tensor::Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba). The paper trains both the VAE and the
/// classifier models with Adam (§6).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

}  // namespace vdrift::nn

#endif  // VDRIFT_NN_OPTIMIZER_H_
