#include "nn/optimizer.h"

#include <cmath>

namespace vdrift::nn {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    tensor::Tensor& vel = velocity_[i];
    for (int64_t j = 0; j < p->value.size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * p->grad[j];
      p->value[j] += vel[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    tensor::Tensor& m = m_[i];
    tensor::Tensor& v = v_[i];
    for (int64_t j = 0; j < p->value.size(); ++j) {
      float g = p->grad[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      double mhat = static_cast<double>(m[j]) / bc1;
      double vhat = static_cast<double>(v[j]) / bc2;
      p->value[j] -= static_cast<float>(lr_ * mhat /
                                        (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace vdrift::nn
