#include "serve/fleet.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "obs/labels.h"
#include "pipeline/checkpoint.h"
#include "runtime/parallel.h"

namespace vdrift::serve {

namespace {

// Counter families folded from labeled per-stream series into unlabeled
// fleet aggregates at every round barrier. These are exactly the families
// the pipeline increments as counters; its remaining degradation state is
// exported as gauges, which do not sum.
constexpr const char* kAggregatedCounters[] = {
    "vdrift.pipeline.frames",
    "vdrift.pipeline.drifts",
    "vdrift.pipeline.frames_dropped",
    "vdrift.pipeline.selection_failures",
    "vdrift.pipeline.redeployments",
    "vdrift.pipeline.checkpoint_failures",
};

int64_t ParseEnvInt(const char* name, int64_t lo, int64_t hi,
                    int64_t fallback) {
  // vdrift-lint: allow(no-ambient-nondeterminism): documented fleet knob
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(raw, &end, 10);
  // vdrift-lint: allow(no-data-dependent-check): env config contract
  VDRIFT_CHECK(end != raw && *end == '\0' && parsed >= lo && parsed <= hi)
      << name << " must be an integer in [" << lo << ", " << hi
      << "], got '" << raw << "'";
  return static_cast<int64_t>(parsed);
}

}  // namespace

void FleetOptions::ApplyEnv() {
  // vdrift-lint: allow(no-ambient-nondeterminism): documented fleet knob
  const char* manifest = std::getenv("VDRIFT_FLEET_MANIFEST");
  if (manifest != nullptr && manifest[0] != '\0') manifest_path = manifest;
  max_restarts = static_cast<int>(ParseEnvInt(
      "VDRIFT_FLEET_MAX_RESTARTS", 0, 1 << 20, max_restarts));
  backoff_base = static_cast<int>(ParseEnvInt(
      "VDRIFT_FLEET_BACKOFF_BASE", 0, 1 << 20, backoff_base));
}

DriftFleet::DriftFleet(const FleetOptions& options)
    : options_(options),
      registry_(std::make_shared<obs::MetricsRegistry>()) {
  // vdrift-lint: allow(no-data-dependent-check): config wiring contract
  VDRIFT_CHECK(options_.slice_frames > 0 && options_.max_concurrent > 0)
      << "fleet needs a positive slice size and concurrency";
  health_policy_.max_restarts = options_.max_restarts;
  health_policy_.backoff_base = options_.backoff_base;
  if (options_.sample_interval_rounds > 0) {
    obs::MetricsSampler::Options sampler_options;
    sampler_options.max_windows = options_.max_windows;
    sampler_options.jsonl_path = options_.jsonl_path;
    sampler_ = std::make_shared<obs::MetricsSampler>(registry_.get(),
                                                     sampler_options);
    if (!options_.slo_spec.empty()) {
      std::string spec = options_.slo_spec == "default"
                             ? obs::DefaultSloSpec()
                             : options_.slo_spec;
      Result<std::vector<obs::SloRule>> rules = obs::ParseSloSpec(spec);
      if (rules.ok()) {
        watchdog_ =
            std::make_shared<obs::HealthWatchdog>(std::move(rules).value());
      } else {
        // A typo'd SLO spec must not kill the serving fleet.
        VDRIFT_LOG_WARNING << "fleet SLO watchdog disabled: "
                           << rules.status().ToString();
      }
    }
  }
}

DriftFleet::~DriftFleet() = default;

Status DriftFleet::AddBaseModel(
    const select::ModelEntry& entry,
    const std::vector<select::LabeledFrame>& sample) {
  if (!shards_.empty()) {
    return Status::FailedPrecondition(
        "base models must be published before any stream is added");
  }
  VDRIFT_ASSIGN_OR_RETURN(bool accepted, published_.Publish(entry, sample));
  if (!accepted) {
    return Status::InvalidArgument("base model name already published: " +
                                   entry.name);
  }
  base_models_ += 1;
  lineage_.push_back(ModelLineage{entry.name, "", -1});
  return Status::OK();
}

Status DriftFleet::AddBaseModels(
    const select::ModelRegistry& registry,
    const std::vector<std::vector<select::LabeledFrame>>& samples) {
  if (static_cast<int>(samples.size()) != registry.size()) {
    return Status::InvalidArgument(
        "one calibration sample per registry entry required");
  }
  for (int i = 0; i < registry.size(); ++i) {
    VDRIFT_RETURN_NOT_OK(
        AddBaseModel(registry.at(i), samples[static_cast<size_t>(i)]));
  }
  return Status::OK();
}

DriftFleet::Shard* DriftFleet::FindShard(const std::string& label) {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->label == label) return shard.get();
  }
  return nullptr;
}

Status DriftFleet::BuildShardPipeline(
    Shard* shard, const std::vector<std::string>& fingerprint) {
  select::CowModelRegistry::Snapshot snapshot = published_.TakeSnapshot();
  auto registry = std::make_unique<select::ModelRegistry>();
  std::vector<std::vector<select::LabeledFrame>> samples;
  samples.reserve(fingerprint.size());
  for (const std::string& name : fingerprint) {
    const select::PublishedModel* found = nullptr;
    for (const select::PublishedModel& published : *snapshot) {
      if (published.entry.name == name) {
        found = &published;
        break;
      }
    }
    if (found == nullptr) {
      return Status::DataLoss("model '" + name +
                              "' is not in the shared registry; cannot "
                              "rebuild shard " +
                              shard->label);
    }
    VDRIFT_ASSIGN_OR_RETURN(select::ModelEntry clone,
                            select::CloneModelEntry(found->entry));
    registry->Add(std::move(clone));
    samples.push_back(found->calibration_sample);
  }
  pipeline::PipelineConfig config = options_.pipeline;
  config.trained_model_prefix = shard->label + ".learned-";
  config.injector = shard->injector;
  // Streams are independent processes of the same fleet: distinct DI seeds
  // per shard, derived deterministically from the template seed.
  config.seed = options_.pipeline.seed + static_cast<uint64_t>(shard->index);
  // Per-shard obs: record into the shared registry under the stream label.
  // Per-shard samplers/watchdogs stay off — the fleet runs one sampler
  // over the shared registry at round granularity instead.
  config.obs = pipeline::PipelineObsOptions{};
  config.obs.stream_label = shard->label;
  config.obs.shared_registry = registry_;
  auto pipeline = std::make_unique<pipeline::DriftAwarePipeline>(
      registry.get(), samples, config);
  shard->registry = std::move(registry);
  shard->pipeline = std::move(pipeline);
  shard->synced_entries = shard->registry->size();
  return Status::OK();
}

Status DriftFleet::AddStream(const StreamSpec& spec) {
  if (spec.stream == nullptr) {
    return Status::InvalidArgument("stream '" + spec.label + "' is null");
  }
  if (spec.label.empty()) {
    return Status::InvalidArgument("stream label must be non-empty");
  }
  if (FindShard(spec.label) != nullptr) {
    return Status::InvalidArgument("duplicate stream label: " + spec.label);
  }
  if (published_.size() == 0) {
    return Status::FailedPrecondition(
        "publish base models before adding streams");
  }
  auto shard = std::make_unique<Shard>();
  shard->label = spec.label;
  shard->stream = spec.stream;
  shard->injector = spec.injector;
  shard->index = static_cast<int>(shards_.size());
  select::CowModelRegistry::Snapshot snapshot = published_.TakeSnapshot();
  shard->initial_fingerprint.reserve(snapshot->size());
  for (const select::PublishedModel& published : *snapshot) {
    shard->initial_fingerprint.push_back(published.entry.name);
  }
  if (!options_.checkpoint_dir.empty()) {
    shard->checkpoint_path =
        options_.checkpoint_dir + "/" + shard->label + ".ckpt";
  }
  VDRIFT_RETURN_NOT_OK(BuildShardPipeline(shard.get(),
                                          shard->initial_fingerprint));
  shards_.push_back(std::move(shard));
  return Status::OK();
}

Status DriftFleet::RebuildShard(Shard* shard) {
  shard->pipeline.reset();
  shard->registry.reset();
  shard->slice_status = Status::OK();
  if (!shard->checkpoint_path.empty()) {
    Result<pipeline::PipelineCheckpoint> checkpoint =
        pipeline::ReadCheckpointFile(shard->checkpoint_path, shard->injector);
    if (checkpoint.ok()) {
      Status built =
          BuildShardPipeline(shard, checkpoint.value().registry_fingerprint);
      if (built.ok()) {
        Status resumed =
            shard->pipeline->Resume(shard->checkpoint_path, shard->stream);
        if (resumed.ok()) {
          shard->prev_degradation_events =
              shard->pipeline->metrics().degradation.total_events();
          return Status::OK();
        }
        VDRIFT_LOG_WARNING << "shard " << shard->label
                           << " resume failed, cold-starting: "
                           << resumed.ToString();
      } else if (built.code() != StatusCode::kDataLoss) {
        // Missing published models degrade to cold start; anything else
        // (e.g. an uncloneable entry) is a wiring error worth surfacing.
        return built;
      }
    } else {
      VDRIFT_LOG_WARNING << "shard " << shard->label
                         << " checkpoint unreadable, cold-starting: "
                         << checkpoint.status().ToString();
    }
  }
  // Cold start: the shard replays its stream from the beginning against a
  // fresh replica of its initial models. Its labeled counters keep
  // accumulating (the shared registry outlives the shard), so the books
  // stay monotonic — the report's per-stream metrics restart from the
  // pipeline's cold state.
  shard->pipeline.reset();
  shard->registry.reset();
  VDRIFT_RETURN_NOT_OK(BuildShardPipeline(shard, shard->initial_fingerprint));
  shard->stream->Reset();
  shard->prev_degradation_events = 0;
  return Status::OK();
}

Status DriftFleet::KillShard(Shard* shard, const Status& cause) {
  if (!shard->health.Serving()) return Status::OK();
  if (!shard->health.GrantRestart(health_policy_)) {
    return QuarantineShard(shard, cause);
  }
  shard_restarts_ += 1;
  registry_->GetCounter("vdrift.fleet.shard_restarts").Increment();
  VDRIFT_RETURN_NOT_OK(RebuildShard(shard));
  ExportHealth(shard);
  return Status::OK();
}

Status DriftFleet::QuarantineShard(Shard* shard, const Status& cause) {
  // Restore-then-park: the last checkpoint (or a cold start when it is
  // unusable) gives the quarantined shard a well-defined cursor, so the
  // loss books close exactly — everything past the cursor is counted as
  // quarantined, nothing is silently dropped.
  VDRIFT_RETURN_NOT_OK(RebuildShard(shard));
  shard->health.state = HealthState::kQuarantined;
  shard->health.backoff_remaining = 0;
  shard->fail_status = cause;
  shard->quarantined_frames =
      shard->stream->total_frames() - shard->stream->position();
  if (shard->quarantined_frames < 0) shard->quarantined_frames = 0;
  quarantined_frames_ += shard->quarantined_frames;
  obs::MetricsRegistry& reg = *registry_;
  reg.GetCounter("vdrift.serve.quarantined").Increment();
  reg.GetCounter("vdrift.serve.quarantine_dropped_frames",
                 {{"stream", shard->label}})
      .Increment(shard->quarantined_frames);
  reg.GetCounter("vdrift.serve.quarantine_dropped_frames")
      .Increment(shard->quarantined_frames);
  ExportHealth(shard);
  VDRIFT_LOG_WARNING << "shard " << shard->label
                     << " quarantined after exhausting " <<
      options_.max_restarts << " restarts (" << shard->quarantined_frames
                     << " frames unserved): " << cause.ToString();
  return Status::OK();
}

Status DriftFleet::PublishShardModels(Shard* shard) {
  const select::ModelRegistry& registry = *shard->registry;
  const auto& samples = shard->pipeline->calibration_samples();
  // Incumbents are the shard's own private clones of everything already
  // published — COW-stored entries must never be executed, and the gate
  // runs models (supervisor.h).
  const int incumbents_end = shard->synced_entries;
  for (int i = shard->synced_entries; i < registry.size(); ++i) {
    const std::vector<select::LabeledFrame> sample =
        i < static_cast<int>(samples.size())
            ? samples[static_cast<size_t>(i)]
            : std::vector<select::LabeledFrame>{};
    std::vector<const select::ModelEntry*> incumbents;
    incumbents.reserve(static_cast<size_t>(incumbents_end));
    for (int j = 0; j < incumbents_end; ++j) {
      incumbents.push_back(&registry.at(j));
    }
    GateVerdict verdict = EvaluatePublication(registry.at(i), sample,
                                              incumbents,
                                              options_.publication_gate);
    if (!verdict.accepted) {
      // The fleet falls back to the incumbents: the candidate stays
      // private to the shard that trained it and is never adoptable.
      publish_rejected_ += 1;
      registry_->GetCounter("vdrift.serve.publish_rejected").Increment();
      registry_
          ->GetCounter("vdrift.serve.publish_rejected",
                       {{"reason", verdict.reason}})
          .Increment();
      VDRIFT_LOG_WARNING << "publication gate rejected '"
                         << registry.at(i).name << "' from stream "
                         << shard->label << " (" << verdict.reason
                         << "): candidate accuracy "
                         << verdict.candidate_accuracy << " vs incumbent "
                         << verdict.incumbent_accuracy;
      continue;
    }
    VDRIFT_ASSIGN_OR_RETURN(bool accepted,
                            published_.Publish(registry.at(i), sample));
    if (accepted) {
      models_published_ += 1;
      registry_->GetCounter("vdrift.fleet.models_published").Increment();
      lineage_.push_back(
          ModelLineage{registry.at(i).name, shard->label, rounds_});
    }
  }
  shard->synced_entries = registry.size();
  return Status::OK();
}

Status DriftFleet::AdoptPublished(Shard* shard) {
  select::CowModelRegistry::Snapshot snapshot = published_.TakeSnapshot();
  // Snapshot order is publication order, so every shard adopts in the same
  // deterministic order no matter which stream trained what.
  for (const select::PublishedModel& published : *snapshot) {
    if (shard->registry->FindByName(published.entry.name) >= 0) continue;
    VDRIFT_ASSIGN_OR_RETURN(select::ModelEntry clone,
                            select::CloneModelEntry(published.entry));
    VDRIFT_RETURN_NOT_OK(
        shard->pipeline->AdoptModel(clone, published.calibration_sample));
    models_adopted_ += 1;
    registry_->GetCounter("vdrift.fleet.models_adopted").Increment();
  }
  shard->synced_entries = shard->registry->size();
  return Status::OK();
}

void DriftFleet::AggregateShard(Shard* shard) {
  for (const char* family : kAggregatedCounters) {
    int64_t current =
        registry_->GetCounter(family, {{"stream", shard->label}}).value();
    int64_t& previous = shard->prev_counters[family];
    if (current != previous) {
      registry_->GetCounter(family).Increment(current - previous);
      previous = current;
    }
  }
}

void DriftFleet::ExportHealth(Shard* shard) {
  registry_->GetGauge("vdrift.serve.health", {{"stream", shard->label}})
      .Set(static_cast<double>(shard->health.state));
}

Status DriftFleet::WriteManifest(const std::deque<int>& ready) {
  FleetManifest manifest;
  manifest.next_round = rounds_;
  manifest.backpressure_waits = backpressure_waits_;
  manifest.models_published = models_published_;
  manifest.models_adopted = models_adopted_;
  manifest.shard_restarts = shard_restarts_;
  manifest.publish_rejected = publish_rejected_;
  manifest.quarantined_frames = quarantined_frames_;
  manifest.slice_frames = options_.slice_frames;
  manifest.shards.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardManifest row;
    row.label = shard->label;
    row.checkpoint_path = shard->checkpoint_path;
    row.health = static_cast<uint8_t>(shard->health.state);
    row.restarts = shard->health.restarts;
    row.backoff_remaining = shard->health.backoff_remaining;
    row.slices = shard->slices;
    row.fail_code = static_cast<int32_t>(shard->fail_status.code());
    row.fail_message = shard->fail_status.message();
    manifest.shards.push_back(std::move(row));
  }
  manifest.ready.assign(ready.begin(), ready.end());
  manifest.lineage = lineage_;
  Status written = WriteFleetManifestFile(manifest, options_.manifest_path);
  if (written.ok()) {
    registry_->GetCounter("vdrift.serve.manifest_writes").Increment();
  } else {
    // A manifest write failure degrades crash recovery, not serving.
    registry_->GetCounter("vdrift.serve.manifest_write_failures").Increment();
    VDRIFT_LOG_WARNING << "fleet manifest write failed: "
                       << written.ToString();
  }
  return Status::OK();
}

Status DriftFleet::ResumeFromManifest(const FleetManifest& manifest,
                                      std::deque<int>* ready) {
  // Validate everything against the wired fleet before mutating any shard.
  if (manifest.shards.size() != shards_.size()) {
    return Status::FailedPrecondition(
        "fleet manifest has " + std::to_string(manifest.shards.size()) +
        " shards, fleet has " + std::to_string(shards_.size()));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (manifest.shards[i].label != shards_[i]->label) {
      return Status::FailedPrecondition(
          "fleet manifest shard " + std::to_string(i) + " is '" +
          manifest.shards[i].label + "', fleet has '" + shards_[i]->label +
          "'");
    }
    if (manifest.shards[i].checkpoint_path !=
        shards_[i]->checkpoint_path) {
      return Status::FailedPrecondition(
          "fleet manifest checkpoint path mismatch for shard '" +
          shards_[i]->label + "'");
    }
  }
  if (manifest.slice_frames != options_.slice_frames) {
    return Status::FailedPrecondition(
        "fleet manifest slice_frames " +
        std::to_string(manifest.slice_frames) + " != configured " +
        std::to_string(options_.slice_frames));
  }
  for (const ModelLineage& entry : manifest.lineage) {
    if (entry.round >= 0) {
      // Learned-model weights are deliberately not persisted (the
      // checkpoint limitation, PipelineCheckpoint docs) — a coordinator
      // resume cannot reconstruct them, so the caller falls back to a
      // fresh full run, which replays to the identical end state.
      return Status::DataLoss("fleet manifest references learned model '" +
                              entry.name + "'; resume cannot restore "
                              "trained weights — run fresh");
    }
    if (published_.FindByName(entry.name) < 0) {
      return Status::FailedPrecondition(
          "fleet manifest base model '" + entry.name +
          "' is not published in this fleet");
    }
  }
  // Apply. Every shard is rebuilt from its checkpoint; RebuildShard's
  // cold-start fallback keeps a damaged per-shard checkpoint from failing
  // the resume (the shard replays, deterministically).
  rounds_ = manifest.next_round;
  backpressure_waits_ = manifest.backpressure_waits;
  models_published_ = manifest.models_published;
  models_adopted_ = manifest.models_adopted;
  shard_restarts_ = manifest.shard_restarts;
  publish_rejected_ = manifest.publish_rejected;
  quarantined_frames_ = manifest.quarantined_frames;
  lineage_ = manifest.lineage;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    const ShardManifest& row = manifest.shards[i];
    shard->health.state = static_cast<HealthState>(row.health);
    shard->health.restarts = row.restarts;
    shard->health.backoff_remaining = row.backoff_remaining;
    shard->slices = row.slices;
    shard->fail_status =
        row.fail_code == 0
            ? Status::OK()
            : Status(static_cast<StatusCode>(row.fail_code),
                     row.fail_message);
    shard->done = shard->health.state == HealthState::kRetired;
    VDRIFT_RETURN_NOT_OK(RebuildShard(shard));
    if (shard->health.state == HealthState::kQuarantined) {
      shard->quarantined_frames =
          shard->stream->total_frames() - shard->stream->position();
      if (shard->quarantined_frames < 0) shard->quarantined_frames = 0;
    }
    ExportHealth(shard);
  }
  ready->assign(manifest.ready.begin(), manifest.ready.end());
  return Status::OK();
}

Result<FleetReport> DriftFleet::Run() {
  if (shards_.empty()) {
    return Status::FailedPrecondition("fleet has no streams");
  }
  for (const CrashDrill& drill : options_.crash_drills) {
    if (FindShard(drill.stream) == nullptr) {
      return Status::InvalidArgument("crash drill targets unknown stream: " +
                                     drill.stream);
    }
  }
  for (const fault::ChaosEvent& event : options_.chaos.events) {
    if (!event.stream.empty() && FindShard(event.stream) == nullptr) {
      return Status::InvalidArgument("chaos event targets unknown stream: " +
                                     event.stream);
    }
  }
  if (!options_.manifest_path.empty() && options_.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "fleet manifest requires checkpoint_dir (the manifest references "
        "per-shard checkpoints)");
  }
  obs::MetricsRegistry& reg = *registry_;
  // Pre-register the unlabeled aggregates and supervision instruments so
  // the export always carries them, even at zero.
  for (const char* family : kAggregatedCounters) {
    reg.GetCounter(family);
  }
  reg.GetCounter("vdrift.serve.publish_rejected");
  reg.GetCounter("vdrift.serve.quarantined");
  reg.GetCounter("vdrift.serve.quarantine_dropped_frames");
  obs::Gauge& active_gauge = reg.GetGauge("vdrift.fleet.active_streams");
  obs::Counter& rounds_counter = reg.GetCounter("vdrift.fleet.rounds");
  obs::Counter& waits_counter =
      reg.GetCounter("vdrift.fleet.backpressure_waits");

  bool resumed = false;
  std::deque<int> ready;
  Result<FleetManifest> manifest = options_.manifest_path.empty()
                                       ? Status::NotFound("manifest off")
                                       : ReadFleetManifestFile(
                                             options_.manifest_path);
  if (!options_.manifest_path.empty() &&
      manifest.status().code() != StatusCode::kIoError) {
    // kIoError = no manifest on disk yet (first run); anything else is a
    // manifest that exists and must either resume or fall back loudly.
    Status applied = manifest.ok()
                         ? ResumeFromManifest(manifest.value(), &ready)
                         : manifest.status();
    if (applied.ok()) {
      resumed = true;
      VDRIFT_LOG_INFO << "fleet resumed from manifest at round " << rounds_;
    } else {
      // Self-healing: a damaged or stale manifest falls back to a fresh
      // full run, which replays every stream to the identical end state.
      reg.GetCounter("vdrift.serve.manifest_resume_failures").Increment();
      VDRIFT_LOG_WARNING << "fleet manifest resume failed, running fresh: "
                         << applied.ToString();
      ready.clear();
      rounds_ = 0;
      backpressure_waits_ = 0;
      models_published_ = 0;
      models_adopted_ = 0;
      shard_restarts_ = 0;
      publish_rejected_ = 0;
      quarantined_frames_ = 0;
      // Keep only base-model lineage (publication order puts it first).
      lineage_.resize(static_cast<size_t>(base_models_));
      for (const std::unique_ptr<Shard>& shard : shards_) {
        shard->health = ShardHealth{};
        shard->slices = 0;
        shard->done = false;
        shard->fail_status = Status::OK();
        shard->quarantined_frames = 0;
        shard->prev_degradation_events = 0;
        shard->alerted = false;
        VDRIFT_RETURN_NOT_OK(
            BuildShardPipeline(shard.get(), shard->initial_fingerprint));
        shard->stream->Reset();
      }
    }
  }
  if (!resumed) {
    for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
      ready.push_back(i);
    }
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ExportHealth(shard.get());
  }

  auto remove_from_ready = [&ready](int index) {
    ready.erase(std::remove(ready.begin(), ready.end(), index), ready.end());
  };
  auto any_parked = [this]() {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (shard->health.state == HealthState::kRestarting) return true;
    }
    return false;
  };
  auto build_report = [this, resumed](bool halted,
                                      int64_t halted_round) {
    FleetReport report;
    report.rounds = rounds_;
    report.backpressure_waits = backpressure_waits_;
    report.models_published = models_published_;
    report.models_adopted = models_adopted_;
    report.shard_restarts = shard_restarts_;
    report.publish_rejected = publish_rejected_;
    report.quarantined_frames = quarantined_frames_;
    report.halted = halted;
    report.halted_round = halted_round;
    report.resumed = resumed;
    report.streams.reserve(shards_.size());
    for (const std::unique_ptr<Shard>& shard : shards_) {
      StreamReport stream_report;
      stream_report.label = shard->label;
      stream_report.status =
          shard->health.state == HealthState::kQuarantined
              ? shard->fail_status
              : Status::OK();
      stream_report.health = shard->health.state;
      if (shard->pipeline != nullptr) {
        stream_report.metrics = shard->pipeline->metrics();
      }
      stream_report.frames = shard->stream->position();
      stream_report.slices = shard->slices;
      stream_report.restarts = shard->health.restarts;
      stream_report.quarantined_frames = shard->quarantined_frames;
      report.streams.push_back(std::move(stream_report));
    }
    return report;
  };

  while (!ready.empty() || any_parked()) {
    const int64_t round = rounds_;
    // Chaos events and scheduled crash drills fire between rounds, before
    // admission. Order within a round: manifest corruption first (so a
    // coordinator kill in the same round resumes from damaged bytes —
    // the self-healing path), then the coordinator kill, then per-shard
    // events in draw order.
    const std::vector<fault::ChaosEvent> events =
        options_.chaos.EventsAt(round);
    for (const fault::ChaosEvent& event : events) {
      if (event.kind != fault::ChaosKind::kCorruptManifest) continue;
      if (options_.manifest_path.empty()) continue;
      // kIoError here just means no manifest has been written yet.
      Status corrupted = fault::CorruptFileForChaos(
          options_.manifest_path,
          options_.pipeline.seed ^ (static_cast<uint64_t>(round) * 0x9E3779B9u));
      if (!corrupted.ok() && corrupted.code() != StatusCode::kIoError) {
        VDRIFT_LOG_WARNING << "chaos manifest corruption failed: "
                           << corrupted.ToString();
      }
    }
    for (const fault::ChaosEvent& event : events) {
      if (event.kind == fault::ChaosKind::kKillCoordinator) {
        // The coordinator dies between rounds: the manifest written at the
        // last barrier is the recovery point. Nothing of this round ran.
        VDRIFT_LOG_WARNING << "chaos killed the coordinator at round "
                           << round;
        return build_report(/*halted=*/true, round);
      }
    }
    for (const fault::ChaosEvent& event : events) {
      Shard* shard =
          event.stream.empty() ? nullptr : FindShard(event.stream);
      switch (event.kind) {
        case fault::ChaosKind::kKillShard: {
          if (shard == nullptr || !shard->health.Serving()) break;
          remove_from_ready(shard->index);
          VDRIFT_RETURN_NOT_OK(KillShard(
              shard, Status::Internal("chaos kill at round " +
                                      std::to_string(round))));
          break;
        }
        case fault::ChaosKind::kCorruptCheckpoint: {
          if (shard == nullptr || shard->checkpoint_path.empty()) break;
          Status corrupted = fault::CorruptFileForChaos(
              shard->checkpoint_path,
              options_.pipeline.seed ^
                  (static_cast<uint64_t>(round) * 0x85EBCA6Bu) ^
                  static_cast<uint64_t>(shard->index));
          if (!corrupted.ok() && corrupted.code() != StatusCode::kIoError) {
            VDRIFT_LOG_WARNING << "chaos checkpoint corruption failed: "
                               << corrupted.ToString();
          }
          break;
        }
        default:
          break;
      }
    }
    for (const CrashDrill& drill : options_.crash_drills) {
      if (drill.round != round) continue;
      Shard* shard = FindShard(drill.stream);
      if (!shard->health.Serving()) continue;
      remove_from_ready(shard->index);
      VDRIFT_RETURN_NOT_OK(KillShard(
          shard, Status::Internal("crash drill at round " +
                                  std::to_string(round))));
    }
    // Admission control: up to max_concurrent shards run this round; the
    // rest stay queued and each queued shard counts one backpressure wait.
    size_t admit = std::min<size_t>(
        static_cast<size_t>(options_.max_concurrent), ready.size());
    std::vector<int> admitted(ready.begin(),
                              ready.begin() + static_cast<long>(admit));
    ready.erase(ready.begin(), ready.begin() + static_cast<long>(admit));
    backpressure_waits_ += static_cast<int64_t>(ready.size());
    waits_counter.Increment(static_cast<int64_t>(ready.size()));
    active_gauge.Set(static_cast<double>(admitted.size()));
    // One cooperative slice per admitted shard, in parallel. Shards share
    // no mutable state (private model replicas, thread-safe registry), and
    // cross-stream effects (publication/adoption) happen only at the
    // barrier below — so the outcome is independent of VDRIFT_THREADS.
    runtime::ParallelFor(
        0, static_cast<int64_t>(admitted.size()), 1,
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            Shard& shard = *shards_[static_cast<size_t>(
                admitted[static_cast<size_t>(i)])];
            pipeline::RunOptions slice;
            slice.max_frames = options_.slice_frames;
            Result<pipeline::PipelineMetrics> result =
                shard.pipeline->Run(shard.stream, slice);
            shard.slice_status = result.status();
            shard.slices += 1;
          }
        });
    // --- Round barrier, fleet thread, admission order. ---
    // 1. Gate + publish models trained this round (even by a shard whose
    //    slice later failed — a completed model is valid).
    for (int index : admitted) {
      VDRIFT_RETURN_NOT_OK(PublishShardModels(shards_[static_cast<size_t>(
          index)].get()));
    }
    // 2. Restore shards whose slice failed (their last checkpoint predates
    //    the failed slice); a shard out of restart budget is quarantined.
    for (int index : admitted) {
      Shard& shard = *shards_[static_cast<size_t>(index)];
      if (shard.slice_status.ok()) continue;
      VDRIFT_RETURN_NOT_OK(KillShard(&shard, shard.slice_status));
    }
    // 3. Every live shard (including parked restarts — they must be
    //    model-aligned before readmission) adopts every published model it
    //    is missing, so any stream can serve any drift.
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (shard->health.Terminal() || shard->done) continue;
      VDRIFT_RETURN_NOT_OK(AdoptPublished(shard.get()));
    }
    // 4. Checkpoint after adoption so the serialized registry fingerprint
    //    matches the live replica.
    if (!options_.checkpoint_dir.empty()) {
      for (const std::unique_ptr<Shard>& shard : shards_) {
        if (shard->health.Terminal() || shard->done) continue;
        Status written = shard->pipeline->Checkpoint(shard->checkpoint_path,
                                                     *shard->stream);
        if (!written.ok()) {
          // Already counted in the shard's degradation stats; the shard
          // keeps serving and the next barrier retries.
          VDRIFT_LOG_WARNING << "shard " << shard->label
                             << " checkpoint failed: " << written.ToString();
        }
      }
    }
    // 5. Fold labeled deltas into the fleet aggregates, tick the fleet
    //    sampler on the admitted-frame clock, map per-stream SLO alerts
    //    back to their shards, and advance the health machines.
    for (const std::unique_ptr<Shard>& shard : shards_) {
      AggregateShard(shard.get());
    }
    rounds_ += 1;
    rounds_counter.Increment();
    if (sampler_ != nullptr &&
        rounds_ % options_.sample_interval_rounds == 0) {
      obs::MetricsWindow window = sampler_->Sample(static_cast<double>(
          reg.GetCounter("vdrift.pipeline.frames").value()));
      if (watchdog_ != nullptr) {
        for (const obs::AlertEvent& alert : watchdog_->Evaluate(window)) {
          reg.GetCounter("vdrift.slo.alerts", {{"rule", alert.rule}})
              .Increment();
          VDRIFT_LOG_WARNING << "fleet SLO alert: " << alert.message;
          // Alert wiring: a rule whose numerator carries {stream="..."}
          // supervises exactly one shard — degrade it.
          const obs::SloRule* rule = watchdog_->FindRule(alert.rule);
          if (rule == nullptr) continue;
          Result<obs::MetricKey> key =
              obs::ParseMetricKey(rule->numerator.metric);
          if (!key.ok()) continue;
          for (const obs::Label& label : key.value().labels) {
            if (label.first != "stream") continue;
            Shard* shard = FindShard(label.second);
            if (shard != nullptr) shard->alerted = true;
          }
        }
      }
    }
    for (int index : admitted) {
      Shard& shard = *shards_[static_cast<size_t>(index)];
      if (!shard.health.Serving()) continue;  // Killed at the barrier.
      const int64_t events_now =
          shard.pipeline->metrics().degradation.total_events();
      const bool degraded =
          events_now > shard.prev_degradation_events || shard.alerted;
      shard.prev_degradation_events = events_now;
      shard.alerted = false;
      shard.health.ObserveRound(degraded);
    }
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (shard->alerted && shard->health.Serving()) {
        shard->health.ObserveRound(/*degraded_this_round=*/true);
      }
      shard->alerted = false;
      ExportHealth(shard.get());
    }
    // 6. Requeue / retire / tick restart backoffs. A shard is done when
    //    its stream is exhausted and no drift handling is parked across
    //    the slice boundary; a parked shard rejoins the queue (in shard
    //    order) once its backoff expires.
    for (int index : admitted) {
      Shard& shard = *shards_[static_cast<size_t>(index)];
      if (!shard.health.Serving()) continue;
      if (shard.stream->position() >= shard.stream->total_frames() &&
          !shard.pipeline->recovery_pending()) {
        shard.done = true;
        shard.health.Retire();
        ExportHealth(&shard);
        continue;
      }
      ready.push_back(index);
    }
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (shard->health.state != HealthState::kRestarting) continue;
      if (shard->health.TickBackoff()) {
        ready.push_back(shard->index);
        ExportHealth(shard.get());
      }
    }
    // 7. Persist the recovery point.
    if (!options_.manifest_path.empty()) {
      VDRIFT_RETURN_NOT_OK(WriteManifest(ready));
    }
  }
  // Close the final partial sampler window so the exported series covers
  // every admitted frame.
  if (sampler_ != nullptr) {
    sampler_->Sample(static_cast<double>(
        reg.GetCounter("vdrift.pipeline.frames").value()));
  }
  return build_report(/*halted=*/false, /*halted_round=*/-1);
}

}  // namespace vdrift::serve
