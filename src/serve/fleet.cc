#include "serve/fleet.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/labels.h"
#include "pipeline/checkpoint.h"
#include "runtime/parallel.h"

namespace vdrift::serve {

namespace {

// Counter families folded from labeled per-stream series into unlabeled
// fleet aggregates at every round barrier. These are exactly the families
// the pipeline increments as counters; its remaining degradation state is
// exported as gauges, which do not sum.
constexpr const char* kAggregatedCounters[] = {
    "vdrift.pipeline.frames",
    "vdrift.pipeline.drifts",
    "vdrift.pipeline.frames_dropped",
    "vdrift.pipeline.selection_failures",
    "vdrift.pipeline.redeployments",
    "vdrift.pipeline.checkpoint_failures",
};

}  // namespace

DriftFleet::DriftFleet(const FleetOptions& options)
    : options_(options),
      registry_(std::make_shared<obs::MetricsRegistry>()) {
  // vdrift-lint: allow(no-data-dependent-check): config wiring contract
  VDRIFT_CHECK(options_.slice_frames > 0 && options_.max_concurrent > 0)
      << "fleet needs a positive slice size and concurrency";
  if (options_.sample_interval_rounds > 0) {
    obs::MetricsSampler::Options sampler_options;
    sampler_options.max_windows = options_.max_windows;
    sampler_options.jsonl_path = options_.jsonl_path;
    sampler_ = std::make_shared<obs::MetricsSampler>(registry_.get(),
                                                     sampler_options);
    if (!options_.slo_spec.empty()) {
      std::string spec = options_.slo_spec == "default"
                             ? obs::DefaultSloSpec()
                             : options_.slo_spec;
      Result<std::vector<obs::SloRule>> rules = obs::ParseSloSpec(spec);
      if (rules.ok()) {
        watchdog_ =
            std::make_shared<obs::HealthWatchdog>(std::move(rules).value());
      } else {
        // A typo'd SLO spec must not kill the serving fleet.
        VDRIFT_LOG_WARNING << "fleet SLO watchdog disabled: "
                           << rules.status().ToString();
      }
    }
  }
}

DriftFleet::~DriftFleet() = default;

Status DriftFleet::AddBaseModel(
    const select::ModelEntry& entry,
    const std::vector<select::LabeledFrame>& sample) {
  if (!shards_.empty()) {
    return Status::FailedPrecondition(
        "base models must be published before any stream is added");
  }
  VDRIFT_ASSIGN_OR_RETURN(bool accepted, published_.Publish(entry, sample));
  if (!accepted) {
    return Status::InvalidArgument("base model name already published: " +
                                   entry.name);
  }
  base_models_ += 1;
  return Status::OK();
}

Status DriftFleet::AddBaseModels(
    const select::ModelRegistry& registry,
    const std::vector<std::vector<select::LabeledFrame>>& samples) {
  if (static_cast<int>(samples.size()) != registry.size()) {
    return Status::InvalidArgument(
        "one calibration sample per registry entry required");
  }
  for (int i = 0; i < registry.size(); ++i) {
    VDRIFT_RETURN_NOT_OK(
        AddBaseModel(registry.at(i), samples[static_cast<size_t>(i)]));
  }
  return Status::OK();
}

DriftFleet::Shard* DriftFleet::FindShard(const std::string& label) {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->label == label) return shard.get();
  }
  return nullptr;
}

Status DriftFleet::BuildShardPipeline(
    Shard* shard, const std::vector<std::string>& fingerprint) {
  select::CowModelRegistry::Snapshot snapshot = published_.TakeSnapshot();
  auto registry = std::make_unique<select::ModelRegistry>();
  std::vector<std::vector<select::LabeledFrame>> samples;
  samples.reserve(fingerprint.size());
  for (const std::string& name : fingerprint) {
    const select::PublishedModel* found = nullptr;
    for (const select::PublishedModel& published : *snapshot) {
      if (published.entry.name == name) {
        found = &published;
        break;
      }
    }
    if (found == nullptr) {
      return Status::DataLoss("model '" + name +
                              "' is not in the shared registry; cannot "
                              "rebuild shard " +
                              shard->label);
    }
    VDRIFT_ASSIGN_OR_RETURN(select::ModelEntry clone,
                            select::CloneModelEntry(found->entry));
    registry->Add(std::move(clone));
    samples.push_back(found->calibration_sample);
  }
  pipeline::PipelineConfig config = options_.pipeline;
  config.trained_model_prefix = shard->label + ".learned-";
  config.injector = shard->injector;
  // Streams are independent processes of the same fleet: distinct DI seeds
  // per shard, derived deterministically from the template seed.
  config.seed = options_.pipeline.seed + static_cast<uint64_t>(shard->index);
  // Per-shard obs: record into the shared registry under the stream label.
  // Per-shard samplers/watchdogs stay off — the fleet runs one sampler
  // over the shared registry at round granularity instead.
  config.obs = pipeline::PipelineObsOptions{};
  config.obs.stream_label = shard->label;
  config.obs.shared_registry = registry_;
  auto pipeline = std::make_unique<pipeline::DriftAwarePipeline>(
      registry.get(), samples, config);
  shard->registry = std::move(registry);
  shard->pipeline = std::move(pipeline);
  shard->synced_entries = shard->registry->size();
  return Status::OK();
}

Status DriftFleet::AddStream(const StreamSpec& spec) {
  if (spec.stream == nullptr) {
    return Status::InvalidArgument("stream '" + spec.label + "' is null");
  }
  if (spec.label.empty()) {
    return Status::InvalidArgument("stream label must be non-empty");
  }
  if (FindShard(spec.label) != nullptr) {
    return Status::InvalidArgument("duplicate stream label: " + spec.label);
  }
  if (published_.size() == 0) {
    return Status::FailedPrecondition(
        "publish base models before adding streams");
  }
  auto shard = std::make_unique<Shard>();
  shard->label = spec.label;
  shard->stream = spec.stream;
  shard->injector = spec.injector;
  shard->index = static_cast<int>(shards_.size());
  select::CowModelRegistry::Snapshot snapshot = published_.TakeSnapshot();
  shard->initial_fingerprint.reserve(snapshot->size());
  for (const select::PublishedModel& published : *snapshot) {
    shard->initial_fingerprint.push_back(published.entry.name);
  }
  if (!options_.checkpoint_dir.empty()) {
    shard->checkpoint_path =
        options_.checkpoint_dir + "/" + shard->label + ".ckpt";
  }
  VDRIFT_RETURN_NOT_OK(BuildShardPipeline(shard.get(),
                                          shard->initial_fingerprint));
  shards_.push_back(std::move(shard));
  return Status::OK();
}

Status DriftFleet::RestoreShard(Shard* shard) {
  shard->restarts += 1;
  shard_restarts_ += 1;
  registry_->GetCounter("vdrift.fleet.shard_restarts").Increment();
  shard->pipeline.reset();
  shard->registry.reset();
  shard->slice_status = Status::OK();
  if (!shard->checkpoint_path.empty()) {
    Result<pipeline::PipelineCheckpoint> checkpoint =
        pipeline::ReadCheckpointFile(shard->checkpoint_path, shard->injector);
    if (checkpoint.ok()) {
      Status built =
          BuildShardPipeline(shard, checkpoint.value().registry_fingerprint);
      if (built.ok()) {
        Status resumed =
            shard->pipeline->Resume(shard->checkpoint_path, shard->stream);
        if (resumed.ok()) return Status::OK();
        VDRIFT_LOG_WARNING << "shard " << shard->label
                           << " resume failed, cold-starting: "
                           << resumed.ToString();
      } else if (built.code() != StatusCode::kDataLoss) {
        // Missing published models degrade to cold start; anything else
        // (e.g. an uncloneable entry) is a wiring error worth surfacing.
        return built;
      }
    } else {
      VDRIFT_LOG_WARNING << "shard " << shard->label
                         << " checkpoint unreadable, cold-starting: "
                         << checkpoint.status().ToString();
    }
  }
  // Cold start: the shard replays its stream from the beginning against a
  // fresh replica of its initial models. Its labeled counters keep
  // accumulating (the shared registry outlives the shard), so the books
  // stay monotonic — the report's per-stream metrics restart from the
  // pipeline's cold state.
  shard->pipeline.reset();
  shard->registry.reset();
  VDRIFT_RETURN_NOT_OK(BuildShardPipeline(shard, shard->initial_fingerprint));
  shard->stream->Reset();
  return Status::OK();
}

Status DriftFleet::PublishShardModels(Shard* shard) {
  const select::ModelRegistry& registry = *shard->registry;
  const auto& samples = shard->pipeline->calibration_samples();
  for (int i = shard->synced_entries; i < registry.size(); ++i) {
    const std::vector<select::LabeledFrame> sample =
        i < static_cast<int>(samples.size())
            ? samples[static_cast<size_t>(i)]
            : std::vector<select::LabeledFrame>{};
    VDRIFT_ASSIGN_OR_RETURN(bool accepted,
                            published_.Publish(registry.at(i), sample));
    if (accepted) {
      models_published_ += 1;
      registry_->GetCounter("vdrift.fleet.models_published").Increment();
    }
  }
  shard->synced_entries = registry.size();
  return Status::OK();
}

Status DriftFleet::AdoptPublished(Shard* shard) {
  select::CowModelRegistry::Snapshot snapshot = published_.TakeSnapshot();
  // Snapshot order is publication order, so every shard adopts in the same
  // deterministic order no matter which stream trained what.
  for (const select::PublishedModel& published : *snapshot) {
    if (shard->registry->FindByName(published.entry.name) >= 0) continue;
    VDRIFT_ASSIGN_OR_RETURN(select::ModelEntry clone,
                            select::CloneModelEntry(published.entry));
    VDRIFT_RETURN_NOT_OK(
        shard->pipeline->AdoptModel(clone, published.calibration_sample));
    models_adopted_ += 1;
    registry_->GetCounter("vdrift.fleet.models_adopted").Increment();
  }
  shard->synced_entries = shard->registry->size();
  return Status::OK();
}

void DriftFleet::AggregateShard(Shard* shard) {
  for (const char* family : kAggregatedCounters) {
    int64_t current =
        registry_->GetCounter(family, {{"stream", shard->label}}).value();
    int64_t& previous = shard->prev_counters[family];
    if (current != previous) {
      registry_->GetCounter(family).Increment(current - previous);
      previous = current;
    }
  }
}

Result<FleetReport> DriftFleet::Run() {
  if (shards_.empty()) {
    return Status::FailedPrecondition("fleet has no streams");
  }
  for (const CrashDrill& drill : options_.crash_drills) {
    if (FindShard(drill.stream) == nullptr) {
      return Status::InvalidArgument("crash drill targets unknown stream: " +
                                     drill.stream);
    }
  }
  obs::MetricsRegistry& reg = *registry_;
  // Pre-register the unlabeled aggregates so every labeled per-stream
  // family has its fleet-wide sum in the export even when the sum is 0
  // (shards register their labeled counters at construction; the
  // aggregate would otherwise only appear on the first nonzero fold).
  for (const char* family : kAggregatedCounters) {
    reg.GetCounter(family);
  }
  obs::Gauge& active_gauge = reg.GetGauge("vdrift.fleet.active_streams");
  obs::Counter& rounds_counter = reg.GetCounter("vdrift.fleet.rounds");
  obs::Counter& waits_counter =
      reg.GetCounter("vdrift.fleet.backpressure_waits");
  std::deque<int> ready;
  for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
    ready.push_back(i);
  }
  while (!ready.empty()) {
    const int64_t round = rounds_;
    // Scheduled crash drills fire between rounds: the shard is torn down
    // and rebuilt from its checkpoint before it is admitted again.
    for (const CrashDrill& drill : options_.crash_drills) {
      if (drill.round != round) continue;
      Shard* shard = FindShard(drill.stream);
      if (shard->done || shard->failed) continue;
      if (shard->restarts >= options_.max_shard_restarts) continue;
      VDRIFT_RETURN_NOT_OK(RestoreShard(shard));
    }
    // Admission control: up to max_concurrent shards run this round; the
    // rest stay queued and each queued shard counts one backpressure wait.
    size_t admit = std::min<size_t>(
        static_cast<size_t>(options_.max_concurrent), ready.size());
    std::vector<int> admitted(ready.begin(),
                              ready.begin() + static_cast<long>(admit));
    ready.erase(ready.begin(), ready.begin() + static_cast<long>(admit));
    backpressure_waits_ += static_cast<int64_t>(ready.size());
    waits_counter.Increment(static_cast<int64_t>(ready.size()));
    active_gauge.Set(static_cast<double>(admitted.size()));
    // One cooperative slice per admitted shard, in parallel. Shards share
    // no mutable state (private model replicas, thread-safe registry), and
    // cross-stream effects (publication/adoption) happen only at the
    // barrier below — so the outcome is independent of VDRIFT_THREADS.
    runtime::ParallelFor(
        0, static_cast<int64_t>(admitted.size()), 1,
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            Shard& shard = *shards_[static_cast<size_t>(
                admitted[static_cast<size_t>(i)])];
            pipeline::RunOptions slice;
            slice.max_frames = options_.slice_frames;
            Result<pipeline::PipelineMetrics> result =
                shard.pipeline->Run(shard.stream, slice);
            shard.slice_status = result.status();
            shard.slices += 1;
          }
        });
    // --- Round barrier, fleet thread, admission order. ---
    // 1. Publish models trained this round (even by a shard whose slice
    //    later failed — a completed model is valid).
    for (int index : admitted) {
      VDRIFT_RETURN_NOT_OK(PublishShardModels(shards_[static_cast<size_t>(
          index)].get()));
    }
    // 2. Restore shards whose slice failed (their last checkpoint predates
    //    the failed slice), or mark them failed once restarts run out.
    for (int index : admitted) {
      Shard& shard = *shards_[static_cast<size_t>(index)];
      if (shard.slice_status.ok()) continue;
      if (shard.restarts >= options_.max_shard_restarts) {
        shard.failed = true;
        shard.fail_status = shard.slice_status;
        VDRIFT_LOG_WARNING << "shard " << shard.label
                           << " failed permanently: "
                           << shard.fail_status.ToString();
        continue;
      }
      VDRIFT_RETURN_NOT_OK(RestoreShard(&shard));
    }
    // 3. Every live shard adopts every published model it is missing —
    //    registries stay aligned, so any stream can serve any drift.
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (shard->done || shard->failed) continue;
      VDRIFT_RETURN_NOT_OK(AdoptPublished(shard.get()));
    }
    // 4. Checkpoint after adoption so the serialized registry fingerprint
    //    matches the live replica.
    if (!options_.checkpoint_dir.empty()) {
      for (const std::unique_ptr<Shard>& shard : shards_) {
        if (shard->done || shard->failed) continue;
        Status written = shard->pipeline->Checkpoint(shard->checkpoint_path,
                                                     *shard->stream);
        if (!written.ok()) {
          // Already counted in the shard's degradation stats; the shard
          // keeps serving and the next barrier retries.
          VDRIFT_LOG_WARNING << "shard " << shard->label
                             << " checkpoint failed: " << written.ToString();
        }
      }
    }
    // 5. Fold labeled deltas into the fleet aggregates and tick the fleet
    //    sampler on the admitted-frame clock.
    for (const std::unique_ptr<Shard>& shard : shards_) {
      AggregateShard(shard.get());
    }
    rounds_ += 1;
    rounds_counter.Increment();
    if (sampler_ != nullptr &&
        rounds_ % options_.sample_interval_rounds == 0) {
      obs::MetricsWindow window = sampler_->Sample(static_cast<double>(
          reg.GetCounter("vdrift.pipeline.frames").value()));
      if (watchdog_ != nullptr) {
        for (const obs::AlertEvent& alert : watchdog_->Evaluate(window)) {
          reg.GetCounter("vdrift.slo.alerts", {{"rule", alert.rule}})
              .Increment();
          VDRIFT_LOG_WARNING << "fleet SLO alert: " << alert.message;
        }
      }
    }
    // 6. Requeue: a shard is done when its stream is exhausted and no
    //    drift handling is parked across the slice boundary.
    for (int index : admitted) {
      Shard& shard = *shards_[static_cast<size_t>(index)];
      if (shard.failed) continue;
      if (shard.stream->position() >= shard.stream->total_frames() &&
          !shard.pipeline->recovery_pending()) {
        shard.done = true;
        continue;
      }
      ready.push_back(index);
    }
  }
  // Close the final partial sampler window so the exported series covers
  // every admitted frame.
  if (sampler_ != nullptr) {
    sampler_->Sample(static_cast<double>(
        reg.GetCounter("vdrift.pipeline.frames").value()));
  }
  FleetReport report;
  report.rounds = rounds_;
  report.backpressure_waits = backpressure_waits_;
  report.models_published = models_published_;
  report.models_adopted = models_adopted_;
  report.shard_restarts = shard_restarts_;
  report.streams.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    StreamReport stream_report;
    stream_report.label = shard->label;
    stream_report.status =
        shard->failed ? shard->fail_status : Status::OK();
    if (shard->pipeline != nullptr) {
      stream_report.metrics = shard->pipeline->metrics();
    }
    stream_report.frames = shard->stream->position();
    stream_report.slices = shard->slices;
    stream_report.restarts = shard->restarts;
    report.streams.push_back(std::move(stream_report));
  }
  return report;
}

}  // namespace vdrift::serve
