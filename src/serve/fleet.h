#ifndef VDRIFT_SERVE_FLEET_H_
#define VDRIFT_SERVE_FLEET_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/registry.h"
#include "core/registry_cow.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"
#include "pipeline/pipeline.h"
#include "serve/supervisor.h"
#include "video/stream.h"

namespace vdrift::serve {

/// \brief One stream joining the fleet.
struct StreamSpec {
  /// Unique label; becomes the {stream="..."} dimension of every metric
  /// series and the per-stream trained-model name prefix.
  std::string label;
  /// The frame source (not owned; must outlive the fleet). Resume support
  /// requires its Reset() to be a bit-identical replay.
  video::FrameSource* stream = nullptr;
  /// Optional per-stream fault source (not owned). The injector is not
  /// thread-safe, so it must not be shared between streams — faults on one
  /// stream must never perturb another stream's draw sequence.
  fault::FaultInjector* injector = nullptr;
};

/// \brief A deterministic kill-and-restore drill: at the start of round
/// `round`, the named shard's pipeline and model replica are destroyed and
/// rebuilt from its last checkpoint, exactly as if that shard had crashed
/// between rounds. The other shards never notice.
struct CrashDrill {
  std::string stream;
  int64_t round = 0;
};

/// \brief Fleet configuration.
struct FleetOptions {
  /// Template pipeline config applied to every shard. The fleet overrides
  /// per-shard fields: trained_model_prefix ("<label>.learned-"), injector,
  /// seed (template seed + shard index), and the obs wiring (shared
  /// registry + stream label; per-shard samplers are disabled — the fleet
  /// runs one sampler over the shared registry instead).
  pipeline::PipelineConfig pipeline;
  /// Frames each admitted shard processes per scheduling round (one
  /// cooperative slice). RunOptions::max_frames semantics: a slice never
  /// overshoots, even when a drift lands mid-slice.
  int64_t slice_frames = 64;
  /// Admission control: shards running concurrently per round. Shards
  /// beyond this wait in the bounded ready queue; each wait increments
  /// vdrift.fleet.backpressure_waits.
  int max_concurrent = 4;
  /// Restart budget + exponential backoff (supervisor.h). A shard that
  /// crashes with the budget exhausted is quarantined: restored to its
  /// last checkpoint for exact accounting, then never scheduled again —
  /// its unserved frames are counted, not silently lost.
  int max_restarts = 2;
  int backoff_base = 1;
  /// Publication quality gate in front of the shared registry (rejects
  /// non-finite, uncalibrated, or below-margin models before any other
  /// shard can adopt them).
  PublicationGateOptions publication_gate;
  /// Directory for per-stream checkpoint files ("" disables
  /// checkpointing; crash recovery then falls back to a cold start).
  std::string checkpoint_dir;
  /// Fleet manifest path ("" disables coordinator crash recovery). When
  /// set, the manifest is written atomically at every round barrier and
  /// Run() auto-resumes from it when the file exists. Requires
  /// checkpoint_dir (the manifest references per-shard checkpoints).
  std::string manifest_path;
  /// Fleet sampler cadence in rounds over the shared registry (0 disables
  /// the sampler, and with it the watchdog).
  int sample_interval_rounds = 0;
  /// Sampler ring capacity.
  int max_windows = 1024;
  /// Fleet-level SLO spec (obs::ParseSloSpec grammar; "default" arms
  /// obs::DefaultSloSpec()). Evaluated on every sampled window.
  std::string slo_spec;
  /// Per-window JSONL sink for the fleet sampler ("" disables).
  std::string jsonl_path;
  /// Deterministic crash drills (tests and chaos benches).
  std::vector<CrashDrill> crash_drills;
  /// Seed-driven chaos schedule (kill shards, corrupt checkpoints /
  /// manifests, kill the coordinator). Empty = no chaos.
  fault::ChaosPlan chaos;

  /// Overlays the documented env knobs onto this options struct:
  /// VDRIFT_FLEET_MANIFEST, VDRIFT_FLEET_MAX_RESTARTS,
  /// VDRIFT_FLEET_BACKOFF_BASE. Malformed numeric values abort (a chaos
  /// campaign with a typo'd budget silently testing nothing is worse).
  void ApplyEnv();
};

/// \brief One stream's outcome.
struct StreamReport {
  std::string label;
  Status status = Status::OK();  ///< The quarantine cause when quarantined.
  HealthState health = HealthState::kHealthy;  ///< Final supervision state.
  pipeline::PipelineMetrics metrics;  ///< Cumulative pipeline metrics.
  int64_t frames = 0;    ///< Stream cursor at the end (frames consumed).
  int64_t slices = 0;    ///< Scheduling slices the shard ran.
  int restarts = 0;      ///< Crash drills + failed-slice restarts consumed.
  /// Frames the quarantine refused to serve (stream total - checkpoint
  /// cursor). Loss accounting stays exact:
  ///   metrics.count_total + metrics.degradation.frames_dropped
  ///     + quarantined_frames == stream total.
  int64_t quarantined_frames = 0;
};

/// \brief Fleet-level outcome.
struct FleetReport {
  std::vector<StreamReport> streams;  ///< In AddStream order.
  int64_t rounds = 0;
  int64_t backpressure_waits = 0;
  int64_t models_published = 0;  ///< Entries accepted by the shared registry.
  int64_t models_adopted = 0;    ///< Cross-stream adoptions performed.
  int64_t shard_restarts = 0;
  int64_t publish_rejected = 0;  ///< Models the quality gate refused.
  int64_t quarantined_frames = 0;  ///< Sum over quarantined shards.
  /// True when a chaos kKillCoordinator event halted the run mid-fleet;
  /// the manifest on disk resumes it (construct a fresh fleet with the
  /// same options + streams and call Run() again).
  bool halted = false;
  int64_t halted_round = -1;
  /// True when this Run() resumed from a manifest instead of starting
  /// fresh.
  bool resumed = false;
};

/// \brief Multi-stream drift-aware serving (ROADMAP item 1).
///
/// Multiplexes N concurrent streams over the deterministic thread pool.
/// Each stream owns a full DriftAwarePipeline shard — its own deep-cloned
/// model replica (NN layers cache forward state, so two shards must never
/// execute the same model object), its own DriftInspector, its own fault
/// injector — while all shards share one CowModelRegistry: a model trained
/// for one stream's drift is published at the next round barrier and
/// becomes selectable by every stream.
///
/// Scheduling is bulk-synchronous: each round admits up to max_concurrent
/// ready shards, runs one fixed-size slice per shard in parallel
/// (ParallelFor — bit-identical at any VDRIFT_THREADS), then executes the
/// barrier on the fleet thread in admission order:
///   1. gate + publish models trained this round into the shared registry
///      (append order = deterministic adoption order),
///   2. restore shards whose slice failed (from their last checkpoint) or
///      quarantine them once the restart budget is exhausted,
///   3. adopt every published model each shard is missing (clone first),
///   4. checkpoint every live shard (after adoption, so the registry
///      fingerprint in the file matches the live replica),
///   5. fold per-stream labeled counters into the unlabeled aggregates
///      (sum of {stream=...} series == aggregate, exactly, every round),
///      tick the fleet sampler/watchdog, and advance every shard's health
///      state (vdrift.serve.health{stream="..."} gauges),
///   6. requeue / retire / tick restart backoffs,
///   7. write the fleet manifest (when armed).
/// Models published in round r are visible to other shards at round r+1
/// regardless of thread count, which is what makes the fleet bit-identical
/// at VDRIFT_THREADS=1 and 8.
///
/// Not thread-safe itself: construct, add streams, and Run from one thread
/// (parallelism lives inside Run).
class DriftFleet {
 public:
  explicit DriftFleet(const FleetOptions& options);

  DriftFleet(const DriftFleet&) = delete;
  DriftFleet& operator=(const DriftFleet&) = delete;
  ~DriftFleet();

  /// Publishes a pre-provisioned base model every stream starts with
  /// (deep-copied into the shared registry; `sample` is its MSBO
  /// calibration sample). Call before AddStream.
  Status AddBaseModel(const select::ModelEntry& entry,
                      const std::vector<select::LabeledFrame>& sample);

  /// Publishes every entry of a provisioned registry as base models.
  Status AddBaseModels(
      const select::ModelRegistry& registry,
      const std::vector<std::vector<select::LabeledFrame>>& samples);

  /// Adds a stream shard: clones every published model into the shard's
  /// private replica and builds its pipeline. Labels must be unique.
  Status AddStream(const StreamSpec& spec);

  /// Runs every stream to exhaustion (resuming from the fleet manifest
  /// first when one is armed and present). Returns the per-stream and
  /// fleet-level report; per-shard pipeline errors are contained (restart
  /// with backoff up to max_restarts, then quarantine), so Run itself only
  /// fails on fleet-level wiring errors.
  Result<FleetReport> Run();

  /// The shared metrics registry: per-stream labeled series plus unlabeled
  /// aggregates plus vdrift.fleet.* / vdrift.serve.* instruments.
  const std::shared_ptr<obs::MetricsRegistry>& registry() const {
    return registry_;
  }
  /// The shared copy-on-write model registry.
  const select::CowModelRegistry& published() const { return published_; }
  /// Fleet sampler / watchdog (null unless armed by FleetOptions).
  const std::shared_ptr<obs::MetricsSampler>& sampler() const {
    return sampler_;
  }
  const std::shared_ptr<obs::HealthWatchdog>& watchdog() const {
    return watchdog_;
  }

 private:
  /// One stream's private slice of the fleet.
  struct Shard {
    std::string label;
    video::FrameSource* stream = nullptr;
    fault::FaultInjector* injector = nullptr;
    int index = 0;  ///< AddStream order (per-shard seed derivation).
    /// Private model replica (every entry deep-cloned; never shared).
    std::unique_ptr<select::ModelRegistry> registry;
    std::unique_ptr<pipeline::DriftAwarePipeline> pipeline;
    /// Model names the shard starts with (cold-start fallback registry).
    std::vector<std::string> initial_fingerprint;
    /// Local registry size after the last barrier; entries beyond it were
    /// trained this round and are pending publication.
    int synced_entries = 0;
    std::string checkpoint_path;  ///< "" when checkpointing is disabled.
    /// Last aggregated value per counter family (delta folding).
    std::map<std::string, int64_t> prev_counters;
    /// DegradationStats::total_events() at the last health observation.
    int64_t prev_degradation_events = 0;
    /// A per-stream SLO rule breached since the last health observation.
    bool alerted = false;
    Status slice_status = Status::OK();
    int64_t slices = 0;
    bool done = false;  ///< Stream exhausted cleanly (health kRetired).
    ShardHealth health;
    Status fail_status = Status::OK();  ///< Quarantine cause.
    int64_t quarantined_frames = 0;
  };

  Shard* FindShard(const std::string& label);
  /// Builds a shard pipeline over a fresh replica cloned from the shared
  /// registry, one entry per fingerprint name, in fingerprint order.
  Status BuildShardPipeline(Shard* shard,
                            const std::vector<std::string>& fingerprint);
  /// Rebuild from the shard's checkpoint (cold-start from the initial
  /// fingerprint when the checkpoint is unusable). No restart accounting.
  Status RebuildShard(Shard* shard);
  /// Kill-and-rebuild with accounting: consumes one restart (entering
  /// kRestarting with backoff) or quarantines the shard when the budget
  /// is exhausted.
  Status KillShard(Shard* shard, const Status& cause);
  /// Restore-then-park: rebuild from the last checkpoint so the books
  /// close at a well-defined cursor, count the unserved tail as
  /// quarantined frames, and never schedule the shard again.
  Status QuarantineShard(Shard* shard, const Status& cause);
  /// Barrier step 1: gate + publish models the shard trained this round.
  Status PublishShardModels(Shard* shard);
  /// Barrier step 3: clone+adopt published models the shard is missing.
  Status AdoptPublished(Shard* shard);
  /// Barrier step 5: fold labeled counter deltas into the aggregates.
  void AggregateShard(Shard* shard);
  /// Writes the vdrift.serve.health{stream="..."} gauge for one shard.
  void ExportHealth(Shard* shard);
  /// Barrier step 7: snapshot fleet state into the manifest file.
  Status WriteManifest(const std::deque<int>& ready);
  /// Applies a decoded manifest: validates it against the wired fleet,
  /// restores every shard from its checkpoint, and rebuilds the ready
  /// queue. kDataLoss / kFailedPrecondition mean "start fresh instead".
  Status ResumeFromManifest(const FleetManifest& manifest,
                            std::deque<int>* ready);

  FleetOptions options_;
  HealthPolicy health_policy_;
  select::CowModelRegistry published_;
  int base_models_ = 0;  ///< Snapshot prefix published before any stream ran.
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::shared_ptr<obs::MetricsSampler> sampler_;
  std::shared_ptr<obs::HealthWatchdog> watchdog_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ModelLineage> lineage_;  ///< In publication order.
  int64_t rounds_ = 0;
  int64_t backpressure_waits_ = 0;
  int64_t models_published_ = 0;
  int64_t models_adopted_ = 0;
  int64_t shard_restarts_ = 0;
  int64_t publish_rejected_ = 0;
  int64_t quarantined_frames_ = 0;
};

}  // namespace vdrift::serve

#endif  // VDRIFT_SERVE_FLEET_H_
