#include "serve/supervisor.h"

#include <cmath>
#include <cstring>

#include "common/binio.h"
#include "common/logging.h"

namespace vdrift::serve {

namespace {

// Envelope constants (the VDCKPT01 idiom, fleet flavor).
constexpr char kMagic[] = "VDFLEET01";
constexpr size_t kMagicBytes = sizeof(kMagic) - 1;  // 9, no terminator.
constexpr uint32_t kVersion = 1;

/// Holdout accuracy of one query model: fraction of frames where the
/// top-probability class matches the label. Any non-finite probability
/// makes the model unconditionally rejectable, signalled by -1.
double ProbeAccuracy(nn::ProbabilisticClassifier* model,
                     const std::vector<select::LabeledFrame>& holdout,
                     int max_frames) {
  int probed = 0;
  int correct = 0;
  for (const select::LabeledFrame& frame : holdout) {
    if (probed >= max_frames) break;
    std::vector<float> probs = model->PredictProba(frame.pixels);
    if (probs.empty()) return -1.0;
    int best = 0;
    for (int c = 0; c < static_cast<int>(probs.size()); ++c) {
      if (!std::isfinite(probs[static_cast<size_t>(c)])) return -1.0;
      if (probs[static_cast<size_t>(c)] > probs[static_cast<size_t>(best)]) {
        best = c;
      }
    }
    if (best == frame.label) correct += 1;
    probed += 1;
  }
  if (probed == 0) return -1.0;
  return static_cast<double>(correct) / static_cast<double>(probed);
}

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kRestarting: return "restarting";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kRetired: return "retired";
  }
  return "unknown";
}

bool ShardHealth::GrantRestart(const HealthPolicy& policy) {
  if (restarts >= policy.max_restarts) {
    state = HealthState::kQuarantined;
    backoff_remaining = 0;
    return false;
  }
  restarts += 1;
  state = HealthState::kRestarting;
  if (policy.backoff_base > 0) {
    // Exponential: restart k parks for base << (k-1) rounds, capped so a
    // misconfigured budget can never shift past 62 bits.
    const int shift = restarts - 1 < 20 ? restarts - 1 : 20;
    backoff_remaining = static_cast<int64_t>(policy.backoff_base) << shift;
  } else {
    backoff_remaining = 0;
  }
  return true;
}

bool ShardHealth::TickBackoff() {
  if (state != HealthState::kRestarting) return false;
  if (backoff_remaining > 0) backoff_remaining -= 1;
  if (backoff_remaining > 0) return false;
  // Readmitted as degraded: a restarted shard earns healthy back with one
  // clean round, it does not get it for free.
  state = HealthState::kDegraded;
  return true;
}

void ShardHealth::ObserveRound(bool degraded_this_round) {
  if (!Serving()) return;
  state = degraded_this_round ? HealthState::kDegraded
                              : HealthState::kHealthy;
}

void ShardHealth::Retire() {
  if (Terminal()) return;
  state = HealthState::kRetired;
  backoff_remaining = 0;
}

GateVerdict EvaluatePublication(
    const select::ModelEntry& candidate,
    const std::vector<select::LabeledFrame>& holdout,
    const std::vector<const select::ModelEntry*>& incumbents,
    const PublicationGateOptions& options) {
  GateVerdict verdict;
  if (!options.enabled) return verdict;
  if (candidate.count_model == nullptr) {
    verdict.accepted = false;
    verdict.reason = "no_query_model";
    return verdict;
  }
  if (holdout.empty()) {
    verdict.accepted = false;
    verdict.reason = "empty_calibration";
    return verdict;
  }
  verdict.candidate_accuracy = ProbeAccuracy(
      candidate.count_model.get(), holdout, options.max_holdout_frames);
  if (verdict.candidate_accuracy < 0.0) {
    verdict.accepted = false;
    verdict.reason = "nonfinite";
    verdict.candidate_accuracy = 0.0;
    return verdict;
  }
  for (const select::ModelEntry* incumbent : incumbents) {
    if (incumbent == nullptr || incumbent->count_model == nullptr) continue;
    double accuracy = ProbeAccuracy(incumbent->count_model.get(), holdout,
                                    options.max_holdout_frames);
    if (accuracy > verdict.incumbent_accuracy) {
      verdict.incumbent_accuracy = accuracy;
    }
  }
  if (verdict.candidate_accuracy <
      verdict.incumbent_accuracy - options.accuracy_margin) {
    verdict.accepted = false;
    verdict.reason = "below_margin";
  }
  return verdict;
}

std::string EncodeFleetManifest(const FleetManifest& manifest) {
  BinaryWriter payload;
  payload.WriteI64(manifest.next_round);
  payload.WriteI64(manifest.backpressure_waits);
  payload.WriteI64(manifest.models_published);
  payload.WriteI64(manifest.models_adopted);
  payload.WriteI64(manifest.shard_restarts);
  payload.WriteI64(manifest.publish_rejected);
  payload.WriteI64(manifest.quarantined_frames);
  payload.WriteI64(manifest.slice_frames);
  payload.WriteU64(manifest.shards.size());
  for (const ShardManifest& shard : manifest.shards) {
    payload.WriteString(shard.label);
    payload.WriteString(shard.checkpoint_path);
    payload.WriteU8(shard.health);
    payload.WriteI32(shard.restarts);
    payload.WriteI64(shard.backoff_remaining);
    payload.WriteI64(shard.slices);
    payload.WriteI32(shard.fail_code);
    payload.WriteString(shard.fail_message);
  }
  payload.WriteI64Vec(manifest.ready);
  payload.WriteU64(manifest.lineage.size());
  for (const ModelLineage& entry : manifest.lineage) {
    payload.WriteString(entry.name);
    payload.WriteString(entry.publisher);
    payload.WriteI64(entry.round);
  }
  const std::string body = std::move(payload).TakeBytes();
  std::string bytes;
  bytes.reserve(kMagicBytes + sizeof(uint32_t) + sizeof(uint64_t) +
                body.size() + sizeof(uint32_t));
  bytes.append(kMagic, kMagicBytes);
  const uint32_t version = kVersion;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t length = body.size();
  bytes.append(reinterpret_cast<const char*>(&length), sizeof(length));
  bytes += body;
  const uint32_t crc = Crc32(body.data(), body.size());
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return bytes;
}

Result<FleetManifest> DecodeFleetManifest(const std::string& bytes) {
  const size_t envelope = kMagicBytes + sizeof(uint32_t) + sizeof(uint64_t) +
                          sizeof(uint32_t);
  if (bytes.size() < envelope) {
    return Status::DataLoss("fleet manifest too short: " +
                            std::to_string(bytes.size()) + " bytes");
  }
  if (std::memcmp(bytes.data(), kMagic, kMagicBytes) != 0) {
    return Status::DataLoss("fleet manifest magic mismatch");
  }
  uint32_t version = 0;
  uint64_t length = 0;
  std::memcpy(&version, bytes.data() + kMagicBytes, sizeof(version));
  std::memcpy(&length, bytes.data() + kMagicBytes + sizeof(version),
              sizeof(length));
  if (version != kVersion) {
    return Status::DataLoss("fleet manifest version " +
                            std::to_string(version) + " is not supported (" +
                            std::to_string(kVersion) + " expected)");
  }
  if (bytes.size() != envelope + length) {
    return Status::DataLoss("fleet manifest length mismatch: declared " +
                            std::to_string(length) + " payload bytes, have " +
                            std::to_string(bytes.size() - envelope));
  }
  const char* body = bytes.data() + kMagicBytes + sizeof(uint32_t) +
                     sizeof(uint64_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (Crc32(body, length) != stored_crc) {
    return Status::DataLoss("fleet manifest CRC mismatch");
  }
  std::string payload(body, length);
  BinaryReader reader(payload);
  FleetManifest manifest;
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&manifest.next_round));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&manifest.backpressure_waits));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&manifest.models_published));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&manifest.models_adopted));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&manifest.shard_restarts));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&manifest.publish_rejected));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&manifest.quarantined_frames));
  VDRIFT_RETURN_NOT_OK(reader.ReadI64(&manifest.slice_frames));
  uint64_t shard_count = 0;
  VDRIFT_RETURN_NOT_OK(reader.ReadU64(&shard_count));
  if (shard_count > length) {
    return Status::DataLoss("fleet manifest declares impossible shard "
                            "count " +
                            std::to_string(shard_count));
  }
  manifest.shards.resize(shard_count);
  for (ShardManifest& shard : manifest.shards) {
    VDRIFT_RETURN_NOT_OK(reader.ReadString(&shard.label));
    VDRIFT_RETURN_NOT_OK(reader.ReadString(&shard.checkpoint_path));
    VDRIFT_RETURN_NOT_OK(reader.ReadU8(&shard.health));
    if (shard.health > static_cast<uint8_t>(HealthState::kRetired)) {
      return Status::DataLoss("fleet manifest has invalid health state " +
                              std::to_string(shard.health));
    }
    VDRIFT_RETURN_NOT_OK(reader.ReadI32(&shard.restarts));
    VDRIFT_RETURN_NOT_OK(reader.ReadI64(&shard.backoff_remaining));
    VDRIFT_RETURN_NOT_OK(reader.ReadI64(&shard.slices));
    VDRIFT_RETURN_NOT_OK(reader.ReadI32(&shard.fail_code));
    VDRIFT_RETURN_NOT_OK(reader.ReadString(&shard.fail_message));
  }
  VDRIFT_RETURN_NOT_OK(reader.ReadI64Vec(&manifest.ready));
  for (int64_t index : manifest.ready) {
    if (index < 0 || index >= static_cast<int64_t>(shard_count)) {
      return Status::DataLoss("fleet manifest ready queue references "
                              "shard " +
                              std::to_string(index));
    }
  }
  uint64_t lineage_count = 0;
  VDRIFT_RETURN_NOT_OK(reader.ReadU64(&lineage_count));
  if (lineage_count > length) {
    return Status::DataLoss("fleet manifest declares impossible lineage "
                            "count " +
                            std::to_string(lineage_count));
  }
  manifest.lineage.resize(lineage_count);
  for (ModelLineage& entry : manifest.lineage) {
    VDRIFT_RETURN_NOT_OK(reader.ReadString(&entry.name));
    VDRIFT_RETURN_NOT_OK(reader.ReadString(&entry.publisher));
    VDRIFT_RETURN_NOT_OK(reader.ReadI64(&entry.round));
  }
  if (reader.remaining() != 0) {
    return Status::DataLoss("fleet manifest has " +
                            std::to_string(reader.remaining()) +
                            " trailing bytes");
  }
  return manifest;
}

Status WriteFleetManifestFile(const FleetManifest& manifest,
                              const std::string& path) {
  return AtomicWriteFile(path, EncodeFleetManifest(manifest));
}

Result<FleetManifest> ReadFleetManifestFile(const std::string& path) {
  VDRIFT_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeFleetManifest(bytes);
}

}  // namespace vdrift::serve
