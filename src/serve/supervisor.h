#ifndef VDRIFT_SERVE_SUPERVISOR_H_
#define VDRIFT_SERVE_SUPERVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/registry.h"

namespace vdrift::serve {

// ---------------------------------------------------------------------------
// Health state machine (DESIGN.md §5g)
// ---------------------------------------------------------------------------

/// \brief Per-shard supervision state.
///
///   healthy -> degraded      degradation events or an SLO alert this round
///   degraded -> healthy      one clean round
///   {healthy,degraded} -> restarting   a crash consumed one restart
///   restarting -> degraded   backoff expired; the shard is readmitted
///   any -> quarantined       a crash with the restart budget exhausted
///   {healthy,degraded} -> retired      stream exhausted cleanly
///
/// The numeric values are stable: they are exported verbatim as the
/// vdrift.serve.health{stream="..."} gauge and serialized into the fleet
/// manifest.
enum class HealthState : uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kRestarting = 2,
  kQuarantined = 3,
  kRetired = 4,
};

/// Lowercase display name ("healthy", "degraded", ...).
const char* HealthStateName(HealthState state);

/// \brief Restart budget knobs (FleetOptions carries one per fleet).
struct HealthPolicy {
  /// Restarts (crash drills, chaos kills, failed slices) a shard may
  /// consume before its next crash quarantines it.
  int max_restarts = 2;
  /// Exponential backoff: restart k parks the shard for
  /// backoff_base << (k-1) rounds before readmission (0 disables parking).
  int backoff_base = 1;
};

/// \brief One shard's supervision state. Plain data plus the transition
/// rules — the fleet drives it, the manifest serializes it.
struct ShardHealth {
  HealthState state = HealthState::kHealthy;
  int restarts = 0;               ///< Restarts consumed so far.
  int64_t backoff_remaining = 0;  ///< Rounds left parked (kRestarting).

  /// True while the shard should be scheduled (healthy or degraded).
  bool Serving() const {
    return state == HealthState::kHealthy || state == HealthState::kDegraded;
  }
  /// True once the shard will never run again.
  bool Terminal() const {
    return state == HealthState::kQuarantined ||
           state == HealthState::kRetired;
  }

  /// A crash asked for a restart. Consumes one unit of budget and moves to
  /// kRestarting with exponential backoff when budget remains; moves to
  /// kQuarantined and returns false when the budget is exhausted.
  bool GrantRestart(const HealthPolicy& policy);

  /// One parked round elapsed. Returns true when the backoff expired and
  /// the shard should be readmitted (state moves to kDegraded: it must
  /// prove a clean round before it counts as healthy again).
  bool TickBackoff();

  /// End-of-round observation for a serving shard: degradation events or
  /// an SLO alert mark it degraded; a clean round heals it.
  void ObserveRound(bool degraded_this_round);

  /// Stream exhausted cleanly.
  void Retire();
};

// ---------------------------------------------------------------------------
// Publication quality gate
// ---------------------------------------------------------------------------

/// \brief Gate knobs (FleetOptions carries one per fleet).
struct PublicationGateOptions {
  bool enabled = true;
  /// A candidate may trail the best incumbent's holdout accuracy by at
  /// most this margin. Negative margins demand the candidate *beat* the
  /// incumbent (tests use -1.0 to force rejection).
  double accuracy_margin = 0.1;
  /// Cap on holdout frames probed per model (bounds barrier cost).
  int max_holdout_frames = 64;
};

/// \brief One gate decision.
struct GateVerdict {
  bool accepted = true;
  /// Rejection reason, the {reason="..."} label of
  /// vdrift.serve.publish_rejected: "no_query_model", "empty_calibration",
  /// "nonfinite", or "below_margin". Empty when accepted.
  std::string reason;
  double candidate_accuracy = 0.0;
  double incumbent_accuracy = 0.0;  ///< Best incumbent on the same holdout.
};

/// Probes a candidate model before fleet-wide publication. The classifier
/// interface exposes no weights, so the gate is behavioral: it runs the
/// candidate's count model over its own calibration sample and rejects
/// (in check order) a missing query model, an empty calibration table,
/// any non-finite probability output, and holdout accuracy below the best
/// incumbent minus `options.accuracy_margin`.
///
/// `incumbents` must be the *publishing shard's own private clones* —
/// executing a model mutates its cached forward state, so COW-stored
/// entries must never be probed directly (the registry invariant).
/// Probing the publisher's clones at the serial barrier is safe and
/// thread-count independent.
GateVerdict EvaluatePublication(
    const select::ModelEntry& candidate,
    const std::vector<select::LabeledFrame>& holdout,
    const std::vector<const select::ModelEntry*>& incumbents,
    const PublicationGateOptions& options);

// ---------------------------------------------------------------------------
// Fleet manifest (coordinator crash recovery)
// ---------------------------------------------------------------------------

/// \brief One shard's row in the fleet manifest.
struct ShardManifest {
  std::string label;
  std::string checkpoint_path;
  uint8_t health = 0;  ///< HealthState numeric value.
  int32_t restarts = 0;
  int64_t backoff_remaining = 0;
  int64_t slices = 0;
  int32_t fail_code = 0;  ///< StatusCode of the quarantine cause (0 = OK).
  std::string fail_message;
};

/// \brief Published-model lineage: who trained what, and when.
struct ModelLineage {
  std::string name;       ///< Registry entry name.
  std::string publisher;  ///< Stream label ("" for base models).
  int64_t round = -1;     ///< Barrier round of publication (-1 for base).
};

/// \brief Everything DriftFleet needs to continue after a coordinator
/// crash. Written atomically at every round barrier; per-shard pipeline
/// state lives in the per-shard checkpoints this manifest points at.
struct FleetManifest {
  int64_t next_round = 0;  ///< First round the resumed fleet will run.
  int64_t backpressure_waits = 0;
  int64_t models_published = 0;
  int64_t models_adopted = 0;
  int64_t shard_restarts = 0;
  int64_t publish_rejected = 0;
  int64_t quarantined_frames = 0;
  int64_t slice_frames = 0;  ///< Config fingerprint; must match on resume.
  std::vector<ShardManifest> shards;  ///< In AddStream order.
  std::vector<int64_t> ready;  ///< Shard indices in ready-queue order.
  std::vector<ModelLineage> lineage;  ///< In publication order.
};

/// Serializes a manifest: 9-byte magic "VDFLEET01", u32 version, u64
/// payload length, payload, u32 CRC-32 of the payload — the checkpoint
/// envelope idiom.
std::string EncodeFleetManifest(const FleetManifest& manifest);

/// Parses bytes produced by EncodeFleetManifest. Bad magic, unknown
/// version, length mismatch, CRC failure, or truncation all return
/// kDataLoss — a damaged manifest is diagnosed, never resumed from.
[[nodiscard]] Result<FleetManifest> DecodeFleetManifest(
    const std::string& bytes);

/// Encodes + writes atomically and durably (AtomicWriteFile).
[[nodiscard]] Status WriteFleetManifestFile(const FleetManifest& manifest,
                                            const std::string& path);

/// Reads + decodes. kIoError when unreadable, kDataLoss when damaged.
[[nodiscard]] Result<FleetManifest> ReadFleetManifestFile(
    const std::string& path);

}  // namespace vdrift::serve

#endif  // VDRIFT_SERVE_SUPERVISOR_H_
