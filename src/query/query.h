#ifndef VDRIFT_QUERY_QUERY_H_
#define VDRIFT_QUERY_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "nn/classifier.h"
#include "video/frame.h"

namespace vdrift::query {

/// \brief Outcome of evaluating one query on one frame.
struct QueryResult {
  int predicted = 0;
  int truth = 0;
  bool correct = false;
};

/// \brief The paper's count query: "number of cars appearing in the video
/// stream for each frame" (§6.3.1), answered by a per-distribution
/// classifier over count classes.
class CountQuery {
 public:
  /// `model` answers the query; its class count defines the count bins.
  explicit CountQuery(std::shared_ptr<nn::ProbabilisticClassifier> model);

  /// Evaluates the query on one frame against its ground truth.
  QueryResult Evaluate(const video::Frame& frame) const;

  /// Swaps in a newly selected model (after drift recovery).
  void Deploy(std::shared_ptr<nn::ProbabilisticClassifier> model);

  int count_classes() const { return model_->num_classes(); }

 private:
  std::shared_ptr<nn::ProbabilisticClassifier> model_;
};

/// \brief The paper's spatial-constrained query: the predicate "bus is on
/// the left side of a car" (§6.3.2), answered by a binary classifier.
class SpatialQuery {
 public:
  explicit SpatialQuery(std::shared_ptr<nn::ProbabilisticClassifier> model);

  QueryResult Evaluate(const video::Frame& frame) const;
  void Deploy(std::shared_ptr<nn::ProbabilisticClassifier> model);

 private:
  std::shared_ptr<nn::ProbabilisticClassifier> model_;
};

/// \brief Streaming accuracy accumulator for A_q.
class AccuracyTracker {
 public:
  void Add(bool correct) {
    ++total_;
    if (correct) ++correct_;
  }
  void Add(const QueryResult& result) { Add(result.correct); }

  int64_t total() const { return total_; }
  int64_t correct() const { return correct_; }
  /// The fraction of frames where the prediction matches ground truth.
  double Aq() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(correct_) /
                             static_cast<double>(total_);
  }

 private:
  int64_t total_ = 0;
  int64_t correct_ = 0;
};

}  // namespace vdrift::query

#endif  // VDRIFT_QUERY_QUERY_H_
