#include "query/query.h"

#include "common/logging.h"
#include "detect/annotator.h"

namespace vdrift::query {

CountQuery::CountQuery(std::shared_ptr<nn::ProbabilisticClassifier> model)
    : model_(std::move(model)) {
  VDRIFT_CHECK(model_ != nullptr);
}

void CountQuery::Deploy(std::shared_ptr<nn::ProbabilisticClassifier> model) {
  VDRIFT_CHECK(model != nullptr);
  model_ = std::move(model);
}

QueryResult CountQuery::Evaluate(const video::Frame& frame) const {
  QueryResult result;
  result.predicted = model_->Predict(frame.pixels);
  result.truth = detect::CountLabel(frame.truth, model_->num_classes());
  result.correct = result.predicted == result.truth;
  return result;
}

SpatialQuery::SpatialQuery(std::shared_ptr<nn::ProbabilisticClassifier> model)
    : model_(std::move(model)) {
  VDRIFT_CHECK(model_ != nullptr);
  VDRIFT_CHECK(model_->num_classes() == 2)
      << "spatial predicate model must be binary";
}

void SpatialQuery::Deploy(std::shared_ptr<nn::ProbabilisticClassifier> model) {
  VDRIFT_CHECK(model != nullptr && model->num_classes() == 2);
  model_ = std::move(model);
}

QueryResult SpatialQuery::Evaluate(const video::Frame& frame) const {
  QueryResult result;
  result.predicted = model_->Predict(frame.pixels);
  result.truth = detect::PredicateLabel(frame.truth);
  result.correct = result.predicted == result.truth;
  return result;
}

}  // namespace vdrift::query
