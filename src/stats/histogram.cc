#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vdrift::stats {

Result<Histogram> Histogram::Make(double lo, double hi, int bins) {
  if (!(lo < hi)) {
    return Status::InvalidArgument("Histogram range must satisfy lo < hi");
  }
  if (bins <= 0) {
    return Status::InvalidArgument("Histogram needs a positive bin count");
  }
  return Histogram(lo, hi, bins);
}

void Histogram::Add(double x) {
  double frac = (x - lo_) / (hi_ - lo_);
  int bin = static_cast<int>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp(bin, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[bin];
  ++count_;
}

std::vector<double> Histogram::Pmf(double alpha) const {
  std::vector<double> pmf(counts_.size(), 0.0);
  double total = static_cast<double>(count_) +
                 alpha * static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    pmf[i] = (static_cast<double>(counts_[i]) + alpha) / total;
  }
  return pmf;
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  VDRIFT_DCHECK(p.size() == q.size());
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    VDRIFT_DCHECK(q[i] > 0.0);
    kl += p[i] * std::log(p[i] / q[i]);
  }
  return kl;
}

}  // namespace vdrift::stats
