#ifndef VDRIFT_STATS_RNG_H_
#define VDRIFT_STATS_RNG_H_

#include <cstdint>
#include <vector>

namespace vdrift::stats {

/// \brief Deterministic PCG32 pseudo-random generator.
///
/// Every stochastic component in the library (stream generation, VAE latent
/// sampling, weight init, the tie-breaking uniform U in the conformal
/// p-value of Eq. 1) draws from an explicitly seeded Rng so that tests and
/// benches are reproducible run-to-run.
class Rng {
 public:
  /// Seeds the generator. `seq` selects an independent stream.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t seq = 1);

  /// Next raw 32-bit value.
  uint32_t NextUInt32();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int NextInt(int lo, int hi);

  /// Standard normal via Box-Muller (one spare value cached).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Poisson-distributed count (Knuth's method; fine for small lambda).
  int NextPoisson(double lambda);

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// In-place Fisher-Yates shuffle of indices [0, n).
  void Shuffle(std::vector<int>* indices);

  /// A fresh Rng derived from this one (independent stream).
  Rng Split();

  /// \brief The generator's complete serializable state.
  ///
  /// Captured/restored by the pipeline checkpoint so that a resumed run
  /// draws the exact same tail of the random sequence as an uninterrupted
  /// one (the spare Gaussian must round-trip too, or the first
  /// NextGaussian after resume would diverge).
  struct State {
    uint64_t state = 0;
    uint64_t inc = 0;
    bool has_spare = false;
    double spare = 0.0;
  };

  /// The current state (for checkpointing).
  State state() const { return {state_, inc_, has_spare_, spare_}; }

  /// Restores a previously captured state.
  void set_state(const State& s) {
    state_ = s.state;
    inc_ = s.inc;
    has_spare_ = s.has_spare;
    spare_ = s.spare;
  }

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace vdrift::stats

#endif  // VDRIFT_STATS_RNG_H_
