#include "stats/rng.h"

#include <cmath>

#include "common/logging.h"

namespace vdrift::stats {

Rng::Rng(uint64_t seed, uint64_t seq) : state_(0), inc_((seq << 1u) | 1u) {
  NextUInt32();
  state_ += seed;
  NextUInt32();
}

uint32_t Rng::NextUInt32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  uint64_t hi = NextUInt32();
  uint64_t lo = NextUInt32();
  uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

int Rng::NextInt(int lo, int hi) {
  VDRIFT_DCHECK(lo <= hi);
  uint32_t range = static_cast<uint32_t>(hi - lo) + 1u;
  if (range == 0) return lo + static_cast<int>(NextUInt32());
  return lo + static_cast<int>(NextUInt32() % range);
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

int Rng::NextPoisson(double lambda) {
  VDRIFT_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda > 30.0) {
    // Gaussian approximation for large lambda.
    double v = NextGaussian(lambda, std::sqrt(lambda));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  double l = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

void Rng::Shuffle(std::vector<int>* indices) {
  for (int i = static_cast<int>(indices->size()) - 1; i > 0; --i) {
    int j = NextInt(0, i);
    std::swap((*indices)[i], (*indices)[j]);
  }
}

Rng Rng::Split() {
  uint64_t seed = (static_cast<uint64_t>(NextUInt32()) << 32) | NextUInt32();
  uint64_t seq = (static_cast<uint64_t>(NextUInt32()) << 32) | NextUInt32();
  return Rng(seed, seq | 1u);
}

}  // namespace vdrift::stats
