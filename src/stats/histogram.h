#ifndef VDRIFT_STATS_HISTOGRAM_H_
#define VDRIFT_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace vdrift::stats {

/// \brief Fixed-range, fixed-bin-count histogram over doubles.
///
/// The ODIN-Detect baseline maintains a histogram of member-to-centroid
/// distances per cluster and declares a temporary cluster permanent when the
/// KL divergence of the histogram before vs. after adding a frame falls
/// below a threshold (0.007 in the paper's configuration).
class Histogram {
 public:
  /// Creates a histogram covering [lo, hi) with `bins` equal-width bins.
  /// Values outside the range are clamped into the first/last bin.
  static Result<Histogram> Make(double lo, double hi, int bins);

  /// Adds one observation.
  void Add(double x);

  /// Total number of observations.
  int64_t count() const { return count_; }
  /// Number of bins.
  int bins() const { return static_cast<int>(counts_.size()); }
  /// Raw count in a bin.
  int64_t bin_count(int i) const { return counts_[i]; }

  /// Probability mass per bin with additive (Laplace) smoothing `alpha`.
  std::vector<double> Pmf(double alpha = 1e-3) const;

 private:
  Histogram(double lo, double hi, int bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
};

/// KL divergence D(p || q) between two discrete distributions of equal
/// length. Inputs must be smoothed/normalized (see Histogram::Pmf).
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

}  // namespace vdrift::stats

#endif  // VDRIFT_STATS_HISTOGRAM_H_
