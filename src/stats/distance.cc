#include "stats/distance.h"

#include <cmath>

#include "common/logging.h"

namespace vdrift::stats {

double SquaredEuclidean(std::span<const float> a, std::span<const float> b) {
  VDRIFT_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double Euclidean(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

double Manhattan(std::span<const float> a, std::span<const float> b) {
  VDRIFT_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum;
}

double CosineDistance(std::span<const float> a, std::span<const float> b) {
  VDRIFT_DCHECK(a.size() == b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  if (na <= 0.0 || nb <= 0.0) return 1.0;
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace vdrift::stats
