#include "stats/moments.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vdrift::stats {

void RunningMoments::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningMoments::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  VDRIFT_DCHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace vdrift::stats
