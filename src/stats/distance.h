#ifndef VDRIFT_STATS_DISTANCE_H_
#define VDRIFT_STATS_DISTANCE_H_

#include <cstddef>
#include <span>

namespace vdrift::stats {

/// Squared Euclidean distance between two equal-length vectors.
double SquaredEuclidean(std::span<const float> a, std::span<const float> b);

/// Euclidean (L2) distance between two equal-length vectors.
double Euclidean(std::span<const float> a, std::span<const float> b);

/// Manhattan (L1) distance between two equal-length vectors.
double Manhattan(std::span<const float> a, std::span<const float> b);

/// Cosine distance (1 - cosine similarity); returns 1 for a zero vector.
double CosineDistance(std::span<const float> a, std::span<const float> b);

}  // namespace vdrift::stats

#endif  // VDRIFT_STATS_DISTANCE_H_
