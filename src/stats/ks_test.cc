#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>

namespace vdrift::stats {

double KolmogorovSurvival(double lambda) {
  if (lambda <= 0.0) return 1.0;
  // Alternating series; converges fast for lambda > 0.3.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  double q = 2.0 * sum;
  return std::clamp(q, 0.0, 1.0);
}

KsResult TwoSampleKs(std::vector<double> a, std::vector<double> b) {
  KsResult result;
  if (a.empty() || b.empty()) return result;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t ia = 0;
  size_t ib = 0;
  double d = 0.0;
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  while (ia < a.size() && ib < b.size()) {
    double xa = a[ia];
    double xb = b[ib];
    double x = std::min(xa, xb);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    double fa = static_cast<double>(ia) / na;
    double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::abs(fa - fb));
  }
  result.statistic = d;
  double en = std::sqrt(na * nb / (na + nb));
  result.p_value = KolmogorovSurvival((en + 0.12 + 0.11 / en) * d);
  return result;
}

}  // namespace vdrift::stats
