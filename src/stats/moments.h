#ifndef VDRIFT_STATS_MOMENTS_H_
#define VDRIFT_STATS_MOMENTS_H_

#include <cstdint>
#include <vector>

namespace vdrift::stats {

/// \brief Numerically stable running mean/variance (Welford's algorithm).
///
/// Used throughout the evaluation layer: object-count statistics (Table 5),
/// MSBO threshold calibration (mean/std of cross-distribution Brier scores),
/// and metric aggregation in the benches.
class RunningMoments {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningMoments& other);

  /// Number of observations so far.
  int64_t count() const { return count_; }
  /// Sample mean (0 when empty).
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than 2 observations).
  double variance() const;
  /// Unbiased sample standard deviation.
  double stddev() const;
  /// Minimum observation (+inf when empty).
  double min() const { return min_; }
  /// Maximum observation (-inf when empty).
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Returns the q-quantile (0 <= q <= 1) of the values by linear
/// interpolation on the sorted order statistics. Empty input returns 0.
double Quantile(std::vector<double> values, double q);

}  // namespace vdrift::stats

#endif  // VDRIFT_STATS_MOMENTS_H_
