#ifndef VDRIFT_STATS_KS_TEST_H_
#define VDRIFT_STATS_KS_TEST_H_

#include <vector>

namespace vdrift::stats {

/// \brief Result of a two-sample Kolmogorov-Smirnov test.
struct KsResult {
  /// Supremum distance between the two empirical CDFs.
  double statistic = 0.0;
  /// Asymptotic p-value of the null "both samples share a distribution".
  double p_value = 1.0;
};

/// Two-sample KS test. The paper (§2) discusses KS as the classic
/// non-parametric drift test that is efficient in one dimension but does not
/// extend to multi-dimensional frames; we provide it both as a sanity
/// baseline for the drift benches (applied to per-frame summary statistics)
/// and to test the synthetic stream generators.
KsResult TwoSampleKs(std::vector<double> a, std::vector<double> b);

/// Asymptotic Kolmogorov distribution survival function Q(lambda).
double KolmogorovSurvival(double lambda);

}  // namespace vdrift::stats

#endif  // VDRIFT_STATS_KS_TEST_H_
