#ifndef VDRIFT_VAE_VAE_H_
#define VDRIFT_VAE_VAE_H_

#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "stats/rng.h"
#include "tensor/tensor.h"

namespace vdrift::vae {

/// \brief Reshapes a flat [N, C*S*S] activation into [N, C, S, S].
///
/// The decoder's FC layer produces a flat feature vector; this layer gives
/// it back its spatial layout before the convolutional reconstruction.
class DecoderReshape : public nn::Layer {
 public:
  DecoderReshape(int channels, int spatial)
      : channels_(channels), spatial_(spatial) {}

  tensor::Tensor Forward(const tensor::Tensor& input) override {
    int64_t n = input.shape().dim(0);
    return input.Reshaped(
        tensor::Shape{n, channels_, spatial_, spatial_});
  }
  tensor::Tensor Backward(const tensor::Tensor& grad_output) override {
    int64_t n = grad_output.shape().dim(0);
    return grad_output.Reshaped(tensor::Shape{
        n, static_cast<int64_t>(channels_) * spatial_ * spatial_});
  }
  std::string name() const override { return "DecoderReshape"; }

 private:
  int channels_;
  int spatial_;
};

/// \brief Architecture hyperparameters of the VAE.
///
/// Defaults follow the paper (§4.2.2) at laptop scale: a 3-convolution
/// encoder followed by two fully connected heads (mean and log-variance),
/// and a decoder made of one fully connected layer followed by 3
/// convolutions (each preceded by nearest-neighbour upsampling).
struct VaeConfig {
  int image_size = 32;   ///< Square input side; must be divisible by 8.
  int channels = 1;      ///< Input channels (grayscale frames by default).
  int latent_dim = 8;    ///< Dimension of the latent code z.
  int base_filters = 8;  ///< Filters in the first conv layer.
  /// beta-VAE weight on the KL term. With a low-dimensional latent under
  /// a 1024-pixel reconstruction term, a full-weight KL collapses the
  /// posterior (mu carries no signal and Sigma_Ti becomes an uninformative
  /// N(0,1) cloud, blinding the Drift Inspector). 0.1 keeps the latent
  /// informative while still regularising; set to 1.0 for the textbook
  /// objective.
  double kl_weight = 0.1;
};

/// \brief Variational autoencoder over video frames.
///
/// Role in the system (paper §4.2): video frames in a stream are temporally
/// correlated, but conformal p-values require i.i.d. inputs. A VAE trained
/// on the training data T_i of model M_i gives (a) an encoder used to embed
/// incoming frames into latent space, and (b) a generator of i.i.d. latent
/// samples Sigma_Ti drawn from the learned posterior, against which the
/// Drift Inspector computes non-conformity scores.
class Vae {
 public:
  Vae(const VaeConfig& config, stats::Rng* rng);

  Vae(const Vae&) = delete;
  Vae& operator=(const Vae&) = delete;
  Vae(Vae&&) = default;
  Vae& operator=(Vae&&) = default;

  /// Activations produced by one training forward pass.
  struct ForwardResult {
    tensor::Tensor recon;   ///< [N, C, H, W] reconstruction in (0,1).
    tensor::Tensor mu;      ///< [N, latent_dim] posterior means.
    tensor::Tensor logvar;  ///< [N, latent_dim] posterior log-variances.
    tensor::Tensor z;       ///< [N, latent_dim] reparameterised samples.
    tensor::Tensor eps;     ///< [N, latent_dim] the Gaussian noise used.
  };

  /// Full forward pass with reparameterised sampling (training path).
  ForwardResult Forward(const tensor::Tensor& batch, stats::Rng* rng);

  /// Loss decomposition of one step.
  struct Losses {
    double reconstruction = 0.0;  ///< BCE summed per sample, batch-averaged.
    double kl = 0.0;              ///< KL(q(z|x) || N(0,I)), batch-averaged.
    double total() const { return reconstruction + kl; }
  };

  /// One optimization step on a batch: forward, BCE + KL backward, update.
  /// `optimizer` must have been constructed over this model's Params().
  Losses TrainStep(const tensor::Tensor& batch, nn::Optimizer* optimizer,
                   stats::Rng* rng);

  /// Evaluates the loss on a batch without updating parameters.
  Losses Evaluate(const tensor::Tensor& batch, stats::Rng* rng);

  /// Encodes a single frame [C, H, W] (or batch of one) to its posterior
  /// mean — the latent representation used for non-conformity scoring.
  std::vector<float> EncodeMean(const tensor::Tensor& frame);

  /// Encodes a frame and samples z ~ N(mu, sigma^2) — one i.i.d. draw from
  /// the learned posterior, used to build Sigma_Ti.
  std::vector<float> EncodeSample(const tensor::Tensor& frame,
                                  stats::Rng* rng);

  /// Decodes a latent vector to an image [C, H, W].
  tensor::Tensor Decode(const std::vector<float>& z);

  /// All trainable parameters (encoder trunk, heads, decoder).
  std::vector<nn::Parameter*> Params();

  /// Deep copy: same architecture and parameters, fresh layer caches — a
  /// clone can encode on another thread while this instance keeps serving.
  std::unique_ptr<Vae> Clone() const;

  const VaeConfig& config() const { return config_; }

 private:
  // Shared encode helper: runs the trunk and heads on a [N,C,H,W] batch.
  void EncodeBatch(const tensor::Tensor& batch, tensor::Tensor* mu,
                   tensor::Tensor* logvar);

  VaeConfig config_;
  int trunk_features_ = 0;  // flattened size after the conv trunk
  int dec_spatial_ = 0;     // decoder's initial spatial side
  int dec_channels_ = 0;    // decoder's initial channel count
  nn::Sequential encoder_trunk_;
  std::unique_ptr<nn::Linear> fc_mu_;
  std::unique_ptr<nn::Linear> fc_logvar_;
  nn::Sequential decoder_;
};

/// Stacks equally-shaped [C, H, W] frames into an [N, C, H, W] batch.
tensor::Tensor StackFrames(const std::vector<tensor::Tensor>& frames);

}  // namespace vdrift::vae

#endif  // VDRIFT_VAE_VAE_H_
