#ifndef VDRIFT_VAE_TRAINER_H_
#define VDRIFT_VAE_TRAINER_H_

#include <vector>

#include "common/result.h"
#include "stats/rng.h"
#include "tensor/tensor.h"
#include "vae/vae.h"

namespace vdrift::vae {

/// \brief Training hyperparameters for the VAE.
struct TrainerConfig {
  int epochs = 5;
  int batch_size = 16;   ///< Matches the paper's batch of 16 images.
  float learning_rate = 1e-3f;  ///< Adam, as in the paper.
  bool verbose = false;
};

/// \brief Trains a VAE on the frames of one distribution T_i.
///
/// The VAE is trained once per distribution and never re-trained (§4.2.2);
/// the Drift Inspector and MSBI only ever *encode* with it afterwards.
class VaeTrainer {
 public:
  explicit VaeTrainer(const TrainerConfig& config) : config_(config) {}

  /// Runs the configured number of epochs over `frames` ([C, H, W] each).
  /// Returns the per-epoch total loss trajectory.
  Result<std::vector<double>> Train(Vae* vae,
                                    const std::vector<tensor::Tensor>& frames,
                                    stats::Rng* rng) const;

 private:
  TrainerConfig config_;
};

/// Draws `count` i.i.d. latent samples Sigma_Ti from the VAE's learned
/// posterior over the training frames: each draw picks a random training
/// frame and samples z ~ N(mu(x), sigma(x)^2) (§4.2.2: "we randomly sample
/// the Normal distribution using the learned mean and standard deviation").
std::vector<std::vector<float>> GenerateLatentSamples(
    Vae* vae, const std::vector<tensor::Tensor>& frames, int count,
    stats::Rng* rng);

}  // namespace vdrift::vae

#endif  // VDRIFT_VAE_TRAINER_H_
