#include "vae/trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace vdrift::vae {

Result<std::vector<double>> VaeTrainer::Train(
    Vae* vae, const std::vector<tensor::Tensor>& frames,
    stats::Rng* rng) const {
  if (frames.empty()) {
    return Status::InvalidArgument("VaeTrainer::Train needs frames");
  }
  if (config_.epochs <= 0 || config_.batch_size <= 0) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }
  nn::Adam optimizer(vae->Params(), config_.learning_rate);
  std::vector<int> order(frames.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::vector<double> epoch_losses;
  epoch_losses.reserve(static_cast<size_t>(config_.epochs));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(
        &obs::Global().GetHistogram("vdrift.train.vae.epoch_seconds"));
    rng->Shuffle(&order);
    double total = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config_.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config_.batch_size));
      std::vector<tensor::Tensor> batch_frames;
      batch_frames.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        batch_frames.push_back(frames[static_cast<size_t>(order[i])]);
      }
      tensor::Tensor batch = StackFrames(batch_frames);
      Vae::Losses losses = vae->TrainStep(batch, &optimizer, rng);
      total += losses.total();
      ++batches;
    }
    double avg = total / std::max(1, batches);
    epoch_losses.push_back(avg);
    obs::Global().GetGauge("vdrift.train.vae.epoch_loss").Set(avg);
    obs::Global().GetCounter("vdrift.train.vae.epochs").Increment();
    if (config_.verbose) {
      VDRIFT_LOG_INFO << "VAE epoch " << epoch << " avg loss " << avg;
    }
  }
  return epoch_losses;
}

std::vector<std::vector<float>> GenerateLatentSamples(
    Vae* vae, const std::vector<tensor::Tensor>& frames, int count,
    stats::Rng* rng) {
  VDRIFT_CHECK(!frames.empty());
  std::vector<std::vector<float>> samples;
  samples.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const tensor::Tensor& frame =
        frames[static_cast<size_t>(rng->NextInt(0,
            static_cast<int>(frames.size()) - 1))];
    samples.push_back(vae->EncodeSample(frame, rng));
  }
  return samples;
}

}  // namespace vdrift::vae
