#include "vae/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "runtime/parallel.h"

namespace vdrift::vae {

namespace {

// Gathers the shuffled minibatch [start, end) of `order` into one [N, C,
// H, W] batch tensor. Per-sample copies land in disjoint slices, so they
// run on the pool; the heavy per-sample loss/grad work inside TrainStep
// (conv im2col/GEMM per sample) parallelizes the same way.
tensor::Tensor GatherBatch(const std::vector<tensor::Tensor>& frames,
                           const std::vector<int>& order, size_t start,
                           size_t end) {
  const tensor::Shape& fs = frames[0].shape();
  VDRIFT_CHECK(fs.ndim() == 3);
  int64_t count = static_cast<int64_t>(end - start);
  tensor::Tensor batch(
      tensor::Shape{count, fs.dim(0), fs.dim(1), fs.dim(2)});
  int64_t stride = fs.NumElements();
  runtime::ParallelFor(
      0, count, runtime::GrainForCost(stride),
      [&](int64_t begin, int64_t stop) {
        for (int64_t i = begin; i < stop; ++i) {
          const tensor::Tensor& f = frames[static_cast<size_t>(
              order[start + static_cast<size_t>(i)])];
          VDRIFT_CHECK(f.shape() == fs);
          std::copy(f.data(), f.data() + stride,
                    batch.data() + i * stride);
        }
      });
  return batch;
}

}  // namespace

Result<std::vector<double>> VaeTrainer::Train(
    Vae* vae, const std::vector<tensor::Tensor>& frames,
    stats::Rng* rng) const {
  if (frames.empty()) {
    return Status::InvalidArgument("VaeTrainer::Train needs frames");
  }
  if (config_.epochs <= 0 || config_.batch_size <= 0) {
    return Status::InvalidArgument("epochs and batch_size must be positive");
  }
  nn::Adam optimizer(vae->Params(), config_.learning_rate);
  std::vector<int> order(frames.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::vector<double> epoch_losses;
  epoch_losses.reserve(static_cast<size_t>(config_.epochs));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(
        &obs::Global().GetHistogram("vdrift.train.vae.epoch_seconds"));
    rng->Shuffle(&order);
    double total = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config_.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config_.batch_size));
      tensor::Tensor batch = GatherBatch(frames, order, start, end);
      Vae::Losses losses = vae->TrainStep(batch, &optimizer, rng);
      if (!std::isfinite(losses.total())) {
        // A NaN/Inf loss means the weights are already poisoned (bad
        // frame or exploded gradient); report instead of training onward
        // into a silently broken encoder.
        return Status::Internal("VAE training loss became non-finite at epoch " +
                                std::to_string(epoch));
      }
      total += losses.total();
      ++batches;
    }
    double avg = total / std::max(1, batches);
    epoch_losses.push_back(avg);
    obs::Global().GetGauge("vdrift.train.vae.epoch_loss").Set(avg);
    obs::Global().GetCounter("vdrift.train.vae.epochs").Increment();
    if (config_.verbose) {
      VDRIFT_LOG_INFO << "VAE epoch " << epoch << " avg loss " << avg;
    }
  }
  return epoch_losses;
}

std::vector<std::vector<float>> GenerateLatentSamples(
    Vae* vae, const std::vector<tensor::Tensor>& frames, int count,
    stats::Rng* rng) {
  VDRIFT_CHECK(!frames.empty());
  std::vector<std::vector<float>> samples;
  samples.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const tensor::Tensor& frame =
        frames[static_cast<size_t>(rng->NextInt(0,
            static_cast<int>(frames.size()) - 1))];
    samples.push_back(vae->EncodeSample(frame, rng));
  }
  return samples;
}

}  // namespace vdrift::vae
