#include "vae/vae.h"

#include <algorithm>
#include <cmath>

#include "nn/layers.h"
#include "nn/loss.h"
#include "runtime/parallel.h"
#include "tensor/ops.h"

namespace vdrift::vae {

using nn::Conv2d;
using nn::Flatten;
using nn::Linear;
using nn::ReLU;
using nn::Sigmoid;
using nn::Upsample2x;
using tensor::Shape;
using tensor::Tensor;

Vae::Vae(const VaeConfig& config, stats::Rng* rng) : config_(config) {
  VDRIFT_CHECK(config.image_size % 8 == 0)
      << "image_size must be divisible by 8, got " << config.image_size;
  int f = config.base_filters;
  // Encoder: 3 stride-2 convolutions halving the spatial extent each time,
  // then two FC heads fed by the flattened trunk output (paper Fig. 2).
  encoder_trunk_.Add<Conv2d>(config.channels, f, 3, 2, 1, rng);
  encoder_trunk_.Add<ReLU>();
  encoder_trunk_.Add<Conv2d>(f, 2 * f, 3, 2, 1, rng);
  encoder_trunk_.Add<ReLU>();
  encoder_trunk_.Add<Conv2d>(2 * f, 2 * f, 3, 2, 1, rng);
  encoder_trunk_.Add<ReLU>();
  encoder_trunk_.Add<Flatten>();
  dec_spatial_ = config.image_size / 8;
  dec_channels_ = 2 * f;
  trunk_features_ = dec_channels_ * dec_spatial_ * dec_spatial_;
  fc_mu_ = std::make_unique<Linear>(trunk_features_, config.latent_dim, rng);
  fc_logvar_ =
      std::make_unique<Linear>(trunk_features_, config.latent_dim, rng);
  // Start the posterior narrow (sigma ~ exp(-2) ~ 0.14): early Sigma_Ti
  // draws then track the (reconstruction-driven) means instead of being
  // swamped by unit-variance noise.
  fc_logvar_->Params()[1]->value.Fill(-4.0f);
  // Decoder: one FC layer then 3 convolutions, each preceded by 2x
  // upsampling, terminating in a sigmoid so outputs live in (0,1).
  decoder_.Add<Linear>(config.latent_dim, trunk_features_, rng);
  decoder_.Add<ReLU>();
  decoder_.AddLayer(std::make_unique<DecoderReshape>(dec_channels_,
                                                     dec_spatial_));
  decoder_.Add<Upsample2x>();
  decoder_.Add<Conv2d>(dec_channels_, dec_channels_, 3, 1, 1, rng);
  decoder_.Add<ReLU>();
  decoder_.Add<Upsample2x>();
  decoder_.Add<Conv2d>(dec_channels_, f, 3, 1, 1, rng);
  decoder_.Add<ReLU>();
  decoder_.Add<Upsample2x>();
  decoder_.Add<Conv2d>(f, config.channels, 3, 1, 1, rng);
  decoder_.Add<Sigmoid>();
}

void Vae::EncodeBatch(const Tensor& batch, Tensor* mu, Tensor* logvar) {
  Tensor h = encoder_trunk_.Forward(batch);
  *mu = fc_mu_->Forward(h);
  *logvar = fc_logvar_->Forward(h);
  // Clamp log-variance for numerical stability of exp().
  for (int64_t i = 0; i < logvar->size(); ++i) {
    (*logvar)[i] = std::clamp((*logvar)[i], -8.0f, 8.0f);
  }
}

Vae::ForwardResult Vae::Forward(const Tensor& batch, stats::Rng* rng) {
  ForwardResult result;
  EncodeBatch(batch, &result.mu, &result.logvar);
  result.eps = Tensor(result.mu.shape());
  result.z = Tensor(result.mu.shape());
  for (int64_t i = 0; i < result.z.size(); ++i) {
    float e = static_cast<float>(rng->NextGaussian());
    result.eps[i] = e;
    result.z[i] =
        result.mu[i] + std::exp(0.5f * result.logvar[i]) * e;
  }
  result.recon = decoder_.Forward(result.z);
  return result;
}

Vae::Losses Vae::TrainStep(const Tensor& batch, nn::Optimizer* optimizer,
                           stats::Rng* rng) {
  int64_t n = batch.shape().dim(0);
  optimizer->ZeroGrad();
  ForwardResult fwd = Forward(batch, rng);
  // Reconstruction: pixel-wise BCE, summed per sample, averaged over batch.
  nn::LossResult bce = nn::BinaryCrossEntropy(fwd.recon, batch);
  // KL(q(z|x) || N(0, I)) = -1/2 sum(1 + logvar - mu^2 - exp(logvar)).
  // Per-latent-unit grads are elementwise; the KL sum reduces with fixed
  // chunking so every thread count produces the same bits.
  Tensor grad_mu(fwd.mu.shape());
  Tensor grad_logvar(fwd.logvar.shape());
  float inv_n = 1.0f / static_cast<float>(n);
  float beta = static_cast<float>(config_.kl_weight);
  double kl = runtime::ParallelReduce<double>(
      0, fwd.mu.size(), 1 << 14, 0.0,
      [&](int64_t begin, int64_t end) {
        double partial = 0.0;
        for (int64_t i = begin; i < end; ++i) {
          float m = fwd.mu[i];
          float lv = fwd.logvar[i];
          float ev = std::exp(lv);
          partial += -0.5 * (1.0 + lv - m * m - ev);
          grad_mu[i] = beta * m * inv_n;
          grad_logvar[i] = beta * 0.5f * (ev - 1.0f) * inv_n;
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
  kl = config_.kl_weight * kl / static_cast<double>(n);

  // Backward: decoder -> dL/dz -> reparameterisation -> heads -> trunk.
  Tensor grad_z = decoder_.Backward(bce.grad);
  runtime::ParallelFor(
      0, grad_z.size(), 1 << 14, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          grad_mu[i] += grad_z[i];
          grad_logvar[i] +=
              grad_z[i] * fwd.eps[i] * 0.5f * std::exp(0.5f * fwd.logvar[i]);
        }
      });
  Tensor grad_h = fc_mu_->Backward(grad_mu);
  tensor::AddInPlace(&grad_h, fc_logvar_->Backward(grad_logvar));
  encoder_trunk_.Backward(grad_h);
  optimizer->Step();

  Losses losses;
  losses.reconstruction = bce.loss;
  losses.kl = kl;
  return losses;
}

Vae::Losses Vae::Evaluate(const Tensor& batch, stats::Rng* rng) {
  int64_t n = batch.shape().dim(0);
  ForwardResult fwd = Forward(batch, rng);
  nn::LossResult bce = nn::BinaryCrossEntropy(fwd.recon, batch);
  double kl = 0.0;
  for (int64_t i = 0; i < fwd.mu.size(); ++i) {
    float m = fwd.mu[i];
    float lv = fwd.logvar[i];
    kl += -0.5 * (1.0 + lv - m * m - std::exp(lv));
  }
  Losses losses;
  losses.reconstruction = bce.loss;
  losses.kl = config_.kl_weight * kl / static_cast<double>(n);
  return losses;
}

namespace {

Tensor AsBatchOfOne(const Tensor& frame) {
  if (frame.shape().ndim() == 4) {
    VDRIFT_CHECK(frame.shape().dim(0) == 1);
    return frame;
  }
  VDRIFT_CHECK(frame.shape().ndim() == 3);
  return frame.Reshaped(Shape{1, frame.shape().dim(0), frame.shape().dim(1),
                              frame.shape().dim(2)});
}

}  // namespace

std::vector<float> Vae::EncodeMean(const Tensor& frame) {
  Tensor mu;
  Tensor logvar;
  EncodeBatch(AsBatchOfOne(frame), &mu, &logvar);
  return std::vector<float>(mu.data(), mu.data() + mu.size());
}

std::vector<float> Vae::EncodeSample(const Tensor& frame, stats::Rng* rng) {
  Tensor mu;
  Tensor logvar;
  EncodeBatch(AsBatchOfOne(frame), &mu, &logvar);
  std::vector<float> z(static_cast<size_t>(mu.size()));
  for (int64_t i = 0; i < mu.size(); ++i) {
    z[static_cast<size_t>(i)] =
        mu[i] + std::exp(0.5f * logvar[i]) *
                    static_cast<float>(rng->NextGaussian());
  }
  return z;
}

Tensor Vae::Decode(const std::vector<float>& z) {
  VDRIFT_CHECK(static_cast<int>(z.size()) == config_.latent_dim);
  Tensor zt(Shape{1, config_.latent_dim});
  for (size_t i = 0; i < z.size(); ++i) zt[static_cast<int64_t>(i)] = z[i];
  Tensor out = decoder_.Forward(zt);
  return out.Reshaped(Shape{out.shape().dim(1), out.shape().dim(2),
                            out.shape().dim(3)});
}

std::vector<nn::Parameter*> Vae::Params() {
  std::vector<nn::Parameter*> params = encoder_trunk_.Params();
  for (nn::Parameter* p : fc_mu_->Params()) params.push_back(p);
  for (nn::Parameter* p : fc_logvar_->Params()) params.push_back(p);
  for (nn::Parameter* p : decoder_.Params()) params.push_back(p);
  return params;
}

std::unique_ptr<Vae> Vae::Clone() const {
  // Rebuild the architecture with a throwaway RNG (every weight is
  // overwritten below), then copy the parameter values pairwise — Params()
  // enumerates both networks' parameters in identical construction order.
  stats::Rng init_rng(0);
  auto clone = std::make_unique<Vae>(config_, &init_rng);
  // Params() is non-const (layers expose mutable parameters); the source
  // is only read.
  Vae* self = const_cast<Vae*>(this);
  std::vector<nn::Parameter*> src = self->Params();
  std::vector<nn::Parameter*> dst = clone->Params();
  // vdrift-lint: allow(no-data-dependent-check): same-architecture nets
  VDRIFT_CHECK(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i]->value = src[i]->value;
  }
  return clone;
}

Tensor StackFrames(const std::vector<Tensor>& frames) {
  VDRIFT_CHECK(!frames.empty());
  const Shape& fs = frames[0].shape();
  VDRIFT_CHECK(fs.ndim() == 3);
  int64_t n = static_cast<int64_t>(frames.size());
  Tensor batch(Shape{n, fs.dim(0), fs.dim(1), fs.dim(2)});
  int64_t stride = fs.NumElements();
  for (int64_t i = 0; i < n; ++i) {
    VDRIFT_CHECK(frames[static_cast<size_t>(i)].shape() == fs);
  }
  // Pure per-sample copies into disjoint batch slices.
  runtime::ParallelFor(0, n, runtime::GrainForCost(stride),
                       [&](int64_t begin, int64_t end) {
                         for (int64_t i = begin; i < end; ++i) {
                           const Tensor& f = frames[static_cast<size_t>(i)];
                           std::copy(f.data(), f.data() + stride,
                                     batch.data() + i * stride);
                         }
                       });
  return batch;
}

}  // namespace vdrift::vae
