#include "obs/labels.h"

#include <algorithm>

namespace vdrift::obs {

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatMetricKey(const std::string& name, const LabelSet& labels) {
  if (labels.empty()) return name;
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = name;
  out += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += "=\"";
    out += EscapeLabelValue(sorted[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

namespace {

Status Malformed(const std::string& key, const char* what) {
  return Status::InvalidArgument("malformed metric key '" + key +
                                 "': " + what);
}

}  // namespace

Result<MetricKey> ParseMetricKey(const std::string& key) {
  MetricKey out;
  size_t brace = key.find('{');
  if (brace == std::string::npos) {
    if (key.find('}') != std::string::npos) {
      return Malformed(key, "'}' without '{'");
    }
    out.name = key;
    return out;
  }
  if (brace == 0) return Malformed(key, "empty metric name");
  if (key.back() != '}') return Malformed(key, "label block not terminated");
  out.name = key.substr(0, brace);

  size_t i = brace + 1;
  size_t end = key.size() - 1;  // index of the closing '}'
  while (i < end) {
    size_t eq = key.find('=', i);
    if (eq == std::string::npos || eq >= end) {
      return Malformed(key, "label without '='");
    }
    std::string label_key = key.substr(i, eq - i);
    if (label_key.empty()) return Malformed(key, "empty label key");
    if (eq + 1 >= end || key[eq + 1] != '"') {
      return Malformed(key, "label value not quoted");
    }
    std::string value;
    size_t j = eq + 2;
    bool closed = false;
    while (j < end) {
      char c = key[j];
      if (c == '\\') {
        if (j + 1 >= end) return Malformed(key, "dangling escape");
        char next = key[j + 1];
        if (next == '\\') {
          value += '\\';
        } else if (next == '"') {
          value += '"';
        } else if (next == 'n') {
          value += '\n';
        } else {
          return Malformed(key, "unknown escape in label value");
        }
        j += 2;
      } else if (c == '"') {
        closed = true;
        ++j;
        break;
      } else {
        value += c;
        ++j;
      }
    }
    if (!closed) return Malformed(key, "label value not terminated");
    out.labels.emplace_back(std::move(label_key), std::move(value));
    if (j < end) {
      if (key[j] != ',') return Malformed(key, "expected ',' between labels");
      ++j;
      if (j >= end) return Malformed(key, "trailing ',' in label block");
    }
    i = j;
  }
  if (out.labels.empty()) return Malformed(key, "empty label block");
  std::sort(out.labels.begin(), out.labels.end());
  return out;
}

}  // namespace vdrift::obs
