#ifndef VDRIFT_OBS_WATCHDOG_H_
#define VDRIFT_OBS_WATCHDOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/sampler.h"

namespace vdrift::obs {

/// \brief One reference to a sampled value: a metric name plus the
/// aggregation to read from a MetricsWindow.
///
/// Aggregations: `delta`/`total` (counters), `value` (gauges),
/// `count`/`sum`/`mean`/`p50`/`p90`/`p99` (windowed histograms). When no
/// aggregation is spelled, it is inferred from where the metric is found:
/// counter -> delta, gauge -> value, histogram -> p99.
struct MetricRef {
  std::string metric;
  std::string agg;  ///< Empty = infer at evaluation time.
};

/// \brief One declarative SLO rule. The expression states the *healthy*
/// condition; a window where it evaluates false is a breach.
struct SloRule {
  std::string name;
  MetricRef numerator;
  MetricRef denominator;  ///< metric empty = plain (non-ratio) rule.
  std::string op;         ///< One of < <= > >= == !=.
  double threshold = 0.0;
  /// Hysteresis: the alert only activates after this many *consecutive*
  /// breached windows (default 1 = fire on the first breach).
  int for_windows = 1;
};

/// Parses a watchdog spec: semicolon-separated rules of the form
///
///   name = metric[:agg][/metric[:agg]] op threshold [,for=N]
///
/// e.g. `drop_ratio=vdrift.pipeline.frames_dropped:total/`
/// `vdrift.pipeline.frames:total<0.02;oblivious=vdrift.pipeline.`
/// `drift_oblivious==0,for=2`. Metric names may carry label blocks
/// (`name{k="v"}`); operators inside quoted label values are ignored by
/// the scanner. Malformed rules are kInvalidArgument.
Result<std::vector<SloRule>> ParseSloSpec(const std::string& spec);

/// The built-in rule set armed by `VDRIFT_SLO_SPEC=default`. Every rule is
/// deterministic in stream time (no wall-clock latency bounds), so a clean
/// run raises zero alerts on any machine.
std::string DefaultSloSpec();

/// \brief One structured alert: a rule transitioned from healthy to
/// breached-for-`for_windows` at the end of a sampling window.
struct AlertEvent {
  std::string rule;      ///< SloRule::name.
  int64_t window = 0;    ///< MetricsWindow::index that activated the alert.
  double time = 0.0;     ///< MetricsWindow::end_time (stream time).
  double value = 0.0;    ///< Observed value that breached.
  double threshold = 0.0;
  std::string op;        ///< The healthy-condition operator that failed.
  std::string message;   ///< Human summary, e.g. "drop_ratio: 0.2 !< 0.02".

  std::string ToJson() const;
};

/// \brief Evaluates SLO rules against each sampling window and keeps a
/// bounded log of the alerts that fired.
///
/// Per rule the watchdog tracks a consecutive-breach streak; the alert
/// activates (and one AlertEvent is emitted) when the streak reaches
/// `for_windows`, and deactivates on the first healthy window — so a
/// sustained breach produces one alert, not one per window. A rule whose
/// metric is absent from the window (or whose ratio denominator is zero)
/// is skipped for that window: missing data is not a breach, and it does
/// not break an ongoing streak either way — the streak simply holds.
class HealthWatchdog {
 public:
  struct Options {
    int max_alerts = 256;  ///< Alert log capacity (oldest dropped first).
  };

  explicit HealthWatchdog(std::vector<SloRule> rules);
  HealthWatchdog(std::vector<SloRule> rules, const Options& options);

  /// Evaluates every rule against `window`; returns the alerts that fired
  /// on this window (usually empty). Call once per sampled window, in
  /// order. Not thread-safe: drive it from the sampling thread.
  std::vector<AlertEvent> Evaluate(const MetricsWindow& window);

  const std::vector<SloRule>& rules() const { return rules_; }
  /// The rule with the given name, or nullptr. Lets an alert consumer map
  /// an AlertEvent back to the metric (and its labels — e.g. which
  /// {stream="..."} a breached per-stream rule supervises).
  const SloRule* FindRule(const std::string& name) const;
  /// Retained alerts, oldest first (at most Options::max_alerts).
  std::vector<AlertEvent> alerts() const;
  /// Total alerts fired since construction (including dropped ones).
  int64_t total_alerts() const { return total_alerts_; }
  /// Rules currently in the breached-active state.
  std::vector<std::string> active_rules() const;

  /// JSON array of the retained alerts (embedded into the metrics report).
  std::string AlertsJson() const;

 private:
  struct RuleState {
    int streak = 0;      ///< Consecutive breached windows so far.
    bool active = false; ///< Alert currently raised.
  };

  std::vector<SloRule> rules_;
  Options options_;
  std::vector<RuleState> states_;
  std::deque<AlertEvent> alerts_;
  int64_t total_alerts_ = 0;
};

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_WATCHDOG_H_
