// The SIGPROF handler below runs in async-signal context: it may only
// touch lock-free memory (this thread's profile context and sample
// buffer) and async-signal-safe syscalls. obs::MonotonicSeconds() is a
// std::chrono call with no signal-safety guarantee, so this file reads
// the raw monotonic clock directly where the handler needs a timestamp.
#include "obs/profiler.h"

#include <signal.h>
#include <sys/time.h>
#include <time.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "common/logging.h"

namespace vdrift::obs {

namespace {

/// Armed flag behind ProfilerArmed(): the only profiler cost TraceSpan /
/// OpProbe pay when the profiler is off is this one relaxed load.
std::atomic<bool> g_armed{false};

/// Set (once, before any handler can be installed) by Instance(); the
/// handler reads members through it.
SamplingProfiler* g_instance = nullptr;

long EnvLongOr(const char* name, long fallback) {
  // vdrift-lint: allow(no-ambient-nondeterminism): profiler env-knob
  // chokepoint (VDRIFT_PROFILE_HZ / VDRIFT_PROFILE_CAPACITY)
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value) return fallback;
  return parsed;
}

}  // namespace

bool ProfilerArmed() { return g_armed.load(std::memory_order_relaxed); }

/// \brief Per-thread profiler state.
///
/// The frame stack is written by the owning thread (ProfilePushFrame /
/// ProfilePopFrame, normal path) and read by the SIGPROF handler
/// *interrupting that same thread* — signal fences order the label write
/// before the depth publish, so at any interrupt point frames[0..depth)
/// are valid labels. The sample slots have a single writer (the handler;
/// SIGPROF is masked during its own handling) and are read cross-thread
/// by Drain() via the release/acquire `count` publish.
struct SamplingProfiler::ThreadState {
  static constexpr int kMaxDepth = 64;
  static constexpr int kMaxStackChars = 230;

  // Deliberately no default member initializers: slots are allocated
  // default-initialized (untouched pages) and the handler fully writes a
  // slot before publishing it through `count`, so arming the profiler
  // costs one virtual allocation instead of faulting in the whole buffer
  // (~8MB of soft page faults measurably slowed short bench runs).
  struct Slot {
    int64_t ts_ns;
    uint16_t len;
    char stack[kMaxStackChars];
  };

  ThreadState(int tid_in, int capacity_in)
      : tid(tid_in),
        capacity(capacity_in),
        slots(new Slot[static_cast<size_t>(capacity_in)]) {
    std::memset(frames, 0, sizeof(frames));
  }

  const int tid;
  const char* frames[kMaxDepth];
  std::atomic<int> depth{0};
  int capacity;
  std::unique_ptr<Slot[]> slots;
  std::atomic<uint32_t> count{0};
  /// Samples already returned by Drain(); guarded by the profiler mutex_.
  uint32_t drained_upto = 0;
};

/// Friend of SamplingProfiler so the file-scope signal path can reach the
/// private ThreadState without widening the public API.
struct ProfilerSignalAccess {
  static thread_local SamplingProfiler::ThreadState* tls_state;

  static void Handler(int /*signum*/, siginfo_t* /*info*/, void* /*ctx*/) {
    SamplingProfiler* profiler = g_instance;
    if (profiler == nullptr ||
        !profiler->running_.load(std::memory_order_relaxed)) {
      return;  // Straggler signal after Stop(): ignore.
    }
    const int saved_errno = errno;
    SamplingProfiler::ThreadState* state = tls_state;
    if (state == nullptr) {
      // This thread never entered a span/op while armed: no context to
      // attribute to (and registering here would allocate, which a signal
      // handler must not).
      profiler->unattributed_.fetch_add(1, std::memory_order_relaxed);
      errno = saved_errno;
      return;
    }
    const uint32_t index = state->count.load(std::memory_order_relaxed);
    if (index >= static_cast<uint32_t>(state->capacity)) {
      profiler->dropped_.fetch_add(1, std::memory_order_relaxed);
      errno = saved_errno;
      return;
    }
    SamplingProfiler::ThreadState::Slot& slot = state->slots[index];
    struct timespec now;
    // vdrift-lint: allow(no-raw-chrono): async-signal context —
    // clock_gettime(CLOCK_MONOTONIC) is signal-safe, obs::MonotonicSeconds
    // (std::chrono) is not guaranteed to be.
    clock_gettime(CLOCK_MONOTONIC, &now);
    slot.ts_ns = static_cast<int64_t>(now.tv_sec) * 1000000000 + now.tv_nsec;
    const int depth = state->depth.load(std::memory_order_relaxed);
    std::atomic_signal_fence(std::memory_order_acquire);
    int len = 0;
    if (depth == 0) {
      static const char kNoSpan[] = "(no span)";
      for (const char* c = kNoSpan; *c != '\0'; ++c) slot.stack[len++] = *c;
    }
    for (int i = 0; i < depth; ++i) {
      const char* label = state->frames[i];
      if (label == nullptr) break;
      if (i > 0) {
        if (len >= SamplingProfiler::ThreadState::kMaxStackChars) break;
        slot.stack[len++] = ';';
      }
      while (*label != '\0' &&
             len < SamplingProfiler::ThreadState::kMaxStackChars) {
        slot.stack[len++] = *label++;
      }
    }
    slot.len = static_cast<uint16_t>(len);
    // Publish the slot before the count so Drain() (another thread) never
    // reads a half-written sample.
    state->count.store(index + 1, std::memory_order_release);
    errno = saved_errno;
  }

  static bool Push(const char* label) {
    SamplingProfiler::ThreadState* state = tls_state;
    if (state == nullptr) {
      state = SamplingProfiler::Instance().RegisterThisThread();
    }
    const int depth = state->depth.load(std::memory_order_relaxed);
    if (depth >= SamplingProfiler::ThreadState::kMaxDepth) return false;
    state->frames[depth] = label;
    // Order the label write before the depth publish against the SIGPROF
    // handler interrupting this same thread.
    std::atomic_signal_fence(std::memory_order_release);
    state->depth.store(depth + 1, std::memory_order_relaxed);
    return true;
  }

  static void Pop() {
    SamplingProfiler::ThreadState* state = tls_state;
    if (state == nullptr) return;
    const int depth = state->depth.load(std::memory_order_relaxed);
    if (depth > 0) state->depth.store(depth - 1, std::memory_order_relaxed);
  }
};

thread_local SamplingProfiler::ThreadState* ProfilerSignalAccess::tls_state =
    nullptr;

SamplingProfiler& SamplingProfiler::Instance() {
  static SamplingProfiler* profiler = [] {
    auto* instance = new SamplingProfiler();
    g_instance = instance;
    // vdrift-lint: allow(no-ambient-nondeterminism): documented profiler
    // knob (VDRIFT_PROFILE_FOLDED)
    const char* path = std::getenv("VDRIFT_PROFILE_FOLDED");
    if (path != nullptr && *path != '\0') {
      Options options;
      if (long hz = EnvLongOr("VDRIFT_PROFILE_HZ", 0); hz > 0) {
        options.sample_hz = static_cast<int>(hz);
      }
      if (long cap = EnvLongOr("VDRIFT_PROFILE_CAPACITY", 0); cap > 0) {
        options.per_thread_capacity = static_cast<int>(cap);
      }
      {
        MutexLock lock(&instance->mutex_);
        instance->export_path_ = path;
      }
      Status status = instance->Start(options);
      if (!status.ok()) {
        VDRIFT_LOG_WARNING << "profiler not started: " << status.ToString();
      }
      std::atexit([] {
        SamplingProfiler& prof = SamplingProfiler::Instance();
        std::string export_path;
        {
          MutexLock lock(&prof.mutex_);
          export_path = prof.export_path_;
        }
        if (export_path.empty()) return;
        Status status = prof.WriteFolded(export_path);
        if (status.ok()) {
          std::fprintf(stderr, "profile written to %s\n",
                       export_path.c_str());
        } else {
          std::fprintf(stderr, "profile not written: %s\n",
                       status.ToString().c_str());
        }
      });
    }
    return instance;
  }();
  return *profiler;
}

namespace {

/// Touches Instance() at load time so VDRIFT_PROFILE_FOLDED arms the
/// profiler in any binary linking vdrift_obs, mirroring how
/// VDRIFT_TRACE_JSON arms the flight recorder without code changes.
const bool g_profiler_env_probe = [] {
  SamplingProfiler::Instance();
  return true;
}();

}  // namespace

SamplingProfiler::ThreadState* SamplingProfiler::RegisterThisThread() {
  ThreadState* state = ProfilerSignalAccess::tls_state;
  if (state != nullptr) return state;
  MutexLock lock(&mutex_);
  threads_.push_back(std::make_unique<ThreadState>(
      static_cast<int>(threads_.size()) + 1, options_.per_thread_capacity));
  state = threads_.back().get();
  ProfilerSignalAccess::tls_state = state;
  return state;
}

Status SamplingProfiler::Start(const Options& options) {
  if (options.sample_hz < 1 || options.sample_hz > 100000) {
    return Status::InvalidArgument("profiler sample_hz out of range: " +
                                   std::to_string(options.sample_hz));
  }
  if (options.per_thread_capacity < 1) {
    return Status::InvalidArgument("profiler per_thread_capacity must be >= 1");
  }
  if (running()) return Status::OK();
  {
    MutexLock lock(&mutex_);
    options_ = options;
    // No handler is live here (timer disarmed, running_ false), so the
    // buffers can be reset/resized in place; threads keep their cached
    // ThreadState pointers, exactly like the trace_log rings on re-Enable.
    for (const std::unique_ptr<ThreadState>& thread : threads_) {
      if (thread->capacity != options_.per_thread_capacity) {
        thread->slots.reset(new ThreadState::Slot[static_cast<size_t>(
            options_.per_thread_capacity)]);
        thread->capacity = options_.per_thread_capacity;
      }
      thread->count.store(0, std::memory_order_relaxed);
      thread->drained_upto = 0;
    }
  }
  dropped_.store(0, std::memory_order_relaxed);
  unattributed_.store(0, std::memory_order_relaxed);

  if (!handler_installed_.load(std::memory_order_relaxed)) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = &ProfilerSignalAccess::Handler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGPROF, &action, nullptr) != 0) {
      return Status::Internal("sigaction(SIGPROF) failed: " +
                              std::string(std::strerror(errno)));
    }
    handler_installed_.store(true, std::memory_order_relaxed);
  }

  // Track the starting thread even before it opens a span so its samples
  // attribute to a tid ("(no span)") instead of the unattributed bucket.
  RegisterThisThread();

  // Arm the context tracking before the timer so the first samples already
  // see span frames.
  running_.store(true, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);

  struct itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  const long interval_usec = std::max(1L, 1000000L / options.sample_hz);
  timer.it_interval.tv_sec = interval_usec / 1000000;
  timer.it_interval.tv_usec = interval_usec % 1000000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    running_.store(false, std::memory_order_relaxed);
    g_armed.store(false, std::memory_order_relaxed);
    return Status::Internal("setitimer(ITIMER_PROF) failed: " +
                            std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void SamplingProfiler::Stop() {
  if (!running()) return;
  struct itimerval zero;
  std::memset(&zero, 0, sizeof(zero));
  setitimer(ITIMER_PROF, &zero, nullptr);
  // The handler stays installed: a SIGPROF already in flight finds it
  // disarmed (running_ false) and is ignored, instead of hitting the
  // default action, which would terminate the process.
  g_armed.store(false, std::memory_order_relaxed);
  running_.store(false, std::memory_order_relaxed);
}

std::vector<SamplingProfiler::Sample> SamplingProfiler::Drain() {
  Stop();
  std::vector<Sample> out;
  MutexLock lock(&mutex_);
  for (const std::unique_ptr<ThreadState>& thread : threads_) {
    const uint32_t count = std::min<uint32_t>(
        thread->count.load(std::memory_order_acquire),
        static_cast<uint32_t>(thread->capacity));
    for (uint32_t i = thread->drained_upto; i < count; ++i) {
      const ThreadState::Slot& slot = thread->slots[i];
      Sample sample;
      sample.stack.assign(slot.stack, slot.len);
      sample.tid = thread->tid;
      sample.ts_ns = slot.ts_ns;
      out.push_back(std::move(sample));
    }
    thread->drained_upto = count;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Sample& a, const Sample& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

int64_t SamplingProfiler::total_samples() const {
  int64_t total = dropped_.load(std::memory_order_relaxed);
  MutexLock lock(&mutex_);
  for (const std::unique_ptr<ThreadState>& thread : threads_) {
    total += thread->count.load(std::memory_order_relaxed);
  }
  return total;
}

std::string SamplingProfiler::Folded(const std::vector<Sample>& samples) {
  std::map<std::string, int64_t> counts;
  for (const Sample& sample : samples) counts[sample.stack] += 1;
  std::string out;
  for (const auto& [stack, count] : counts) {
    out += stack + " " + std::to_string(count) + "\n";
  }
  return out;
}

std::string SamplingProfiler::DrainFolded() { return Folded(Drain()); }

Status SamplingProfiler::WriteFolded(const std::string& path) {
  const int64_t dropped = dropped_samples();
  const int64_t unattributed = unattributed_samples();
  std::string folded = DrainFolded();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open folded profile for writing: " + path);
  }
  out << folded;
  out.flush();
  if (!out) return Status::IoError("failed writing folded profile: " + path);
  if (dropped > 0) {
    VDRIFT_LOG_WARNING << "profiler dropped " << dropped
                       << " samples (per-thread buffer filled); raise "
                          "VDRIFT_PROFILE_CAPACITY for longer profiles";
  }
  if (unattributed > 0) {
    VDRIFT_LOG_WARNING << "profiler took " << unattributed
                       << " samples on threads with no profile context";
  }
  return Status::OK();
}

bool ProfilePushFrame(const char* label) {
  if (!ProfilerArmed()) return false;
  return ProfilerSignalAccess::Push(label);
}

void ProfilePopFrame() { ProfilerSignalAccess::Pop(); }

}  // namespace vdrift::obs
