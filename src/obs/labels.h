#ifndef VDRIFT_OBS_LABELS_H_
#define VDRIFT_OBS_LABELS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace vdrift::obs {

/// \brief One dimension of a labeled metric (e.g. {"stream", "cam12"}).
using Label = std::pair<std::string, std::string>;

/// \brief A set of labels. Order does not matter to callers; the canonical
/// encoding sorts by key so `{a,b}` and `{b,a}` address the same series.
using LabelSet = std::vector<Label>;

/// Canonical full key of a (name, labels) pair:
///   name                                  when labels is empty
///   name{k1="v1",k2="v2"}                 otherwise, keys sorted, values
///                                         escaped (\\, \", \n)
/// This string is the registry map key, so labeled lookups cost one string
/// compose + one map probe — callers on hot paths cache the returned
/// instrument reference exactly as they do for unlabeled metrics.
std::string FormatMetricKey(const std::string& name, const LabelSet& labels);

/// \brief A full key split back into name + labels (exporters group
/// series into metric families with this).
struct MetricKey {
  std::string name;
  LabelSet labels;  ///< Sorted by key, values unescaped.
};

/// Parses a canonical full key. A plain name (no '{') parses to an empty
/// label set. Malformed label blocks — unterminated braces, missing '=',
/// unquoted values, bad escapes — are kInvalidArgument.
Result<MetricKey> ParseMetricKey(const std::string& key);

/// Escapes a label value for the canonical encoding (also the OpenMetrics
/// label-value escaping: backslash, double quote, newline).
std::string EscapeLabelValue(const std::string& value);

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_LABELS_H_
