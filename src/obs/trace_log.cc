#include "obs/trace_log.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "obs/timer.h"

namespace vdrift::obs {

namespace {

// -1 = not yet read from VDRIFT_KERNEL_PROFILE, else 0/1.
std::atomic<int> g_kernel_profiling{-1};

bool EnvFlagSet(const char* name) {
  // vdrift-lint: allow(no-ambient-nondeterminism): trace env-knob chokepoint
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' &&
         std::strcmp(value, "0") != 0;
}

}  // namespace

void SetKernelProfiling(bool enabled) {
  g_kernel_profiling.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool KernelProfilingEnabled() {
  int state = g_kernel_profiling.load(std::memory_order_relaxed);
  if (state < 0) {
    state = EnvFlagSet("VDRIFT_KERNEL_PROFILE") ? 1 : 0;
    g_kernel_profiling.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

struct TraceLog::ThreadRing {
  explicit ThreadRing(int tid_in, int capacity) : tid(tid_in) {
    slots.resize(static_cast<size_t>(capacity));
  }

  Mutex mutex;
  std::vector<TraceEvent> slots VDRIFT_GUARDED_BY(mutex);
  /// Slot the next event lands in.
  size_t next VDRIFT_GUARDED_BY(mutex) = 0;
  /// Events ever appended.
  uint64_t total VDRIFT_GUARDED_BY(mutex) = 0;
  const int tid;
};

TraceLog& TraceLog::Instance() {
  static TraceLog* log = [] {
    auto* instance = new TraceLog();
    // vdrift-lint: allow(no-ambient-nondeterminism): documented trace knob
    const char* path = std::getenv("VDRIFT_TRACE_JSON");
    if (path != nullptr && *path != '\0') {
      Options options;
      // vdrift-lint: allow(no-ambient-nondeterminism): documented trace knob
      if (const char* cap = std::getenv("VDRIFT_TRACE_CAPACITY");
          cap != nullptr && std::atoi(cap) > 0) {
        options.per_thread_capacity = std::atoi(cap);
      }
      instance->Enable(options);
      {
        MutexLock lock(&instance->rings_mutex_);
        instance->export_path_ = path;
      }
      std::atexit([] {
        TraceLog& log = TraceLog::Instance();
        std::string export_path;
        {
          MutexLock lock(&log.rings_mutex_);
          export_path = log.export_path_;
        }
        if (export_path.empty()) return;
        Status status = log.WriteChromeJson(export_path);
        if (status.ok()) {
          std::fprintf(stderr, "trace written to %s\n", export_path.c_str());
        } else {
          std::fprintf(stderr, "trace not written: %s\n",
                       status.ToString().c_str());
        }
      });
    }
    return instance;
  }();
  return *log;
}

void TraceLog::Enable() { Enable(Options{}); }

void TraceLog::Enable(const Options& options) {
  {
    MutexLock rings_lock(&rings_mutex_);
    VDRIFT_CHECK(options.per_thread_capacity >= 1);
    options_ = options;
    epoch_seconds_.store(MonotonicSeconds(), std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    // Rings are never freed (threads cache raw pointers to them), so a
    // re-Enable resets them in place: drop buffered events and adopt the
    // new capacity.
    for (const std::unique_ptr<ThreadRing>& ring : rings_) {
      MutexLock lock(&ring->mutex);
      ring->slots.clear();
      ring->slots.resize(
          static_cast<size_t>(options_.per_thread_capacity));
      ring->next = 0;
      ring->total = 0;
    }
  }
  SetKernelProfiling(true);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceLog::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

TraceLog::ThreadRing* TraceLog::RingForThisThread() {
  // Rings live as long as the recorder (which is process-wide and never
  // destroyed), so each thread caches its ring pointer after the one
  // registry-locked lookup.
  thread_local ThreadRing* cached_ring = nullptr;
  if (cached_ring != nullptr) return cached_ring;
  MutexLock lock(&rings_mutex_);
  rings_.push_back(std::make_unique<ThreadRing>(
      static_cast<int>(rings_.size()) + 1, options_.per_thread_capacity));
  cached_ring = rings_.back().get();
  return cached_ring;
}

void TraceLog::Append(TraceEvent event) {
  // Racing a concurrent Disable() may admit a stray event; the guarantee
  // that matters is that a disabled recorder records nothing new.
  if (!enabled()) return;
  ThreadRing* ring = RingForThisThread();
  MutexLock lock(&ring->mutex);
  event.tid = ring->tid;
  if (ring->total >= ring->slots.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring->slots[ring->next] = std::move(event);
  ring->next = (ring->next + 1) % ring->slots.size();
  ring->total += 1;
}

void TraceLog::RecordBegin(const std::string& name, double start_seconds) {
  TraceEvent event;
  event.name = name;
  event.category = "span";
  event.phase = TraceEvent::Phase::kBegin;
  event.ts_us =
      (start_seconds - epoch_seconds_.load(std::memory_order_relaxed)) * 1e6;
  Append(std::move(event));
}

void TraceLog::RecordEnd(const std::string& name, double end_seconds) {
  TraceEvent event;
  event.name = name;
  event.category = "span";
  event.phase = TraceEvent::Phase::kEnd;
  event.ts_us =
      (end_seconds - epoch_seconds_.load(std::memory_order_relaxed)) * 1e6;
  Append(std::move(event));
}

void TraceLog::RecordComplete(const char* category, const std::string& name,
                              double start_seconds, double end_seconds,
                              int64_t flops, int64_t bytes) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = TraceEvent::Phase::kComplete;
  event.ts_us =
      (start_seconds - epoch_seconds_.load(std::memory_order_relaxed)) * 1e6;
  event.dur_us = (end_seconds - start_seconds) * 1e6;
  event.flops = flops;
  event.bytes = bytes;
  Append(std::move(event));
}

std::vector<TraceEvent> TraceLog::Drain() {
  std::vector<TraceEvent> out;
  MutexLock rings_lock(&rings_mutex_);
  for (const std::unique_ptr<ThreadRing>& ring : rings_) {
    MutexLock lock(&ring->mutex);
    size_t count = std::min<uint64_t>(ring->total, ring->slots.size());
    // Oldest-first: once wrapped, the oldest slot is `next`.
    size_t start = ring->total > ring->slots.size() ? ring->next : 0;
    for (size_t i = 0; i < count; ++i) {
      out.push_back(
          std::move(ring->slots[(start + i) % ring->slots.size()]));
    }
    ring->next = 0;
    ring->total = 0;
  }
  // (tid, ts): per-thread chronological order, the contract the trace
  // validator (tools/check_metrics.sh) checks.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::string TraceLog::ChromeJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json::Escape(event.name) + "\"";
    out += ",\"cat\":\"" + json::Escape(event.category) + "\"";
    out += ",\"ph\":\"";
    out += static_cast<char>(event.phase);
    out += "\"";
    out += ",\"ts\":" + json::FormatDouble(event.ts_us);
    if (event.phase == TraceEvent::Phase::kComplete) {
      out += ",\"dur\":" + json::FormatDouble(event.dur_us);
    }
    out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    if (event.flops != 0 || event.bytes != 0) {
      out += ",\"args\":{\"bytes\":" + std::to_string(event.bytes) +
             ",\"flops\":" + std::to_string(event.flops) + "}";
    } else {
      out += ",\"args\":{}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TraceLog::DrainChromeJson() { return ChromeJson(Drain()); }

Status TraceLog::WriteChromeJson(const std::string& path) {
  int64_t dropped = dropped_events();
  std::string doc = DrainChromeJson();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open trace for writing: " + path);
  }
  out << doc << "\n";
  out.flush();
  if (!out) return Status::IoError("failed writing trace: " + path);
  if (dropped > 0) {
    VDRIFT_LOG_WARNING << "flight recorder dropped " << dropped
                       << " events (ring wrapped); raise "
                          "VDRIFT_TRACE_CAPACITY for a longer window";
  }
  return Status::OK();
}

OpCounters RegisterOp(const char* scope, const char* op) {
  std::string base = std::string("vdrift.ops.") + scope + "." + op;
  OpCounters counters;
  counters.trace_name = std::string(scope) + "." + op;
  MetricsRegistry& registry = Global();
  counters.calls = &registry.GetCounter(base + ".calls");
  counters.flops = &registry.GetCounter(base + ".flops");
  counters.bytes = &registry.GetCounter(base + ".bytes");
  counters.seconds = &registry.GetHistogram(base + ".seconds");
  return counters;
}

OpProbe::OpProbe(const OpCounters& counters, int64_t flops, int64_t bytes)
    : counters_(counters),
      flops_(flops),
      bytes_(bytes),
      timed_(KernelProfilingEnabled()),
      start_(timed_ ? MonotonicSeconds() : 0.0) {
  counters_.calls->Increment();
  counters_.flops->Increment(flops);
  counters_.bytes->Increment(bytes);
  // Sampling-profiler attribution: the kernel becomes the innermost
  // profile-context frame, so samples landing inside the op fold to
  // "…span;scope.op". trace_name lives in a function-local static.
  if (ProfilerArmed()) profiled_ = ProfilePushFrame(counters_.trace_name.c_str());
}

OpProbe::~OpProbe() {
  if (profiled_) ProfilePopFrame();
  if (!timed_) return;
  double end = MonotonicSeconds();
  counters_.seconds->Record(end - start_);
  TraceLog& log = TraceLog::Instance();
  if (log.enabled()) {
    log.RecordComplete("op", counters_.trace_name, start_, end, flops_,
                       bytes_);
  }
}

}  // namespace vdrift::obs
