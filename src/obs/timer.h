#ifndef VDRIFT_OBS_TIMER_H_
#define VDRIFT_OBS_TIMER_H_

#include <string>

#include "obs/metrics.h"

namespace vdrift::obs {

/// Monotonic wall-clock reading in seconds; the single time source for all
/// obs timing (no component does its own std::chrono arithmetic).
double MonotonicSeconds();

/// \brief RAII latency probe: records elapsed wall time into a Histogram
/// when it goes out of scope (or at an explicit Stop()).
///
///   { ScopedTimer timer(&registry.GetHistogram("vdrift.di.observe_seconds"));
///     ... hot work ... }
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(MonotonicSeconds()) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now instead of at scope exit; idempotent. Returns the
  /// elapsed seconds of the first stop.
  double Stop();

 private:
  Histogram* histogram_;
  double start_;
  double elapsed_ = 0.0;
  bool stopped_ = false;
};

/// \brief Named, nestable RAII span.
///
/// Like ScopedTimer (elapsed time lands in `registry`'s histogram named
/// `name`), but spans form a per-thread stack so nested instrumentation
/// knows its context: Current() is the innermost live span and depth()
/// tells how deep this span sits. The pipeline wraps its run / detect /
/// select / query sections in spans and derives PipelineMetrics' timing
/// fields from the recorded histograms.
///
/// When the flight recorder (obs/trace_log.h) is enabled, every span also
/// emits begin/end trace events, so the nested structure is replayable on
/// a timeline (chrome://tracing / Perfetto).
///
/// Spans are expected to unwind LIFO per thread; an explicit Stop() on a
/// parent while children are live is handled defensively (the children
/// are closed innermost-first and a warning is logged) instead of
/// corrupting the thread-local stack.
class TraceSpan {
 public:
  TraceSpan(MetricsRegistry* registry, std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span now (records + pops the stack); idempotent.
  double Stop();

  const std::string& name() const { return name_; }
  /// 0 for a root span, parent's depth + 1 otherwise.
  int depth() const { return depth_; }
  const TraceSpan* parent() const { return parent_; }

  /// Innermost span still open on this thread (null outside any span).
  static const TraceSpan* Current();

 private:
  MetricsRegistry* registry_;
  std::string name_;
  double start_;
  double elapsed_ = 0.0;
  TraceSpan* parent_;
  int depth_;
  bool stopped_ = false;
  /// True when this span pushed a profile-context frame (sampling
  /// profiler armed at construction); the matching pop happens when the
  /// span unwinds from its thread's stack.
  bool profiled_ = false;
};

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_TIMER_H_
