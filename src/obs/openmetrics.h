#ifndef VDRIFT_OBS_OPENMETRICS_H_
#define VDRIFT_OBS_OPENMETRICS_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace vdrift::obs {

/// \brief Renders the registry in the OpenMetrics / Prometheus text
/// exposition format.
///
/// Canonical metric keys are split back into name + labels
/// (ParseMetricKey), names are sanitised to the exposition charset
/// (dots become underscores), and series of the same name are grouped
/// into one metric family:
///
///   # TYPE vdrift_di_detections counter
///   vdrift_di_detections_total{dataset="Tokyo"} 3
///   # TYPE vdrift_di_observe_seconds histogram
///   vdrift_di_observe_seconds_bucket{le="0.001"} 17
///   vdrift_di_observe_seconds_bucket{le="+Inf"} 450
///   vdrift_di_observe_seconds_sum 0.042
///   vdrift_di_observe_seconds_count 450
///   # EOF
///
/// Histogram buckets are cumulative; empty buckets are coalesced (only
/// boundaries where the cumulative count changes are emitted, plus the
/// mandatory +Inf bucket). Values recorded outside the configured bucket
/// range are covered by the +Inf bucket, so bucket counts always sum to
/// `_count`. The document ends with the OpenMetrics `# EOF` terminator.
std::string OpenMetricsText(const MetricsRegistry& registry);

/// Writes OpenMetricsText() to `path`.
Status WriteOpenMetrics(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_OPENMETRICS_H_
