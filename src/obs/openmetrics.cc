#include "obs/openmetrics.h"

#include <fstream>
#include <set>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/labels.h"

namespace vdrift::obs {

namespace {

// Exposition-format metric name charset: [a-zA-Z_:][a-zA-Z0-9_:]*.
// The registry's dotted names map onto it with '.' -> '_'.
std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

// Label name charset: [a-zA-Z_][a-zA-Z0-9_]*.
std::string SanitizeLabelName(const std::string& name) {
  std::string out = SanitizeName(name);
  for (char& c : out) {
    if (c == ':') c = '_';
  }
  return out;
}

std::string RenderLabels(const LabelSet& labels,
                         const std::string& extra_key = "",
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += SanitizeLabelName(key) + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
  }
  out += "}";
  return out;
}

// Splits a registry key; an unparsable key (never produced by
// FormatMetricKey, but the registry accepts arbitrary strings) is treated
// as a label-free name.
MetricKey SplitKey(const std::string& key) {
  Result<MetricKey> parsed = ParseMetricKey(key);
  if (parsed.ok()) return std::move(parsed).value();
  return MetricKey{key, {}};
}

// One family = every series sharing a sanitised name. `emitted` guards
// against a name collision across instrument kinds (the TYPE line must be
// unique per family).
bool ClaimFamily(const std::string& family, const char* type,
                 std::set<std::string>* emitted, std::string* out) {
  if (!emitted->insert(family).second) {
    VDRIFT_LOG_WARNING << "openmetrics: family " << family
                       << " already emitted; skipping duplicate";
    return false;
  }
  *out += "# TYPE " + family + " " + type + "\n";
  return true;
}

}  // namespace

std::string OpenMetricsText(const MetricsRegistry& registry) {
  std::string out;
  std::set<std::string> emitted;

  // Group series by family (sanitised base name). std::map iteration is
  // sorted by full key, and FormatMetricKey puts the name first, so all
  // series of a family are contiguous.
  auto counters = registry.Counters();
  std::string family;
  bool family_ok = false;
  for (const auto& [key, value] : counters) {
    MetricKey split = SplitKey(key);
    std::string name = SanitizeName(split.name);
    if (name != family) {
      family = name;
      family_ok = ClaimFamily(family, "counter", &emitted, &out);
    }
    if (!family_ok) continue;
    out += family + "_total" + RenderLabels(split.labels) + " " +
           std::to_string(value) + "\n";
  }

  family.clear();
  family_ok = false;
  for (const auto& [key, value] : registry.Gauges()) {
    MetricKey split = SplitKey(key);
    std::string name = SanitizeName(split.name);
    if (name != family) {
      family = name;
      family_ok = ClaimFamily(family, "gauge", &emitted, &out);
    }
    if (!family_ok) continue;
    out += family + RenderLabels(split.labels) + " " +
           json::FormatDouble(value) + "\n";
  }

  family.clear();
  family_ok = false;
  for (const auto& [key, snap] : registry.Histograms()) {
    MetricKey split = SplitKey(key);
    std::string name = SanitizeName(split.name);
    if (name != family) {
      family = name;
      family_ok = ClaimFamily(family, "histogram", &emitted, &out);
    }
    if (!family_ok) continue;
    // Cumulative buckets; empty buckets coalesce. The top bucket also
    // holds values clamped in from above the configured range, so its
    // finite bound would over-claim — it folds into +Inf instead.
    int64_t cumulative = 0;
    int bucket_count = static_cast<int>(snap.buckets.size());
    for (int i = 0; i + 1 < bucket_count; ++i) {
      int64_t in_bucket = snap.buckets[static_cast<size_t>(i)];
      if (in_bucket == 0) continue;
      cumulative += in_bucket;
      out += family + "_bucket" +
             RenderLabels(split.labels, "le",
                          json::FormatDouble(snap.BucketUpper(i))) +
             " " + std::to_string(cumulative) + "\n";
    }
    out += family + "_bucket" + RenderLabels(split.labels, "le", "+Inf") +
           " " + std::to_string(snap.count) + "\n";
    out += family + "_sum" + RenderLabels(split.labels) + " " +
           json::FormatDouble(snap.sum) + "\n";
    out += family + "_count" + RenderLabels(split.labels) + " " +
           std::to_string(snap.count) + "\n";
  }

  out += "# EOF\n";
  return out;
}

Status WriteOpenMetrics(const MetricsRegistry& registry,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open openmetrics export for writing: " +
                           path);
  }
  out << OpenMetricsText(registry);
  out.flush();
  if (!out) return Status::IoError("failed writing openmetrics: " + path);
  return Status::OK();
}

}  // namespace vdrift::obs
