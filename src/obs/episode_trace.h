#ifndef VDRIFT_OBS_EPISODE_TRACE_H_
#define VDRIFT_OBS_EPISODE_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sync.h"

namespace vdrift::obs {

/// \brief One frame's worth of Drift-Inspector state (Algorithm 1's
/// per-iteration variables).
struct EpisodeFrame {
  int64_t frame_index = 0;     ///< frames_seen of the inspector.
  double martingale = 0.0;     ///< S[iter] after the update.
  double p_value = 0.0;        ///< Conformal p-value (Eq. 1).
  double bet = 0.0;            ///< Betting-function increment b(p).
  double window_delta = 0.0;   ///< |S[iter] - S[iter-W]|.
  bool drift = false;          ///< Windowed test fired on this frame.
};

struct EpisodeRecorderOptions {
  /// Per-frame ring capacity: how much pre-detection context an episode
  /// snapshot can carry.
  int ring_capacity = 64;
  /// Episodes retained (oldest dropped first) — the recorder stays bounded
  /// no matter how noisy the detector is.
  int max_episodes = 32;
  /// SLO alert marks retained (oldest dropped first).
  int max_alerts = 64;
};

/// \brief One SLO watchdog alert pinned to the stream position where it
/// fired, so a degraded stretch can be lined up against the drift episodes
/// around it.
struct AlertMark {
  int64_t frame = 0;  ///< Pipeline frame index at the firing window's end.
  std::string rule;   ///< SloRule name that breached.
  std::string json;   ///< The firing AlertEvent, serialized (ToJson()).
};

/// \brief A snapshot of the frames leading up to (and including) one drift
/// detection, plus what the selector decided about it.
struct Episode {
  int64_t detect_frame = 0;
  std::string decision;  ///< Selector outcome; empty until annotated.
  std::vector<EpisodeFrame> frames;  ///< Chronological, last one has drift.
};

/// \brief Bounded ring buffer of Drift-Inspector telemetry.
///
/// Every observed frame is appended to a fixed-capacity ring; when a frame
/// declares drift, the ring's contents are frozen into an Episode so the
/// martingale's run-up to the detection can be replayed offline (the tool
/// for debugging false positives). Thread-safe; the drift-aware pipeline
/// shares one recorder across the inspectors it re-arms.
class EpisodeRecorder {
 public:
  explicit EpisodeRecorder(
      const EpisodeRecorderOptions& options = EpisodeRecorderOptions());

  /// Appends one frame; snapshots an episode when `frame.drift` is set.
  void RecordFrame(const EpisodeFrame& frame);

  /// Attaches the selector's decision to the most recent episode (no-op
  /// when no episode exists yet).
  void AnnotateDecision(const std::string& decision);

  /// Appends one SLO watchdog alert mark (bounded by max_alerts).
  void RecordAlert(const AlertMark& alert);

  /// Captured episodes, oldest first.
  std::vector<Episode> episodes() const;
  /// Recorded alert marks, oldest first (at most max_alerts).
  std::vector<AlertMark> alerts() const;
  int64_t frames_recorded() const;
  /// Current ring contents, oldest first (at most ring_capacity frames).
  std::vector<EpisodeFrame> RingContents() const;

  /// One JSON object per line: {"episode":i,"detect_frame":...,
  /// "decision":"...","frame":...,"martingale":...,"p":...,"bet":...,
  /// "window_delta":...,"drift":...} — grep/jq-friendly replay log.
  std::string ToJsonl() const;

  /// JSON array of episodes (embedded into the metrics report).
  std::string ToJson() const;

 private:
  std::vector<EpisodeFrame> RingContentsLocked() const
      VDRIFT_REQUIRES(mutex_);

  const EpisodeRecorderOptions options_;
  mutable Mutex mutex_;
  /// Filled circularly once at capacity.
  std::vector<EpisodeFrame> ring_ VDRIFT_GUARDED_BY(mutex_);
  /// Ring slot the next frame lands in.
  size_t next_ VDRIFT_GUARDED_BY(mutex_) = 0;
  int64_t total_ VDRIFT_GUARDED_BY(mutex_) = 0;
  std::deque<Episode> episodes_ VDRIFT_GUARDED_BY(mutex_);
  std::deque<AlertMark> alerts_ VDRIFT_GUARDED_BY(mutex_);
};

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_EPISODE_TRACE_H_
