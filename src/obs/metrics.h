#ifndef VDRIFT_OBS_METRICS_H_
#define VDRIFT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/labels.h"

namespace vdrift::obs {

/// \brief Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Back to zero (MetricsRegistry::Reset); the instrument stays
  /// registered and every cached reference stays valid.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (e.g. current epoch loss).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Bucket layout of a Histogram.
///
/// kLog spreads `bucket_count` geometrically spaced buckets between
/// `min_value` and `max_value` (HDR-histogram style: constant *relative*
/// error, the right shape for latencies spanning decades). kLinear spreads
/// them arithmetically (fixed absolute resolution, e.g. losses or scores).
/// Out-of-range observations clamp into the edge buckets; exact min/max/sum
/// are tracked separately so totals are never lossy.
struct HistogramOptions {
  enum class Scale { kLog, kLinear };
  Scale scale = Scale::kLog;
  double min_value = 1e-7;  ///< Lower bound of the bucketed range.
  double max_value = 1e3;   ///< Upper bound of the bucketed range.
  int bucket_count = 128;
};

/// \brief Fixed-bucket distribution summary with quantile estimates.
///
/// Thread-safe; Record is a mutex-guarded handful of arithmetic ops, cheap
/// against the VAE/classifier inference it typically brackets.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = HistogramOptions());

  void Record(double value);

  /// Clears buckets/count/sum/min/max; the bucket layout (options) and
  /// every cached reference stay valid.
  void Reset();

  /// A consistent point-in-time copy of the distribution.
  struct Snapshot {
    HistogramOptions options;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<int64_t> buckets;

    double Mean() const;
    /// Quantile estimate (q in [0,1]) by intra-bucket interpolation;
    /// exact for values tracked by min/max, otherwise accurate to one
    /// bucket width. Returns 0 when empty — callers serialising snapshots
    /// omit quantile keys for empty histograms instead of exporting that
    /// ambiguous 0 (see MetricsRegistry::ToJson).
    double Quantile(double q) const;

    /// Bucket boundaries of the snapshot's layout (exporters rendering
    /// cumulative `le` bounds use these).
    double BucketLower(int index) const;
    double BucketUpper(int index) const;
  };
  Snapshot snapshot() const;

  int64_t count() const;
  /// Exact running sum of all recorded values (not bucket-approximated);
  /// the obs equivalent of an accumulated `seconds += ...` total.
  double sum() const;

 private:
  int BucketIndex(double value) const;

  const HistogramOptions options_;
  mutable Mutex mutex_;
  std::vector<int64_t> buckets_ VDRIFT_GUARDED_BY(mutex_);
  int64_t count_ VDRIFT_GUARDED_BY(mutex_) = 0;
  double sum_ VDRIFT_GUARDED_BY(mutex_) = 0.0;
  double min_ VDRIFT_GUARDED_BY(mutex_) = 0.0;
  double max_ VDRIFT_GUARDED_BY(mutex_) = 0.0;
};

/// \brief Thread-safe, name-addressable home of all instruments.
///
/// Names follow the dotted convention documented in README/DESIGN
/// ("Observability"): `vdrift.di.*`, `vdrift.select.*`, `vdrift.pipeline.*`,
/// `vdrift.odin.*`, `vdrift.train.*`. Get* registers on first use and
/// returns a reference that stays valid for the registry's lifetime (the
/// instruments themselves are thread-safe).
///
/// Instruments can carry a label set (`vdrift.di.detections{stream="cam12"}`)
/// — each distinct (name, labels) pair is its own series, stored under the
/// canonical FormatMetricKey encoding. The label-free overloads are
/// unchanged, and a labeled lookup is one key compose + one map probe;
/// hot paths cache the returned reference either way.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Counter& GetCounter(const std::string& name, const LabelSet& labels);
  Gauge& GetGauge(const std::string& name);
  Gauge& GetGauge(const std::string& name, const LabelSet& labels);
  /// `options` only applies on first registration of `name`.
  Histogram& GetHistogram(const std::string& name,
                          const HistogramOptions& options = HistogramOptions());
  Histogram& GetHistogram(const std::string& name, const LabelSet& labels,
                          const HistogramOptions& options = HistogramOptions());

  /// Sorted point-in-time copies, for export/reporting. Keys are canonical
  /// full keys (labels included).
  std::map<std::string, int64_t> Counters() const;
  std::map<std::string, double> Gauges() const;
  std::map<std::string, Histogram::Snapshot> Histograms() const;

  /// Zeroes every counter and gauge and clears every histogram while
  /// keeping all registrations (cached instrument references stay valid).
  /// Gives multi-Run pipelines and tests an explicit per-run delta path
  /// instead of readings that accumulate across runs. Any MetricsSampler
  /// watching this registry must be re-created afterwards: its deltas are
  /// computed against pre-Reset totals.
  void Reset();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,mean,p50,p90,p99},...}}. Quantile keys (p50/p90/p99) and min/max
  /// are omitted for empty histograms — an empty distribution has no
  /// quantiles, and emitting 0 would be indistinguishable from a real 0.
  std::string ToJson() const;

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      VDRIFT_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      VDRIFT_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      VDRIFT_GUARDED_BY(mutex_);
};

/// The process-wide registry library internals (DI, selectors, trainers,
/// ODIN) record into; harnesses export it at exit.
MetricsRegistry& Global();

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_METRICS_H_
