#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vdrift::obs::json {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

const Value* Value::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = object_value.find(key);
  return it == object_value.end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser over a raw character range.
class Parser {
 public:
  Parser(const char* cursor, const char* end) : cursor_(cursor), end_(end) {}

  Result<Value> ParseDocument() {
    VDRIFT_ASSIGN_OR_RETURN(Value value, ParseValue());
    SkipWhitespace();
    if (cursor_ != end_) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (cursor_ != end_ &&
           std::isspace(static_cast<unsigned char>(*cursor_))) {
      ++cursor_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (cursor_ != end_ && *cursor_ == c) {
      ++cursor_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const char* p = cursor_;
    while (*literal != '\0') {
      if (p == end_ || *p != *literal) return false;
      ++p;
      ++literal;
    }
    cursor_ = p;
    return true;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (cursor_ == end_) return Status::InvalidArgument("unexpected end");
    Value value;
    switch (*cursor_) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        VDRIFT_ASSIGN_OR_RETURN(value.string_value, ParseString());
        value.type = Value::Type::kString;
        return value;
      }
      case 't':
        if (!ConsumeLiteral("true")) break;
        value.type = Value::Type::kBool;
        value.bool_value = true;
        return value;
      case 'f':
        if (!ConsumeLiteral("false")) break;
        value.type = Value::Type::kBool;
        return value;
      case 'n':
        if (!ConsumeLiteral("null")) break;
        return value;
      default:
        return ParseNumber();
    }
    return Status::InvalidArgument("malformed JSON value");
  }

  Result<Value> ParseNumber() {
    char* parse_end = nullptr;
    double parsed = std::strtod(cursor_, &parse_end);
    if (parse_end == cursor_ || parse_end > end_) {
      return Status::InvalidArgument("malformed JSON number");
    }
    cursor_ = parse_end;
    Value value;
    value.type = Value::Type::kNumber;
    value.number_value = parsed;
    return value;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Status::InvalidArgument("expected '\"'");
    std::string out;
    while (cursor_ != end_ && *cursor_ != '"') {
      char c = *cursor_++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (cursor_ == end_) {
        return Status::InvalidArgument("truncated escape");
      }
      char esc = *cursor_++;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (end_ - cursor_ < 4) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *cursor_++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("bad \\u escape");
            }
          }
          // The exporter only emits \u00xx control escapes; decode the
          // ASCII range and pass anything else through as '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape");
      }
    }
    if (!Consume('"')) return Status::InvalidArgument("unterminated string");
    return out;
  }

  Result<Value> ParseArray() {
    if (!Consume('[')) return Status::InvalidArgument("expected '['");
    Value value;
    value.type = Value::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      VDRIFT_ASSIGN_OR_RETURN(Value element, ParseValue());
      value.array_value.push_back(std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Status::InvalidArgument("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseObject() {
    if (!Consume('{')) return Status::InvalidArgument("expected '{'");
    Value value;
    value.type = Value::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      VDRIFT_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Status::InvalidArgument("expected ':'");
      VDRIFT_ASSIGN_OR_RETURN(Value member, ParseValue());
      value.object_value.emplace(std::move(key), std::move(member));
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }

  const char* cursor_;
  const char* end_;
};

}  // namespace

Result<Value> Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

}  // namespace vdrift::obs::json
