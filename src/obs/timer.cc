// vdrift-lint: allow-file(no-raw-chrono): this file IS the sanctioned
// clock — MonotonicSeconds() is the single std::chrono call site the rest
// of the tree is required to route through.
#include "obs/timer.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/profiler.h"
#include "obs/trace_log.h"

namespace vdrift::obs {

namespace {

thread_local TraceSpan* g_current_span = nullptr;

}  // namespace

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ScopedTimer::Stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  elapsed_ = MonotonicSeconds() - start_;
  if (histogram_ != nullptr) histogram_->Record(elapsed_);
  return elapsed_;
}

TraceSpan::TraceSpan(MetricsRegistry* registry, std::string name)
    : registry_(registry),
      name_(std::move(name)),
      start_(MonotonicSeconds()),
      parent_(g_current_span),
      depth_(g_current_span == nullptr ? 0 : g_current_span->depth_ + 1) {
  g_current_span = this;
  // Sampling-profiler attribution: while armed, the span's name becomes a
  // profile-context frame so SIGPROF samples fold to the span stack.
  // name_.c_str() is stable for the span's lifetime.
  if (ProfilerArmed()) profiled_ = ProfilePushFrame(name_.c_str());
  TraceLog& log = TraceLog::Instance();
  if (log.enabled()) log.RecordBegin(name_, start_);
}

TraceSpan::~TraceSpan() { Stop(); }

double TraceSpan::Stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  // Spans should unwind LIFO on a thread; scope-bound usage guarantees it.
  // An explicit Stop() on a parent while children are alive must not
  // corrupt the thread-local stack, so unwind defensively *before* taking
  // this span's end reading: close the live children (innermost first —
  // each recursive Stop() sees itself on top and pops normally), so their
  // end timestamps precede this span's on the trace timeline.
  if (g_current_span != this) {
    bool on_stack = false;
    for (TraceSpan* span = g_current_span; span != nullptr;
         span = span->parent_) {
      if (span == this) {
        on_stack = true;
        break;
      }
    }
    if (on_stack) {
      VDRIFT_LOG_WARNING << "TraceSpan \"" << name_
                         << "\" stopped while child spans were live; "
                            "closing them out of order";
      while (g_current_span != this) g_current_span->Stop();
    } else {
      // Not on this thread's stack at all (already unwound past, or
      // stopped from a foreign thread): record the timing but leave the
      // stack alone.
      VDRIFT_LOG_WARNING << "TraceSpan \"" << name_
                         << "\" stopped off its thread's span stack; "
                            "span stack left untouched";
    }
  }
  double end = MonotonicSeconds();
  elapsed_ = end - start_;
  if (registry_ != nullptr) registry_->GetHistogram(name_).Record(elapsed_);
  TraceLog& log = TraceLog::Instance();
  if (log.enabled()) log.RecordEnd(name_, end);
  if (g_current_span == this) {
    g_current_span = parent_;
    // Pop the profile frame only while unwinding on the owning thread —
    // a foreign-thread Stop() (warned above) must not pop another
    // thread's context stack.
    if (profiled_) ProfilePopFrame();
  }
  return elapsed_;
}

const TraceSpan* TraceSpan::Current() { return g_current_span; }

}  // namespace vdrift::obs
