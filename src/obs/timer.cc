#include "obs/timer.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace vdrift::obs {

namespace {

thread_local TraceSpan* g_current_span = nullptr;

}  // namespace

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ScopedTimer::Stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  elapsed_ = MonotonicSeconds() - start_;
  if (histogram_ != nullptr) histogram_->Record(elapsed_);
  return elapsed_;
}

TraceSpan::TraceSpan(MetricsRegistry* registry, std::string name)
    : registry_(registry),
      name_(std::move(name)),
      start_(MonotonicSeconds()),
      parent_(g_current_span),
      depth_(g_current_span == nullptr ? 0 : g_current_span->depth_ + 1) {
  g_current_span = this;
}

TraceSpan::~TraceSpan() { Stop(); }

double TraceSpan::Stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  elapsed_ = MonotonicSeconds() - start_;
  if (registry_ != nullptr) registry_->GetHistogram(name_).Record(elapsed_);
  // Spans must unwind LIFO on a thread; scope-bound usage guarantees it.
  VDRIFT_DCHECK(g_current_span == this);
  g_current_span = parent_;
  return elapsed_;
}

const TraceSpan* TraceSpan::Current() { return g_current_span; }

}  // namespace vdrift::obs
