#include "obs/sampler.h"

#include <utility>

#include "common/logging.h"
#include "obs/json.h"

namespace vdrift::obs {

namespace {

// Window delta of a histogram: bucket-wise difference of two cumulative
// snapshots. min/max are inherited from the cumulative snapshot (they
// bound every window's values, so Quantile's clamp stays sound) — the
// delta's quantiles come from the delta buckets.
Histogram::Snapshot DeltaSnapshot(const Histogram::Snapshot& cur,
                                  const Histogram::Snapshot& prev) {
  Histogram::Snapshot delta = cur;
  if (prev.count == 0) return delta;
  delta.count = cur.count - prev.count;
  delta.sum = cur.sum - prev.sum;
  if (cur.buckets.size() == prev.buckets.size()) {
    for (size_t i = 0; i < delta.buckets.size(); ++i) {
      delta.buckets[i] = cur.buckets[i] - prev.buckets[i];
    }
  }
  return delta;
}

}  // namespace

std::string MetricsWindow::ToJson() const {
  std::string out = "{\"window\":" + std::to_string(index);
  out += ",\"start\":" + json::FormatDouble(start_time);
  out += ",\"end\":" + json::FormatDouble(end_time);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, total] : counter_totals) {
    if (!first) out += ",";
    first = false;
    auto delta = counter_deltas.find(name);
    out += "\"" + json::Escape(name) + "\":{\"delta\":" +
           std::to_string(delta == counter_deltas.end() ? total
                                                        : delta->second) +
           ",\"total\":" + std::to_string(total) + "}";
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json::Escape(name) + "\":" + json::FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : histograms) {
    if (snap.count <= 0) continue;  // empty window: no quantiles to report
    if (!first) out += ",";
    first = false;
    out += "\"" + json::Escape(name) + "\":{";
    out += "\"count\":" + std::to_string(snap.count);
    out += ",\"sum\":" + json::FormatDouble(snap.sum);
    out += ",\"mean\":" + json::FormatDouble(snap.Mean());
    out += ",\"p50\":" + json::FormatDouble(snap.Quantile(0.50));
    out += ",\"p90\":" + json::FormatDouble(snap.Quantile(0.90));
    out += ",\"p99\":" + json::FormatDouble(snap.Quantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

MetricsSampler::MetricsSampler(const MetricsRegistry* registry)
    : MetricsSampler(registry, Options()) {}

MetricsSampler::MetricsSampler(const MetricsRegistry* registry,
                               const Options& options)
    : registry_(registry), options_(options) {
  VDRIFT_CHECK(registry_ != nullptr);
  VDRIFT_CHECK(options_.max_windows >= 1);
}

MetricsWindow MetricsSampler::Sample(double now) {
  // Registry snapshots are taken outside the sampler lock (each accessor
  // locks the registry internally; the sampler's own state is serial).
  std::map<std::string, int64_t> counters = registry_->Counters();
  std::map<std::string, double> gauges = registry_->Gauges();
  std::map<std::string, Histogram::Snapshot> histograms =
      registry_->Histograms();

  MutexLock lock(&mutex_);
  MetricsWindow window;
  window.index = taken_;
  window.start_time = last_time_;
  window.end_time = now;
  window.gauges = std::move(gauges);
  for (const auto& [name, total] : counters) {
    auto prev = prev_counters_.find(name);
    int64_t before = prev == prev_counters_.end() ? 0 : prev->second;
    window.counter_deltas[name] = total - before;
    window.counter_totals[name] = total;
  }
  for (const auto& [name, snap] : histograms) {
    auto prev = prev_histograms_.find(name);
    Histogram::Snapshot delta = prev == prev_histograms_.end()
                                    ? snap
                                    : DeltaSnapshot(snap, prev->second);
    // A histogram untouched during the window has no shape to report —
    // omitted entirely, so in-memory windows match the JSONL and the
    // watchdog's missing-data skip applies uniformly.
    if (delta.count > 0) window.histograms[name] = delta;
  }
  prev_counters_ = std::move(counters);
  prev_histograms_ = std::move(histograms);
  last_time_ = now;
  taken_ += 1;

  if (!options_.jsonl_path.empty() && !jsonl_failed_) {
    if (jsonl_ == nullptr) {
      jsonl_ = std::make_unique<std::ofstream>(options_.jsonl_path,
                                               std::ios::app);
      if (!*jsonl_) {
        VDRIFT_LOG_WARNING << "metrics JSONL sink disabled: cannot open "
                           << options_.jsonl_path;
        jsonl_failed_ = true;
        jsonl_.reset();
      }
    }
    if (jsonl_ != nullptr) {
      *jsonl_ << window.ToJson() << "\n";
      jsonl_->flush();
    }
  }

  windows_.push_back(window);
  while (static_cast<int>(windows_.size()) > options_.max_windows) {
    windows_.pop_front();
  }
  return window;
}

std::vector<MetricsWindow> MetricsSampler::windows() const {
  MutexLock lock(&mutex_);
  return {windows_.begin(), windows_.end()};
}

int64_t MetricsSampler::windows_sampled() const {
  MutexLock lock(&mutex_);
  return taken_;
}

double MetricsSampler::last_sample_time() const {
  MutexLock lock(&mutex_);
  return last_time_;
}

std::string MetricsSampler::ToJsonl() const {
  std::string out;
  for (const MetricsWindow& window : windows()) {
    out += window.ToJson();
    out += "\n";
  }
  return out;
}

}  // namespace vdrift::obs
