#include "obs/report.h"

#include <fstream>

namespace vdrift::obs {

std::string MetricsReportJson(const MetricsRegistry& registry,
                              const EpisodeRecorder* episodes) {
  return MetricsReportJson(registry, episodes, nullptr);
}

std::string MetricsReportJson(const MetricsRegistry& registry,
                              const EpisodeRecorder* episodes,
                              const HealthWatchdog* watchdog) {
  std::string metrics = registry.ToJson();
  // Splice "episodes" and "alerts" into the registry's top-level object.
  metrics.pop_back();  // trailing '}'
  metrics += ",\"episodes\":";
  metrics += episodes == nullptr ? "[]" : episodes->ToJson();
  metrics += ",\"alerts\":";
  metrics += watchdog == nullptr ? "[]" : watchdog->AlertsJson();
  metrics += "}";
  return metrics;
}

Status WriteMetricsJson(const MetricsRegistry& registry,
                        const EpisodeRecorder* episodes,
                        const std::string& path) {
  return WriteMetricsJson(registry, episodes, nullptr, path);
}

Status WriteMetricsJson(const MetricsRegistry& registry,
                        const EpisodeRecorder* episodes,
                        const HealthWatchdog* watchdog,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open metrics report for writing: " + path);
  }
  out << MetricsReportJson(registry, episodes, watchdog) << "\n";
  out.flush();
  if (!out) return Status::IoError("failed writing metrics report: " + path);
  return Status::OK();
}

}  // namespace vdrift::obs
