#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/json.h"

namespace vdrift::obs {

Histogram::Histogram(const HistogramOptions& options)
    : options_(options),
      buckets_(static_cast<size_t>(options.bucket_count), 0) {
  VDRIFT_CHECK(options_.bucket_count >= 1);
  VDRIFT_CHECK(options_.max_value > options_.min_value);
  if (options_.scale == HistogramOptions::Scale::kLog) {
    VDRIFT_CHECK(options_.min_value > 0.0)
        << "log-scale histograms need a positive min_value";
  }
}

int Histogram::BucketIndex(double value) const {
  if (value <= options_.min_value) return 0;
  if (value >= options_.max_value) return options_.bucket_count - 1;
  double position;
  if (options_.scale == HistogramOptions::Scale::kLog) {
    position = std::log(value / options_.min_value) /
               std::log(options_.max_value / options_.min_value);
  } else {
    position = (value - options_.min_value) /
               (options_.max_value - options_.min_value);
  }
  int index = static_cast<int>(position *
                               static_cast<double>(options_.bucket_count));
  return std::clamp(index, 0, options_.bucket_count - 1);
}

void Histogram::Record(double value) {
  if (!std::isfinite(value)) return;
  int index = BucketIndex(value);
  MutexLock lock(&mutex_);
  buckets_[static_cast<size_t>(index)] += 1;
  sum_ += value;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += 1;
}

void Histogram::Reset() {
  MutexLock lock(&mutex_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Histogram::Snapshot Histogram::snapshot() const {
  MutexLock lock(&mutex_);
  Snapshot snap;
  snap.options = options_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.buckets = buckets_;
  return snap;
}

int64_t Histogram::count() const {
  MutexLock lock(&mutex_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(&mutex_);
  return sum_;
}

double Histogram::Snapshot::Mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double Histogram::Snapshot::BucketLower(int index) const {
  double fraction = static_cast<double>(index) /
                    static_cast<double>(options.bucket_count);
  if (options.scale == HistogramOptions::Scale::kLog) {
    return options.min_value *
           std::pow(options.max_value / options.min_value, fraction);
  }
  return options.min_value +
         fraction * (options.max_value - options.min_value);
}

double Histogram::Snapshot::BucketUpper(int index) const {
  return BucketLower(index + 1);
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The extreme order statistics are tracked exactly.
  if (q == 0.0) return min;
  if (q == 1.0) return max;
  // Rank in [0, count-1]; find the bucket containing it and interpolate
  // by the rank's position inside the bucket (geometrically for log
  // scales, so the estimate has constant relative error).
  double rank = q * static_cast<double>(count - 1);
  int64_t cumulative = 0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    int64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(cumulative + in_bucket)) {
      double fraction =
          (rank - static_cast<double>(cumulative) + 0.5) /
          static_cast<double>(in_bucket);
      fraction = std::clamp(fraction, 0.0, 1.0);
      double lower = BucketLower(i);
      double upper = BucketUpper(i);
      double estimate;
      if (options.scale == HistogramOptions::Scale::kLog) {
        estimate = lower * std::pow(upper / lower, fraction);
      } else {
        estimate = lower + fraction * (upper - lower);
      }
      // The exact extrema are known; never report outside them.
      return std::clamp(estimate, min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const HistogramOptions& options) {
  MutexLock lock(&mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return *slot;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  return GetCounter(FormatMetricKey(name, labels));
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  return GetGauge(FormatMetricKey(name, labels));
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels,
                                         const HistogramOptions& options) {
  return GetHistogram(FormatMetricKey(name, labels), options);
}

void MetricsRegistry::Reset() {
  // Collect instrument pointers under the registry lock, reset outside it
  // (histograms have their own lock; never hold both at once).
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<Histogram*> histograms;
  {
    MutexLock lock(&mutex_);
    counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      counters.push_back(counter.get());
    }
    gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) gauges.push_back(gauge.get());
    histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      histograms.push_back(histogram.get());
    }
  }
  for (Counter* counter : counters) counter->Reset();
  for (Gauge* gauge : gauges) gauge->Reset();
  for (Histogram* histogram : histograms) histogram->Reset();
}

std::map<std::string, int64_t> MetricsRegistry::Counters() const {
  MutexLock lock(&mutex_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::Gauges() const {
  MutexLock lock(&mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::map<std::string, Histogram::Snapshot> MetricsRegistry::Histograms()
    const {
  // Copy the pointers under the registry lock, snapshot outside it (each
  // histogram has its own lock; never hold both at once).
  std::vector<std::pair<std::string, const Histogram*>> items;
  {
    MutexLock lock(&mutex_);
    items.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      items.emplace_back(name, histogram.get());
    }
  }
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, histogram] : items) {
    out[name] = histogram->snapshot();
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : Counters()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json::Escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : Gauges()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json::Escape(name) + "\":" + json::FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : Histograms()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json::Escape(name) + "\":{";
    out += "\"count\":" + std::to_string(snap.count);
    out += ",\"sum\":" + json::FormatDouble(snap.sum);
    // An empty histogram has no extrema or quantiles; omitting the keys
    // keeps a real 0 distinguishable from "no data".
    if (snap.count > 0) {
      out += ",\"min\":" + json::FormatDouble(snap.min);
      out += ",\"max\":" + json::FormatDouble(snap.max);
      out += ",\"mean\":" + json::FormatDouble(snap.Mean());
      out += ",\"p50\":" + json::FormatDouble(snap.Quantile(0.50));
      out += ",\"p90\":" + json::FormatDouble(snap.Quantile(0.90));
      out += ",\"p99\":" + json::FormatDouble(snap.Quantile(0.99));
    }
    out += "}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace vdrift::obs
