#ifndef VDRIFT_OBS_REPORT_H_
#define VDRIFT_OBS_REPORT_H_

#include <string>

#include "common/status.h"
#include "obs/episode_trace.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace vdrift::obs {

/// The full metrics report: the registry's counters/gauges/histograms plus
/// the drift-episode trace under an "episodes" key ([] when `episodes` is
/// null). This is the document the bench harnesses emit and
/// tools/check_metrics.sh validates.
std::string MetricsReportJson(const MetricsRegistry& registry,
                              const EpisodeRecorder* episodes);

/// As above, plus the SLO watchdog's alert log under an "alerts" key
/// ([] when `watchdog` is null). check_metrics.sh asserts this array is
/// empty on clean runs and non-empty under injected faults.
std::string MetricsReportJson(const MetricsRegistry& registry,
                              const EpisodeRecorder* episodes,
                              const HealthWatchdog* watchdog);

/// Writes MetricsReportJson to `path` (trailing newline included).
Status WriteMetricsJson(const MetricsRegistry& registry,
                        const EpisodeRecorder* episodes,
                        const std::string& path);

/// Watchdog-aware overload of WriteMetricsJson.
Status WriteMetricsJson(const MetricsRegistry& registry,
                        const EpisodeRecorder* episodes,
                        const HealthWatchdog* watchdog,
                        const std::string& path);

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_REPORT_H_
