#include "obs/episode_trace.h"

#include "common/logging.h"
#include "obs/json.h"

namespace vdrift::obs {

EpisodeRecorder::EpisodeRecorder(const EpisodeRecorderOptions& options)
    : options_(options) {
  VDRIFT_CHECK(options_.ring_capacity >= 1);
  VDRIFT_CHECK(options_.max_episodes >= 1);
  VDRIFT_CHECK(options_.max_alerts >= 1);
  ring_.reserve(static_cast<size_t>(options_.ring_capacity));
}

std::vector<EpisodeFrame> EpisodeRecorder::RingContentsLocked() const {
  std::vector<EpisodeFrame> out;
  out.reserve(ring_.size());
  if (ring_.size() < static_cast<size_t>(options_.ring_capacity)) {
    out = ring_;  // not yet wrapped: already chronological
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  }
  return out;
}

void EpisodeRecorder::RecordFrame(const EpisodeFrame& frame) {
  MutexLock lock(&mutex_);
  if (ring_.size() < static_cast<size_t>(options_.ring_capacity)) {
    ring_.push_back(frame);
    next_ = ring_.size() % static_cast<size_t>(options_.ring_capacity);
  } else {
    ring_[next_] = frame;
    next_ = (next_ + 1) % ring_.size();
  }
  total_ += 1;
  if (frame.drift) {
    Episode episode;
    episode.detect_frame = frame.frame_index;
    episode.frames = RingContentsLocked();
    episodes_.push_back(std::move(episode));
    while (static_cast<int>(episodes_.size()) > options_.max_episodes) {
      episodes_.pop_front();
    }
  }
}

void EpisodeRecorder::AnnotateDecision(const std::string& decision) {
  MutexLock lock(&mutex_);
  if (!episodes_.empty()) episodes_.back().decision = decision;
}

void EpisodeRecorder::RecordAlert(const AlertMark& alert) {
  MutexLock lock(&mutex_);
  alerts_.push_back(alert);
  while (static_cast<int>(alerts_.size()) > options_.max_alerts) {
    alerts_.pop_front();
  }
}

std::vector<Episode> EpisodeRecorder::episodes() const {
  MutexLock lock(&mutex_);
  return {episodes_.begin(), episodes_.end()};
}

int64_t EpisodeRecorder::frames_recorded() const {
  MutexLock lock(&mutex_);
  return total_;
}

std::vector<EpisodeFrame> EpisodeRecorder::RingContents() const {
  MutexLock lock(&mutex_);
  return RingContentsLocked();
}

std::vector<AlertMark> EpisodeRecorder::alerts() const {
  MutexLock lock(&mutex_);
  return {alerts_.begin(), alerts_.end()};
}

namespace {

void AppendFrameFields(const EpisodeFrame& frame, std::string* out) {
  *out += "\"frame\":" + std::to_string(frame.frame_index);
  *out += ",\"martingale\":" + json::FormatDouble(frame.martingale);
  *out += ",\"p\":" + json::FormatDouble(frame.p_value);
  *out += ",\"bet\":" + json::FormatDouble(frame.bet);
  *out += ",\"window_delta\":" + json::FormatDouble(frame.window_delta);
  *out += ",\"drift\":";
  *out += frame.drift ? "true" : "false";
}

}  // namespace

std::string EpisodeRecorder::ToJsonl() const {
  std::string out;
  std::vector<Episode> snapshot = episodes();
  for (size_t e = 0; e < snapshot.size(); ++e) {
    for (const EpisodeFrame& frame : snapshot[e].frames) {
      out += "{\"episode\":" + std::to_string(e);
      out += ",\"detect_frame\":" + std::to_string(snapshot[e].detect_frame);
      out += ",\"decision\":\"" + json::Escape(snapshot[e].decision) + "\",";
      AppendFrameFields(frame, &out);
      out += "}\n";
    }
  }
  return out;
}

std::string EpisodeRecorder::ToJson() const {
  std::string out = "[";
  std::vector<Episode> snapshot = episodes();
  for (size_t e = 0; e < snapshot.size(); ++e) {
    if (e > 0) out += ",";
    out += "{\"detect_frame\":" + std::to_string(snapshot[e].detect_frame);
    out += ",\"decision\":\"" + json::Escape(snapshot[e].decision) + "\"";
    out += ",\"frames\":[";
    for (size_t f = 0; f < snapshot[e].frames.size(); ++f) {
      if (f > 0) out += ",";
      out += "{";
      AppendFrameFields(snapshot[e].frames[f], &out);
      out += "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace vdrift::obs
