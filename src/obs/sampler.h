#ifndef VDRIFT_OBS_SAMPLER_H_
#define VDRIFT_OBS_SAMPLER_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace vdrift::obs {

/// \brief One sampling window: what changed in the registry between two
/// consecutive Sample() calls.
///
/// Counters carry both the window delta and the cumulative total at the
/// window's end, so a consumer can verify that the deltas of a run's
/// windows sum exactly to the final totals (the JSONL invariant
/// tools/check_metrics.sh asserts). Histograms are *windowed*: the
/// snapshot holds the bucket/count/sum deltas of the window, so
/// Quantile() answers "p99 of this window", not of the whole run.
struct MetricsWindow {
  int64_t index = 0;       ///< 0-based window sequence number.
  double start_time = 0.0; ///< Sampler time at the previous Sample().
  double end_time = 0.0;   ///< Sampler time at this Sample().
  std::map<std::string, int64_t> counter_deltas;
  std::map<std::string, int64_t> counter_totals;
  std::map<std::string, double> gauges;  ///< Value at the window's end.
  std::map<std::string, Histogram::Snapshot> histograms;  ///< Window deltas.

  /// One compact JSON object (one JSONL line). Histograms with an empty
  /// window are omitted, and quantile keys are never emitted for them.
  std::string ToJson() const;
};

/// \brief Periodic registry snapshotter producing per-window deltas.
///
/// Deterministic in whatever clock the caller passes to Sample() — the
/// drift-aware pipeline passes its admitted-frame count, so two runs over
/// the same stream produce bit-identical window series regardless of wall
/// time (the design note in DESIGN.md "Sampler determinism"). A bounded
/// ring of recent windows is retained for in-memory consumers (the SLO
/// watchdog, tests); when a JSONL path is configured every window is also
/// appended to that file as it is taken, so the exported time series is
/// complete even after the ring drops old windows.
///
/// The watched registry must outlive the sampler. Do not call
/// MetricsRegistry::Reset() on a registry a live sampler watches —
/// re-create the sampler instead (deltas would go negative).
class MetricsSampler {
 public:
  struct Options {
    int max_windows = 1024;  ///< Ring capacity (oldest dropped first).
    /// Append-only JSONL sink, one window per line ("" disables). Opened
    /// lazily at the first Sample(); a failed open logs once and disables
    /// the sink rather than failing the run.
    std::string jsonl_path;
  };

  explicit MetricsSampler(const MetricsRegistry* registry);
  MetricsSampler(const MetricsRegistry* registry, const Options& options);

  /// Snapshots the registry and closes the current window at time `now`
  /// (monotonically non-decreasing across calls). Returns the new window.
  MetricsWindow Sample(double now);

  /// Retained windows, oldest first (at most options.max_windows).
  std::vector<MetricsWindow> windows() const;
  /// Total windows taken since construction (including dropped ones).
  int64_t windows_sampled() const;
  /// Time passed to the most recent Sample() (0 before the first).
  double last_sample_time() const;

  /// Retained windows as JSONL (one line per window). The configured
  /// jsonl_path sink is the complete series; this is the in-memory tail.
  std::string ToJsonl() const;

 private:
  const MetricsRegistry* registry_;
  const Options options_;
  mutable Mutex mutex_;
  std::map<std::string, int64_t> prev_counters_ VDRIFT_GUARDED_BY(mutex_);
  std::map<std::string, Histogram::Snapshot> prev_histograms_
      VDRIFT_GUARDED_BY(mutex_);
  std::deque<MetricsWindow> windows_ VDRIFT_GUARDED_BY(mutex_);
  int64_t taken_ VDRIFT_GUARDED_BY(mutex_) = 0;
  double last_time_ VDRIFT_GUARDED_BY(mutex_) = 0.0;
  /// Lazily opened sink.
  std::unique_ptr<std::ofstream> jsonl_ VDRIFT_GUARDED_BY(mutex_);
  bool jsonl_failed_ VDRIFT_GUARDED_BY(mutex_) = false;
};

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_SAMPLER_H_
