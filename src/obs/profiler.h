#ifndef VDRIFT_OBS_PROFILER_H_
#define VDRIFT_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace vdrift::obs {

/// \brief In-process sampling profiler (SIGPROF / ITIMER_PROF driven).
///
/// Answers "where did the CPU time go" without external tooling: a profiling
/// interval timer delivers SIGPROF on whichever thread is burning CPU, and
/// the (async-signal-safe) handler copies that thread's current *profile
/// context* — the stack of live TraceSpan names plus the innermost kernel
/// op-probe, maintained by obs/timer.cc and obs/trace_log.cc while the
/// profiler is armed — into a bounded per-thread sample buffer (the same
/// fixed-capacity per-thread idiom as the trace_log rings; here new samples
/// are dropped and counted once a buffer fills, so already-drained history
/// is never silently rewritten under a concurrent drain).
///
/// Samples aggregate to folded-stack output ("span;child;kernel count" per
/// line), the format flamegraph.pl and speedscope consume directly, and the
/// one tools/check_metrics.sh validates.
///
/// Dispatch cost: when `VDRIFT_PROFILE_FOLDED` is unset and Start() is never
/// called, no timer is armed, no signal handler is installed, no buffer is
/// allocated and no sample is ever taken; the only residue on the hot path
/// is one relaxed atomic flag load per TraceSpan / OpProbe (the same
/// discipline as the flight recorder's enabled() gate).
///
/// Environment (read once at Instance() first use):
///   VDRIFT_PROFILE_FOLDED    path; arms the profiler at startup and writes
///                            the folded aggregate there at process exit
///   VDRIFT_PROFILE_HZ        sampling rate (default 199 Hz of CPU time)
///   VDRIFT_PROFILE_CAPACITY  samples retained per thread (default 1<<15)
class SamplingProfiler {
 public:
  struct Options {
    /// SIGPROF delivery rate in samples per second of *CPU time* —
    /// ITIMER_PROF counts process CPU, so an idle process takes no samples
    /// and sample counts are comparable across machine load. An off-round
    /// prime avoids lockstep with periodic work.
    int sample_hz = 199;
    /// Samples retained per thread before new ones are dropped (counted in
    /// dropped_samples()). Bounded like the trace_log rings.
    int per_thread_capacity = 1 << 15;
  };

  /// One drained sample: the profile context of the interrupted thread.
  struct Sample {
    std::string stack;  ///< "outer;inner;kernel", root-first; never empty.
    int tid = 0;        ///< Profiler-assigned small thread id (1-based).
    int64_t ts_ns = 0;  ///< CLOCK_MONOTONIC at sample time.
  };

  /// The process-wide profiler. First use reads VDRIFT_PROFILE_FOLDED /
  /// VDRIFT_PROFILE_HZ / VDRIFT_PROFILE_CAPACITY; when a folded path is
  /// configured the profiler starts immediately and an atexit hook stops,
  /// drains and writes the folded aggregate.
  static SamplingProfiler& Instance();

  /// Installs the SIGPROF handler and arms ITIMER_PROF. Idempotent while
  /// running; restarting after Stop() resets all sample buffers.
  [[nodiscard]] Status Start(const Options& options);
  [[nodiscard]] Status Start() { return Start(Options{}); }
  /// Disarms the timer and stops sampling; buffered samples stay drainable.
  /// The signal handler stays installed (a disarmed handler ignores any
  /// straggler SIGPROF instead of the default action terminating us).
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Returns the samples accumulated since the previous Drain() (calls
  /// Stop() first when still running — draining a live profiler would race
  /// the handler's slot writes).
  std::vector<Sample> Drain();

  /// Samples taken since Start() (including any later dropped).
  int64_t total_samples() const;
  /// Samples dropped because a per-thread buffer filled.
  int64_t dropped_samples() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Samples landing on threads that never entered a span/op while armed
  /// (no profile context registered; nothing to attribute to).
  int64_t unattributed_samples() const {
    return unattributed_.load(std::memory_order_relaxed);
  }

  /// Aggregates samples to folded-stack lines ("stack count\n", sorted by
  /// stack), the flamegraph.pl input format.
  static std::string Folded(const std::vector<Sample>& samples);
  /// Drain() + Folded().
  std::string DrainFolded();
  /// DrainFolded() to `path` (trailing newline per line; empty aggregate
  /// still writes an empty file so "armed but idle" is distinguishable
  /// from "never armed").
  [[nodiscard]] Status WriteFolded(const std::string& path);

 private:
  struct ThreadState;
  friend struct ProfilerSignalAccess;

  SamplingProfiler() = default;
  ThreadState* RegisterThisThread();

  std::atomic<bool> running_{false};
  std::atomic<bool> handler_installed_{false};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> unattributed_{0};
  mutable Mutex mutex_;
  Options options_ VDRIFT_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<ThreadState>> threads_
      VDRIFT_GUARDED_BY(mutex_);
  std::string export_path_ VDRIFT_GUARDED_BY(mutex_);
};

/// True while the profiler is armed — the gate TraceSpan / OpProbe check
/// (one relaxed load) before maintaining the profile context.
bool ProfilerArmed();

/// Pushes a frame label onto this thread's profile context. `label` must
/// stay valid until the matching pop (span names and op trace_names are
/// stable for the frame's lifetime). Returns true when the frame was
/// pushed — the caller must call ProfilePopFrame() exactly when it got
/// true, so arm/disarm races stay balanced.
bool ProfilePushFrame(const char* label);
void ProfilePopFrame();

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_PROFILER_H_
