#include "obs/watchdog.h"

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "obs/json.h"

namespace vdrift::obs {

namespace {

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

// Scans for `needle` characters outside label blocks (`{...}`) and quoted
// label values, so `metric{op="<"}<1` finds the second '<'.
size_t FindOutsideLabels(const std::string& text, const char* needles,
                         size_t from = 0) {
  bool in_quotes = false;
  int depth = 0;
  for (size_t i = from; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_quotes = false;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      continue;
    }
    if (c == '{') ++depth;
    if (c == '}' && depth > 0) --depth;
    if (depth > 0) continue;
    for (const char* n = needles; *n != '\0'; ++n) {
      if (c == *n) return i;
    }
  }
  return std::string::npos;
}

bool IsKnownAgg(const std::string& agg) {
  return agg == "delta" || agg == "total" || agg == "value" ||
         agg == "count" || agg == "sum" || agg == "mean" || agg == "p50" ||
         agg == "p90" || agg == "p99";
}

Result<MetricRef> ParseRef(const std::string& text, const std::string& rule) {
  MetricRef ref;
  size_t colon = FindOutsideLabels(text, ":");
  if (colon == std::string::npos) {
    ref.metric = Trim(text);
  } else {
    ref.metric = Trim(text.substr(0, colon));
    ref.agg = Trim(text.substr(colon + 1));
    if (!IsKnownAgg(ref.agg)) {
      return Status::InvalidArgument("slo rule '" + rule +
                                     "': unknown aggregation '" + ref.agg +
                                     "'");
    }
  }
  if (ref.metric.empty()) {
    return Status::InvalidArgument("slo rule '" + rule +
                                   "': empty metric reference");
  }
  return ref;
}

// Reads one MetricRef out of a sampled window. nullopt = the metric (or a
// meaningful aggregate of it) is not present in this window.
std::optional<double> Resolve(const MetricRef& ref,
                              const MetricsWindow& window) {
  std::string agg = ref.agg;
  if (agg.empty()) {
    // Infer from where the metric lives: counter -> delta, gauge -> value,
    // histogram -> p99.
    if (window.counter_deltas.count(ref.metric) > 0) {
      agg = "delta";
    } else if (window.gauges.count(ref.metric) > 0) {
      agg = "value";
    } else if (window.histograms.count(ref.metric) > 0) {
      agg = "p99";
    } else {
      return std::nullopt;
    }
  }
  if (agg == "delta" || agg == "total") {
    const auto& source =
        agg == "delta" ? window.counter_deltas : window.counter_totals;
    auto it = source.find(ref.metric);
    if (it == source.end()) return std::nullopt;
    return static_cast<double>(it->second);
  }
  if (agg == "value") {
    auto it = window.gauges.find(ref.metric);
    if (it == window.gauges.end()) return std::nullopt;
    return it->second;
  }
  auto it = window.histograms.find(ref.metric);
  if (it == window.histograms.end()) return std::nullopt;
  const Histogram::Snapshot& snap = it->second;
  if (agg == "count") return static_cast<double>(snap.count);
  if (agg == "sum") return snap.sum;
  // Distribution shape of an empty window is undefined, not zero.
  if (snap.count == 0) return std::nullopt;
  if (agg == "mean") return snap.Mean();
  if (agg == "p50") return snap.Quantile(0.50);
  if (agg == "p90") return snap.Quantile(0.90);
  return snap.Quantile(0.99);
}

bool Healthy(double value, const std::string& op, double threshold) {
  if (op == "<") return value < threshold;
  if (op == "<=") return value <= threshold;
  if (op == ">") return value > threshold;
  if (op == ">=") return value >= threshold;
  if (op == "==") return value == threshold;
  return value != threshold;  // "!="
}

Result<SloRule> ParseRule(const std::string& text) {
  SloRule rule;
  size_t name_end = text.find('=');
  if (name_end == std::string::npos || name_end + 1 >= text.size()) {
    return Status::InvalidArgument("slo rule '" + text +
                                   "': expected name=expression");
  }
  rule.name = Trim(text.substr(0, name_end));
  if (rule.name.empty()) {
    return Status::InvalidArgument("slo rule '" + text + "': empty name");
  }
  std::string expr = text.substr(name_end + 1);

  size_t op_at = FindOutsideLabels(expr, "<>=!");
  if (op_at == std::string::npos) {
    return Status::InvalidArgument("slo rule '" + text +
                                   "': no comparison operator");
  }
  size_t op_len = 1;
  if (op_at + 1 < expr.size() && expr[op_at + 1] == '=') op_len = 2;
  rule.op = expr.substr(op_at, op_len);
  if (rule.op != "<" && rule.op != "<=" && rule.op != ">" &&
      rule.op != ">=" && rule.op != "==" && rule.op != "!=") {
    return Status::InvalidArgument("slo rule '" + text +
                                   "': bad operator '" + rule.op + "'");
  }

  std::string lhs = expr.substr(0, op_at);
  size_t slash = FindOutsideLabels(lhs, "/");
  if (slash == std::string::npos) {
    VDRIFT_ASSIGN_OR_RETURN(rule.numerator, ParseRef(lhs, text));
  } else {
    VDRIFT_ASSIGN_OR_RETURN(rule.numerator,
                            ParseRef(lhs.substr(0, slash), text));
    std::string denom = lhs.substr(slash + 1);
    if (FindOutsideLabels(denom, "/") != std::string::npos) {
      return Status(StatusCode::kInvalidArgument,
                    "SLO rule has more than one '/': " + std::string(text));
    }
    VDRIFT_ASSIGN_OR_RETURN(rule.denominator, ParseRef(denom, text));
  }

  std::string rhs = expr.substr(op_at + op_len);
  size_t comma = rhs.find(',');
  std::string threshold_text = Trim(
      comma == std::string::npos ? rhs : rhs.substr(0, comma));
  char* end = nullptr;
  rule.threshold = std::strtod(threshold_text.c_str(), &end);
  if (threshold_text.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("slo rule '" + text +
                                   "': bad threshold '" + threshold_text +
                                   "'");
  }
  if (comma != std::string::npos) {
    std::string suffix = Trim(rhs.substr(comma + 1));
    if (suffix.rfind("for=", 0) != 0) {
      return Status::InvalidArgument("slo rule '" + text +
                                     "': expected for=N, got '" + suffix +
                                     "'");
    }
    rule.for_windows = std::atoi(suffix.c_str() + 4);
    if (rule.for_windows < 1) {
      return Status::InvalidArgument("slo rule '" + text +
                                     "': for=N needs N >= 1");
    }
  }
  return rule;
}

}  // namespace

Result<std::vector<SloRule>> ParseSloSpec(const std::string& spec) {
  std::vector<SloRule> rules;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    std::string text = Trim(spec.substr(begin, end - begin));
    begin = end + 1;
    if (text.empty()) continue;
    VDRIFT_ASSIGN_OR_RETURN(SloRule rule, ParseRule(text));
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::string DefaultSloSpec() {
  // Stream-time rules only: a clean run must evaluate identically (and
  // alert-free) on any machine. Wall-clock latency rules (e.g.
  // frame_latency_p99=vdrift.pipeline.run_seconds:p99<0.050) are opt-in
  // via VDRIFT_SLO_SPEC.
  return "frame_drop_ratio=vdrift.pipeline.frames_dropped:total/"
         "vdrift.pipeline.frames:total<0.02;"
         "drift_oblivious=vdrift.pipeline.drift_oblivious:value==0;"
         "detect_lag_p99=vdrift.pipeline.detect_lag_frames:p99<2000;"
         "selector_failures=vdrift.pipeline.selection_failures:total==0;"
         "annotator_errors=vdrift.pipeline.annotator_errors:value==0;"
         "checkpoint_failures=vdrift.pipeline.checkpoint_failures:total==0";
}

std::string AlertEvent::ToJson() const {
  std::string out = "{\"rule\":\"" + json::Escape(rule) + "\"";
  out += ",\"window\":" + std::to_string(window);
  out += ",\"time\":" + json::FormatDouble(time);
  out += ",\"value\":" + json::FormatDouble(value);
  out += ",\"op\":\"" + json::Escape(op) + "\"";
  out += ",\"threshold\":" + json::FormatDouble(threshold);
  out += ",\"message\":\"" + json::Escape(message) + "\"}";
  return out;
}

HealthWatchdog::HealthWatchdog(std::vector<SloRule> rules)
    : HealthWatchdog(std::move(rules), Options()) {}

HealthWatchdog::HealthWatchdog(std::vector<SloRule> rules,
                               const Options& options)
    : rules_(std::move(rules)), options_(options), states_(rules_.size()) {
  VDRIFT_CHECK(options_.max_alerts >= 1);
}

const SloRule* HealthWatchdog::FindRule(const std::string& name) const {
  for (const SloRule& rule : rules_) {
    if (rule.name == name) return &rule;
  }
  return nullptr;
}

std::vector<AlertEvent> HealthWatchdog::Evaluate(
    const MetricsWindow& window) {
  std::vector<AlertEvent> fired;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& state = states_[i];
    std::optional<double> value = Resolve(rule.numerator, window);
    if (!rule.denominator.metric.empty()) {
      std::optional<double> denom = Resolve(rule.denominator, window);
      if (!value.has_value() || !denom.has_value() || *denom == 0.0) {
        continue;  // no data: neither a breach nor an all-clear
      }
      value = *value / *denom;
    }
    if (!value.has_value()) continue;

    if (Healthy(*value, rule.op, rule.threshold)) {
      state.streak = 0;
      state.active = false;
      continue;
    }
    state.streak += 1;
    if (state.active || state.streak < rule.for_windows) continue;
    state.active = true;

    AlertEvent alert;
    alert.rule = rule.name;
    alert.window = window.index;
    alert.time = window.end_time;
    alert.value = *value;
    alert.op = rule.op;
    alert.threshold = rule.threshold;
    alert.message = rule.name + ": " + json::FormatDouble(*value) + " !" +
                    rule.op + " " + json::FormatDouble(rule.threshold);
    if (rule.for_windows > 1) {
      alert.message +=
          " for " + std::to_string(state.streak) + " windows";
    }
    fired.push_back(alert);
    alerts_.push_back(alert);
    total_alerts_ += 1;
    while (static_cast<int>(alerts_.size()) > options_.max_alerts) {
      alerts_.pop_front();
    }
  }
  return fired;
}

std::vector<AlertEvent> HealthWatchdog::alerts() const {
  return {alerts_.begin(), alerts_.end()};
}

std::vector<std::string> HealthWatchdog::active_rules() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (states_[i].active) out.push_back(rules_[i].name);
  }
  return out;
}

std::string HealthWatchdog::AlertsJson() const {
  std::string out = "[";
  bool first = true;
  for (const AlertEvent& alert : alerts_) {
    if (!first) out += ",";
    first = false;
    out += alert.ToJson();
  }
  out += "]";
  return out;
}

}  // namespace vdrift::obs
