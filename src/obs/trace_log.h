#ifndef VDRIFT_OBS_TRACE_LOG_H_
#define VDRIFT_OBS_TRACE_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace vdrift::obs {

/// \brief One flight-recorder event, in Chrome trace-event terms.
///
/// Spans emit a kBegin/kEnd pair; kernel ops emit a single kComplete event
/// carrying their duration and FLOP/byte attribution. Timestamps are
/// microseconds since the recorder was enabled (the Chrome "ts" unit).
struct TraceEvent {
  enum class Phase : char { kBegin = 'B', kEnd = 'E', kComplete = 'X' };

  std::string name;
  const char* category = "span";  ///< "span" or "op"; static strings only.
  Phase phase = Phase::kComplete;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< kComplete only.
  int tid = 0;          ///< Recorder-assigned small thread id (1-based).
  int64_t flops = 0;    ///< Arithmetic work of the op (0 for spans).
  int64_t bytes = 0;    ///< Bytes touched by the op (0 for spans).
};

/// \brief Bounded, lock-cheap flight recorder behind TraceSpan and the
/// kernel profiling hooks.
///
/// Each thread appends into its own fixed-capacity ring buffer (one
/// uncontended mutex acquisition per event; the oldest events are
/// overwritten once the ring is full, so a recorder left enabled for hours
/// stays bounded and keeps the most recent history — the flight-recorder
/// property). Drain() empties every ring and returns the events sorted by
/// (tid, ts), which is also the order the Chrome trace JSON is emitted in.
///
/// The recorder is process-wide (Instance()) and disabled by default: the
/// per-event fast path behind a disabled recorder is a single relaxed
/// atomic load. Setting `VDRIFT_TRACE_JSON=<path>` enables it at first use
/// and registers an atexit hook that writes the Chrome trace-event file
/// (loadable in chrome://tracing or https://ui.perfetto.dev) on exit —
/// so any bench or tool can be traced without code changes.
class TraceLog {
 public:
  struct Options {
    /// Events retained per thread before the ring wraps. Overridable via
    /// VDRIFT_TRACE_CAPACITY when the recorder is enabled by environment.
    int per_thread_capacity = 1 << 17;
  };

  /// The process-wide recorder. First use reads VDRIFT_TRACE_JSON (and
  /// VDRIFT_TRACE_CAPACITY) and arms the exit-time export when set.
  static TraceLog& Instance();

  /// Starts recording (idempotent; resets the trace epoch and drops any
  /// buffered events). Also turns kernel profiling on so tensor/nn op
  /// events land in the trace.
  void Enable(const Options& options);
  void Enable();
  /// Stops recording; buffered events stay drainable.
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Span lifecycle events. `*_seconds` are MonotonicSeconds() readings.
  void RecordBegin(const std::string& name, double start_seconds);
  void RecordEnd(const std::string& name, double end_seconds);
  /// One completed op with FLOP/byte attribution ("X" event).
  void RecordComplete(const char* category, const std::string& name,
                      double start_seconds, double end_seconds,
                      int64_t flops, int64_t bytes);

  /// Removes and returns all buffered events, sorted by (tid, ts).
  std::vector<TraceEvent> Drain();
  /// Events overwritten by ring wraparound since Enable().
  int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drains and serialises to a Chrome trace-event JSON document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string DrainChromeJson();
  /// DrainChromeJson() to `path` (trailing newline included).
  Status WriteChromeJson(const std::string& path);

  /// Serialises already-drained events (exposed for tests/tools).
  static std::string ChromeJson(const std::vector<TraceEvent>& events);

 private:
  struct ThreadRing;

  TraceLog() = default;
  ThreadRing* RingForThisThread();
  void Append(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> dropped_{0};
  /// ts origin (seconds), captured at Enable(). Atomic: the record paths
  /// read it without taking the rings lock.
  std::atomic<double> epoch_seconds_{0.0};
  mutable Mutex rings_mutex_;
  Options options_ VDRIFT_GUARDED_BY(rings_mutex_);
  std::vector<std::unique_ptr<ThreadRing>> rings_
      VDRIFT_GUARDED_BY(rings_mutex_);
  /// Exit-time export target ("" = none).
  std::string export_path_ VDRIFT_GUARDED_BY(rings_mutex_);
};

/// Kernel (tensor/nn op) profiling switch. Off by default: the hooks then
/// cost three relaxed atomic adds (call/FLOP/byte counters) and take no
/// clock readings. On, each op also records its wall time into a
/// per-op histogram and — when the flight recorder is enabled — emits a
/// complete trace event. Initialised from VDRIFT_KERNEL_PROFILE, and
/// turned on by TraceLog::Enable().
void SetKernelProfiling(bool enabled);
bool KernelProfilingEnabled();

/// \brief Per-call-site instrument bundle of one kernel op, registered in
/// Global() under "vdrift.ops.<scope>.<op>.{calls,flops,bytes}" counters
/// and a ".seconds" histogram. Cache it in a function-local static (see
/// VDRIFT_OP_PROBE) so the registry lookup happens once per process.
struct OpCounters {
  std::string trace_name;  ///< "<scope>.<op>", the trace event name.
  Counter* calls = nullptr;
  Counter* flops = nullptr;
  Counter* bytes = nullptr;
  Histogram* seconds = nullptr;
};

OpCounters RegisterOp(const char* scope, const char* op);

/// \brief RAII probe bracketing one kernel-op execution.
///
/// Always attributes FLOPs/bytes/calls; times the op and feeds the flight
/// recorder only while kernel profiling is on (see SetKernelProfiling).
class OpProbe {
 public:
  OpProbe(const OpCounters& counters, int64_t flops, int64_t bytes);
  ~OpProbe();

  OpProbe(const OpProbe&) = delete;
  OpProbe& operator=(const OpProbe&) = delete;

 private:
  const OpCounters& counters_;
  int64_t flops_;
  int64_t bytes_;
  bool timed_;
  /// True when this probe pushed a profile-context frame (sampling
  /// profiler armed at construction); popped in the destructor.
  bool profiled_ = false;
  double start_;
};

/// Declares the op's instruments once (thread-safe function-local static)
/// and opens a probe for the enclosing scope. One use per function body.
#define VDRIFT_OP_PROBE(scope, op, flops, bytes)                       \
  static const ::vdrift::obs::OpCounters vdrift_op_counters_ =         \
      ::vdrift::obs::RegisterOp(scope, op);                            \
  ::vdrift::obs::OpProbe vdrift_op_probe_(vdrift_op_counters_, (flops), \
                                          (bytes))

}  // namespace vdrift::obs

#endif  // VDRIFT_OBS_TRACE_LOG_H_
