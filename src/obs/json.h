#ifndef VDRIFT_OBS_JSON_H_
#define VDRIFT_OBS_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace vdrift::obs::json {

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string Escape(const std::string& s);

/// Formats a double as a JSON number. Non-finite values (which JSON cannot
/// represent) render as 0 so exported reports always parse.
std::string FormatDouble(double value);

/// \brief Minimal JSON document node.
///
/// Just enough of a DOM to round-trip the metrics reports exported by
/// MetricsRegistry/EpisodeRecorder: the obs tests parse what they export
/// and the tooling (tools/check_metrics.sh) has a native fallback when no
/// python interpreter is available. Not a general-purpose JSON library.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Value> array_value;
  std::map<std::string, Value> object_value;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; null when absent or not an object.
  const Value* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
Result<Value> Parse(const std::string& text);

}  // namespace vdrift::obs::json

#endif  // VDRIFT_OBS_JSON_H_
