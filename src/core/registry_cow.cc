#include "core/registry_cow.h"

#include <map>
#include <utility>

namespace vdrift::select {

namespace {

// Clones a classifier once per distinct source object, so aliases inside
// one entry (ensemble member doubling as the deployed count model) stay
// aliases in the clone.
class ClassifierCloner {
 public:
  Result<std::shared_ptr<nn::ProbabilisticClassifier>> CloneOf(
      const std::shared_ptr<nn::ProbabilisticClassifier>& model) {
    if (model == nullptr) {
      return std::shared_ptr<nn::ProbabilisticClassifier>();
    }
    auto it = cloned_.find(model.get());
    if (it != cloned_.end()) return it->second;
    std::shared_ptr<nn::ProbabilisticClassifier> clone = model->Clone();
    if (clone == nullptr) {
      return Status::Unimplemented(
          "model does not support cloning; cannot share it across streams");
    }
    cloned_[model.get()] = clone;
    return clone;
  }

 private:
  std::map<const nn::ProbabilisticClassifier*,
           std::shared_ptr<nn::ProbabilisticClassifier>>
      cloned_;
};

}  // namespace

Result<ModelEntry> CloneModelEntry(const ModelEntry& entry) {
  ModelEntry clone;
  clone.name = entry.name;
  if (entry.profile != nullptr) {
    clone.profile = std::shared_ptr<conformal::DistributionProfile>(
        entry.profile->Clone());
  }
  ClassifierCloner cloner;
  if (entry.ensemble != nullptr) {
    std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members;
    members.reserve(static_cast<size_t>(entry.ensemble->size()));
    for (int i = 0; i < entry.ensemble->size(); ++i) {
      VDRIFT_ASSIGN_OR_RETURN(std::shared_ptr<nn::ProbabilisticClassifier> m,
                              cloner.CloneOf(entry.ensemble->member(i)));
      members.push_back(std::move(m));
    }
    VDRIFT_ASSIGN_OR_RETURN(DeepEnsemble ensemble,
                            DeepEnsemble::Make(std::move(members)));
    clone.ensemble = std::make_shared<DeepEnsemble>(std::move(ensemble));
  }
  VDRIFT_ASSIGN_OR_RETURN(clone.count_model,
                          cloner.CloneOf(entry.count_model));
  VDRIFT_ASSIGN_OR_RETURN(clone.predicate_model,
                          cloner.CloneOf(entry.predicate_model));
  return clone;
}

CowModelRegistry::Snapshot CowModelRegistry::TakeSnapshot() const {
  MutexLock lock(&mutex_);
  return models_;
}

Result<bool> CowModelRegistry::Publish(
    const ModelEntry& entry,
    const std::vector<LabeledFrame>& calibration_sample) {
  // Clone outside the lock (cloning a model is the expensive part); the
  // name check re-runs under the lock so two racing publishers of the
  // same name still resolve first-writer-wins.
  VDRIFT_ASSIGN_OR_RETURN(ModelEntry clone, CloneModelEntry(entry));
  MutexLock lock(&mutex_);
  for (const PublishedModel& published : *models_) {
    if (published.entry.name == entry.name) return false;
  }
  auto next = std::make_shared<Models>(*models_);
  next->push_back(PublishedModel{std::move(clone), calibration_sample});
  models_ = std::move(next);  // the publication point
  return true;
}

int CowModelRegistry::FindByName(const std::string& name) const {
  Snapshot snapshot = TakeSnapshot();
  for (size_t i = 0; i < snapshot->size(); ++i) {
    if ((*snapshot)[i].entry.name == name) return static_cast<int>(i);
  }
  return -1;
}

int CowModelRegistry::size() const {
  return static_cast<int>(TakeSnapshot()->size());
}

}  // namespace vdrift::select
