#ifndef VDRIFT_CORE_MSBO_H_
#define VDRIFT_CORE_MSBO_H_

#include <vector>

#include "common/result.h"
#include "core/ensemble.h"
#include "core/registry.h"

namespace vdrift::select {

/// \brief Per-model uncertainty baseline used by MSBO's acceptance test.
///
/// Calibrated offline (§5.2.2): for every distribution i, a random sample
/// S_Ti of its training data is scored by every *other* ensemble j != i.
/// pc_avg[j] is ensemble j's mean Brier over all foreign samples — how
/// uncertain model j typically is on data it was not trained for — and
/// sigma[j] the standard deviation of those scores. MSBO accepts a model
/// only if its uncertainty on the new data is at least one sigma *below*
/// its foreign-data baseline, i.e. the model is markedly more confident
/// than it ever is off-distribution.
struct MsboCalibration {
  std::vector<double> pc_avg;
  std::vector<double> sigma;
  /// The paper's global baseline h (§5.2.2): pc^i_avg is the average
  /// uncertainty of the *foreign* ensembles on sample S_Ti; h is one
  /// standard deviation below the mean of the pc^i_avg over i = 1..m.
  double global_h = 1.0;
};

/// Runs the calibration. `samples[i]` is the labeled sample S_Ti of
/// distribution i (same order as the registry). Every registry entry must
/// carry an ensemble.
Result<MsboCalibration> CalibrateMsbo(
    const ModelRegistry& registry,
    const std::vector<std::vector<LabeledFrame>>& samples);

/// \brief Which acceptance threshold MSBO applies to the winning model.
enum class MsboThresholdRule {
  /// The §5.2.2 prose: accept iff the winner's Brier <= the global h
  /// (mean minus one std of the cross-distribution pc^i_avg). Default.
  kGlobalH,
  /// Algorithm 3 as printed: accept iff the winner's Brier <=
  /// pc_avg[k] - sigma[k] for the winning model k. Stricter; provided for
  /// the ablation bench.
  kPerModelSigma,
};

/// \brief Hyperparameters of Model Selection Based on Output (Alg. 3).
struct MsboConfig {
  int window_t = 10;  ///< W_T — post-drift frames to evaluate on.
  MsboThresholdRule rule = MsboThresholdRule::kGlobalH;
};

/// \brief Model Selection Based on Output (paper §5.2, Algorithm 3).
///
/// Accumulates a window W_T of labeled frames past the drift point,
/// computes each provisioned ensemble's average Brier score on it, and
/// selects the lowest-uncertainty model provided it clears the calibrated
/// threshold pc_avg[k] - sigma[k]; otherwise a new model must be trained.
/// Labels come from the annotation oracle (Mask R-CNN in the paper), which
/// is why MSBO is the supervised half of the MSBI/MSBO trade-off (§5.3).
class Msbo {
 public:
  /// `registry` must outlive the selector.
  Msbo(const ModelRegistry* registry, MsboCalibration calibration,
       const MsboConfig& config);

  /// Selects a model for the labeled window collected after a drift.
  Result<Selection> Select(const std::vector<LabeledFrame>& window) const;

  const MsboCalibration& calibration() const { return calibration_; }

 private:
  const ModelRegistry* registry_;
  MsboCalibration calibration_;
  MsboConfig config_;
};

}  // namespace vdrift::select

#endif  // VDRIFT_CORE_MSBO_H_
