#include "core/ensemble.h"

#include <algorithm>

#include "common/logging.h"

namespace vdrift::select {

Result<DeepEnsemble> DeepEnsemble::Make(
    std::vector<std::shared_ptr<nn::ProbabilisticClassifier>> members) {
  if (members.empty()) {
    return Status::InvalidArgument("ensemble needs at least one member");
  }
  for (const auto& m : members) {
    if (m == nullptr) {
      return Status::InvalidArgument("ensemble member is null");
    }
  }
  int k = members.front()->num_classes();
  for (const auto& m : members) {
    if (m->num_classes() != k) {
      return Status::InvalidArgument("ensemble members disagree on classes");
    }
  }
  return DeepEnsemble(std::move(members));
}

std::vector<float> DeepEnsemble::PredictProba(
    const tensor::Tensor& frame) const {
  std::vector<float> mixture(static_cast<size_t>(num_classes_), 0.0f);
  for (const auto& member : members_) {
    std::vector<float> p = member->PredictProba(frame);
    VDRIFT_DCHECK(p.size() == mixture.size());
    for (size_t i = 0; i < mixture.size(); ++i) mixture[i] += p[i];
  }
  float inv = 1.0f / static_cast<float>(members_.size());
  for (float& v : mixture) v *= inv;
  return mixture;
}

int DeepEnsemble::Predict(const tensor::Tensor& frame) const {
  std::vector<float> p = PredictProba(frame);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

double DeepEnsemble::BrierScore(const tensor::Tensor& frame,
                                int label) const {
  VDRIFT_DCHECK(label >= 0 && label < num_classes_);
  std::vector<float> p = PredictProba(frame);
  double sum = 0.0;
  for (int k = 0; k < num_classes_; ++k) {
    double target = (k == label) ? 1.0 : 0.0;
    double d = target - static_cast<double>(p[static_cast<size_t>(k)]);
    sum += d * d;
  }
  return sum / static_cast<double>(num_classes_);
}

double DeepEnsemble::AverageBrier(
    const std::vector<LabeledFrame>& window) const {
  // vdrift-lint: allow(no-data-dependent-check): caller-size contract
  VDRIFT_CHECK(!window.empty());
  double total = 0.0;
  for (const LabeledFrame& lf : window) {
    total += BrierScore(lf.pixels, lf.label);
  }
  return total / static_cast<double>(window.size());
}

}  // namespace vdrift::select
