#include "core/msbo.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "runtime/parallel.h"
#include "stats/moments.h"

namespace vdrift::select {

Result<MsboCalibration> CalibrateMsbo(
    const ModelRegistry& registry,
    const std::vector<std::vector<LabeledFrame>>& samples) {
  if (registry.empty()) {
    return Status::FailedPrecondition("registry is empty");
  }
  if (static_cast<int>(samples.size()) != registry.size()) {
    return Status::InvalidArgument("need one sample set per model");
  }
  for (int j = 0; j < registry.size(); ++j) {
    if (registry.at(j).ensemble == nullptr) {
      return Status::FailedPrecondition("model '" + registry.at(j).name +
                                        "' has no ensemble");
    }
  }
  MsboCalibration calibration;
  calibration.pc_avg.resize(static_cast<size_t>(registry.size()));
  calibration.sigma.resize(static_cast<size_t>(registry.size()));
  // Global h (§5.2.2): average foreign-ensemble uncertainty per sample.
  stats::RunningMoments sample_moments;
  for (int i = 0; i < registry.size(); ++i) {
    const std::vector<LabeledFrame>& sample = samples[static_cast<size_t>(i)];
    if (sample.empty()) {
      return Status::InvalidArgument("empty calibration sample");
    }
    stats::RunningMoments foreign;
    for (int j = 0; j < registry.size(); ++j) {
      if (i == j) continue;
      foreign.Add(registry.at(j).ensemble->AverageBrier(sample));
    }
    if (foreign.count() > 0) sample_moments.Add(foreign.mean());
  }
  if (sample_moments.count() > 0) {
    calibration.global_h = sample_moments.mean() - sample_moments.stddev();
  } else {
    // Single-model registry: no foreign data to calibrate against, so the
    // baseline comes from the lone model's own-distribution uncertainty —
    // new data is accepted only while the model stays roughly as
    // confident as it is at home (1.5x its own average Brier).
    stats::RunningMoments own;
    for (int i = 0; i < registry.size(); ++i) {
      own.Add(registry.at(i).ensemble->AverageBrier(
          samples[static_cast<size_t>(i)]));
    }
    calibration.global_h = 1.5 * own.mean();
  }
  for (int j = 0; j < registry.size(); ++j) {
    stats::RunningMoments moments;
    for (int i = 0; i < registry.size(); ++i) {
      if (i == j) continue;
      const std::vector<LabeledFrame>& sample =
          samples[static_cast<size_t>(i)];
      for (const LabeledFrame& lf : sample) {
        moments.Add(registry.at(j).ensemble->BrierScore(lf.pixels, lf.label));
      }
    }
    if (moments.count() == 0) {
      // Single-model registry: no foreign data; fall back to a permissive
      // baseline so the lone model is accepted on matching data.
      calibration.pc_avg[static_cast<size_t>(j)] = 1.0;
      calibration.sigma[static_cast<size_t>(j)] = 0.0;
    } else {
      calibration.pc_avg[static_cast<size_t>(j)] = moments.mean();
      calibration.sigma[static_cast<size_t>(j)] = moments.stddev();
    }
  }
  return calibration;
}

Msbo::Msbo(const ModelRegistry* registry, MsboCalibration calibration,
           const MsboConfig& config)
    : registry_(registry),
      calibration_(std::move(calibration)),
      config_(config) {
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(registry_ != nullptr);
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(config_.window_t >= 1);
  // Calibration/registry agreement is data-dependent (the calibration may
  // come from a checkpoint or a stale Recalibrate) — validated per Select
  // with a Status, not a crash, so the pipeline can fall back.
}

Result<Selection> Msbo::Select(const std::vector<LabeledFrame>& window) const {
  if (window.empty()) {
    return Status::InvalidArgument("MSBO needs a non-empty window");
  }
  obs::TraceSpan span(&obs::Global(), "vdrift.select.msbo.select_seconds");
  obs::Global().GetCounter("vdrift.select.msbo.selections").Increment();
  if (registry_->empty()) {
    Selection selection;
    selection.train_new_model = true;
    return selection;
  }
  if (static_cast<int>(calibration_.pc_avg.size()) != registry_->size() ||
      calibration_.sigma.size() != calibration_.pc_avg.size()) {
    return Status::FailedPrecondition(
        "MSBO calibration covers " +
        std::to_string(calibration_.pc_avg.size()) + " models but registry has " +
        std::to_string(registry_->size()) + "; recalibrate first");
  }
  for (int i = 0; i < registry_->size(); ++i) {
    if (registry_->at(i).ensemble == nullptr) {
      return Status::FailedPrecondition("MSBO requires an ensemble for model " +
                                        registry_->at(i).name);
    }
  }
  int limit = std::min<int>(config_.window_t,
                            static_cast<int>(window.size()));
  std::vector<LabeledFrame> eval(window.begin(), window.begin() + limit);

  Selection selection;
  selection.frames_examined = limit;
  // Candidate models score independently (each ensemble owns its model
  // state); the argmin folds in registry order afterwards, so the winner
  // and tie-breaks match the serial sweep.
  std::vector<double> briers(static_cast<size_t>(registry_->size()), 0.0);
  runtime::ParallelFor(
      0, registry_->size(), 1, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const ModelEntry& entry = registry_->at(static_cast<int>(i));
          briers[static_cast<size_t>(i)] = entry.ensemble->AverageBrier(eval);
        }
      });
  int best = -1;
  double best_brier = 0.0;
  for (int i = 0; i < registry_->size(); ++i) {
    // Each frame is evaluated by every ensemble member (Alg. 3 lines 5-11).
    selection.invocations += limit * registry_->at(i).ensemble->size();
    double brier = briers[static_cast<size_t>(i)];
    if (best < 0 || brier < best_brier) {
      best = i;
      best_brier = brier;
    }
  }
  selection.score = best_brier;
  double threshold =
      config_.rule == MsboThresholdRule::kGlobalH
          ? calibration_.global_h
          : calibration_.pc_avg[static_cast<size_t>(best)] -
                calibration_.sigma[static_cast<size_t>(best)];
  if (best_brier <= threshold) {
    selection.model_index = best;
  } else {
    // Even the most confident model is no more certain than it typically
    // is on foreign data: unseen distribution (Alg. 3 line 17).
    selection.train_new_model = true;
    obs::Global().GetCounter("vdrift.select.msbo.train_new").Increment();
  }
  obs::Global()
      .GetCounter("vdrift.select.msbo.invocations")
      .Increment(selection.invocations);
  obs::Global().GetGauge("vdrift.select.msbo.best_brier").Set(best_brier);
  return selection;
}

}  // namespace vdrift::select
