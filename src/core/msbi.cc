#include "core/msbi.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "runtime/parallel.h"

namespace vdrift::select {

Msbi::Msbi(const ModelRegistry* registry, const MsbiConfig& config)
    : registry_(registry), config_(config) {
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(registry_ != nullptr);
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(config_.window_n >= 1);
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(config_.r > 0.0 && config_.r <= 1.0);
}

std::vector<int> Msbi::Round(const std::vector<tensor::Tensor>& window,
                             const std::vector<int>& candidates, double r,
                             int* invocations) const {
  // Candidates are independent: each runs its own seeded DriftInspector
  // over its own profile (distinct VAE/state per model, so concurrent
  // Observe calls never share mutable layer caches). Per-candidate
  // verdicts land in fixed slots and fold in candidate order below, so
  // survivors and invocation counts match the serial sweep exactly.
  struct CandidateResult {
    bool drift = false;
    int invocations = 0;
  };
  std::vector<CandidateResult> results(candidates.size());
  int limit =
      std::min<int>(config_.window_n, static_cast<int>(window.size()));
  runtime::ParallelFor(
      0, static_cast<int64_t>(candidates.size()), 1,
      [&](int64_t begin, int64_t end) {
        for (int64_t c = begin; c < end; ++c) {
          int index = candidates[static_cast<size_t>(c)];
          const ModelEntry& entry = registry_->at(index);
          conformal::DriftInspectorConfig di_config;
          di_config.window = config_.di_window;
          di_config.r = r;
          di_config.threshold = config_.threshold;
          di_config.betting = config_.betting;
          conformal::DriftInspector inspector(
              entry.profile.get(), di_config,
              config_.seed + static_cast<uint64_t>(index));
          CandidateResult& result = results[static_cast<size_t>(c)];
          for (int i = 0; i < limit; ++i) {
            ++result.invocations;
            // TryObserve rejects frames whose non-conformity is non-finite
            // (NaN/Inf pixels) without touching inspector state; every
            // candidate skips exactly the same frames, so the elimination
            // stays deterministic under corrupted windows.
            Result<conformal::DriftInspector::Observation> observation =
                inspector.TryObserve(window[static_cast<size_t>(i)]);
            if (!observation.ok()) continue;
            if (observation.value().drift) {
              result.drift = true;
              break;  // profile rejected; no need to finish the window
            }
          }
        }
      });
  std::vector<int> survivors;
  for (size_t c = 0; c < candidates.size(); ++c) {
    *invocations += results[c].invocations;
    if (!results[c].drift) survivors.push_back(candidates[c]);
  }
  return survivors;
}

Result<Selection> Msbi::Select(
    const std::vector<tensor::Tensor>& window) const {
  if (window.empty()) {
    return Status::InvalidArgument("MSBI needs a non-empty window");
  }
  obs::TraceSpan span(&obs::Global(), "vdrift.select.msbi.select_seconds");
  obs::Global().GetCounter("vdrift.select.msbi.selections").Increment();
  if (registry_->empty()) {
    Selection selection;
    selection.train_new_model = true;
    return selection;
  }
  std::vector<int> candidates(static_cast<size_t>(registry_->size()));
  for (size_t i = 0; i < candidates.size(); ++i) {
    candidates[i] = static_cast<int>(i);
  }
  Selection selection;
  selection.frames_examined =
      std::min<int>(config_.window_n, static_cast<int>(window.size()));
  double r = config_.r;
  while (true) {
    obs::Global().GetCounter("vdrift.select.msbi.rounds").Increment();
    std::vector<int> survivors =
        Round(window, candidates, r, &selection.invocations);
    if (survivors.empty()) {
      // Every profile rejected the new data: unseen distribution (Alg. 2
      // lines 9-10).
      selection.train_new_model = true;
      selection.score = r;
      break;
    }
    if (survivors.size() == 1 || r + config_.r_step > config_.r_max) {
      // Unique survivor, or r saturated: break ties arbitrarily (§5.1:
      // "we break ties arbitrarily or progressively by increasing the
      // significance level").
      selection.model_index = survivors.front();
      selection.score = r;
      break;
    }
    candidates = std::move(survivors);
    r += config_.r_step;
  }
  obs::Global()
      .GetCounter("vdrift.select.msbi.invocations")
      .Increment(selection.invocations);
  if (selection.train_new_model) {
    obs::Global().GetCounter("vdrift.select.msbi.train_new").Increment();
  }
  return selection;
}

}  // namespace vdrift::select
