#include "core/profile.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "stats/moments.h"
#include "video/frame_stats.h"

namespace vdrift::conformal {

DistributionProfile::DistributionProfile(std::string name,
                                         std::shared_ptr<vae::Vae> vae,
                                         PointSet sigma, double stats_weight,
                                         std::vector<float> stats_mean,
                                         std::vector<float> stats_scale)
    : name_(std::move(name)),
      vae_(std::move(vae)),
      sigma_(std::move(sigma)),
      stats_weight_(stats_weight),
      stats_mean_(std::move(stats_mean)),
      stats_scale_(std::move(stats_scale)) {
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(vae_ != nullptr);
  if (stats_weight_ != 0.0) {
    // vdrift-lint: allow(no-data-dependent-check): ctor config contract
    VDRIFT_CHECK(stats_mean_.size() ==
                     static_cast<size_t>(video::kNumFrameStats) &&
                 stats_scale_.size() == stats_mean_.size())
        << "augmented profile needs standardisation parameters";
  }
}

std::unique_ptr<DistributionProfile> DistributionProfile::Clone() const {
  return std::make_unique<DistributionProfile>(
      name_, std::shared_ptr<vae::Vae>(vae_->Clone()), sigma_, stats_weight_,
      stats_mean_, stats_scale_);
}

std::vector<float> DistributionProfile::Augment(
    std::vector<float> latent, const tensor::Tensor& pixels) const {
  if (stats_weight_ == 0.0) return latent;
  std::vector<float> stats = video::GlobalFrameStats(pixels);
  latent.reserve(latent.size() + stats.size());
  for (size_t i = 0; i < stats.size(); ++i) {
    latent.push_back(static_cast<float>(stats_weight_) *
                     (stats[i] - stats_mean_[i]) / stats_scale_[i]);
  }
  return latent;
}

Result<std::unique_ptr<DistributionProfile>> DistributionProfile::Build(
    std::string name, const std::vector<tensor::Tensor>& training_frames,
    const Options& options, stats::Rng* rng) {
  if (training_frames.empty()) {
    return Status::InvalidArgument("DistributionProfile needs frames");
  }
  if (options.sigma_size < options.k + 1) {
    return Status::InvalidArgument("sigma_size must exceed k");
  }
  auto vae = std::make_shared<vae::Vae>(options.vae, rng);
  vae::VaeTrainer trainer(options.trainer);
  VDRIFT_RETURN_NOT_OK(trainer.Train(vae.get(), training_frames, rng).status());
  // Standardisation parameters of the global statistics over T_i: one
  // distance unit along each stat equals one within-distribution std.
  std::vector<float> stats_mean(video::kNumFrameStats, 0.0f);
  std::vector<float> stats_scale(video::kNumFrameStats, 1.0f);
  if (options.stats_weight != 0.0) {
    std::vector<stats::RunningMoments> moments(video::kNumFrameStats);
    for (const tensor::Tensor& frame : training_frames) {
      std::vector<float> s = video::GlobalFrameStats(frame);
      for (int i = 0; i < video::kNumFrameStats; ++i) {
        moments[static_cast<size_t>(i)].Add(s[static_cast<size_t>(i)]);
      }
    }
    constexpr float kScaleFloor = 0.01f;
    for (int i = 0; i < video::kNumFrameStats; ++i) {
      stats_mean[static_cast<size_t>(i)] =
          static_cast<float>(moments[static_cast<size_t>(i)].mean());
      stats_scale[static_cast<size_t>(i)] = std::max(
          kScaleFloor,
          static_cast<float>(moments[static_cast<size_t>(i)].stddev()));
    }
  }
  auto standardize = [&](std::vector<float> z, const tensor::Tensor& frame) {
    if (options.stats_weight == 0.0) return z;
    std::vector<float> s = video::GlobalFrameStats(frame);
    for (size_t i = 0; i < s.size(); ++i) {
      z.push_back(static_cast<float>(options.stats_weight) *
                  (s[i] - stats_mean[i]) / stats_scale[i]);
    }
    return z;
  };
  // Sigma_Ti: one posterior sample per randomly drawn training frame, each
  // augmented with that frame's standardized global statistics so incoming
  // frames (encoded the same way) are exchangeable with the reference.
  std::vector<std::vector<float>> points;
  points.reserve(static_cast<size_t>(options.sigma_size));
  for (int i = 0; i < options.sigma_size; ++i) {
    const tensor::Tensor& frame = training_frames[static_cast<size_t>(
        rng->NextInt(0, static_cast<int>(training_frames.size()) - 1))];
    points.push_back(standardize(vae->EncodeSample(frame, rng), frame));
  }
  VDRIFT_ASSIGN_OR_RETURN(PointSet sigma,
                          PointSet::Build(std::move(points), options.k));
  return std::make_unique<DistributionProfile>(
      std::move(name), std::move(vae), std::move(sigma), options.stats_weight,
      std::move(stats_mean), std::move(stats_scale));
}

std::vector<float> DistributionProfile::Encode(
    const tensor::Tensor& pixels) const {
  return Augment(vae_->EncodeMean(pixels), pixels);
}

std::vector<float> DistributionProfile::EncodeSampled(
    const tensor::Tensor& pixels, stats::Rng* rng) const {
  return Augment(vae_->EncodeSample(pixels, rng), pixels);
}

}  // namespace vdrift::conformal
