#include "core/drift_inspector.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace vdrift::conformal {

namespace {

std::shared_ptr<const BettingFunction> ResolveBetting(
    std::shared_ptr<const BettingFunction> betting) {
  if (betting != nullptr) return betting;
  return std::shared_ptr<const BettingFunction>(MakeDefaultBetting());
}

}  // namespace

DriftInspector::DriftInspector(const DistributionProfile* profile,
                               const DriftInspectorConfig& config,
                               uint64_t seed)
    : profile_(profile),
      betting_(ResolveBetting(config.betting)),
      martingale_(betting_.get(), config.window, config.r, config.threshold),
      rng_(seed) {
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(profile_ != nullptr);
}

DriftInspector::Observation DriftInspector::Observe(
    const tensor::Tensor& pixels) {
  // The per-frame DI latency of Table 6: VAE encode + K-NN score +
  // p-value + martingale update, end to end. A span (not a bare timer)
  // so the flight recorder can nest the tensor-op events under it.
  obs::TraceSpan span(&obs::Global(), "vdrift.di.observe_seconds");
  // Sampled encoding: matches the generation law of Sigma_Ti, keeping
  // own-distribution p-values exchangeable (see DistributionProfile).
  std::vector<float> latent = profile_->EncodeSampled(pixels, &rng_);
  return ObserveLatent(latent);
}

DriftInspector::Observation DriftInspector::ObserveLatent(
    std::span<const float> latent) {
  return Ingest(profile_->sigma().KnnScore(latent));
}

Result<DriftInspector::Observation> DriftInspector::TryObserve(
    const tensor::Tensor& pixels) {
  obs::TraceSpan span(&obs::Global(), "vdrift.di.observe_seconds");
  // Snapshot the RNG across the sampled encoding so a rejected frame
  // leaves the random sequence — and therefore every later p-value —
  // exactly as if the frame had never arrived.
  stats::Rng::State saved = rng_.state();
  std::vector<float> latent = profile_->EncodeSampled(pixels, &rng_);
  Result<Observation> result = TryObserveLatent(latent);
  if (!result.ok()) rng_.set_state(saved);
  return result;
}

Result<DriftInspector::Observation> DriftInspector::TryObserveLatent(
    std::span<const float> latent) {
  double score = profile_->sigma().KnnScore(latent);
  if (!std::isfinite(score)) {
    obs::Global().GetCounter("vdrift.di.nonfinite_rejected").Increment();
    return Status::InvalidArgument(
        "non-finite non-conformity score (NaN/Inf in frame or latent)");
  }
  return Ingest(score);
}

DriftInspector::Observation DriftInspector::Ingest(double score) {
  Observation observation;
  observation.nonconformity = score;
  observation.p_value = ComputePValue(
      observation.nonconformity, profile_->sigma().sorted_scores(), &rng_);
  observation.drift = martingale_.Update(observation.p_value);
  observation.bet = martingale_.last_bet();
  observation.martingale = martingale_.value();
  observation.window_delta = martingale_.last_window_delta();
  ++frames_seen_;
  obs::Global().GetCounter("vdrift.di.frames").Increment();
  if (observation.drift) {
    obs::Global().GetCounter("vdrift.di.drifts").Increment();
  }
  if (recorder_ != nullptr) {
    recorder_->RecordFrame({frames_seen_, observation.martingale,
                            observation.p_value, observation.bet,
                            observation.window_delta, observation.drift});
  }
  return observation;
}

void DriftInspector::Reset() {
  martingale_.Reset();
  frames_seen_ = 0;
}

DriftInspector::State DriftInspector::SaveState() const {
  State state;
  state.frames_seen = frames_seen_;
  state.rng = rng_.state();
  state.martingale = martingale_.SaveState();
  return state;
}

void DriftInspector::RestoreState(const State& state) {
  frames_seen_ = state.frames_seen;
  rng_.set_state(state.rng);
  martingale_.RestoreState(state.martingale);
}

}  // namespace vdrift::conformal
