#include "core/drift_inspector.h"

#include <utility>

#include "common/logging.h"

namespace vdrift::conformal {

namespace {

std::shared_ptr<const BettingFunction> ResolveBetting(
    std::shared_ptr<const BettingFunction> betting) {
  if (betting != nullptr) return betting;
  return std::shared_ptr<const BettingFunction>(MakeDefaultBetting());
}

}  // namespace

DriftInspector::DriftInspector(const DistributionProfile* profile,
                               const DriftInspectorConfig& config,
                               uint64_t seed)
    : profile_(profile),
      betting_(ResolveBetting(config.betting)),
      martingale_(betting_.get(), config.window, config.r, config.threshold),
      rng_(seed) {
  VDRIFT_CHECK(profile_ != nullptr);
}

DriftInspector::Observation DriftInspector::Observe(
    const tensor::Tensor& pixels) {
  // Sampled encoding: matches the generation law of Sigma_Ti, keeping
  // own-distribution p-values exchangeable (see DistributionProfile).
  std::vector<float> latent = profile_->EncodeSampled(pixels, &rng_);
  return ObserveLatent(latent);
}

DriftInspector::Observation DriftInspector::ObserveLatent(
    std::span<const float> latent) {
  Observation obs;
  obs.nonconformity = profile_->sigma().KnnScore(latent);
  obs.p_value =
      ComputePValue(obs.nonconformity, profile_->sigma().sorted_scores(),
                    &rng_);
  obs.drift = martingale_.Update(obs.p_value);
  obs.martingale = martingale_.value();
  obs.window_delta = martingale_.last_window_delta();
  ++frames_seen_;
  return obs;
}

void DriftInspector::Reset() {
  martingale_.Reset();
  frames_seen_ = 0;
}

}  // namespace vdrift::conformal
