#ifndef VDRIFT_CORE_REGISTRY_COW_H_
#define VDRIFT_CORE_REGISTRY_COW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "core/ensemble.h"
#include "core/registry.h"

namespace vdrift::select {

/// \brief Deep-copies a registry entry: profile (VAE + point set),
/// ensemble members, and query models, sharing no mutable state with the
/// source.
///
/// NN layers cache forward activations, so two threads must never execute
/// the same model object — every consumer of a shared/published entry
/// clones it first. Aliasing inside the entry is preserved: when the count
/// or predicate model is one of the ensemble's members (the provisioning
/// path deploys member 0 as the count model), the clone aliases its own
/// cloned member the same way. kUnimplemented when any contained model
/// does not support cloning (e.g. a test stub).
Result<ModelEntry> CloneModelEntry(const ModelEntry& entry);

/// \brief One model published into the fleet-shared registry: the entry
/// plus the labeled calibration sample adopting streams need to extend
/// their MSBO calibration.
struct PublishedModel {
  ModelEntry entry;
  std::vector<LabeledFrame> calibration_sample;
};

/// \brief Copy-on-write shared model registry (ROADMAP item 1).
///
/// The fleet's publication channel: a model trained for one stream's drift
/// becomes selectable by every stream. Readers take an immutable snapshot
/// (a shared_ptr to a const vector — O(1), never blocks on writers);
/// writers copy the vector, append, and swap the pointer under the mutex.
/// The swap is the publication point: a snapshot taken before it does not
/// see the new model, one taken after sees it fully — there is no partial
/// state. Publication order is append order, so every consumer that
/// iterates a snapshot adopts models in the same deterministic order.
///
/// Entries stored here are never executed directly (models cache forward
/// state and are not thread-safe); consumers CloneModelEntry what they
/// adopt. Publish deep-copies the caller's entry for the same reason, so
/// the caller keeps exclusive use of its own instance.
class CowModelRegistry {
 public:
  CowModelRegistry() : models_(std::make_shared<Models>()) {}

  CowModelRegistry(const CowModelRegistry&) = delete;
  CowModelRegistry& operator=(const CowModelRegistry&) = delete;

  using Models = std::vector<PublishedModel>;
  using Snapshot = std::shared_ptr<const Models>;

  /// The current immutable snapshot. Safe to iterate without locks; later
  /// publications do not mutate it.
  Snapshot TakeSnapshot() const;

  /// Deep-copies `entry` and appends it with its calibration sample.
  /// First-writer-wins by name: returns false (and publishes nothing) when
  /// a model of the same name is already published. kUnimplemented when
  /// the entry cannot be cloned.
  Result<bool> Publish(const ModelEntry& entry,
                       const std::vector<LabeledFrame>& calibration_sample);

  /// Index of the published model with this name in the current snapshot,
  /// or -1.
  int FindByName(const std::string& name) const;

  /// Number of published models.
  int size() const;

 private:
  mutable Mutex mutex_;
  Snapshot models_ VDRIFT_GUARDED_BY(mutex_);
};

}  // namespace vdrift::select

#endif  // VDRIFT_CORE_REGISTRY_COW_H_
