#ifndef VDRIFT_CORE_BETTING_H_
#define VDRIFT_CORE_BETTING_H_

#include <memory>
#include <string>

namespace vdrift::conformal {

/// \brief A betting function in increment form.
///
/// The Drift Inspector accumulates S <- max(0, S + Increment(p)) per frame
/// (Alg. 1 line 10). Two families are supported, reflecting the paper's two
/// constructions (§4.2.4):
///
/// * multiplicative martingales S_n = prod g_i(p_i) with
///   int_0^1 g(p) dp = 1, tracked in log space: Increment(p) = log g(p);
/// * additive martingales S_n = sum g_i(p_i) with int_0^1 g(p) dp = 0
///   (shifted odd functions): Increment(p) = g(p) directly.
///
/// In both cases small p-values (strange frames) must yield positive
/// increments so the statistic climbs under drift, and the expected
/// increment under uniform p-values must be <= 0 so it stays near the
/// max(0, .) reflecting barrier when the stream is exchangeable.
class BettingFunction {
 public:
  virtual ~BettingFunction() = default;

  /// The per-observation increment for p-value `p` in [0, 1].
  virtual double Increment(double p) const = 0;

  /// Largest possible single increment (used to reason about detection
  /// latency: at least ceil(tau / MaxIncrement()) strange frames are needed
  /// to cross a threshold tau within a window).
  virtual double MaxIncrement() const = 0;

  virtual std::string name() const = 0;
};

/// \brief Log of the power betting function g(p) = eps * p^(eps-1).
///
/// The classic conformal-martingale bet (Volkhonskiy et al.). In log space
/// the increment is log(eps) + (eps-1) log(p): strongly positive for small
/// p, mildly negative for moderate p, with negative expectation under
/// uniform p-values (E = log(eps) + 1 - eps < 0 for eps in (0,1)).
/// p is clamped below at `p_floor` — the finite reference sample quantises
/// p-values to multiples of 1/n, so the floor should be ~1/(2n).
class PowerLogBetting : public BettingFunction {
 public:
  explicit PowerLogBetting(double epsilon = 0.5, double p_floor = 1e-3);

  double Increment(double p) const override;
  double MaxIncrement() const override;
  std::string name() const override { return "power-log"; }

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  double p_floor_;
};

/// \brief The paper's additive construction: g(p) = f(p - 1/2) for an odd
/// function f, here f(x) = -scale * x, so g(p) = scale * (1/2 - p).
///
/// Integrates to zero over [0,1] (Eq. 10-12), is bounded by scale/2, and
/// satisfies the Hoeffding-Azuma premise |g| <= scale/2 used by the
/// windowed test (Eq. 13-15).
class ShiftedOddBetting : public BettingFunction {
 public:
  explicit ShiftedOddBetting(double scale = 4.0) : scale_(scale) {}

  double Increment(double p) const override { return scale_ * (0.5 - p); }
  double MaxIncrement() const override { return scale_ * 0.5; }
  std::string name() const override { return "shifted-odd"; }

  double scale() const { return scale_; }

 private:
  double scale_;
};

/// \brief Log of the mixture betting function
/// g(p) = int_0^1 eps p^(eps-1) d eps = (1 + p ln p - p) / (p ln^2 p)...
///
/// We use the standard closed form of the simple-mixture martingale bet,
/// g(p) = (1 - p^... ) — implemented numerically as the average of power
/// bets over a small epsilon grid, which is how the mixture martingale is
/// deployed in practice. Robust to the choice of epsilon.
class MixtureLogBetting : public BettingFunction {
 public:
  explicit MixtureLogBetting(double p_floor = 1e-3);

  double Increment(double p) const override;
  double MaxIncrement() const override;
  std::string name() const override { return "mixture-log"; }

 private:
  double p_floor_;
};

/// \brief Log of the symmetric power bet
/// g(p) = (eps/2) * (p^(eps-1) + (1-p)^(eps-1)).
///
/// Integrates to 1 over [0,1] like the one-sided power bet, but grows for
/// p near *either* end. Rationale: conformal p-values are uniform under
/// exchangeability, so a stream of p-values stuck near 1 (the new data are
/// suspiciously *typical* — e.g. a tight distribution sitting inside a
/// diffuse reference Sigma_Tj during MSBI's cross-profile tests) is as
/// much a violation as p-values stuck near 0. The library default.
class SymmetricPowerLogBetting : public BettingFunction {
 public:
  explicit SymmetricPowerLogBetting(double epsilon = 0.55,
                                    double p_floor = 5e-4);

  double Increment(double p) const override;
  double MaxIncrement() const override;
  std::string name() const override { return "symmetric-power-log"; }

 private:
  double epsilon_;
  double p_floor_;
};

/// The library default: SymmetricPowerLogBetting(0.55), which reproduces
/// the growth
/// pattern of the paper's worked example (Table 4: increments of ~1-3 per
/// zero-p frame under log-betting) while keeping the false-alarm tail of
/// the W=3 windowed test negligible over long streams.
std::unique_ptr<BettingFunction> MakeDefaultBetting();

}  // namespace vdrift::conformal

#endif  // VDRIFT_CORE_BETTING_H_
