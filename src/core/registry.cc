#include "core/registry.h"

#include "common/logging.h"

namespace vdrift::select {

int ModelRegistry::Add(ModelEntry entry) {
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(entry.profile != nullptr)
      << "model entry '" << entry.name << "' needs a distribution profile";
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

const ModelEntry& ModelRegistry::at(int index) const {
  // vdrift-lint: allow(no-data-dependent-check): accessor bounds contract
  VDRIFT_CHECK(index >= 0 && index < size());
  return entries_[static_cast<size_t>(index)];
}

ModelEntry& ModelRegistry::at(int index) {
  // vdrift-lint: allow(no-data-dependent-check): accessor bounds contract
  VDRIFT_CHECK(index >= 0 && index < size());
  return entries_[static_cast<size_t>(index)];
}

int ModelRegistry::FindByName(const std::string& name) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace vdrift::select
