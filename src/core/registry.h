#ifndef VDRIFT_CORE_REGISTRY_H_
#define VDRIFT_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ensemble.h"
#include "core/profile.h"
#include "nn/classifier.h"

namespace vdrift::select {

/// \brief One provisioned model M_i with everything the system keeps for
/// it: the distribution profile (VAE + Sigma_Ti + A_i) used by DI and
/// MSBI, the deep ensemble used by MSBO, and the query models deployed for
/// actual stream processing.
struct ModelEntry {
  std::string name;
  std::shared_ptr<conformal::DistributionProfile> profile;
  std::shared_ptr<DeepEnsemble> ensemble;
  std::shared_ptr<nn::ProbabilisticClassifier> count_model;
  std::shared_ptr<nn::ProbabilisticClassifier> predicate_model;
};

/// \brief The collection of provisioned models M_1..M_m.
class ModelRegistry {
 public:
  /// Adds an entry and returns its index.
  int Add(ModelEntry entry);

  /// Number of models m.
  int size() const { return static_cast<int>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  /// Entry access.
  const ModelEntry& at(int index) const;
  ModelEntry& at(int index);
  const std::vector<ModelEntry>& entries() const { return entries_; }

  /// Index of the entry with the given name, or -1.
  int FindByName(const std::string& name) const;

 private:
  std::vector<ModelEntry> entries_;
};

/// \brief Outcome of a model-selection run (MSBI or MSBO).
struct Selection {
  /// True when no provisioned model fits the new data: trainNewModel()
  /// must be invoked (§5.4).
  bool train_new_model = false;
  /// Index of the selected model in the registry (-1 with train_new_model).
  int model_index = -1;
  /// Frames the selector examined.
  int frames_examined = 0;
  /// Total model/DI invocations spent selecting (the §6.2 cost metric).
  int invocations = 0;
  /// MSBO: the winning ensemble's average Brier; MSBI: final r used.
  double score = 0.0;
};

}  // namespace vdrift::select

#endif  // VDRIFT_CORE_REGISTRY_H_
