#ifndef VDRIFT_CORE_MARTINGALE_H_
#define VDRIFT_CORE_MARTINGALE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/betting.h"
#include "core/threshold.h"

namespace vdrift::conformal {

/// \brief The conformal-martingale statistic of Algorithm 1.
///
/// Maintains S with the update S <- max(0, S + b(p)) (line 10; the
/// max(0, .) is a reflecting barrier that keeps the statistic ready to
/// react — without it the product martingale decays towards zero during
/// long exchangeable stretches and reacts sluggishly, the §4.2.3 concern)
/// and answers the windowed rate-of-change test of line 13 / Eq. 15:
/// |S[i] - S[i-W]| > tau(W, r).
class ConformalMartingale {
 public:
  /// `betting` must outlive the martingale.
  ConformalMartingale(const BettingFunction* betting, int window, double r,
                      ThresholdPolicy policy = ThresholdPolicy::kPaper);

  /// Feeds one p-value; returns true if the windowed test fires.
  /// Precondition: p is finite (aborts on NaN/Inf — use TryUpdate when p
  /// comes from untrusted data; p=0 is tolerated because every betting
  /// function clamps at its p_floor).
  bool Update(double p);

  /// Status-guarded Update: rejects NaN/Inf and out-of-range p-values with
  /// kInvalidArgument, leaving the martingale state untouched, instead of
  /// folding a poisoned bet into S (one NaN would stick forever: NaN
  /// propagates through every subsequent max/add).
  Result<bool> TryUpdate(double p);

  /// The current statistic S.
  double value() const { return current_; }
  /// Number of p-values consumed.
  int64_t count() const { return count_; }
  /// The test threshold tau(W, r).
  double threshold() const { return threshold_; }
  /// The most recent windowed difference |S[i] - S[i-W]|.
  double last_window_delta() const { return last_delta_; }
  /// The betting-function increment b(p) of the most recent Update —
  /// exposed so the drift-episode telemetry can record what the
  /// martingale actually staked on each frame.
  double last_bet() const { return last_bet_; }

  /// Clears all state (used after a drift is handled).
  void Reset();

  /// \brief The martingale's complete serializable state (checkpointing).
  struct State {
    double current = 0.0;
    int64_t count = 0;
    double last_delta = 0.0;
    double last_bet = 0.0;
    std::vector<double> history;  ///< Front-to-back copy of the S window.
  };

  /// Captures the current state.
  State SaveState() const;

  /// Restores a captured state. The window/threshold configuration is not
  /// part of the state — the restoring martingale must be constructed with
  /// the same config, which the checkpoint layer guarantees by rebuilding
  /// from the same PipelineConfig.
  void RestoreState(const State& state);

 private:
  const BettingFunction* betting_;
  int window_;
  double threshold_;
  double current_ = 0.0;
  int64_t count_ = 0;
  double last_delta_ = 0.0;
  double last_bet_ = 0.0;
  // S values of the last `window_` + 1 observations; front is S[i - W].
  std::deque<double> history_;
};

}  // namespace vdrift::conformal

#endif  // VDRIFT_CORE_MARTINGALE_H_
