#include "core/martingale.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vdrift::conformal {

ConformalMartingale::ConformalMartingale(const BettingFunction* betting,
                                         int window, double r,
                                         ThresholdPolicy policy)
    : betting_(betting),
      window_(window),
      threshold_(Threshold(policy, window, r)) {
  // vdrift-lint: allow(no-data-dependent-check): null-wiring bug, not data
  VDRIFT_CHECK(betting_ != nullptr);
  // vdrift-lint: allow(no-data-dependent-check): ctor config contract
  VDRIFT_CHECK(window_ >= 1);
  history_.push_back(0.0);  // S[0] = 0 (Alg. 1 input convention)
}

bool ConformalMartingale::Update(double p) {
  // vdrift-lint: allow(no-data-dependent-check): data path uses TryUpdate
  VDRIFT_CHECK(std::isfinite(p))
      << "martingale fed p=" << p << "; route untrusted data via TryUpdate";
  last_bet_ = betting_->Increment(p);
  current_ = std::max(0.0, current_ + last_bet_);
  ++count_;
  history_.push_back(current_);
  // Keep S[i-W] .. S[i]; when fewer than W observations exist, compare
  // against S[0] (Alg. 1 line 12: window = min(iter, W)).
  while (static_cast<int>(history_.size()) > window_ + 1) {
    history_.pop_front();
  }
  last_delta_ = std::abs(current_ - history_.front());
  return last_delta_ > threshold_;
}

Result<bool> ConformalMartingale::TryUpdate(double p) {
  if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("martingale p-value out of [0,1]: " +
                                   std::to_string(p));
  }
  return Update(p);
}

ConformalMartingale::State ConformalMartingale::SaveState() const {
  State state;
  state.current = current_;
  state.count = count_;
  state.last_delta = last_delta_;
  state.last_bet = last_bet_;
  state.history.assign(history_.begin(), history_.end());
  return state;
}

void ConformalMartingale::RestoreState(const State& state) {
  current_ = state.current;
  count_ = state.count;
  last_delta_ = state.last_delta;
  last_bet_ = state.last_bet;
  history_.assign(state.history.begin(), state.history.end());
  if (history_.empty()) history_.push_back(0.0);
}

void ConformalMartingale::Reset() {
  current_ = 0.0;
  count_ = 0;
  last_delta_ = 0.0;
  last_bet_ = 0.0;
  history_.clear();
  history_.push_back(0.0);
}

}  // namespace vdrift::conformal
