#ifndef VDRIFT_CORE_MSBI_H_
#define VDRIFT_CORE_MSBI_H_

#include <vector>

#include "common/result.h"
#include "core/drift_inspector.h"
#include "core/registry.h"
#include "tensor/tensor.h"

namespace vdrift::select {

/// \brief Hyperparameters of Model Selection Based on Input (Alg. 2).
struct MsbiConfig {
  int window_n = 10;  ///< W_N — post-drift frames to evaluate on.
  int di_window = 3;  ///< W for the inner Drift Inspector runs.
  double r = 0.5;     ///< Initial significance level.
  double r_step = 0.1;   ///< Escalation step when several models survive.
  double r_max = 0.95;   ///< Cap; ties at the cap break arbitrarily (first).
  conformal::ThresholdPolicy threshold = conformal::ThresholdPolicy::kPaper;
  std::shared_ptr<const conformal::BettingFunction> betting;  ///< null=default
  uint64_t seed = 77;
};

/// \brief Model Selection Based on Input (paper §5.1, Algorithm 2).
///
/// Runs the Drift Inspector over the W_N post-drift frames against every
/// provisioned profile at significance r. Profiles that declare drift are
/// rejected. If every profile rejects, the new data come from an unseen
/// distribution and a new model must be trained. If exactly one survives
/// it is selected; if several survive the test is repeated on the
/// survivors at r + r_step (progressively stricter) until one remains or
/// r saturates. Fully unsupervised — no labels needed (§5.3).
class Msbi {
 public:
  /// `registry` must outlive the selector.
  Msbi(const ModelRegistry* registry, const MsbiConfig& config);

  /// Selects a model for the frames collected after a drift. `window`
  /// should hold (at least) W_N frames; extras are ignored.
  Result<Selection> Select(const std::vector<tensor::Tensor>& window) const;

 private:
  // One elimination round at level r over candidate indices; returns the
  // surviving candidates and accumulates invocation counts.
  std::vector<int> Round(const std::vector<tensor::Tensor>& window,
                         const std::vector<int>& candidates, double r,
                         int* invocations) const;

  const ModelRegistry* registry_;
  MsbiConfig config_;
};

}  // namespace vdrift::select

#endif  // VDRIFT_CORE_MSBI_H_
